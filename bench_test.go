package lintime

// The benchmark harness regenerates every table of the paper's evaluation
// and the executable versions of its theorems. Each benchmark validates
// the reproduced result (measured latency == formula; violation found
// below a bound and absent at it) and reports the key quantities as
// custom metrics in virtual ticks, so `go test -bench . -benchmem` both
// times and re-checks the reproduction.

import (
	"fmt"
	"runtime"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/bounds"
	"lintime/internal/classify"
	"lintime/internal/clocksync"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/lowerbound"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

func benchParams() simtime.Params { return simtime.DefaultParams(5) }

// benchTable regenerates one paper table and validates that Algorithm 1's
// measured worst-case latencies match the corrected formulas exactly and
// that the baseline never beats 2d... more precisely, never exceeds it.
func benchTable(b *testing.B, number int) {
	p := benchParams()
	var mt *harness.MeasuredTable
	var err error
	for i := 0; i < b.N; i++ {
		mt, err = harness.MeasureTable(number, p, 17)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range mt.Rows {
		if row.MeasuredMax >= 0 && row.ExpectedAtX.Defined() && row.MeasuredMax != row.ExpectedAtX.Value {
			b.Fatalf("table %d row %s: measured %v != expected %v",
				number, row.Operation, row.MeasuredMax, row.ExpectedAtX.Value)
		}
		if row.BaselineMax > 2*2*p.D { // sums of two ops: ≤ 2·2d
			b.Fatalf("table %d row %s: baseline %v exceeds twice 2d", number, row.Operation, row.BaselineMax)
		}
		if row.MeasuredMax >= 0 {
			b.ReportMetric(float64(row.MeasuredMax), "vticks_"+metricName(row.Operation))
		}
	}
}

func metricName(op string) string {
	out := make([]rune, 0, len(op))
	for _, r := range op {
		if r == '+' {
			out = append(out, '_')
			continue
		}
		if r == ' ' || r == '.' || r == '-' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkTable1 regenerates Table 1 (RMW registers).
func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }

// BenchmarkTable2 regenerates Table 2 (queues).
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }

// BenchmarkTable3 regenerates Table 3 (stacks).
func BenchmarkTable3(b *testing.B) { benchTable(b, 3) }

// BenchmarkTable4 regenerates Table 4 (rooted trees).
func BenchmarkTable4(b *testing.B) { benchTable(b, 4) }

// BenchmarkTable5 regenerates the class-level summary of Section 6.
func BenchmarkTable5(b *testing.B) { benchTable(b, 5) }

// BenchmarkTheorem2 runs the pure-accessor shifting construction one tick
// below u/4 (violation expected) and at u/4 (no violation).
func BenchmarkTheorem2(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.Theorem2(p, p.U/4-1)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ViolationFound {
			b.Fatal("Theorem 2: expected violation below the bound")
		}
		rep, err = lowerbound.Theorem2(p, p.U/4)
		if err != nil {
			b.Fatal(err)
		}
		if rep.ViolationFound {
			b.Fatal("Theorem 2: unexpected violation at the bound")
		}
	}
	b.ReportMetric(float64(p.U/4), "vticks_bound")
}

// BenchmarkTheorem3 runs the last-sensitive mutator construction for
// k = n.
func BenchmarkTheorem3(b *testing.B) {
	p := benchParams()
	bound := p.U - p.U/simtime.Duration(p.N)
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.Theorem3(p, p.N, bound-1)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ViolationFound {
			b.Fatal("Theorem 3: expected violation below the bound")
		}
		rep, err = lowerbound.Theorem3(p, p.N, bound)
		if err != nil {
			b.Fatal(err)
		}
		if rep.ViolationFound {
			b.Fatal("Theorem 3: unexpected violation at the bound")
		}
	}
	b.ReportMetric(float64(bound), "vticks_bound")
}

// BenchmarkTheorem4 runs the pair-free shift-and-chop chain.
func BenchmarkTheorem4(b *testing.B) {
	p := benchParams()
	m := lowerbound.MinPairFree(p)
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.Theorem4(p, p.D+m-1)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ViolationFound {
			b.Fatal("Theorem 4: expected violation below the bound")
		}
		rep, err = lowerbound.Theorem4(p, p.D+m)
		if err != nil {
			b.Fatal(err)
		}
		if rep.ViolationFound {
			b.Fatal("Theorem 4: unexpected violation at the bound")
		}
	}
	b.ReportMetric(float64(p.D+m), "vticks_bound")
}

// BenchmarkTheorem5 runs the discriminated mutator+accessor sum chain.
func BenchmarkTheorem5(b *testing.B) {
	p := benchParams()
	m := lowerbound.MinPairFree(p)
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.Theorem5(p, p.D-2*m, 3*m-1)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ViolationFound {
			b.Fatal("Theorem 5: expected violation below the bound")
		}
		rep, err = lowerbound.Theorem5(p, p.D-2*m, 3*m)
		if err != nil {
			b.Fatal(err)
		}
		if rep.ViolationFound {
			b.Fatal("Theorem 5: unexpected violation at the bound")
		}
	}
	b.ReportMetric(float64(p.D+m), "vticks_bound")
}

// BenchmarkUpperBounds validates the (corrected) Lemma 4 latencies per
// operation class across a workload, per class metrics included.
func BenchmarkUpperBounds(b *testing.B) {
	p := benchParams()
	var res *harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.Run(harness.Config{Params: p, TypeName: "queue",
			Algorithm: harness.AlgCore, Network: harness.NetUniform,
			Offsets: harness.OffZero, Seed: 23},
			harness.Workload{OpsPerProc: 12, MaxGap: p.D / 2, Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
	}
	want := map[string]simtime.Duration{
		adt.OpPeek:    p.D - p.X + p.Epsilon,
		adt.OpEnqueue: p.X + p.Epsilon,
		adt.OpDequeue: p.D + p.Epsilon,
	}
	for op, w := range want {
		if res.Stats[op].Max != w {
			b.Fatalf("%s max %v != %v", op, res.Stats[op].Max, w)
		}
		b.ReportMetric(float64(res.Stats[op].Max), "vticks_"+op)
	}
}

// BenchmarkFolklore measures the 2d baselines on the same workload for
// the headline comparison.
func BenchmarkFolklore(b *testing.B) {
	p := benchParams()
	for _, alg := range []string{harness.AlgCentral, harness.AlgSequencer} {
		b.Run(alg, func(b *testing.B) {
			var res *harness.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = harness.Run(harness.Config{Params: p, TypeName: "queue",
					Algorithm: alg, Network: harness.NetUniform,
					Offsets: harness.OffZero, Seed: 23},
					harness.Workload{OpsPerProc: 12, MaxGap: p.D / 2, Seed: 23})
				if err != nil {
					b.Fatal(err)
				}
			}
			for op, st := range res.Stats {
				if st.Max > 2*p.D {
					b.Fatalf("%s exceeded 2d: %v", op, st.Max)
				}
				b.ReportMetric(float64(st.Max), "vticks_"+op)
			}
		})
	}
}

// BenchmarkTradeoff sweeps the X parameter (the §5 tradeoff curve) and
// validates the frontier formulas.
func BenchmarkTradeoff(b *testing.B) {
	p := benchParams()
	var pts []harness.SweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = harness.SweepX(p, "queue", 8, 29)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		if pt.AOPMax != pt.AOPBound || pt.MOPMax != pt.MOPBound || pt.OOPMax != pt.OOPBound {
			b.Fatalf("X=%v: measured (%v,%v,%v) != bounds (%v,%v,%v)",
				pt.X, pt.AOPMax, pt.MOPMax, pt.OOPMax, pt.AOPBound, pt.MOPBound, pt.OOPBound)
		}
	}
	b.ReportMetric(float64(pts[0].AOPMax), "vticks_aop_at_x0")
	b.ReportMetric(float64(pts[len(pts)-1].AOPMax), "vticks_aop_at_xmax")
}

// BenchmarkAblationAllOOP measures the cost of disabling the paper's
// classification (DESIGN.md §5 ablation 1): every operation pays d+ε.
func BenchmarkAblationAllOOP(b *testing.B) {
	p := benchParams()
	var res *harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.Run(harness.Config{Params: p, TypeName: "queue",
			Algorithm: harness.AlgCoreAllOOP, Network: harness.NetUniform,
			Offsets: harness.OffZero, Seed: 23},
			harness.Workload{OpsPerProc: 12, MaxGap: p.D / 2, Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
	}
	for op, st := range res.Stats {
		if st.Max != p.D+p.Epsilon {
			b.Fatalf("all-OOP %s max %v != d+ε", op, st.Max)
		}
	}
	b.ReportMetric(float64(p.D+p.Epsilon), "vticks_all_ops")
}

// BenchmarkClockSync measures the Lundelius-Lynch synchronization round
// and validates that the adversarial configuration achieves exactly the
// optimal (1-1/n)u skew.
func BenchmarkClockSync(b *testing.B) {
	p := benchParams()
	net := sim.NewPairwiseNetwork(p.N, p.D-p.U/2)
	for i := 0; i < p.N; i++ {
		if i != 0 {
			net.Set(sim.ProcID(i), 0, p.D-p.U)
		}
		if i != 1 {
			net.Set(sim.ProcID(i), 1, p.D)
		}
	}
	var out []simtime.Duration
	var err error
	for i := 0; i < b.N; i++ {
		out, err = clocksync.Run(p, sim.ZeroOffsets(p.N), net)
		if err != nil {
			b.Fatal(err)
		}
	}
	if got := (out[0] - out[1]).Abs(); got != clocksync.Bound(p) {
		b.Fatalf("adversarial skew %v != optimal bound %v", got, clocksync.Bound(p))
	}
	b.ReportMetric(float64(clocksync.Bound(p)), "vticks_skew")
}

// BenchmarkFigure11 regenerates the computed class diagram over all
// registered data types.
func BenchmarkFigure11(b *testing.B) {
	var reports []classify.Report
	for _, name := range adt.Names() {
		dt, _ := adt.Lookup(name)
		reports = append(reports, classify.Classify(dt, classify.DefaultConfig()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if classify.Figure11(reports) == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkClassify measures the decision procedures across all types.
func BenchmarkClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range adt.Names() {
			dt, _ := adt.Lookup(name)
			classify.Classify(dt, classify.DefaultConfig())
		}
	}
}

// BenchmarkLincheck measures checker throughput on a concurrent history.
func BenchmarkLincheck(b *testing.B) {
	p := benchParams()
	res, err := harness.Run(harness.Config{Params: p, TypeName: "queue",
		Algorithm: harness.AlgCore, Network: harness.NetRandom,
		Offsets: harness.OffSpread, Seed: 37},
		harness.Workload{OpsPerProc: 8, MaxGap: 40, Seed: 37})
	if err != nil {
		b.Fatal(err)
	}
	dt, _ := adt.Lookup("queue")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !lincheck.CheckTrace(dt, res.Trace).Linearizable {
			b.Fatal("trace should be linearizable")
		}
	}
}

// benchWidths returns the worker-pool widths to benchmark: sequential,
// a couple of fixed fan-outs, and the machine's core count.
func benchWidths() []int {
	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		widths = append(widths, n)
	}
	return widths
}

// BenchmarkAllTables regenerates all five measured tables through the
// worker pool at several widths. Output is identical at every width (the
// pool derives per-run seeds from run identity, not scheduling), so the
// sub-benchmarks measure pure scheduling overhead/speedup.
func BenchmarkAllTables(b *testing.B) {
	p := benchParams()
	for _, parallel := range benchWidths() {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tabs, err := harness.MeasureAllTablesParallel(p, 17, parallel)
				if err != nil {
					b.Fatal(err)
				}
				if len(tabs) != 5 {
					b.Fatal("wrong table count")
				}
			}
		})
	}
}

// BenchmarkSweepParallel measures the X-sweep fan-out at several widths.
func BenchmarkSweepParallel(b *testing.B) {
	p := benchParams()
	for _, parallel := range benchWidths() {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.SweepXParallel(p, "queue", 8, 29, parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimThroughput measures raw simulator event throughput with a
// large replicated-log workload.
func BenchmarkSimThroughput(b *testing.B) {
	p := simtime.DefaultParams(8)
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Config{Params: p, TypeName: "log",
			Algorithm: harness.AlgCore, Network: harness.NetRandom,
			Offsets: harness.OffRandom, Seed: int64(i)},
			harness.Workload{OpsPerProc: 50, MaxGap: 10, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged() {
			b.Fatal("replicas diverged")
		}
	}
}

// BenchmarkBoundsTables regenerates the closed-form tables (no simulator)
// as the fast path of `lintime tables`.
func BenchmarkBoundsTables(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		tabs := bounds.AllTables(p)
		if len(tabs) != 5 {
			b.Fatal("wrong table count")
		}
	}
}

// Example output hook: verify the printed form of a table stays well
// formed (a smoke test compiled into the bench package).
func ExampleTable() {
	p := simtime.Params{N: 5, D: 300, U: 120, Epsilon: 96, X: 96}
	t := bounds.Table5(p)
	fmt.Println(t.Number)
	// Output: 5
}
