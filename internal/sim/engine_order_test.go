package sim

import (
	"container/heap"
	"math/rand"
	"testing"

	"lintime/internal/simtime"
)

// legacyEventHeap is the pre-rewrite event queue (heap-boxed *event via
// container/heap), kept here verbatim as the ordering oracle for the
// value-typed 4-ary queue. If the two ever disagree on pop order, golden
// outputs across the whole pipeline would shift.
type legacyEventHeap []*event

func (h legacyEventHeap) Len() int { return len(h) }
func (h legacyEventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind.rank() != h[j].kind.rank() {
		return h[i].kind.rank() < h[j].kind.rank()
	}
	return h[i].seq < h[j].seq
}
func (h legacyEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *legacyEventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *legacyEventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// randomEvents builds a batch of events with heavy time/kind collisions
// so the rank and seq tie-breaks are exercised, not just the time key.
func randomEvents(rng *rand.Rand, n int) []event {
	evs := make([]event, n)
	kinds := []eventKind{evInvoke, evDeliver, evTimer}
	for i := range evs {
		evs[i] = event{
			// Small time range forces many exact-time collisions.
			time: simtime.Time(rng.Intn(n / 4)),
			kind: kinds[rng.Intn(len(kinds))],
			proc: ProcID(rng.Intn(8)),
			seq:  int64(i),
		}
	}
	return evs
}

// TestQueueMatchesLegacyHeapOrder pops randomized event sets from both
// implementations and requires identical order, including interleaved
// push/pop phases (a pure sort would not catch sift bugs that only
// appear when the heap shrinks and regrows).
func TestQueueMatchesLegacyHeapOrder(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(400)
		evs := randomEvents(rng, n+4)

		var q eventQueue
		legacy := &legacyEventHeap{}
		heap.Init(legacy)

		next := 0
		step := 0
		for next < len(evs) || q.len() > 0 {
			// Interleave: push a random-size burst, then pop a random-size
			// burst, so both heaps pass through many intermediate shapes.
			burst := 1 + rng.Intn(8)
			for i := 0; i < burst && next < len(evs); i++ {
				ev := evs[next]
				next++
				q.push(ev)
				cp := ev
				heap.Push(legacy, &cp)
			}
			drain := rng.Intn(q.len() + 1)
			if next >= len(evs) {
				drain = q.len() // flush at the end
			}
			for i := 0; i < drain; i++ {
				got := q.pop()
				want := heap.Pop(legacy).(*event)
				if got.time != want.time || got.kind != want.kind || got.seq != want.seq {
					t.Fatalf("trial %d step %d: pop mismatch: got (t=%v kind=%d seq=%d), legacy (t=%v kind=%d seq=%d)",
						trial, step, got.time, got.kind, got.seq, want.time, want.kind, want.seq)
				}
				step++
			}
		}
		if legacy.Len() != 0 {
			t.Fatalf("trial %d: legacy heap not drained", trial)
		}
	}
}

// TestQueuePopReleasesPayload verifies popped slots are zeroed so payload
// references do not outlive the event (the value queue's backing array is
// retained across Engine.Reset, so a stale any would pin garbage).
func TestQueuePopReleasesPayload(t *testing.T) {
	var q eventQueue
	q.push(event{time: 1, payload: "pinned"})
	q.push(event{time: 2, payload: "pinned"})
	q.pop()
	q.pop()
	for i, slot := range q.items[:cap(q.items)] {
		if slot.payload != nil {
			t.Fatalf("slot %d retains payload %v after pop", i, slot.payload)
		}
	}
}

// TestQueueResetRetainsCapacity pins the reuse contract bench numbers
// depend on: reset keeps the backing array.
func TestQueueResetRetainsCapacity(t *testing.T) {
	var q eventQueue
	for i := 0; i < 100; i++ {
		q.push(event{time: simtime.Time(i)})
	}
	c := cap(q.items)
	q.reset()
	if q.len() != 0 {
		t.Fatalf("len %d after reset", q.len())
	}
	if cap(q.items) != c {
		t.Fatalf("reset dropped capacity: %d -> %d", c, cap(q.items))
	}
}
