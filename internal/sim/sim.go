// Package sim is a deterministic discrete-event simulator of the paper's
// system model (Section 2.2): n reliable processes communicating over
// reliable point-to-point channels whose delays lie in [d-u, d], with
// drift-free local clocks offset from real time by at most ε from one
// another.
//
// Algorithm replicas implement the Node interface; they are state machines
// triggered by exactly the paper's three event kinds — operation
// invocation, message receipt, and timer expiration — and interact with
// the world only through the Context passed to each handler. Every run is
// recorded as a Trace (timed views, message matching, operation instances)
// so the shifting machinery of Section 2.4 and the linearizability checker
// can operate on it afterwards.
package sim

import (
	"fmt"

	"lintime/internal/obs"
	"lintime/internal/simtime"
)

// ProcID identifies a process, 0 ≤ ProcID < n.
type ProcID int

// TimerID identifies a pending timer so it can be canceled.
type TimerID int64

// Invocation is an operation invocation delivered to a node. SeqID is
// unique across the run and must be echoed in the matching Respond call.
type Invocation struct {
	SeqID int64
	Op    string
	Arg   any
}

// Node is an algorithm replica: a state machine triggered by the three
// event kinds of the paper's model. Implementations must interact with
// the system only via the Context methods, and must eventually call
// ctx.Respond exactly once per invocation.
type Node interface {
	// Init runs once before any event is processed.
	Init(ctx Context)
	// OnInvoke handles an operation invocation by the local user.
	OnInvoke(ctx Context, inv Invocation)
	// OnMessage handles receipt of a message from another process.
	OnMessage(ctx Context, from ProcID, payload any)
	// OnTimer handles the expiration of a timer previously set with
	// SetTimer; tag is the value supplied when the timer was set.
	OnTimer(ctx Context, tag any)
}

// Context gives a node access to its environment during one event. It is
// only valid for the duration of the handler call. The virtual-time
// engine in this package and the real-time goroutine transport in
// internal/rtnet both implement it, so the same Node runs on either
// substrate.
type Context interface {
	// ID returns the process id of this node.
	ID() ProcID
	// N returns the number of processes in the system.
	N() int
	// Now returns the current real time. Real time is not observable by
	// correct algorithms; it is exposed for trace annotations and tests.
	// Algorithms must use LocalTime.
	Now() simtime.Time
	// LocalTime returns the process's local clock reading: real time plus
	// the process's constant offset.
	LocalTime() simtime.Time
	// SetTimer schedules a timer to fire after the given local-clock
	// duration (equal to the real duration, since clocks do not drift).
	// It returns an id usable with CancelTimer.
	SetTimer(after simtime.Duration, tag any) TimerID
	// SetTimerAtLocal schedules a timer to fire when the local clock
	// reads localTime, which must not be in the local past.
	SetTimerAtLocal(localTime simtime.Time, tag any) TimerID
	// CancelTimer cancels a pending timer. Canceling an already-fired or
	// already-canceled timer is a no-op.
	CancelTimer(id TimerID)
	// Send sends a message to another process. Sending to self is not
	// part of the model.
	Send(to ProcID, payload any)
	// Broadcast sends the payload to every other process.
	Broadcast(payload any)
	// Respond delivers the response for a pending invocation to the user.
	Respond(seqID int64, ret any)
}

// engineCtx is the virtual-time engine's Context.
type engineCtx struct {
	eng  *Engine
	proc ProcID
}

func (c *engineCtx) ID() ProcID { return c.proc }

func (c *engineCtx) N() int { return len(c.eng.nodes) }

func (c *engineCtx) Now() simtime.Time { return c.eng.now }

func (c *engineCtx) LocalTime() simtime.Time {
	return c.eng.now.Add(c.eng.offsets[c.proc])
}

func (c *engineCtx) SetTimer(after simtime.Duration, tag any) TimerID {
	if after < 0 {
		panic(fmt.Sprintf("sim: negative timer duration %v at p%d", after, c.proc))
	}
	return c.eng.setTimer(c.proc, c.eng.now.Add(after), tag)
}

func (c *engineCtx) SetTimerAtLocal(localTime simtime.Time, tag any) TimerID {
	real := localTime.Add(-c.eng.offsets[c.proc])
	if real < c.eng.now {
		panic(fmt.Sprintf("sim: timer in the past (local %v) at p%d", localTime, c.proc))
	}
	return c.eng.setTimer(c.proc, real, tag)
}

func (c *engineCtx) CancelTimer(id TimerID) { c.eng.cancelTimer(id) }

func (c *engineCtx) Send(to ProcID, payload any) {
	if to == c.proc {
		panic(fmt.Sprintf("sim: p%d attempted to send to itself", c.proc))
	}
	c.eng.send(c.proc, to, payload)
}

func (c *engineCtx) Broadcast(payload any) {
	for p := 0; p < c.N(); p++ {
		if ProcID(p) != c.proc {
			c.eng.send(c.proc, ProcID(p), payload)
		}
	}
}

func (c *engineCtx) Respond(seqID int64, ret any) {
	c.eng.respond(c.proc, seqID, ret)
}

// Tracer exposes the engine's installed tracer (obs.Nop when tracing is
// off). Algorithms that record protocol-phase child spans (the quorum
// backend) discover it by asserting their Context against a small
// interface — the Context interface itself stays substrate-neutral.
func (c *engineCtx) Tracer() obs.Tracer {
	if c.eng.tracer == nil {
		return obs.Nop
	}
	return c.eng.tracer
}
