package sim

import (
	"fmt"

	"lintime/internal/obs"
	"lintime/internal/simtime"
)

var crashesInjected = obs.Default.Counter("crashes_injected")

// FaultPlan describes the fault axes of one run: per-process crash times
// and per-message loss. Both axes extend the explicit delay-vector
// adversary format — a crash is one scheduled tick after which a process
// neither sends nor receives, and a drop names a send ordinal that is
// lost in transit.
//
// The crash model is crash-stop: a crashed process takes no further
// steps. Events already scheduled at a crashed process are consumed
// silently (deliveries are marked Dropped in the trace, timers and
// invocations vanish), and since a crashed process never handles an
// event it never sends after its crash time.
type FaultPlan struct {
	// Crashes holds one crash time per process (simtime.Infinity =
	// never crashes). Empty means no crashes.
	Crashes []simtime.Time
	// Drops lists 0-based send ordinals (the engine's global message
	// counter) whose messages are lost in transit: the send happens and
	// is recorded, but no delivery is ever scheduled.
	Drops []int64
}

// NumCrashed returns the number of processes with a finite crash time.
func (f FaultPlan) NumCrashed() int {
	n := 0
	for _, c := range f.Crashes {
		if c != simtime.Infinity {
			n++
		}
	}
	return n
}

// SetFaults installs a fault plan for the next run. Must be called after
// Reset and before the first event is processed; Reset clears any
// installed plan, so pooled engines never inherit a previous run's
// faults.
func (e *Engine) SetFaults(f FaultPlan) error {
	if e.started {
		panic("sim: SetFaults after the run started")
	}
	if len(f.Crashes) != 0 && len(f.Crashes) != e.params.N {
		return fmt.Errorf("sim: %d crash times for N=%d", len(f.Crashes), e.params.N)
	}
	for p, c := range f.Crashes {
		if c < 0 {
			return fmt.Errorf("sim: crash time %v for p%d is negative", c, p)
		}
	}
	for _, ix := range f.Drops {
		if ix < 0 {
			return fmt.Errorf("sim: drop index %d is negative", ix)
		}
	}
	e.crashes = append(e.crashes[:0], f.Crashes...)
	if e.drops == nil {
		e.drops = make(map[int64]bool, len(f.Drops))
	}
	for _, ix := range f.Drops {
		e.drops[ix] = true
	}
	e.trace.Crashes = append([]simtime.Time(nil), f.Crashes...)
	e.trace.Drops = append([]int64(nil), f.Drops...)
	crashesInjected.Add(int64(f.NumCrashed()))
	return nil
}

// crashedAt reports whether process p has crashed by real time t under
// the installed fault plan.
func (e *Engine) crashedAt(p ProcID, t simtime.Time) bool {
	return len(e.crashes) > 0 && e.crashes[p] != simtime.Infinity && t >= e.crashes[p]
}
