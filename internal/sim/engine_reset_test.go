package sim

import (
	"hash/fnv"
	"reflect"
	"sync"
	"testing"

	"lintime/internal/simtime"
)

// runPingWorkload drives a deterministic 2-proc ping workload with timers
// on the given engine and returns its trace.
func runPingWorkload(t *testing.T, eng *Engine) *Trace {
	t.Helper()
	for i := 0; i < 8; i++ {
		eng.InvokeAt(0, simtime.Time(10+500*i), "ping", i)
	}
	eng.InvokeAt(1, 20, "ping", 99)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func pingConfig() (simtime.Params, []simtime.Duration, Network, func() []Node) {
	p := testParams(2)
	nodes := func() []Node {
		return []Node{&pingNode{peer: 1}, &pingNode{peer: 0}}
	}
	return p, []simtime.Duration{0, 15}, UniformNetwork{D: 90}, nodes
}

// TestResetNoStateLeak runs a workload, resets, reruns, and requires the
// second trace to be byte-identical to a fresh engine's — plus empty
// bookkeeping (queue, timer maps, pending ops) at every boundary.
func TestResetNoStateLeak(t *testing.T) {
	p, offs, net, mkNodes := pingConfig()

	reused, err := NewEngine(p, offs, net, mkNodes())
	if err != nil {
		t.Fatal(err)
	}
	first := runPingWorkload(t, reused)

	checkDrained := func(stage string) {
		t.Helper()
		if n := reused.QueueLen(); n != 0 {
			t.Fatalf("%s: %d events still queued", stage, n)
		}
		if len(reused.canceled) != 0 || len(reused.pending) != 0 {
			t.Fatalf("%s: canceled=%d pending=%d, want empty", stage,
				len(reused.canceled), len(reused.pending))
		}
	}
	checkDrained("after first run")

	if err := reused.Reset(p, offs, net, mkNodes()); err != nil {
		t.Fatal(err)
	}
	if reused.Now() != 0 {
		t.Fatalf("Now = %v after Reset", reused.Now())
	}
	if got := reused.Trace(); len(got.Steps) != 0 || len(got.Msgs) != 0 || len(got.Ops) != 0 {
		t.Fatalf("trace not empty after Reset: %d/%d/%d",
			len(got.Steps), len(got.Msgs), len(got.Ops))
	}
	if len(reused.opIndex) != 0 {
		t.Fatalf("opIndex has %d stale entries after Reset", len(reused.opIndex))
	}
	if reused.OnRespond != nil {
		t.Fatal("OnRespond survived Reset")
	}
	if reused.StepSignature() != fnvOffset {
		t.Fatal("step signature not rearmed by Reset")
	}

	second := runPingWorkload(t, reused)
	checkDrained("after second run")

	fresh, err := NewEngine(p, offs, net, mkNodes())
	if err != nil {
		t.Fatal(err)
	}
	want := runPingWorkload(t, fresh)

	if !reflect.DeepEqual(second, want) {
		t.Fatalf("reused-engine trace diverged from fresh engine:\nreused: %+v\nfresh:  %+v", second, want)
	}
	// The first run's trace must have survived the Reset + rerun intact:
	// results escape to callers (harness.Result, adversary.Outcome) and are
	// read after the engine has moved on.
	if !reflect.DeepEqual(first, want) {
		t.Fatal("first run's escaped trace was corrupted by Reset/rerun")
	}
	if &first.Ops[0] == &second.Ops[0] {
		t.Fatal("reused engine handed out the same Ops backing array twice")
	}
}

// TestResetConcurrentEscapedTraces exercises the escape contract under
// -race: readers walk traces from earlier runs while the engine reruns.
func TestResetConcurrentEscapedTraces(t *testing.T) {
	p, offs, net, mkNodes := pingConfig()
	eng, err := NewEngine(p, offs, net, mkNodes())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for run := 0; run < 10; run++ {
		if run > 0 {
			if err := eng.Reset(p, offs, net, mkNodes()); err != nil {
				t.Fatal(err)
			}
		}
		tr := runPingWorkload(t, eng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for _, st := range tr.Steps {
				n += int(st.Kind)
			}
			for _, op := range tr.Ops {
				if op.RespondTime == simtime.Infinity {
					t.Error("escaped trace has incomplete op")
				}
			}
			_ = n
		}()
	}
	wg.Wait()
}

// TestResetRejectsBadConfig pins that Reset validates like NewEngine.
func TestResetRejectsBadConfig(t *testing.T) {
	p, offs, net, mkNodes := pingConfig()
	eng, err := NewEngine(p, offs, net, mkNodes())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(p, offs[:1], net, mkNodes()); err == nil {
		t.Fatal("Reset accepted wrong offsets length")
	}
	if err := eng.Reset(p, offs, net, mkNodes()[:1]); err == nil {
		t.Fatal("Reset accepted wrong node count")
	}
}

// stepsSignature is the oracle: the fuzzer's FNV-1a hash over recorded
// Steps, which the engine's incremental StepSignature must reproduce.
func stepsSignature(tr *Trace) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 2)
	for _, st := range tr.Steps {
		buf[0] = byte(st.Kind)
		buf[1] = byte(st.Proc)
		h.Write(buf)
	}
	return h.Sum64()
}

// TestTraceLevels verifies each level runs the identical execution (same
// Ops, same step signature) while dropping only the records it promises
// to drop.
func TestTraceLevels(t *testing.T) {
	p, offs, net, mkNodes := pingConfig()

	run := func(level TraceLevel) (*Engine, *Trace) {
		eng, err := NewEngine(p, offs, net, mkNodes())
		if err != nil {
			t.Fatal(err)
		}
		eng.SetTraceLevel(level)
		return eng, runPingWorkload(t, eng)
	}

	fullEng, full := run(TraceFull)
	opsEng, ops := run(TraceOps)
	offEng, off := run(TraceOff)

	if len(full.Steps) == 0 || len(full.Msgs) == 0 {
		t.Fatal("TraceFull recorded nothing")
	}
	if got := fullEng.StepSignature(); got != stepsSignature(full) {
		t.Fatalf("incremental signature %x != Steps hash %x", got, stepsSignature(full))
	}

	if len(ops.Steps) != 0 {
		t.Fatalf("TraceOps recorded %d steps", len(ops.Steps))
	}
	if !reflect.DeepEqual(ops.Msgs, full.Msgs) {
		t.Fatal("TraceOps message records differ from TraceFull")
	}
	if !reflect.DeepEqual(ops.Ops, full.Ops) {
		t.Fatal("TraceOps op records differ from TraceFull")
	}
	if opsEng.StepSignature() != fullEng.StepSignature() {
		t.Fatal("step signature differs across trace levels")
	}
	if err := ops.CheckAdmissible(); err != nil {
		t.Fatalf("TraceOps trace not admissible: %v", err)
	}

	if len(off.Steps) != 0 || len(off.Msgs) != 0 {
		t.Fatalf("TraceOff recorded %d steps, %d msgs", len(off.Steps), len(off.Msgs))
	}
	if !reflect.DeepEqual(off.Ops, full.Ops) {
		t.Fatal("TraceOff op records differ from TraceFull")
	}
	if offEng.StepSignature() != fullEng.StepSignature() {
		t.Fatal("step signature differs with tracing off")
	}
}

// TestSetTraceLevelAfterStartPanics pins the misuse guard.
func TestSetTraceLevelAfterStartPanics(t *testing.T) {
	p, offs, net, mkNodes := pingConfig()
	eng, err := NewEngine(p, offs, net, mkNodes())
	if err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 10, "ping", 0)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("SetTraceLevel after start did not panic")
		}
	}()
	eng.SetTraceLevel(TraceOps)
}
