package sim

import (
	"testing"

	"lintime/internal/simtime"
)

// testParams is a small configuration used across the sim tests.
func testParams(n int) simtime.Params {
	return simtime.Params{N: n, D: 100, U: 40, Epsilon: 30, X: 20}
}

// echoNode responds to every invocation immediately with its argument.
type echoNode struct{}

func (echoNode) Init(Context) {}
func (echoNode) OnInvoke(ctx Context, inv Invocation) {
	ctx.Respond(inv.SeqID, inv.Arg)
}
func (echoNode) OnMessage(Context, ProcID, any) {}
func (echoNode) OnTimer(Context, any)           {}

// pingNode sends a message to its peer on invocation and responds when the
// peer's acknowledgment arrives.
type pingNode struct {
	peer    ProcID
	pending int64
}

func (n *pingNode) Init(Context) {}
func (n *pingNode) OnInvoke(ctx Context, inv Invocation) {
	n.pending = inv.SeqID
	ctx.Send(n.peer, "ping")
}
func (n *pingNode) OnMessage(ctx Context, from ProcID, payload any) {
	switch payload {
	case "ping":
		ctx.Send(from, "pong")
	case "pong":
		ctx.Respond(n.pending, "done")
	}
}
func (n *pingNode) OnTimer(Context, any) {}

// timerNode responds after a fixed timer delay and can cancel timers.
type timerNode struct {
	delay simtime.Duration
}

func (n *timerNode) Init(Context) {}
func (n *timerNode) OnInvoke(ctx Context, inv Invocation) {
	ctx.SetTimer(n.delay, inv.SeqID)
}
func (n *timerNode) OnMessage(Context, ProcID, any) {}
func (n *timerNode) OnTimer(ctx Context, tag any) {
	ctx.Respond(tag.(int64), "fired")
}

func newEngine(t *testing.T, params simtime.Params, offsets []simtime.Duration, net Network, nodes []Node) *Engine {
	t.Helper()
	eng, err := NewEngine(params, offsets, net, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEchoImmediateResponse(t *testing.T) {
	p := testParams(1)
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{echoNode{}})
	eng.InvokeAt(0, 10, "op", 42)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	op := tr.Ops[0]
	if op.Ret != 42 || op.InvokeTime != 10 || op.RespondTime != 10 {
		t.Errorf("op record = %+v", op)
	}
	if op.Latency() != 0 {
		t.Errorf("latency = %v, want 0", op.Latency())
	}
}

func TestPingPongDelays(t *testing.T) {
	p := testParams(2)
	nodes := []Node{&pingNode{peer: 1}, &pingNode{peer: 0}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 80}, nodes)
	eng.InvokeAt(0, 0, "rtt", nil)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Ops[0].Latency(); got != 160 {
		t.Errorf("round trip latency = %v, want 160", got)
	}
	if len(tr.Msgs) != 2 {
		t.Fatalf("recorded %d messages, want 2", len(tr.Msgs))
	}
	for _, m := range tr.Msgs {
		if !m.Received() || m.Delay() != 80 {
			t.Errorf("message %+v", m)
		}
	}
}

func TestTimerFires(t *testing.T) {
	p := testParams(1)
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{&timerNode{delay: 55}})
	eng.InvokeAt(0, 100, "wait", nil)
	tr := eng.Run()
	if got := tr.Ops[0].Latency(); got != 55 {
		t.Errorf("timer latency = %v, want 55", got)
	}
}

// cancelNode sets two timers and cancels the earlier one.
type cancelNode struct {
	fired []string
}

func (n *cancelNode) Init(Context) {}
func (n *cancelNode) OnInvoke(ctx Context, inv Invocation) {
	early := ctx.SetTimer(10, "early")
	ctx.SetTimer(20, inv.SeqID)
	ctx.CancelTimer(early)
}
func (n *cancelNode) OnMessage(Context, ProcID, any) {}
func (n *cancelNode) OnTimer(ctx Context, tag any) {
	if s, ok := tag.(string); ok {
		n.fired = append(n.fired, s)
		return
	}
	ctx.Respond(tag.(int64), "late")
}

func TestTimerCancel(t *testing.T) {
	p := testParams(1)
	node := &cancelNode{}
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{node})
	eng.InvokeAt(0, 0, "op", nil)
	tr := eng.Run()
	if len(node.fired) != 0 {
		t.Errorf("canceled timer fired: %v", node.fired)
	}
	if tr.Ops[0].Latency() != 20 {
		t.Errorf("latency = %v, want 20", tr.Ops[0].Latency())
	}
}

func TestLocalClockOffsets(t *testing.T) {
	p := testParams(2)
	offsets := []simtime.Duration{0, 25}
	var locals []simtime.Time
	probe := &probeNode{onInvoke: func(ctx Context, inv Invocation) {
		locals = append(locals, ctx.LocalTime())
		ctx.Respond(inv.SeqID, nil)
	}}
	eng := newEngine(t, p, offsets, UniformNetwork{D: 100}, []Node{probe, probe})
	eng.InvokeAt(0, 50, "a", nil)
	eng.InvokeAt(1, 200, "b", nil)
	eng.Run()
	if locals[0] != 50 {
		t.Errorf("p0 local time = %v, want 50", locals[0])
	}
	if locals[1] != 225 {
		t.Errorf("p1 local time = %v, want 225 (real 200 + offset 25)", locals[1])
	}
}

// probeNode lets tests inject handler behavior.
type probeNode struct {
	onInvoke  func(Context, Invocation)
	onMessage func(Context, ProcID, any)
	onTimer   func(Context, any)
}

func (n *probeNode) Init(Context) {}
func (n *probeNode) OnInvoke(ctx Context, inv Invocation) {
	if n.onInvoke != nil {
		n.onInvoke(ctx, inv)
	}
}
func (n *probeNode) OnMessage(ctx Context, from ProcID, payload any) {
	if n.onMessage != nil {
		n.onMessage(ctx, from, payload)
	}
}
func (n *probeNode) OnTimer(ctx Context, tag any) {
	if n.onTimer != nil {
		n.onTimer(ctx, tag)
	}
}

func TestSetTimerAtLocal(t *testing.T) {
	p := testParams(1)
	offsets := []simtime.Duration{30}
	var respondAt simtime.Time
	probe := &probeNode{}
	probe.onInvoke = func(ctx Context, inv Invocation) {
		// Local clock reads real+30; fire when local clock reads 100,
		// i.e. real time 70.
		ctx.SetTimerAtLocal(100, inv.SeqID)
	}
	probe.onTimer = func(ctx Context, tag any) {
		respondAt = ctx.Now()
		ctx.Respond(tag.(int64), nil)
	}
	eng := newEngine(t, p, offsets, UniformNetwork{D: 100}, []Node{probe})
	eng.InvokeAt(0, 0, "op", nil)
	eng.Run()
	if respondAt != 70 {
		t.Errorf("timer fired at real %v, want 70", respondAt)
	}
}

func TestPendingConstraintEnforced(t *testing.T) {
	p := testParams(1)
	// Node that never responds: the second invocation overlaps the first.
	probe := &probeNode{}
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{probe})
	eng.InvokeAt(0, 0, "a", nil)
	eng.InvokeAt(0, 5, "b", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on overlapping invocations at one process")
		}
	}()
	eng.Run()
}

func TestSendToSelfPanics(t *testing.T) {
	p := testParams(2)
	probe := &probeNode{onInvoke: func(ctx Context, inv Invocation) {
		ctx.Send(ctx.ID(), "boom")
	}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, []Node{probe, probe})
	eng.InvokeAt(0, 0, "a", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self-send")
		}
	}()
	eng.Run()
}

func TestDeterministicReplay(t *testing.T) {
	// Two identical engines produce identical traces.
	run := func() *Trace {
		p := testParams(3)
		nodes := []Node{&pingNode{peer: 1}, &pingNode{peer: 2}, &pingNode{peer: 0}}
		eng, _ := NewEngine(p, SpreadOffsets(3, p.Epsilon), NewRandomNetwork(p.D, p.U, 7), nodes)
		eng.InvokeAt(0, 0, "a", nil)
		eng.InvokeAt(1, 3, "b", nil)
		eng.InvokeAt(2, 6, "c", nil)
		return eng.Run()
	}
	a, b := run(), run()
	if len(a.Ops) != len(b.Ops) || len(a.Msgs) != len(b.Msgs) || len(a.Steps) != len(b.Steps) {
		t.Fatal("traces differ in size")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Errorf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
	for i := range a.Msgs {
		if a.Msgs[i].RecvTime != b.Msgs[i].RecvTime {
			t.Errorf("msg %d differs", i)
		}
	}
}

func TestBroadcast(t *testing.T) {
	p := testParams(4)
	var got []ProcID
	recv := &probeNode{onMessage: func(ctx Context, from ProcID, payload any) {
		got = append(got, ctx.ID())
	}}
	sender := &probeNode{onInvoke: func(ctx Context, inv Invocation) {
		ctx.Broadcast("hello")
		ctx.Respond(inv.SeqID, nil)
	}}
	eng := newEngine(t, p, ZeroOffsets(4), UniformNetwork{D: 90}, []Node{sender, recv, recv, recv})
	eng.InvokeAt(0, 0, "b", nil)
	tr := eng.Run()
	if len(got) != 3 {
		t.Errorf("broadcast reached %d processes, want 3", len(got))
	}
	if len(tr.Msgs) != 3 {
		t.Errorf("trace has %d messages, want 3", len(tr.Msgs))
	}
}

func TestOnRespondHookAndClosedLoop(t *testing.T) {
	p := testParams(1)
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{&timerNode{delay: 10}})
	count := 0
	eng.OnRespond = func(rec OpRecord) {
		count++
		if count < 5 {
			eng.InvokeAt(rec.Proc, rec.RespondTime.Add(1), "next", count)
		}
	}
	eng.InvokeAt(0, 0, "first", nil)
	tr := eng.Run()
	if len(tr.Ops) != 5 {
		t.Errorf("closed loop ran %d ops, want 5", len(tr.Ops))
	}
	if err := tr.CheckComplete(); err != nil {
		t.Error(err)
	}
}

func TestRunUntil(t *testing.T) {
	p := testParams(1)
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{&timerNode{delay: 50}})
	eng.InvokeAt(0, 0, "op", nil)
	tr := eng.RunUntil(30)
	if err := tr.CheckComplete(); err == nil {
		t.Error("op should still be pending at time 30")
	}
	tr = eng.RunUntil(simtime.Infinity)
	if err := tr.CheckComplete(); err != nil {
		t.Error(err)
	}
}

func TestNegativeTimerPanics(t *testing.T) {
	p := testParams(1)
	probe := &probeNode{onInvoke: func(ctx Context, inv Invocation) {
		ctx.SetTimer(-1, nil)
	}}
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{probe})
	eng.InvokeAt(0, 0, "a", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative timer")
		}
	}()
	eng.Run()
}

func TestEngineValidation(t *testing.T) {
	p := testParams(2)
	if _, err := NewEngine(p, ZeroOffsets(3), UniformNetwork{D: 100}, []Node{echoNode{}, echoNode{}}); err == nil {
		t.Error("offset count mismatch should error")
	}
	if _, err := NewEngine(p, ZeroOffsets(2), UniformNetwork{D: 100}, []Node{echoNode{}}); err == nil {
		t.Error("node count mismatch should error")
	}
	if _, err := NewEngine(p, []simtime.Duration{0, 31}, UniformNetwork{D: 100}, []Node{echoNode{}, echoNode{}}); err == nil {
		t.Error("excessive skew should error")
	}
	bad := p
	bad.U = 200
	if _, err := NewEngine(bad, ZeroOffsets(2), UniformNetwork{D: 100}, []Node{echoNode{}, echoNode{}}); err == nil {
		t.Error("invalid params should error")
	}
}

func TestNetworkDelayOutOfRangePanics(t *testing.T) {
	p := testParams(2)
	probe := &probeNode{onInvoke: func(ctx Context, inv Invocation) {
		ctx.Send(1, "x")
	}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 10}, []Node{probe, probe}) // 10 < d-u = 60
	eng.InvokeAt(0, 0, "a", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range delay")
		}
	}()
	eng.Run()
}

func TestTraceAdmissibility(t *testing.T) {
	p := testParams(2)
	nodes := []Node{&pingNode{peer: 1}, &pingNode{peer: 0}}
	eng := newEngine(t, p, SpreadOffsets(2, p.Epsilon), UniformNetwork{D: p.D}, nodes)
	eng.InvokeAt(0, 0, "rtt", nil)
	tr := eng.Run()
	if err := tr.CheckAdmissible(); err != nil {
		t.Errorf("engine-produced run must be admissible: %v", err)
	}
}

func TestTraceHelpers(t *testing.T) {
	p := testParams(2)
	nodes := []Node{&timerNode{delay: 10}, &timerNode{delay: 30}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, nodes)
	eng.InvokeAt(0, 0, "fast", nil)
	eng.InvokeAt(1, 5, "slow", nil)
	tr := eng.Run()

	ops := tr.CompletedOps()
	if len(ops) != 2 || ops[0].Op != "fast" || ops[1].Op != "slow" {
		t.Errorf("CompletedOps = %+v", ops)
	}
	if got := tr.OpsOf(1); len(got) != 1 || got[0].Op != "slow" {
		t.Errorf("OpsOf(1) = %+v", got)
	}
	if max, ok := tr.MaxLatency("slow"); !ok || max != 30 {
		t.Errorf("MaxLatency(slow) = %v, %v", max, ok)
	}
	if _, ok := tr.MaxLatency("missing"); ok {
		t.Error("MaxLatency(missing) should report not found")
	}
	if tr.LastTime() != 35 {
		t.Errorf("LastTime = %v, want 35", tr.LastTime())
	}
	if tr.LastTimeOf(0) != 10 {
		t.Errorf("LastTimeOf(0) = %v, want 10", tr.LastTimeOf(0))
	}
	cl := tr.Clone()
	cl.Ops[0].Op = "mutated"
	if tr.Ops[0].Op != "fast" {
		t.Error("Clone should not share op slices")
	}
}

func TestCirculantNetwork(t *testing.T) {
	// The Theorem 3 delay matrix: d_{ij} = d - ((i-j) mod k)·u/k.
	d, u := simtime.Duration(100), simtime.Duration(40)
	net := CirculantNetwork(4, 4, d, u)
	if got := net.Delays[0][0]; got != 100 {
		t.Errorf("d00 = %v, want 100", got)
	}
	if got := net.Delays[1][0]; got != 90 {
		t.Errorf("d10 = %v, want 90 (mod=1)", got)
	}
	if got := net.Delays[0][1]; got != 70 {
		t.Errorf("d01 = %v, want 70 (mod=3)", got)
	}
	if got := net.Delays[0][3]; got != 90 {
		t.Errorf("d03 = %v, want 90 (mod=1)", got)
	}
	p := simtime.Params{N: 4, D: d, U: u, Epsilon: 30}
	if err := net.Validate(p); err != nil {
		t.Errorf("circulant delays must be admissible: %v", err)
	}
}

func TestOffsetsHelpers(t *testing.T) {
	if got := SpreadOffsets(3, 30); got[0] != 0 || got[1] != 15 || got[2] != 30 {
		t.Errorf("SpreadOffsets = %v", got)
	}
	if got := AlternatingOffsets(4, 9); got[0] != 0 || got[1] != 9 || got[2] != 0 || got[3] != 9 {
		t.Errorf("AlternatingOffsets = %v", got)
	}
	if got := SpreadOffsets(1, 30); got[0] != 0 {
		t.Errorf("SpreadOffsets(1) = %v", got)
	}
	ro := RandomOffsets(5, 30, 3)
	if err := ValidateOffsets(ro, 30); err != nil {
		t.Errorf("RandomOffsets out of range: %v", err)
	}
	if err := ValidateOffsets([]simtime.Duration{0, 50}, 30); err == nil {
		t.Error("ValidateOffsets should reject skew 50 > 30")
	}
}

func TestRandomNetworkRange(t *testing.T) {
	net := NewRandomNetwork(100, 40, 11)
	for i := 0; i < 200; i++ {
		d := net.Delay(0, 1, 0, int64(i))
		if d < 60 || d > 100 {
			t.Fatalf("random delay %v outside [60, 100]", d)
		}
	}
	zero := NewRandomNetwork(100, 0, 11)
	if zero.Delay(0, 1, 0, 0) != 100 {
		t.Error("u=0 must give delay d")
	}
}

func TestAdversarialNetwork(t *testing.T) {
	net := AdversarialNetwork{D: 100, U: 40, N: 4}
	if net.Delay(0, 3, 0, 0) != 100 {
		t.Error("low senders should see max delay")
	}
	if net.Delay(3, 0, 0, 0) != 60 {
		t.Error("high senders should see min delay")
	}
}

func TestPairwiseNetworkValidate(t *testing.T) {
	p := testParams(2)
	net := NewPairwiseNetwork(2, p.D)
	if err := net.Validate(p); err != nil {
		t.Error(err)
	}
	net.Set(0, 1, 10) // below d-u = 60
	if err := net.Validate(p); err == nil {
		t.Error("out-of-range pairwise delay should fail validation")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	// A runaway algorithm (timer loop) trips the MaxSteps guard instead
	// of hanging.
	p := testParams(1)
	probe := &probeNode{}
	probe.onInvoke = func(ctx Context, inv Invocation) { ctx.SetTimer(1, "loop") }
	probe.onTimer = func(ctx Context, tag any) { ctx.SetTimer(1, tag) }
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{probe})
	eng.MaxSteps = 50
	eng.InvokeAt(0, 0, "spin", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected MaxSteps panic")
		}
	}()
	eng.Run()
}

func TestCheckAdmissibleNegativeCases(t *testing.T) {
	p := testParams(2)
	base := func() *Trace {
		return &Trace{Params: p, Offsets: []simtime.Duration{0, 0}}
	}

	tr := base()
	tr.Offsets[1] = p.Epsilon + 1
	if err := tr.CheckAdmissible(); err == nil {
		t.Error("excess skew should fail")
	}

	tr = base()
	tr.Msgs = []MsgRecord{{ID: 1, From: 0, To: 1, SendTime: 0, RecvTime: simtime.Time(p.D + 1)}}
	if err := tr.CheckAdmissible(); err == nil {
		t.Error("slow message should fail")
	}

	tr = base()
	tr.Msgs = []MsgRecord{{ID: 1, From: 0, To: 1, SendTime: 0, RecvTime: simtime.Time(p.MinDelay() - 1)}}
	if err := tr.CheckAdmissible(); err == nil {
		t.Error("fast message should fail")
	}

	// Unreceived message: fine if the recipient stopped before send+d...
	tr = base()
	tr.Msgs = []MsgRecord{{ID: 1, From: 0, To: 1, SendTime: 0, RecvTime: simtime.Infinity}}
	tr.Steps = []StepRecord{{Proc: 1, Time: simtime.Time(p.D - 1), Kind: StepTimer}}
	if err := tr.CheckAdmissible(); err != nil {
		t.Errorf("halted recipient should be fine: %v", err)
	}
	// ...but not if it stayed alive past send+d.
	tr.Steps[0].Time = simtime.Time(p.D)
	if err := tr.CheckAdmissible(); err == nil {
		t.Error("alive recipient with unreceived message should fail")
	}
}

func TestDeliverBeforeTimerAtSameInstant(t *testing.T) {
	// The tie-breaking rule: a message arriving at the exact instant a
	// timer fires is processed first.
	p := testParams(2)
	var order []string
	receiver := &probeNode{
		onMessage: func(Context, ProcID, any) { order = append(order, "msg") },
		onTimer: func(ctx Context, tag any) {
			order = append(order, "timer")
			ctx.Respond(tag.(int64), nil)
		},
	}
	sender := &probeNode{onInvoke: func(ctx Context, inv Invocation) {
		ctx.Send(1, "x")
		ctx.Respond(inv.SeqID, nil)
	}}
	receiver.onInvoke = func(ctx Context, inv Invocation) {
		// Timer fires exactly when the message (delay 100, sent at 0)
		// arrives.
		ctx.SetTimer(100, inv.SeqID)
	}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, []Node{sender, receiver})
	eng.InvokeAt(0, 0, "send", nil) // message arrives at 100
	eng.InvokeAt(1, 0, "arm", nil)  // timer fires at 100
	eng.Run()
	if len(order) != 2 || order[0] != "msg" || order[1] != "timer" {
		t.Errorf("order = %v, want [msg timer]", order)
	}
}

func TestStepKindString(t *testing.T) {
	if StepInvoke.String() != "invoke" || StepDeliver.String() != "deliver" || StepTimer.String() != "timer" {
		t.Error("step kind names wrong")
	}
	if StepKind(9).String() != "StepKind(9)" {
		t.Error("unknown step kind should format numerically")
	}
}

func TestSequenceNetwork(t *testing.T) {
	p := simtime.Params{N: 2, D: 100, U: 40}
	net := SequenceNetwork{Delays: []simtime.Duration{60, 100, 75}, Default: 80}
	if err := net.Validate(p); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	// Delays are indexed by global send order; past the end, Default.
	for i, want := range []simtime.Duration{60, 100, 75, 80, 80} {
		if got := net.Delay(0, 1, 0, int64(i)); got != want {
			t.Errorf("msg %d: delay %v, want %v", i, got, want)
		}
	}
	if got := net.Delay(0, 1, 0, -1); got != 80 {
		t.Errorf("negative index: delay %v, want Default", got)
	}
	// Validation catches out-of-range entries and defaults.
	bad := []SequenceNetwork{
		{Delays: []simtime.Duration{59}, Default: 80},  // below d-u
		{Delays: []simtime.Duration{101}, Default: 80}, // above d
		{Delays: nil, Default: 101},                    // default above d
		{Delays: nil, Default: 59},                     // default below d-u
	}
	for i, n := range bad {
		if err := n.Validate(p); err == nil {
			t.Errorf("bad network %d accepted", i)
		}
	}
}

func TestSequenceNetworkDrivesEngine(t *testing.T) {
	// Replaying an explicit delay vector must reproduce delays exactly, in
	// global send order.
	p := simtime.Params{N: 2, D: 100, U: 40}
	delays := []simtime.Duration{60, 100, 80}
	eng, err := NewEngine(p, ZeroOffsets(2), SequenceNetwork{Delays: delays, Default: p.D},
		[]Node{&pingNode{peer: 1}, &pingNode{peer: 0}})
	if err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, "ping", nil)
	tr := eng.Run()
	if len(tr.Msgs) == 0 {
		t.Fatal("no messages recorded")
	}
	for i, m := range tr.Msgs {
		want := p.D
		if i < len(delays) {
			want = delays[i]
		}
		if got := m.Delay(); got != want {
			t.Errorf("msg %d delay %v, want %v", i, got, want)
		}
	}
}
