package sim

import (
	"fmt"
	"math/rand"

	"lintime/internal/simtime"
)

// Network determines per-message delays. Implementations must keep every
// returned delay in [d-u, d] for the run to be admissible; the engine
// records actual delays in the trace so admissibility can be verified
// after the fact.
type Network interface {
	// Delay returns the delay of the msgIndex-th message (global send
	// order) from one process to another, sent at the given real time.
	Delay(from, to ProcID, sendTime simtime.Time, msgIndex int64) simtime.Duration
}

// UniformNetwork delays every message by the same constant.
type UniformNetwork struct {
	D simtime.Duration
}

// Delay implements Network.
func (n UniformNetwork) Delay(ProcID, ProcID, simtime.Time, int64) simtime.Duration { return n.D }

// PairwiseNetwork gives every ordered pair of processes a fixed delay —
// the "pair-wise uniform delays" runs from Section 2.4 of the paper.
type PairwiseNetwork struct {
	Delays [][]simtime.Duration // Delays[from][to]
}

// NewPairwiseNetwork builds a pairwise network with every entry set to d.
func NewPairwiseNetwork(n int, d simtime.Duration) *PairwiseNetwork {
	m := make([][]simtime.Duration, n)
	for i := range m {
		m[i] = make([]simtime.Duration, n)
		for j := range m[i] {
			m[i][j] = d
		}
	}
	return &PairwiseNetwork{Delays: m}
}

// Set overrides the delay from one process to another and returns the
// network for chaining.
func (n *PairwiseNetwork) Set(from, to ProcID, d simtime.Duration) *PairwiseNetwork {
	n.Delays[from][to] = d
	return n
}

// Delay implements Network.
func (n *PairwiseNetwork) Delay(from, to ProcID, _ simtime.Time, _ int64) simtime.Duration {
	return n.Delays[from][to]
}

// Validate checks that all delays lie in [d-u, d].
func (n *PairwiseNetwork) Validate(p simtime.Params) error {
	for i := range n.Delays {
		for j := range n.Delays[i] {
			if i == j {
				continue
			}
			d := n.Delays[i][j]
			if d < p.MinDelay() || d > p.D {
				return fmt.Errorf("sim: delay p%d→p%d = %v outside [%v, %v]", i, j, d, p.MinDelay(), p.D)
			}
		}
	}
	return nil
}

// CirculantNetwork implements the delay matrix from Step 1 of the
// Theorem 3 proof: for i, j < k the delay is d - ((i-j) mod k)·u/k, and
// d - u/2 otherwise. u must be divisible by 2k for exactness.
func CirculantNetwork(n, k int, d, u simtime.Duration) *PairwiseNetwork {
	net := NewPairwiseNetwork(n, d-u/2)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			mod := ((i-j)%k + k) % k
			net.Delays[i][j] = d - simtime.Duration(mod)*u/simtime.Duration(k)
		}
	}
	return net
}

// RandomNetwork draws each message's delay independently and uniformly
// from [d-u, d] with a deterministic seed.
type RandomNetwork struct {
	D, U simtime.Duration
	rng  *rand.Rand
}

// NewRandomNetwork returns a seeded random network.
func NewRandomNetwork(d, u simtime.Duration, seed int64) *RandomNetwork {
	return &RandomNetwork{D: d, U: u, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements Network.
func (n *RandomNetwork) Delay(ProcID, ProcID, simtime.Time, int64) simtime.Duration {
	if n.U == 0 {
		return n.D
	}
	return n.D - simtime.Duration(n.rng.Int63n(int64(n.U)+1))
}

// SequenceNetwork replays an explicit per-message delay assignment: the
// msgIndex-th message sent in the run (global send order) gets
// Delays[msgIndex], and messages past the end of the vector get Default.
// This is the substrate of internal/adversary's schedule exploration: an
// adversary is free to fix every delay individually as long as each stays
// in [d-u, d], and the engine panics if one strays, so generated
// schedules are admissible by construction.
type SequenceNetwork struct {
	Delays  []simtime.Duration
	Default simtime.Duration
}

// Delay implements Network.
func (n SequenceNetwork) Delay(_, _ ProcID, _ simtime.Time, msgIndex int64) simtime.Duration {
	if msgIndex >= 0 && msgIndex < int64(len(n.Delays)) {
		return n.Delays[msgIndex]
	}
	return n.Default
}

// Validate checks that every assigned delay (and the default) lies in
// [d-u, d].
func (n SequenceNetwork) Validate(p simtime.Params) error {
	if n.Default < p.MinDelay() || n.Default > p.D {
		return fmt.Errorf("sim: default delay %v outside [%v, %v]", n.Default, p.MinDelay(), p.D)
	}
	for i, d := range n.Delays {
		if d < p.MinDelay() || d > p.D {
			return fmt.Errorf("sim: delay[%d] = %v outside [%v, %v]", i, d, p.MinDelay(), p.D)
		}
	}
	return nil
}

// AdversarialNetwork stresses timestamp ordering: messages *from* lower
// process ids travel at the maximum delay d while messages from higher ids
// travel at the minimum d-u, maximizing reordering between processes.
type AdversarialNetwork struct {
	D, U simtime.Duration
	N    int
}

// Delay implements Network.
func (n AdversarialNetwork) Delay(from, _ ProcID, _ simtime.Time, _ int64) simtime.Duration {
	if int(from) < n.N/2 {
		return n.D
	}
	return n.D - n.U
}

// ClockOffsets builds clock-offset assignments.

// ZeroOffsets gives every process offset 0 (perfectly synchronized).
func ZeroOffsets(n int) []simtime.Duration { return make([]simtime.Duration, n) }

// SpreadOffsets spreads offsets evenly across [0, ε], putting the maximum
// allowed skew between the first and last process.
func SpreadOffsets(n int, eps simtime.Duration) []simtime.Duration {
	out := make([]simtime.Duration, n)
	if n <= 1 {
		return out
	}
	for i := range out {
		out[i] = eps * simtime.Duration(i) / simtime.Duration(n-1)
	}
	return out
}

// AlternatingOffsets gives even processes offset 0 and odd processes
// offset ε — the worst case for neighboring timestamp comparisons.
func AlternatingOffsets(n int, eps simtime.Duration) []simtime.Duration {
	out := make([]simtime.Duration, n)
	for i := range out {
		if i%2 == 1 {
			out[i] = eps
		}
	}
	return out
}

// RandomOffsets draws offsets uniformly from [0, ε] with a deterministic
// seed.
func RandomOffsets(n int, eps simtime.Duration, seed int64) []simtime.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]simtime.Duration, n)
	for i := range out {
		if eps > 0 {
			out[i] = simtime.Duration(rng.Int63n(int64(eps) + 1))
		}
	}
	return out
}

// ValidateOffsets checks that all pairwise skews are at most ε.
func ValidateOffsets(offsets []simtime.Duration, eps simtime.Duration) error {
	for i := range offsets {
		for j := range offsets {
			if (offsets[i] - offsets[j]).Abs() > eps {
				return fmt.Errorf("sim: skew |c%d-c%d| = %v exceeds ε = %v",
					i, j, (offsets[i] - offsets[j]).Abs(), eps)
			}
		}
	}
	return nil
}
