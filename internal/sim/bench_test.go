package sim

import (
	"testing"

	"lintime/internal/simtime"
)

// pingChain bounces a message around the ring count times, then responds.
type pingChain struct {
	remaining  int
	pending    int64
	hasPending bool
}

func (n *pingChain) Init(Context) {}
func (n *pingChain) OnInvoke(ctx Context, inv Invocation) {
	n.pending = inv.SeqID
	n.hasPending = true
	n.remaining = 1000
	ctx.Send((ctx.ID()+1)%ProcID(ctx.N()), "ring")
}
func (n *pingChain) OnMessage(ctx Context, from ProcID, payload any) {
	n.remaining--
	if n.remaining <= 0 && n.hasPending {
		ctx.Respond(n.pending, "done")
		n.hasPending = false
		return
	}
	ctx.Send((ctx.ID()+1)%ProcID(ctx.N()), payload)
}
func (n *pingChain) OnTimer(Context, any) {}

// BenchmarkEngineEvents measures raw event throughput: one message
// circulating a ring of 8 processes for 1000 hops.
func BenchmarkEngineEvents(b *testing.B) {
	p := simtime.Params{N: 8, D: 100, U: 40, Epsilon: 30, X: 20}
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, p.N)
		for j := range nodes {
			nodes[j] = &pingChain{}
		}
		eng, err := NewEngine(p, ZeroOffsets(p.N), UniformNetwork{D: p.D}, nodes)
		if err != nil {
			b.Fatal(err)
		}
		eng.InvokeAt(0, 0, "ring", nil)
		tr := eng.Run()
		if err := tr.CheckComplete(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimerChurn measures set/cancel-heavy timer usage, the pattern
// of Algorithm 1's execute timers.
func BenchmarkTimerChurn(b *testing.B) {
	p := simtime.Params{N: 1, D: 100, U: 40, Epsilon: 30, X: 20}
	churner := &probeNode{}
	var count int
	churner.onInvoke = func(ctx Context, inv Invocation) {
		count = 0
		ctx.SetTimer(1, inv.SeqID)
	}
	churner.onTimer = func(ctx Context, tag any) {
		count++
		// Set two timers, cancel one — the replica's drain pattern.
		keep := ctx.SetTimer(1, tag)
		kill := ctx.SetTimer(2, "dead")
		ctx.CancelTimer(kill)
		if count >= 500 {
			ctx.CancelTimer(keep)
			ctx.Respond(tag.(int64), nil)
		}
	}
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(p, ZeroOffsets(1), UniformNetwork{D: p.D}, []Node{churner})
		if err != nil {
			b.Fatal(err)
		}
		eng.InvokeAt(0, 0, "churn", nil)
		if err := eng.Run().CheckComplete(); err != nil {
			b.Fatal(err)
		}
	}
}
