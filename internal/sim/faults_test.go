package sim

import (
	"strings"
	"testing"

	"lintime/internal/simtime"
)

// neverCrash builds a crash vector with every process alive.
func neverCrash(n int) []simtime.Time {
	out := make([]simtime.Time, n)
	for i := range out {
		out[i] = simtime.Infinity
	}
	return out
}

func TestFaultPlanNumCrashed(t *testing.T) {
	if got := (FaultPlan{}).NumCrashed(); got != 0 {
		t.Errorf("empty plan NumCrashed = %d, want 0", got)
	}
	plan := FaultPlan{Crashes: []simtime.Time{simtime.Infinity, 5, 0}}
	if got := plan.NumCrashed(); got != 2 {
		t.Errorf("NumCrashed = %d, want 2", got)
	}
}

func TestSetFaultsValidation(t *testing.T) {
	p := testParams(2)
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, []Node{echoNode{}, echoNode{}})
	if err := eng.SetFaults(FaultPlan{Crashes: []simtime.Time{0}}); err == nil {
		t.Error("crash vector of wrong length should error")
	}
	if err := eng.SetFaults(FaultPlan{Crashes: []simtime.Time{-1, simtime.Infinity}}); err == nil {
		t.Error("negative crash time should error")
	}
	if err := eng.SetFaults(FaultPlan{Drops: []int64{-1}}); err == nil {
		t.Error("negative drop ordinal should error")
	}
	eng.InvokeAt(0, 0, "op", 1)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Error("SetFaults after the run started should panic")
		}
	}()
	eng.SetFaults(FaultPlan{})
}

// TestCrashStopSuppressesEvents drives the crash-stop semantics end to
// end: a delivery scheduled at a crashed process is marked Dropped in
// the trace, a timer at the crashed process vanishes (leaving its
// operation legitimately pending), and an invocation scheduled after the
// crash leaves no OpRecord at all.
func TestCrashStopSuppressesEvents(t *testing.T) {
	p := testParams(2)
	nodes := []Node{&pingNode{peer: 1}, &timerNode{delay: 100}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, nodes)
	crashes := neverCrash(2)
	crashes[1] = 50
	if err := eng.SetFaults(FaultPlan{Crashes: crashes}); err != nil {
		t.Fatal(err)
	}
	// p1's op invokes at 0 and sets a timer for t=100; the crash at 50
	// suppresses the timer, so the op stays pending at a crashed process.
	eng.InvokeAt(1, 0, "wait", nil)
	// p0's ping sends at 10, delivery at 110 lands on crashed p1 and is
	// dropped; p0 never gets its pong and stays pending while alive.
	eng.InvokeAt(0, 10, "rtt", nil)
	// Invocations at a crashed process leave no record.
	eng.InvokeAt(1, 200, "ghost", nil)
	tr := eng.Run()

	if got := tr.CrashTimeOf(1); got != 50 {
		t.Errorf("CrashTimeOf(1) = %v, want 50", got)
	}
	if got := tr.CrashTimeOf(5); got != simtime.Infinity {
		t.Errorf("CrashTimeOf(out of range) = %v, want Infinity", got)
	}
	if len(tr.Msgs) != 1 || !tr.Msgs[0].Dropped {
		t.Fatalf("expected one dropped message, got %+v", tr.Msgs)
	}
	if len(tr.Ops) != 2 {
		t.Fatalf("expected 2 op records (the post-crash invocation must vanish), got %d", len(tr.Ops))
	}
	if err := tr.CheckAdmissible(); err != nil {
		t.Errorf("crash-side drop should be admissible: %v", err)
	}
	// Completeness: the pending op at crashed p1 is fine, but p0 is alive
	// and pending — the crash-aware check must still flag it.
	if err := tr.CheckCompleteExceptCrashed(); err == nil {
		t.Error("pending op at live p0 should fail crash-aware completeness")
	} else if !strings.Contains(err.Error(), "p0") {
		t.Errorf("completeness error blames the wrong process: %v", err)
	}
	if len(tr.CompletedOps()) != 0 {
		t.Errorf("no op completed, got %v", tr.CompletedOps())
	}
}

// TestCrashedInvokerIsLegitimatelyPending pins the passing side of the
// crash-aware completeness check: when the only pending operation sits
// at a crashed process, the trace is complete.
func TestCrashedInvokerIsLegitimatelyPending(t *testing.T) {
	p := testParams(2)
	nodes := []Node{echoNode{}, &timerNode{delay: 100}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, nodes)
	crashes := neverCrash(2)
	crashes[1] = 50
	if err := eng.SetFaults(FaultPlan{Crashes: crashes}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, "op", 7)
	eng.InvokeAt(1, 0, "wait", nil)
	tr := eng.Run()
	if err := tr.CheckCompleteExceptCrashed(); err != nil {
		t.Errorf("pending op at crashed p1 should be legitimate: %v", err)
	}
	if err := tr.CheckComplete(); err == nil {
		t.Error("the crash-blind completeness check should still flag the pending op")
	}
}

// TestTransitDropLosesMessage covers the loss axis: the dropped ordinal's
// send is recorded (Dropped, never received) but no delivery happens, and
// admissibility accepts the loss exactly because the plan names it.
func TestTransitDropLosesMessage(t *testing.T) {
	p := testParams(2)
	nodes := []Node{&pingNode{peer: 1}, &pingNode{peer: 0}}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: 100}, nodes)
	if err := eng.SetFaults(FaultPlan{Drops: []int64{0}}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, "rtt", nil)
	tr := eng.Run()
	if len(tr.Msgs) != 1 {
		t.Fatalf("expected only the dropped send in the trace, got %d messages", len(tr.Msgs))
	}
	m := tr.Msgs[0]
	if !m.Dropped || m.Received() {
		t.Errorf("dropped message record = %+v", m)
	}
	if err := tr.CheckAdmissible(); err != nil {
		t.Errorf("planned transit drop should be admissible: %v", err)
	}
	// The same loss with the plan erased is inadmissible: nothing
	// accounts for the message.
	tr2 := tr.Clone()
	tr2.Drops = nil
	if err := tr2.CheckAdmissible(); err == nil {
		t.Error("transit drop outside the plan should be inadmissible")
	}
}

// TestCheckAdmissibleCrashFaultCases covers the crash-extension error
// branches of CheckAdmissible directly on hand-built traces.
func TestCheckAdmissibleCrashFaultCases(t *testing.T) {
	p := testParams(2)
	base := &Trace{Params: p, Offsets: ZeroOffsets(2)}
	bad := base.Clone()
	bad.Crashes = []simtime.Time{0}
	if err := bad.CheckAdmissible(); err == nil {
		t.Error("crash vector of wrong length should be inadmissible")
	}
	// A crash-side drop whose recipient was still alive at the delivery
	// instant is unaccounted for.
	early := base.Clone()
	early.Crashes = []simtime.Time{simtime.Infinity, 500}
	early.Msgs = []MsgRecord{{ID: 1, From: 0, To: 1, SendTime: 0, RecvTime: 90, Dropped: true}}
	if err := early.CheckAdmissible(); err == nil {
		t.Error("drop at a not-yet-crashed recipient should be inadmissible")
	}
	// The same drop after the crash time is fine (and its delay is still
	// range-checked).
	late := base.Clone()
	late.Crashes = []simtime.Time{simtime.Infinity, 50}
	late.Msgs = []MsgRecord{{ID: 1, From: 0, To: 1, SendTime: 0, RecvTime: 90, Dropped: true}}
	if err := late.CheckAdmissible(); err != nil {
		t.Errorf("crash-side drop after the crash should be admissible: %v", err)
	}
}

// respondWrongNode responds to a sequence id that is not pending.
type respondWrongNode struct{}

func (respondWrongNode) Init(Context) {}
func (respondWrongNode) OnInvoke(ctx Context, inv Invocation) {
	ctx.Respond(inv.SeqID+999, nil)
}
func (respondWrongNode) OnMessage(Context, ProcID, any) {}
func (respondWrongNode) OnTimer(Context, any)           {}

func TestEngineAccessorsAndPanics(t *testing.T) {
	p := testParams(2)
	net := NewPairwiseNetwork(2, 80)
	if got := net.Delay(0, 1, 3, 0); got != 80 {
		t.Errorf("pairwise Delay = %v, want 80", got)
	}
	eng := newEngine(t, p, ZeroOffsets(2), net, []Node{echoNode{}, echoNode{}})
	if got := eng.Params(); got != p {
		t.Errorf("Params() = %+v, want %+v", got, p)
	}
	eng.InvokeAt(0, 10, "op", 1)
	eng.Run()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("InvokeAt in the past should panic")
			}
		}()
		eng.InvokeAt(0, 0, "late", nil)
	}()
}

func TestRespondNotPendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("responding to a non-pending op should panic")
		}
	}()
	p := testParams(1)
	eng := newEngine(t, p, ZeroOffsets(1), UniformNetwork{D: 100}, []Node{respondWrongNode{}})
	eng.InvokeAt(0, 0, "op", nil)
	eng.Run()
}
