package sim

import (
	"sync"
	"testing"

	"lintime/internal/simtime"
)

// TestTraceConcurrentReaders exercises every read-only Trace accessor
// from many goroutines at once; run under -race this asserts that a
// completed trace is safe to share across the parallel experiment
// runner's workers.
func TestTraceConcurrentReaders(t *testing.T) {
	tr := &Trace{
		Params:  simtime.Params{N: 3, D: 100, U: 50, Epsilon: 25, X: 25},
		Offsets: []simtime.Duration{0, 10, 20},
	}
	for i := 0; i < 60; i++ {
		proc := ProcID(i % 3)
		at := simtime.Time(i * 10)
		tr.Steps = append(tr.Steps, StepRecord{Proc: proc, Time: at, Kind: StepInvoke})
		tr.Ops = append(tr.Ops, OpRecord{
			Proc: proc, SeqID: int64(i), Op: "op",
			InvokeTime: at, RespondTime: at.Add(50),
		})
		if i%2 == 0 {
			tr.Msgs = append(tr.Msgs, MsgRecord{
				ID: int64(i), From: proc, To: (proc + 1) % 3,
				SendTime: at, RecvTime: at.Add(75),
			})
		}
	}
	// One pending op so both branches of the latency helpers run.
	tr.Ops = append(tr.Ops, OpRecord{Proc: 0, SeqID: 99, Op: "pending",
		InvokeTime: 700, RespondTime: simtime.Infinity})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := tr.LastTime(); got != 590 {
					t.Errorf("LastTime = %v, want 590", got)
				}
				tr.LastTimeOf(1)
				if n := len(tr.CompletedOps()); n != 60 {
					t.Errorf("CompletedOps = %d, want 60", n)
				}
				tr.OpsOf(2)
				if max, ok := tr.MaxLatency("op"); !ok || max != 50 {
					t.Errorf("MaxLatency = %v,%v, want 50,true", max, ok)
				}
				if err := tr.CheckAdmissible(); err != nil {
					t.Errorf("CheckAdmissible: %v", err)
				}
				tr.Clone()
			}
		}()
	}
	wg.Wait()
}
