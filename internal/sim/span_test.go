package sim

import (
	"testing"

	"lintime/internal/obs"
	"lintime/internal/simtime"
)

// spanNode exercises every lifecycle stage in one operation: the invoke
// broadcasts an update to a peer and arms a stabilization timer longer
// than the delivery bound, so the ring must record
// invoke → broadcast → deliver → timer → respond in that order.
type spanNode struct {
	peer  ProcID
	delay simtime.Duration
}

func (n *spanNode) Init(Context) {}
func (n *spanNode) OnInvoke(ctx Context, inv Invocation) {
	ctx.Send(n.peer, "update")
	ctx.SetTimer(n.delay, inv.SeqID)
}
func (n *spanNode) OnMessage(Context, ProcID, any) {}
func (n *spanNode) OnTimer(ctx Context, tag any) {
	ctx.Respond(tag.(int64), "ok")
}

func TestSpanLifecycleOrder(t *testing.T) {
	p := testParams(2)
	ring := obs.NewRing(64)
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: p.D},
		[]Node{&spanNode{peer: 1, delay: p.D + 50}, &spanNode{peer: 0, delay: p.D + 50}})
	eng.SetTracer(ring)
	seq := eng.InvokeAt(0, 10, "inc", 1)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}

	evs := ring.Span(seq)
	wantStages := []obs.Stage{obs.StageInvoke, obs.StageBroadcast, obs.StageDeliver,
		obs.StageTimer, obs.StageRespond}
	if len(evs) != len(wantStages) {
		t.Fatalf("span %d: got %d events %+v, want stages %v", seq, len(evs), evs, wantStages)
	}
	for i, ev := range evs {
		if ev.Stage != wantStages[i] {
			t.Fatalf("span %d event %d: got %v, want %v (all: %+v)", seq, i, ev.Stage, wantStages[i], evs)
		}
	}
	if evs[0].Op != "inc" || evs[0].Proc != 0 || evs[0].Time != 10 {
		t.Fatalf("invoke event: %+v", evs[0])
	}
	if evs[2].Proc != 1 {
		t.Fatalf("deliver landed on proc %d, want the peer 1", evs[2].Proc)
	}
	// Delivery obeys the network envelope [d-u, d] after the broadcast,
	// and the timer fires strictly later by construction.
	if lat := evs[2].Time - evs[1].Time; lat < int64(p.D-p.U) || lat > int64(p.D) {
		t.Fatalf("delivery latency %d outside [%d, %d]", lat, p.D-p.U, p.D)
	}
	if evs[3].Time != 10+int64(p.D+50) {
		t.Fatalf("timer fired at %d, want %d", evs[3].Time, 10+int64(p.D+50))
	}
	if evs[4].Time != evs[3].Time {
		t.Fatalf("respond at %d, want the timer tick %d", evs[4].Time, evs[3].Time)
	}
}

// TestSpanAttributionAcrossOps runs two sequential operations and checks
// events never leak across spans, and that an idle process's ring stays
// consistent after the tracer is detached.
func TestSpanAttributionAcrossOps(t *testing.T) {
	p := testParams(2)
	ring := obs.NewRing(64)
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: p.D},
		[]Node{&spanNode{peer: 1, delay: p.D + 50}, &spanNode{peer: 0, delay: p.D + 50}})
	eng.SetTracer(ring)
	s1 := eng.InvokeAt(0, 10, "a", nil)
	s2 := eng.InvokeAt(0, 1000, "b", nil)
	if tr := eng.Run(); tr.CheckComplete() != nil {
		t.Fatal("incomplete trace")
	}
	if n1, n2 := len(ring.Span(s1)), len(ring.Span(s2)); n1 != 5 || n2 != 5 {
		t.Fatalf("span events: s1=%d s2=%d, want 5 each", n1, n2)
	}
	for _, ev := range ring.Span(s2) {
		if ev.Time < 1000 {
			t.Fatalf("span %d has an event from before its invoke: %+v", s2, ev)
		}
	}
	// Detaching (Nop) stops recording without disturbing retained events.
	eng.SetTracer(obs.Nop)
	before := len(ring.Events())
	eng.InvokeAt(0, eng.Now().Add(10), "c", nil)
	eng.Run()
	if got := len(ring.Events()); got != before {
		t.Fatalf("ring grew after detach: %d -> %d", before, got)
	}
}

// TestEngineMetrics wires EngineMetrics and checks the event counter and
// queue high-water mark reflect a run.
func TestEngineMetrics(t *testing.T) {
	p := testParams(2)
	reg := obs.NewRegistry()
	m := &EngineMetrics{
		Events:   reg.Counter("sim_events_total"),
		QueueMax: reg.Max("sim_queue_max"),
	}
	eng := newEngine(t, p, ZeroOffsets(2), UniformNetwork{D: p.D},
		[]Node{&spanNode{peer: 1, delay: p.D + 50}, &spanNode{peer: 0, delay: p.D + 50}})
	eng.SetMetrics(m)
	eng.InvokeAt(0, 10, "a", nil)
	eng.Run()
	// One op dispatches invoke + deliver + timer = 3 events.
	if got := m.Events.Value(); got != 3 {
		t.Fatalf("events counter: got %d, want 3", got)
	}
	if got := m.QueueMax.Value(); got < 1 {
		t.Fatalf("queue high-water: got %d, want >= 1", got)
	}
}
