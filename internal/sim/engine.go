package sim

import (
	"fmt"

	"lintime/internal/obs"
	"lintime/internal/simtime"
)

// eventKind distinguishes scheduled event types.
type eventKind uint8

const (
	evInvoke eventKind = iota
	evDeliver
	evTimer
)

// event is one scheduled occurrence in the simulation. Events are value
// types stored inline in the engine's queue: scheduling an event never
// heap-allocates and popping one never chases a pointer.
type event struct {
	time simtime.Time
	seq  int64 // tie-break: FIFO among simultaneous events
	kind eventKind
	proc ProcID

	// evInvoke
	inv Invocation
	// evDeliver
	from     ProcID
	payload  any
	msgIndex int // index into trace.Msgs (-1 when message records are off)
	// evTimer
	timerID TimerID
	tag     any

	// span is the tracing span (operation SeqID) the event is attributed
	// to: the sender's pending operation for deliveries, the registering
	// process's pending operation for timers. Only stamped while a tracer
	// is installed; -1 (or the zero value on untraced runs) means
	// unattributed. sent is the send tick of a traced delivery, for
	// causal delivery accounting.
	span int64
	sent simtime.Time
}

// rank orders simultaneous events: message deliveries before timer
// expirations before invocations. Delivering messages first is load
// bearing for timestamp-ordered algorithms: a message carrying a smaller
// timestamp that arrives at exactly the instant a stabilization timer
// fires must be enqueued before the timer's drain runs, or replicas
// execute mutators in different orders (the u+ε wait of Algorithm 1 is
// tight at this boundary when d ≤ 2u+ε).
func (k eventKind) rank() int {
	switch k {
	case evDeliver:
		return 0
	case evTimer:
		return 1
	default:
		return 2
	}
}

// eventBefore is the engine's total event order: (time, kind rank, seq).
// It is exactly the order the original container/heap implementation
// used, so run outputs are unchanged; the ordering-equivalence property
// test in engine_order_test.go pins the two against each other.
func eventBefore(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if ra, rb := a.kind.rank(), b.kind.rank(); ra != rb {
		return ra < rb
	}
	return a.seq < b.seq
}

// eventQueue is a value-typed 4-ary min-heap over eventBefore. Compared
// with the previous []*event + container/heap queue it removes the
// per-event heap allocation, the any-interface boxing on every push/pop,
// and half the tree depth (a 4-ary sift touches up to three more
// comparisons per level but half as many cache lines, which wins on the
// engine's pop-heavy usage). The backing array is retained across
// Engine.Reset, so a reused engine schedules events with zero
// steady-state allocation.
type eventQueue struct {
	items []event
}

func (q *eventQueue) len() int { return len(q.items) }

// peek returns the minimum event without removing it. The pointer is
// valid only until the next push or pop.
func (q *eventQueue) peek() *event { return &q.items[0] }

// reset empties the queue, retaining capacity. Slots are zeroed so stale
// payload references do not pin memory.
func (q *eventQueue) reset() {
	clear(q.items)
	q.items = q.items[:0]
}

func (q *eventQueue) push(ev event) {
	q.items = append(q.items, ev)
	// Sift up.
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(&q.items[i], &q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = event{} // release payload references
	q.items = q.items[:n]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(&q.items[c], &q.items[min]) {
				min = c
			}
		}
		if !eventBefore(&q.items[min], &q.items[i]) {
			break
		}
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
	return top
}

// TraceLevel selects how much of a run the engine records. Every level
// produces identical executions (event order, responses, latencies); the
// levels only drop record-keeping the caller will never read.
type TraceLevel int

const (
	// TraceFull records Steps, Msgs and Ops — everything the shifting
	// machinery, the diagram renderer, and CheckAdmissible's
	// unreceived-message check can ask for. The default.
	TraceFull TraceLevel = iota
	// TraceOps skips the per-process step views (Trace.Steps) but keeps
	// Msgs and Ops: enough for latency statistics, the linearizability
	// checker, delay-admissibility checks on complete runs, and the
	// fuzzer's event-ordering signatures (which come from the engine's
	// running step hash, not the Steps slice).
	TraceOps
	// TraceOff additionally skips message records (Trace.Msgs); only Ops
	// are kept, the minimum for responses to be observable at all.
	TraceOff
)

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters; the engine
// maintains a running FNV-1a hash over the processed-event sequence so
// consumers (the fuzzer's coverage signatures) need not re-walk a
// recorded Steps slice.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Engine drives a deterministic simulation of n nodes. Events at the same
// real time are processed in scheduling order, so runs are fully
// reproducible.
//
// An Engine may be reused across runs via Reset, which retains the event
// queue's backing array, the bookkeeping maps, and trace-capacity hints —
// the allocation profile of a reused engine is a handful of slice headers
// per run instead of a heap node per event.
type Engine struct {
	params  simtime.Params
	offsets []simtime.Duration
	net     Network
	nodes   []Node

	now      simtime.Time
	queue    eventQueue
	ctxs     []engineCtx // one reusable Context per process
	seq      int64
	timerSeq int64
	opSeq    int64
	msgCount int64
	canceled map[TimerID]bool
	pending  map[ProcID]int64 // pending op SeqID per process
	opIndex  map[int64]int    // SeqID → index into trace.Ops
	crashes  []simtime.Time   // per-proc crash times (empty = no faults)
	drops    map[int64]bool   // send ordinals lost in transit
	trace    *Trace
	started  bool
	level    TraceLevel
	stepSig  uint64 // running FNV-1a over (kind, proc) of processed events

	// metrics, when non-nil, receives live engine counters; tracer, when
	// enabled, receives span waypoints. Both default off: the hot loop
	// pays one predictable nil/bool branch per event, keeping the
	// TraceOff path inside the PR 4 allocation and latency budget
	// (guarded by `make bench-compare` against BENCH_engine.json).
	metrics *EngineMetrics
	tracer  obs.Tracer
	tracing bool
	// causal is tracer's CausalTracer extension when it has one; handling
	// is the span of the event currently being dispatched (-1 outside a
	// handler). While a handler for span S runs, sends and timer
	// registrations it makes inherit S — this is what attributes a quorum
	// replica's ack to the coordinator's operation rather than to the
	// replica's own (unrelated) pending span.
	causal   obs.CausalTracer
	handling int64

	// OnRespond, if non-nil, is called after every operation response with
	// the completed record. Handlers may schedule further invocations (at
	// or after the current time) — this is how closed-loop workloads run.
	OnRespond func(rec OpRecord)

	// MaxSteps bounds the number of processed events as a runaway guard.
	MaxSteps int
}

// NewEngine builds an engine. offsets must have one entry per node and
// respect the skew bound ε; net provides message delays.
func NewEngine(params simtime.Params, offsets []simtime.Duration, net Network, nodes []Node) (*Engine, error) {
	eng := &Engine{
		canceled: map[TimerID]bool{},
		pending:  map[ProcID]int64{},
		opIndex:  map[int64]int{},
		MaxSteps: 10_000_000,
	}
	if err := eng.Reset(params, offsets, net, nodes); err != nil {
		return nil, err
	}
	return eng, nil
}

// Reset rearms the engine for a fresh run with the given configuration,
// retaining the event queue's backing array, the bookkeeping maps, the
// per-process contexts, and capacity hints for the trace slices (which
// are preallocated to the previous run's sizes). The trace returned by
// the previous run is NOT recycled — it remains valid after Reset, so
// results that escaped to callers are never corrupted by engine reuse.
// OnRespond is cleared; MaxSteps and the trace level are retained.
func (e *Engine) Reset(params simtime.Params, offsets []simtime.Duration, net Network, nodes []Node) error {
	if err := params.Validate(); err != nil {
		return err
	}
	if len(nodes) != params.N {
		return fmt.Errorf("sim: %d nodes for N=%d", len(nodes), params.N)
	}
	if len(offsets) != params.N {
		return fmt.Errorf("sim: %d offsets for N=%d", len(offsets), params.N)
	}
	if err := ValidateOffsets(offsets, params.Epsilon); err != nil {
		return err
	}
	e.params = params
	e.offsets = append(e.offsets[:0], offsets...)
	e.net = net
	e.nodes = nodes
	e.now = 0
	e.queue.reset()
	if cap(e.ctxs) < params.N {
		e.ctxs = make([]engineCtx, params.N)
	}
	e.ctxs = e.ctxs[:params.N]
	for p := range e.ctxs {
		e.ctxs[p] = engineCtx{eng: e, proc: ProcID(p)}
	}
	e.seq, e.timerSeq, e.opSeq, e.msgCount = 0, 0, 0, 0
	clear(e.canceled)
	clear(e.pending)
	clear(e.opIndex)
	e.crashes = e.crashes[:0]
	clear(e.drops)
	// Preallocate the fresh trace to the previous run's high-water sizes:
	// steady-state reuse pays one exact-size allocation per slice instead
	// of a geometric regrowth chain.
	var stepsHint, msgsHint, opsHint int
	if e.trace != nil {
		stepsHint, msgsHint, opsHint = len(e.trace.Steps), len(e.trace.Msgs), len(e.trace.Ops)
	}
	e.trace = &Trace{
		Params:  params,
		Offsets: append([]simtime.Duration(nil), offsets...),
		Steps:   make([]StepRecord, 0, stepsHint),
		Msgs:    make([]MsgRecord, 0, msgsHint),
		Ops:     make([]OpRecord, 0, opsHint),
	}
	e.started = false
	e.stepSig = fnvOffset
	e.OnRespond = nil
	e.metrics = nil
	e.tracer = nil
	e.tracing = false
	e.causal = nil
	e.handling = -1
	if e.MaxSteps == 0 {
		e.MaxSteps = 10_000_000
	}
	return nil
}

// SetTraceLevel selects how much of the run is recorded (default
// TraceFull). Must be called before the first event is processed.
func (e *Engine) SetTraceLevel(level TraceLevel) {
	if e.started {
		panic("sim: SetTraceLevel after the run started")
	}
	e.level = level
}

// EngineMetrics is the live-counter sink an engine reports into: events
// dispatched and the scheduled-queue high-water mark. Instruments are
// shared obs primitives, so several engines may aggregate into one set.
type EngineMetrics struct {
	Events   *obs.Counter // events dispatched (after canceled-timer skips)
	QueueMax *obs.Max     // event-queue length high-water mark
}

// SetMetrics installs the engine's metric sink (nil disables, the
// default). Cleared by Reset, like OnRespond, so pooled engines never
// report into a previous owner's instruments.
func (e *Engine) SetMetrics(m *EngineMetrics) { e.metrics = m }

// SetTracer installs a span tracer (obs.Nop or nil disables, the
// default). Cleared by Reset. Spans are keyed by operation SeqID;
// deliveries and timer fires are attributed to the operation pending at
// the sending/registering process when the message or timer was created.
func (e *Engine) SetTracer(t obs.Tracer) {
	e.tracer = t
	e.tracing = !obs.IsNop(t)
	e.causal = nil
	if e.tracing {
		e.causal, _ = t.(obs.CausalTracer)
	}
}

// Params returns the engine's model parameters.
func (e *Engine) Params() simtime.Params { return e.params }

// Now returns the current real time.
func (e *Engine) Now() simtime.Time { return e.now }

// Trace returns the (live) trace of the run.
func (e *Engine) Trace() *Trace { return e.trace }

// StepSignature returns the FNV-1a hash of the processed-event sequence
// so far: for each event, the bytes (kind, proc) in processing order —
// byte-for-byte the prefix the fuzzer's coverage signature hashes from
// Trace.Steps. Maintained at every trace level, so signature-driven
// exploration can run with step recording off.
func (e *Engine) StepSignature() uint64 { return e.stepSig }

// QueueLen returns the number of scheduled events not yet processed
// (including canceled timers that have not yet been skipped).
func (e *Engine) QueueLen() int { return e.queue.len() }

// push schedules an event.
func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	if e.metrics != nil {
		e.metrics.QueueMax.Observe(int64(e.queue.len()))
	}
}

// InvokeAt schedules an operation invocation at process p at the given
// real time (which must not be in the past) and returns its SeqID.
func (e *Engine) InvokeAt(p ProcID, at simtime.Time, op string, arg any) int64 {
	if at < e.now {
		panic(fmt.Sprintf("sim: invocation at %v is in the past (now %v)", at, e.now))
	}
	seqID := e.opSeq
	e.opSeq++
	e.push(event{time: at, kind: evInvoke, proc: p, inv: Invocation{SeqID: seqID, Op: op, Arg: arg}})
	return seqID
}

// setTimer schedules a timer event at an absolute real time. The timer is
// attributed to the registering process's pending operation (if any): the
// stabilization waits of Algorithm 1 are set while handling that
// operation's invoke or its messages.
func (e *Engine) setTimer(p ProcID, at simtime.Time, tag any) TimerID {
	id := TimerID(e.timerSeq)
	e.timerSeq++
	span := int64(-1)
	if e.tracing {
		span = e.spanFor(p)
	}
	e.push(event{time: at, kind: evTimer, proc: p, timerID: id, tag: tag, span: span})
	return id
}

// spanFor resolves the span a send or timer registration should be
// attributed to: the span being handled right now (quorum acks, relayed
// messages), falling back to the process's pending operation. Only
// called while tracing.
func (e *Engine) spanFor(p ProcID) int64 {
	if e.handling >= 0 {
		return e.handling
	}
	return e.tracer.CurrentSpan(int32(p))
}

func (e *Engine) cancelTimer(id TimerID) { e.canceled[id] = true }

// send schedules message delivery per the network's delay. A send whose
// ordinal is in the fault plan's drop set is recorded (Dropped, never
// received) but no delivery is scheduled and the network is never asked
// for a delay — dropped ordinals consume their slot in the global
// message count, so explicit delay vectors stay index-aligned.
func (e *Engine) send(from, to ProcID, payload any) {
	if len(e.drops) > 0 && e.drops[e.msgCount] {
		e.msgCount++
		if e.level <= TraceOps {
			e.trace.Msgs = append(e.trace.Msgs, MsgRecord{
				ID:       e.msgCount,
				From:     from,
				To:       to,
				SendTime: e.now,
				RecvTime: simtime.Infinity,
				Payload:  payload,
				Dropped:  true,
			})
		}
		return
	}
	delay := e.net.Delay(from, to, e.now, e.msgCount)
	if delay < e.params.MinDelay() || delay > e.params.D {
		panic(fmt.Sprintf("sim: network produced delay %v outside [%v, %v]",
			delay, e.params.MinDelay(), e.params.D))
	}
	e.msgCount++
	recv := e.now.Add(delay)
	msgIndex := -1
	if e.level <= TraceOps {
		e.trace.Msgs = append(e.trace.Msgs, MsgRecord{
			ID:       e.msgCount,
			From:     from,
			To:       to,
			SendTime: e.now,
			RecvTime: recv,
			Payload:  payload,
		})
		msgIndex = len(e.trace.Msgs) - 1
	}
	span := int64(-1)
	if e.tracing {
		span = e.spanFor(from)
		e.tracer.Event(span, obs.StageBroadcast, int32(from), int64(e.now))
	}
	e.push(event{time: recv, kind: evDeliver, proc: to, from: from, payload: payload,
		msgIndex: msgIndex, span: span, sent: e.now})
}

// respond records the response for a pending invocation.
func (e *Engine) respond(p ProcID, seqID int64, ret any) {
	pendingSeq, ok := e.pending[p]
	if !ok || pendingSeq != seqID {
		panic(fmt.Sprintf("sim: p%d responded to op %d which is not pending", p, seqID))
	}
	delete(e.pending, p)
	idx := e.opIndex[seqID]
	e.trace.Ops[idx].Ret = ret
	e.trace.Ops[idx].RespondTime = e.now
	if e.tracing {
		e.tracer.OpEnd(int32(p), seqID, int64(e.now))
	}
	if e.OnRespond != nil {
		e.OnRespond(e.trace.Ops[idx])
	}
}

// Run processes events until the queue drains (eventual quiescence) and
// returns the trace.
func (e *Engine) Run() *Trace { return e.RunUntil(simtime.Infinity) }

// RunUntil processes events with time ≤ limit and returns the trace.
func (e *Engine) RunUntil(limit simtime.Time) *Trace {
	if !e.started {
		e.started = true
		for p := range e.nodes {
			e.nodes[p].Init(&e.ctxs[p])
		}
	}
	steps := 0
	for e.queue.len() > 0 && e.queue.peek().time <= limit {
		ev := e.queue.pop()
		if ev.kind == evTimer && e.canceled[ev.timerID] {
			delete(e.canceled, ev.timerID)
			continue
		}
		if e.crashedAt(ev.proc, ev.time) {
			// Crash-stop: the process takes no step. A suppressed
			// delivery is marked Dropped (its scheduled RecvTime is kept
			// as the drop instant); suppressed timers and invocations
			// vanish — in particular a suppressed invocation leaves NO
			// OpRecord, because an operation the process never started
			// must not be linearizable as pending.
			if ev.kind == evDeliver && ev.msgIndex >= 0 {
				e.trace.Msgs[ev.msgIndex].Dropped = true
			}
			continue
		}
		if ev.time < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.time
		steps++
		if steps > e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d (runaway algorithm?)", e.MaxSteps))
		}
		e.stepSig = (e.stepSig ^ uint64(byte(ev.kind))) * fnvPrime
		e.stepSig = (e.stepSig ^ uint64(byte(ev.proc))) * fnvPrime
		if e.metrics != nil {
			e.metrics.Events.Inc()
		}
		ctx := &e.ctxs[ev.proc]
		switch ev.kind {
		case evInvoke:
			if prev, busy := e.pending[ev.proc]; busy {
				panic(fmt.Sprintf("sim: p%d invoked op %d while op %d pending (user constraint violated)",
					ev.proc, ev.inv.SeqID, prev))
			}
			e.pending[ev.proc] = ev.inv.SeqID
			e.opIndex[ev.inv.SeqID] = len(e.trace.Ops)
			e.trace.Ops = append(e.trace.Ops, OpRecord{
				Proc:        ev.proc,
				SeqID:       ev.inv.SeqID,
				Op:          ev.inv.Op,
				Arg:         ev.inv.Arg,
				InvokeTime:  e.now,
				RespondTime: simtime.Infinity,
			})
			if e.level == TraceFull {
				e.trace.Steps = append(e.trace.Steps, StepRecord{Proc: ev.proc, Time: e.now, Kind: StepInvoke})
			}
			if e.tracing {
				e.handling = ev.inv.SeqID
				e.tracer.OpStart(int32(ev.proc), ev.inv.SeqID, ev.inv.Op, int64(e.now))
			}
			e.nodes[ev.proc].OnInvoke(ctx, ev.inv)
		case evDeliver:
			if e.level == TraceFull {
				e.trace.Steps = append(e.trace.Steps, StepRecord{Proc: ev.proc, Time: e.now, Kind: StepDeliver})
			}
			if e.tracing {
				e.handling = ev.span
				if e.causal != nil {
					e.causal.Deliver(ev.span, int32(ev.proc), int64(e.now), int64(ev.sent), 0)
				} else {
					e.tracer.Event(ev.span, obs.StageDeliver, int32(ev.proc), int64(e.now))
				}
			}
			e.nodes[ev.proc].OnMessage(ctx, ev.from, ev.payload)
		case evTimer:
			if e.level == TraceFull {
				e.trace.Steps = append(e.trace.Steps, StepRecord{Proc: ev.proc, Time: e.now, Kind: StepTimer})
			}
			if e.tracing {
				e.handling = ev.span
				e.tracer.Event(ev.span, obs.StageTimer, int32(ev.proc), int64(e.now))
			}
			e.nodes[ev.proc].OnTimer(ctx, ev.tag)
		}
		e.handling = -1
	}
	return e.trace
}
