package sim

import (
	"container/heap"
	"fmt"

	"lintime/internal/simtime"
)

// eventKind distinguishes scheduled event types.
type eventKind int

const (
	evInvoke eventKind = iota
	evDeliver
	evTimer
)

// event is one scheduled occurrence in the simulation.
type event struct {
	time simtime.Time
	seq  int64 // tie-break: FIFO among simultaneous events
	kind eventKind
	proc ProcID

	// evInvoke
	inv Invocation
	// evDeliver
	from     ProcID
	payload  any
	msgIndex int // index into trace.Msgs
	// evTimer
	timerID TimerID
	tag     any
}

// rank orders simultaneous events: message deliveries before timer
// expirations before invocations. Delivering messages first is load
// bearing for timestamp-ordered algorithms: a message carrying a smaller
// timestamp that arrives at exactly the instant a stabilization timer
// fires must be enqueued before the timer's drain runs, or replicas
// execute mutators in different orders (the u+ε wait of Algorithm 1 is
// tight at this boundary when d ≤ 2u+ε).
func (k eventKind) rank() int {
	switch k {
	case evDeliver:
		return 0
	case evTimer:
		return 1
	default:
		return 2
	}
}

// eventHeap is a min-heap over (time, kind rank, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind.rank() != h[j].kind.rank() {
		return h[i].kind.rank() < h[j].kind.rank()
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

// Engine drives a deterministic simulation of n nodes. Events at the same
// real time are processed in scheduling order, so runs are fully
// reproducible.
type Engine struct {
	params  simtime.Params
	offsets []simtime.Duration
	net     Network
	nodes   []Node

	now      simtime.Time
	queue    eventHeap
	seq      int64
	timerSeq int64
	opSeq    int64
	msgCount int64
	canceled map[TimerID]bool
	pending  map[ProcID]int64 // pending op SeqID per process
	opIndex  map[int64]int    // SeqID → index into trace.Ops
	trace    *Trace
	started  bool

	// OnRespond, if non-nil, is called after every operation response with
	// the completed record. Handlers may schedule further invocations (at
	// or after the current time) — this is how closed-loop workloads run.
	OnRespond func(rec OpRecord)

	// MaxSteps bounds the number of processed events as a runaway guard.
	MaxSteps int
}

// NewEngine builds an engine. offsets must have one entry per node and
// respect the skew bound ε; net provides message delays.
func NewEngine(params simtime.Params, offsets []simtime.Duration, net Network, nodes []Node) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != params.N {
		return nil, fmt.Errorf("sim: %d nodes for N=%d", len(nodes), params.N)
	}
	if len(offsets) != params.N {
		return nil, fmt.Errorf("sim: %d offsets for N=%d", len(offsets), params.N)
	}
	if err := ValidateOffsets(offsets, params.Epsilon); err != nil {
		return nil, err
	}
	eng := &Engine{
		params:   params,
		offsets:  append([]simtime.Duration(nil), offsets...),
		net:      net,
		nodes:    nodes,
		canceled: map[TimerID]bool{},
		pending:  map[ProcID]int64{},
		opIndex:  map[int64]int{},
		trace: &Trace{
			Params:  params,
			Offsets: append([]simtime.Duration(nil), offsets...),
		},
		MaxSteps: 10_000_000,
	}
	return eng, nil
}

// Params returns the engine's model parameters.
func (e *Engine) Params() simtime.Params { return e.params }

// Now returns the current real time.
func (e *Engine) Now() simtime.Time { return e.now }

// Trace returns the (live) trace of the run.
func (e *Engine) Trace() *Trace { return e.trace }

// push schedules an event.
func (e *Engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// InvokeAt schedules an operation invocation at process p at the given
// real time (which must not be in the past) and returns its SeqID.
func (e *Engine) InvokeAt(p ProcID, at simtime.Time, op string, arg any) int64 {
	if at < e.now {
		panic(fmt.Sprintf("sim: invocation at %v is in the past (now %v)", at, e.now))
	}
	seqID := e.opSeq
	e.opSeq++
	e.push(&event{time: at, kind: evInvoke, proc: p, inv: Invocation{SeqID: seqID, Op: op, Arg: arg}})
	return seqID
}

// setTimer schedules a timer event at an absolute real time.
func (e *Engine) setTimer(p ProcID, at simtime.Time, tag any) TimerID {
	id := TimerID(e.timerSeq)
	e.timerSeq++
	e.push(&event{time: at, kind: evTimer, proc: p, timerID: id, tag: tag})
	return id
}

func (e *Engine) cancelTimer(id TimerID) { e.canceled[id] = true }

// send schedules message delivery per the network's delay.
func (e *Engine) send(from, to ProcID, payload any) {
	delay := e.net.Delay(from, to, e.now, e.msgCount)
	if delay < e.params.MinDelay() || delay > e.params.D {
		panic(fmt.Sprintf("sim: network produced delay %v outside [%v, %v]",
			delay, e.params.MinDelay(), e.params.D))
	}
	e.msgCount++
	recv := e.now.Add(delay)
	e.trace.Msgs = append(e.trace.Msgs, MsgRecord{
		ID:       e.msgCount,
		From:     from,
		To:       to,
		SendTime: e.now,
		RecvTime: recv,
		Payload:  payload,
	})
	e.push(&event{time: recv, kind: evDeliver, proc: to, from: from, payload: payload,
		msgIndex: len(e.trace.Msgs) - 1})
}

// respond records the response for a pending invocation.
func (e *Engine) respond(p ProcID, seqID int64, ret any) {
	pendingSeq, ok := e.pending[p]
	if !ok || pendingSeq != seqID {
		panic(fmt.Sprintf("sim: p%d responded to op %d which is not pending", p, seqID))
	}
	delete(e.pending, p)
	idx := e.opIndex[seqID]
	e.trace.Ops[idx].Ret = ret
	e.trace.Ops[idx].RespondTime = e.now
	if e.OnRespond != nil {
		e.OnRespond(e.trace.Ops[idx])
	}
}

// Run processes events until the queue drains (eventual quiescence) and
// returns the trace.
func (e *Engine) Run() *Trace { return e.RunUntil(simtime.Infinity) }

// RunUntil processes events with time ≤ limit and returns the trace.
func (e *Engine) RunUntil(limit simtime.Time) *Trace {
	if !e.started {
		e.started = true
		for p := range e.nodes {
			e.nodes[p].Init(&engineCtx{eng: e, proc: ProcID(p)})
		}
	}
	steps := 0
	for e.queue.Len() > 0 && e.queue.Peek().time <= limit {
		ev := heap.Pop(&e.queue).(*event)
		if ev.kind == evTimer && e.canceled[ev.timerID] {
			delete(e.canceled, ev.timerID)
			continue
		}
		if ev.time < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.time
		steps++
		if steps > e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d (runaway algorithm?)", e.MaxSteps))
		}
		ctx := &engineCtx{eng: e, proc: ev.proc}
		switch ev.kind {
		case evInvoke:
			if prev, busy := e.pending[ev.proc]; busy {
				panic(fmt.Sprintf("sim: p%d invoked op %d while op %d pending (user constraint violated)",
					ev.proc, ev.inv.SeqID, prev))
			}
			e.pending[ev.proc] = ev.inv.SeqID
			e.opIndex[ev.inv.SeqID] = len(e.trace.Ops)
			e.trace.Ops = append(e.trace.Ops, OpRecord{
				Proc:        ev.proc,
				SeqID:       ev.inv.SeqID,
				Op:          ev.inv.Op,
				Arg:         ev.inv.Arg,
				InvokeTime:  e.now,
				RespondTime: simtime.Infinity,
			})
			e.trace.Steps = append(e.trace.Steps, StepRecord{Proc: ev.proc, Time: e.now, Kind: StepInvoke})
			e.nodes[ev.proc].OnInvoke(ctx, ev.inv)
		case evDeliver:
			e.trace.Steps = append(e.trace.Steps, StepRecord{Proc: ev.proc, Time: e.now, Kind: StepDeliver})
			e.nodes[ev.proc].OnMessage(ctx, ev.from, ev.payload)
		case evTimer:
			e.trace.Steps = append(e.trace.Steps, StepRecord{Proc: ev.proc, Time: e.now, Kind: StepTimer})
			e.nodes[ev.proc].OnTimer(ctx, ev.tag)
		}
	}
	return e.trace
}
