package sim

import (
	"fmt"
	"sort"

	"lintime/internal/simtime"
)

// StepKind labels the trigger of a recorded step, matching the three
// event kinds of the paper's state-machine model.
type StepKind int

// Step kinds.
const (
	StepInvoke StepKind = iota
	StepDeliver
	StepTimer
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepInvoke:
		return "invoke"
	case StepDeliver:
		return "deliver"
	case StepTimer:
		return "timer"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// StepRecord is one step of a process's timed view: the real time at which
// an event was processed.
type StepRecord struct {
	Proc ProcID
	Time simtime.Time
	Kind StepKind
}

// OpRecord is an operation instance extracted from a run: the invocation
// and response values with their real times. Pending operations have
// RespondTime == simtime.Infinity.
type OpRecord struct {
	Proc        ProcID
	SeqID       int64
	Op          string
	Arg, Ret    any
	InvokeTime  simtime.Time
	RespondTime simtime.Time
}

// Pending reports whether the operation has not yet responded.
func (o OpRecord) Pending() bool { return o.RespondTime == simtime.Infinity }

// Latency returns the elapsed time between invocation and response.
func (o OpRecord) Latency() simtime.Duration {
	return o.RespondTime.Sub(o.InvokeTime)
}

// MsgRecord is a message send matched with its receipt. Unreceived
// messages (possible only in chopped run fragments) have
// RecvTime == simtime.Infinity. Dropped messages were lost to a fault:
// either in transit (RecvTime == simtime.Infinity, ordinal in
// Trace.Drops) or at a crashed recipient (RecvTime keeps the scheduled
// delivery instant, which the recipient's crash precedes).
type MsgRecord struct {
	ID       int64
	From, To ProcID
	SendTime simtime.Time
	RecvTime simtime.Time
	Payload  any
	Dropped  bool
}

// Received reports whether the message was delivered within the run.
func (m MsgRecord) Received() bool { return m.RecvTime != simtime.Infinity }

// Delay returns the message delay (meaningful only if received).
func (m MsgRecord) Delay() simtime.Duration { return m.RecvTime.Sub(m.SendTime) }

// Trace is the full record of a run: the model parameters, clock offsets,
// per-process timed views (step times), matched messages, and operation
// instances. It contains everything the shifting machinery of Section 2.4
// and the linearizability checker need.
//
// A Trace is immutable once its run finishes: every method is read-only
// (the sorting accessors sort copies), so a completed trace may be read
// from any number of goroutines concurrently — the parallel experiment
// runner in internal/harness relies on this. Mutating transformations
// (shift, chop) operate on Clone()s.
type Trace struct {
	Params  simtime.Params
	Offsets []simtime.Duration
	Steps   []StepRecord
	Msgs    []MsgRecord
	Ops     []OpRecord

	// Crashes and Drops record the fault plan the run executed under
	// (see FaultPlan). Both nil on fault-free runs.
	Crashes []simtime.Time
	Drops   []int64
}

// Clone returns a deep copy of the trace (payload values are shared).
func (t *Trace) Clone() *Trace {
	out := &Trace{Params: t.Params}
	out.Offsets = append([]simtime.Duration(nil), t.Offsets...)
	out.Steps = append([]StepRecord(nil), t.Steps...)
	out.Msgs = append([]MsgRecord(nil), t.Msgs...)
	out.Ops = append([]OpRecord(nil), t.Ops...)
	out.Crashes = append([]simtime.Time(nil), t.Crashes...)
	out.Drops = append([]int64(nil), t.Drops...)
	return out
}

// CrashTimeOf returns the crash time of process p (simtime.Infinity if
// p never crashes or the run had no fault plan).
func (t *Trace) CrashTimeOf(p ProcID) simtime.Time {
	if int(p) >= len(t.Crashes) {
		return simtime.Infinity
	}
	return t.Crashes[p]
}

// LastTime returns the latest real time of any step in the trace
// (last-time of the run), or simtime.NegInfinity for an empty trace.
func (t *Trace) LastTime() simtime.Time {
	last := simtime.NegInfinity
	for _, s := range t.Steps {
		if s.Time > last {
			last = s.Time
		}
	}
	return last
}

// LastTimeOf returns the latest step time of one process.
func (t *Trace) LastTimeOf(p ProcID) simtime.Time {
	last := simtime.NegInfinity
	for _, s := range t.Steps {
		if s.Proc == p && s.Time > last {
			last = s.Time
		}
	}
	return last
}

// CompletedOps returns the completed operation instances sorted by
// invocation time (ties by process id).
func (t *Trace) CompletedOps() []OpRecord {
	var out []OpRecord
	for _, op := range t.Ops {
		if !op.Pending() {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InvokeTime != out[j].InvokeTime {
			return out[i].InvokeTime < out[j].InvokeTime
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// OpsOf returns all operations invoked at one process, in invocation
// order.
func (t *Trace) OpsOf(p ProcID) []OpRecord {
	var out []OpRecord
	for _, op := range t.Ops {
		if op.Proc == p {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InvokeTime < out[j].InvokeTime })
	return out
}

// MaxLatency returns the maximum latency among completed instances of the
// named operation, and whether any were found.
func (t *Trace) MaxLatency(op string) (simtime.Duration, bool) {
	var max simtime.Duration
	found := false
	for _, o := range t.Ops {
		if o.Op != op || o.Pending() {
			continue
		}
		if !found || o.Latency() > max {
			max = o.Latency()
		}
		found = true
	}
	return max, found
}

// CheckAdmissible verifies the admissibility conditions of Section 2.3
// against the recorded parameters: pairwise clock skew at most ε, all
// received delays within [d-u, d], and every unreceived message's
// recipient stopping before sendTime + d. In the crash-prone extension a
// Dropped message is admissible exactly when the fault plan accounts for
// it: a transit loss must name its send ordinal in Drops, and a
// crash-side loss must land at a recipient already crashed at its
// scheduled delivery instant.
func (t *Trace) CheckAdmissible() error {
	if err := ValidateOffsets(t.Offsets, t.Params.Epsilon); err != nil {
		return err
	}
	if len(t.Crashes) != 0 && len(t.Crashes) != t.Params.N {
		return fmt.Errorf("sim: %d crash times for N=%d", len(t.Crashes), t.Params.N)
	}
	dropSet := make(map[int64]bool, len(t.Drops))
	for _, ix := range t.Drops {
		dropSet[ix] = true
	}
	for _, m := range t.Msgs {
		if m.Dropped {
			if !m.Received() {
				if !dropSet[m.ID-1] {
					return fmt.Errorf("sim: message %d (p%d→p%d) lost in transit but ordinal %d not in the drop plan",
						m.ID, m.From, m.To, m.ID-1)
				}
				continue
			}
			if crash := t.CrashTimeOf(m.To); crash > m.RecvTime {
				return fmt.Errorf("sim: message %d (p%d→p%d) dropped at delivery %v but p%d not crashed until %v",
					m.ID, m.From, m.To, m.RecvTime, m.To, crash)
			}
			// Fall through: a crash-side drop still carries a real
			// network delay, checked below.
		}
		if m.Received() {
			d := m.Delay()
			if d < t.Params.MinDelay() || d > t.Params.D {
				return fmt.Errorf("sim: message %d (p%d→p%d) delay %v outside [%v, %v]",
					m.ID, m.From, m.To, d, t.Params.MinDelay(), t.Params.D)
			}
			continue
		}
		lastRecipient := t.LastTimeOf(m.To)
		if lastRecipient >= m.SendTime.Add(t.Params.D) {
			return fmt.Errorf("sim: message %d (p%d→p%d) sent at %v unreceived but recipient alive at %v ≥ %v",
				m.ID, m.From, m.To, m.SendTime, lastRecipient, m.SendTime.Add(t.Params.D))
		}
	}
	return nil
}

// CheckComplete verifies the completeness conditions of Section 2.2: every
// invocation has a response (all ops completed).
func (t *Trace) CheckComplete() error {
	for _, op := range t.Ops {
		if op.Pending() {
			return fmt.Errorf("sim: operation %s (seq %d) at p%d invoked at %v never responded",
				op.Op, op.SeqID, op.Proc, op.InvokeTime)
		}
	}
	return nil
}

// CheckCompleteExceptCrashed is the crash-prone completeness condition:
// every invocation at a process that never crashes has a response. An
// operation pending at a crashed process is legitimate — the
// linearizability checker already treats pending operations as
// may-or-may-not have taken effect.
func (t *Trace) CheckCompleteExceptCrashed() error {
	for _, op := range t.Ops {
		if op.Pending() && t.CrashTimeOf(op.Proc) == simtime.Infinity {
			return fmt.Errorf("sim: operation %s (seq %d) at p%d invoked at %v never responded (process never crashed)",
				op.Op, op.SeqID, op.Proc, op.InvokeTime)
		}
	}
	return nil
}
