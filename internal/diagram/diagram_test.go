package diagram

import (
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

func sampleTrace(t *testing.T) *sim.Trace {
	t.Helper()
	p := simtime.DefaultParams(3)
	res, err := harness.Run(
		harness.Config{Params: p, TypeName: "queue", Algorithm: harness.AlgCore,
			Network: harness.NetUniform, Offsets: harness.OffSpread, Seed: 2},
		harness.Workload{OpsPerProc: 2, MaxGap: 50, Seed: 2,
			Mix: []harness.OpPick{{Op: adt.OpEnqueue, Weight: 1}, {Op: adt.OpPeek, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestRenderBasicStructure(t *testing.T) {
	tr := sampleTrace(t)
	out := Render(tr, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("diagram too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "time") {
		t.Errorf("missing header: %q", lines[0])
	}
	for _, col := range []string{"p0", "p1", "p2"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header missing %s", col)
		}
	}
	// Every op must appear as an invocation and a response.
	invocations := strings.Count(out, "+enqueue") + strings.Count(out, "+peek")
	responses := strings.Count(out, "-enqueue") + strings.Count(out, "-peek")
	if invocations != len(tr.Ops) || responses != len(tr.Ops) {
		t.Errorf("found %d invocations and %d responses for %d ops:\n%s",
			invocations, responses, len(tr.Ops), out)
	}
}

func TestRenderMessages(t *testing.T) {
	tr := sampleTrace(t)
	withMsgs := Render(tr, Options{})
	withoutMsgs := Render(tr, Options{SuppressMessages: true})
	if strings.Count(withMsgs, ">m") != len(tr.Msgs) {
		t.Errorf("expected %d send annotations", len(tr.Msgs))
	}
	if strings.Contains(withoutMsgs, ">m") {
		t.Error("SuppressMessages left message annotations")
	}
	if len(withoutMsgs) >= len(withMsgs) {
		t.Error("suppressing messages should shrink the diagram")
	}
}

func TestRenderTimeMonotone(t *testing.T) {
	tr := sampleTrace(t)
	out := Render(tr, Options{SuppressMessages: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[2:]
	prev := simtime.NegInfinity
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var tv int64
		if _, err := fmtSscan(fields[0], &tv); err != nil {
			t.Fatalf("unparseable time %q", fields[0])
		}
		if simtime.Time(tv) < prev {
			t.Fatalf("time went backwards at %q", line)
		}
		prev = simtime.Time(tv)
	}
}

// fmtSscan avoids importing fmt in multiple test helpers.
func fmtSscan(s string, v *int64) (int, error) {
	var sign int64 = 1
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	}
	var out int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errParse
		}
		out = out*10 + int64(r-'0')
	}
	*v = sign * out
	return 1, nil
}

var errParse = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "parse error" }

func TestRenderMaxRows(t *testing.T) {
	tr := sampleTrace(t)
	out := Render(tr, Options{MaxRows: 3})
	if !strings.Contains(out, "more events") {
		t.Error("truncation marker missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+3+1 { // header + rows + marker
		t.Errorf("got %d lines", len(lines))
	}
}

func TestRenderPendingOps(t *testing.T) {
	tr := sampleTrace(t).Clone()
	tr.Ops[0].RespondTime = simtime.Infinity
	out := Render(tr, Options{SuppressMessages: true})
	if !strings.Contains(out, "pending") {
		t.Error("pending op not marked")
	}
}

func TestPad(t *testing.T) {
	if got := pad("ab", 4); got != "ab  " {
		t.Errorf("pad = %q", got)
	}
	if got := pad("⊥⊥⊥", 2); got != "⊥⊥" {
		t.Errorf("rune truncation = %q", got)
	}
}

// TestRenderTable pins exact rendered output for small hand-built traces
// across option combinations: custom widths, argument formatting, the
// stable ordering of simultaneous events, and empty traces.
func TestRenderTable(t *testing.T) {
	mk := func(ops []sim.OpRecord, msgs []sim.MsgRecord, offsets ...simtime.Duration) *sim.Trace {
		return &sim.Trace{Offsets: offsets, Ops: ops, Msgs: msgs}
	}
	cases := []struct {
		name string
		tr   *sim.Trace
		opts Options
		want string
	}{
		{
			name: "single op custom width",
			tr: mk([]sim.OpRecord{
				{Proc: 0, Op: "inc", Arg: nil, Ret: 1, InvokeTime: 0, RespondTime: 5},
			}, nil, 0, 0),
			opts: Options{Width: 12, SuppressMessages: true},
			want: "time       p0 (offset 0) p1 (offset 0)\n" +
				"---------- ------------ ------------\n" +
				"0          +inc()       .           \n" +
				"5          -inc 1       .           \n",
		},
		{
			name: "simultaneous events keep insertion order",
			tr: mk([]sim.OpRecord{
				{Proc: 0, Op: "a", InvokeTime: 3, RespondTime: 3},
				{Proc: 1, Op: "b", InvokeTime: 3, RespondTime: 3},
			}, nil, 0, 0),
			opts: Options{Width: 8, SuppressMessages: true},
			want: "time       p0 (offset 0) p1 (offset 0)\n" +
				"---------- -------- --------\n" +
				"3          +a()     .       \n" +
				"3          -a ⊥     .       \n" +
				"3          .        +b()    \n" +
				"3          .        -b ⊥    \n",
		},
		{
			name: "message annotations",
			tr: mk(nil, []sim.MsgRecord{
				{ID: 1, From: 0, To: 1, SendTime: 2, RecvTime: 9},
			}, 0, 0),
			opts: Options{Width: 12},
			want: "time       p0 (offset 0) p1 (offset 0)\n" +
				"---------- ------------ ------------\n" +
				"2          >m1 to p1    .           \n" +
				"9          .            <m1 from p0 \n",
		},
		{
			name: "empty trace renders header only",
			tr:   mk(nil, nil, 0),
			opts: Options{Width: 10},
			want: "time       p0 (offset 0)\n" +
				"---------- ----------\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Render(tc.tr, tc.opts)
			if got != tc.want {
				t.Errorf("Render mismatch\n--- got ---\n%s\n--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestRenderUnreceivedMessage checks that a message with no receipt
// renders only its send annotation.
func TestRenderUnreceivedMessage(t *testing.T) {
	tr := &sim.Trace{
		Offsets: []simtime.Duration{0, 0},
		Msgs:    []sim.MsgRecord{{ID: 3, From: 1, To: 0, SendTime: 4, RecvTime: simtime.Infinity}},
	}
	out := Render(tr, Options{})
	if !strings.Contains(out, ">m3 to p0") {
		t.Errorf("send annotation missing:\n%s", out)
	}
	if strings.Contains(out, "<m3") {
		t.Errorf("unreceived message rendered a receipt:\n%s", out)
	}
}
