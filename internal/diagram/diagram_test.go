package diagram

import (
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

func sampleTrace(t *testing.T) *sim.Trace {
	t.Helper()
	p := simtime.DefaultParams(3)
	res, err := harness.Run(
		harness.Config{Params: p, TypeName: "queue", Algorithm: harness.AlgCore,
			Network: harness.NetUniform, Offsets: harness.OffSpread, Seed: 2},
		harness.Workload{OpsPerProc: 2, MaxGap: 50, Seed: 2,
			Mix: []harness.OpPick{{Op: adt.OpEnqueue, Weight: 1}, {Op: adt.OpPeek, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestRenderBasicStructure(t *testing.T) {
	tr := sampleTrace(t)
	out := Render(tr, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("diagram too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "time") {
		t.Errorf("missing header: %q", lines[0])
	}
	for _, col := range []string{"p0", "p1", "p2"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header missing %s", col)
		}
	}
	// Every op must appear as an invocation and a response.
	invocations := strings.Count(out, "+enqueue") + strings.Count(out, "+peek")
	responses := strings.Count(out, "-enqueue") + strings.Count(out, "-peek")
	if invocations != len(tr.Ops) || responses != len(tr.Ops) {
		t.Errorf("found %d invocations and %d responses for %d ops:\n%s",
			invocations, responses, len(tr.Ops), out)
	}
}

func TestRenderMessages(t *testing.T) {
	tr := sampleTrace(t)
	withMsgs := Render(tr, Options{})
	withoutMsgs := Render(tr, Options{SuppressMessages: true})
	if strings.Count(withMsgs, ">m") != len(tr.Msgs) {
		t.Errorf("expected %d send annotations", len(tr.Msgs))
	}
	if strings.Contains(withoutMsgs, ">m") {
		t.Error("SuppressMessages left message annotations")
	}
	if len(withoutMsgs) >= len(withMsgs) {
		t.Error("suppressing messages should shrink the diagram")
	}
}

func TestRenderTimeMonotone(t *testing.T) {
	tr := sampleTrace(t)
	out := Render(tr, Options{SuppressMessages: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[2:]
	prev := simtime.NegInfinity
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var tv int64
		if _, err := fmtSscan(fields[0], &tv); err != nil {
			t.Fatalf("unparseable time %q", fields[0])
		}
		if simtime.Time(tv) < prev {
			t.Fatalf("time went backwards at %q", line)
		}
		prev = simtime.Time(tv)
	}
}

// fmtSscan avoids importing fmt in multiple test helpers.
func fmtSscan(s string, v *int64) (int, error) {
	var sign int64 = 1
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	}
	var out int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errParse
		}
		out = out*10 + int64(r-'0')
	}
	*v = sign * out
	return 1, nil
}

var errParse = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "parse error" }

func TestRenderMaxRows(t *testing.T) {
	tr := sampleTrace(t)
	out := Render(tr, Options{MaxRows: 3})
	if !strings.Contains(out, "more events") {
		t.Error("truncation marker missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+3+1 { // header + rows + marker
		t.Errorf("got %d lines", len(lines))
	}
}

func TestRenderPendingOps(t *testing.T) {
	tr := sampleTrace(t).Clone()
	tr.Ops[0].RespondTime = simtime.Infinity
	out := Render(tr, Options{SuppressMessages: true})
	if !strings.Contains(out, "pending") {
		t.Error("pending op not marked")
	}
}

func TestPad(t *testing.T) {
	if got := pad("ab", 4); got != "ab  " {
		t.Errorf("pad = %q", got)
	}
	if got := pad("⊥⊥⊥", 2); got != "⊥⊥" {
		t.Errorf("rune truncation = %q", got)
	}
}
