// Package diagram renders recorded runs as ASCII space-time diagrams in
// the style of the paper's run figures (Figures 1 and 3-10): one column
// per process, real time flowing downward, with operation intervals and
// message sends/receipts annotated at their instants.
//
// Example (a queue run):
//
//	time       p0                   p1
//	---------- -------------------- --------------------
//	0          +enqueue(1)          .
//	0          >msg1                .
//	16128      -enqueue ⊥           .
//	20160      .                    <msg1
//
// Legend: '+' invocation, '-' response, '>' message send, '<' message
// receipt, '…' pending at the end of the fragment.
package diagram

import (
	"fmt"
	"sort"
	"strings"

	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Options controls rendering.
type Options struct {
	// Width is the column width per process (default 22).
	Width int
	// ShowMessages includes message send/receive events (default true via
	// Render; set SuppressMessages to drop them).
	SuppressMessages bool
	// MaxRows truncates long diagrams (0 = unlimited).
	MaxRows int
}

// event is one rendered line item.
type rowEvent struct {
	time simtime.Time
	proc sim.ProcID
	text string
	ord  int // stable ordering among same-instant events
}

// Render draws the trace as a space-time diagram.
func Render(tr *sim.Trace, opts Options) string {
	width := opts.Width
	if width <= 0 {
		width = 22
	}
	n := len(tr.Offsets)
	var events []rowEvent
	ord := 0
	add := func(t simtime.Time, p sim.ProcID, text string) {
		events = append(events, rowEvent{time: t, proc: p, text: text, ord: ord})
		ord++
	}
	for _, op := range tr.Ops {
		arg := ""
		if op.Arg != nil {
			arg = spec.FormatValue(op.Arg)
		}
		add(op.InvokeTime, op.Proc, fmt.Sprintf("+%s(%s)", op.Op, arg))
		if op.Pending() {
			add(tr.LastTimeOf(op.Proc), op.Proc, fmt.Sprintf("…%s pending", op.Op))
		} else {
			add(op.RespondTime, op.Proc, fmt.Sprintf("-%s %s", op.Op, spec.FormatValue(op.Ret)))
		}
	}
	if !opts.SuppressMessages {
		for _, msg := range tr.Msgs {
			add(msg.SendTime, msg.From, fmt.Sprintf(">m%d to p%d", msg.ID, msg.To))
			if msg.Received() {
				add(msg.RecvTime, msg.To, fmt.Sprintf("<m%d from p%d", msg.ID, msg.From))
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].ord < events[j].ord
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "time")
	for p := 0; p < n; p++ {
		fmt.Fprintf(&b, " %-*s", width, fmt.Sprintf("p%d (offset %v)", p, tr.Offsets[p]))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s", strings.Repeat("-", 10))
	for p := 0; p < n; p++ {
		fmt.Fprintf(&b, " %s", strings.Repeat("-", width))
	}
	b.WriteByte('\n')

	rows := 0
	for _, ev := range events {
		if opts.MaxRows > 0 && rows >= opts.MaxRows {
			fmt.Fprintf(&b, "… %d more events\n", len(events)-rows)
			break
		}
		fmt.Fprintf(&b, "%-10s", ev.time.String())
		for p := 0; p < n; p++ {
			cell := "."
			if sim.ProcID(p) == ev.proc {
				cell = ev.text
			}
			b.WriteByte(' ')
			b.WriteString(pad(cell, width))
		}
		b.WriteByte('\n')
		rows++
	}
	return b.String()
}

// pad truncates or right-pads a cell to the given rune width.
func pad(s string, width int) string {
	runes := []rune(s)
	if len(runes) > width {
		return string(runes[:width])
	}
	return s + strings.Repeat(" ", width-len(runes))
}
