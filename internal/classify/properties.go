package classify

import (
	"fmt"

	"lintime/internal/spec"
)

// IsMutator decides the paper's mutator property for operation op:
// there exist ρ and an instance mop of op with ρ.mop legal but ρ ≢ ρ.mop.
// With state-machine specifications this holds iff op changes some
// reachable state. The returned witness exhibits ρ and mop.
func (e *Explorer) IsMutator(op string) (bool, Witness) {
	for _, rs := range e.states {
		before := rs.State.Fingerprint()
		for _, mop := range e.instancesAt(rs.State, op) {
			_, next := rs.State.Apply(mop.Op, mop.Arg)
			if next.Fingerprint() != before {
				return true, Witness{
					Rho:       rs.Rho,
					Instances: []spec.Instance{mop},
					Note:      fmt.Sprintf("state %q becomes %q", before, next.Fingerprint()),
				}
			}
		}
	}
	return false, Witness{Note: "no state change found within exploration bounds"}
}

// IsAccessor decides the paper's accessor property for operation op:
// there exist a legal ρ, an operation instance other, and an instance aop
// of op such that ρ.aop and ρ.other are legal but ρ.other.aop is illegal.
// Equivalently, some other instance changes op's response. The witness
// exhibits ρ, other and the two conflicting responses.
func (e *Explorer) IsAccessor(op string) (bool, Witness) {
	for _, rs := range e.states {
		for _, other := range e.allInstancesAt(rs.State) {
			_, afterOther := rs.State.Apply(other.Op, other.Arg)
			for _, aop := range e.instancesAt(rs.State, op) {
				retAfter, _ := afterOther.Apply(aop.Op, aop.Arg)
				if !spec.ValuesEqual(retAfter, aop.Ret) {
					return true, Witness{
						Rho:       rs.Rho,
						Instances: []spec.Instance{other, aop},
						Note: fmt.Sprintf("%s returns %s after ρ but %s after ρ.%s",
							aop.Op, spec.FormatValue(aop.Ret), spec.FormatValue(retAfter), other),
					}
				}
			}
		}
	}
	return false, Witness{Note: "response never depends on state within exploration bounds"}
}

// IsPureAccessor reports whether op is an accessor but not a mutator.
func (e *Explorer) IsPureAccessor(op string) bool {
	acc, _ := e.IsAccessor(op)
	mut, _ := e.IsMutator(op)
	return acc && !mut
}

// IsPureMutator reports whether op is a mutator but not an accessor.
func (e *Explorer) IsPureMutator(op string) bool {
	acc, _ := e.IsAccessor(op)
	mut, _ := e.IsMutator(op)
	return mut && !acc
}

// IsOverwriter decides (within bounds) the overwriter property for a
// mutator op: for every instance mop and every ρ.other, if ρ.mop and
// ρ.other.mop are both legal then they are equivalent — mop sets the
// entire state. Returns holds=false with a counterexample if some
// preceding instance leaks through mop.
func (e *Explorer) IsOverwriter(op string) (bool, Witness) {
	for _, rs := range e.states {
		for _, other := range e.allInstancesAt(rs.State) {
			_, afterOther := rs.State.Apply(other.Op, other.Arg)
			for _, mop := range e.instancesAt(rs.State, op) {
				// ρ.mop is legal by construction. ρ.other.mop is legal iff
				// the response matches mop's recorded return value.
				retAfter, nextAfter := afterOther.Apply(mop.Op, mop.Arg)
				if !spec.ValuesEqual(retAfter, mop.Ret) {
					continue // ρ.other.mop illegal: vacuously fine
				}
				_, nextDirect := rs.State.Apply(mop.Op, mop.Arg)
				if nextDirect.Fingerprint() != nextAfter.Fingerprint() {
					return false, Witness{
						Rho:       rs.Rho,
						Instances: []spec.Instance{other, mop},
						Note: fmt.Sprintf("ρ.%s ≢ ρ.%s.%s (%q vs %q)",
							mop, other, mop, nextDirect.Fingerprint(), nextAfter.Fingerprint()),
					}
				}
			}
		}
	}
	return true, Witness{Note: "no counterexample within exploration bounds"}
}
