package classify

import (
	"strings"
	"testing"

	"lintime/internal/adt"
)

func TestFigure11Placement(t *testing.T) {
	var reports []Report
	for _, name := range adt.Names() {
		reports = append(reports, explorerFor(t, name).Report())
	}
	fig := Figure11(reports)

	// Region membership per the paper's figure, computed by the decision
	// procedures.
	sections := strings.Split(fig, "\n\n")
	if len(sections) != 6 {
		t.Fatalf("figure has %d sections, want 6 (title + 5 regions):\n%s", len(sections), fig)
	}
	sections = sections[1:] // drop the title
	inSection := func(section int, entry string) bool {
		return strings.Contains(sections[section], entry)
	}
	cases := []struct {
		entry   string
		section int
	}{
		{"queue.peek", 0},
		{"register.read", 0},
		{"tree.depth", 0},
		{"register.write", 1},
		{"queue.enqueue", 1},
		{"stack.push", 1},
		{"log.append", 1},
		{"queue.dequeue", 2},
		{"stack.pop", 2},
		{"rmwregister.rmw", 2},
		{"bank.withdraw", 2},
		{"set.add", 3},
		{"counter.inc", 3},
		{"maxregister.writemax", 3},
		{"pqueue.insert", 3},
	}
	for _, c := range cases {
		if !inSection(c.section, c.entry) {
			t.Errorf("%s not placed in section %d:\n%s", c.entry, c.section, sections[c.section])
		}
		for other := 0; other < 5; other++ {
			if other != c.section && inSection(other, c.entry+"\n") {
				t.Errorf("%s also appears in section %d", c.entry, other)
			}
		}
	}
}

func TestFigure11EmptyRegions(t *testing.T) {
	fig := Figure11(nil)
	if got := strings.Count(fig, "(none)"); got != 5 {
		t.Errorf("empty figure should mark 5 empty regions, got %d", got)
	}
}
