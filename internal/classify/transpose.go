package classify

import (
	"fmt"

	"lintime/internal/spec"
)

// IsTransposable decides (within bounds) whether op is transposable: for
// any two distinct instances op1, op2 of op and any ρ, if ρ.op1 and ρ.op2
// are both legal then ρ.op1.op2 and ρ.op2.op1 are both legal. Returns
// holds=false with a counterexample if an ordering is illegal.
func (e *Explorer) IsTransposable(op string) (bool, Witness) {
	for _, rs := range e.states {
		insts := e.distinctInstancesAt(rs.State, op)
		for i, op1 := range insts {
			for j, op2 := range insts {
				if i == j {
					continue
				}
				// ρ.op1 and ρ.op2 are legal by construction; check that
				// op2 stays legal after op1.
				_, after1 := rs.State.Apply(op1.Op, op1.Arg)
				ret2, _ := after1.Apply(op2.Op, op2.Arg)
				if !spec.ValuesEqual(ret2, op2.Ret) {
					return false, Witness{
						Rho:       rs.Rho,
						Instances: []spec.Instance{op1, op2},
						Note: fmt.Sprintf("ρ.%s.%s illegal: %s returns %s after %s",
							op1, op2, op2.Op, spec.FormatValue(ret2), op1),
					}
				}
			}
		}
	}
	return true, Witness{Note: "no counterexample within exploration bounds"}
}

// distinctInstancesAt returns the instances of op legal at s, deduplicated
// as (arg, ret) pairs.
func (e *Explorer) distinctInstancesAt(s spec.State, op string) []spec.Instance {
	insts := e.instancesAt(s, op)
	var out []spec.Instance
	for _, in := range insts {
		dup := false
		for _, prev := range out {
			if spec.ValuesEqual(prev.Arg, in.Arg) && spec.ValuesEqual(prev.Ret, in.Ret) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, in)
		}
	}
	return out
}

// permutations returns all permutations of 0..n-1. n must be small (≤ 5).
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	sub := permutations(n - 1)
	for _, p := range sub {
		for pos := 0; pos <= len(p); pos++ {
			q := make([]int, 0, n)
			q = append(q, p[:pos]...)
			q = append(q, n-1)
			q = append(q, p[pos:]...)
			out = append(out, q)
		}
	}
	return out
}

// combinations returns all k-subsets of 0..n-1.
func combinations(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

// IsLastSensitive searches for a last-sensitive witness for op with k
// distinct instances: a state ρ and instances op_0..op_{k-1}, all legal
// after ρ, such that any two permutations with different last elements
// lead to non-equivalent states. op must be transposable for the
// Theorem 3 bound (1-1/k)u to apply; callers should check separately.
func (e *Explorer) IsLastSensitive(op string, k int) (bool, Witness) {
	if k < 2 {
		return false, Witness{Note: "k must be at least 2"}
	}
	perms := permutations(k)
	for _, rs := range e.states {
		insts := e.distinctInstancesAt(rs.State, op)
		if len(insts) < k {
			continue
		}
		for _, combo := range combinations(len(insts), k) {
			chosen := make([]spec.Instance, k)
			for i, idx := range combo {
				chosen[i] = insts[idx]
			}
			if e.lastSensitiveWitnessHolds(rs.State, chosen, perms) {
				return true, Witness{
					Rho:       rs.Rho,
					Instances: chosen,
					Note:      fmt.Sprintf("permutations with different last of these %d instances are pairwise non-equivalent", k),
				}
			}
		}
	}
	return false, Witness{Note: fmt.Sprintf("no k=%d witness within exploration bounds", k)}
}

// lastSensitiveWitnessHolds checks that for the chosen instances at state
// s, permutations with different last elements always produce different
// state fingerprints.
func (e *Explorer) lastSensitiveWitnessHolds(s spec.State, chosen []spec.Instance, perms [][]int) bool {
	// fingerprint -> index of last instance that produced it
	fpLast := map[string]int{}
	for _, perm := range perms {
		cur := s
		for _, idx := range perm {
			_, cur = cur.Apply(chosen[idx].Op, chosen[idx].Arg)
		}
		fp := cur.Fingerprint()
		last := perm[len(perm)-1]
		if prev, ok := fpLast[fp]; ok {
			if prev != last {
				return false // same state from permutations with different lasts
			}
		} else {
			fpLast[fp] = last
		}
	}
	return true
}

// MaxLastSensitiveK returns the largest k in [2, maxK] for which a
// last-sensitive witness was found, or 0 if none.
func (e *Explorer) MaxLastSensitiveK(op string, maxK int) int {
	best := 0
	for k := 2; k <= maxK; k++ {
		ok, _ := e.IsLastSensitive(op, k)
		if ok {
			best = k
		} else {
			break // instances come from the same pool; larger k will not appear
		}
	}
	return best
}
