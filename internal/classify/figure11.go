package classify

import (
	"fmt"
	"sort"
	"strings"
)

// Figure11 reproduces the paper's Figure 11 — the relationships between
// the operation classes the lower bounds cover, relative to the
// accessor/mutator partition the algorithm uses — as a computed artifact:
// every operation of every supplied report is placed into its region by
// the decision procedures, not by hand.
//
// Regions:
//
//	pure accessors                          → Theorem 2 (u/4)
//	mutators (pure and mixed)
//	  └ last-sensitive (transposable)       → Theorem 3 ((1-1/k)u)
//	accessor ∩ mutator (mixed)
//	  └ pair-free                           → Theorem 4 (d+min{ε,u,d/3})
//	mutators/accessors outside every class  → no known lower bound
func Figure11(reports []Report) string {
	var pureAcc, lastSens, pairFree, plainMut, plainMixed []string
	for _, rep := range reports {
		for _, op := range rep.Ops {
			name := rep.Type + "." + op.Op
			switch {
			case op.Class == PureAccessor:
				pureAcc = append(pureAcc, name)
			case op.PairFree:
				pairFree = append(pairFree, name)
			case op.LastSensitiveK >= 2:
				lastSens = append(lastSens, fmt.Sprintf("%s (k≥%d)", name, op.LastSensitiveK))
			case op.Class == PureMutator:
				plainMut = append(plainMut, name)
			default:
				plainMixed = append(plainMixed, name)
			}
		}
	}
	for _, s := range [][]string{pureAcc, lastSens, pairFree, plainMut, plainMixed} {
		sort.Strings(s)
	}
	var b strings.Builder
	b.WriteString("Figure 11 (computed): lower-bound classes within the accessor/mutator partition\n")
	b.WriteString("\n  ACCESSORS ONLY — pure accessors [Theorem 2: u/4]\n")
	writeRegion(&b, pureAcc)
	b.WriteString("\n  MUTATORS — last-sensitive, transposable [Theorem 3: (1-1/k)u]\n")
	writeRegion(&b, lastSens)
	b.WriteString("\n  ACCESSOR ∩ MUTATOR — pair-free [Theorem 4: d+min{ε,u,d/3}]\n")
	writeRegion(&b, pairFree)
	b.WriteString("\n  MUTATORS outside every lower-bound class (commutative)\n")
	writeRegion(&b, plainMut)
	b.WriteString("\n  MIXED operations outside every lower-bound class\n")
	writeRegion(&b, plainMixed)
	return b.String()
}

func writeRegion(b *strings.Builder, ops []string) {
	if len(ops) == 0 {
		b.WriteString("    (none)\n")
		return
	}
	for _, op := range ops {
		fmt.Fprintf(b, "    %s\n", op)
	}
}
