package classify

import (
	"fmt"

	"lintime/internal/spec"
)

// IsPairFree searches for a pair-free witness for op: instances op1, op2
// and a sequence ρ such that ρ.op1 and ρ.op2 are legal but ρ.op1.op2 and
// ρ.op2.op1 are both illegal. Lemma 3: every pair-free operation is both
// an accessor and a mutator; Theorem 4 then gives the d+min{ε,u,d/3}
// lower bound.
func (e *Explorer) IsPairFree(op string) (bool, Witness) {
	for _, rs := range e.states {
		insts := e.distinctInstancesAt(rs.State, op)
		for i, op1 := range insts {
			for j, op2 := range insts {
				if j < i {
					continue // unordered pairs; op1 == op2 allowed
				}
				_, after1 := rs.State.Apply(op1.Op, op1.Arg)
				ret12, _ := after1.Apply(op2.Op, op2.Arg)
				if spec.ValuesEqual(ret12, op2.Ret) {
					continue // ρ.op1.op2 legal
				}
				_, after2 := rs.State.Apply(op2.Op, op2.Arg)
				ret21, _ := after2.Apply(op1.Op, op1.Arg)
				if spec.ValuesEqual(ret21, op1.Ret) {
					continue // ρ.op2.op1 legal
				}
				return true, Witness{
					Rho:       rs.Rho,
					Instances: []spec.Instance{op1, op2},
					Note:      "neither instance can follow the other",
				}
			}
		}
	}
	return false, Witness{Note: "no pair-free witness within exploration bounds"}
}

// Discriminator is a pair of instances of a pure accessor with the same
// argument but different return values that distinguishes two sequences:
// A is legal only after the first sequence, B only after the second.
type Discriminator struct {
	A spec.Instance
	B spec.Instance
}

// String renders the discriminator.
func (d Discriminator) String() string { return fmt.Sprintf("(%s | %s)", d.A, d.B) }

// FindDiscriminator searches for a discriminator in aop for the states
// reached by two legal sequences (given directly as states): an argument
// on which the responses differ.
func (e *Explorer) FindDiscriminator(aop string, s1, s2 spec.State) (Discriminator, bool) {
	op, ok := spec.FindOp(e.dt, aop)
	if !ok {
		return Discriminator{}, false
	}
	for _, arg := range op.Args {
		r1, _ := s1.Apply(aop, arg)
		r2, _ := s2.Apply(aop, arg)
		if !spec.ValuesEqual(r1, r2) {
			return Discriminator{
				A: spec.Instance{Op: aop, Arg: arg, Ret: r1},
				B: spec.Instance{Op: aop, Arg: arg, Ret: r2},
			}, true
		}
	}
	return Discriminator{}, false
}

// Theorem5Witness packages the hypotheses of Theorem 5 for a pair
// (OP, AOP): two instances op0, op1 of OP legal after ρ, and the three
// discriminators the theorem requires.
type Theorem5Witness struct {
	Rho      []spec.Instance
	Op0, Op1 spec.Instance
	// Disc0 discriminates ρ.op0 from ρ.op1.op0.
	Disc0 Discriminator
	// Disc1 discriminates ρ.op1 from ρ.op0.op1.
	Disc1 Discriminator
	// Disc2 discriminates ρ.op0.op1 from ρ.op1.
	Disc2 Discriminator
}

// Theorem5Applicable searches for a Theorem 5 witness for the pair
// (op, aop): op must be transposable, aop a pure accessor, and there must
// exist ρ, op0, op1 with the three discriminators. The paper's example is
// (enqueue, peek) on a queue; (push, peek) on a stack has no witness
// because peek depends only on the last push.
func (e *Explorer) Theorem5Applicable(op, aop string) (Theorem5Witness, bool) {
	if trans, _ := e.IsTransposable(op); !trans {
		return Theorem5Witness{}, false
	}
	if !e.IsPureAccessor(aop) {
		return Theorem5Witness{}, false
	}
	for _, rs := range e.states {
		insts := e.distinctInstancesAt(rs.State, op)
		for i, op0 := range insts {
			for j, op1 := range insts {
				if i == j {
					continue
				}
				_, after0 := rs.State.Apply(op0.Op, op0.Arg) // ρ.op0
				_, after1 := rs.State.Apply(op1.Op, op1.Arg) // ρ.op1
				_, after10 := after1.Apply(op0.Op, op0.Arg)  // ρ.op1.op0
				_, after01 := after0.Apply(op1.Op, op1.Arg)  // ρ.op0.op1
				d0, ok0 := e.FindDiscriminator(aop, after0, after10)
				if !ok0 {
					continue
				}
				d1, ok1 := e.FindDiscriminator(aop, after1, after01)
				if !ok1 {
					continue
				}
				d2, ok2 := e.FindDiscriminator(aop, after01, after1)
				if !ok2 {
					continue
				}
				return Theorem5Witness{
					Rho:   rs.Rho,
					Op0:   op0,
					Op1:   op1,
					Disc0: d0,
					Disc1: d1,
					Disc2: d2,
				}, true
			}
		}
	}
	return Theorem5Witness{}, false
}
