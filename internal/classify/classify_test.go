package classify

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/spec"
)

// explorerFor caches explorations per data type to keep the test suite
// fast: the search procedures all share one exploration.
var explorerCache = map[string]*Explorer{}

func explorerFor(t *testing.T, name string) *Explorer {
	t.Helper()
	if e, ok := explorerCache[name]; ok {
		return e
	}
	dt, err := adt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExplorer(dt, DefaultConfig())
	explorerCache[name] = e
	return e
}

func TestExplorerReachesStates(t *testing.T) {
	e := explorerFor(t, "register")
	if len(e.States()) < 4 {
		t.Errorf("register exploration found %d states, want ≥ 4 (one per value)", len(e.States()))
	}
	// Every recorded ρ must be legal and reach its state.
	for _, rs := range e.States() {
		final, bad := spec.ReplayLegal(e.DataType().Initial(), rs.Rho)
		if bad != -1 {
			t.Fatalf("witness ρ illegal at %d: %s", bad, spec.FormatSeq(rs.Rho))
		}
		if final.Fingerprint() != rs.State.Fingerprint() {
			t.Fatalf("witness ρ reaches %q, recorded %q", final.Fingerprint(), rs.State.Fingerprint())
		}
	}
}

func TestExplorerDeduplicates(t *testing.T) {
	e := explorerFor(t, "register")
	seen := map[string]bool{}
	for _, rs := range e.States() {
		fp := rs.State.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate state %q", fp)
		}
		seen[fp] = true
	}
}

func TestExplorerRespectsMaxStates(t *testing.T) {
	dt, _ := adt.Lookup("queue")
	e := NewExplorer(dt, Config{MaxStates: 10, MaxDepth: 10})
	if len(e.States()) > 10 {
		t.Errorf("explored %d states, cap was 10", len(e.States()))
	}
}

// wantClass captures the expected classification of every operation of
// every data type, per the paper's Tables 1-4 and Section 5.
var wantClass = map[string]map[string]Class{
	"register":    {"read": PureAccessor, "write": PureMutator},
	"rmwregister": {"read": PureAccessor, "write": PureMutator, "rmw": Mixed},
	"queue":       {"enqueue": PureMutator, "dequeue": Mixed, "peek": PureAccessor},
	"stack":       {"push": PureMutator, "pop": Mixed, "peek": PureAccessor},
	"tree":        {"insert": PureMutator, "delete": PureMutator, "depth": PureAccessor},
	"treefw":      {"insert": PureMutator, "delete": PureMutator, "depth": PureAccessor},
	"set":         {"add": PureMutator, "remove": PureMutator, "contains": PureAccessor, "size": PureAccessor},
	"counter":     {"inc": PureMutator, "addn": PureMutator, "read": PureAccessor},
	"dict":        {"put": PureMutator, "del": PureMutator, "get": PureAccessor, "swap": Mixed, "len": PureAccessor},
	"log":         {"append": PureMutator, "at": PureAccessor, "len": PureAccessor, "last": PureAccessor},
	"maxregister": {"writemax": PureMutator, "readmax": PureAccessor},
	"pqueue":      {"insert": PureMutator, "extractmin": Mixed, "min": PureAccessor},
	"deque": {"pushfront": PureMutator, "pushback": PureMutator, "popfront": Mixed,
		"popback": Mixed, "front": PureAccessor, "back": PureAccessor},
	"bank": {"deposit": PureMutator, "withdraw": Mixed, "balance": PureAccessor},
}

func TestClassification(t *testing.T) {
	for typeName, ops := range wantClass {
		t.Run(typeName, func(t *testing.T) {
			e := explorerFor(t, typeName)
			rep := e.Report()
			for opName, want := range ops {
				got, ok := rep.Find(opName)
				if !ok {
					t.Errorf("no report for op %s", opName)
					continue
				}
				if got.Class != want {
					t.Errorf("%s.%s classified %v, want %v", typeName, opName, got.Class, want)
				}
			}
		})
	}
}

func TestRegisterWriteIsOverwriter(t *testing.T) {
	e := explorerFor(t, "register")
	if ok, w := e.IsOverwriter("write"); !ok {
		t.Errorf("write should be an overwriter: %v", w)
	}
}

func TestQueueEnqueueIsNotOverwriter(t *testing.T) {
	e := explorerFor(t, "queue")
	if ok, _ := e.IsOverwriter("enqueue"); ok {
		t.Error("enqueue should not be an overwriter (earlier items remain visible)")
	}
}

func TestTransposability(t *testing.T) {
	cases := []struct {
		typeName, op string
		want         bool
	}{
		{"register", "write", true},
		{"queue", "enqueue", true},
		{"stack", "push", true},
		{"tree", "insert", true},
		{"treefw", "insert", true},
		{"set", "add", true},
		{"counter", "inc", true},
		{"log", "append", true},
		{"maxregister", "writemax", true},
		// Dequeue and pop are *vacuously* transposable: by Determinism at
		// most one instance (⊥, ret) is legal after any given ρ, so the
		// definition's "two distinct instances both legal after ρ" premise
		// never fires. They still are not last-sensitive (no k ≥ 2
		// distinct instances exist), so Theorem 3 does not apply to them —
		// Theorem 4 (pair-free) gives their bound instead.
		{"queue", "dequeue", true},
		{"stack", "pop", true},
		// rmw has genuinely distinct instances (different δ) whose
		// recorded returns go stale after one another: not transposable.
		{"rmwregister", "rmw", false},
	}
	for _, c := range cases {
		e := explorerFor(t, c.typeName)
		got, w := e.IsTransposable(c.op)
		if got != c.want {
			t.Errorf("%s.%s transposable = %v, want %v (%v)", c.typeName, c.op, got, c.want, w)
		}
	}
}

func TestLastSensitivity(t *testing.T) {
	cases := []struct {
		typeName, op string
		minK         int // 0 means must NOT be last-sensitive at all
	}{
		{"register", "write", 4},       // k distinct values => k-last-sensitive
		{"queue", "enqueue", 4},        // tail order fully observable
		{"stack", "push", 4},           // top order fully observable
		{"log", "append", 4},           // log order fully observable
		{"tree", "insert", 3},          // move semantics: last insert sets parent
		{"treefw", "insert", 2},        // first-wins: only k=2 order sensitivity
		{"dict", "put", 2},             // same-key puts
		{"set", "add", 0},              // commutative: Theorem 3 does not apply
		{"counter", "inc", 0},          // single distinct instance, commutative
		{"maxregister", "writemax", 0}, // commutative, idempotent
		{"pqueue", "insert", 0},        // multiset insert is commutative
		{"bank", "deposit", 0},         // deposits commute
		{"deque", "pushfront", 4},      // last push is the observable front
		{"deque", "pushback", 4},       // last push is the observable back
	}
	for _, c := range cases {
		e := explorerFor(t, c.typeName)
		got := e.MaxLastSensitiveK(c.op, MaxKSearched)
		if c.minK == 0 {
			if got != 0 {
				t.Errorf("%s.%s should not be last-sensitive, got k=%d", c.typeName, c.op, got)
			}
			continue
		}
		if got < c.minK {
			t.Errorf("%s.%s last-sensitive k = %d, want ≥ %d", c.typeName, c.op, got, c.minK)
		}
	}
}

func TestLastSensitiveRejectsK1(t *testing.T) {
	e := explorerFor(t, "register")
	if ok, _ := e.IsLastSensitive("write", 1); ok {
		t.Error("k=1 must be rejected")
	}
}

func TestPairFreeness(t *testing.T) {
	cases := []struct {
		typeName, op string
		want         bool
	}{
		{"rmwregister", "rmw", true}, // Corollary 2
		{"queue", "dequeue", true},   // Corollary 2
		{"stack", "pop", true},       // Corollary 2
		{"pqueue", "extractmin", true},
		{"deque", "popfront", true},
		{"deque", "popback", true},
		{"bank", "withdraw", true}, // double-spend protection
		{"bank", "deposit", false},
		{"register", "write", false},
		{"register", "read", false},
		{"queue", "enqueue", false},
		{"queue", "peek", false},
		// swap({a,v}) returning "absent" cannot follow any swap on key a:
		// pair-free with op1 = op2, like rmw.
		{"dict", "swap", true},
	}
	for _, c := range cases {
		e := explorerFor(t, c.typeName)
		got, w := e.IsPairFree(c.op)
		if got != c.want {
			t.Errorf("%s.%s pair-free = %v, want %v (%v)", c.typeName, c.op, got, c.want, w)
		}
	}
}

func TestPairFreeImpliesMixed(t *testing.T) {
	// Lemma 3: every pair-free operation is both an accessor and a
	// mutator. Verify over all types and ops.
	for _, typeName := range adt.Names() {
		e := explorerFor(t, typeName)
		for _, op := range e.DataType().Ops() {
			pf, _ := e.IsPairFree(op.Name)
			if !pf {
				continue
			}
			mut, _ := e.IsMutator(op.Name)
			acc, _ := e.IsAccessor(op.Name)
			if !mut || !acc {
				t.Errorf("%s.%s pair-free but mutator=%v accessor=%v (violates Lemma 3)",
					typeName, op.Name, mut, acc)
			}
		}
	}
}

func TestTheorem5ApplicableQueue(t *testing.T) {
	// The paper's example: (enqueue, peek) on a queue satisfies the
	// Theorem 5 hypotheses.
	e := explorerFor(t, "queue")
	w, ok := e.Theorem5Applicable("enqueue", "peek")
	if !ok {
		t.Fatal("(enqueue, peek) should satisfy Theorem 5 hypotheses")
	}
	// Validate the discriminators against the definitions.
	dt := e.DataType()
	s := spec.Replay(dt.Initial(), w.Rho)
	_, after0 := s.Apply(w.Op0.Op, w.Op0.Arg)
	_, after1 := s.Apply(w.Op1.Op, w.Op1.Arg)
	_, after10 := after1.Apply(w.Op0.Op, w.Op0.Arg)
	r0, _ := after0.Apply(w.Disc0.A.Op, w.Disc0.A.Arg)
	r10, _ := after10.Apply(w.Disc0.B.Op, w.Disc0.B.Arg)
	if !spec.ValuesEqual(r0, w.Disc0.A.Ret) || !spec.ValuesEqual(r10, w.Disc0.B.Ret) {
		t.Error("Disc0 instances are not legal after their sequences")
	}
	if spec.ValuesEqual(w.Disc0.A.Ret, w.Disc0.B.Ret) {
		t.Error("Disc0 return values must differ")
	}
	_ = after1
}

func TestTheorem5NotApplicableStack(t *testing.T) {
	// §4.3: "this does not hold for stacks, because ... a peek is solely
	// dependent on the last push."
	e := explorerFor(t, "stack")
	if _, ok := e.Theorem5Applicable("push", "peek"); ok {
		t.Error("(push, peek) on a stack must NOT satisfy Theorem 5 hypotheses")
	}
}

func TestTheorem5ApplicableTreeFW(t *testing.T) {
	// With first-wins insert, (insert, depth) satisfies Theorem 5.
	e := explorerFor(t, "treefw")
	if _, ok := e.Theorem5Applicable("insert", "depth"); !ok {
		t.Error("(insert, depth) on treefw should satisfy Theorem 5 hypotheses")
	}
}

func TestTheorem5RequiresPureAccessor(t *testing.T) {
	e := explorerFor(t, "queue")
	if _, ok := e.Theorem5Applicable("enqueue", "dequeue"); ok {
		t.Error("dequeue is not a pure accessor; Theorem 5 must not apply")
	}
}

func TestTheorem5RequiresDistinctInstances(t *testing.T) {
	// dequeue never has two distinct instances legal after the same ρ, so
	// the op0 ≠ op1 requirement cannot be met.
	e := explorerFor(t, "queue")
	if _, ok := e.Theorem5Applicable("dequeue", "peek"); ok {
		t.Error("dequeue has no distinct instance pairs; Theorem 5 must not apply")
	}
}

func TestClassString(t *testing.T) {
	if PureAccessor.String() != "AOP" || PureMutator.String() != "MOP" || Mixed.String() != "OOP" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class should format numerically")
	}
}

func TestReportClassesAndString(t *testing.T) {
	e := explorerFor(t, "register")
	rep := e.Report()
	classes := rep.Classes()
	if classes["read"] != PureAccessor || classes["write"] != PureMutator {
		t.Errorf("Classes() = %v", classes)
	}
	if rep.String() == "" {
		t.Error("report string empty")
	}
	if _, ok := rep.Find("nonexistent"); ok {
		t.Error("Find(nonexistent) should fail")
	}
}

func TestPermutationsAndCombinations(t *testing.T) {
	if got := len(permutations(3)); got != 6 {
		t.Errorf("permutations(3) has %d entries, want 6", got)
	}
	if got := len(permutations(0)); got != 1 {
		t.Errorf("permutations(0) has %d entries, want 1", got)
	}
	if got := len(combinations(5, 2)); got != 10 {
		t.Errorf("combinations(5,2) has %d entries, want 10", got)
	}
	if got := len(combinations(4, 4)); got != 1 {
		t.Errorf("combinations(4,4) has %d entries, want 1", got)
	}
	// Permutations must all be distinct.
	seen := map[string]bool{}
	for _, p := range permutations(4) {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
	}
}

func TestWitnessString(t *testing.T) {
	w := Witness{Note: "test"}
	if w.String() == "" {
		t.Error("witness string empty")
	}
}

func TestMutatorWitnessesAreValid(t *testing.T) {
	// For every op classified as mutator, the witness must satisfy the
	// definition: ρ.mop legal and ρ ≢ ρ.mop.
	for _, typeName := range adt.Names() {
		e := explorerFor(t, typeName)
		dt := e.DataType()
		for _, op := range dt.Ops() {
			ok, w := e.IsMutator(op.Name)
			if !ok {
				continue
			}
			seq := append(append([]spec.Instance{}, w.Rho...), w.Instances...)
			if !spec.Legal(dt, seq) {
				t.Errorf("%s.%s mutator witness illegal: %v", typeName, op.Name, w)
				continue
			}
			if spec.Equivalent(dt, w.Rho, seq) {
				t.Errorf("%s.%s mutator witness does not change state: %v", typeName, op.Name, w)
			}
		}
	}
}
