// Package classify implements decision procedures for the algebraic
// operation properties defined in Sections 2.1, 3 and 4 of the paper:
// mutator, accessor, pure mutator/accessor, overwriter, transposable,
// last-sensitive, pair-free, and discriminators.
//
// The properties quantify over all legal sequences ρ, which is undecidable
// in general; we decide them over a bounded exploration of the reachable
// state space using the argument samples each data type declares. For
// existential properties (mutator, accessor, last-sensitive, pair-free)
// the procedures return concrete witnesses that are sound by construction;
// for universal properties (overwriter, transposable) they return either a
// concrete counterexample or "holds within bounds".
package classify

import (
	"fmt"

	"lintime/internal/spec"
)

// Config bounds the state-space exploration.
type Config struct {
	// MaxStates caps the number of distinct reachable states explored.
	MaxStates int
	// MaxDepth caps the length of the witness sequences ρ considered.
	MaxDepth int
}

// DefaultConfig returns exploration bounds adequate for all data types in
// the adt package.
func DefaultConfig() Config { return Config{MaxStates: 600, MaxDepth: 6} }

// ReachedState is a reachable state together with a legal sequence ρ that
// produces it from the initial state.
type ReachedState struct {
	State spec.State
	Rho   []spec.Instance
}

// Explorer enumerates reachable states of a data type, deduplicated by
// fingerprint, in breadth-first order so witness sequences are shortest.
type Explorer struct {
	dt     spec.DataType
	cfg    Config
	states []ReachedState
	seen   map[string]bool
}

// NewExplorer explores the reachable states of dt up to the bounds in cfg.
func NewExplorer(dt spec.DataType, cfg Config) *Explorer {
	e := &Explorer{dt: dt, cfg: cfg, seen: map[string]bool{}}
	e.explore()
	return e
}

func (e *Explorer) explore() {
	initial := e.dt.Initial()
	e.states = append(e.states, ReachedState{State: initial})
	e.seen[initial.Fingerprint()] = true
	frontier := []int{0}
	for depth := 0; depth < e.cfg.MaxDepth && len(frontier) > 0; depth++ {
		var next []int
		for _, idx := range frontier {
			cur := e.states[idx]
			for _, op := range e.dt.Ops() {
				for _, arg := range op.Args {
					if len(e.states) >= e.cfg.MaxStates {
						return
					}
					ret, ns := cur.State.Apply(op.Name, arg)
					fp := ns.Fingerprint()
					if e.seen[fp] {
						continue
					}
					e.seen[fp] = true
					rho := make([]spec.Instance, len(cur.Rho)+1)
					copy(rho, cur.Rho)
					rho[len(cur.Rho)] = spec.Instance{Op: op.Name, Arg: arg, Ret: ret}
					e.states = append(e.states, ReachedState{State: ns, Rho: rho})
					next = append(next, len(e.states)-1)
				}
			}
		}
		frontier = next
	}
}

// States returns all explored reachable states.
func (e *Explorer) States() []ReachedState { return e.states }

// DataType returns the explored data type.
func (e *Explorer) DataType() spec.DataType { return e.dt }

// instancesAt returns all instances of op legal immediately after the
// given state, one per sampled argument.
func (e *Explorer) instancesAt(s spec.State, opName string) []spec.Instance {
	op, ok := spec.FindOp(e.dt, opName)
	if !ok {
		return nil
	}
	out := make([]spec.Instance, 0, len(op.Args))
	for _, arg := range op.Args {
		ret, _ := s.Apply(opName, arg)
		out = append(out, spec.Instance{Op: opName, Arg: arg, Ret: ret})
	}
	return out
}

// allInstancesAt returns the legal next instances of every operation at s.
func (e *Explorer) allInstancesAt(s spec.State) []spec.Instance {
	var out []spec.Instance
	for _, op := range e.dt.Ops() {
		out = append(out, e.instancesAt(s, op.Name)...)
	}
	return out
}

// Witness describes why a property holds (or fails), as a human-readable
// explanation plus the sequences involved.
type Witness struct {
	Rho       []spec.Instance
	Instances []spec.Instance
	Note      string
}

// String renders the witness.
func (w Witness) String() string {
	return fmt.Sprintf("ρ=%s; instances=%s; %s",
		spec.FormatSeq(w.Rho), spec.FormatSeq(w.Instances), w.Note)
}
