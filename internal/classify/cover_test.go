package classify

import (
	"fmt"
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/spec"
)

// TestClassifyWrapper pins the one-shot Classify entry point against the
// incremental Explorer path used everywhere else.
func TestClassifyWrapper(t *testing.T) {
	rep := Classify(adt.NewQueue(), DefaultConfig())
	if rep.Type != "queue" {
		t.Fatalf("Classify report type %q, want queue", rep.Type)
	}
	classes := map[string]Class{}
	for _, op := range rep.Ops {
		classes[op.Op] = op.Class
	}
	if classes[adt.OpEnqueue] != PureMutator || classes[adt.OpPeek] != PureAccessor || classes[adt.OpDequeue] != Mixed {
		t.Errorf("queue classification wrong: %v", classes)
	}
}

// TestDiscriminatorString pins the rendering used in witness dumps.
func TestDiscriminatorString(t *testing.T) {
	d := Discriminator{
		A: spec.Instance{Op: adt.OpPeek, Arg: nil, Ret: 1},
		B: spec.Instance{Op: adt.OpPeek, Arg: nil, Ret: 2},
	}
	if got, want := d.String(), "(peek(⊥, 1) | peek(⊥, 2))"; got != want {
		t.Errorf("Discriminator.String() = %q, want %q", got, want)
	}
}

// TestIsPureMutator pins the pure-mutator predicate on the queue's three
// operations — the partition Algorithm 1's timer selection depends on.
func TestIsPureMutator(t *testing.T) {
	e := explorerFor(t, "queue")
	if !e.IsPureMutator(adt.OpEnqueue) {
		t.Error("enqueue should be a pure mutator")
	}
	if e.IsPureMutator(adt.OpPeek) {
		t.Error("peek is a pure accessor, not a pure mutator")
	}
	if e.IsPureMutator(adt.OpDequeue) {
		t.Error("dequeue is mixed, not a pure mutator")
	}
}

// TestUnknownOperationNames pins the defensive branches for operation
// names outside the data type: no panic, just a negative answer.
func TestUnknownOperationNames(t *testing.T) {
	e := explorerFor(t, "queue")
	s := e.DataType().Initial()
	if _, ok := e.FindDiscriminator("nosuch", s, s); ok {
		t.Error("FindDiscriminator found a discriminator in a nonexistent op")
	}
	if insts := e.instancesAt(s, "nosuch"); insts != nil {
		t.Errorf("instancesAt for a nonexistent op = %v, want nil", insts)
	}
}

// TestIsPairFreeNoWitness pins the negative verdict: a pure mutator like
// enqueue commutes with itself in the legality sense (any enqueue may
// follow any other), so the full pair search must come up empty.
func TestIsPairFreeNoWitness(t *testing.T) {
	e := explorerFor(t, "queue")
	ok, w := e.IsPairFree(adt.OpEnqueue)
	if ok {
		t.Fatalf("enqueue reported pair-free: %+v", w)
	}
	if !strings.Contains(w.Note, "no pair-free witness") {
		t.Errorf("negative witness note %q", w.Note)
	}
}

// TestTheorem5NotApplicable pins the three ways the Theorem 5 search can
// fail: the operation is not transposable (dequeue), the accessor is not
// pure (enqueue), or — for (insert, min) on a priority queue — every
// candidate pair discriminates in one direction only: min detects op1
// slipping below op0's view only if op1 < op0, and the symmetric
// discriminator needs op0 < op1, so no pair satisfies both.
func TestTheorem5NotApplicable(t *testing.T) {
	q := explorerFor(t, "queue")
	if _, ok := q.Theorem5Applicable(adt.OpDequeue, adt.OpPeek); ok {
		t.Error("Theorem 5 should not apply to the non-transposable dequeue")
	}
	if _, ok := q.Theorem5Applicable(adt.OpEnqueue, adt.OpEnqueue); ok {
		t.Error("Theorem 5 should not apply with a mutator in the accessor slot")
	}
	pq := explorerFor(t, "pqueue")
	if w, ok := pq.Theorem5Applicable(adt.OpPQInsert, adt.OpPQMin); ok {
		t.Errorf("Theorem 5 should not apply to (insert, min): %+v", w)
	}
}

// modState counts operations: tick(k) answers count mod k and always
// advances the count by one. tick(1) is response-blind (anything mod 1 is
// 0) while tick(2) observes the parity the other instance flips — an
// asymmetric pair: ρ.tick(1).tick(2) is illegal but ρ.tick(2).tick(1)
// stays legal. The argument sample repeats 1 so instance deduplication is
// exercised too.
type modState int

func (s modState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	return int(s) % arg.(int), s + 1
}
func (s modState) Fingerprint() string { return fmt.Sprintf("mod:%d", int(s)) }

type modDT struct{}

func (modDT) Name() string { return "modcount" }
func (modDT) Ops() []spec.OpInfo {
	return []spec.OpInfo{{Name: "tick", Args: []spec.Value{1, 1, 2}}}
}
func (modDT) Initial() spec.State { return modState(0) }

// TestIsPairFreeAsymmetricPair drives the pair search through the
// one-direction-legal case real ADTs never reach: at count 0,
// tick(1).tick(2) is illegal (parity flipped) while tick(2).tick(1) is
// still legal, so the search must keep going — and then find the genuine
// witness tick(2).tick(2).
func TestIsPairFreeAsymmetricPair(t *testing.T) {
	e := NewExplorer(modDT{}, DefaultConfig())
	if insts := e.distinctInstancesAt(modDT{}.Initial(), "tick"); len(insts) != 2 {
		t.Fatalf("distinct instances at count 0 = %v, want the duplicated tick(1) collapsed", insts)
	}
	ok, w := e.IsPairFree("tick")
	if !ok {
		t.Fatalf("tick should be pair-free: %s", w.Note)
	}
	if len(w.Instances) != 2 {
		t.Fatalf("pair-free witness %+v, want two instances", w)
	}
}

// TestFigure11Regions pins every region of the computed Figure 11,
// including the two fall-through rows (plain mutators and plain mixed
// operations) that carry no known lower bound.
func TestFigure11Regions(t *testing.T) {
	out := Figure11([]Report{{Type: "toy", Ops: []OpReport{
		{Op: "read", Class: PureAccessor},
		{Op: "mix", Class: Mixed, PairFree: true},
		{Op: "append", Class: PureMutator, LastSensitiveK: 3},
		{Op: "add", Class: PureMutator},
		{Op: "swap", Class: Mixed},
	}}})
	for _, want := range []string{
		"toy.read", "toy.mix", "toy.append (k≥3)", "toy.add", "toy.swap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 11 missing %q:\n%s", want, out)
		}
	}
}
