package classify

import (
	"fmt"
	"strings"

	"lintime/internal/spec"
)

// Class is the three-way partition Algorithm 1 uses: pure accessors
// (AOP), pure mutators (MOP), and mixed operations (OOP).
type Class int

// Algorithm 1's operation classes.
const (
	// PureAccessor operations observe but never change the state (AOP).
	PureAccessor Class = iota
	// PureMutator operations change but never observe the state (MOP).
	PureMutator
	// Mixed operations both observe and change the state (OOP).
	Mixed
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case PureAccessor:
		return "AOP"
	case PureMutator:
		return "MOP"
	case Mixed:
		return "OOP"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// OpReport is the full classification of one operation.
type OpReport struct {
	Op             string
	Class          Class
	Mutator        bool
	Accessor       bool
	Overwriter     bool
	Transposable   bool
	LastSensitiveK int // largest witnessed k (0 if not last-sensitive)
	PairFree       bool

	MutatorWitness  Witness
	AccessorWitness Witness
	PairFreeWitness Witness
	LastWitness     Witness
}

// Report is the classification of an entire data type.
type Report struct {
	Type string
	Ops  []OpReport
}

// Classes extracts the op→class map Algorithm 1 consumes.
func (r Report) Classes() map[string]Class {
	m := make(map[string]Class, len(r.Ops))
	for _, op := range r.Ops {
		m[op.Op] = op.Class
	}
	return m
}

// Find returns the report for the named operation.
func (r Report) Find(op string) (OpReport, bool) {
	for _, o := range r.Ops {
		if o.Op == op {
			return o, true
		}
	}
	return OpReport{}, false
}

// String renders the report as an aligned table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data type %s:\n", r.Type)
	fmt.Fprintf(&b, "  %-10s %-5s %-8s %-8s %-10s %-12s %-8s %s\n",
		"op", "class", "mutator", "accessor", "overwriter", "transposable", "pairfree", "last-sensitive k")
	for _, op := range r.Ops {
		fmt.Fprintf(&b, "  %-10s %-5s %-8v %-8v %-10v %-12v %-8v %d\n",
			op.Op, op.Class, op.Mutator, op.Accessor, op.Overwriter, op.Transposable, op.PairFree, op.LastSensitiveK)
	}
	return b.String()
}

// MaxKSearched is the largest k the last-sensitivity search tries;
// factorial blow-up makes larger k impractical, and the adt sample
// domains provide at most 5 distinct instances anyway. Analytic witnesses
// for k = n live in the lowerbound package.
const MaxKSearched = 4

// Classify computes the full classification report for dt.
func Classify(dt spec.DataType, cfg Config) Report {
	e := NewExplorer(dt, cfg)
	return e.Report()
}

// Report computes the full classification report from an existing
// exploration.
func (e *Explorer) Report() Report {
	rep := Report{Type: e.dt.Name()}
	for _, op := range e.dt.Ops() {
		mut, mw := e.IsMutator(op.Name)
		acc, aw := e.IsAccessor(op.Name)
		over := false
		if mut {
			over, _ = e.IsOverwriter(op.Name)
		}
		trans, _ := e.IsTransposable(op.Name)
		pf, pfw := e.IsPairFree(op.Name)
		lastK := 0
		var lw Witness
		if mut && trans {
			lastK = e.MaxLastSensitiveK(op.Name, MaxKSearched)
			if lastK > 0 {
				_, lw = e.IsLastSensitive(op.Name, lastK)
			}
		}
		class := Mixed
		switch {
		case acc && !mut:
			class = PureAccessor
		case mut && !acc:
			class = PureMutator
		}
		rep.Ops = append(rep.Ops, OpReport{
			Op:              op.Name,
			Class:           class,
			Mutator:         mut,
			Accessor:        acc,
			Overwriter:      over,
			Transposable:    trans,
			LastSensitiveK:  lastK,
			PairFree:        pf,
			MutatorWitness:  mw,
			AccessorWitness: aw,
			PairFreeWitness: pfw,
			LastWitness:     lw,
		})
	}
	return rep
}
