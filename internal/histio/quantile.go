package histio

import (
	"fmt"
	"sort"

	"lintime/internal/simtime"
)

// Histogram accumulates latency samples (virtual ticks) and extracts
// order statistics. It keeps the raw samples — workloads here are at most
// tens of thousands of operations, so exact quantiles are affordable and
// there is no binning error to reason about when comparing against the
// tick-exact formulas.
//
// A Histogram is not safe for concurrent use; callers that record from
// multiple goroutines (the serving layer's recorder) must wrap it in
// their own lock.
type Histogram struct {
	samples []simtime.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d simtime.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the nearest-rank q-quantile (q in [0, 1]): the
// smallest sample s such that at least ⌈q·count⌉ samples are ≤ s.
// Quantile(0) is the minimum, Quantile(1) the maximum. An empty
// histogram returns 0.
func (h *Histogram) Quantile(q float64) simtime.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.ensureSorted()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.samples[rank-1]
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() simtime.Duration { return h.Quantile(0) }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() simtime.Duration { return h.Quantile(1) }

// Mean returns the average sample, rounded toward zero (0 when empty).
func (h *Histogram) Mean() simtime.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range h.samples {
		sum += int64(s)
	}
	return simtime.Duration(sum / int64(len(h.samples)))
}

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
}

// Quantiles is the JSON-ready summary of a histogram, in virtual ticks.
type Quantiles struct {
	Count int   `json:"count"`
	Min   int64 `json:"min"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
}

// Summary extracts the standard quantile set.
func (h *Histogram) Summary() Quantiles {
	return Quantiles{
		Count: h.Count(),
		Min:   int64(h.Min()),
		P50:   int64(h.Quantile(0.50)),
		P95:   int64(h.Quantile(0.95)),
		P99:   int64(h.Quantile(0.99)),
		Max:   int64(h.Max()),
		Mean:  int64(h.Mean()),
	}
}

// String renders the summary compactly.
func (q Quantiles) String() string {
	return fmt.Sprintf("count=%d min=%d p50=%d p95=%d p99=%d max=%d",
		q.Count, q.Min, q.P50, q.P95, q.P99, q.Max)
}
