// Package histio serializes operation histories as JSON, the interchange
// format between `lintime run -dump`, the standalone linearcheck command,
// and external tools. The format:
//
//	{
//	  "type": "queue",
//	  "ops": [
//	    {"op": "enqueue", "arg": 1, "invoke": 0,  "respond": 10},
//	    {"op": "dequeue", "ret": 1, "invoke": 20, "respond": 30}
//	  ]
//	}
//
// Omitting "respond" marks a pending operation. Supported values:
// integers, strings, booleans, null, tree edges {"p":0,"c":1} and
// dictionary pairs {"k":"a","v":1}.
package histio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"lintime/internal/adt"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// File is the top-level JSON document.
type File struct {
	Type string `json:"type"`
	Ops  []Op   `json:"ops"`
}

// Op is one serialized operation instance.
type Op struct {
	Op      string          `json:"op"`
	Arg     json.RawMessage `json:"arg,omitempty"`
	Ret     json.RawMessage `json:"ret,omitempty"`
	Invoke  int64           `json:"invoke"`
	Respond *int64          `json:"respond,omitempty"`
}

// EncodeValue serializes a spec.Value into JSON.
func EncodeValue(v spec.Value) (json.RawMessage, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case int, string, bool:
		return json.Marshal(x)
	case adt.Edge:
		return json.Marshal(map[string]int{"p": x.P, "c": x.C})
	case adt.KV:
		return json.Marshal(map[string]any{"k": x.K, "v": x.V})
	default:
		return nil, fmt.Errorf("histio: unsupported value %v (%T)", v, v)
	}
}

// DecodeValue parses a JSON value into a spec.Value of the kinds the
// built-in data types use.
func DecodeValue(raw json.RawMessage) (spec.Value, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	switch x := v.(type) {
	case float64:
		if x != math.Trunc(x) {
			return nil, fmt.Errorf("histio: non-integer number %v", x)
		}
		return int(x), nil
	case string, bool:
		return x, nil
	case map[string]any:
		if p, okP := numField(x, "p"); okP {
			if c, okC := numField(x, "c"); okC {
				return adt.Edge{P: p, C: c}, nil
			}
		}
		if k, okK := x["k"].(string); okK {
			if val, okV := numField(x, "v"); okV {
				return adt.KV{K: k, V: val}, nil
			}
		}
		return nil, fmt.Errorf("histio: unsupported object %v (expected {p,c} or {k,v})", x)
	default:
		return nil, fmt.Errorf("histio: unsupported value %v (%T)", v, v)
	}
}

func numField(m map[string]any, key string) (int, bool) {
	f, ok := m[key].(float64)
	if !ok || f != math.Trunc(f) {
		return 0, false
	}
	return int(f), true
}

// WriteTrace serializes the operations of a recorded trace (sorted by
// invocation time) as a history document.
func WriteTrace(w io.Writer, typeName string, tr *sim.Trace) error {
	ops := append([]sim.OpRecord(nil), tr.Ops...)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].InvokeTime != ops[j].InvokeTime {
			return ops[i].InvokeTime < ops[j].InvokeTime
		}
		return ops[i].SeqID < ops[j].SeqID
	})
	doc := File{Type: typeName}
	for _, rec := range ops {
		arg, err := EncodeValue(rec.Arg)
		if err != nil {
			return err
		}
		op := Op{Op: rec.Op, Arg: arg, Invoke: int64(rec.InvokeTime)}
		if !rec.Pending() {
			ret, err := EncodeValue(rec.Ret)
			if err != nil {
				return err
			}
			resp := int64(rec.RespondTime)
			op.Ret = ret
			op.Respond = &resp
		}
		doc.Ops = append(doc.Ops, op)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Read parses a history document and returns the data type and the
// checker-ready operations.
func Read(r io.Reader) (spec.DataType, []lincheck.Op, error) {
	var doc File
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("histio: parsing history: %w", err)
	}
	dt, err := adt.Lookup(doc.Type)
	if err != nil {
		return nil, nil, err
	}
	ops := make([]lincheck.Op, 0, len(doc.Ops))
	for i, rec := range doc.Ops {
		arg, err := DecodeValue(rec.Arg)
		if err != nil {
			return nil, nil, fmt.Errorf("histio: op %d arg: %w", i, err)
		}
		ret, err := DecodeValue(rec.Ret)
		if err != nil {
			return nil, nil, fmt.Errorf("histio: op %d ret: %w", i, err)
		}
		op := lincheck.Op{
			ID:      i,
			Name:    rec.Op,
			Arg:     arg,
			Ret:     ret,
			Invoke:  simtime.Time(rec.Invoke),
			Respond: simtime.Infinity,
		}
		if rec.Respond != nil {
			op.Respond = simtime.Time(*rec.Respond)
		}
		ops = append(ops, op)
	}
	return dt, ops, nil
}
