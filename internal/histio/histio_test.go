package histio

import (
	"bytes"
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

func TestValueRoundTrip(t *testing.T) {
	values := []spec.Value{
		nil, 0, 42, -7, "hello", true, false,
		adt.Edge{P: 0, C: 3}, adt.KV{K: "a", V: 9},
	}
	for _, v := range values {
		raw, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := DecodeValue(raw)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !spec.ValuesEqual(v, back) {
			t.Errorf("round trip %v → %v", v, back)
		}
	}
}

func TestEncodeValueUnsupported(t *testing.T) {
	if _, err := EncodeValue(3.14); err == nil {
		t.Error("floats should be rejected")
	}
	if _, err := EncodeValue([]int{1}); err == nil {
		t.Error("slices should be rejected")
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := []string{`3.5`, `[1,2]`, `{"x":1}`, `{`}
	for _, c := range cases {
		if _, err := DecodeValue([]byte(c)); err == nil {
			t.Errorf("decoding %q should error", c)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	p := simtime.DefaultParams(3)
	res, err := harness.Run(
		harness.Config{Params: p, TypeName: "queue", Algorithm: harness.AlgCore, Seed: 5},
		harness.Workload{OpsPerProc: 5, MaxGap: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "queue", res.Trace); err != nil {
		t.Fatal(err)
	}
	dt, ops, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Name() != "queue" {
		t.Errorf("type = %s", dt.Name())
	}
	if len(ops) != len(res.Trace.Ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(ops), len(res.Trace.Ops))
	}
	// The round-tripped history must give the same linearizability
	// verdict as the original trace.
	if !lincheck.Check(dt, ops).Linearizable {
		t.Error("round-tripped history should be linearizable")
	}
}

func TestWriteTracePendingOps(t *testing.T) {
	p := simtime.DefaultParams(3)
	res, err := harness.Run(
		harness.Config{Params: p, TypeName: "register", Algorithm: harness.AlgCore, Seed: 6},
		harness.Workload{OpsPerProc: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace.Clone()
	tr.Ops[0].RespondTime = simtime.Infinity // simulate a pending op
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "register", tr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(buf.String(), "\n", 4)[2], "respond") &&
		!strings.Contains(buf.String(), "respond") {
		t.Error("unexpected serialization")
	}
	_, ops, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pending := 0
	for _, op := range ops {
		if op.Pending() {
			pending++
		}
	}
	if pending != 1 {
		t.Errorf("%d pending ops after round trip, want 1", pending)
	}
}

func TestReadRejectsUnknownType(t *testing.T) {
	doc := `{"type": "bogus", "ops": []}`
	if _, _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("unknown type should error")
	}
}

func TestReadRejectsBadJSON(t *testing.T) {
	if _, _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON should error")
	}
}

func TestReadBadValues(t *testing.T) {
	doc := `{"type":"queue","ops":[{"op":"enqueue","arg":1.5,"invoke":0,"respond":1}]}`
	if _, _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("fractional arg should error")
	}
	doc = `{"type":"queue","ops":[{"op":"dequeue","ret":[1],"invoke":0,"respond":1}]}`
	if _, _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("array ret should error")
	}
}

func TestTreeHistoryRoundTrip(t *testing.T) {
	doc := `{"type":"tree","ops":[
		{"op":"insert","arg":{"p":0,"c":1},"invoke":0,"respond":10},
		{"op":"depth","arg":1,"ret":1,"invoke":20,"respond":30}]}`
	dt, ops, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !lincheck.Check(dt, ops).Linearizable {
		t.Error("tree history should be linearizable")
	}
}

// TestWriteTraceRejectsUnsupportedValues covers WriteTrace's error paths:
// an op whose argument or return value has no JSON encoding must fail
// with a descriptive error rather than write a partial document.
func TestWriteTraceRejectsUnsupportedValues(t *testing.T) {
	type odd struct{ X int }
	cases := []struct {
		name string
		op   sim.OpRecord
	}{
		{"unsupported arg", sim.OpRecord{Op: "enqueue", Arg: odd{1}, InvokeTime: 0, RespondTime: 5}},
		{"unsupported ret", sim.OpRecord{Op: "dequeue", Ret: odd{2}, InvokeTime: 0, RespondTime: 5}},
		{"unsupported pending arg", sim.OpRecord{Op: "enqueue", Arg: odd{3}, InvokeTime: 0, RespondTime: simtime.Infinity}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &sim.Trace{Ops: []sim.OpRecord{tc.op}}
			var buf bytes.Buffer
			err := WriteTrace(&buf, "queue", tr)
			if err == nil {
				t.Fatalf("expected error, wrote: %s", buf.String())
			}
			if !strings.Contains(err.Error(), "unsupported value") {
				t.Errorf("error %q does not mention the unsupported value", err)
			}
		})
	}
	// A pending op's return value is never encoded, so an unsupported Ret
	// on a pending op must NOT fail.
	tr := &sim.Trace{Ops: []sim.OpRecord{
		{Op: "dequeue", Ret: odd{4}, InvokeTime: 0, RespondTime: simtime.Infinity},
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "queue", tr); err != nil {
		t.Errorf("pending op with unencodable ret should not fail: %v", err)
	}
}

// TestWriteTraceSortsByInvocation checks that ops are serialized in
// invocation order with SeqID tiebreaks, regardless of trace order.
func TestWriteTraceSortsByInvocation(t *testing.T) {
	tr := &sim.Trace{Ops: []sim.OpRecord{
		{SeqID: 2, Op: "peek", InvokeTime: 9, RespondTime: 10},
		{SeqID: 1, Op: "enqueue", Arg: 1, InvokeTime: 0, RespondTime: 5},
		{SeqID: 0, Op: "dequeue", InvokeTime: 9, RespondTime: 12},
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "queue", tr); err != nil {
		t.Fatal(err)
	}
	_, ops, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotNames := make([]string, len(ops))
	for i, op := range ops {
		gotNames[i] = op.Name
	}
	want := []string{"enqueue", "dequeue", "peek"}
	for i := range want {
		if gotNames[i] != want[i] {
			t.Fatalf("serialized order = %v, want %v", gotNames, want)
		}
	}
}

// TestDecodeValueTable covers the object-decoding corner cases: edge and
// KV shapes, near-miss objects, and non-integer numbers.
func TestDecodeValueTable(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		want    spec.Value
		wantErr bool
	}{
		{"edge", `{"p":1,"c":2}`, adt.Edge{P: 1, C: 2}, false},
		{"kv", `{"k":"a","v":3}`, adt.KV{K: "a", V: 3}, false},
		{"negative int", `-17`, -17, false},
		{"bool", `true`, true, false},
		{"null", `null`, nil, false},
		{"empty raw", ``, nil, false},
		{"fractional number", `1.5`, nil, true},
		{"fractional edge field", `{"p":1.5,"c":2}`, nil, true},
		{"kv with non-string key", `{"k":7,"v":3}`, nil, true},
		{"kv with fractional value", `{"k":"a","v":0.5}`, nil, true},
		{"unknown object", `{"x":1}`, nil, true},
		{"array", `[1,2]`, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeValue([]byte(tc.raw))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !spec.ValuesEqual(got, tc.want) {
				t.Errorf("DecodeValue(%s) = %v, want %v", tc.raw, got, tc.want)
			}
		})
	}
}
