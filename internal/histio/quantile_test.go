package histio

import (
	"math/rand"
	"sort"
	"testing"

	"lintime/internal/simtime"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero: %+v", h.Summary())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Add(42)
	s := h.Summary()
	if s.Count != 1 || s.Min != 42 || s.P50 != 42 || s.P95 != 42 || s.P99 != 42 || s.Max != 42 || s.Mean != 42 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

// TestHistogramNearestRank checks the nearest-rank definition against a
// hand-computed example: 1..100 has p50=50, p95=95, p99=99.
func TestHistogramNearestRank(t *testing.T) {
	var h Histogram
	for i := 100; i >= 1; i-- { // insert unsorted
		h.Add(simtime.Duration(i))
	}
	cases := []struct {
		q    float64
		want simtime.Duration
	}{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
		{0.501, 51}, // ⌈0.501·100⌉ = 51
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if m := h.Mean(); m != 50 { // (1+..+100)/100 = 50.5, truncated
		t.Errorf("Mean = %v, want 50", m)
	}
}

// TestHistogramQuantileAgainstSort cross-checks random data against a
// direct nearest-rank computation on the sorted slice.
func TestHistogramQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var raw []int64
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(10000)
		raw = append(raw, v)
		h.Add(simtime.Duration(v))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(q * 1000)
		if float64(rank) < q*1000 {
			rank++
		}
		want := simtime.Duration(raw[rank-1])
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(10)
	h.Add(20)
	if h.Max() != 20 {
		t.Fatalf("max = %v", h.Max())
	}
	h.Add(5) // must invalidate the sorted cache
	if h.Min() != 5 || h.Max() != 20 {
		t.Errorf("after late add: min=%v max=%v, want 5/20", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(1)
	a.Add(3)
	b.Add(2)
	b.Add(4)
	a.Merge(&b)
	a.Merge(nil)
	a.Merge(&Histogram{})
	s := a.Summary()
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("merged summary wrong: %+v", s)
	}
}
