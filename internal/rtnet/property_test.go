package rtnet_test

import (
	"fmt"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/diagram"
	"lintime/internal/rtnet"
	"lintime/internal/serve"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// TestLatencyWithinJitterBudget is the real-time analogue of the
// simulator's tick-exact latency assertions: across a sweep of (u, X, ε)
// configurations, one operation of each class runs on an otherwise quiet
// cluster and its observed wall-clock latency (in virtual ticks) must
// land in [formula, formula + jitter budget]:
//
//	AOP: d−X+ε    MOP: X+ε    OOP: d+ε
//
// The lower bound is exact — timers never fire early, the substrate
// samples message delays from the lower half of [d−u, d], and on a quiet
// cluster no concurrent mutator's drain can execute a mixed operation
// before its own stabilization timer. The upper bound allows the
// scheduling-jitter budget serve.JitterBudget derives from the tick
// duration. A failure prints the configuration and the space-time
// diagram of the offending run.
func TestLatencyWithinJitterBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep uses wall-clock sleeps")
	}
	const (
		n    = 3
		d    = simtime.Duration(40)
		tick = time.Millisecond
	)
	type cfg struct{ u, x simtime.Duration }
	sweep := []cfg{
		{u: 20, x: 10}, // the serving default shape
		{u: 20, x: 0},  // fastest mutators, slowest accessors
		{u: 20, x: 26}, // X at its d−ε maximum
		{u: 10, x: 20}, // tighter delay uncertainty
		{u: 0, x: 10},  // exact delays, perfect clocks (ε = 0)
	}
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()

	for _, sc := range sweep {
		p := simtime.Params{N: n, D: d, U: sc.u, Epsilon: simtime.OptimalEpsilon(n, sc.u), X: sc.x}
		t.Run(fmt.Sprintf("u=%d_x=%d_eps=%d", sc.u, sc.x, p.Epsilon), func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("sweep config invalid: %v", err)
			}
			nodes := make([]sim.Node, n)
			for i := range nodes {
				nodes[i] = core.NewReplica(dt, classes, core.DefaultTimers(p))
			}
			offsets := sim.SpreadOffsets(n, p.Epsilon)
			c, err := rtnet.NewCluster(rtnet.Params{Params: p}, tick, offsets, nodes, 123)
			if err != nil {
				t.Fatal(err)
			}
			c.SetClasses(classes)
			c.Start()
			defer c.Stop()

			budget := serve.JitterBudget(tick)
			settle := 2 * time.Duration(d) * tick
			var recorded []sim.OpRecord
			// One op per class, each on a quiet cluster: enqueue (MOP)
			// first so the later dequeue observes a value, with settle
			// sleeps so no mutator is still stabilizing when the next
			// operation's latency is measured.
			steps := []struct {
				op    string
				arg   any
				class classify.Class
			}{
				{adt.OpEnqueue, 7, classify.PureMutator},
				{adt.OpPeek, nil, classify.PureAccessor},
				{adt.OpDequeue, nil, classify.Mixed},
			}
			for i, step := range steps {
				r, err := c.Call(sim.ProcID(i%n), step.op, step.arg)
				if err != nil {
					t.Fatalf("%s: %v", step.op, err)
				}
				recorded = append(recorded, sim.OpRecord{
					Proc: r.Proc, SeqID: r.Seq, Op: r.Op, Arg: r.Arg, Ret: r.Ret,
					InvokeTime: r.Invoke, RespondTime: r.Respond,
				})
				if r.Class != step.class {
					t.Errorf("%s classified %v, want %v", step.op, r.Class, step.class)
				}
				formula := serve.FormulaTicks(p, step.class)
				if lat := r.Latency(); lat < formula || lat > formula+budget {
					t.Errorf("%s (%v) latency %d ticks outside [%d, %d] under %+v\n%s",
						step.op, step.class, lat, formula, formula+budget, p,
						diagram.Render(&sim.Trace{Params: p, Offsets: offsets, Ops: recorded},
							diagram.Options{SuppressMessages: true}))
				}
				time.Sleep(settle)
			}
		})
	}
}
