// Package rtnet runs the same algorithm nodes as the virtual-time
// simulator on a *real-time* substrate built from goroutines and
// channels: every process is a goroutine consuming events from its inbox
// channel, message delays are real sleeps drawn from [d-u, d] virtual
// ticks, timers are time.Timer instances, and local clocks are wall-clock
// readings plus a constant per-process offset.
//
// The substrate exists to demonstrate that Algorithm 1 is a practical
// message-passing protocol, not just a simulation artifact: the exact
// same core.Replica values run here, with latencies that approximate the
// tick-exact virtual-time values up to scheduling jitter. The tick
// duration scales virtual ticks to wall time; choose it large enough that
// goroutine scheduling jitter stays well below one u (a millisecond-scale
// tick on an unloaded machine).
package rtnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lintime/internal/classify"
	"lintime/internal/harness"
	"lintime/internal/obs"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// DefaultInboxDepth is the per-process inbox capacity used when
// Params.InboxDepth is zero.
const DefaultInboxDepth = 1024

// Params configures a real-time cluster: the model parameters plus the
// substrate's own knobs.
type Params struct {
	simtime.Params

	// InboxDepth bounds each process's inbox channel (default
	// DefaultInboxDepth). A delivery that finds the inbox full is a
	// cluster failure (InboxOverflowError), never a silent stall: the
	// posting side runs on timer goroutines whose blocking would distort
	// every in-flight delay measurement.
	InboxDepth int

	// BatchWindow coalesces all messages a process sends to one
	// destination within this many virtual ticks into a single delivery
	// event (one wall-clock timer and one inbox post per batch instead of
	// per message). Zero disables coalescing.
	//
	// Coalescing stays inside the admissible delay envelope: a batch
	// opened at t flushes at t+w and draws its flush delay δ from
	// [d-u, d-u/2-w], so a message that joined the batch a ticks after it
	// opened is delivered with total delay (w-a)+δ ∈ [d-u, d-u/2] — the
	// same lower half of [d-u, d] the unbatched path samples (real
	// scheduling jitter only adds latency). That containment needs
	// w ≤ u/2, which NewCluster enforces. Per-operation invoke/respond
	// timestamps are unaffected: Algorithm 1 responses are driven by
	// local timers, not message arrival counts, so the per-class latency
	// formulas apply unchanged (EXPERIMENTS.md measures the trade).
	//
	// Coalescing is ignored when UseNetwork installs a deterministic
	// delay schedule: replayed networks assign per-message delays by
	// global send order and must see every message as its own delivery.
	BatchWindow simtime.Duration
}

// ErrStopped is returned by Invoke/Call after the cluster has stopped
// without a recorded failure.
var ErrStopped = errors.New("rtnet: cluster stopped")

// ErrCrashed is returned by Invoke/Call when the chosen process has been
// crashed with Crash. A crashed process is not a cluster failure: the
// rest of the cluster keeps running (that is the point of injecting the
// crash under a fault-tolerant backend).
var ErrCrashed = errors.New("rtnet: process crashed")

// InboxOverflowError reports that a bounded inbox was full when an event
// had to be delivered. It stops the cluster: overflow means the event
// loop has fallen hopelessly behind (or deadlocked), and latency numbers
// from such a run are meaningless.
type InboxOverflowError struct {
	Proc  sim.ProcID
	Depth int
}

func (e *InboxOverflowError) Error() string {
	return fmt.Sprintf("rtnet: inbox of p%d overflowed (depth %d)", e.Proc, e.Depth)
}

// Response is the completed result of an asynchronous invocation.
type Response struct {
	Proc    sim.ProcID // process the operation was invoked at
	Seq     int64      // cluster-unique invocation id
	Op      string
	Arg     any
	Ret     any
	Class   classify.Class // operation class (Mixed unless SetClasses was called)
	Invoke  simtime.Time   // virtual ticks since cluster start
	Respond simtime.Time
}

// Latency returns the observed virtual-tick latency.
func (r Response) Latency() simtime.Duration { return r.Respond.Sub(r.Invoke) }

// event is one inbox item. Events are pooled: the loop goroutine returns
// each one after handling, so steady-state traffic allocates no inbox
// items.
type event struct {
	kind    int // 0 invoke, 1 message, 2 timer, 3 inspect, 4 batch
	inv     sim.Invocation
	from    sim.ProcID
	payload any
	tag     any
	timerID sim.TimerID
	inspect func()
	done    chan struct{}
	span    int64        // owning operation's span, stamped at send/registration
	sent    simtime.Time // message send time (kind 1), for latency accounting

	// kind 4 carries a whole coalesced batch from one sender; the loop
	// delivers the payloads in order, each with its own span/sent
	// accounting, exactly as if they had arrived as consecutive kind-1
	// events.
	batch      []any
	batchSpans []int64
	batchSents []simtime.Time
}

var eventPool = sync.Pool{New: func() any { return new(event) }}

func getEvent() *event { return eventPool.Get().(*event) }

func putEvent(ev *event) {
	*ev = event{}
	eventPool.Put(ev)
}

// Cluster runs n nodes in real time.
type Cluster struct {
	params     simtime.Params
	inboxDepth int
	tick       time.Duration
	offsets    []simtime.Duration
	nodes      []sim.Node
	classes    map[string]classify.Class // read-only after Start

	inboxes  []chan *event
	start    time.Time
	wg       sync.WaitGroup
	stopped  chan struct{}
	stopOnce sync.Once

	metrics *Metrics
	tracer  obs.Tracer
	tracing bool
	// causal is tracer's CausalTracer extension when present. handling[p]
	// is the span of the event p's loop is dispatching right now (-1
	// outside a handler); it is confined to p's loop goroutine (written
	// around handler calls, read by Send/SetTimer, which only run inside
	// handlers or before Start), so no lock is needed. While a handler for
	// span S runs, sends and timer registrations inherit S — attributing a
	// quorum replica's ack to the coordinator's operation instead of the
	// replica's own pending span.
	causal   obs.CausalTracer
	handling []int64

	// batchers[from][to] coalesces from→to messages when batchWindow > 0;
	// nil slots on the diagonal (no self-sends). Each batcher carries its
	// own mutex and delay-draw rng: flushes run on timer goroutines, so
	// they cannot share the goroutine-confined sendRngs.
	batchWindow simtime.Duration
	batchers    [][]*batcher

	// sendRngs holds one delay-draw stream per process, seeded from the
	// cluster seed and the process id via harness.DeriveSeed. A process
	// only sends from inside its own event-loop goroutine (handlers run
	// there, and Init runs before the loops start), so each stream is
	// confined to one goroutine: no lock, and the sequence of draws a
	// process makes is reproducible regardless of how the other
	// processes are scheduled.
	sendRngs []*rand.Rand

	// crashed flags are written under mu (Crash serializes against the
	// registration paths) but read lock-free from the event loops and
	// Send; crashCh[p] is closed when p crashes so blocked Calls unstick.
	crashed []atomic.Bool
	crashCh []chan struct{}

	mu           sync.Mutex
	err          error // first failure (inbox overflow); sticky
	overflows    int64
	overflowProc int32 // process of the last inbox overflow; -1 if none
	seq          int64
	msgIdx       int64
	delays       sim.Network
	pending      map[int64]*pendingCall
	timers       map[sim.TimerID]procTimer
	timerID      sim.TimerID
}

// procTimer is a registered timer together with the process that owns
// it; the attribution is what lets Crash cancel exactly the crashed
// process's timers instead of leaking them until they fire into a dead
// inbox.
type procTimer struct {
	t    *time.Timer
	proc sim.ProcID
}

// Metrics is the substrate's instrumentation hook set. All fields must
// be non-nil when installed (use NewMetrics); a nil *Metrics (the
// default) disables instrumentation at the cost of one predictable
// branch per event.
type Metrics struct {
	Delivered  *obs.Counter // messages delivered to inboxes
	TimerFires *obs.Counter // timer events handled (live timers only)
	Overflows  *obs.Counter // inbox overflows (any value > 0 means the run failed)
	MsgLatency *obs.Hist    // observed delivery delay in virtual ticks vs the [d-u, d] envelope
	InboxMax   *obs.Max     // high-water mark of any inbox depth, observed at post time
	Crashes    *obs.Counter // processes crashed with Crash
	CrashDrops *obs.Counter // deliveries discarded because the receiver had crashed
	BatchSize  *obs.Hist    // messages per coalesced broadcast batch (Params.BatchWindow > 0)
}

// NewMetrics builds the substrate's instrument set on a registry. The
// message-latency histogram is sized to hold the whole admissible
// envelope [d-u, d] plus generous room for scheduling jitter above it.
// Optional labels come as key, value pairs and are folded into every
// instrument name (obs.WithLabel); the shard-set uses them to keep each
// shard cluster's substrate metrics distinct on one merged endpoint.
func NewMetrics(reg *obs.Registry, p simtime.Params, labels ...string) *Metrics {
	limit := 4 * int(p.D)
	if limit < 16 {
		limit = 16
	}
	name := func(base string) string {
		for i := 0; i+1 < len(labels); i += 2 {
			base = obs.WithLabel(base, labels[i], labels[i+1])
		}
		return base
	}
	return &Metrics{
		Delivered:  reg.Counter(name("rtnet_messages_delivered_total")),
		TimerFires: reg.Counter(name("rtnet_timer_fires_total")),
		Overflows:  reg.Counter(name("rtnet_inbox_overflows_total")),
		MsgLatency: reg.Hist(name("rtnet_message_latency_ticks"), limit),
		InboxMax:   reg.Max(name("rtnet_inbox_depth_max")),
		Crashes:    reg.Counter(name("crashes_injected")),
		CrashDrops: reg.Counter(name("rtnet_post_crash_drops_total")),
		// Named for the serving layer, which surfaces it on /metrics and
		// in `lintime stat`: the batch size distribution is the
		// observable half of the batch-window vs |MOP| trade.
		BatchSize: reg.Hist(name("serve_batch_size"), 256),
	}
}

// SetMetrics installs the instrumentation hooks. Must be called before
// Start.
func (c *Cluster) SetMetrics(m *Metrics) { c.metrics = m }

// SetTracer installs a span tracer (obs.Nop or nil disables tracing).
// Must be called before Start.
func (c *Cluster) SetTracer(t obs.Tracer) {
	c.tracer = t
	c.tracing = !obs.IsNop(t)
	c.causal = nil
	if c.tracing {
		c.causal, _ = t.(obs.CausalTracer)
	}
}

// spanFor resolves the span a send or timer registration belongs to: the
// span being handled on proc's loop right now, falling back to the
// process's pending operation. Only called while tracing, from proc's
// own goroutine.
func (c *Cluster) spanFor(proc sim.ProcID) int64 {
	if s := c.handling[proc]; s >= 0 {
		return s
	}
	return c.tracer.CurrentSpan(int32(proc))
}

type pendingCall struct {
	proc   sim.ProcID
	op     string
	arg    any
	invoke simtime.Time
	done   chan Response
}

// NewCluster builds a real-time cluster. tick is the wall-clock duration
// of one virtual tick; offsets must respect the skew bound ε.
func NewCluster(p Params, tick time.Duration, offsets []simtime.Duration, nodes []sim.Node, seed int64) (*Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != p.N || len(offsets) != p.N {
		return nil, fmt.Errorf("rtnet: need %d nodes and offsets", p.N)
	}
	if err := sim.ValidateOffsets(offsets, p.Epsilon); err != nil {
		return nil, err
	}
	if tick <= 0 {
		return nil, fmt.Errorf("rtnet: tick must be positive")
	}
	depth := p.InboxDepth
	if depth == 0 {
		depth = DefaultInboxDepth
	}
	if depth < 0 {
		return nil, fmt.Errorf("rtnet: inbox depth must be positive, got %d", depth)
	}
	if p.BatchWindow < 0 {
		return nil, fmt.Errorf("rtnet: batch window must be non-negative, got %d", p.BatchWindow)
	}
	if p.BatchWindow > p.U/2 {
		return nil, fmt.Errorf("rtnet: batch window %d exceeds u/2 = %d; coalesced deliveries would leave the admissible [d-u, d] envelope",
			p.BatchWindow, p.U/2)
	}
	c := &Cluster{
		params:       p.Params,
		inboxDepth:   depth,
		batchWindow:  p.BatchWindow,
		overflowProc: -1,
		tick:         tick,
		offsets:      append([]simtime.Duration(nil), offsets...),
		nodes:        nodes,
		inboxes:      make([]chan *event, p.N),
		stopped:      make(chan struct{}),
		sendRngs:     make([]*rand.Rand, p.N),
		handling:     make([]int64, p.N),
		crashed:      make([]atomic.Bool, p.N),
		crashCh:      make([]chan struct{}, p.N),
		pending:      map[int64]*pendingCall{},
		timers:       map[sim.TimerID]procTimer{},
	}
	for i := range c.inboxes {
		c.handling[i] = -1
		c.inboxes[i] = make(chan *event, depth)
		c.sendRngs[i] = rand.New(rand.NewSource(
			harness.DeriveSeed(seed, fmt.Sprintf("rtnet/send/p%d", i))))
		c.crashCh[i] = make(chan struct{})
	}
	if c.batchWindow > 0 {
		c.batchers = make([][]*batcher, p.N)
		for from := 0; from < p.N; from++ {
			c.batchers[from] = make([]*batcher, p.N)
			for to := 0; to < p.N; to++ {
				if to == from {
					continue
				}
				c.batchers[from][to] = &batcher{rng: rand.New(rand.NewSource(
					harness.DeriveSeed(seed, fmt.Sprintf("rtnet/batch/p%d/p%d", from, to))))}
			}
		}
	}
	return c, nil
}

// batcher accumulates the messages one process sends to one destination
// during an open tick window. The first message arms the flush timer; the
// flush hands the whole accumulated slice to a single delivery timer.
type batcher struct {
	mu       sync.Mutex
	rng      *rand.Rand // flush-delay draws; owned by this batcher, used under mu
	open     bool
	payloads []any
	spans    []int64
	sents    []simtime.Time
}

// batchAdd queues a message on the from→to batcher, arming the window
// flush if this message opened the batch.
func (c *Cluster) batchAdd(from, to sim.ProcID, payload any, span int64, sent simtime.Time) {
	b := c.batchers[from][to]
	b.mu.Lock()
	b.payloads = append(b.payloads, payload)
	b.spans = append(b.spans, span)
	b.sents = append(b.sents, sent)
	if !b.open {
		b.open = true
		time.AfterFunc(time.Duration(c.batchWindow)*c.tick, func() {
			c.flushBatch(from, to, b)
		})
	}
	b.mu.Unlock()
}

// flushBatch closes the window, draws one admissible delay for the whole
// batch from [d-u, d-u/2-w] (see Params.BatchWindow for why that keeps
// every member inside [d-u, d-u/2]), and schedules the single delivery.
func (c *Cluster) flushBatch(from, to sim.ProcID, b *batcher) {
	b.mu.Lock()
	payloads, spans, sents := b.payloads, b.spans, b.sents
	b.payloads, b.spans, b.sents = nil, nil, nil
	b.open = false
	lo := c.params.MinDelay()
	hi := lo + c.params.U/2 - c.batchWindow
	delay := lo
	if hi > lo {
		delay = lo + simtime.Duration(b.rng.Int63n(int64(hi-lo)+1))
	}
	b.mu.Unlock()
	if c.metrics != nil {
		c.metrics.BatchSize.Add(int64(len(payloads)))
	}
	time.AfterFunc(time.Duration(delay)*c.tick, func() {
		ev := getEvent()
		ev.kind = 4
		ev.from = from
		ev.batch = payloads
		ev.batchSpans = spans
		ev.batchSents = sents
		c.post(to, ev)
	})
}

// SetClasses installs the operation classification used to tag responses
// (per-class latency accounting in the serving layer). Unclassified
// operations report Mixed, matching core.Replica's conservative default.
// Must be called before Start.
func (c *Cluster) SetClasses(classes map[string]classify.Class) { c.classes = classes }

// Params returns the cluster's model parameters.
func (c *Cluster) Params() simtime.Params { return c.params }

// InboxDepth returns the per-process inbox capacity.
func (c *Cluster) InboxDepth() int { return c.inboxDepth }

// Offsets returns a copy of the per-process clock offsets.
func (c *Cluster) Offsets() []simtime.Duration {
	return append([]simtime.Duration(nil), c.offsets...)
}

// Tick returns the wall-clock duration of one virtual tick.
func (c *Cluster) Tick() time.Duration { return c.tick }

// UseNetwork overrides the default random per-message delay draw with a
// deterministic sim.Network (e.g. an adversary schedule's
// sim.SequenceNetwork), so the same delay assignments that drive the
// virtual-time simulator can drive the real-time substrate. Delays are
// indexed by global send order, exactly as in sim.Engine. Returned delays
// are clamped to the lower half of [d-u, d] like the default draw: real
// scheduling jitter only adds latency, so sampling low keeps actual
// deliveries within the admissible window. Must be called before Start.
func (c *Cluster) UseNetwork(net sim.Network) { c.delays = net }

// Start launches the node goroutines and starts the cluster clock.
func (c *Cluster) Start() {
	c.start = time.Now()
	for i := range c.nodes {
		proc := sim.ProcID(i)
		c.nodes[i].Init(&rtCtx{c: c, proc: proc})
		c.wg.Add(1)
		go c.loop(proc)
	}
}

// loop is one process's event loop.
func (c *Cluster) loop(proc sim.ProcID) {
	defer c.wg.Done()
	ctx := &rtCtx{c: c, proc: proc}
	for {
		select {
		case <-c.stopped:
			return
		case ev := <-c.inboxes[proc]:
			// A crashed process keeps draining its inbox — in-flight
			// deliveries and timer fires land in a bounded channel, and
			// letting them pile up would eventually blame an
			// InboxOverflowError on a process that is merely dead — but
			// nothing is handled: deliveries are recorded as dropped,
			// timer fires are discarded (Crash already unregistered the
			// entries), and only Inspect still runs so state checks can
			// look at the corpse.
			if c.crashed[proc].Load() && ev.kind != 3 {
				if ev.kind == 1 {
					if c.metrics != nil {
						c.metrics.CrashDrops.Inc()
					}
					if c.tracing {
						c.tracer.Event(ev.span, obs.StageDropped, int32(proc), int64(c.now()))
					}
				}
				if ev.kind == 4 {
					if c.metrics != nil {
						c.metrics.CrashDrops.Add(int64(len(ev.batch)))
					}
					if c.tracing {
						for _, span := range ev.batchSpans {
							c.tracer.Event(span, obs.StageDropped, int32(proc), int64(c.now()))
						}
					}
				}
				putEvent(ev)
				continue
			}
			switch ev.kind {
			case 0:
				if c.tracing {
					c.handling[proc] = ev.inv.SeqID
					if c.causal != nil {
						c.causal.OpStartCtx(int32(proc), ev.inv.SeqID, ev.span, ev.inv.Op, int64(c.now()))
					} else {
						c.tracer.OpStart(int32(proc), ev.inv.SeqID, ev.inv.Op, int64(c.now()))
					}
				}
				c.nodes[proc].OnInvoke(ctx, ev.inv)
			case 1:
				if c.metrics != nil {
					c.metrics.Delivered.Inc()
					c.metrics.MsgLatency.Add(int64(c.now().Sub(ev.sent)))
				}
				if c.tracing {
					c.handling[proc] = ev.span
					if c.causal != nil {
						c.causal.Deliver(ev.span, int32(proc), int64(c.now()), int64(ev.sent), 0)
					} else {
						c.tracer.Event(ev.span, obs.StageDeliver, int32(proc), int64(c.now()))
					}
				}
				c.nodes[proc].OnMessage(ctx, ev.from, ev.payload)
			case 2:
				c.mu.Lock()
				_, live := c.timers[ev.timerID]
				delete(c.timers, ev.timerID)
				c.mu.Unlock()
				if live {
					if c.metrics != nil {
						c.metrics.TimerFires.Inc()
					}
					if c.tracing {
						c.handling[proc] = ev.span
						c.tracer.Event(ev.span, obs.StageTimer, int32(proc), int64(c.now()))
					}
					c.nodes[proc].OnTimer(ctx, ev.tag)
				}
			case 3:
				ev.inspect()
				close(ev.done)
			case 4:
				now := c.now()
				// Batch-window residency: the batch's effective send instant
				// is its last joiner's — earlier members spent (maxSent −
				// sent_i) ticks parked in the window, not in flight.
				var maxSent simtime.Time
				if c.causal != nil {
					for _, s := range ev.batchSents {
						if s > maxSent {
							maxSent = s
						}
					}
				}
				for i, payload := range ev.batch {
					if c.metrics != nil {
						c.metrics.Delivered.Inc()
						c.metrics.MsgLatency.Add(int64(now.Sub(ev.batchSents[i])))
					}
					if c.tracing {
						c.handling[proc] = ev.batchSpans[i]
						if c.causal != nil {
							c.causal.Deliver(ev.batchSpans[i], int32(proc), int64(now),
								int64(ev.batchSents[i]), int64(maxSent.Sub(ev.batchSents[i])))
						} else {
							c.tracer.Event(ev.batchSpans[i], obs.StageDeliver, int32(proc), int64(now))
						}
					}
					c.nodes[proc].OnMessage(ctx, ev.from, payload)
				}
			}
			if c.tracing {
				c.handling[proc] = -1
			}
			putEvent(ev)
		}
	}
}

// fail records the first cluster failure and stops the cluster.
func (c *Cluster) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stopped) })
}

// Err returns the first failure the cluster recorded (an
// *InboxOverflowError), or nil after a clean run or clean stop.
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stop terminates the cluster. Pending invocations never complete.
// Stopping an already-stopped cluster is a no-op.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopped) })
	c.mu.Lock()
	for id, t := range c.timers {
		t.t.Stop()
		delete(c.timers, id)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Crash kills one process mid-run: its registered timers are canceled,
// its pending invocations fail with ErrCrashed, and from the next inbox
// event on it handles nothing (deliveries are drained and recorded as
// dropped, never delivered to the node). The crash lands on an event
// boundary: an event being handled at the moment of the call completes,
// and its sends are already in flight — exactly a process that stopped
// between steps. The rest of the cluster keeps running; whether live
// operations still complete is the backend's crash-tolerance story, not
// the substrate's. Crashing a crashed process is a no-op.
func (c *Cluster) Crash(proc sim.ProcID) {
	c.mu.Lock()
	if c.crashed[proc].Swap(true) {
		c.mu.Unlock()
		return
	}
	for id, t := range c.timers {
		if t.proc == proc {
			t.t.Stop()
			delete(c.timers, id)
		}
	}
	for seqID, call := range c.pending {
		if call.proc == proc {
			delete(c.pending, seqID)
		}
	}
	c.mu.Unlock()
	close(c.crashCh[proc])
	if c.metrics != nil {
		c.metrics.Crashes.Inc()
	}
}

// Crashed reports whether a process has been crashed.
func (c *Cluster) Crashed(proc sim.ProcID) bool { return c.crashed[proc].Load() }

// Pending returns the number of invocations that have not yet responded.
func (c *Cluster) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Drain waits until every pending invocation has responded, then stops
// the cluster: node goroutines exit and remaining timers are canceled, in
// that order. Callers must stop submitting new invocations first — an
// invocation submitted during a drain is still served and merely extends
// the wait. If the cluster fails mid-drain (inbox overflow) the failure
// is returned immediately; if the pending set has not emptied by the
// timeout, the cluster is stopped anyway (abandoning the stragglers) and
// an error is returned.
func (c *Cluster) Drain(timeout time.Duration) error {
	poll := c.tick
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for c.Pending() > 0 {
		if err := c.Err(); err != nil {
			c.Stop()
			return err
		}
		if time.Now().After(deadline) {
			n := c.Pending()
			c.Stop()
			return fmt.Errorf("rtnet: drain timed out with %d operations pending", n)
		}
		time.Sleep(poll)
	}
	c.Stop()
	if err := c.Err(); err != nil {
		return err
	}
	return nil
}

// timerCount returns the number of registered timers that have neither
// fired nor been canceled; the map must drain as timers fire.
func (c *Cluster) timerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// now returns the elapsed virtual time since Start.
func (c *Cluster) now() simtime.Time {
	return simtime.Time(time.Since(c.start) / c.tick)
}

// Invoke submits an operation at a process and returns a channel carrying
// its response. The caller must respect the one-pending-op-per-process
// rule of the model. A non-nil error means the invocation was not
// submitted: the cluster has stopped (ErrStopped) or failed.
func (c *Cluster) Invoke(proc sim.ProcID, op string, arg any) (<-chan Response, error) {
	return c.InvokeTraced(proc, op, arg, -1)
}

// InvokeTraced is Invoke carrying a causal parent span: the client-side
// span (propagated over the wire protocols) the new operation's root
// span should point back to. Ignored unless the installed tracer is an
// obs.CausalTracer; pass -1 for a local root.
func (c *Cluster) InvokeTraced(proc sim.ProcID, op string, arg any, parent int64) (<-chan Response, error) {
	done := make(chan Response, 1)
	c.mu.Lock()
	// Checked under mu so a concurrent Crash either sees this entry in
	// its pending sweep or this invoke sees the flag — never a pending
	// entry that outlives the crash and wedges Drain.
	if c.crashed[proc].Load() {
		c.mu.Unlock()
		return nil, ErrCrashed
	}
	seqID := c.seq
	c.seq++
	c.pending[seqID] = &pendingCall{proc: proc, op: op, arg: arg, invoke: c.now(), done: done}
	c.mu.Unlock()
	ev := getEvent()
	ev.kind = 0
	ev.inv = sim.Invocation{SeqID: seqID, Op: op, Arg: arg}
	ev.span = parent // kind-0 events carry the causal parent in span
	if err := c.post(proc, ev); err != nil {
		c.mu.Lock()
		delete(c.pending, seqID)
		c.mu.Unlock()
		return nil, err
	}
	return done, nil
}

// Call invokes and waits for the response. It returns the cluster's
// recorded failure (or ErrStopped) if the cluster stops before the
// response arrives.
func (c *Cluster) Call(proc sim.ProcID, op string, arg any) (Response, error) {
	return c.CallTraced(proc, op, arg, -1)
}

// CallTraced is Call carrying a causal parent span (see InvokeTraced).
func (c *Cluster) CallTraced(proc sim.ProcID, op string, arg any, parent int64) (Response, error) {
	ch, err := c.InvokeTraced(proc, op, arg, parent)
	if err != nil {
		return Response{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-c.crashCh[proc]:
		// The response may have raced with the crash.
		select {
		case resp := <-ch:
			return resp, nil
		default:
		}
		return Response{}, ErrCrashed
	case <-c.stopped:
		// The response may have raced with the stop.
		select {
		case resp := <-ch:
			return resp, nil
		default:
		}
		if err := c.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, ErrStopped
	}
}

// Inspect runs f inside the process's event loop and waits for it,
// establishing the happens-before edge needed to read node state safely
// (e.g. replica fingerprints for convergence checks).
func (c *Cluster) Inspect(proc sim.ProcID, f func()) {
	done := make(chan struct{})
	ev := getEvent()
	ev.kind = 3
	ev.inspect = f
	ev.done = done
	if c.post(proc, ev) != nil {
		return
	}
	select {
	case <-done:
	case <-c.stopped:
	}
}

// post delivers an event to a process inbox without ever blocking: the
// posting side includes timer goroutines whose stall would corrupt every
// in-flight delay. A full inbox is recorded as a sticky cluster failure
// (InboxOverflowError) and stops the cluster; posts after a stop return
// ErrStopped. In both failure cases the event is recycled, not delivered.
func (c *Cluster) post(proc sim.ProcID, ev *event) error {
	select {
	case c.inboxes[proc] <- ev:
		if c.metrics != nil {
			c.metrics.InboxMax.Observe(int64(len(c.inboxes[proc])))
		}
		return nil
	default:
	}
	putEvent(ev)
	select {
	case <-c.stopped:
		return ErrStopped
	default:
	}
	c.mu.Lock()
	c.overflows++
	c.overflowProc = int32(proc)
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.Overflows.Inc()
	}
	err := &InboxOverflowError{Proc: proc, Depth: c.inboxDepth}
	c.fail(err)
	return err
}

// Overflows returns how many inbox overflows the cluster has recorded.
// Any value above zero means the cluster failed (the first overflow is
// sticky), but posts racing with the failure may each count one.
func (c *Cluster) Overflows() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overflows
}

// LastOverflowProc returns the process whose inbox overflowed most
// recently, or -1 if no overflow has occurred.
func (c *Cluster) LastOverflowProc() int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overflowProc
}

// InboxLen returns the instantaneous depth of a process's inbox — the
// live per-process gauge the serving layer exports.
func (c *Cluster) InboxLen(proc sim.ProcID) int { return len(c.inboxes[proc]) }

// rtCtx implements sim.Context over the real-time substrate.
type rtCtx struct {
	c    *Cluster
	proc sim.ProcID
}

func (x *rtCtx) ID() sim.ProcID    { return x.proc }
func (x *rtCtx) N() int            { return len(x.c.nodes) }
func (x *rtCtx) Now() simtime.Time { return x.c.now() }
func (x *rtCtx) LocalTime() simtime.Time {
	return x.c.now().Add(x.c.offsets[x.proc])
}

func (x *rtCtx) SetTimer(after simtime.Duration, tag any) sim.TimerID {
	if after < 0 {
		panic(fmt.Sprintf("rtnet: negative timer %v", after))
	}
	proc := x.proc
	// Allocate the id and register the timer in one critical section:
	// a short timer can fire and have its event consumed before SetTimer
	// returns, and the event loop treats an unregistered id as canceled —
	// registering after arming both dropped the firing and leaked the
	// entry, since the fire-side delete had already run.
	span := int64(-1)
	if x.c.tracing {
		// The registering process is handling an event right now; the
		// timer belongs to that event's span (falling back to the
		// process's pending operation).
		span = x.c.spanFor(proc)
	}
	x.c.mu.Lock()
	x.c.timerID++
	id := x.c.timerID
	// A handler can race with Crash: it was already running when the
	// crash landed, and registering its timer now would leak an entry no
	// fire or sweep will ever delete. Hand back a fresh id that was never
	// armed — canceling it is a no-op, exactly like a timer that already
	// fired.
	if x.c.crashed[proc].Load() {
		x.c.mu.Unlock()
		return id
	}
	x.c.timers[id] = procTimer{proc: proc, t: time.AfterFunc(time.Duration(after)*x.c.tick, func() {
		ev := getEvent()
		ev.kind = 2
		ev.timerID = id
		ev.tag = tag
		ev.span = span
		x.c.post(proc, ev)
	})}
	x.c.mu.Unlock()
	return id
}

func (x *rtCtx) SetTimerAtLocal(localTime simtime.Time, tag any) sim.TimerID {
	delta := localTime.Sub(x.LocalTime())
	if delta < 0 {
		delta = 0
	}
	return x.SetTimer(delta, tag)
}

func (x *rtCtx) CancelTimer(id sim.TimerID) {
	x.c.mu.Lock()
	if t, ok := x.c.timers[id]; ok {
		t.t.Stop()
		delete(x.c.timers, id)
	}
	x.c.mu.Unlock()
}

func (x *rtCtx) Send(to sim.ProcID, payload any) {
	if to == x.proc {
		panic("rtnet: self-send")
	}
	// Draw a delay from the *lower half* of [d-u, d]: real scheduling
	// jitter only adds latency, so sampling low keeps actual deliveries
	// within the admissible window.
	// With coalescing on (and no deterministic replay network installed),
	// the message joins the open from→to batch instead of getting its own
	// delay draw and timer; the batcher's flush draw keeps it inside the
	// same admissible envelope.
	if x.c.batchWindow > 0 && x.c.delays == nil {
		from := x.proc
		sent := x.c.now()
		span := int64(-1)
		if x.c.tracing {
			span = x.c.spanFor(from)
			x.c.tracer.Event(span, obs.StageBroadcast, int32(from), int64(sent))
		}
		x.c.batchAdd(from, to, payload, span, sent)
		return
	}
	lo := x.c.params.MinDelay()
	hi := lo + x.c.params.U/2
	var delay simtime.Duration
	if x.c.delays != nil {
		// Rule networks are indexed by global send order, so the index
		// counter stays shared (and locked) across processes.
		x.c.mu.Lock()
		idx := x.c.msgIdx
		x.c.msgIdx++
		delay = x.c.delays.Delay(x.proc, to, x.c.now(), idx)
		x.c.mu.Unlock()
		if delay < lo {
			delay = lo
		}
		if delay > hi {
			delay = hi
		}
	} else {
		// Per-process stream, confined to this process's event-loop
		// goroutine (see the sendRngs field comment): no lock, and the
		// draws a process sees do not depend on the other processes'
		// scheduling.
		delay = lo + simtime.Duration(x.c.sendRngs[x.proc].Int63n(int64(hi-lo)+1))
	}
	from := x.proc
	sent := x.c.now()
	span := int64(-1)
	if x.c.tracing {
		span = x.c.spanFor(from)
		x.c.tracer.Event(span, obs.StageBroadcast, int32(from), int64(sent))
	}
	time.AfterFunc(time.Duration(delay)*x.c.tick, func() {
		ev := getEvent()
		ev.kind = 1
		ev.from = from
		ev.payload = payload
		ev.span = span
		ev.sent = sent
		x.c.post(to, ev)
	})
}

func (x *rtCtx) Broadcast(payload any) {
	for p := 0; p < x.N(); p++ {
		if sim.ProcID(p) != x.proc {
			x.Send(sim.ProcID(p), payload)
		}
	}
}

// Tracer exposes the cluster's installed tracer (obs.Nop when tracing is
// off), for algorithms that record protocol-phase child spans.
func (x *rtCtx) Tracer() obs.Tracer {
	if x.c.tracer == nil {
		return obs.Nop
	}
	return x.c.tracer
}

func (x *rtCtx) Respond(seqID int64, ret any) {
	x.c.mu.Lock()
	call, ok := x.c.pending[seqID]
	delete(x.c.pending, seqID)
	now := x.c.now()
	x.c.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("rtnet: response for unknown op %d", seqID))
	}
	if x.c.tracing {
		x.c.tracer.OpEnd(int32(call.proc), seqID, int64(now))
	}
	class := classify.Mixed
	if c, found := x.c.classes[call.op]; found {
		class = c
	}
	call.done <- Response{Proc: call.proc, Seq: seqID, Op: call.op, Arg: call.arg,
		Ret: ret, Class: class, Invoke: call.invoke, Respond: now}
}
