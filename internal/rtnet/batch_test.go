package rtnet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/obs"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// TestBatchWindowValidation pins the admissibility precondition: a batch
// window above u/2 cannot keep coalesced deliveries inside [d-u, d] (the
// flush draw range [d-u, d-u/2-w] would be empty), so NewCluster must
// refuse it rather than silently violate the model.
func TestBatchWindowValidation(t *testing.T) {
	p := rtParams(2) // u = 20
	nodes := []sim.Node{blockNode{}, blockNode{}}
	cases := []struct {
		window simtime.Duration
		ok     bool
	}{
		{window: 0, ok: true},
		{window: 1, ok: true},
		{window: 10, ok: true}, // exactly u/2
		{window: 11, ok: false},
		{window: -1, ok: false},
	}
	for _, tc := range cases {
		c, err := NewCluster(Params{Params: p, BatchWindow: tc.window}, tick, sim.ZeroOffsets(2), nodes, 7)
		if tc.ok && err != nil {
			t.Errorf("window %d: unexpected error %v", tc.window, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("window %d: accepted, want error", tc.window)
		}
		if !tc.ok && err != nil && tc.window > 0 && !strings.Contains(err.Error(), "batch window") {
			t.Errorf("window %d: error %q does not mention the batch window", tc.window, err)
		}
		_ = c
	}
}

// fanNode broadcasts a fixed burst of messages on every invocation and
// responds immediately; receivers record each delivery's virtual time.
type fanNode struct {
	burst int

	mu       sync.Mutex
	arrivals []simtime.Time
}

func (f *fanNode) Init(sim.Context) {}
func (f *fanNode) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	for i := 0; i < f.burst; i++ {
		ctx.Broadcast(i)
	}
	ctx.Respond(inv.SeqID, nil)
}
func (f *fanNode) OnMessage(ctx sim.Context, _ sim.ProcID, _ any) {
	f.mu.Lock()
	f.arrivals = append(f.arrivals, ctx.Now())
	f.mu.Unlock()
}
func (f *fanNode) OnTimer(sim.Context, any) {}

// TestBatchCoalescesBurst drives a burst of broadcasts through a batched
// cluster and checks the three observable contracts at once: every
// message is still delivered exactly once, the burst shares delivery
// events (batch sizes > 1 land in the serve_batch_size histogram), and
// each message's measured delay stays inside the admissible [d-u, d]
// envelope despite the added window wait.
func TestBatchCoalescesBurst(t *testing.T) {
	p := rtParams(2)
	const burst = 8
	sender := &fanNode{burst: burst}
	receiver := &fanNode{burst: burst}
	c, err := NewCluster(Params{Params: p, BatchWindow: p.U / 2}, tick,
		sim.ZeroOffsets(2), []sim.Node{sender, receiver}, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := NewMetrics(reg, c.Params())
	c.SetMetrics(m)
	c.Start()
	defer c.Stop()

	mustCall(t, c, 0, "fan", nil)
	// The burst is in one open batch; it must be delivered once the
	// window (u/2) plus the largest admissible flush delay (d-u) passes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		receiver.mu.Lock()
		got := len(receiver.arrivals)
		receiver.mu.Unlock()
		if got == burst {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("receiver got %d of %d messages", got, burst)
		}
		time.Sleep(time.Millisecond)
	}

	if got := m.Delivered.Value(); got != burst {
		t.Errorf("delivered = %d, want %d", got, burst)
	}
	if got := m.BatchSize.Count(); got >= burst {
		t.Errorf("flushed %d batches for %d messages, want coalescing (< %d)", got, burst, burst)
	}
	if got := m.BatchSize.Max(); got < 2 {
		t.Errorf("max batch size = %d, want >= 2", got)
	}
	if got := m.BatchSize.Sum(); got != burst {
		t.Errorf("batched message total = %d, want %d", got, burst)
	}
	// Per-message delays are measured from each message's own send time:
	// the batch wait must not push any delivery outside the envelope.
	// Scheduling jitter only adds latency, so allow slack above d but
	// none below d-u.
	lo, hi := int64(p.MinDelay()), int64(p.D)
	if got := int64(m.MsgLatency.Min()); got < lo {
		t.Errorf("min message delay %d ticks below admissible floor %d", got, lo)
	}
	// 8 ticks of slack mirrors serve.JitterBudget's floor at this tick.
	if got := int64(m.MsgLatency.Max()); got > hi+8 {
		t.Errorf("max message delay %d ticks above admissible ceiling %d (+jitter)", got, hi)
	}
}

// TestBatchedQueueStillLinearizable runs the real Algorithm 1 queue on a
// batched substrate and holds it to the exact same contracts as the
// unbatched cluster: results linearize and per-class latencies stay at
// their formula values (coalescing moves messages, not the local timers
// that drive responses).
func TestBatchedQueueStillLinearizable(t *testing.T) {
	const n = 3
	p := rtParams(n)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = core.NewReplica(dt, classes, core.DefaultTimers(p))
	}
	c, err := NewCluster(Params{Params: p, BatchWindow: 1}, tick,
		sim.SpreadOffsets(n, p.Epsilon), nodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	c.SetClasses(classes)
	c.Start()
	defer c.Stop()

	var recorded []lincheck.Op
	record := func(r Response) {
		recorded = append(recorded, lincheck.Op{
			ID: int(r.Seq), Name: r.Op, Arg: r.Arg, Ret: r.Ret,
			Invoke: r.Invoke, Respond: r.Respond,
		})
	}
	record(mustCall(t, c, 0, adt.OpEnqueue, 1))
	record(mustCall(t, c, 1, adt.OpEnqueue, 2))
	if r := mustCall(t, c, 2, adt.OpDequeue, nil); !spec.ValuesEqual(r.Ret, 1) {
		t.Errorf("dequeue returned %v, want 1", r.Ret)
	} else {
		record(r)
	}
	if r := mustCall(t, c, 0, adt.OpPeek, nil); !spec.ValuesEqual(r.Ret, 2) {
		t.Errorf("peek returned %v, want 2", r.Ret)
	} else {
		record(r)
	}
	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !lincheck.Check(dt, recorded).Linearizable {
		t.Errorf("batched history not linearizable: %+v", recorded)
	}
}

// TestBatchResidencyTraced drives staggered single broadcasts through a
// coalescing cluster with the causal collector installed: messages that
// join an already-open batch waited in the sender's window, and that
// wait must surface as a positive Residency (with the send tick) on the
// delivery waypoint — the raw material of the batch_residency
// attribution term.
func TestBatchResidencyTraced(t *testing.T) {
	p := rtParams(2)
	sender := &fanNode{burst: 1}
	receiver := &fanNode{burst: 1}
	c, err := NewCluster(Params{Params: p, BatchWindow: p.U / 2}, tick,
		sim.ZeroOffsets(2), []sim.Node{sender, receiver}, 7)
	if err != nil {
		t.Fatal(err)
	}
	coll := obs.NewCollector(64)
	c.SetTracer(coll)
	c.Start()
	defer c.Stop()

	// Stagger sends inside the u/2-tick window so later broadcasts join
	// the batch the first one opened at a different send tick.
	for i := 0; i < 8; i++ {
		mustCall(t, c, 0, "fan", nil)
		time.Sleep(2 * tick)
	}
	// The batch flushes w ticks after it opened and delivers another
	// [d-u, d-u/2-w] later; poll until the resident deliveries land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resident := 0
		for _, tr := range coll.Trees() {
			for _, ev := range tr.Events {
				if ev.Stage == obs.StageDeliver && ev.Residency > 0 {
					if ev.Sent == 0 && ev.Time == 0 {
						t.Fatalf("resident delivery lost its timeline: %+v", ev)
					}
					resident++
				}
			}
		}
		if resident > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no delivery recorded positive batch-window residency")
		}
		time.Sleep(time.Millisecond)
	}
}
