package rtnet

import (
	"errors"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/obs"
	"lintime/internal/quorum"
	"lintime/internal/sim"
	"lintime/internal/spec"
)

// newQuorumCluster builds an rtnet cluster running the ABD quorum
// register — the backend whose whole point is surviving the crashes this
// file injects.
func newQuorumCluster(t *testing.T, n int, depth int) *Cluster {
	t.Helper()
	p := rtParams(n)
	p.Epsilon, p.X = 0, 0 // the quorum protocol reads no clocks
	dt := adt.NewRegister(0)
	nodes, err := harness.QuorumNodes(p, dt, quorum.DefaultConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Params{Params: p, InboxDepth: depth}, tick, sim.ZeroOffsets(n), nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCrashQuorumMajorityKeepsServing is the end-to-end story: crash a
// minority of an ABD cluster mid-run and the survivors keep completing
// reads and writes against the remaining majority, while the crashed
// process itself refuses invocations with ErrCrashed.
func TestCrashQuorumMajorityKeepsServing(t *testing.T) {
	reg := obs.NewRegistry()
	c := newQuorumCluster(t, 3, 0)
	m := NewMetrics(reg, c.Params())
	c.SetMetrics(m)
	c.Start()
	defer c.Stop()

	if r := mustCall(t, c, 0, quorum.OpWrite, 7); r.Ret != nil {
		t.Errorf("write returned %v", r.Ret)
	}
	c.Crash(2)
	if !c.Crashed(2) {
		t.Fatal("Crashed(2) = false after Crash")
	}
	if got := m.Crashes.Value(); got != 1 {
		t.Errorf("crashes_injected = %d, want 1", got)
	}
	if _, err := c.Call(2, quorum.OpRead, nil); !errors.Is(err, ErrCrashed) {
		t.Errorf("Call at crashed process returned %v, want ErrCrashed", err)
	}
	if _, err := c.Invoke(2, quorum.OpRead, nil); !errors.Is(err, ErrCrashed) {
		t.Errorf("Invoke at crashed process returned %v, want ErrCrashed", err)
	}
	// The two survivors are a majority: both phases still reach quorum.
	if r := mustCall(t, c, 0, quorum.OpRead, nil); !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("post-crash read at p0 returned %v, want 7", r.Ret)
	}
	if r := mustCall(t, c, 1, quorum.OpWrite, 9); r.Ret != nil {
		t.Errorf("post-crash write returned %v", r.Ret)
	}
	if r := mustCall(t, c, 1, quorum.OpRead, nil); !spec.ValuesEqual(r.Ret, 9) {
		t.Errorf("post-crash read at p1 returned %v, want 9", r.Ret)
	}
	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain after crash: %v", err)
	}
	if c.Err() != nil {
		t.Fatalf("cluster recorded failure: %v", c.Err())
	}
}

// TestCrashedInboxDrainsWithoutOverflow is the misattribution
// regression: a crashed process's inbox keeps receiving quorum traffic
// (live writers broadcast to every replica, dead or not), and with a
// tiny inbox those deliveries would overflow and fail the whole cluster
// with an InboxOverflowError blamed on a process that is merely dead.
// The crashed loop must drain them instead, recording each as a dropped
// delivery in metrics and trace.
func TestCrashedInboxDrainsWithoutOverflow(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewRing(4096)
	c := newQuorumCluster(t, 3, 2)
	m := NewMetrics(reg, c.Params())
	c.SetMetrics(m)
	c.SetTracer(ring)
	c.Start()
	defer c.Stop()

	c.Crash(2)
	// Each write broadcasts two phases to both peers: 16 writes push 32
	// deliveries through p2's depth-2 inbox.
	for i := 0; i < 16; i++ {
		if _, err := c.Call(0, quorum.OpWrite, i); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster failed: %v (the overflow is misattributed to the crashed process)", err)
	}
	if got := c.Overflows(); got != 0 {
		t.Errorf("Overflows() = %d, want 0", got)
	}
	if got := m.CrashDrops.Value(); got < 32 {
		t.Errorf("post-crash drops = %d, want >= 32", got)
	}
	dropped := 0
	for _, ev := range ring.Events() {
		if ev.Stage == obs.StageDropped {
			dropped++
			if ev.Proc != 2 {
				t.Errorf("dropped delivery attributed to p%d, want p2", ev.Proc)
			}
		}
	}
	if dropped < 32 {
		t.Errorf("trace recorded %d dropped deliveries, want >= 32", dropped)
	}
}

// slowTimerNode registers one far-future timer per invocation and
// responds immediately; it never sends, so every registered timer stays
// live until canceled.
type slowTimerNode struct{}

func (slowTimerNode) Init(sim.Context) {}
func (slowTimerNode) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	ctx.SetTimer(1<<20, nil)
	ctx.Respond(inv.SeqID, nil)
}
func (slowTimerNode) OnMessage(sim.Context, sim.ProcID, any) {}
func (slowTimerNode) OnTimer(sim.Context, any)               {}

// TestCrashCancelsTimers is the timer-leak regression: timers are
// attributed to their registering process, Crash cancels exactly that
// process's entries, and a handler racing with the crash cannot
// re-register one.
func TestCrashCancelsTimers(t *testing.T) {
	p := rtParams(2)
	nodes := []sim.Node{slowTimerNode{}, slowTimerNode{}}
	c, err := NewCluster(Params{Params: p}, tick, sim.ZeroOffsets(2), nodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	mustCall(t, c, 0, "noop", nil)
	mustCall(t, c, 1, "noop", nil)
	if got := c.timerCount(); got != 2 {
		t.Fatalf("timerCount = %d before crash, want 2", got)
	}
	c.Crash(1)
	if got := c.timerCount(); got != 1 {
		t.Errorf("timerCount = %d after crashing p1, want 1 (p0's timer must survive)", got)
	}
	// A handler that was mid-flight when the crash landed would call
	// SetTimer on the crashed process; the registration must be refused,
	// not leaked.
	x := &rtCtx{c: c, proc: 1}
	id := x.SetTimer(1<<20, nil)
	if got := c.timerCount(); got != 1 {
		t.Errorf("timerCount = %d after post-crash SetTimer, want 1 (registration must be refused)", got)
	}
	x.CancelTimer(id) // canceling the unarmed id is a no-op
	if got := c.timerCount(); got != 1 {
		t.Errorf("timerCount = %d after canceling unarmed id, want 1", got)
	}
}

// blockNode accepts invocations and never responds.
type blockNode struct{}

func (blockNode) Init(sim.Context)                       {}
func (blockNode) OnInvoke(sim.Context, sim.Invocation)   {}
func (blockNode) OnMessage(sim.Context, sim.ProcID, any) {}
func (blockNode) OnTimer(sim.Context, any)               {}

// TestCrashFailsPendingCall pins the unblocking contract: a Call waiting
// on an operation at the crashed process returns ErrCrashed instead of
// hanging, the pending set empties so Drain returns promptly, and the
// rest of the cluster is unaffected.
func TestCrashFailsPendingCall(t *testing.T) {
	p := rtParams(2)
	nodes := []sim.Node{blockNode{}, blockNode{}}
	c, err := NewCluster(Params{Params: p}, tick, sim.ZeroOffsets(2), nodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(1, "stuck", nil)
		errc <- err
	}()
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Crash(1)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCrashed) {
			t.Errorf("blocked Call returned %v, want ErrCrashed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Call did not return after Crash")
	}
	if got := c.Pending(); got != 0 {
		t.Errorf("Pending() = %d after crash, want 0", got)
	}
	if err := c.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
