package rtnet

import (
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// rtParams keeps the virtual magnitudes small so wall-clock runs stay
// short: d = 40 ticks at 1ms/tick → 40ms message delays.
func rtParams(n int) simtime.Params {
	u := simtime.Duration(20)
	return simtime.Params{N: n, D: 40, U: u, Epsilon: simtime.OptimalEpsilon(n, u), X: 10}
}

const tick = time.Millisecond

func newQueueCluster(t *testing.T, n int) (*Cluster, []*core.Replica) {
	t.Helper()
	p := rtParams(n)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	replicas := make([]*core.Replica, n)
	nodes := make([]sim.Node, n)
	for i := range nodes {
		replicas[i] = core.NewReplica(dt, classes, core.DefaultTimers(p))
		nodes[i] = replicas[i]
	}
	c, err := NewCluster(p, tick, sim.SpreadOffsets(n, p.Epsilon), nodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	return c, replicas
}

func TestRealTimeQueueBasics(t *testing.T) {
	c, replicas := newQueueCluster(t, 3)
	c.Start()
	defer c.Stop()

	if r := c.Call(0, adt.OpEnqueue, 7); r.Ret != nil {
		t.Errorf("enqueue returned %v", r.Ret)
	}
	if r := c.Call(1, adt.OpEnqueue, 8); r.Ret != nil {
		t.Errorf("enqueue returned %v", r.Ret)
	}
	// Allow replication to settle, then observe from a third process.
	time.Sleep(5 * time.Duration(rtParams(3).D) * tick)
	if r := c.Call(2, adt.OpPeek, nil); !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("peek returned %v, want 7", r.Ret)
	}
	if r := c.Call(2, adt.OpDequeue, nil); !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("dequeue returned %v, want 7", r.Ret)
	}
	time.Sleep(5 * time.Duration(rtParams(3).D) * tick)
	fps := make([]string, len(replicas))
	for i, rep := range replicas {
		i, rep := i, rep
		c.Inspect(sim.ProcID(i), func() { fps[i] = rep.StateFingerprint() })
	}
	for i := range fps {
		if fps[i] != fps[0] {
			t.Errorf("replica %d diverged: %q vs %q", i, fps[i], fps[0])
		}
	}
}

func TestRealTimeLatencyApproximatesTheory(t *testing.T) {
	p := rtParams(3)
	c, _ := newQueueCluster(t, 3)
	c.Start()
	defer c.Stop()

	// Pure mutator: X+ε ticks, plus scheduling jitter.
	r := c.Call(0, adt.OpEnqueue, 1)
	want := p.X + p.Epsilon
	if r.Latency() < want || r.Latency() > want+want/2+10 {
		t.Errorf("enqueue latency %v ticks, want ≈ %v", r.Latency(), want)
	}
	// Pure accessor: d-X+ε ticks.
	r = c.Call(1, adt.OpPeek, nil)
	want = p.D - p.X + p.Epsilon
	if r.Latency() < want || r.Latency() > want+want/2+10 {
		t.Errorf("peek latency %v ticks, want ≈ %v", r.Latency(), want)
	}
}

func TestRealTimeConcurrentHistoryLinearizable(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	c.Start()
	defer c.Stop()

	// Three processes run small concurrent workloads; the collected
	// wall-clock history must be linearizable.
	type rec struct {
		proc sim.ProcID
		resp Response
	}
	results := make(chan rec, 32)
	scripts := [][]struct {
		op  string
		arg any
	}{
		{{adt.OpEnqueue, 1}, {adt.OpPeek, nil}, {adt.OpDequeue, nil}},
		{{adt.OpEnqueue, 2}, {adt.OpDequeue, nil}, {adt.OpPeek, nil}},
		{{adt.OpPeek, nil}, {adt.OpEnqueue, 3}, {adt.OpPeek, nil}},
	}
	donech := make(chan struct{})
	for proc, script := range scripts {
		proc, script := sim.ProcID(proc), script
		go func() {
			for _, s := range script {
				results <- rec{proc, c.Call(proc, s.op, s.arg)}
			}
			donech <- struct{}{}
		}()
	}
	for range scripts {
		<-donech
	}
	close(results)

	dt, _ := adt.Lookup("queue")
	var history []lincheck.Op
	id := 0
	for r := range results {
		history = append(history, lincheck.Op{
			ID:      id,
			Name:    r.resp.Op,
			Arg:     r.resp.Arg,
			Ret:     r.resp.Ret,
			Invoke:  r.resp.Invoke,
			Respond: r.resp.Respond,
		})
		id++
	}
	if len(history) != 9 {
		t.Fatalf("collected %d responses, want 9", len(history))
	}
	if !lincheck.Check(dt, history).Linearizable {
		t.Errorf("real-time history not linearizable: %+v", history)
	}
}

func TestRealTimeValidation(t *testing.T) {
	p := rtParams(2)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	nodes := core.NewReplicas(2, dt, classes, core.DefaultTimers(p))
	if _, err := NewCluster(p, 0, sim.ZeroOffsets(2), nodes, 1); err == nil {
		t.Error("zero tick should error")
	}
	if _, err := NewCluster(p, tick, sim.ZeroOffsets(3), nodes, 1); err == nil {
		t.Error("offsets length mismatch should error")
	}
	bad := p
	bad.U = p.D + 1
	if _, err := NewCluster(bad, tick, sim.ZeroOffsets(2), nodes, 1); err == nil {
		t.Error("invalid params should error")
	}
}

func TestRealTimeStopTerminates(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	c.Start()
	c.Call(0, adt.OpEnqueue, 5)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
}

// TestRealTimeUseNetwork drives the cluster's delays from a deterministic
// sim.Network instead of the random draw: the run must complete with the
// replicas converged, and out-of-range rule values must be clamped into
// the lower half of [d-u, d] (the band the default draw uses, chosen so
// scheduling jitter cannot push deliveries past d).
func TestRealTimeUseNetwork(t *testing.T) {
	p := rtParams(3)
	c, replicas := newQueueCluster(t, 3)
	// Rule asks for delays far outside the admissible window on both
	// sides; the cluster must clamp to [d-u, d-u/2].
	c.UseNetwork(sim.SequenceNetwork{
		Delays:  []simtime.Duration{0, 1 << 40, p.MinDelay(), p.MinDelay() + p.U/2},
		Default: p.MinDelay(),
	})
	c.Start()
	defer c.Stop()

	if r := c.Call(0, adt.OpEnqueue, 5); r.Ret != nil {
		t.Errorf("enqueue returned %v", r.Ret)
	}
	time.Sleep(5 * time.Duration(p.D) * tick)
	if r := c.Call(1, adt.OpPeek, nil); !spec.ValuesEqual(r.Ret, 5) {
		t.Errorf("peek returned %v, want 5", r.Ret)
	}
	time.Sleep(5 * time.Duration(p.D) * tick)
	fps := make([]string, len(replicas))
	for i, rep := range replicas {
		i, rep := i, rep
		c.Inspect(sim.ProcID(i), func() { fps[i] = rep.StateFingerprint() })
	}
	for i := range fps {
		if fps[i] != fps[0] {
			t.Errorf("replica %d diverged: %q vs %q", i, fps[i], fps[0])
		}
	}
}
