package rtnet

import (
	"errors"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// rtParams keeps the virtual magnitudes small so wall-clock runs stay
// short: d = 40 ticks at 1ms/tick → 40ms message delays.
func rtParams(n int) simtime.Params {
	u := simtime.Duration(20)
	return simtime.Params{N: n, D: 40, U: u, Epsilon: simtime.OptimalEpsilon(n, u), X: 10}
}

const tick = time.Millisecond

// mustCall invokes and waits, failing the test on a cluster error.
func mustCall(t *testing.T, c *Cluster, proc sim.ProcID, op string, arg any) Response {
	t.Helper()
	r, err := c.Call(proc, op, arg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newQueueCluster(t *testing.T, n int) (*Cluster, []*core.Replica) {
	t.Helper()
	p := rtParams(n)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	replicas := make([]*core.Replica, n)
	nodes := make([]sim.Node, n)
	for i := range nodes {
		replicas[i] = core.NewReplica(dt, classes, core.DefaultTimers(p))
		nodes[i] = replicas[i]
	}
	c, err := NewCluster(Params{Params: p}, tick, sim.SpreadOffsets(n, p.Epsilon), nodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	return c, replicas
}

func TestRealTimeQueueBasics(t *testing.T) {
	c, replicas := newQueueCluster(t, 3)
	c.Start()
	defer c.Stop()

	if r := mustCall(t, c, 0, adt.OpEnqueue, 7); r.Ret != nil {
		t.Errorf("enqueue returned %v", r.Ret)
	}
	if r := mustCall(t, c, 1, adt.OpEnqueue, 8); r.Ret != nil {
		t.Errorf("enqueue returned %v", r.Ret)
	}
	// Allow replication to settle, then observe from a third process.
	time.Sleep(5 * time.Duration(rtParams(3).D) * tick)
	if r := mustCall(t, c, 2, adt.OpPeek, nil); !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("peek returned %v, want 7", r.Ret)
	}
	if r := mustCall(t, c, 2, adt.OpDequeue, nil); !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("dequeue returned %v, want 7", r.Ret)
	}
	time.Sleep(5 * time.Duration(rtParams(3).D) * tick)
	fps := make([]string, len(replicas))
	for i, rep := range replicas {
		i, rep := i, rep
		c.Inspect(sim.ProcID(i), func() { fps[i] = rep.StateFingerprint() })
	}
	for i := range fps {
		if fps[i] != fps[0] {
			t.Errorf("replica %d diverged: %q vs %q", i, fps[i], fps[0])
		}
	}
}

func TestRealTimeLatencyApproximatesTheory(t *testing.T) {
	p := rtParams(3)
	c, _ := newQueueCluster(t, 3)
	c.Start()
	defer c.Stop()

	// Pure mutator: X+ε ticks, plus scheduling jitter.
	r := mustCall(t, c, 0, adt.OpEnqueue, 1)
	want := p.X + p.Epsilon
	if r.Latency() < want || r.Latency() > want+want/2+10 {
		t.Errorf("enqueue latency %v ticks, want ≈ %v", r.Latency(), want)
	}
	// Pure accessor: d-X+ε ticks.
	r = mustCall(t, c, 1, adt.OpPeek, nil)
	want = p.D - p.X + p.Epsilon
	if r.Latency() < want || r.Latency() > want+want/2+10 {
		t.Errorf("peek latency %v ticks, want ≈ %v", r.Latency(), want)
	}
}

func TestRealTimeConcurrentHistoryLinearizable(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	c.Start()
	defer c.Stop()

	// Three processes run small concurrent workloads; the collected
	// wall-clock history must be linearizable.
	type rec struct {
		proc sim.ProcID
		resp Response
	}
	results := make(chan rec, 32)
	scripts := [][]struct {
		op  string
		arg any
	}{
		{{adt.OpEnqueue, 1}, {adt.OpPeek, nil}, {adt.OpDequeue, nil}},
		{{adt.OpEnqueue, 2}, {adt.OpDequeue, nil}, {adt.OpPeek, nil}},
		{{adt.OpPeek, nil}, {adt.OpEnqueue, 3}, {adt.OpPeek, nil}},
	}
	donech := make(chan struct{})
	for proc, script := range scripts {
		proc, script := sim.ProcID(proc), script
		go func() {
			for _, s := range script {
				resp, err := c.Call(proc, s.op, s.arg)
				if err != nil {
					t.Error(err)
					break
				}
				results <- rec{proc, resp}
			}
			donech <- struct{}{}
		}()
	}
	for range scripts {
		<-donech
	}
	close(results)

	dt, _ := adt.Lookup("queue")
	var history []lincheck.Op
	id := 0
	for r := range results {
		history = append(history, lincheck.Op{
			ID:      id,
			Name:    r.resp.Op,
			Arg:     r.resp.Arg,
			Ret:     r.resp.Ret,
			Invoke:  r.resp.Invoke,
			Respond: r.resp.Respond,
		})
		id++
	}
	if len(history) != 9 {
		t.Fatalf("collected %d responses, want 9", len(history))
	}
	if !lincheck.Check(dt, history).Linearizable {
		t.Errorf("real-time history not linearizable: %+v", history)
	}
}

func TestRealTimeValidation(t *testing.T) {
	p := rtParams(2)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	nodes := core.NewReplicas(2, dt, classes, core.DefaultTimers(p))
	if _, err := NewCluster(Params{Params: p}, 0, sim.ZeroOffsets(2), nodes, 1); err == nil {
		t.Error("zero tick should error")
	}
	if _, err := NewCluster(Params{Params: p}, tick, sim.ZeroOffsets(3), nodes, 1); err == nil {
		t.Error("offsets length mismatch should error")
	}
	bad := p
	bad.U = p.D + 1
	if _, err := NewCluster(Params{Params: bad}, tick, sim.ZeroOffsets(2), nodes, 1); err == nil {
		t.Error("invalid params should error")
	}
}

func TestRealTimeStopTerminates(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	c.Start()
	mustCall(t, c, 0, adt.OpEnqueue, 5)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
}

// TestRealTimeUseNetwork drives the cluster's delays from a deterministic
// sim.Network instead of the random draw: the run must complete with the
// replicas converged, and out-of-range rule values must be clamped into
// the lower half of [d-u, d] (the band the default draw uses, chosen so
// scheduling jitter cannot push deliveries past d).
func TestRealTimeUseNetwork(t *testing.T) {
	p := rtParams(3)
	c, replicas := newQueueCluster(t, 3)
	// Rule asks for delays far outside the admissible window on both
	// sides; the cluster must clamp to [d-u, d-u/2].
	c.UseNetwork(sim.SequenceNetwork{
		Delays:  []simtime.Duration{0, 1 << 40, p.MinDelay(), p.MinDelay() + p.U/2},
		Default: p.MinDelay(),
	})
	c.Start()
	defer c.Stop()

	if r := mustCall(t, c, 0, adt.OpEnqueue, 5); r.Ret != nil {
		t.Errorf("enqueue returned %v", r.Ret)
	}
	time.Sleep(5 * time.Duration(p.D) * tick)
	if r := mustCall(t, c, 1, adt.OpPeek, nil); !spec.ValuesEqual(r.Ret, 5) {
		t.Errorf("peek returned %v, want 5", r.Ret)
	}
	time.Sleep(5 * time.Duration(p.D) * tick)
	fps := make([]string, len(replicas))
	for i, rep := range replicas {
		i, rep := i, rep
		c.Inspect(sim.ProcID(i), func() { fps[i] = rep.StateFingerprint() })
	}
	for i := range fps {
		if fps[i] != fps[0] {
			t.Errorf("replica %d diverged: %q vs %q", i, fps[i], fps[0])
		}
	}
}

// TestInboxOverflowTypedError pins the bounded-inbox contract: a post
// that finds the inbox full fails the cluster with a typed
// *InboxOverflowError instead of silently stalling the posting
// goroutine. The cluster is deliberately not started, so nothing drains
// the inbox and a depth-1 box overflows on the second invocation.
func TestInboxOverflowTypedError(t *testing.T) {
	p := rtParams(2)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	nodes := core.NewReplicas(2, dt, classes, core.DefaultTimers(p))
	c, err := NewCluster(Params{Params: p, InboxDepth: 1}, tick, sim.ZeroOffsets(2), nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.InboxDepth(); got != 1 {
		t.Fatalf("InboxDepth() = %d, want 1", got)
	}
	if _, err := c.Invoke(0, adt.OpEnqueue, 1); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	_, err = c.Invoke(0, adt.OpEnqueue, 2)
	var overflow *InboxOverflowError
	if !errors.As(err, &overflow) {
		t.Fatalf("second invoke returned %v, want *InboxOverflowError", err)
	}
	if overflow.Proc != 0 || overflow.Depth != 1 {
		t.Errorf("overflow = %+v, want proc 0 depth 1", overflow)
	}
	if !errors.As(c.Err(), &overflow) {
		t.Errorf("Err() = %v, want the recorded overflow", c.Err())
	}
	// The failure is sticky: later calls fail fast, and Drain surfaces it.
	if _, err := c.Call(1, adt.OpPeek, nil); err == nil {
		t.Error("Call succeeded on a failed cluster")
	}
	if err := c.Drain(time.Second); !errors.As(err, &overflow) {
		t.Errorf("Drain() = %v, want the recorded overflow", err)
	}
}

// TestDefaultInboxDepth pins the lifted default.
func TestDefaultInboxDepth(t *testing.T) {
	c, _ := newQueueCluster(t, 2)
	if got := c.InboxDepth(); got != DefaultInboxDepth {
		t.Fatalf("InboxDepth() = %d, want %d", got, DefaultInboxDepth)
	}
	if DefaultInboxDepth != 1024 {
		t.Fatalf("DefaultInboxDepth = %d, want the historical 1024", DefaultInboxDepth)
	}
	nodes := make([]sim.Node, 2)
	for i := range nodes {
		nodes[i] = echoTimerNode{}
	}
	p := rtParams(2)
	if _, err := NewCluster(Params{Params: p, InboxDepth: -1}, tick, sim.ZeroOffsets(2), nodes, 1); err == nil {
		t.Error("negative inbox depth should error")
	}
}

// echoTimerNode is a minimal node for constructor-validation tests.
type echoTimerNode struct{}

func (echoTimerNode) Init(sim.Context) {}
func (echoTimerNode) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	ctx.Respond(inv.SeqID, inv.Arg)
}
func (echoTimerNode) OnMessage(sim.Context, sim.ProcID, any) {}
func (echoTimerNode) OnTimer(sim.Context, any)               {}
