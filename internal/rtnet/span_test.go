package rtnet

import (
	"errors"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/obs"
	"lintime/internal/sim"
)

// TestSpanLifecycleRealTime drives one mutator through a live cluster
// with a ring tracer attached and checks the full lifecycle lands in
// record order: the invoke opens the span, the replica broadcast fans
// out, peers record deliveries, the stabilization timer fires, and the
// response closes the span — the real-time half of the sim span test.
func TestSpanLifecycleRealTime(t *testing.T) {
	p := rtParams(3)
	ring := obs.NewRing(1024)
	c, _ := newQueueCluster(t, 3)
	c.SetTracer(ring)
	c.Start()
	defer c.Stop()

	r := mustCall(t, c, 0, adt.OpEnqueue, 7)
	time.Sleep(5 * time.Duration(p.D) * tick) // let replication settle

	evs := ring.Span(r.Seq)
	if len(evs) < 4 {
		t.Fatalf("span %d: got %d events %+v, want at least invoke/broadcast/deliver/respond", r.Seq, len(evs), evs)
	}
	counts := map[obs.Stage]int{}
	for _, ev := range evs {
		counts[ev.Stage]++
	}
	if counts[obs.StageInvoke] != 1 || counts[obs.StageRespond] != 1 {
		t.Fatalf("span %d must open and close exactly once: %v", r.Seq, counts)
	}
	if counts[obs.StageBroadcast] < 2 || counts[obs.StageDeliver] < 2 {
		t.Fatalf("mutator on 3 replicas must broadcast to and deliver at both peers: %v", counts)
	}
	if evs[0].Stage != obs.StageInvoke || evs[0].Op != adt.OpEnqueue {
		t.Fatalf("first span event: %+v, want the %s invoke", evs[0], adt.OpEnqueue)
	}
	last := evs[len(evs)-1]
	if last.Stage == obs.StageInvoke || last.Stage == obs.StageBroadcast {
		// Responds happen after the MOP wait (X+ε); late deliveries and
		// peer stabilization timers may trail it, but the span can never
		// end on its own opening stages.
		t.Fatalf("last span event: %+v", last)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("span events went back in time: %+v then %+v", evs[i-1], evs[i])
		}
	}
}

// TestClusterMetrics wires rtnet.Metrics into a live cluster and checks
// the counters and the delivery-latency histogram against the network
// envelope [d-u, d].
func TestClusterMetrics(t *testing.T) {
	p := rtParams(3)
	reg := obs.NewRegistry()
	c, _ := newQueueCluster(t, 3)
	m := NewMetrics(reg, p)
	c.SetMetrics(m)
	c.Start()
	defer c.Stop()

	mustCall(t, c, 0, adt.OpEnqueue, 1)
	mustCall(t, c, 1, adt.OpEnqueue, 2)
	time.Sleep(5 * time.Duration(p.D) * tick)

	if got := m.Delivered.Value(); got < 4 {
		t.Fatalf("delivered: got %d, want >= 4 (two mutators broadcast to two peers each)", got)
	}
	if got := m.TimerFires.Value(); got < 2 {
		t.Fatalf("timer fires: got %d, want >= 2 (one stabilization wait per mutator)", got)
	}
	if got := m.Overflows.Value(); got != 0 {
		t.Fatalf("overflows on a healthy run: %d", got)
	}
	s := m.MsgLatency.Summary()
	if s.Count != m.Delivered.Value() {
		t.Fatalf("latency samples %d != delivered %d", s.Count, m.Delivered.Value())
	}
	// Scheduled delays obey [d-u, d]; handling adds real-time slack on
	// top (never removes it), and tick truncation can shave one tick.
	if s.Min < int64(p.D-p.U)-1 {
		t.Fatalf("min latency %d below the d-u bound %d", s.Min, p.D-p.U)
	}
	if s.Max > 4*int64(p.D) {
		t.Fatalf("max latency %d implausibly above d (%d): handling stalled?", s.Max, p.D)
	}
	if got := m.InboxMax.Value(); got < 1 {
		t.Fatalf("inbox high-water: got %d, want >= 1", got)
	}
}

// TestOverflowCountersAndLastProc pins satellite telemetry for the
// bounded-inbox failure: the overflow counter and last-proc gauge must
// record the event alongside the sticky typed error.
func TestOverflowCountersAndLastProc(t *testing.T) {
	p := rtParams(2)
	dt, _ := adt.Lookup("queue")
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	nodes := core.NewReplicas(2, dt, classes, core.DefaultTimers(p))
	reg := obs.NewRegistry()
	c, err := NewCluster(Params{Params: p, InboxDepth: 1}, tick, sim.ZeroOffsets(2), nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(NewMetrics(reg, p))
	if got, proc := c.Overflows(), c.LastOverflowProc(); got != 0 || proc != -1 {
		t.Fatalf("pre-overflow state: count=%d proc=%d, want 0/-1", got, proc)
	}

	// Not started: nothing drains the depth-1 inbox, so the second
	// invocation at proc 1 overflows.
	if _, err := c.Invoke(1, adt.OpEnqueue, 1); err != nil {
		t.Fatal(err)
	}
	_, err = c.Invoke(1, adt.OpEnqueue, 2)
	var overflow *InboxOverflowError
	if !errors.As(err, &overflow) {
		t.Fatalf("second invoke returned %v, want *InboxOverflowError", err)
	}
	if got := c.Overflows(); got != 1 {
		t.Fatalf("Overflows() = %d, want 1", got)
	}
	if got := c.LastOverflowProc(); got != 1 {
		t.Fatalf("LastOverflowProc() = %d, want 1", got)
	}
	snap := obs.TakeSnapshot(reg)
	if snap.Counters["rtnet_inbox_overflows_total"] != 1 {
		t.Fatalf("overflow counter: %+v", snap.Counters)
	}
}
