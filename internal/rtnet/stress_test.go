package rtnet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/sim"
	"lintime/internal/spec"
)

// TestDrainCompletesPending: Drain must let every in-flight invocation
// respond before stopping the node goroutines, and be idempotent with
// Stop.
func TestDrainCompletesPending(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	c.Start()
	resps := make([]<-chan Response, 3)
	for p := 0; p < 3; p++ {
		ch, err := c.Invoke(sim.ProcID(p), adt.OpEnqueue, p)
		if err != nil {
			t.Fatalf("invoke at p%d: %v", p, err)
		}
		resps[p] = ch
	}
	if err := c.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for p, ch := range resps {
		select {
		case r := <-ch:
			if r.Op != adt.OpEnqueue {
				t.Errorf("proc %d response op = %q", p, r.Op)
			}
		default:
			t.Errorf("proc %d invocation did not complete before Drain returned", p)
		}
	}
	if n := c.Pending(); n != 0 {
		t.Errorf("%d operations still pending after drain", n)
	}
	c.Stop() // idempotent after Drain's internal Stop
}

// TestDrainTimeout: a drain with pending work that cannot complete in
// time must stop the cluster anyway and report the stragglers.
func TestDrainTimeout(t *testing.T) {
	c, _ := newQueueCluster(t, 2)
	c.Start()
	if _, err := c.Invoke(0, adt.OpEnqueue, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(0); err == nil {
		t.Error("drain with zero timeout and pending work should error")
	}
}

// TestSendRngDerivation pins the documented seeding of the per-process
// delay streams: process i draws from DeriveSeed(seed, "rtnet/send/p<i>"),
// so a process's delay sequence is a pure function of (seed, process) —
// independent of how the other processes are scheduled.
func TestSendRngDerivation(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	for i, rng := range c.sendRngs {
		want := rand.New(rand.NewSource(harness.DeriveSeed(99, fmt.Sprintf("rtnet/send/p%d", i))))
		for k := 0; k < 8; k++ {
			if got, exp := rng.Int63(), want.Int63(); got != exp {
				t.Fatalf("proc %d draw %d = %d, want %d", i, k, got, exp)
			}
		}
	}
}

// TestStressSequentialPerProcess hammers a 5-replica cluster with the
// one-pending-op-per-process workload the serving layer produces: one
// goroutine per process issuing back-to-back mixed operations. Every
// call must respond; a hung call here means a response was lost in the
// replica/timer machinery.
func TestStressSequentialPerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c, _ := newQueueCluster(t, 5)
	c.Start()
	defer c.Stop()

	const dur = 2 * time.Second
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for p := 0; p < 5; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(harness.DeriveSeed(5, fmt.Sprintf("stress/%d", p))))
			next := 0
			for n := 0; time.Now().Before(deadline); n++ {
				var op string
				var arg any
				switch rng.Intn(5) {
				case 0, 1:
					next++
					op, arg = adt.OpEnqueue, p*1_000_000+next
				case 2, 3:
					op = adt.OpDequeue
				default:
					op = adt.OpPeek
				}
				ch, err := c.Invoke(sim.ProcID(p), op, arg)
				if err != nil {
					t.Errorf("proc %d op %d (%s): %v", p, n, op, err)
					return
				}
				select {
				case <-ch:
				case <-time.After(10 * time.Second):
					t.Errorf("proc %d op %d (%s) never responded; %d cluster-wide pending, %d live timers",
						p, n, op, c.Pending(), c.timerCount())
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiesce, then drain the queue to empty the way the serving soak's
	// phase boundaries do: sequential dequeues round-robin across
	// processes on an otherwise idle cluster.
	p := rtParams(5)
	time.Sleep(time.Duration(p.D+p.Epsilon)*tick + 50*time.Millisecond)
	for i := 0; ; i++ {
		ch, err := c.Invoke(sim.ProcID(i%5), adt.OpDequeue, nil)
		if err != nil {
			t.Fatalf("drain dequeue %d at proc %d: %v", i, i%5, err)
		}
		select {
		case r := <-ch:
			if spec.ValuesEqual(r.Ret, adt.EmptyMarker) {
				return
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("drain dequeue %d at proc %d never responded; %d pending, %d live timers",
				i, i%5, c.Pending(), c.timerCount())
		}
	}
}
