package rtnet

import (
	"testing"
	"time"

	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// timerNode responds to every invocation from a timer callback, so each
// operation exercises the SetTimer → fire → OnTimer path end to end.
type timerNode struct {
	delay simtime.Duration
	seq   int64
}

func (tn *timerNode) Init(ctx sim.Context) {}
func (tn *timerNode) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	tn.seq = inv.SeqID
	ctx.SetTimer(tn.delay, "fire")
}
func (tn *timerNode) OnMessage(ctx sim.Context, from sim.ProcID, payload any) {}
func (tn *timerNode) OnTimer(ctx sim.Context, tag any) {
	ctx.Respond(tn.seq, tag)
}

// TestTimerMapDrainsAfterFire is the regression test for the timer leak:
// fired timers must delete their Cluster.timers entries, including
// zero-delay timers that fire before SetTimer returns — previously the
// fire-side delete could run before registration, dropping the firing and
// leaking the entry forever.
func TestTimerMapDrainsAfterFire(t *testing.T) {
	p := simtime.Params{N: 2, D: 40, U: 20, Epsilon: 10, X: 10}
	nodes := []sim.Node{&timerNode{delay: 0}, &timerNode{delay: 5}}
	c, err := NewCluster(Params{Params: p}, tick, sim.ZeroOffsets(2), nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for i := 0; i < 50; i++ {
		proc := sim.ProcID(i % 2)
		ch, err := c.Invoke(proc, "op", i)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		select {
		case r := <-ch:
			if r.Ret != "fire" {
				t.Fatalf("op %d returned %v, want timer tag", i, r.Ret)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("op %d: timer never fired (firing dropped by registration race)", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.timerCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("timer map did not drain: %d live entries", c.timerCount())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTimerMapDrainsOnCancel asserts CancelTimer removes the entry.
func TestTimerMapDrainsOnCancel(t *testing.T) {
	p := simtime.Params{N: 2, D: 40, U: 20, Epsilon: 10, X: 10}
	nodes := []sim.Node{&timerNode{}, &timerNode{}}
	c, err := NewCluster(Params{Params: p}, tick, sim.ZeroOffsets(2), nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &rtCtx{c: c, proc: 0}
	id := ctx.SetTimer(simtime.Duration(1e6), nil)
	if got := c.timerCount(); got != 1 {
		t.Fatalf("registered timers = %d, want 1", got)
	}
	ctx.CancelTimer(id)
	if got := c.timerCount(); got != 0 {
		t.Fatalf("timers after cancel = %d, want 0", got)
	}
	// Canceling again is a no-op.
	ctx.CancelTimer(id)
	if got := c.timerCount(); got != 0 {
		t.Fatalf("timers after double cancel = %d, want 0", got)
	}
}

// TestTimerMapDrainsOnStop asserts Stop clears entries of timers that
// never fired.
func TestTimerMapDrainsOnStop(t *testing.T) {
	c, _ := newQueueCluster(t, 3)
	c.Start()
	c.Call(0, "enqueue", 1) // leaves replication timers pending on peers
	c.Stop()
	if got := c.timerCount(); got != 0 {
		t.Fatalf("timers after Stop = %d, want 0", got)
	}
}
