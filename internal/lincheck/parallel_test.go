package lincheck

import (
	"math/rand"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
)

// randomHistory builds an overlapping history by running legal sequences
// and stretching the intervals so operations overlap.
func randomHistory(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	dt := adt.NewQueue()
	state := dt.Initial()
	ops := dt.Ops()
	var h []Op
	tm := simtime.Time(0)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		arg := op.Args[rng.Intn(len(op.Args))]
		ret, next := state.Apply(op.Name, arg)
		state = next
		// Stretch each interval across its neighbors to force overlap.
		h = append(h, Op{ID: i, Name: op.Name, Arg: arg, Ret: ret,
			Invoke: tm, Respond: tm + 25})
		tm += 10
	}
	return h
}

func TestCheckParallelMatchesCheck(t *testing.T) {
	dt := adt.NewQueue()
	for seed := int64(0); seed < 8; seed++ {
		h := randomHistory(seed, 14)
		seq := Check(dt, h)
		for _, workers := range []int{1, 2, 4, 8} {
			par := CheckParallel(dt, h, workers)
			if par.Linearizable != seq.Linearizable {
				t.Errorf("seed %d workers %d: parallel %v != sequential %v",
					seed, workers, par.Linearizable, seq.Linearizable)
			}
		}
	}
}

func TestCheckParallelRejectsIllegal(t *testing.T) {
	dt := adt.NewRegister(0)
	h := []Op{
		regOp(0, "write", 5, nil, 0, 10),
		regOp(1, "read", nil, 0, 20, 30), // stale read after the write
	}
	if CheckParallel(dt, h, 4).Linearizable {
		t.Error("parallel checker accepted a non-linearizable history")
	}
}

func TestCheckParallelWitnessDeterministic(t *testing.T) {
	dt := adt.NewQueue()
	h := randomHistory(3, 12)
	first := CheckParallel(dt, h, 4)
	if !first.Linearizable {
		t.Fatal("history should linearize")
	}
	for i := 0; i < 5; i++ {
		again := CheckParallel(dt, h, 4)
		if len(again.Linearization) != len(first.Linearization) {
			t.Fatal("witness length varies across runs")
		}
		for j := range again.Linearization {
			if again.Linearization[j].String() != first.Linearization[j].String() {
				t.Fatalf("witness op %d varies across runs: %v vs %v",
					j, again.Linearization[j], first.Linearization[j])
			}
		}
	}
}

func TestCheckParallelPendingOnly(t *testing.T) {
	dt := adt.NewRegister(0)
	h := []Op{{ID: 0, Name: "write", Arg: 1, Invoke: 0, Respond: simtime.Infinity}}
	if !CheckParallel(dt, h, 4).Linearizable {
		t.Error("pending-only history is linearizable")
	}
}

// BenchmarkCheckMemo stresses the memoization table with commuting
// concurrent increments — the workload where memo-key construction
// dominates. Run with -benchmem to track the per-check allocation cost.
func BenchmarkCheckMemo(b *testing.B) {
	dt := adt.NewCounter()
	var h []Op
	for i := 0; i < 14; i++ {
		h = append(h, Op{ID: i, Name: "inc", Invoke: 0, Respond: 100})
	}
	h = append(h, Op{ID: 14, Name: "read", Ret: 14, Invoke: 200, Respond: 210})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Check(dt, h).Linearizable {
			b.Fatal("concurrent increments must linearize")
		}
	}
}

// BenchmarkCheckQueueHistory measures the checker on a realistic
// overlapping queue history.
func BenchmarkCheckQueueHistory(b *testing.B) {
	dt := adt.NewQueue()
	h := randomHistory(7, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Check(dt, h).Linearizable {
			b.Fatal("history must linearize")
		}
	}
}
