package lincheck

import (
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// DecodeFuzzHistory turns fuzz-input bytes into a small queue history:
// each operation consumes four bytes (kind, argument, invocation time,
// duration/return), capped at six operations so brute-force reference
// checkers stay fast. It is the shared decoding scheme of the FuzzCheck
// corpus under testdata/fuzz/FuzzCheck; internal/strongcheck reuses it to
// cross-check CheckStrong against Check over the same corpus.
//
// Durations 0-6 complete the op; 7 leaves it pending. The high bits of the
// duration byte pick the recorded return for completed accessors: ⊥ or a
// small int (possibly an illegal one — checkers must agree it is illegal).
// The process id cycles over three processes; the plain checker ignores
// it, the strong checker uses it for event identity.
func DecodeFuzzHistory(data []byte) []Op {
	const maxOps = 6
	var history []Op
	for i := 0; i+4 <= len(data) && len(history) < maxOps; i += 4 {
		kind, argB, invB, durB := data[i], data[i+1], data[i+2], data[i+3]
		op := Op{ID: len(history), Proc: len(history) % 3, Invoke: simtime.Time(invB % 16)}
		if dur := durB % 8; dur == 7 {
			op.Respond = simtime.Infinity
		} else {
			op.Respond = op.Invoke.Add(simtime.Duration(dur))
		}
		arg := int(argB % 4)
		retChoice := int(durB/8) % 6
		var ret spec.Value
		if retChoice > 0 {
			ret = retChoice - 1
		}
		switch kind % 3 {
		case 0:
			op.Name, op.Arg, op.Ret = "enqueue", arg, nil
		case 1:
			op.Name, op.Ret = "dequeue", ret
		case 2:
			op.Name, op.Ret = "peek", ret
		}
		if op.Pending() {
			op.Ret = nil
		}
		history = append(history, op)
	}
	return history
}
