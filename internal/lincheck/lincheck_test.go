package lincheck

import (
	"math/rand"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

func regOp(id int, name string, arg, ret spec.Value, inv, resp simtime.Time) Op {
	return Op{ID: id, Name: name, Arg: arg, Ret: ret, Invoke: inv, Respond: resp}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	res := Check(adt.NewRegister(0), nil)
	if !res.Linearizable {
		t.Error("empty history must be linearizable")
	}
}

func TestSequentialLegalHistory(t *testing.T) {
	dt := adt.NewRegister(0)
	h := []Op{
		regOp(0, "write", 5, nil, 0, 10),
		regOp(1, "read", nil, 5, 20, 30),
		regOp(2, "write", 7, nil, 40, 50),
		regOp(3, "read", nil, 7, 60, 70),
	}
	res := Check(dt, h)
	if !res.Linearizable {
		t.Fatal("legal sequential history must be linearizable")
	}
	if len(res.Linearization) != 4 {
		t.Errorf("linearization has %d ops", len(res.Linearization))
	}
	if !spec.Legal(dt, res.Linearization) {
		t.Error("witness linearization must be legal")
	}
}

func TestSequentialIllegalHistory(t *testing.T) {
	dt := adt.NewRegister(0)
	h := []Op{
		regOp(0, "write", 5, nil, 0, 10),
		regOp(1, "read", nil, 99, 20, 30), // wrong value
	}
	if Check(dt, h).Linearizable {
		t.Error("stale read after non-overlapping write must not linearize")
	}
}

func TestConcurrentEitherOrder(t *testing.T) {
	dt := adt.NewRegister(0)
	// write(5) overlaps read; read may return 0 or 5.
	for _, readVal := range []int{0, 5} {
		h := []Op{
			regOp(0, "write", 5, nil, 0, 100),
			regOp(1, "read", nil, readVal, 50, 60),
		}
		if !Check(dt, h).Linearizable {
			t.Errorf("concurrent read returning %d should linearize", readVal)
		}
	}
	// But not an unrelated value.
	h := []Op{
		regOp(0, "write", 5, nil, 0, 100),
		regOp(1, "read", nil, 3, 50, 60),
	}
	if Check(dt, h).Linearizable {
		t.Error("read of never-written value must not linearize")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	dt := adt.NewRegister(0)
	// read(0) strictly after write(5): not linearizable.
	h := []Op{
		regOp(0, "write", 5, nil, 0, 10),
		regOp(1, "read", nil, 0, 20, 30),
	}
	if Check(dt, h).Linearizable {
		t.Error("read must see completed write")
	}
	// Overlapping: read(0) invoked before the write responds: fine.
	h[1].Invoke = 5
	if !Check(dt, h).Linearizable {
		t.Error("overlapping read(0) should linearize before the write")
	}
}

func TestQueueHistories(t *testing.T) {
	dt := adt.NewQueue()
	// Two concurrent enqueues then two dequeues: dequeues must see both
	// elements in some consistent order.
	ok := []Op{
		regOp(0, "enqueue", 1, nil, 0, 10),
		regOp(1, "enqueue", 2, nil, 0, 10),
		regOp(2, "dequeue", nil, 2, 20, 30),
		regOp(3, "dequeue", nil, 1, 40, 50),
	}
	if !Check(dt, ok).Linearizable {
		t.Error("dequeue order 2,1 consistent with concurrent enqueues")
	}
	bad := []Op{
		regOp(0, "enqueue", 1, nil, 0, 10),
		regOp(1, "enqueue", 2, nil, 20, 30), // strictly after first
		regOp(2, "dequeue", nil, 2, 40, 50),
		regOp(3, "dequeue", nil, 1, 60, 70),
	}
	if Check(dt, bad).Linearizable {
		t.Error("FIFO violation must not linearize")
	}
	dup := []Op{
		regOp(0, "enqueue", 1, nil, 0, 10),
		regOp(1, "dequeue", nil, 1, 20, 30),
		regOp(2, "dequeue", nil, 1, 40, 50), // element dequeued twice
	}
	if Check(dt, dup).Linearizable {
		t.Error("double dequeue must not linearize")
	}
}

func TestPendingOpMayTakeEffect(t *testing.T) {
	dt := adt.NewRegister(0)
	// A pending write may (but need not) be seen by a later read.
	h := []Op{
		{ID: 0, Name: "write", Arg: 5, Invoke: 0, Respond: simtime.Infinity},
		regOp(1, "read", nil, 5, 100, 110),
	}
	if !Check(dt, h).Linearizable {
		t.Error("pending write may take effect")
	}
	h[1].Ret = 0
	if !Check(dt, h).Linearizable {
		t.Error("pending write may also be dropped")
	}
}

func TestPendingOnlyHistory(t *testing.T) {
	dt := adt.NewRegister(0)
	h := []Op{{ID: 0, Name: "write", Arg: 1, Invoke: 0, Respond: simtime.Infinity}}
	if !Check(dt, h).Linearizable {
		t.Error("history of only pending ops is linearizable")
	}
}

func TestRMWContention(t *testing.T) {
	dt := adt.NewRMWRegister(0)
	// Two concurrent rmw(1): exactly one may return 0, the other 1.
	ok := []Op{
		regOp(0, "rmw", 1, 0, 0, 50),
		regOp(1, "rmw", 1, 1, 0, 50),
	}
	if !Check(dt, ok).Linearizable {
		t.Error("rmw returning 0 and 1 should linearize")
	}
	bad := []Op{
		regOp(0, "rmw", 1, 0, 0, 50),
		regOp(1, "rmw", 1, 0, 0, 50), // both claim the old value
	}
	if Check(dt, bad).Linearizable {
		t.Error("two rmws returning the same old value must not linearize")
	}
}

func TestTheorem2ShapeHistory(t *testing.T) {
	// The shape produced by the Theorem 2 proof: alternating peeks where
	// a later peek returns the new value and an earlier one the old value,
	// with the mutator concurrent with both: linearizable only if the
	// old-value peek precedes the new-value peek in real time order.
	dt := adt.NewQueue()
	// enqueue(7) concurrent with both peeks; peek(empty) AFTER peek(7):
	// illegal.
	h := []Op{
		regOp(0, "enqueue", 7, nil, 0, 100),
		regOp(1, "peek", nil, 7, 10, 20),
		regOp(2, "peek", nil, "empty", 30, 40),
	}
	if Check(dt, h).Linearizable {
		t.Error("old-state peek after new-state peek must not linearize")
	}
	// Reversed order is fine.
	h[1].Ret = "empty"
	h[2].Ret = 7
	if !Check(dt, h).Linearizable {
		t.Error("old-state peek before new-state peek should linearize")
	}
}

func TestSimultaneousInvocations(t *testing.T) {
	dt := adt.NewQueue()
	h := []Op{
		regOp(0, "enqueue", 1, nil, 0, 0),
		regOp(1, "enqueue", 2, nil, 0, 0),
		regOp(2, "dequeue", nil, 1, 0, 0),
	}
	// All at the same instant: all overlap, any consistent order works.
	if !Check(dt, h).Linearizable {
		t.Error("simultaneous ops should linearize in some order")
	}
}

func TestRandomSequentialHistoriesLinearize(t *testing.T) {
	// Any history generated by sequential (non-overlapping) legal
	// execution is linearizable.
	rng := rand.New(rand.NewSource(42))
	for _, name := range adt.Names() {
		dt, _ := adt.Lookup(name)
		state := dt.Initial()
		var h []Op
		tm := simtime.Time(0)
		ops := dt.Ops()
		for i := 0; i < 12; i++ {
			op := ops[rng.Intn(len(ops))]
			arg := op.Args[rng.Intn(len(op.Args))]
			ret, next := state.Apply(op.Name, arg)
			state = next
			h = append(h, Op{ID: i, Name: op.Name, Arg: arg, Ret: ret, Invoke: tm, Respond: tm + 5})
			tm += 10
		}
		if !Check(dt, h).Linearizable {
			t.Errorf("%s: sequential legal history must linearize", name)
		}
	}
}

func TestWitnessRespectsRealTimeOrder(t *testing.T) {
	dt := adt.NewQueue()
	h := []Op{
		regOp(0, "enqueue", 1, nil, 0, 10),
		regOp(1, "enqueue", 2, nil, 20, 30),
		regOp(2, "dequeue", nil, 1, 40, 50),
	}
	res := Check(dt, h)
	if !res.Linearizable {
		t.Fatal("history should linearize")
	}
	// Non-overlapping: the witness must be enqueue(1), enqueue(2),
	// dequeue.
	want := []string{"enqueue", "enqueue", "dequeue"}
	for i, in := range res.Linearization {
		if in.Op != want[i] {
			t.Errorf("witness[%d] = %s, want %s", i, in.Op, want[i])
		}
	}
	if !spec.ValuesEqual(res.Linearization[0].Arg, 1) {
		t.Error("enqueue(1) must come first")
	}
}

func TestLargeSequentialHistoryPerformance(t *testing.T) {
	// Memoization should make well-ordered histories cheap even at
	// hundreds of operations.
	dt := adt.NewCounter()
	var h []Op
	tm := simtime.Time(0)
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			h = append(h, Op{ID: i, Name: "inc", Invoke: tm, Respond: tm + 5})
		} else {
			h = append(h, Op{ID: i, Name: "read", Ret: (i + 1) / 2, Invoke: tm, Respond: tm + 5})
		}
		tm += 10
	}
	res := Check(dt, h)
	if !res.Linearizable {
		t.Fatal("long sequential history must linearize")
	}
}

func TestConcurrentBatchPerformance(t *testing.T) {
	// Overlapping batches of commuting increments: exponential naive
	// search, tamed by memoization on (set, state).
	dt := adt.NewCounter()
	var h []Op
	for i := 0; i < 12; i++ {
		h = append(h, Op{ID: i, Name: "inc", Invoke: 0, Respond: 100})
	}
	h = append(h, Op{ID: 12, Name: "read", Ret: 12, Invoke: 200, Respond: 210})
	res := Check(dt, h)
	if !res.Linearizable {
		t.Fatal("concurrent increments must linearize")
	}
}

func TestOpPendingHelper(t *testing.T) {
	if (Op{Respond: 5}).Pending() {
		t.Error("completed op reported pending")
	}
	if !(Op{Respond: simtime.Infinity}).Pending() {
		t.Error("pending op not reported")
	}
}
