// Package lincheck decides linearizability of recorded histories against
// a sequential specification, implementing the correctness condition of
// Section 2.3 of the paper: a history is linearizable iff there is a
// permutation of its operation instances that (i) is legal for the data
// type and (ii) preserves the real-time order of non-overlapping
// instances.
//
// The checker is a Wing–Gong style depth-first search over linearization
// prefixes, memoized on (set of linearized ops, object state fingerprint)
// so equivalent prefixes are explored once. The search runs on an
// explicit stack (no recursion), and the memo key is a fixed-width taken
// bitmap with the state fingerprint appended, assembled in a reused
// scratch buffer — the key allocates only when a failed state is
// inserted, never on lookup. Pending invocations (from chopped run
// fragments) may take effect with any legal response or be dropped, per
// the standard completion rule. CheckParallel additionally splits the
// top-level branches of the search across worker goroutines for large
// independent histories.
package lincheck

import (
	"sort"
	"sync"

	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Op is one operation instance of a history with its real-time interval.
// A pending operation has Respond == simtime.Infinity and its Ret is
// ignored. Proc is informational for the plain checker (real-time order
// alone decides linearizability) but load-bearing for the strong checker's
// prefix trees, where events from different histories are identified by
// (time, process, operation).
type Op struct {
	ID      int
	Proc    int
	Name    string
	Arg     spec.Value
	Ret     spec.Value
	Invoke  simtime.Time
	Respond simtime.Time
}

// Pending reports whether the operation never responded.
func (o Op) Pending() bool { return o.Respond == simtime.Infinity }

// FromTrace extracts the checker's history from a simulation trace,
// including pending invocations.
func FromTrace(tr *sim.Trace) []Op {
	ops := make([]Op, 0, len(tr.Ops))
	for i, rec := range tr.Ops {
		ops = append(ops, Op{
			ID:      i,
			Proc:    int(rec.Proc),
			Name:    rec.Op,
			Arg:     rec.Arg,
			Ret:     rec.Ret,
			Invoke:  rec.InvokeTime,
			Respond: rec.RespondTime,
		})
	}
	return ops
}

// Result reports the outcome of a check.
type Result struct {
	Linearizable bool
	// Linearization is a witness permutation when Linearizable is true.
	Linearization []spec.Instance
	// Explored counts visited search states, as a cost metric.
	Explored int
}

// sortOps returns a copy of the history in deterministic exploration
// order: by invocation time, ties by ID.
func sortOps(history []Op) []Op {
	ops := append([]Op(nil), history...)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Invoke != ops[j].Invoke {
			return ops[i].Invoke < ops[j].Invoke
		}
		return ops[i].ID < ops[j].ID
	})
	return ops
}

// Check decides whether the history is linearizable with respect to dt.
func Check(dt spec.DataType, history []Op) Result {
	ops := sortOps(history)
	c := newChecker(dt, ops)
	lin, ok := c.search(dt.Initial(), completedLeftInit(ops))
	if !ok {
		return Result{Linearizable: false, Explored: c.visited}
	}
	return Result{Linearizable: true, Linearization: lin, Explored: c.visited}
}

// CheckTrace is shorthand for Check(dt, FromTrace(tr)).
func CheckTrace(dt spec.DataType, tr *sim.Trace) Result {
	return Check(dt, FromTrace(tr))
}

type checker struct {
	dt      spec.DataType
	ops     []Op
	taken   []bool
	memo    map[string]struct{} // key → known-failed
	keyBuf  []byte              // scratch for memo keys; reused across states
	visited int
}

func newChecker(dt spec.DataType, ops []Op) *checker {
	return &checker{
		dt:     dt,
		ops:    ops,
		taken:  make([]bool, len(ops)),
		memo:   map[string]struct{}{},
		keyBuf: make([]byte, 0, (len(ops)+7)/8+32),
	}
}

// buildKey assembles the memo key for the current taken set and the given
// state fingerprint into the reused scratch buffer: a fixed-width bitmap
// of taken ops with the fingerprint appended (no separator needed — the
// bitmap width is constant for a history).
func (c *checker) buildKey(fp string) []byte {
	nb := (len(c.taken) + 7) / 8
	buf := c.keyBuf[:0]
	for i := 0; i < nb; i++ {
		buf = append(buf, 0)
	}
	for i, t := range c.taken {
		if t {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, fp...)
	c.keyBuf = buf[:0]
	return buf
}

// knownFailed reports whether the current (taken set, state) was already
// proven a dead end. The map lookup through string(buf) does not allocate.
func (c *checker) knownFailed(fp string) bool {
	buf := c.buildKey(fp)
	_, bad := c.memo[string(buf)]
	return bad
}

// markFailed records the current (taken set, state) as a dead end. This is
// the only place a key escapes into the map (one allocation per failed
// state).
func (c *checker) markFailed(fp string) {
	c.memo[string(c.buildKey(fp))] = struct{}{}
}

// frame is one level of the explicit search stack: a reached state plus
// the iteration cursor over its untried extension candidates.
type frame struct {
	state spec.State
	fp    string // state.Fingerprint(), computed once per frame
	// minRespond is the earliest response among ops untaken at frame
	// entry: any op invoked after it cannot be linearized next.
	minRespond simtime.Time
	next       int // next candidate op index to try
	left       int // completed ops still to linearize
	via        int // op index taken to enter this frame (-1 at the root)
	viaRet     spec.Value
}

func (c *checker) newFrame(st spec.State, fp string, left, via int, viaRet spec.Value) frame {
	minRespond := simtime.Infinity
	for i, t := range c.taken {
		if !t && c.ops[i].Respond < minRespond {
			minRespond = c.ops[i].Respond
		}
	}
	return frame{state: st, fp: fp, minRespond: minRespond, left: left, via: via, viaRet: viaRet}
}

// search tries to linearize the remaining ops from the given state using
// an explicit stack, and returns a witness permutation in linearization
// order. The caller's taken set must reflect ops already linearized.
func (c *checker) search(state spec.State, completedLeft int) ([]spec.Instance, bool) {
	c.visited++
	if completedLeft == 0 {
		// All completed ops linearized; pending ops may be dropped.
		return nil, true
	}
	rootFP := state.Fingerprint()
	if c.knownFailed(rootFP) {
		return nil, false
	}
	stack := make([]frame, 1, len(c.ops)+1)
	stack[0] = c.newFrame(state, rootFP, completedLeft, -1, nil)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		descended := false
		for f.next < len(c.ops) {
			i := f.next
			f.next++
			if c.taken[i] {
				continue
			}
			op := c.ops[i]
			if op.Invoke > f.minRespond {
				continue // some untaken op responded before this one was invoked
			}
			ret, next := f.state.Apply(op.Name, op.Arg)
			if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
				continue // recorded response would be illegal here
			}
			left := f.left
			if !op.Pending() {
				left--
			}
			c.taken[i] = true
			c.visited++
			if left == 0 {
				// Success: the stack path plus this op is a witness.
				lin := make([]spec.Instance, 0, len(stack))
				for _, fr := range stack[1:] {
					o := c.ops[fr.via]
					lin = append(lin, spec.Instance{Op: o.Name, Arg: o.Arg, Ret: fr.viaRet})
				}
				lin = append(lin, spec.Instance{Op: op.Name, Arg: op.Arg, Ret: ret})
				for _, fr := range stack[1:] {
					c.taken[fr.via] = false
				}
				c.taken[i] = false
				return lin, true
			}
			fp := next.Fingerprint()
			if c.knownFailed(fp) {
				c.taken[i] = false
				continue
			}
			stack = append(stack, c.newFrame(next, fp, left, i, ret))
			descended = true
			break
		}
		if descended {
			continue
		}
		// All extensions exhausted: record the dead end and backtrack.
		c.markFailed(f.fp)
		if f.via >= 0 {
			c.taken[f.via] = false
		}
		stack = stack[:len(stack)-1]
	}
	return nil, false
}

// completedLeftInit computes the initial count of completed ops.
func completedLeftInit(ops []Op) int {
	n := 0
	for _, op := range ops {
		if !op.Pending() {
			n++
		}
	}
	return n
}

// CheckParallel decides linearizability like Check, splitting the search
// frontier at the root: each viable first choice of the linearization is
// explored by an independent worker (with its own memo table), and workers
// run at most `workers` at a time. The result is deterministic — the
// witness comes from the lowest-indexed successful branch — and identical
// to Check's verdict. With workers < 2 or trivially small histories it
// falls back to the sequential search.
func CheckParallel(dt spec.DataType, history []Op, workers int) Result {
	ops := sortOps(history)
	completedLeft := completedLeftInit(ops)
	if workers < 2 || completedLeft == 0 || len(ops) < 2 {
		return Check(dt, history)
	}
	// Enumerate the viable first steps exactly as the sequential search
	// would at its root frame.
	minRespond := simtime.Infinity
	for _, op := range ops {
		if op.Respond < minRespond {
			minRespond = op.Respond
		}
	}
	initial := dt.Initial()
	type branch struct {
		idx  int
		ret  spec.Value
		next spec.State
		left int
	}
	var branches []branch
	for i, op := range ops {
		if op.Invoke > minRespond {
			continue
		}
		ret, next := initial.Apply(op.Name, op.Arg)
		if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
			continue
		}
		left := completedLeft
		if !op.Pending() {
			left--
		}
		branches = append(branches, branch{idx: i, ret: ret, next: next, left: left})
	}
	type outcome struct {
		lin     []spec.Instance
		ok      bool
		visited int
	}
	outcomes := make([]outcome, len(branches))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for bi := range branches {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			br := branches[bi]
			c := newChecker(dt, ops)
			c.taken[br.idx] = true
			lin, ok := c.search(br.next, br.left)
			if ok {
				first := ops[br.idx]
				lin = append([]spec.Instance{{Op: first.Name, Arg: first.Arg, Ret: br.ret}}, lin...)
			}
			outcomes[bi] = outcome{lin: lin, ok: ok, visited: c.visited + 1}
		}(bi)
	}
	wg.Wait()
	res := Result{}
	for _, o := range outcomes {
		res.Explored += o.visited
		if o.ok && !res.Linearizable {
			res.Linearizable = true
			res.Linearization = o.lin
		}
	}
	return res
}

// CheckTraceParallel is shorthand for CheckParallel(dt, FromTrace(tr), workers).
func CheckTraceParallel(dt spec.DataType, tr *sim.Trace, workers int) Result {
	return CheckParallel(dt, FromTrace(tr), workers)
}
