// Package lincheck decides linearizability of recorded histories against
// a sequential specification, implementing the correctness condition of
// Section 2.3 of the paper: a history is linearizable iff there is a
// permutation of its operation instances that (i) is legal for the data
// type and (ii) preserves the real-time order of non-overlapping
// instances.
//
// The checker is a Wing–Gong style depth-first search over linearization
// prefixes, memoized on (set of linearized ops, object state fingerprint)
// so equivalent prefixes are explored once. Pending invocations (from
// chopped run fragments) may take effect with any legal response or be
// dropped, per the standard completion rule.
package lincheck

import (
	"sort"

	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Op is one operation instance of a history with its real-time interval.
// A pending operation has Respond == simtime.Infinity and its Ret is
// ignored.
type Op struct {
	ID      int
	Name    string
	Arg     spec.Value
	Ret     spec.Value
	Invoke  simtime.Time
	Respond simtime.Time
}

// Pending reports whether the operation never responded.
func (o Op) Pending() bool { return o.Respond == simtime.Infinity }

// FromTrace extracts the checker's history from a simulation trace,
// including pending invocations.
func FromTrace(tr *sim.Trace) []Op {
	ops := make([]Op, 0, len(tr.Ops))
	for i, rec := range tr.Ops {
		ops = append(ops, Op{
			ID:      i,
			Name:    rec.Op,
			Arg:     rec.Arg,
			Ret:     rec.Ret,
			Invoke:  rec.InvokeTime,
			Respond: rec.RespondTime,
		})
	}
	return ops
}

// Result reports the outcome of a check.
type Result struct {
	Linearizable bool
	// Linearization is a witness permutation when Linearizable is true.
	Linearization []spec.Instance
	// Explored counts visited search states, as a cost metric.
	Explored int
}

// Check decides whether the history is linearizable with respect to dt.
func Check(dt spec.DataType, history []Op) Result {
	ops := append([]Op(nil), history...)
	// Deterministic exploration order: by invocation time.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Invoke != ops[j].Invoke {
			return ops[i].Invoke < ops[j].Invoke
		}
		return ops[i].ID < ops[j].ID
	})
	c := &checker{
		dt:   dt,
		ops:  ops,
		memo: map[string]bool{},
	}
	c.taken = make([]bool, len(ops))
	lin, ok := c.search(dt.Initial(), completedLeftInit(ops))
	if !ok {
		return Result{Linearizable: false, Explored: c.visited}
	}
	// The linearization was accumulated in reverse (search returns the
	// suffix first); restore order.
	for i, j := 0, len(lin)-1; i < j; i, j = i+1, j-1 {
		lin[i], lin[j] = lin[j], lin[i]
	}
	return Result{Linearizable: true, Linearization: lin, Explored: c.visited}
}

// CheckTrace is shorthand for Check(dt, FromTrace(tr)).
func CheckTrace(dt spec.DataType, tr *sim.Trace) Result {
	return Check(dt, FromTrace(tr))
}

type checker struct {
	dt      spec.DataType
	ops     []Op
	taken   []bool
	memo    map[string]bool // key → known-failed
	visited int
}

// key builds the memo key: a bitmap of taken ops plus the state
// fingerprint.
func (c *checker) key(state spec.State) string {
	bits := make([]byte, (len(c.taken)+7)/8)
	for i, t := range c.taken {
		if t {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return string(bits) + "|" + state.Fingerprint()
}

// search tries to linearize the remaining ops from the given state. It
// returns a witness suffix in reverse order.
func (c *checker) search(state spec.State, completedLeft int) ([]spec.Instance, bool) {
	c.visited++
	if completedLeft == 0 {
		// All completed ops linearized; pending ops may be dropped.
		return nil, true
	}
	k := c.key(state)
	if c.memo[k] {
		return nil, false
	}
	// minRespond is the earliest response among untaken ops: any op
	// invoked after it cannot be linearized next.
	minRespond := simtime.Infinity
	for i, t := range c.taken {
		if !t && c.ops[i].Respond < minRespond {
			minRespond = c.ops[i].Respond
		}
	}
	for i, t := range c.taken {
		if t {
			continue
		}
		op := c.ops[i]
		if op.Invoke > minRespond {
			continue // some untaken op responded before this one was invoked
		}
		ret, next := state.Apply(op.Name, op.Arg)
		if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
			continue // recorded response would be illegal here
		}
		c.taken[i] = true
		left := completedLeft
		if !op.Pending() {
			left--
		}
		if lin, ok := c.search(next, left); ok {
			c.taken[i] = false
			return append(lin, spec.Instance{Op: op.Name, Arg: op.Arg, Ret: ret}), true
		}
		c.taken[i] = false
	}
	c.memo[k] = true
	return nil, false
}

// completedLeftInit computes the initial count of completed ops.
func completedLeftInit(ops []Op) int {
	n := 0
	for _, op := range ops {
		if !op.Pending() {
			n++
		}
	}
	return n
}
