package lincheck

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// refCheck is a brute-force reference linearizability checker: plain
// recursive enumeration of every permutation respecting the real-time
// precedence order (an op may come next only if no untaken op responded
// strictly before its invocation), with completed ops required to match
// their recorded returns and pending ops free to take any effect or be
// dropped. No memoization, no pruning beyond legality — slow but
// obviously correct for the tiny histories the fuzzer builds.
func refCheck(dt spec.DataType, history []Op) bool {
	taken := make([]bool, len(history))
	var rec func(st spec.State, completedLeft int) bool
	rec = func(st spec.State, completedLeft int) bool {
		if completedLeft == 0 {
			return true
		}
		minRespond := simtime.Infinity
		for i, t := range taken {
			if !t && history[i].Respond < minRespond {
				minRespond = history[i].Respond
			}
		}
		for i, t := range taken {
			if t {
				continue
			}
			op := history[i]
			if op.Invoke > minRespond {
				continue
			}
			ret, next := st.Apply(op.Name, op.Arg)
			if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
				continue
			}
			left := completedLeft
			if !op.Pending() {
				left--
			}
			taken[i] = true
			if rec(next, left) {
				taken[i] = false
				return true
			}
			taken[i] = false
		}
		return false
	}
	completed := 0
	for _, op := range history {
		if !op.Pending() {
			completed++
		}
	}
	return rec(dt.Initial(), completed)
}

// FuzzCheck cross-checks the production checker (sequential and parallel)
// against the brute-force reference on randomly generated histories.
func FuzzCheck(f *testing.F) {
	// A linearizable overlap, an illegal return, a pending enqueue that
	// must be linearized for a later dequeue, and a real-time violation.
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 10})
	f.Add([]byte{0, 2, 0, 1, 2, 0, 5, 3})
	f.Add([]byte{0, 3, 0, 7, 1, 0, 8, 12})
	f.Add([]byte{2, 0, 0, 1, 0, 1, 4, 2, 1, 0, 9, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		dt := adt.NewQueue()
		history := DecodeFuzzHistory(data)
		want := refCheck(dt, history)
		if got := Check(dt, history); got.Linearizable != want {
			t.Fatalf("Check = %v, reference = %v\nhistory: %+v", got.Linearizable, want, history)
		}
		if got := CheckParallel(dt, history, 4); got.Linearizable != want {
			t.Fatalf("CheckParallel = %v, reference = %v\nhistory: %+v", got.Linearizable, want, history)
		}
	})
}
