package lincheck

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// refCheck is a brute-force reference linearizability checker: plain
// recursive enumeration of every permutation respecting the real-time
// precedence order (an op may come next only if no untaken op responded
// strictly before its invocation), with completed ops required to match
// their recorded returns and pending ops free to take any effect or be
// dropped. No memoization, no pruning beyond legality — slow but
// obviously correct for the tiny histories the fuzzer builds.
func refCheck(dt spec.DataType, history []Op) bool {
	taken := make([]bool, len(history))
	var rec func(st spec.State, completedLeft int) bool
	rec = func(st spec.State, completedLeft int) bool {
		if completedLeft == 0 {
			return true
		}
		minRespond := simtime.Infinity
		for i, t := range taken {
			if !t && history[i].Respond < minRespond {
				minRespond = history[i].Respond
			}
		}
		for i, t := range taken {
			if t {
				continue
			}
			op := history[i]
			if op.Invoke > minRespond {
				continue
			}
			ret, next := st.Apply(op.Name, op.Arg)
			if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
				continue
			}
			left := completedLeft
			if !op.Pending() {
				left--
			}
			taken[i] = true
			if rec(next, left) {
				taken[i] = false
				return true
			}
			taken[i] = false
		}
		return false
	}
	completed := 0
	for _, op := range history {
		if !op.Pending() {
			completed++
		}
	}
	return rec(dt.Initial(), completed)
}

// decodeHistory turns fuzz bytes into a small queue history: each op
// consumes four bytes (kind, argument, invocation time, duration/return),
// capped so the reference checker's factorial search stays fast.
func decodeHistory(data []byte) []Op {
	const maxOps = 6
	var history []Op
	for i := 0; i+4 <= len(data) && len(history) < maxOps; i += 4 {
		kind, argB, invB, durB := data[i], data[i+1], data[i+2], data[i+3]
		op := Op{ID: len(history), Invoke: simtime.Time(invB % 16)}
		// Durations 0-6 complete the op; 7 leaves it pending.
		if dur := durB % 8; dur == 7 {
			op.Respond = simtime.Infinity
		} else {
			op.Respond = op.Invoke.Add(simtime.Duration(dur))
		}
		arg := int(argB % 4)
		// The high bits of durB pick the recorded return for completed
		// accessors: ⊥ or a small int (possibly an illegal one — both
		// checkers must agree it is illegal).
		retChoice := int(durB/8) % 6
		var ret spec.Value
		if retChoice > 0 {
			ret = retChoice - 1
		}
		switch kind % 3 {
		case 0:
			op.Name, op.Arg, op.Ret = "enqueue", arg, nil
		case 1:
			op.Name, op.Ret = "dequeue", ret
		case 2:
			op.Name, op.Ret = "peek", ret
		}
		if op.Pending() {
			op.Ret = nil
		}
		history = append(history, op)
	}
	return history
}

// FuzzCheck cross-checks the production checker (sequential and parallel)
// against the brute-force reference on randomly generated histories.
func FuzzCheck(f *testing.F) {
	// A linearizable overlap, an illegal return, a pending enqueue that
	// must be linearized for a later dequeue, and a real-time violation.
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 10})
	f.Add([]byte{0, 2, 0, 1, 2, 0, 5, 3})
	f.Add([]byte{0, 3, 0, 7, 1, 0, 8, 12})
	f.Add([]byte{2, 0, 0, 1, 0, 1, 4, 2, 1, 0, 9, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		dt := adt.NewQueue()
		history := decodeHistory(data)
		want := refCheck(dt, history)
		if got := Check(dt, history); got.Linearizable != want {
			t.Fatalf("Check = %v, reference = %v\nhistory: %+v", got.Linearizable, want, history)
		}
		if got := CheckParallel(dt, history, 4); got.Linearizable != want {
			t.Fatalf("CheckParallel = %v, reference = %v\nhistory: %+v", got.Linearizable, want, history)
		}
	})
}
