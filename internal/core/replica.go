package core

import (
	"fmt"

	"lintime/internal/classify"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// MutatorMsg is the broadcast sent for every mutator invocation
// (Algorithm 1 line 15): the operation, its argument, and its timestamp.
type MutatorMsg struct {
	Op  string
	Arg spec.Value
	TS  Timestamp
}

// Timers collects the timer durations of Algorithm 1. DefaultTimers
// produces the corrected values (see below); PaperTimers produces the
// paper's literal values; tests inject shorter ones to demonstrate that
// each wait is necessary (the failure-injection ablations in DESIGN.md
// §5).
//
// Correction to the paper: Algorithm 1 claims |AOP| = d-X, responding
// d-X after invocation and reading every queued mutator with timestamp at
// most t_inv - X. That view can miss a *concurrent* mutator with a
// smaller timestamp: a mutator invoked at local time τ on a process whose
// clock runs behind by σ arrives only by local time τ + d + σ, so at the
// accessor's drain (local t_inv + d - X) mutators with timestamps in
// (t_inv - X - σ, t_inv - X] may still be in flight while higher-
// timestamped ones are already present. The accessor then returns a value
// inconsistent with every possible linearization (see
// TestPaperAOPWaitAnomaly for a concrete 3-process execution). Waiting
// d - X + ε closes the window exactly: every mutator with timestamp
// ≤ t_inv - X has arrived by local t_inv + d - X + ε, making the view a
// stable prefix of the global timestamp order, while mutators that
// responded before the accessor's invocation still satisfy
// ts ≤ t_inv - X (they respond X + ε after invocation, and the skew bound
// gives the inequality with no slack). Hence our accessor bound is
// |AOP| = d - X + ε; the paper's d - X appears unachievable for ε > 0
// with this style of algorithm.
type Timers struct {
	// AOPRespond is the pure-accessor response delay: d-X+ε (corrected),
	// or d-X in the paper's literal version.
	AOPRespond simtime.Duration
	// AOPBackdate is subtracted from a pure accessor's invocation time to
	// form its timestamp, X.
	AOPBackdate simtime.Duration
	// MOPRespond is the pure-mutator response delay, X+ε.
	MOPRespond simtime.Duration
	// AddSelf is the invoking process's simulated message delay before
	// adding its own mutator to the execute queue, d-u.
	AddSelf simtime.Duration
	// ExecuteWait is the stabilization wait between adding a mutator to
	// the queue and executing it, u+ε.
	ExecuteWait simtime.Duration
}

// DefaultTimers returns the corrected timer durations: the paper's values
// with the pure-accessor wait extended by ε (see the Timers doc comment).
func DefaultTimers(p simtime.Params) Timers {
	t := PaperTimers(p)
	t.AOPRespond += p.Epsilon
	return t
}

// PaperTimers returns Algorithm 1's literal timer durations, including the
// unsound d-X pure-accessor wait. Correct when ε = 0; for ε > 0 see
// TestPaperAOPWaitAnomaly.
func PaperTimers(p simtime.Params) Timers {
	return Timers{
		AOPRespond:  p.D - p.X,
		AOPBackdate: p.X,
		MOPRespond:  p.X + p.Epsilon,
		AddSelf:     p.D - p.U,
		ExecuteWait: p.U + p.Epsilon,
	}
}

// timer tags used by the replica.
type aopRespondTag struct {
	seqID int64
	op    string
	arg   spec.Value
	ts    Timestamp
}

type mopRespondTag struct {
	seqID int64
	ret   spec.Value
}

type addSelfTag struct {
	entry *pendingOp
}

type executeTag struct {
	entry *pendingOp
}

// Replica is one process's Algorithm 1 state machine. It implements
// sim.Node. All replicas of an object must be constructed with the same
// data type, classification and timers.
type Replica struct {
	dt      spec.DataType
	classes map[string]classify.Class
	timers  Timers

	state   spec.State
	queue   toExecuteQueue
	history []spec.Instance // local execution history (§5.1 history variable)

	// KeepHistory records every locally executed instance in order; the
	// harness uses it to validate replica convergence. Off by default to
	// keep long runs cheap (the paper notes the history variable can be
	// pruned per data type; our state machine replica subsumes it).
	KeepHistory bool

	// LiteralAOPDrain reproduces Algorithm 1's pseudocode literally: a
	// pure accessor's respond handler permanently executes (extracts and
	// commits) every queued mutator with timestamp at most the accessor's
	// (lines 4-8). This is subtly unsound: a mutator with a *smaller*
	// timestamp from a process whose clock runs behind can arrive up to ε
	// after the accessor's d-X drain, so the drain commits mutators out of
	// timestamp order at this replica and replica states diverge. The
	// default (false) instead computes the accessor's response from a
	// speculative view — pending mutators with ts ≤ the accessor's are
	// folded over a copy of the state but stay queued for their own
	// execute timers — which returns the same value (pending entries are
	// applied in the same timestamp order) while keeping the committed
	// mutator order canonical. TestLiteralAOPDrainDiverges exhibits the
	// divergence.
	LiteralAOPDrain bool
}

// NewReplica builds one Algorithm 1 replica. Every process of the system
// must get its own Replica instance constructed with identical arguments.
func NewReplica(dt spec.DataType, classes map[string]classify.Class, timers Timers) *Replica {
	return &Replica{dt: dt, classes: classes, timers: timers, state: dt.Initial()}
}

// NewReplicas builds n identically configured replicas as sim.Nodes.
func NewReplicas(n int, dt spec.DataType, classes map[string]classify.Class, timers Timers) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewReplica(dt, classes, timers)
	}
	return nodes
}

// History returns the sequence of instances executed locally (only
// recorded when KeepHistory is set).
func (r *Replica) History() []spec.Instance { return r.history }

// StateFingerprint exposes the local object state for convergence checks.
func (r *Replica) StateFingerprint() string { return r.state.Fingerprint() }

// classOf returns the class of op, defaulting to Mixed (the conservative
// choice: correct for any operation, merely slower).
func (r *Replica) classOf(op string) classify.Class {
	if c, ok := r.classes[op]; ok {
		return c
	}
	return classify.Mixed
}

// Init implements sim.Node.
func (r *Replica) Init(sim.Context) {}

// OnInvoke implements sim.Node: Algorithm 1's InvokeAOP and InvokeOP
// handlers.
func (r *Replica) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	switch r.classOf(inv.Op) {
	case classify.PureAccessor:
		// InvokeAOP (lines 1-2): respond after d-X with timestamp
		// back-dated by X.
		ts := Timestamp{Time: ctx.LocalTime().Add(-r.timers.AOPBackdate), Proc: ctx.ID()}
		ctx.SetTimer(r.timers.AOPRespond, aopRespondTag{seqID: inv.SeqID, op: inv.Op, arg: inv.Arg, ts: ts})
	case classify.PureMutator, classify.Mixed:
		// InvokeOP (lines 10-15).
		ts := Timestamp{Time: ctx.LocalTime(), Proc: ctx.ID()}
		entry := &pendingOp{op: inv.Op, arg: inv.Arg, ts: ts, respondSeq: -1}
		if r.classOf(inv.Op) == classify.PureMutator {
			// Pure mutators respond after X+ε, independent of execution.
			// Their response cannot depend on the state (they are not
			// accessors), so it is computable from the initial state.
			ack := spec.Response(r.dt.Initial(), inv.Op, inv.Arg)
			ctx.SetTimer(r.timers.MOPRespond, mopRespondTag{seqID: inv.SeqID, ret: ack})
		} else {
			entry.respondSeq = inv.SeqID // OOP responds on execution
		}
		// Simulate the minimum message delay to ourselves before queueing
		// (line 14), then notify everyone else (line 15).
		ctx.SetTimer(r.timers.AddSelf, addSelfTag{entry: entry})
		ctx.Broadcast(MutatorMsg{Op: inv.Op, Arg: inv.Arg, TS: ts})
	}
}

// OnMessage implements sim.Node: receipt of a mutator announcement adds it
// to the execute queue (line 18 "or Receive").
func (r *Replica) OnMessage(ctx sim.Context, from sim.ProcID, payload any) {
	msg, ok := payload.(MutatorMsg)
	if !ok {
		panic(fmt.Sprintf("core: unexpected message %T", payload))
	}
	r.addToQueue(ctx, &pendingOp{op: msg.Op, arg: msg.Arg, ts: msg.TS, respondSeq: -1})
}

// OnTimer implements sim.Node, dispatching on the timer tag.
func (r *Replica) OnTimer(ctx sim.Context, tag any) {
	switch v := tag.(type) {
	case aopRespondTag:
		// Lines 3-9: apply every queued mutator with timestamp ≤ the
		// accessor's, then execute the accessor and respond.
		var ret spec.Value
		if r.LiteralAOPDrain {
			r.drainUpTo(ctx, v.ts)
			ret = r.executeLocally(v.op, v.arg)
		} else {
			ret = r.speculativeRead(v.ts, v.op, v.arg)
		}
		ctx.Respond(v.seqID, ret)
	case mopRespondTag:
		// Lines 16-17: pure mutators respond independently of execution.
		ctx.Respond(v.seqID, v.ret)
	case addSelfTag:
		// Lines 18-20, self-delay path.
		r.addToQueue(ctx, v.entry)
	case executeTag:
		// Lines 21-29: execute every entry with timestamp ≤ this one's.
		r.drainUpTo(ctx, v.entry.ts)
	default:
		panic(fmt.Sprintf("core: unexpected timer tag %T", tag))
	}
}

// addToQueue inserts a mutator into To_Execute and arms its u+ε execute
// timer (lines 18-20).
func (r *Replica) addToQueue(ctx sim.Context, entry *pendingOp) {
	entry.execTimer = ctx.SetTimer(r.timers.ExecuteWait, executeTag{entry: entry})
	r.queue.Add(entry)
}

// drainUpTo executes every queued mutator with timestamp ≤ ts in
// timestamp order, canceling their execute timers, and responds for own
// mixed operations.
func (r *Replica) drainUpTo(ctx sim.Context, ts Timestamp) {
	for {
		min := r.queue.Min()
		if min == nil || !min.ts.LessEq(ts) {
			return
		}
		entry := r.queue.ExtractMin()
		ctx.CancelTimer(entry.execTimer)
		ret := r.executeLocally(entry.op, entry.arg)
		if entry.respondSeq >= 0 {
			ctx.Respond(entry.respondSeq, ret)
		}
	}
}

// speculativeRead computes a pure accessor's response from the committed
// state extended (in timestamp order, without committing) with every
// queued mutator whose timestamp is at most ts. Because states are
// immutable this costs one fold over the pending entries and leaves the
// replica untouched.
func (r *Replica) speculativeRead(ts Timestamp, op string, arg spec.Value) spec.Value {
	pending := make([]*pendingOp, 0, len(r.queue.items))
	for _, e := range r.queue.items {
		if e.ts.LessEq(ts) {
			pending = append(pending, e)
		}
	}
	// Sort by timestamp (the heap slice is not fully sorted).
	for i := 1; i < len(pending); i++ {
		for j := i; j > 0 && pending[j].ts.Less(pending[j-1].ts); j-- {
			pending[j], pending[j-1] = pending[j-1], pending[j]
		}
	}
	view := r.state
	for _, e := range pending {
		_, view = view.Apply(e.op, e.arg)
	}
	ret, _ := view.Apply(op, arg)
	return ret
}

// executeLocally applies the operation to the local replica state and
// returns the legal response (Algorithm 1 lines 30-33).
func (r *Replica) executeLocally(op string, arg spec.Value) spec.Value {
	ret, next := r.state.Apply(op, arg)
	r.state = next
	if r.KeepHistory {
		r.history = append(r.history, spec.Instance{Op: op, Arg: arg, Ret: ret})
	}
	return ret
}
