package core

import (
	"fmt"
	"math/rand"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// TestFuzzLinearizability sweeps randomized configurations — process
// counts, parameters, networks, clock offsets, data types, X values and
// workloads — asserting on every run that Algorithm 1 (corrected timers)
// is complete, admissible, linearizable, convergent, and within its
// class latency bounds. This is the broad safety net behind the targeted
// unit tests.
func TestFuzzLinearizability(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	typeNames := adt.Names()
	rng := rand.New(rand.NewSource(20140519)) // IPDPS'14 week
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(4)
		d := simtime.Duration(600 + rng.Intn(10)*60)
		u := simtime.Duration(rng.Intn(int(d)/60)+1) * 60
		eps := simtime.OptimalEpsilon(n, u)
		x := simtime.Duration(0)
		if d > eps {
			x = simtime.Duration(rng.Int63n(int64(d-eps) + 1))
		}
		p := simtime.Params{N: n, D: d, U: u, Epsilon: eps, X: x}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: bad params %+v: %v", trial, p, err)
		}
		typeName := typeNames[rng.Intn(len(typeNames))]
		var net sim.Network
		switch rng.Intn(4) {
		case 0:
			net = sim.UniformNetwork{D: p.D}
		case 1:
			net = sim.UniformNetwork{D: p.MinDelay()}
		case 2:
			net = sim.NewRandomNetwork(p.D, p.U, rng.Int63())
		default:
			net = sim.AdversarialNetwork{D: p.D, U: p.U, N: n}
		}
		var offsets []simtime.Duration
		switch rng.Intn(4) {
		case 0:
			offsets = sim.ZeroOffsets(n)
		case 1:
			offsets = sim.SpreadOffsets(n, eps)
		case 2:
			offsets = sim.AlternatingOffsets(n, eps)
		default:
			offsets = sim.RandomOffsets(n, eps, rng.Int63())
		}

		label := fmt.Sprintf("trial %d: %s n=%d d=%v u=%v ε=%v X=%v %T", trial, typeName, n, d, u, eps, x, net)
		c := newCluster(t, typeName, p, offsets, net, DefaultTimers(p))
		dt := c.dt
		ops := dt.Ops()
		counts := make([]int, n)
		perProc := 3 + rng.Intn(3)
		c.eng.OnRespond = func(rec sim.OpRecord) {
			counts[rec.Proc]++
			if counts[rec.Proc] < perProc {
				gap := simtime.Duration(rng.Intn(int(d)))
				op := ops[rng.Intn(len(ops))]
				c.eng.InvokeAt(rec.Proc, rec.RespondTime.Add(gap), op.Name, op.Args[rng.Intn(len(op.Args))])
			}
		}
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			c.eng.InvokeAt(sim.ProcID(i), simtime.Time(rng.Intn(int(d))), op.Name, op.Args[rng.Intn(len(op.Args))])
		}
		tr := c.eng.Run()
		if err := tr.CheckComplete(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := tr.CheckAdmissible(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !lincheck.CheckTrace(dt, tr).Linearizable {
			t.Fatalf("%s: run not linearizable\nops: %+v", label, tr.Ops)
		}
		fp := c.replicas[0].StateFingerprint()
		for i, r := range c.replicas {
			if r.StateFingerprint() != fp {
				t.Fatalf("%s: replica %d diverged", label, i)
			}
		}
		classes := classesFor(t, typeName)
		for _, op := range tr.Ops {
			var bound simtime.Duration
			switch classes[op.Op] {
			case classify.PureAccessor:
				bound = p.D - p.X + p.Epsilon
			case classify.PureMutator:
				bound = p.X + p.Epsilon
			default:
				bound = p.D + p.Epsilon
			}
			if op.Latency() > bound {
				t.Fatalf("%s: %s latency %v exceeds class bound %v", label, op.Op, op.Latency(), bound)
			}
		}
	}
}
