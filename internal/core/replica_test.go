package core

import (
	"math/rand"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// classCache caches classification per data type.
var classCache = map[string]map[string]classify.Class{}

func classesFor(t testing.TB, name string) map[string]classify.Class {
	if c, ok := classCache[name]; ok {
		return c
	}
	dt, err := adt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	c := classify.Classify(dt, classify.DefaultConfig()).Classes()
	classCache[name] = c
	return c
}

// cluster bundles an engine with its replicas for assertions.
type cluster struct {
	eng      *sim.Engine
	replicas []*Replica
	dt       spec.DataType
}

// newCluster builds n Algorithm 1 replicas of the named type on the given
// network and offsets.
func newCluster(t testing.TB, name string, p simtime.Params, offsets []simtime.Duration, net sim.Network, timers Timers) *cluster {
	t.Helper()
	dt, err := adt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	classes := classesFor(t, name)
	replicas := make([]*Replica, p.N)
	nodes := make([]sim.Node, p.N)
	for i := range nodes {
		replicas[i] = NewReplica(dt, classes, timers)
		nodes[i] = replicas[i]
	}
	eng, err := sim.NewEngine(p, offsets, net, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return &cluster{eng: eng, replicas: replicas, dt: dt}
}

// checkRun runs to quiescence and asserts completeness, admissibility,
// linearizability and replica convergence.
func (c *cluster) checkRun(t *testing.T) *sim.Trace {
	t.Helper()
	tr := c.eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatalf("incomplete run: %v", err)
	}
	if err := tr.CheckAdmissible(); err != nil {
		t.Fatalf("inadmissible run: %v", err)
	}
	res := lincheck.CheckTrace(c.dt, tr)
	if !res.Linearizable {
		t.Fatalf("run not linearizable; ops: %+v", tr.Ops)
	}
	fp := c.replicas[0].StateFingerprint()
	for i, r := range c.replicas {
		if r.StateFingerprint() != fp {
			t.Fatalf("replica %d state %q differs from replica 0 state %q", i, r.StateFingerprint(), fp)
		}
	}
	return tr
}

func params5() simtime.Params {
	return simtime.Params{N: 5, D: 100, U: 40, Epsilon: 30, X: 20}
}

func TestTimestampOrdering(t *testing.T) {
	a := Timestamp{Time: 5, Proc: 1}
	b := Timestamp{Time: 5, Proc: 2}
	c := Timestamp{Time: 6, Proc: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Error("lexicographic order wrong")
	}
	if b.Less(a) || !a.LessEq(a) || !a.LessEq(b) || b.LessEq(a) {
		t.Error("LessEq wrong")
	}
	if a.String() == "" {
		t.Error("empty timestamp string")
	}
}

func TestDefaultTimers(t *testing.T) {
	p := params5()
	tm := DefaultTimers(p)
	if tm.AOPRespond != 110 { // d-X+ε (corrected)
		t.Errorf("AOPRespond = %v, want 110", tm.AOPRespond)
	}
	if paper := PaperTimers(p); paper.AOPRespond != 80 { // d-X (literal)
		t.Errorf("paper AOPRespond = %v, want 80", paper.AOPRespond)
	}
	if tm.AOPBackdate != 20 { // X
		t.Errorf("AOPBackdate = %v, want 20", tm.AOPBackdate)
	}
	if tm.MOPRespond != 50 { // X+ε
		t.Errorf("MOPRespond = %v, want 50", tm.MOPRespond)
	}
	if tm.AddSelf != 60 { // d-u
		t.Errorf("AddSelf = %v, want 60", tm.AddSelf)
	}
	if tm.ExecuteWait != 70 { // u+ε
		t.Errorf("ExecuteWait = %v, want 70", tm.ExecuteWait)
	}
}

// TestLemma4ExactLatencies: under uniform delay d and zero skew, every
// class responds exactly per Lemma 4 with the corrected accessor wait:
// AOP = d-X+ε, MOP = X+ε, OOP = d+ε.
func TestLemma4ExactLatencies(t *testing.T) {
	p := params5()
	c := newCluster(t, "queue", p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, DefaultTimers(p))
	c.eng.InvokeAt(0, 0, adt.OpEnqueue, 7)    // MOP
	c.eng.InvokeAt(1, 5, adt.OpPeek, nil)     // AOP
	c.eng.InvokeAt(2, 10, adt.OpDequeue, nil) // OOP
	tr := c.checkRun(t)
	for _, op := range tr.Ops {
		var want simtime.Duration
		switch op.Op {
		case adt.OpEnqueue:
			want = p.X + p.Epsilon
		case adt.OpPeek:
			want = p.D - p.X + p.Epsilon
		case adt.OpDequeue:
			want = p.D + p.Epsilon
		}
		if op.Latency() != want {
			t.Errorf("%s latency = %v, want %v", op.Op, op.Latency(), want)
		}
	}
}

// TestLatencyUpperBoundsAllConfigs: latencies never exceed the Lemma 4
// values under any admissible delays and skews.
func TestLatencyUpperBoundsAllConfigs(t *testing.T) {
	p := params5()
	networks := map[string]sim.Network{
		"uniform-max": sim.UniformNetwork{D: p.D},
		"uniform-min": sim.UniformNetwork{D: p.MinDelay()},
		"random":      sim.NewRandomNetwork(p.D, p.U, 99),
		"adversarial": sim.AdversarialNetwork{D: p.D, U: p.U, N: p.N},
	}
	offsets := map[string][]simtime.Duration{
		"zero":        sim.ZeroOffsets(p.N),
		"spread":      sim.SpreadOffsets(p.N, p.Epsilon),
		"alternating": sim.AlternatingOffsets(p.N, p.Epsilon),
	}
	for netName, net := range networks {
		for offName, offs := range offsets {
			c := newCluster(t, "queue", p, offs, net, DefaultTimers(p))
			tm := simtime.Time(0)
			for i := 0; i < 4; i++ {
				c.eng.InvokeAt(sim.ProcID(i%p.N), tm, adt.OpEnqueue, i)
				tm = tm.Add(7)
			}
			c.eng.InvokeAt(4, tm.Add(200), adt.OpDequeue, nil)
			c.eng.InvokeAt(3, tm.Add(500), adt.OpPeek, nil)
			tr := c.checkRun(t)
			for _, op := range tr.Ops {
				var bound simtime.Duration
				switch op.Op {
				case adt.OpEnqueue:
					bound = p.X + p.Epsilon
				case adt.OpPeek:
					bound = p.D - p.X + p.Epsilon
				case adt.OpDequeue:
					bound = p.D + p.Epsilon
				}
				if op.Latency() > bound {
					t.Errorf("%s/%s: %s latency %v exceeds bound %v",
						netName, offName, op.Op, op.Latency(), bound)
				}
			}
		}
	}
}

// TestConcurrentMutatorsSameOrder: concurrent mutators from every process
// are executed in the same (timestamp) order everywhere.
func TestConcurrentMutatorsSameOrder(t *testing.T) {
	p := params5()
	c := newCluster(t, "log", p, sim.SpreadOffsets(p.N, p.Epsilon),
		sim.AdversarialNetwork{D: p.D, U: p.U, N: p.N}, DefaultTimers(p))
	for i := 0; i < p.N; i++ {
		c.eng.InvokeAt(sim.ProcID(i), simtime.Time(i), adt.OpAppend, 100+i)
	}
	c.checkRun(t)
}

// TestMixedWorkloadsAcrossTypes: randomized closed-loop workloads on every
// data type stay linearizable and convergent.
func TestMixedWorkloadsAcrossTypes(t *testing.T) {
	for _, name := range adt.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := simtime.Params{N: 3, D: 100, U: 40, Epsilon: 20, X: 20}
			dt, _ := adt.Lookup(name)
			rng := rand.New(rand.NewSource(17))
			c := newCluster(t, name, p, sim.SpreadOffsets(p.N, p.Epsilon),
				sim.NewRandomNetwork(p.D, p.U, 23), DefaultTimers(p))
			ops := dt.Ops()
			counts := make([]int, p.N)
			var invokeRandom func(proc sim.ProcID, at simtime.Time)
			invokeRandom = func(proc sim.ProcID, at simtime.Time) {
				op := ops[rng.Intn(len(ops))]
				arg := op.Args[rng.Intn(len(op.Args))]
				c.eng.InvokeAt(proc, at, op.Name, arg)
			}
			c.eng.OnRespond = func(rec sim.OpRecord) {
				counts[rec.Proc]++
				if counts[rec.Proc] < 6 {
					invokeRandom(rec.Proc, rec.RespondTime.Add(simtime.Duration(rng.Intn(20))))
				}
			}
			for i := 0; i < p.N; i++ {
				invokeRandom(sim.ProcID(i), simtime.Time(i*3))
			}
			c.checkRun(t)
		})
	}
}

// TestAccessorSeesCompletedMutator: a pure accessor invoked after a pure
// mutator responded must observe it (the real-time order requirement that
// drives the d-X wait).
func TestAccessorSeesCompletedMutator(t *testing.T) {
	p := params5()
	// Worst case: accessor's process clock behind, mutator's ahead,
	// maximum delay between them.
	offsets := make([]simtime.Duration, p.N)
	offsets[0] = p.Epsilon // mutator invoker ahead
	c := newCluster(t, "register", p, offsets, sim.UniformNetwork{D: p.D}, DefaultTimers(p))
	c.eng.InvokeAt(0, 0, adt.OpWrite, 42) // responds at X+ε = 50
	var readRet any
	c.eng.OnRespond = func(rec sim.OpRecord) {
		if rec.Op == adt.OpRead {
			readRet = rec.Ret
		}
	}
	c.eng.InvokeAt(1, 51, adt.OpRead, nil) // invoked just after the write responds
	c.checkRun(t)
	if !spec.ValuesEqual(readRet, 42) {
		t.Errorf("read returned %v, want 42 (completed write invisible)", readRet)
	}
}

// TestSequentialSemantics: a single-process sequential workload behaves
// exactly like the sequential data type.
func TestSequentialSemantics(t *testing.T) {
	p := simtime.Params{N: 3, D: 100, U: 40, Epsilon: 20, X: 20}
	c := newCluster(t, "stack", p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, DefaultTimers(p))
	type step struct {
		op   string
		arg  spec.Value
		want spec.Value
	}
	script := []step{
		{adt.OpPush, 1, nil},
		{adt.OpPush, 2, nil},
		{adt.OpPeek, nil, 2},
		{adt.OpPop, nil, 2},
		{adt.OpPop, nil, 1},
		{adt.OpPop, nil, adt.EmptyMarker},
	}
	i := 0
	got := make([]spec.Value, 0, len(script))
	var next func(at simtime.Time)
	next = func(at simtime.Time) {
		if i >= len(script) {
			return
		}
		c.eng.InvokeAt(0, at, script[i].op, script[i].arg)
		i++
	}
	c.eng.OnRespond = func(rec sim.OpRecord) {
		got = append(got, rec.Ret)
		next(rec.RespondTime.Add(1))
	}
	next(0)
	c.checkRun(t)
	for j, s := range script {
		if !spec.ValuesEqual(got[j], s.want) {
			t.Errorf("step %d (%s) returned %v, want %v", j, s.op, got[j], s.want)
		}
	}
}

// TestUnknownOpTreatedAsMixed: operations missing from the class map fall
// back to OOP handling, which is correct for any operation.
func TestUnknownOpTreatedAsMixed(t *testing.T) {
	p := params5()
	dt, _ := adt.Lookup("register")
	replicas := make([]*Replica, p.N)
	nodes := make([]sim.Node, p.N)
	for i := range nodes {
		replicas[i] = NewReplica(dt, map[string]classify.Class{}, DefaultTimers(p)) // empty map
		nodes[i] = replicas[i]
	}
	eng, err := sim.NewEngine(p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, adt.OpWrite, 9)
	eng.InvokeAt(1, 300, adt.OpRead, nil)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	for _, op := range tr.Ops {
		if op.Latency() != p.D+p.Epsilon {
			t.Errorf("%s latency %v, want OOP latency %v", op.Op, op.Latency(), p.D+p.Epsilon)
		}
	}
	if !lincheck.CheckTrace(dt, tr).Linearizable {
		t.Error("all-OOP fallback must stay linearizable")
	}
}

// TestKeepHistoryRecordsTimestampOrder: with history enabled, every
// replica records the same mutator sequence.
func TestKeepHistoryRecordsTimestampOrder(t *testing.T) {
	p := params5()
	c := newCluster(t, "log", p, sim.SpreadOffsets(p.N, p.Epsilon),
		sim.NewRandomNetwork(p.D, p.U, 5), DefaultTimers(p))
	for _, r := range c.replicas {
		r.KeepHistory = true
	}
	for i := 0; i < p.N; i++ {
		c.eng.InvokeAt(sim.ProcID(i), simtime.Time(i*2), adt.OpAppend, i)
	}
	c.checkRun(t)
	h0 := c.replicas[0].History()
	if len(h0) != p.N {
		t.Fatalf("replica 0 executed %d ops, want %d", len(h0), p.N)
	}
	for i, r := range c.replicas {
		h := r.History()
		if len(h) != len(h0) {
			t.Fatalf("replica %d history length %d != %d", i, len(h), len(h0))
		}
		for j := range h {
			if h[j].Op != h0[j].Op || !spec.ValuesEqual(h[j].Arg, h0[j].Arg) {
				t.Fatalf("replica %d history differs at %d: %v vs %v", i, j, h[j], h0[j])
			}
		}
	}
}

// --- Failure-injection ablations (DESIGN.md §5) ---

// aopAnomalyScenario builds the 3-process execution that defeats the
// paper's d-X pure-accessor wait: enqueue(1) from p1 with the smaller
// timestamp arrives at p0 only at time 100, while enqueue(2) from p2 with
// a larger timestamp arrives at 60; p0's peek drains in between (real 90
// with the paper's timers) and observes a non-prefix of the timestamp
// order.
func aopAnomalyScenario(t *testing.T, timers func(simtime.Params) Timers, literal bool) (bool, bool) {
	t.Helper()
	p := simtime.Params{N: 3, D: 100, U: 40, Epsilon: 30, X: 20}
	offsets := []simtime.Duration{30, 0, 0} // p0's clock ahead by ε
	net := sim.NewPairwiseNetwork(3, p.D)
	net.Set(2, 0, p.MinDelay()) // p2's announcement arrives early
	net.Set(2, 1, p.MinDelay())
	c := newCluster(t, "queue", p, offsets, net, timers(p))
	for _, r := range c.replicas {
		r.LiteralAOPDrain = literal
	}
	c.eng.InvokeAt(1, 0, adt.OpEnqueue, 1) // ts (0, p1): first in timestamp order
	c.eng.InvokeAt(2, 0, adt.OpEnqueue, 2) // ts (0, p2): second
	// p0's peek: invoked at real 10 (local 40, ts (20, p0)); with the
	// paper's timers its drain at real 90 sees only enqueue(2).
	c.eng.InvokeAt(0, 10, adt.OpPeek, nil)
	// Post-quiescence probes from two different replicas.
	c.eng.InvokeAt(0, 400, adt.OpPeek, nil)
	c.eng.InvokeAt(1, 700, adt.OpPeek, nil)
	tr := c.eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	lin := lincheck.CheckTrace(c.dt, tr).Linearizable
	converged := c.replicas[0].StateFingerprint() == c.replicas[1].StateFingerprint() &&
		c.replicas[1].StateFingerprint() == c.replicas[2].StateFingerprint()
	return lin, converged
}

// TestPaperAOPWaitAnomaly: with the paper's literal d-X accessor wait the
// scenario is not linearizable (the accessor returns a value inconsistent
// with every linearization), even with the speculative read keeping
// replica states convergent. The corrected d-X+ε wait fixes it.
func TestPaperAOPWaitAnomaly(t *testing.T) {
	lin, converged := aopAnomalyScenario(t, PaperTimers, false)
	if lin {
		t.Error("paper's d-X accessor wait should break linearizability in this scenario")
	}
	if !converged {
		t.Error("speculative read should keep replicas convergent")
	}
	lin, converged = aopAnomalyScenario(t, DefaultTimers, false)
	if !lin || !converged {
		t.Errorf("corrected d-X+ε wait should be correct: linearizable=%v converged=%v", lin, converged)
	}
}

// TestLiteralAOPDrainDiverges: the paper's pseudocode additionally commits
// the drained mutators (lines 5-7), which makes replica states themselves
// diverge in the same scenario. With the corrected wait the drained set is
// a stable prefix, so even the literal commit is safe.
func TestLiteralAOPDrainDiverges(t *testing.T) {
	lin, converged := aopAnomalyScenario(t, PaperTimers, true)
	if converged {
		t.Error("literal AOP drain should diverge replica states in this scenario")
	}
	if lin {
		t.Error("literal AOP drain should break linearizability in this scenario")
	}
	lin, converged = aopAnomalyScenario(t, DefaultTimers, true)
	if !lin || !converged {
		t.Errorf("corrected wait makes even the literal commit safe: linearizable=%v converged=%v", lin, converged)
	}
}

// TestShortExecuteWaitBreaks: shrinking the u+ε stabilization wait lets
// replicas execute concurrent mutators in different orders.
func TestShortExecuteWaitBreaks(t *testing.T) {
	run := func(wait simtime.Duration) (bool, bool) {
		p := simtime.Params{N: 3, D: 100, U: 40, Epsilon: 0, X: 20}
		timers := DefaultTimers(p)
		timers.ExecuteWait = wait
		net := sim.NewPairwiseNetwork(3, p.D)
		net.Set(1, 0, p.MinDelay())
		net.Set(1, 2, p.MinDelay())
		c := newCluster(t, "queue", p, sim.ZeroOffsets(3), net, timers)
		c.eng.InvokeAt(0, 0, adt.OpEnqueue, 1) // ts (0, p0); reaches p1 at 100
		c.eng.InvokeAt(1, 5, adt.OpEnqueue, 2) // ts (5, p1); p1 adds self at 65
		c.eng.InvokeAt(0, 400, adt.OpPeek, nil)
		c.eng.InvokeAt(1, 700, adt.OpPeek, nil)
		tr := c.eng.Run()
		if err := tr.CheckComplete(); err != nil {
			t.Fatal(err)
		}
		lin := lincheck.CheckTrace(c.dt, tr).Linearizable
		converged := c.replicas[0].StateFingerprint() == c.replicas[1].StateFingerprint()
		return lin, converged
	}
	// Wait of 20 < u+ε = 40: p1 executes its own enqueue at 85, before
	// p0's (lower-timestamped) announcement arrives at 100.
	if lin, converged := run(20); lin || converged {
		t.Errorf("short execute wait should break: linearizable=%v converged=%v", lin, converged)
	}
	if lin, converged := run(40); !lin || !converged {
		t.Errorf("full u+ε wait should be correct: linearizable=%v converged=%v", lin, converged)
	}
}

// TestMissingSelfDelayBreaks: removing the d-u self-delay lets a mixed
// operation execute before a completed mutator from another process has
// arrived, returning a stale value.
func TestMissingSelfDelayBreaks(t *testing.T) {
	run := func(addSelf simtime.Duration) bool {
		p := simtime.Params{N: 3, D: 100, U: 10, Epsilon: 5, X: 20}
		timers := DefaultTimers(p)
		timers.AddSelf = addSelf
		c := newCluster(t, "queue", p, sim.ZeroOffsets(3), sim.UniformNetwork{D: p.D}, timers)
		c.eng.InvokeAt(1, 0, adt.OpEnqueue, 7) // responds at X+ε = 25
		// Dequeue invoked after the enqueue completed; must return 7.
		c.eng.InvokeAt(0, 30, adt.OpDequeue, nil)
		tr := c.eng.Run()
		if err := tr.CheckComplete(); err != nil {
			t.Fatal(err)
		}
		return lincheck.CheckTrace(c.dt, tr).Linearizable
	}
	if run(0) {
		t.Error("missing self-delay should break linearizability")
	}
	if !run(100 - 10) { // d-u
		t.Error("full self-delay should be correct")
	}
}
