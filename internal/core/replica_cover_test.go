package core

import (
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// TestNewReplicasBuildsDistinctNodes pins the NewReplicas contract: n
// independently constructed replicas, each starting from the data type's
// initial state. Sharing a Replica between processes would make the
// simulated system trivially (and wrongly) convergent.
func TestNewReplicasBuildsDistinctNodes(t *testing.T) {
	dt := adt.NewQueue()
	nodes := NewReplicas(3, dt, nil, Timers{})
	if len(nodes) != 3 {
		t.Fatalf("NewReplicas(3) returned %d nodes", len(nodes))
	}
	seen := map[*Replica]bool{}
	for i, n := range nodes {
		r, ok := n.(*Replica)
		if !ok {
			t.Fatalf("node %d is %T, want *Replica", i, n)
		}
		if seen[r] {
			t.Fatalf("node %d shares a Replica instance with an earlier node", i)
		}
		seen[r] = true
		if got, want := r.StateFingerprint(), dt.Initial().Fingerprint(); got != want {
			t.Errorf("node %d initial fingerprint %q, want %q", i, got, want)
		}
		r.Init(nil) // Init is a no-op; it must tolerate any context
	}
}

// TestOnMessageRejectsForeignPayload pins the fail-fast contract: every
// broadcast in Algorithm 1 is a MutatorMsg, so anything else reaching a
// replica is a harness bug and must panic rather than be dropped.
func TestOnMessageRejectsForeignPayload(t *testing.T) {
	r := NewReplica(adt.NewQueue(), nil, Timers{})
	defer func() {
		msg := recover()
		if msg == nil {
			t.Fatal("OnMessage accepted a non-MutatorMsg payload")
		}
		if s, ok := msg.(string); !ok || !strings.Contains(s, "unexpected message") {
			t.Errorf("panic message %v, want to mention the unexpected message", msg)
		}
	}()
	r.OnMessage(nil, sim.ProcID(0), "not a mutator announcement")
}

// TestOnTimerRejectsForeignTag pins the same fail-fast contract for timer
// tags: the replica arms only its own tag types, so an unknown tag means
// timer bookkeeping is corrupted.
func TestOnTimerRejectsForeignTag(t *testing.T) {
	r := NewReplica(adt.NewQueue(), nil, Timers{})
	defer func() {
		msg := recover()
		if msg == nil {
			t.Fatal("OnTimer accepted an unknown tag")
		}
		if s, ok := msg.(string); !ok || !strings.Contains(s, "unexpected timer tag") {
			t.Errorf("panic message %v, want to mention the unexpected tag", msg)
		}
	}()
	r.OnTimer(nil, struct{}{})
}

// TestSpeculativeReadSortsPendingEntries pins the one subtle step of the
// speculative accessor path: the To_Execute heap slice is only
// heap-ordered, not sorted, so the speculative view must re-sort the
// selected entries by timestamp before folding them over the committed
// state. The entries below are pushed so that the raw heap slice order
// (10, 30, 20) differs from timestamp order (10, 20, 30); on a stack the
// top — and hence a pop's response — depends on exactly that order.
func TestSpeculativeReadSortsPendingEntries(t *testing.T) {
	dt := adt.NewStack()
	r := NewReplica(dt, nil, Timers{})
	at := func(v int64) Timestamp { return Timestamp{Time: simtime.Time(v), Proc: 0} }
	for _, e := range []struct {
		arg int
		ts  int64
	}{{1, 10}, {2, 30}, {3, 20}} {
		r.queue.Add(&pendingOp{op: adt.OpPush, arg: e.arg, ts: at(e.ts), respondSeq: -1})
	}
	// Precondition for the test to mean anything: the heap slice really is
	// out of timestamp order after these pushes.
	if r.queue.items[1].ts.Time != 30 || r.queue.items[2].ts.Time != 20 {
		t.Fatalf("heap slice unexpectedly sorted: %v, %v, %v",
			r.queue.items[0].ts, r.queue.items[1].ts, r.queue.items[2].ts)
	}
	before := r.StateFingerprint()

	// All three pushes are ≤ ts=40; in timestamp order the last push is
	// arg 2 (ts=30), so that is the top a speculative pop must see.
	if got := r.speculativeRead(at(40), adt.OpPop, nil); !spec.ValuesEqual(got, 2) {
		t.Errorf("speculative pop over ts order (1,3,2) = %v, want 2", got)
	}
	// A back-dated accessor at ts=15 sees only the ts=10 push.
	if got := r.speculativeRead(at(15), adt.OpPop, nil); !spec.ValuesEqual(got, 1) {
		t.Errorf("speculative pop at ts=15 = %v, want 1", got)
	}
	// The read is speculative: committed state and queue are untouched.
	if got := r.StateFingerprint(); got != before {
		t.Errorf("speculativeRead mutated the replica state: %q -> %q", before, got)
	}
	if len(r.queue.items) != 3 {
		t.Errorf("speculativeRead consumed queue entries: %d left, want 3", len(r.queue.items))
	}
}
