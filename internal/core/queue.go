package core

import (
	"container/heap"

	"lintime/internal/sim"
	"lintime/internal/spec"
)

// pendingOp is a mutator waiting in the To_Execute queue for its execute
// timer, in the sense of Algorithm 1.
type pendingOp struct {
	op  string
	arg spec.Value
	ts  Timestamp

	// execTimer is this entry's own u+ε execute timer, canceled when the
	// entry is drained by another entry's timer (Algorithm 1 line 25).
	execTimer sim.TimerID
	// respondSeq is the invocation to answer when this entry executes
	// (own OOP entries only); -1 otherwise.
	respondSeq int64

	index int // heap bookkeeping
}

// toExecuteQueue is the priority queue of pending mutators, ordered by
// timestamp (lowest first), as required for every replica to execute
// mutators in the same total order.
type toExecuteQueue struct {
	items []*pendingOp
}

func (q *toExecuteQueue) Len() int { return len(q.items) }
func (q *toExecuteQueue) Less(i, j int) bool {
	return q.items[i].ts.Less(q.items[j].ts)
}
func (q *toExecuteQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}
func (q *toExecuteQueue) Push(x any) {
	item := x.(*pendingOp)
	item.index = len(q.items)
	q.items = append(q.items, item)
}
func (q *toExecuteQueue) Pop() any {
	old := q.items
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return item
}

// Add inserts a pending mutator.
func (q *toExecuteQueue) Add(p *pendingOp) { heap.Push(q, p) }

// Min returns the entry with the smallest timestamp without removing it,
// or nil if the queue is empty.
func (q *toExecuteQueue) Min() *pendingOp {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// ExtractMin removes and returns the entry with the smallest timestamp.
func (q *toExecuteQueue) ExtractMin() *pendingOp {
	return heap.Pop(q).(*pendingOp)
}
