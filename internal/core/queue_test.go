package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lintime/internal/sim"
	"lintime/internal/simtime"
)

func TestToExecuteQueueOrdersByTimestamp(t *testing.T) {
	f := func(times []int16, procs []uint8) bool {
		var q toExecuteQueue
		n := len(times)
		if len(procs) < n {
			n = len(procs)
		}
		for i := 0; i < n; i++ {
			q.Add(&pendingOp{ts: Timestamp{
				Time: simtime.Time(times[i]),
				Proc: sim.ProcID(procs[i] % 8),
			}})
		}
		prev := Timestamp{Time: simtime.NegInfinity}
		for q.Len() > 0 {
			min := q.Min()
			got := q.ExtractMin()
			if got != min {
				return false
			}
			if got.ts.Less(prev) {
				return false
			}
			prev = got.ts
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToExecuteQueueEmptyMin(t *testing.T) {
	var q toExecuteQueue
	if q.Min() != nil {
		t.Error("empty queue Min should be nil")
	}
}

func TestToExecuteQueueInterleavedAddExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var q toExecuteQueue
	live := 0
	var lastExtracted Timestamp
	haveLast := false
	for step := 0; step < 2000; step++ {
		if live == 0 || rng.Intn(2) == 0 {
			q.Add(&pendingOp{ts: Timestamp{
				Time: simtime.Time(rng.Intn(1000)),
				Proc: sim.ProcID(rng.Intn(5)),
			}})
			live++
			continue
		}
		got := q.ExtractMin()
		live--
		// Monotonicity holds only among extractions with no interleaved
		// smaller additions; instead verify the heap invariant directly:
		// the extracted element is ≤ the new minimum.
		if q.Len() > 0 && q.Min().ts.Less(got.ts) {
			t.Fatalf("step %d: extracted %v but %v remained", step, got.ts, q.Min().ts)
		}
		lastExtracted, haveLast = got.ts, true
	}
	_ = lastExtracted
	_ = haveLast
}

func TestTimestampTotalOrder(t *testing.T) {
	f := func(t1, t2 int16, p1, p2 uint8) bool {
		a := Timestamp{Time: simtime.Time(t1), Proc: sim.ProcID(p1)}
		b := Timestamp{Time: simtime.Time(t2), Proc: sim.ProcID(p2)}
		// Trichotomy: exactly one of a<b, b<a, a==b.
		less, greater, equal := a.Less(b), b.Less(a), a == b
		count := 0
		for _, v := range []bool{less, greater, equal} {
			if v {
				count++
			}
		}
		if count != 1 {
			return false
		}
		// LessEq consistency.
		return a.LessEq(b) == (less || equal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
