// Package core implements Algorithm 1 of the paper: a linearizable
// implementation of an arbitrary deterministic data type in a
// message-passing system with delays in [d-u, d] and clock skew at most ε.
//
// Every process keeps a local replica of the object. Operations are
// stamped with (local invocation time, process id) and mutators are
// executed at every replica in timestamp order; pure accessors execute
// locally without being broadcast. The class of each operation decides its
// timer discipline:
//
//   - pure accessor (AOP): respond after d-X, with timestamp back-dated by
//     X so mutators that responded before the accessor's invocation order
//     before it;
//   - pure mutator (MOP): broadcast, respond after X+ε;
//   - mixed (OOP): broadcast, respond when executed locally, d+ε after
//     invocation.
//
// X ∈ [0, d-ε] trades accessor speed against mutator speed.
package core

import (
	"fmt"

	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// Timestamp orders operations: lexicographic on (local clock time of
// invocation, process id). Process ids make timestamps unique, so the
// order is total.
type Timestamp struct {
	Time simtime.Time
	Proc sim.ProcID
}

// Less reports whether t orders strictly before other.
func (t Timestamp) Less(other Timestamp) bool {
	if t.Time != other.Time {
		return t.Time < other.Time
	}
	return t.Proc < other.Proc
}

// LessEq reports whether t orders at or before other.
func (t Timestamp) LessEq(other Timestamp) bool { return !other.Less(t) }

// String renders the timestamp as (time, proc).
func (t Timestamp) String() string { return fmt.Sprintf("(%v,p%d)", t.Time, t.Proc) }
