package bmc

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/adversary"
	"lintime/internal/harness"
	"lintime/internal/simtime"
)

// TestFolkloreStronglyLinearizable is the exhaustive strong-
// linearizability sweep over both folklore baselines (ROADMAP item 5d).
// The checker decides an observation-level property: one prefix-
// preserving linearization over the client-visible event tree of each
// context's futures. Both backends fix every operation's linearization
// point at a single server-side event (execution-level strong
// linearizability by construction), and at n=2 the observation-level
// sweep confirms it exhaustively — the golden pin that total-order
// broadcast (and the central server) is strongly linearizable where
// Algorithm 1 and the ABD register are not.
//
// At n=3 the observation-level property is strictly stronger than the
// execution-level one, and the sweep quantifies the gap: two remote
// operations can be ordered inside the server while slow replies keep
// the observable prefixes of both orders identical, so no linearization
// function over client-visible prefixes can commit early enough.
// Exactly 16 of 234 two-op contexts per backend realize that shape; the
// pin is the tripwire for either the checker or the start-time
// enumeration drifting.
func TestFolkloreStronglyLinearizable(t *testing.T) {
	cases := []struct {
		n, maxOps  int
		strongViol int
	}{
		{2, 3, 0},  // golden: strongly linearizable, exhaustively
		{3, 2, 16}, // observation-level gap, quantified
	}
	for _, alg := range []string{harness.AlgCentral, harness.AlgSequencer} {
		for _, tc := range cases {
			rep, err := Verify(Config{
				Params: simtime.DefaultParams(tc.n),
				DT:     adt.NewQueue(),
				Target: adversary.Target{Algorithm: alg},
				MaxOps: tc.maxOps,
				Strong: true,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", alg, tc.n, err)
			}
			if !rep.OK {
				t.Fatalf("%s n=%d maxOps=%d violated: %+v", alg, tc.n, tc.maxOps, rep.Violations[0])
			}
			if rep.StrongChecked != rep.Contexts || rep.StrongViolations != tc.strongViol {
				t.Errorf("%s n=%d maxOps=%d: strong sweep checked %d/%d contexts, %d violations, want %d",
					alg, tc.n, tc.maxOps, rep.StrongChecked, rep.Contexts, rep.StrongViolations, tc.strongViol)
			}
			if rep.OffsetPatterns != 1 {
				t.Errorf("%s: offset axis did not collapse for a clock-free protocol (%d patterns)", alg, rep.OffsetPatterns)
			}
			t.Logf("%-9s n=%d maxOps=%d: %d contexts, %d runs, %d strong violations",
				alg, tc.n, tc.maxOps, rep.Contexts, rep.Runs, rep.StrongViolations)
		}
	}
}
