package bmc

import (
	"fmt"
	"io"
	"strings"

	"lintime/internal/adversary"
	"lintime/internal/diagram"
	"lintime/internal/harness"
	"lintime/internal/obs"
	"lintime/internal/quorum"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

var killsTotal = obs.Default.Counter("bmc_mutant_kills_total")

// Report is the machine-readable result of one exhaustive sweep.
type Report struct {
	Target         string         `json:"target"`
	Params         simtime.Params `json:"params"`
	MaxOps         int            `json:"max_ops"`
	Plans          int            `json:"plans"`
	OffsetPatterns int            `json:"offset_patterns"`
	// CrashPlacements is the size of the crash axis; reported only when
	// non-trivial (quorum targets with n >= 3).
	CrashPlacements int     `json:"crash_placements,omitempty"`
	Drops           []int64 `json:"drops,omitempty"` // drop augmentation, if any
	Contexts        int     `json:"contexts"`
	TotalRuns       int     `json:"total_runs"` // size of the space
	Runs            int     `json:"runs"`       // runs executed (== TotalRuns unless stopped early)
	Signatures      int     `json:"distinct_signatures"`
	Histories       int     `json:"distinct_histories"`
	OK              bool    `json:"ok"`
	Stopped         bool    `json:"stopped_early,omitempty"`

	ViolationsTotal int         `json:"violations_total"`
	Violations      []Violation `json:"violations,omitempty"` // first few, with schedules

	StrongChecked    int               `json:"strong_contexts_checked,omitempty"`
	StrongExplored   int               `json:"strong_tree_ops,omitempty"`
	StrongViolations int               `json:"strong_violations,omitempty"`
	StrongExamples   []StrongViolation `json:"strong_examples,omitempty"`
}

// WriteReport renders a sweep report as deterministic plain text,
// including a space-time diagram for each stored violation.
func WriteReport(w io.Writer, r *adversary.Runner, rep *Report) error {
	fmt.Fprintf(w, "target      %s on %s (bounded model check)\n", rep.Target, r.DT.Name())
	fmt.Fprintf(w, "params      n=%d d=%v u=%v eps=%v X=%v\n",
		rep.Params.N, rep.Params.D, rep.Params.U, rep.Params.Epsilon, rep.Params.X)
	if rep.CrashPlacements > 1 {
		fmt.Fprintf(w, "space       %d plans x %d offset patterns x %d crash placements = %d contexts, %d runs (max %d ops, delays in {d-u, d})\n",
			rep.Plans, rep.OffsetPatterns, rep.CrashPlacements, rep.Contexts, rep.TotalRuns, rep.MaxOps)
	} else {
		fmt.Fprintf(w, "space       %d plans x %d offset patterns = %d contexts, %d runs (max %d ops, delays in {d-u, d})\n",
			rep.Plans, rep.OffsetPatterns, rep.Contexts, rep.TotalRuns, rep.MaxOps)
	}
	executed := fmt.Sprintf("%d", rep.Runs)
	if rep.Stopped {
		executed += " (stopped early)"
	}
	fmt.Fprintf(w, "executed    %s\n", executed)
	fmt.Fprintf(w, "states      %d distinct event orderings, %d distinct histories\n", rep.Signatures, rep.Histories)
	fmt.Fprintf(w, "violations  %d\n", rep.ViolationsTotal)
	if rep.StrongChecked > 0 {
		fmt.Fprintf(w, "strong      %d contexts swept, %d without prefix-preserving linearization\n",
			rep.StrongChecked, rep.StrongViolations)
	}
	if rep.OK && rep.StrongViolations == 0 {
		fmt.Fprintf(w, "verdict     every enumerated schedule is linearizable, complete, and convergent\n")
	} else if rep.OK {
		fmt.Fprintf(w, "verdict     every enumerated schedule is linearizable, complete, and convergent;\n")
		fmt.Fprintf(w, "            %d contexts are linearizable in every future but not strongly linearizable\n", rep.StrongViolations)
	}
	for vi := range rep.Violations {
		v := &rep.Violations[vi]
		fmt.Fprintf(w, "\n--- violation %d: %s (context %d, delay code %d) ---\n",
			vi+1, v.Kind, v.Context, v.DelayCode)
		fmt.Fprint(w, v.Schedule.String())
		out, err := r.Run(v.Schedule)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "replayed violation: %s\n", out.Violation())
		fmt.Fprint(w, diagram.Render(out.Trace, diagram.Options{SuppressMessages: true, MaxRows: 40}))
	}
	return nil
}

// KillEntry is one row of the exhaustive mutant kill matrix.
type KillEntry struct {
	Mutant string `json:"mutant"`
	Desc   string `json:"desc"`
	Killed bool   `json:"killed"`
	Kind   string `json:"kind,omitempty"`
	Runs   int    `json:"runs"` // runs executed before the verdict
	// Space names the certificate space when the verdict came from a
	// targeted context rather than the shared sweep (quorum rows only).
	Space string `json:"space,omitempty"`
}

// KillMatrix sweeps every seeded mutant (and the corrected algorithm as
// a control) over the same bounded space, stopping each sweep at the
// first violating chunk. A mutant that survives has no counterexample
// anywhere in the space — a far stronger statement than a fuzzing miss.
// Quorum targets dispatch to the ABD mutant registry, where some rows
// run as targeted certificates instead — see quorumKillMatrix.
func KillMatrix(cfg Config) ([]KillEntry, error) {
	if cfg.Target.Algorithm == harness.AlgQuorum {
		return quorumKillMatrix(cfg)
	}
	targets := []adversary.Mutant{{Name: adversary.Correct}}
	targets = append(targets, adversary.Mutants()...)
	entries := make([]KillEntry, 0, len(targets))
	for _, m := range targets {
		c := cfg
		c.Target = adversary.Target{Algorithm: cfg.Target.Algorithm, Mutant: m.Name}
		c.StopEarly = true
		c.Strong = false
		rep, err := Verify(c)
		if err != nil {
			return nil, err
		}
		e := KillEntry{Mutant: m.Name, Desc: m.Desc, Killed: !rep.OK, Runs: rep.Runs}
		if e.Mutant == adversary.Correct {
			e.Mutant = "correct"
			e.Desc = "corrected Algorithm 1 (control)"
		}
		if e.Killed {
			killsTotal.Inc()
			e.Kind = rep.Violations[0].Kind
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// quorumCert pins a targeted kill certificate: one context of a small
// enumerated space whose delay vectors contain a counterexample for a
// mutant that provably cannot die in the shared sweep. At n=2 every
// write quorum covers all replicas, so sub-majority reads always see the
// latest committed write, and two reads querying the same two replicas
// can never invert — those mutants need n=3, and skip-writeback
// additionally needs real message loss to keep the propagate phase away
// from the second reader. stale-tiebreak needs four operations (two
// tying writes plus one probe read per writer) — a uniform 4-op sweep is
// astronomically large, the single context is not.
type quorumCert struct {
	n      int
	maxOps int
	drops  []int64
	space  string // provenance label for the report row
	match  func(p simtime.Params, sched adversary.Schedule) bool
}

// certPlanIs matches one process's plan by operation names and gaps
// (arguments are fixed by slot position and carry no information here).
func certPlanIs(ops []adversary.PlannedOp, want ...adversary.PlannedOp) bool {
	if len(ops) != len(want) {
		return false
	}
	for i := range want {
		if ops[i].Op != want[i].Op || ops[i].Gap != want[i].Gap {
			return false
		}
	}
	return true
}

func certOp(name string, gap simtime.Duration) adversary.PlannedOp {
	return adversary.PlannedOp{Op: name, Gap: gap}
}

// quorumCertificates maps mutant name to its targeted certificate.
var quorumCertificates = map[string]quorumCert{
	// A write commits at {writer, p1} while the propagate to the reader
	// is lost; the sub-majority read at the reader then answers from its
	// own stale replica strictly after the write responded.
	"sub-majority-read": {
		n: 3, maxOps: 2, drops: []int64{4},
		space: "n=3 targeted context, drop ordinal 4",
		match: func(p simtime.Params, sched adversary.Schedule) bool {
			late := 2*p.MinDelay() + p.D
			return len(sched.Crashes) == 0 &&
				certPlanIs(sched.Plans[0], certOp("read", late)) &&
				len(sched.Plans[1]) == 0 &&
				certPlanIs(sched.Plans[2], certOp("write", 0))
		},
	},
	// The whole propagate phase is lost, so only the writer holds the new
	// tag; an early read learns it from the writer's ack and — without
	// the write-back — leaves both other replicas stale, so a later read
	// completing against them inverts (new-old read inversion).
	"skip-writeback": {
		n: 3, maxOps: 3, drops: []int64{5, 6},
		space: "n=3 targeted context, drop ordinals 5,6",
		match: func(p simtime.Params, sched adversary.Schedule) bool {
			mid := p.MinDelay() / 2
			late := 2*p.MinDelay() + p.D
			return len(sched.Crashes) == 0 &&
				certPlanIs(sched.Plans[0], certOp("read", mid)) &&
				certPlanIs(sched.Plans[1], certOp("read", late)) &&
				certPlanIs(sched.Plans[2], certOp("write", 0))
		},
	},
	// Two concurrent writes draw the same timestamp and the TS-only order
	// keeps each incumbent: the replicas diverge silently, and one probe
	// read per writer observes both divergent values after both writes
	// completed — unlinearizable in any order.
	"stale-tiebreak": {
		n: 2, maxOps: 4,
		space: "n=2 4-op targeted context",
		match: func(p simtime.Params, sched adversary.Schedule) bool {
			return len(sched.Crashes) == 0 &&
				certPlanIs(sched.Plans[0], certOp("write", 0), certOp("read", 0)) &&
				certPlanIs(sched.Plans[1], certOp("write", 0), certOp("read", probeGap(p)))
		},
	},
}

// runQuorumCert exhausts the delay vectors of one certificate context.
// Codes run in descending order — the minimum-delay interleavings, where
// quorum counterexamples concentrate, come first — and stop at the first
// violation.
func runQuorumCert(cfg Config, m quorum.Mutant, cert quorumCert) (KillEntry, error) {
	p := simtime.Params{N: cert.n, D: cfg.Params.D, U: cfg.Params.U}
	c := Config{
		Params: p, DT: cfg.DT,
		Target:       adversary.Target{Algorithm: harness.AlgQuorum, Mutant: m.Name},
		MaxOps:       cert.maxOps,
		Drops:        cert.drops,
		CheckWorkers: cfg.CheckWorkers,
	}
	sp, err := NewSpace(c)
	if err != nil {
		return KillEntry{}, err
	}
	ctx := sp.FindContext(func(sched adversary.Schedule) bool { return cert.match(p, sched) })
	if ctx < 0 {
		return KillEntry{}, fmt.Errorf("bmc: certificate context for mutant %q is not in its enumerated space", m.Name)
	}
	runner := &adversary.Runner{
		Params: p, DT: cfg.DT, Target: c.Target,
		CheckWorkers: cfg.CheckWorkers, Trace: sim.TraceOps,
	}
	base, msgs := sp.context(ctx)
	e := KillEntry{Mutant: m.Name, Desc: m.Desc, Space: cert.space}
	for code := uint64(1)<<uint(msgs) - 1; ; code-- {
		sched := base
		sched.Delays = sp.delays(code, msgs)
		out, err := runner.Run(sched)
		if err != nil {
			return KillEntry{}, err
		}
		e.Runs++
		if kind := out.Violation(); kind != "" {
			e.Killed = true
			e.Kind = kind
			killsTotal.Inc()
			break
		}
		if code == 0 {
			break
		}
	}
	return e, nil
}

// quorumKillMatrix is the ABD kill matrix: the control and in-space
// killable mutants sweep the shared space (StopEarly), the rest run
// their targeted certificates.
func quorumKillMatrix(cfg Config) ([]KillEntry, error) {
	rows := append([]quorum.Mutant{{Name: quorum.Correct}}, quorum.Mutants()...)
	entries := make([]KillEntry, 0, len(rows))
	for _, m := range rows {
		if cert, ok := quorumCertificates[m.Name]; ok && m.Name != quorum.Correct {
			e, err := runQuorumCert(cfg, m, cert)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
			continue
		}
		c := cfg
		c.Target = adversary.Target{Algorithm: harness.AlgQuorum, Mutant: m.Name}
		c.StopEarly = true
		c.Strong = false
		rep, err := Verify(c)
		if err != nil {
			return nil, err
		}
		e := KillEntry{Mutant: m.Name, Desc: m.Desc, Killed: !rep.OK, Runs: rep.Runs}
		if m.Name == quorum.Correct {
			e.Mutant = "correct"
			e.Desc = "correct ABD quorum register (control)"
		}
		if e.Killed {
			killsTotal.Inc()
			e.Kind = rep.Violations[0].Kind
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteKillMatrix renders the exhaustive kill matrix as deterministic
// text.
func WriteKillMatrix(w io.Writer, entries []KillEntry) error {
	nameW := 14
	for _, e := range entries {
		if len(e.Mutant)+1 > nameW {
			nameW = len(e.Mutant) + 1
		}
	}
	fmt.Fprintf(w, "%-*s %-26s %-10s %s\n", nameW, "mutant", "verdict", "runs", "description")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 84))
	for _, e := range entries {
		desc := e.Desc
		if e.Space != "" {
			desc += " [" + e.Space + "]"
		}
		fmt.Fprintf(w, "%-*s %-26s %-10d %s\n", nameW, e.Mutant, verdictOf(e), e.Runs, desc)
	}
	return nil
}

func verdictOf(e KillEntry) string {
	switch {
	case e.Killed:
		return "killed: " + e.Kind
	case e.Mutant == "correct":
		return "clean (exhaustive)"
	default:
		return "survived full space"
	}
}
