package bmc

import (
	"fmt"
	"io"
	"strings"

	"lintime/internal/adversary"
	"lintime/internal/diagram"
	"lintime/internal/obs"
	"lintime/internal/simtime"
)

var killsTotal = obs.Default.Counter("bmc_mutant_kills_total")

// Report is the machine-readable result of one exhaustive sweep.
type Report struct {
	Target         string         `json:"target"`
	Params         simtime.Params `json:"params"`
	MaxOps         int            `json:"max_ops"`
	Plans          int            `json:"plans"`
	OffsetPatterns int            `json:"offset_patterns"`
	Contexts       int            `json:"contexts"`
	TotalRuns      int            `json:"total_runs"` // size of the space
	Runs           int            `json:"runs"`       // runs executed (== TotalRuns unless stopped early)
	Signatures     int            `json:"distinct_signatures"`
	Histories      int            `json:"distinct_histories"`
	OK             bool           `json:"ok"`
	Stopped        bool           `json:"stopped_early,omitempty"`

	ViolationsTotal int         `json:"violations_total"`
	Violations      []Violation `json:"violations,omitempty"` // first few, with schedules

	StrongChecked    int               `json:"strong_contexts_checked,omitempty"`
	StrongExplored   int               `json:"strong_tree_ops,omitempty"`
	StrongViolations int               `json:"strong_violations,omitempty"`
	StrongExamples   []StrongViolation `json:"strong_examples,omitempty"`
}

// WriteReport renders a sweep report as deterministic plain text,
// including a space-time diagram for each stored violation.
func WriteReport(w io.Writer, r *adversary.Runner, rep *Report) error {
	fmt.Fprintf(w, "target      %s on %s (bounded model check)\n", rep.Target, r.DT.Name())
	fmt.Fprintf(w, "params      n=%d d=%v u=%v eps=%v X=%v\n",
		rep.Params.N, rep.Params.D, rep.Params.U, rep.Params.Epsilon, rep.Params.X)
	fmt.Fprintf(w, "space       %d plans x %d offset patterns = %d contexts, %d runs (max %d ops, delays in {d-u, d})\n",
		rep.Plans, rep.OffsetPatterns, rep.Contexts, rep.TotalRuns, rep.MaxOps)
	executed := fmt.Sprintf("%d", rep.Runs)
	if rep.Stopped {
		executed += " (stopped early)"
	}
	fmt.Fprintf(w, "executed    %s\n", executed)
	fmt.Fprintf(w, "states      %d distinct event orderings, %d distinct histories\n", rep.Signatures, rep.Histories)
	fmt.Fprintf(w, "violations  %d\n", rep.ViolationsTotal)
	if rep.StrongChecked > 0 {
		fmt.Fprintf(w, "strong      %d contexts swept, %d without prefix-preserving linearization\n",
			rep.StrongChecked, rep.StrongViolations)
	}
	if rep.OK && rep.StrongViolations == 0 {
		fmt.Fprintf(w, "verdict     every enumerated schedule is linearizable, complete, and convergent\n")
	} else if rep.OK {
		fmt.Fprintf(w, "verdict     every enumerated schedule is linearizable, complete, and convergent;\n")
		fmt.Fprintf(w, "            %d contexts are linearizable in every future but not strongly linearizable\n", rep.StrongViolations)
	}
	for vi := range rep.Violations {
		v := &rep.Violations[vi]
		fmt.Fprintf(w, "\n--- violation %d: %s (context %d, delay code %d) ---\n",
			vi+1, v.Kind, v.Context, v.DelayCode)
		fmt.Fprint(w, v.Schedule.String())
		out, err := r.Run(v.Schedule)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "replayed violation: %s\n", out.Violation())
		fmt.Fprint(w, diagram.Render(out.Trace, diagram.Options{SuppressMessages: true, MaxRows: 40}))
	}
	return nil
}

// KillEntry is one row of the exhaustive mutant kill matrix.
type KillEntry struct {
	Mutant string `json:"mutant"`
	Desc   string `json:"desc"`
	Killed bool   `json:"killed"`
	Kind   string `json:"kind,omitempty"`
	Runs   int    `json:"runs"` // runs executed before the verdict
}

// KillMatrix sweeps every seeded mutant (and the corrected algorithm as
// a control) over the same bounded space, stopping each sweep at the
// first violating chunk. A mutant that survives has no counterexample
// anywhere in the space — a far stronger statement than a fuzzing miss.
func KillMatrix(cfg Config) ([]KillEntry, error) {
	targets := []adversary.Mutant{{Name: adversary.Correct}}
	targets = append(targets, adversary.Mutants()...)
	entries := make([]KillEntry, 0, len(targets))
	for _, m := range targets {
		c := cfg
		c.Target = adversary.Target{Algorithm: cfg.Target.Algorithm, Mutant: m.Name}
		c.StopEarly = true
		c.Strong = false
		rep, err := Verify(c)
		if err != nil {
			return nil, err
		}
		e := KillEntry{Mutant: m.Name, Desc: m.Desc, Killed: !rep.OK, Runs: rep.Runs}
		if e.Mutant == adversary.Correct {
			e.Mutant = "correct"
			e.Desc = "corrected Algorithm 1 (control)"
		}
		if e.Killed {
			killsTotal.Inc()
			e.Kind = rep.Violations[0].Kind
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteKillMatrix renders the exhaustive kill matrix as deterministic
// text.
func WriteKillMatrix(w io.Writer, entries []KillEntry) error {
	fmt.Fprintf(w, "%-14s %-26s %-10s %s\n", "mutant", "verdict", "runs", "description")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 84))
	for _, e := range entries {
		verdict := "survived full space"
		if e.Killed {
			verdict = "killed: " + e.Kind
		} else if e.Mutant == "correct" {
			verdict = "clean (exhaustive)"
		}
		fmt.Fprintf(w, "%-14s %-26s %-10d %s\n", e.Mutant, verdict, e.Runs, e.Desc)
	}
	return nil
}
