package bmc

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/adversary"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/strongcheck"
)

// TestSmokeSpaceShape pins the size of the CI smoke space. The numbers
// are part of the exhaustiveness claim: if an enumeration change shrinks
// the space silently, this test is the tripwire.
func TestSmokeSpaceShape(t *testing.T) {
	sp, err := NewSpace(Smoke(adt.NewQueue(), adversary.Target{}))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Plans() != 984 || sp.OffsetPatterns() != 3 || sp.Contexts() != 2952 || sp.Runs() != 12960 {
		t.Fatalf("smoke space drifted: plans=%d offsets=%d contexts=%d runs=%d, want 984/3/2952/12960",
			sp.Plans(), sp.OffsetPatterns(), sp.Contexts(), sp.Runs())
	}
}

// TestVerifyCorrectExhaustive sweeps the full smoke space against the
// corrected Algorithm 1: every one of the 12960 schedules must be
// linearizable, complete, and convergent. The strong sweep, by contrast,
// must find contexts with no prefix-preserving linearization — the
// Chandra–Hadzilacos–Jayanti–Toueg impossibility shows up already at
// n=2 with three operations.
func TestVerifyCorrectExhaustive(t *testing.T) {
	rep, err := Verify(Smoke(adt.NewQueue(), adversary.Target{}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.ViolationsTotal != 0 {
		t.Fatalf("corrected algorithm failed the exhaustive sweep: %+v", rep.Violations)
	}
	if rep.Runs != rep.TotalRuns {
		t.Fatalf("sweep incomplete: %d of %d runs", rep.Runs, rep.TotalRuns)
	}
	if rep.StrongChecked != rep.Contexts {
		t.Fatalf("strong sweep skipped contexts: %d of %d", rep.StrongChecked, rep.Contexts)
	}
	if rep.StrongViolations != 4 || len(rep.StrongExamples) != 4 {
		t.Fatalf("strong sweep found %d violations (%d stored), want 4: the CHHT counterexamples at n=2",
			rep.StrongViolations, len(rep.StrongExamples))
	}
	// Pin the dedup statistics: they are the state-space coverage measure.
	if rep.Signatures != 2714 || rep.Histories != 1228 {
		t.Fatalf("state dedup drifted: %d signatures, %d histories, want 2714 and 1228", rep.Signatures, rep.Histories)
	}
}

// TestStrongExampleIsGenuine replays the first strong violation the
// smoke sweep reports and re-verifies it through the public strongcheck
// API: every future of the context is individually linearizable, yet the
// forest of futures admits no prefix-preserving linearization.
func TestStrongExampleIsGenuine(t *testing.T) {
	cfg := Smoke(adt.NewQueue(), adversary.Target{})
	rep, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StrongExamples) == 0 {
		t.Fatal("no strong example to replay")
	}
	sp, err := NewSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := rep.StrongExamples[0]
	r := &adversary.Runner{Params: cfg.Params, DT: cfg.DT, Trace: sim.TraceOps}
	base, msgs := sp.context(ex.Context)
	tree := strongcheck.NewTree()
	seen := map[uint64]bool{}
	for code := uint64(0); code < 1<<uint(msgs); code++ {
		sched := base
		sched.Delays = sp.delays(code, msgs)
		out, err := r.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		if v := out.Violation(); v != "" {
			t.Fatalf("future %d violates %q: not a strong-only context", code, v)
		}
		h := lincheck.FromTrace(out.Trace)
		if fp := historyFingerprint(h); !seen[fp] {
			seen[fp] = true
			tree.Add(h)
		}
	}
	if tree.Branches() < 2 {
		t.Fatalf("context has %d distinct futures; a strong violation needs at least 2", tree.Branches())
	}
	if tree.Check(cfg.DT).Strong {
		t.Fatalf("replayed forest is strongly linearizable — report disagrees")
	}
}

// TestVerifyDeterministicAcrossParallelism: the report is a pure
// function of the Config — worker count must not leak into any field.
func TestVerifyDeterministicAcrossParallelism(t *testing.T) {
	cfg := Config{Params: simtime.DefaultParams(2), DT: adt.NewQueue(), MaxOps: 2, Strong: true}
	cfg.Parallel = 1
	a, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	b, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("report depends on parallelism:\n%+v\nvs\n%+v", a, b)
	}
}

// TestKillMatrixSmoke pins which mutants the smoke space refutes. The
// three timer-discipline mutants die by replica divergence inside the
// n=2 space; the control survives the whole space, and the two mutants
// whose counterexamples need a third process (aop-no-eps, see
// TestSpaceContainsAopKiller) or three ops (literal-drain, see
// TestLiteralDrainKilledAtThreeProcs) survive it too — exhaustively, so
// "survived" here is a theorem about the bounded space, not a missed
// sample.
func TestKillMatrixSmoke(t *testing.T) {
	entries, err := KillMatrix(Smoke(adt.NewQueue(), adversary.Target{}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"correct":       "",
		"aop-no-eps":    "",
		"literal-drain": "",
		"exec-no-eps":   adversary.KindDiverged,
		"addself-zero":  adversary.KindDiverged,
		"mop-zero":      adversary.KindDiverged,
	}
	if len(entries) != len(want) {
		t.Fatalf("%d kill-matrix rows, want %d", len(entries), len(want))
	}
	for _, e := range entries {
		kind, ok := want[e.Mutant]
		if !ok {
			t.Errorf("unexpected mutant %q", e.Mutant)
			continue
		}
		if e.Killed != (kind != "") || e.Kind != kind {
			t.Errorf("%s: killed=%v kind=%q, want killed=%v kind=%q", e.Mutant, e.Killed, e.Kind, kind != "", kind)
		}
	}
	var b strings.Builder
	if err := WriteKillMatrix(&b, entries); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"clean (exhaustive)", "killed: diverged", "survived full space"} {
		if !strings.Contains(b.String(), wantStr) {
			t.Errorf("kill matrix rendering missing %q:\n%s", wantStr, b.String())
		}
	}
}

// TestSpaceContainsAopKiller addresses the known counterexample shape for
// the paper's literal accessor bound inside the n=3, 4-op space without
// sweeping its 11.4M runs: a window accessor plus a post-quiescence probe
// on the fast process and one time-zero mutator on each other process.
// The probe pins the committed timestamp order, so the window accessor's
// premature read (it saw the fast announcement but missed the slow one)
// becomes a black-box non-linearizable return.
func TestSpaceContainsAopKiller(t *testing.T) {
	p := simtime.DefaultParams(3)
	target := adversary.Target{Mutant: "aop-no-eps"}
	sp, err := NewSpace(Config{Params: p, DT: adt.NewQueue(), Target: target, MaxOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the full-space size: this is the "n<=3, <=4 ops" bound quoted in
	// EXPERIMENTS.md.
	if sp.Contexts() != 152838 || sp.Runs() != 11444706 {
		t.Fatalf("n=3/4-op space drifted: %d contexts, %d runs, want 152838 and 11444706", sp.Contexts(), sp.Runs())
	}
	w, probe := windowStart(p), probeGap(p)
	ctx := sp.FindContext(func(s adversary.Schedule) bool {
		if s.Offsets[0] != p.Epsilon || s.Offsets[1] != 0 || s.Offsets[2] != 0 {
			return false
		}
		if len(s.Plans[0]) != 2 || len(s.Plans[1]) != 1 || len(s.Plans[2]) != 1 {
			return false
		}
		return s.Plans[0][0].Op == "peek" && s.Plans[0][0].Gap == w &&
			s.Plans[0][1].Op == "peek" && s.Plans[0][1].Gap == probe &&
			s.Plans[1][0].Op == "enqueue" && s.Plans[1][0].Gap == 0 &&
			s.Plans[2][0].Op == "enqueue" && s.Plans[2][0].Gap == 0
	})
	if ctx < 0 {
		t.Fatal("killer shape is not in the enumerated space")
	}
	r := &adversary.Runner{Params: p, DT: adt.NewQueue(), Target: target, Trace: sim.TraceOps}
	res, err := sp.checkContext(r, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.violation == nil {
		t.Fatalf("killer context is clean over %d delay vectors", res.runs)
	}
	if res.violation.Kind != adversary.KindNonLinearizable {
		t.Fatalf("killer context violates %q, want %q", res.violation.Kind, adversary.KindNonLinearizable)
	}
	// The same context must be clean for the corrected algorithm: the kill
	// is the mutant's, not the schedule's.
	cr := &adversary.Runner{Params: p, DT: adt.NewQueue(), Trace: sim.TraceOps}
	cres, err := sp.checkContext(cr, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cres.violation != nil {
		t.Fatalf("corrected algorithm fails the killer context: %+v", cres.violation)
	}
}

// TestLiteralDrainKilledAtThreeProcs: the literal-drain mutant survives
// the n=2 smoke space but dies by divergence in the n=3, 3-op space.
func TestLiteralDrainKilledAtThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Verify(Config{
		Params:    simtime.DefaultParams(3),
		DT:        adt.NewQueue(),
		Target:    adversary.Target{Mutant: "literal-drain"},
		MaxOps:    3,
		StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatalf("literal-drain survived the n=3 3-op space (%d runs)", rep.Runs)
	}
	if rep.Violations[0].Kind != adversary.KindDiverged {
		t.Fatalf("literal-drain died of %q, want %q", rep.Violations[0].Kind, adversary.KindDiverged)
	}
}

// TestReportJSON: the report round-trips through encoding/json with the
// documented field names — the machine-readable contract of `lintime
// verify -json`.
func TestReportJSON(t *testing.T) {
	cfg := Config{Params: simtime.DefaultParams(2), DT: adt.NewQueue(), MaxOps: 2, Strong: true}
	rep, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"target"`, `"total_runs"`, `"distinct_signatures"`, `"distinct_histories"`, `"ok"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing %s: %s", key, data)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Runs != rep.Runs || back.OK != rep.OK || back.Signatures != rep.Signatures {
		t.Fatalf("report did not round-trip: %+v vs %+v", back, rep)
	}
}

// TestRejectsUnmodeledTarget: each accepted backend has an explicit
// message-count model; anything else must be refused rather than
// silently under-enumerated. Folklore targets carry no mutant registry,
// and drop augmentation is a quorum-only axis.
func TestRejectsUnmodeledTarget(t *testing.T) {
	if _, err := NewSpace(Config{
		Params: simtime.DefaultParams(2),
		DT:     adt.NewQueue(),
		Target: adversary.Target{Algorithm: "no-such-backend"},
	}); err == nil {
		t.Fatal("NewSpace accepted an unmodeled target")
	}
	if _, err := NewSpace(Config{
		Params: simtime.DefaultParams(2),
		DT:     adt.NewQueue(),
		Target: adversary.Target{Algorithm: harness.AlgCentral, Mutant: "skip-writeback"},
	}); err == nil {
		t.Fatal("NewSpace accepted a mutant on a folklore target")
	}
	if _, err := NewSpace(Config{
		Params: simtime.DefaultParams(2),
		DT:     adt.NewQueue(),
		Target: adversary.Target{Algorithm: harness.AlgCentral},
		Drops:  []int64{0},
	}); err == nil {
		t.Fatal("NewSpace accepted drop augmentation on a non-quorum target")
	}
}
