package bmc

import (
	"reflect"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/adversary"
	"lintime/internal/harness"
	"lintime/internal/simtime"
)

// quorumParams mirrors the fuzzer's quorum parameters: wide delay
// uncertainty (u = 3d/4) so extremal delay vectors realize genuinely
// different interleavings. The protocol reads no clocks, so ε and X are
// irrelevant and left zero.
func quorumParams(n int) simtime.Params {
	return simtime.Params{N: n, D: 8 * simtime.Quantum, U: 6 * simtime.Quantum}
}

func quorumConfig(n, maxOps int) Config {
	return Config{
		Params: quorumParams(n),
		DT:     adt.NewRegister(0),
		Target: adversary.Target{Algorithm: harness.AlgQuorum},
		MaxOps: maxOps,
	}
}

// TestQuorumSpaceShape pins the crash-augmented quorum spaces. The
// numbers are part of the exhaustiveness claim: the offset axis must
// collapse (clock-free protocol), the crash axis must open at n=3
// (fault-free + 3 single-crash placements), and the per-placement
// message model sizes the delay axis.
func TestQuorumSpaceShape(t *testing.T) {
	cases := []struct {
		n, maxOps                         int
		plans, placements, contexts, runs int
	}{
		{2, 2, 96, 1, 96, 21696},
		{2, 3, 576, 1, 576, 1987776},
		{3, 1, 18, 4, 72, 6930},
	}
	for _, tc := range cases {
		sp, err := NewSpace(quorumConfig(tc.n, tc.maxOps))
		if err != nil {
			t.Fatal(err)
		}
		if sp.Plans() != tc.plans || sp.OffsetPatterns() != 1 ||
			sp.CrashPlacements() != tc.placements || sp.Contexts() != tc.contexts || sp.Runs() != tc.runs {
			t.Errorf("n=%d maxOps=%d space drifted: plans=%d offsets=%d placements=%d contexts=%d runs=%d, want %d/1/%d/%d/%d",
				tc.n, tc.maxOps, sp.Plans(), sp.OffsetPatterns(), sp.CrashPlacements(), sp.Contexts(), sp.Runs(),
				tc.plans, tc.placements, tc.contexts, tc.runs)
		}
	}
}

// TestQuorumVerifyExhaustive sweeps the n=2 two-op space: the correct
// ABD register is linearizable and complete on every schedule, and the
// strong sweep pins the known phenomenon that ABD is NOT strongly
// linearizable — 7 contexts admit no prefix-preserving linearization
// although each future is linearizable. The report must also be a pure
// function of the config, independent of parallelism.
func TestQuorumVerifyExhaustive(t *testing.T) {
	cfg := quorumConfig(2, 2)
	cfg.Strong = true
	rep, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("correct ABD violated: %+v", rep.Violations[0])
	}
	if rep.Runs != 21696 {
		t.Errorf("executed %d runs, want 21696", rep.Runs)
	}
	if rep.Signatures != 88 || rep.Histories != 2237 {
		t.Errorf("state counts drifted: sigs=%d hists=%d, want 88/2237", rep.Signatures, rep.Histories)
	}
	if rep.StrongViolations != 7 {
		t.Errorf("ABD strong-linearizability failures: %d contexts, want 7", rep.StrongViolations)
	}
	cfg.Parallel = 4
	rep4, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep4) {
		t.Error("quorum verify report depends on parallelism")
	}
}

// TestQuorumCrashPlacements sweeps the n=3 single-op space across every
// minority crash placement: operations at live processes complete
// against the surviving majority, operations at crashed processes are
// excused, and every run stays linearizable.
func TestQuorumCrashPlacements(t *testing.T) {
	rep, err := Verify(quorumConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("crash-placement sweep violated: %+v", rep.Violations[0])
	}
	if rep.CrashPlacements != 4 {
		t.Errorf("crash placements = %d, want 4 (fault-free + 3 single crashes)", rep.CrashPlacements)
	}
	if rep.Runs != 6930 {
		t.Errorf("executed %d runs, want 6930", rep.Runs)
	}
}

// TestQuorumKillMatrixExhaustive is the crash-tolerance counterpart of
// the Algorithm 1 kill matrix: the control survives its full space while
// every seeded ABD mutant is killed — crash-threshold inside the shared
// sweep, the rest in targeted certificate contexts (their
// counterexamples provably need n=3, message loss, or four operations).
func TestQuorumKillMatrixExhaustive(t *testing.T) {
	entries, err := KillMatrix(quorumConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("expected 5 kill-matrix rows, got %d", len(entries))
	}
	wantCert := map[string]bool{
		"crash-threshold":   false,
		"skip-writeback":    true,
		"stale-tiebreak":    true,
		"sub-majority-read": true,
	}
	for _, e := range entries {
		if e.Mutant == "correct" {
			if e.Killed {
				t.Errorf("control (correct ABD) was killed: %s", e.Kind)
			}
			if e.Runs != 21696 {
				t.Errorf("control swept %d runs, want the full 21696", e.Runs)
			}
			continue
		}
		if !e.Killed {
			t.Errorf("mutant %q survived (%d runs, space %q)", e.Mutant, e.Runs, e.Space)
			continue
		}
		if e.Kind != "non-linearizable" {
			t.Errorf("mutant %q killed by %q, want non-linearizable", e.Mutant, e.Kind)
		}
		if cert, ok := wantCert[e.Mutant]; !ok {
			t.Errorf("unexpected kill-matrix row %q", e.Mutant)
		} else if cert != (e.Space != "") {
			t.Errorf("mutant %q certificate provenance = %q, want cert=%v", e.Mutant, e.Space, cert)
		}
		t.Logf("%-18s killed after %5d runs%s", e.Mutant, e.Runs, certSuffix(e))
	}
}

func certSuffix(e KillEntry) string {
	if e.Space == "" {
		return ""
	}
	return " [" + e.Space + "]"
}

// TestQuorumDropAugmentedSpace pins the weakened exhaustiveness claim of
// a drop-augmented space: the sweep still runs (message counts may land
// anywhere in [msgs-len(drops), ∞) once retransmissions kick in) and the
// correct protocol stays linearizable under the loss.
func TestQuorumDropAugmentedSpace(t *testing.T) {
	cfg := quorumConfig(2, 1)
	cfg.Drops = []int64{0}
	rep, err := Verify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("correct ABD violated under drop augmentation: %+v", rep.Violations[0])
	}
	if len(rep.Drops) != 1 || rep.Drops[0] != 0 {
		t.Errorf("report drops = %v, want [0]", rep.Drops)
	}
}
