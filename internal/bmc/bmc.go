// Package bmc is a bounded model checker over the simulation substrate:
// for tiny configurations it enumerates EVERY adversary schedule of a
// quantized admissible space and drives each one through the deterministic
// engine, checking linearizability, completeness, and replica convergence
// on every run. Where the fuzzer samples the schedule space, the model
// checker exhausts it — within explicitly declared bounds — so a clean
// sweep is a proof that the timer discipline is correct on that space,
// and a mutant kill is a certificate that the space contains a
// counterexample.
//
// The quantized space is the product of three axes:
//
//   - Plans: every distribution of 1..MaxOps operations over the n
//     processes, each slot drawing any declared operation. The first
//     operation of a plan starts at a time from {0, w}, where w is the
//     midpoint of the accessor timestamp window [max(0, X-ε), X) — the
//     instant Algorithm 1's backdating makes interesting; later
//     operations follow the previous response after a gap from {0, 5d}
//     (immediately, or as a post-quiescence probe that reads committed
//     state). Arguments spread deterministically across slots so
//     reorderings stay observable.
//   - Offsets: every clock-offset assignment in {0, ε}^n with at least
//     one process at zero (shifting every local clock uniformly is
//     behaviorally identical, so those points are skipped).
//   - Delays: every per-message delay vector in {d-u, d}^M, the extremes
//     of the admissible interval, where M is the number of messages the
//     plan generates ((n-1) broadcasts per mutator or mixed op).
//
// Delay quantization to the interval endpoints is the one lossy axis:
// an interior delay can realize an arrival order that no extremal vector
// does. The bounds are part of the claim, and every schedule still runs
// through adversary.Runner, so the canonical admissibility predicate —
// not a private copy — gates exactly what the checker may explore.
//
// The space is target-aware. Each backend brings its own message-count
// model (sizing the delay axis) and its own irrelevant axes, which
// collapse instead of multiplying the space:
//
//   - core (Algorithm 1): non-accessor ops broadcast n-1 announcements;
//     accessors send nothing. Offsets enumerate {0, ε}^n.
//   - central: a remote invocation costs a request and a reply (2); a
//     server-local one costs nothing. The protocol never reads a clock,
//     so the offset axis collapses to all-zero.
//   - sequencer: a sequencer-local invocation broadcasts n-1 ordered
//     messages; a remote one adds the hop to the sequencer (n). Clock-
//     free, so offsets collapse.
//   - quorum (ABD): every operation runs two phases of (n-1) requests
//     plus one ack per live recipient (reads drop to one phase under the
//     skip-writeback mutant); an op invoked at a crashed process is
//     suppressed and costs nothing. Clock-free, so offsets collapse —
//     and a fourth axis opens instead: every minority subset of
//     processes crashed from time zero. First-op start times quantize to
//     the protocol's own interesting instants ({0, (d-u)/2, 2(d-u)+d}:
//     inside the window where a bogusly fast write has responded but no
//     message can have arrived, and just past the latest first-attempt
//     propagate arrival).
//
// A space may also be drop-augmented (Config.Drops): a fixed set of send
// ordinals is lost in every schedule. Lost sends still consume delay-
// vector slots, but the retransmissions they provoke exceed the modeled
// message count and run at the default delay d — so a drop-augmented
// space is exhaustive over the first modeled ordinals only. It exists
// for targeted kill certificates (skip-writeback needs real message
// loss), not for cleanliness sweeps.
//
// Beyond per-run checks, the checker optionally performs a strong-
// linearizability sweep: all distinct histories of one (plan, offsets)
// context — the futures an adversary can force by resolving each
// message delay either way — are folded into one strongcheck prefix
// tree. A context whose futures are individually linearizable but admit
// no prefix-preserving linearization is exactly the
// Chandra–Hadzilacos–Jayanti–Toueg phenomenon, quantified exhaustively.
package bmc

import (
	"fmt"
	"hash/fnv"
	"math/bits"

	"lintime/internal/adversary"
	"lintime/internal/classify"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/obs"
	"lintime/internal/quorum"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
	"lintime/internal/strongcheck"
)

// State-space counters on the process-wide registry.
var (
	runsTotal       = obs.Default.Counter("bmc_runs_total")
	contextsTotal   = obs.Default.Counter("bmc_contexts_total")
	violationsTotal = obs.Default.Counter("bmc_violations_total")
	strongViolTotal = obs.Default.Counter("bmc_strong_violations_total")
)

// chunkSize is the number of contexts evaluated between fold points; the
// stop-early decision is taken only at chunk boundaries, in index order,
// so results are independent of parallelism.
const chunkSize = 64

// maxStoredViolations bounds the schedules embedded in a report.
const maxStoredViolations = 4

// Config bounds the model-checking space.
type Config struct {
	Params simtime.Params
	DT     spec.DataType
	// Target selects the backend (core, central, sequencer, or quorum;
	// mutants apply to core and quorum). Each backend has its own
	// message-count model sizing the delay axis — see the package doc.
	Target adversary.Target
	// MaxOps caps the total planned operations per schedule (default 2).
	MaxOps int
	// Drops lists send ordinals lost in transit in every schedule of the
	// space (quorum targets only). See the package doc for the weakened
	// exhaustiveness claim of a drop-augmented space.
	Drops []int64
	// Strong folds each context's futures into a strongcheck tree and
	// counts contexts with no prefix-preserving linearization.
	Strong bool
	// StopEarly stops at the first chunk containing a violation.
	StopEarly bool
	// Parallel is the worker count (harness semantics: <1 = GOMAXPROCS).
	Parallel int
	// CheckWorkers is passed through to the linearizability checker.
	CheckWorkers int
}

// Smoke returns the CI-sized configuration: n=2, three operations,
// strong sweep on — about 10k runs, exhausted in well under a second.
func Smoke(dt spec.DataType, target adversary.Target) Config {
	return Config{
		Params: simtime.DefaultParams(2),
		DT:     dt,
		Target: target,
		MaxOps: 3,
		Strong: true,
	}
}

// planSlot is one enumerated operation choice.
type planSlot struct {
	op  spec.OpInfo
	gap simtime.Duration
}

// plan is one enumerated invocation plan.
type plan struct {
	procs [][]planSlot
	ops   int
}

// placement is one enumerated crash assignment: the processes in mask
// crash at time zero. The zero placement (mask 0, nil crashes) is the
// fault-free run present in every space.
type placement struct {
	mask    uint64
	crashes []simtime.Time // per-process crash times; nil = fault-free
	crashed int
}

// Space is the enumerated schedule space of one Config.
type Space struct {
	cfg        Config
	classes    map[string]classify.Class
	qcfg       quorum.Config
	plans      []plan
	offsets    [][]simtime.Duration
	placements []placement
	runs       int
}

// NewSpace enumerates the space. The enumeration order is fixed: plans
// by ascending op count, then by composition and slot choices; offsets
// in binary-counter order; crash placements by ascending crash count
// then mask order; delay vectors in binary-counter order with bit i
// selecting message i's delay (0 = d, 1 = d-u).
func NewSpace(cfg Config) (*Space, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Space{cfg: cfg, classes: harness.ClassesFor(cfg.DT)}
	switch cfg.Target.Algorithm {
	case "", harness.AlgCore:
	case harness.AlgCentral, harness.AlgSequencer:
		if cfg.Target.Mutant != "" {
			return nil, fmt.Errorf("bmc: target %q has no mutant registry", cfg.Target.Algorithm)
		}
	case harness.AlgQuorum:
		qcfg, err := quorum.ConfigFor(quorum.DefaultConfig(p), cfg.Target.Mutant)
		if err != nil {
			return nil, err
		}
		s.qcfg = qcfg
	default:
		return nil, fmt.Errorf("bmc: unsupported target algorithm %q (have core, central, sequencer, quorum)", cfg.Target.Algorithm)
	}
	if len(cfg.Drops) > 0 && cfg.Target.Algorithm != harness.AlgQuorum {
		return nil, fmt.Errorf("bmc: drop augmentation applies only to the quorum target (have %s)", cfg.Target)
	}
	if s.cfg.MaxOps <= 0 {
		s.cfg.MaxOps = 2
	}
	s.enumeratePlans()
	s.enumerateOffsets()
	s.enumeratePlacements()
	for _, pl := range s.plans {
		for _, pc := range s.placements {
			s.runs += len(s.offsets) << s.planMsgs(pl, pc)
		}
	}
	return s, nil
}

// clockFree reports whether the target protocol never reads a local
// clock, making the offset axis behaviorally inert.
func (s *Space) clockFree() bool {
	switch s.cfg.Target.Algorithm {
	case harness.AlgCentral, harness.AlgSequencer, harness.AlgQuorum:
		return true
	}
	return false
}

// opMsgs is the per-target message-count model: the messages one
// operation contributes when invoked at proc with `crashed` processes
// down from time zero. See the package doc for each model's derivation.
func (s *Space) opMsgs(proc int, opName string, crashed int) int {
	n := s.cfg.Params.N
	switch s.cfg.Target.Algorithm {
	case "", harness.AlgCore:
		if s.classes[opName] == classify.PureAccessor {
			return 0
		}
		return n - 1
	case harness.AlgCentral:
		if proc == 0 {
			return 0 // server-local: applied on the spot, no messages
		}
		return 2 // request to the server + reply
	case harness.AlgSequencer:
		if proc == 0 {
			return n - 1 // sequencer-local: stamped locally, Ordered broadcast
		}
		return n // hop to the sequencer + Ordered broadcast
	case harness.AlgQuorum:
		// Per phase: n-1 requests broadcast (sends to crashed replicas
		// still occupy trace slots — delivery, not transit, is what a
		// crash suppresses) plus one ack per live recipient. Quorums are
		// reached within the 2d round trip, under the 3d retransmission
		// period, so drop-free runs never exceed this count.
		phases := 2
		if s.qcfg.SkipWriteBack && opName == quorum.OpRead {
			phases = 1
		}
		return phases * ((n - 1) + (n - 1 - crashed))
	}
	panic(fmt.Sprintf("bmc: no message model for target %q", s.cfg.Target.Algorithm))
}

// planMsgs is the modeled message count of one plan under one crash
// placement. Operations invoked at a crashed process are suppressed by
// the engine (no invocation record, no messages) and contribute nothing.
func (s *Space) planMsgs(pl plan, pc placement) int {
	msgs := 0
	for proc, seq := range pl.procs {
		if pc.mask&(1<<uint(proc)) != 0 {
			continue
		}
		for _, sl := range seq {
			msgs += s.opMsgs(proc, sl.op.Name, pc.crashed)
		}
	}
	return msgs
}

// windowStart is the midpoint of the accessor timestamp window: an op
// invoked here (on a fast clock) backdates into the thick of concurrent
// time-zero mutators.
func windowStart(p simtime.Params) simtime.Duration {
	return simtime.Max(0, p.X-p.Epsilon) + simtime.Min(p.X, p.Epsilon)/2
}

// probeGap is the post-quiescence gap: an op this long after the
// previous response observes fully committed replica state.
func probeGap(p simtime.Params) simtime.Duration { return 5 * p.D }

// startTimes returns the first-op start instants the plan axis
// enumerates, deduplicated ascending. Clock-driven targets (core) use
// the accessor-window midpoint; clock-free targets use instants defined
// by the message bounds themselves: (d-u)/2 sits before any time-zero
// message can have arrived, and 2(d-u)+d (quorum only) lands just past
// the latest arrival of a minimum-delay write's propagate phase.
func (s *Space) startTimes() []simtime.Duration {
	p := s.cfg.Params
	var raw []simtime.Duration
	switch s.cfg.Target.Algorithm {
	case harness.AlgCentral, harness.AlgSequencer:
		raw = []simtime.Duration{0, p.MinDelay() / 2}
	case harness.AlgQuorum:
		raw = []simtime.Duration{0, p.MinDelay() / 2, 2*p.MinDelay() + p.D}
	default:
		raw = []simtime.Duration{0, windowStart(p)}
	}
	starts := raw[:1]
	for _, t := range raw[1:] {
		if t > starts[len(starts)-1] {
			starts = append(starts, t)
		}
	}
	return starts
}

func (s *Space) enumeratePlans() {
	p := s.cfg.Params
	ops := s.cfg.DT.Ops()
	starts := s.startTimes()
	gaps := []simtime.Duration{0, probeGap(p)}

	procs := make([][]planSlot, p.N)
	var rec func(proc, remaining int)
	emit := func() {
		pl := plan{procs: make([][]planSlot, p.N)}
		for i, seq := range procs {
			pl.procs[i] = append([]planSlot(nil), seq...)
			pl.ops += len(seq)
		}
		if pl.ops > 0 {
			s.plans = append(s.plans, pl)
		}
	}
	var recSlots func(proc, count, remaining int)
	recSlots = func(proc, count, remaining int) {
		if count == 0 {
			rec(proc+1, remaining)
			return
		}
		choices := gaps
		if len(procs[proc]) == 0 {
			choices = starts
		}
		for _, op := range ops {
			for _, g := range choices {
				procs[proc] = append(procs[proc], planSlot{op: op, gap: g})
				recSlots(proc, count-1, remaining)
				procs[proc] = procs[proc][:len(procs[proc])-1]
			}
		}
	}
	rec = func(proc, remaining int) {
		if proc == p.N {
			if remaining < s.cfg.MaxOps {
				emit()
			}
			return
		}
		for count := 0; count <= remaining; count++ {
			recSlots(proc, count, remaining-count)
		}
	}
	rec(0, s.cfg.MaxOps)
}

func (s *Space) enumerateOffsets() {
	p := s.cfg.Params
	if p.Epsilon == 0 || s.clockFree() {
		s.offsets = [][]simtime.Duration{make([]simtime.Duration, p.N)}
		return
	}
	for mask := 0; mask < 1<<p.N; mask++ {
		if mask == 1<<p.N-1 {
			continue // uniform shift of all clocks: identical behavior
		}
		off := make([]simtime.Duration, p.N)
		for i := 0; i < p.N; i++ {
			if mask&(1<<i) != 0 {
				off[i] = p.Epsilon
			}
		}
		s.offsets = append(s.offsets, off)
	}
}

// enumeratePlacements builds the crash axis: the fault-free placement
// always, plus — for the quorum target — every minority subset of
// processes crashed from time zero, by ascending crash count then mask.
func (s *Space) enumeratePlacements() {
	s.placements = []placement{{}}
	if s.cfg.Target.Algorithm != harness.AlgQuorum {
		return
	}
	p := s.cfg.Params
	maxCrash := (p.N - 1) / 2
	for size := 1; size <= maxCrash; size++ {
		for mask := uint64(1); mask < 1<<uint(p.N); mask++ {
			if bits.OnesCount64(mask) != size {
				continue
			}
			crashes := make([]simtime.Time, p.N)
			for i := 0; i < p.N; i++ {
				if mask&(1<<uint(i)) != 0 {
					crashes[i] = 0
				} else {
					crashes[i] = simtime.Infinity
				}
			}
			s.placements = append(s.placements, placement{mask: mask, crashes: crashes, crashed: size})
		}
	}
}

// Contexts returns the number of (plan, offsets, placement) contexts.
func (s *Space) Contexts() int { return len(s.plans) * len(s.offsets) * len(s.placements) }

// Runs returns the total number of schedule executions in the space.
func (s *Space) Runs() int { return s.runs }

// Plans returns the number of enumerated invocation plans.
func (s *Space) Plans() int { return len(s.plans) }

// OffsetPatterns returns the number of enumerated clock-offset patterns.
func (s *Space) OffsetPatterns() int { return len(s.offsets) }

// CrashPlacements returns the number of enumerated crash placements
// (1 — the fault-free placement — for crash-intolerant targets).
func (s *Space) CrashPlacements() int { return len(s.placements) }

// context materializes context i as a reusable schedule skeleton: the
// plan, offsets, and crash placement are shared (the runner never
// mutates them), only the delay vector varies per run.
func (s *Space) context(i int) (base adversary.Schedule, msgs int) {
	perPlan := len(s.offsets) * len(s.placements)
	pl := s.plans[i/perPlan]
	rem := i % perPlan
	off := s.offsets[rem/len(s.placements)]
	pc := s.placements[rem%len(s.placements)]
	plans := make([][]adversary.PlannedOp, len(pl.procs))
	slot := 0
	for proc, seq := range pl.procs {
		for _, sl := range seq {
			plans[proc] = append(plans[proc], adversary.PlannedOp{
				Op:  sl.op.Name,
				Arg: sl.op.Args[slot%len(sl.op.Args)],
				Gap: sl.gap,
			})
			slot++
		}
	}
	base = adversary.Schedule{Offsets: off, Plans: plans}
	if pc.crashes != nil {
		base.Crashes = pc.crashes
	}
	if len(s.cfg.Drops) > 0 {
		base.Drops = s.cfg.Drops
	}
	return base, s.planMsgs(pl, pc)
}

// Schedule materializes the schedule of context i under delay vector
// code (bit j of code selects message j's delay: 0 = d, 1 = d-u).
func (s *Space) Schedule(i int, code uint64) adversary.Schedule {
	base, msgs := s.context(i)
	base.Delays = s.delays(code, msgs)
	return base
}

func (s *Space) delays(code uint64, msgs int) []simtime.Duration {
	p := s.cfg.Params
	delays := make([]simtime.Duration, msgs)
	for j := 0; j < msgs; j++ {
		if code&(1<<uint(j)) != 0 {
			delays[j] = p.MinDelay()
		} else {
			delays[j] = p.D
		}
	}
	return delays
}

// FindContext returns the index of the first context matching the
// predicate, or -1. It lets tests and reports address a known schedule
// shape inside the enumerated space without sweeping it.
func (s *Space) FindContext(match func(sched adversary.Schedule) bool) int {
	for i := 0; i < s.Contexts(); i++ {
		base, _ := s.context(i)
		if match(base) {
			return i
		}
	}
	return -1
}

// contextResult is the fold input of one context.
type contextResult struct {
	runs       int
	sigs       []uint64 // in first-seen order
	histFPs    []uint64 // distinct history fingerprints, first-seen order
	violation  *Violation
	strongDone bool
	strongBad  bool
	branches   int
	explored   int
}

// Violation is one schedule that broke a checked property, addressed by
// its coordinates in the enumeration.
type Violation struct {
	Context   int                `json:"context"`
	DelayCode uint64             `json:"delay_code"`
	Kind      string             `json:"kind"`
	Schedule  adversary.Schedule `json:"schedule"`
}

// StrongViolation identifies a context whose futures admit no
// prefix-preserving linearization although each is linearizable.
type StrongViolation struct {
	Context  int `json:"context"`
	Branches int `json:"branches"`
	Ops      int `json:"ops"`
}

// Verify exhausts the space and reports. The report is a pure function
// of the Config (minus Parallel): contexts fan out through
// harness.RunIndexed and fold in index order.
func Verify(cfg Config) (*Report, error) {
	space, err := NewSpace(cfg)
	if err != nil {
		return nil, err
	}
	runner := &adversary.Runner{
		Params: cfg.Params, DT: cfg.DT, Target: cfg.Target,
		CheckWorkers: cfg.CheckWorkers, Trace: sim.TraceOps,
	}
	rep := &Report{
		Target:         cfg.Target.String(),
		Params:         cfg.Params,
		MaxOps:         space.cfg.MaxOps,
		Plans:          space.Plans(),
		OffsetPatterns: space.OffsetPatterns(),
		Contexts:       space.Contexts(),
		TotalRuns:      space.Runs(),
		OK:             true,
	}
	// Reported only when the crash axis is non-trivial, so reports (and
	// goldens) of crash-intolerant targets are unchanged.
	if space.CrashPlacements() > 1 {
		rep.CrashPlacements = space.CrashPlacements()
	}
	if len(cfg.Drops) > 0 {
		rep.Drops = append([]int64(nil), cfg.Drops...)
	}
	seenSigs := map[uint64]bool{}
	seenHists := map[uint64]bool{}

	total := space.Contexts()
	for baseCtx := 0; baseCtx < total; baseCtx += chunkSize {
		count := chunkSize
		if baseCtx+count > total {
			count = total - baseCtx
		}
		results := make([]contextResult, count)
		err := harness.RunIndexed(count, cfg.Parallel, func(k int) error {
			res, err := space.checkContext(runner, baseCtx+k)
			if err != nil {
				return err
			}
			results[k] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		chunkViolated := false
		for k := 0; k < count; k++ {
			res := results[k]
			contextsTotal.Inc()
			rep.Runs += res.runs
			runsTotal.Add(int64(res.runs))
			for _, sig := range res.sigs {
				if !seenSigs[sig] {
					seenSigs[sig] = true
				}
			}
			for _, fp := range res.histFPs {
				if !seenHists[fp] {
					seenHists[fp] = true
				}
			}
			if res.violation != nil {
				chunkViolated = true
				rep.OK = false
				rep.ViolationsTotal++
				violationsTotal.Inc()
				if len(rep.Violations) < maxStoredViolations {
					rep.Violations = append(rep.Violations, *res.violation)
				}
			}
			if res.strongDone {
				rep.StrongChecked++
				rep.StrongExplored += res.explored
				if res.strongBad {
					rep.StrongViolations++
					strongViolTotal.Inc()
					if len(rep.StrongExamples) < maxStoredViolations {
						rep.StrongExamples = append(rep.StrongExamples, StrongViolation{
							Context:  baseCtx + k,
							Branches: res.branches,
							Ops:      res.explored,
						})
					}
				}
			}
		}
		if cfg.StopEarly && chunkViolated {
			rep.Stopped = true
			break
		}
	}
	rep.Signatures = len(seenSigs)
	rep.Histories = len(seenHists)
	return rep, nil
}

// checkContext runs every delay vector of one context and, when
// configured, the strong-linearizability sweep over its futures.
func (s *Space) checkContext(runner *adversary.Runner, ctx int) (contextResult, error) {
	base, msgs := s.context(ctx)
	var res contextResult
	sigSeen := map[uint64]bool{}
	histSeen := map[uint64]bool{}
	var histories [][]lincheck.Op
	for code := uint64(0); code < 1<<uint(msgs); code++ {
		sched := base
		sched.Delays = s.delays(code, msgs)
		out, err := runner.Run(sched)
		if err != nil {
			return res, err
		}
		got := len(out.Trace.Msgs)
		if len(s.cfg.Drops) == 0 {
			if got != msgs {
				return res, fmt.Errorf("bmc: context %d sent %d messages, model says %d — delay axis not exhaustive", ctx, got, msgs)
			}
		} else if got < msgs-len(s.cfg.Drops) {
			// Drop-augmented spaces bend the count both ways: a dropped
			// request suppresses the ack it would have provoked (at most
			// one missing message per drop), while retransmissions add
			// messages beyond the modeled count (those run at the default
			// delay d). Anything below the floor still means the model is
			// wrong.
			return res, fmt.Errorf("bmc: context %d sent %d messages, model floor is %d", ctx, got, msgs-len(s.cfg.Drops))
		}
		res.runs++
		if sig := out.Signature(); !sigSeen[sig] {
			sigSeen[sig] = true
			res.sigs = append(res.sigs, sig)
		}
		if kind := out.Violation(); kind != "" && res.violation == nil {
			res.violation = &Violation{Context: ctx, DelayCode: code, Kind: kind, Schedule: sched}
		}
		history := lincheck.FromTrace(out.Trace)
		if fp := historyFingerprint(history); !histSeen[fp] {
			histSeen[fp] = true
			res.histFPs = append(res.histFPs, fp)
			histories = append(histories, history)
		}
	}
	// The strong sweep is meaningful only when every future is clean:
	// a plain violation already condemns the context.
	if s.cfg.Strong && res.violation == nil {
		tree := strongcheck.NewTree()
		for _, h := range histories {
			tree.Add(h)
		}
		st := tree.Check(s.cfg.DT)
		res.strongDone = true
		res.strongBad = !st.Strong
		res.branches = tree.Branches()
		res.explored = tree.Ops()
	}
	return res, nil
}

// historyFingerprint hashes a completed history's observable content.
func historyFingerprint(history []lincheck.Op) uint64 {
	h := fnv.New64a()
	for _, op := range history {
		fmt.Fprintf(h, "%d·%s·%s·%d·%d·%s;", op.Proc, op.Name, spec.FormatValue(op.Arg), op.Invoke, op.Respond, spec.FormatValue(op.Ret))
	}
	return h.Sum64()
}
