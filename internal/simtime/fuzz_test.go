package simtime

import (
	"math/big"
	"testing"
)

// clampBig saturates an arbitrary-precision expected value into the
// sentinel range, mirroring the documented Add/Sub semantics.
func clampBig(v *big.Int, lo, hi int64) int64 {
	if v.Cmp(big.NewInt(hi)) >= 0 {
		return hi
	}
	if v.Cmp(big.NewInt(lo)) <= 0 {
		return lo
	}
	return v.Int64()
}

// FuzzTimeArith cross-checks the saturating sentinel arithmetic against
// arbitrary-precision integers: Add and Sub must behave like exact
// integer arithmetic clamped to the sentinel range, with the documented
// absorbing rules for inputs already at a sentinel.
func FuzzTimeArith(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(Infinity), int64(-1), int64(5))
	f.Add(int64(NegInfinity), int64(1), int64(InfDuration))
	f.Add(int64(1)<<61, int64(1)<<61, int64(1)<<61)
	f.Add(int64(-42), int64(InfDuration), int64(NegInfDuration))
	f.Fuzz(func(t *testing.T, tRaw, sRaw, dRaw int64) {
		// Clamp inputs into the legal domain: times and durations outside
		// the sentinel range do not occur (the sentinels absorb first).
		clampT := func(v int64) int64 {
			if v > int64(Infinity) {
				return int64(Infinity)
			}
			if v < int64(NegInfinity) {
				return int64(NegInfinity)
			}
			return v
		}
		t0, s0, d0 := Time(clampT(tRaw)), Time(clampT(sRaw)), Duration(clampT(dRaw))

		// Add: absorbing at sentinels, otherwise exact-then-clamped.
		got := t0.Add(d0)
		var want int64
		switch {
		case t0 >= Infinity:
			want = int64(Infinity)
		case t0 <= NegInfinity:
			want = int64(NegInfinity)
		case d0 >= InfDuration:
			want = int64(Infinity)
		case d0 <= NegInfDuration:
			want = int64(NegInfinity)
		default:
			sum := new(big.Int).Add(big.NewInt(int64(t0)), big.NewInt(int64(d0)))
			want = clampBig(sum, int64(NegInfinity), int64(Infinity))
		}
		if int64(got) != want {
			t.Errorf("%v.Add(%v) = %v, want %d", t0, d0, got, want)
		}

		// Sub: infinities of like sign cancel, otherwise exact-then-clamped.
		gotD := t0.Sub(s0)
		switch {
		case t0 >= Infinity && s0 >= Infinity, t0 <= NegInfinity && s0 <= NegInfinity:
			want = 0
		case t0 >= Infinity:
			want = int64(InfDuration)
		case t0 <= NegInfinity:
			want = int64(NegInfDuration)
		case s0 >= Infinity:
			want = int64(NegInfDuration)
		case s0 <= NegInfinity:
			want = int64(InfDuration)
		default:
			diff := new(big.Int).Sub(big.NewInt(int64(t0)), big.NewInt(int64(s0)))
			want = clampBig(diff, int64(NegInfDuration), int64(InfDuration))
		}
		if int64(gotD) != want {
			t.Errorf("%v.Sub(%v) = %v, want %d", t0, s0, gotD, want)
		}

		// Algebraic spot-checks that hold even at the sentinels.
		if t0.Add(0) != t0 && t0 > NegInfinity && t0 < Infinity {
			t.Errorf("%v.Add(0) = %v, want identity", t0, t0.Add(0))
		}
		if d := t0.Sub(t0); d != 0 {
			t.Errorf("%v.Sub(self) = %v, want 0", t0, d)
		}
		if fin := t0 > NegInfinity && t0 < Infinity; fin && d0 > NegInfDuration && d0 < InfDuration {
			back := t0.Add(d0).Sub(t0)
			if sum := t0.Add(d0); sum > NegInfinity && sum < Infinity && back != d0 {
				t.Errorf("(%v+%v)-%v = %v, want %v", t0, d0, t0, back, d0)
			}
		}
	})
}
