// Package simtime provides the integer virtual-time base used throughout
// the simulator and the bound formulas.
//
// The paper's model measures everything in an abstract real-time unit; all
// interesting quantities are rational combinations of the message-delay
// bound d, the delay uncertainty u, and the clock skew ε (for example u/4,
// (1-1/k)·u, d/3). To keep every such quantity exact we use 64-bit integer
// ticks and choose experiment parameters divisible by Quantum, which is
// divisible by 2..9 and by 2k for all process counts used in experiments.
package simtime

import "fmt"

// Time is an absolute instant in virtual ticks. Real times in runs may be
// negative after shifting, so Time is signed.
type Time int64

// Duration is a span of virtual ticks.
type Duration int64

// Infinity is a sentinel Time later than any event in a run.
const Infinity Time = 1<<62 - 1

// NegInfinity is a sentinel Time earlier than any event in a run.
const NegInfinity Time = -(1<<62 - 1)

// InfDuration is a sentinel Duration longer than any measurable span,
// e.g. the latency of a pending operation whose response time is
// Infinity.
const InfDuration Duration = 1<<62 - 1

// NegInfDuration is the negative sentinel counterpart of InfDuration.
const NegInfDuration Duration = -(1<<62 - 1)

// Quantum is the recommended divisor for experiment parameters. It is
// 2^5·3^2·5·7 = 10080, divisible by every k in 2..10 and by 4 and 3, so
// u/4, d/3 and (1-1/k)·u are all exact for the experiment configurations.
const Quantum Duration = 10080

// Add returns t+dd, saturating at the sentinels: adding any duration to
// ±Infinity leaves it unchanged, and a result that would reach or pass a
// sentinel clamps to it instead of wrapping.
func (t Time) Add(dd Duration) Time {
	if t >= Infinity {
		return Infinity
	}
	if t <= NegInfinity {
		return NegInfinity
	}
	if dd >= InfDuration {
		return Infinity
	}
	if dd <= NegInfDuration {
		return NegInfinity
	}
	sum := int64(t) + int64(dd)
	if dd >= 0 {
		if sum < int64(t) || sum >= int64(Infinity) {
			return Infinity
		}
	} else if sum > int64(t) || sum <= int64(NegInfinity) {
		return NegInfinity
	}
	return Time(sum)
}

// Sub returns the duration from s to t, saturating at the sentinels:
// the distance from a finite time to ±Infinity is ±InfDuration, two
// like-signed infinities are 0 apart, and a finite difference that would
// reach a sentinel clamps to it.
func (t Time) Sub(s Time) Duration {
	switch {
	case t >= Infinity:
		if s >= Infinity {
			return 0
		}
		return InfDuration
	case t <= NegInfinity:
		if s <= NegInfinity {
			return 0
		}
		return NegInfDuration
	case s >= Infinity:
		return NegInfDuration
	case s <= NegInfinity:
		return InfDuration
	}
	// Both finite: |t|, |s| < 2^62, so the int64 difference cannot wrap,
	// but it can exceed the sentinel magnitude; clamp.
	diff := int64(t) - int64(s)
	if diff >= int64(InfDuration) {
		return InfDuration
	}
	if diff <= int64(NegInfDuration) {
		return NegInfDuration
	}
	return Duration(diff)
}

// String renders the time in ticks.
func (t Time) String() string {
	switch t {
	case Infinity:
		return "+inf"
	case NegInfinity:
		return "-inf"
	}
	return fmt.Sprintf("%d", int64(t))
}

// String renders the duration in ticks.
func (d Duration) String() string {
	switch d {
	case InfDuration:
		return "+inf"
	case NegInfDuration:
		return "-inf"
	}
	return fmt.Sprintf("%d", int64(d))
}

// Min returns the smaller of two durations.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two durations.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of d.
func (d Duration) Abs() Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Params bundles the timing parameters of the partially synchronous model:
// message delays lie in [D-U, D], clock skew is at most Epsilon, and X is
// Algorithm 1's accessor/mutator tradeoff parameter.
type Params struct {
	N       int      // number of processes
	D       Duration // maximum message delay (d)
	U       Duration // delay uncertainty (u); delays lie in [D-U, D]
	Epsilon Duration // maximum clock skew (ε)
	X       Duration // tradeoff parameter, in [0, D-Epsilon]
}

// Validate checks the structural constraints the paper places on the model
// parameters.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("simtime: need at least one process, got %d", p.N)
	}
	if p.D <= 0 {
		return fmt.Errorf("simtime: d must be positive, got %v", p.D)
	}
	if p.U < 0 || p.U > p.D {
		return fmt.Errorf("simtime: u must be in [0, d]=[0, %v], got %v", p.D, p.U)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("simtime: ε must be nonnegative, got %v", p.Epsilon)
	}
	maxX := p.D - p.Epsilon
	if maxX < 0 {
		// ε > d arises only for not-yet-synchronized systems (see
		// internal/clocksync); Algorithm 1's tradeoff parameter then has
		// no room.
		maxX = 0
	}
	if p.X < 0 || p.X > maxX {
		return fmt.Errorf("simtime: X must be in [0, max(0, d-ε)]=[0, %v], got %v", maxX, p.X)
	}
	return nil
}

// MinDelay returns the lower end of the admissible delay interval, d-u.
func (p Params) MinDelay() Duration { return p.D - p.U }

// OptimalEpsilon returns the best achievable clock synchronization skew
// for n processes with delay uncertainty u, namely (1-1/n)·u [Lundelius &
// Lynch 1984]. The result is exact when u is divisible by n.
func OptimalEpsilon(n int, u Duration) Duration {
	if n <= 0 {
		return 0
	}
	return u - u/Duration(n)
}

// DefaultParams returns the canonical experiment configuration used by the
// table benchmarks: n processes, d = 2·Quantum, u = d/2, optimal ε, and a
// balanced X = ε (so accessors take d-ε and mutators take 2ε).
func DefaultParams(n int) Params {
	d := 2 * Quantum
	u := d / 2
	eps := OptimalEpsilon(n, u)
	return Params{N: n, D: d, U: u, Epsilon: eps, X: eps}
}

// Frac returns (num/den)·d, rounding toward zero. For exact experiment
// parameters choose d divisible by den.
func Frac(d Duration, num, den int64) Duration {
	return Duration(int64(d) * num / den)
}
