package simtime

import (
	"testing"
	"testing/quick"
)

func TestTimeAddSub(t *testing.T) {
	tm := Time(100)
	if got := tm.Add(50); got != Time(150) {
		t.Errorf("Add: got %v, want 150", got)
	}
	if got := tm.Add(-200); got != Time(-100) {
		t.Errorf("Add negative: got %v, want -100", got)
	}
	if got := Time(150).Sub(Time(100)); got != Duration(50) {
		t.Errorf("Sub: got %v, want 50", got)
	}
}

func TestSentinelArithmeticSaturates(t *testing.T) {
	addCases := []struct {
		name string
		t    Time
		d    Duration
		want Time
	}{
		{"inf plus positive stays inf", Infinity, 100, Infinity},
		{"inf plus inf-duration stays inf", Infinity, InfDuration, Infinity},
		{"inf plus negative stays inf", Infinity, -100, Infinity},
		{"neg-inf plus positive stays neg-inf", NegInfinity, 100, NegInfinity},
		{"neg-inf plus negative stays neg-inf", NegInfinity, -100, NegInfinity},
		{"finite overflow clamps to inf", Infinity - 1, 100, Infinity},
		{"finite plus inf-duration clamps to inf", 5, InfDuration, Infinity},
		{"finite underflow clamps to neg-inf", NegInfinity + 1, -100, NegInfinity},
		{"finite plus neg-inf-duration clamps", 5, NegInfDuration, NegInfinity},
		{"finite stays exact", 100, 50, 150},
		{"finite negative stays exact", 100, -250, -150},
		{"zero delta is identity", 7, 0, 7},
	}
	for _, c := range addCases {
		if got := c.t.Add(c.d); got != c.want {
			t.Errorf("%s: %v.Add(%v) = %v, want %v", c.name, c.t, c.d, got, c.want)
		}
	}
	subCases := []struct {
		name string
		t, s Time
		want Duration
	}{
		{"pending latency saturates", Infinity, 100, InfDuration},
		{"pending latency from negative invoke", Infinity, -100, InfDuration},
		{"inf minus inf is zero", Infinity, Infinity, 0},
		{"neg-inf minus neg-inf is zero", NegInfinity, NegInfinity, 0},
		{"neg-inf minus finite saturates", NegInfinity, 100, NegInfDuration},
		{"finite minus inf saturates", 100, Infinity, NegInfDuration},
		{"finite minus neg-inf saturates", 100, NegInfinity, InfDuration},
		{"inf minus neg-inf saturates", Infinity, NegInfinity, InfDuration},
		{"neg-inf minus inf saturates", NegInfinity, Infinity, NegInfDuration},
		{"near-sentinel finite difference clamps", Infinity - 1, NegInfinity + 1, InfDuration},
		{"finite difference stays exact", 150, 100, 50},
		{"finite negative difference stays exact", 100, 150, -50},
	}
	for _, c := range subCases {
		if got := c.t.Sub(c.s); got != c.want {
			t.Errorf("%s: %v.Sub(%v) = %v, want %v", c.name, c.t, c.s, got, c.want)
		}
	}
}

func TestSentinelDurationString(t *testing.T) {
	if got := InfDuration.String(); got != "+inf" {
		t.Errorf("InfDuration.String() = %q, want %q", got, "+inf")
	}
	if got := NegInfDuration.String(); got != "-inf" {
		t.Errorf("NegInfDuration.String() = %q, want %q", got, "-inf")
	}
	if got := Duration(42).String(); got != "42" {
		t.Errorf("Duration(42).String() = %q, want %q", got, "42")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{Time(42), "42"},
		{Time(-7), "-7"},
		{Infinity, "+inf"},
		{NegInfinity, "-inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if MinTime(3, 5) != 3 || MaxTime(3, 5) != 5 {
		t.Error("MinTime/MaxTime wrong")
	}
}

func TestDurationAbs(t *testing.T) {
	if Duration(-7).Abs() != 7 {
		t.Error("Abs(-7) != 7")
	}
	if Duration(7).Abs() != 7 {
		t.Error("Abs(7) != 7")
	}
	if Duration(0).Abs() != 0 {
		t.Error("Abs(0) != 0")
	}
}

func TestQuantumDivisibility(t *testing.T) {
	for div := Duration(2); div <= 10; div++ {
		if Quantum%div != 0 {
			t.Errorf("Quantum %d not divisible by %d", Quantum, div)
		}
	}
	// Divisible by 2k for all experiment process counts k up to 8, so the
	// Theorem 3 shift amounts -(k-1)/(2k)·u are exact.
	for k := Duration(2); k <= 8; k++ {
		if Quantum%(2*k) != 0 {
			t.Errorf("Quantum %d not divisible by 2k=%d", Quantum, 2*k)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	valid := Params{N: 3, D: 100, U: 50, Epsilon: 25, X: 30}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Params
	}{
		{"zero processes", Params{N: 0, D: 100, U: 50, Epsilon: 25}},
		{"zero d", Params{N: 3, D: 0, U: 0, Epsilon: 0}},
		{"negative d", Params{N: 3, D: -5, U: 0, Epsilon: 0}},
		{"u exceeds d", Params{N: 3, D: 100, U: 101, Epsilon: 0}},
		{"negative u", Params{N: 3, D: 100, U: -1, Epsilon: 0}},
		{"negative epsilon", Params{N: 3, D: 100, U: 50, Epsilon: -1}},
		{"X negative", Params{N: 3, D: 100, U: 50, Epsilon: 25, X: -1}},
		{"X exceeds d-eps", Params{N: 3, D: 100, U: 50, Epsilon: 25, X: 76}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestParamsXBoundary(t *testing.T) {
	// X = 0 and X = d-ε are both allowed.
	for _, x := range []Duration{0, 75} {
		p := Params{N: 3, D: 100, U: 50, Epsilon: 25, X: x}
		if err := p.Validate(); err != nil {
			t.Errorf("X=%v should be valid: %v", x, err)
		}
	}
}

func TestMinDelay(t *testing.T) {
	p := Params{N: 3, D: 100, U: 30, Epsilon: 10}
	if got := p.MinDelay(); got != 70 {
		t.Errorf("MinDelay: got %v, want 70", got)
	}
}

func TestOptimalEpsilon(t *testing.T) {
	cases := []struct {
		n    int
		u    Duration
		want Duration
	}{
		{2, 100, 50},
		{4, 100, 75},
		{5, 100, 80},
		{1, 100, 0},
		{0, 100, 0},
		{10, Quantum, Quantum - Quantum/10},
	}
	for _, c := range cases {
		if got := OptimalEpsilon(c.n, c.u); got != c.want {
			t.Errorf("OptimalEpsilon(%d, %v) = %v, want %v", c.n, c.u, got, c.want)
		}
	}
}

func TestOptimalEpsilonBelowU(t *testing.T) {
	// ε = (1-1/n)u < u for all n ≥ 1, u > 0.
	f := func(n uint8, u uint16) bool {
		nn := int(n%16) + 1
		uu := Duration(u) + 1
		eps := OptimalEpsilon(nn, uu)
		return eps < uu && eps >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(5)
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	if p.N != 5 {
		t.Errorf("N = %d, want 5", p.N)
	}
	if p.D != 2*Quantum {
		t.Errorf("D = %v, want %v", p.D, 2*Quantum)
	}
	if p.U != p.D/2 {
		t.Errorf("U = %v, want D/2 = %v", p.U, p.D/2)
	}
	if p.Epsilon != OptimalEpsilon(5, p.U) {
		t.Errorf("Epsilon = %v, want optimal %v", p.Epsilon, OptimalEpsilon(5, p.U))
	}
	if p.X != p.Epsilon {
		t.Errorf("X = %v, want ε = %v", p.X, p.Epsilon)
	}
}

func TestDefaultParamsExactFractions(t *testing.T) {
	// The fractions used in the lower-bound constructions must be exact for
	// the default configurations.
	for n := 2; n <= 8; n++ {
		p := DefaultParams(n)
		if p.U%4 != 0 {
			t.Errorf("n=%d: u/4 inexact for u=%v", n, p.U)
		}
		if p.D%3 != 0 {
			t.Errorf("n=%d: d/3 inexact for d=%v", n, p.D)
		}
		if p.U%Duration(2*n) != 0 {
			t.Errorf("n=%d: u/(2n) inexact for u=%v", n, p.U)
		}
	}
}

func TestFrac(t *testing.T) {
	if got := Frac(120, 1, 3); got != 40 {
		t.Errorf("Frac(120,1,3) = %v, want 40", got)
	}
	if got := Frac(100, 3, 4); got != 75 {
		t.Errorf("Frac(100,3,4) = %v, want 75", got)
	}
}
