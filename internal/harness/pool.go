package harness

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// DeriveSeed returns the sub-seed for one named random stream of a master
// seed: master ⊕ FNV-1a(runID). Every independent stream of an experiment
// (workload choices, network delays, clock offsets, each sweep point, …)
// takes its own runID, so streams never alias each other and a run's
// output depends only on (master seed, runID) — never on which worker
// goroutine executes it or in what order.
func DeriveSeed(master int64, runID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(runID))
	return master ^ int64(h.Sum64())
}

// Parallelism resolves a requested worker count: values below 1 select
// GOMAXPROCS.
func Parallelism(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runIndexed executes f(0..n-1) across at most parallel worker
// goroutines and returns the lowest-index error (so failures are
// deterministic regardless of scheduling). With parallel ≤ 1 it runs
// inline in index order.
func runIndexed(n, parallel int, f func(i int) error) error {
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunIndexed executes f(0..n-1) across at most parallel workers
// (Parallelism semantics: < 1 selects GOMAXPROCS) and returns the
// lowest-index error. It is the generic deterministic fan-out primitive
// behind RunJobs, exported for subsystems (e.g. internal/adversary) that
// run non-Config work items: as long as f(i) depends only on i — derive
// per-index seeds with DeriveSeed — results are identical at every
// parallelism level.
func RunIndexed(n, parallel int, f func(i int) error) error {
	return runIndexed(n, Parallelism(parallel), f)
}

// Job is one experiment of a batch: a configuration plus its workload.
type Job struct {
	Config   Config
	Workload Workload
}

// RunJobs executes a batch of independent experiments across at most
// parallel worker goroutines (Parallelism semantics: < 1 selects
// GOMAXPROCS) and returns the results in job order. Each job is fully
// determined by its own seeds, so the output is bit-identical to running
// the jobs sequentially — use DeriveSeed to give every job independent
// streams of a single master seed. The first error (by job index) aborts
// the batch result.
func RunJobs(jobs []Job, parallel int) ([]*Result, error) {
	out := make([]*Result, len(jobs))
	err := runIndexed(len(jobs), Parallelism(parallel), func(i int) error {
		res, err := Run(jobs[i].Config, jobs[i].Workload)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
