package harness

import (
	"fmt"
	"sync"
	"testing"

	"lintime/internal/simtime"
)

func TestDeriveSeedIndependentStreams(t *testing.T) {
	master := int64(17)
	ids := []string{"workload", "config", "sweep/0/config", "sweep/1/config", "table/workload"}
	seen := map[int64]string{}
	for _, id := range ids {
		s := DeriveSeed(master, id)
		if prev, dup := seen[s]; dup {
			t.Errorf("streams %q and %q alias to seed %d", prev, id, s)
		}
		seen[s] = id
		if s == master {
			t.Errorf("stream %q derived the master seed itself", id)
		}
		if again := DeriveSeed(master, id); again != s {
			t.Errorf("DeriveSeed(%d, %q) not deterministic: %d vs %d", master, id, s, again)
		}
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("distinct masters must derive distinct sub-seeds")
	}
}

func TestParallelism(t *testing.T) {
	if Parallelism(4) != 4 {
		t.Error("explicit parallelism not honored")
	}
	if Parallelism(0) < 1 || Parallelism(-3) < 1 {
		t.Error("defaulted parallelism must be at least 1")
	}
}

func TestRunIndexedOrderAndErrors(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		var mu sync.Mutex
		ran := map[int]bool{}
		err := runIndexed(10, parallel, func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			return nil
		})
		if err != nil || len(ran) != 10 {
			t.Errorf("parallel=%d: ran %d indices, err %v", parallel, len(ran), err)
		}
		// Lowest-index error wins deterministically.
		err = runIndexed(10, parallel, func(i int) error {
			if i >= 3 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Errorf("parallel=%d: got error %v, want fail-3", parallel, err)
		}
	}
}

// jobBattery builds a mixed batch of independent experiments.
func jobBattery(master int64) []Job {
	p := simtime.DefaultParams(4)
	var jobs []Job
	for i, alg := range []string{AlgCore, AlgCentral, AlgSequencer, AlgCore} {
		runID := fmt.Sprintf("battery/%d", i)
		jobs = append(jobs, Job{
			Config: Config{Params: p, TypeName: "queue", Algorithm: alg,
				Network: NetRandom, Offsets: OffSpread,
				Seed: DeriveSeed(master, runID+"/config")},
			Workload: Workload{OpsPerProc: 5, MaxGap: 40,
				Seed: DeriveSeed(master, runID+"/workload")},
		})
	}
	return jobs
}

// TestRunJobsBitIdenticalAcrossParallelism is the determinism contract of
// the worker pool: the same batch must produce identical traces at every
// parallelism level, including repeated parallel executions (scheduling
// must not leak into results).
func TestRunJobsBitIdenticalAcrossParallelism(t *testing.T) {
	ref, err := RunJobs(jobBattery(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4, 8} {
		got, err := RunJobs(jobBattery(7), parallel)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("parallel=%d: %d results, want %d", parallel, len(got), len(ref))
		}
		for j := range got {
			if got[j].String() != ref[j].String() {
				t.Errorf("parallel=%d job %d: stats differ from sequential run", parallel, j)
			}
			if len(got[j].Trace.Ops) != len(ref[j].Trace.Ops) {
				t.Fatalf("parallel=%d job %d: trace sizes differ", parallel, j)
			}
			for k := range got[j].Trace.Ops {
				if got[j].Trace.Ops[k] != ref[j].Trace.Ops[k] {
					t.Fatalf("parallel=%d job %d: op %d differs from sequential run", parallel, j, k)
				}
			}
		}
	}
}

func TestRunJobsPropagatesError(t *testing.T) {
	jobs := jobBattery(7)
	jobs[2].Config.Algorithm = "nope"
	if _, err := RunJobs(jobs, 4); err == nil {
		t.Error("bad job must fail the batch")
	}
}

// TestMeasureAllTablesParallelIdentical asserts the full table suite
// renders byte-identically at every parallelism level.
func TestMeasureAllTablesParallelIdentical(t *testing.T) {
	p := simtime.DefaultParams(4)
	ref, err := MeasureAllTables(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4} {
		got, err := MeasureAllTablesParallel(p, 21, parallel)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].String() != ref[i].String() {
				t.Errorf("parallel=%d: table %d differs from sequential:\n%s\nvs\n%s",
					parallel, i+1, got[i], ref[i])
			}
		}
	}
}

// TestSweepXParallelIdentical asserts the sweep curve is identical at
// every parallelism level.
func TestSweepXParallelIdentical(t *testing.T) {
	p := simtime.DefaultParams(4)
	ref, err := SweepX(p, "queue", 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 8} {
		got, err := SweepXParallel(p, "queue", 4, 31, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("parallel=%d: %d points, want %d", parallel, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Errorf("parallel=%d point %d: %+v != %+v", parallel, i, got[i], ref[i])
			}
		}
	}
}

// TestMeasureOptimalParallelIdentical asserts per-class optimal-X
// measurement is parallelism-independent.
func TestMeasureOptimalParallelIdentical(t *testing.T) {
	p := simtime.DefaultParams(4)
	ref, err := MeasureOptimal("queue", p, 51)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureOptimalParallel("queue", p, 51, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range got {
		if got[i].Operation != ref[i].Operation || got[i].Measured != ref[i].Measured ||
			got[i].BestX != ref[i].BestX {
			t.Errorf("row %d differs: %+v vs %+v", i, got[i], ref[i])
		}
	}
}

// TestRunIndexed covers the exported deterministic fan-out primitive:
// every index runs exactly once at any parallelism, sequential execution
// preserves index order, and the reported error is the lowest-indexed one
// regardless of scheduling.
func TestRunIndexed(t *testing.T) {
	for _, parallel := range []int{1, 2, 4, 0} {
		var mu sync.Mutex
		ran := make([]int, 16)
		if err := RunIndexed(16, parallel, func(i int) error {
			mu.Lock()
			ran[i]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Errorf("parallel=%d: index %d ran %d times", parallel, i, c)
			}
		}
	}

	// Sequential mode runs strictly in index order.
	var order []int
	if err := RunIndexed(8, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}

	// The lowest-indexed error wins, at every parallelism.
	for _, parallel := range []int{1, 3, 8} {
		err := RunIndexed(12, parallel, func(i int) error {
			if i%3 == 2 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-2" {
			t.Errorf("parallel=%d: err = %v, want fail-2", parallel, err)
		}
	}

	// Sequential mode stops at the first error; parallel mode still
	// reports the lowest-indexed one.
	calls := 0
	_ = RunIndexed(10, 1, func(i int) error {
		calls++
		return fmt.Errorf("boom")
	})
	if calls != 1 {
		t.Errorf("sequential run made %d calls after error, want 1", calls)
	}

	// Zero items is a no-op.
	if err := RunIndexed(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Errorf("empty run: %v", err)
	}
}
