package harness

import (
	"testing"

	"lintime/internal/simtime"
)

// TestMeasureTableGolden pins the measured columns of Tables 1 and 2 for
// the canonical parameters and master seed 21. The values are exact
// because under the uniform-d network with zero offsets every Algorithm 1
// latency is timer-determined (measured == class formula); the pins guard
// the seed-derivation scheme — reordering or re-coupling the workload and
// config sub-seed streams would shift these numbers.
func TestMeasureTableGolden(t *testing.T) {
	p := simtime.DefaultParams(4)
	want := map[int]map[string][2]simtime.Duration{
		1: {
			"rmw":        {27720, 40320},
			"write":      {15120, 40320},
			"read":       {20160, 40320},
			"write+read": {35280, 80640},
		},
		2: {
			"enqueue":      {15120, 40320},
			"dequeue":      {27720, 40320},
			"peek":         {20160, 40320},
			"enqueue+peek": {35280, 80640},
		},
	}
	for num, rows := range want {
		tab, err := MeasureTable(num, p, 21)
		if err != nil {
			t.Fatalf("table %d: %v", num, err)
		}
		seen := map[string]bool{}
		for _, r := range tab.Rows {
			exp, ok := rows[r.Operation]
			if !ok {
				continue
			}
			seen[r.Operation] = true
			if r.MeasuredMax != exp[0] || r.BaselineMax != exp[1] {
				t.Errorf("table %d %s: measured=%v baseline=%v, want %v/%v",
					num, r.Operation, r.MeasuredMax, r.BaselineMax, exp[0], exp[1])
			}
		}
		for op := range rows {
			if !seen[op] {
				t.Errorf("table %d: row %q missing", num, op)
			}
		}
	}
}

// TestMeasureTableSeedStreamsIndependent asserts the workload and config
// sub-seed streams really are decoupled: changing the master seed changes
// the derived sub-seeds, but the measured maxima above stay pinned to the
// formulas because the uniform network leaves no seed-dependent slack.
func TestMeasureTableSeedStreamsIndependent(t *testing.T) {
	if DeriveSeed(21, "table/workload") == DeriveSeed(21, "table/config") {
		t.Fatal("workload and config sub-seeds alias")
	}
	p := simtime.DefaultParams(4)
	a, err := MeasureTable(2, p, 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureTable(2, p, 9000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].MeasuredMax != b.Rows[i].MeasuredMax {
			t.Errorf("row %s: measured max is seed-dependent under uniform network (%v vs %v)",
				a.Rows[i].Operation, a.Rows[i].MeasuredMax, b.Rows[i].MeasuredMax)
		}
	}
}
