package harness

import (
	"reflect"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/obs"
)

// TestAttributionIdentityAllBackends is the attribution-identity
// property test: on every backend × network × offset assignment, every
// completed operation's attribution terms sum EXACTLY to its measured
// respond−invoke latency. The identity is structural (telescoping owner
// intervals), so a single violation means a lost or double-counted
// interval — a bug, not noise.
func TestAttributionIdentityAllBackends(t *testing.T) {
	p := hp()
	networks := []string{NetUniform, NetRandom, NetAdversary}
	offsets := []string{OffZero, OffSpread, OffAlternating}
	for _, alg := range Algorithms() {
		for i, network := range networks {
			alg, network, off := alg, network, offsets[i]
			t.Run(alg+"/"+network, func(t *testing.T) {
				typeName := "queue"
				if alg == AlgQuorum {
					typeName = "register"
				}
				coll := obs.NewCollector(64)
				res, err := Run(Config{Params: p, TypeName: typeName, Algorithm: alg,
					Network: network, Offsets: off, Seed: 7, Tracer: coll},
					Workload{OpsPerProc: 4, MaxGap: p.D / 2, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				dt, err := adt.Lookup(typeName)
				if err != nil {
					t.Fatal(err)
				}
				classes := ClassesFor(dt)
				ap := obs.AttrParams{D: int64(p.D), U: int64(p.U),
					Epsilon: int64(p.Epsilon), X: int64(p.X)}
				trees := coll.Trees()
				want := 0
				for _, st := range res.Stats {
					want += st.Count
				}
				if len(trees) != want {
					t.Fatalf("retained %d trees, want %d (one per completed op)",
						len(trees), want)
				}
				for _, tr := range trees {
					a, ok := coll.Attribute(tr.Span, classes[tr.Op].String(), tr.Start, ap)
					if !ok {
						t.Fatalf("span %d: Attribute refused a completed root", tr.Span)
					}
					if got, lat := a.Sum(), tr.End-tr.Start; got != lat {
						t.Errorf("span %d (%s): terms sum to %d, measured latency %d: %v",
							tr.Span, tr.Op, got, lat, a)
					}
				}
				if alg == AlgQuorum {
					// The quorum backend opens a child span per protocol phase;
					// write operations run two (read_quorum + write_back).
					phased := 0
					for _, tr := range trees {
						phased += len(tr.Children)
					}
					if phased == 0 {
						t.Error("quorum run produced no phase child spans")
					}
				}
			})
		}
	}
}

// Tracing must observe, never perturb: the same seed with and without
// the collector yields identical latency statistics and replica states.
func TestTracingDoesNotPerturbExecution(t *testing.T) {
	p := hp()
	run := func(tracer obs.Tracer) *Result {
		res, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore,
			Network: NetRandom, Offsets: OffRandom, Seed: 11, Tracer: tracer},
			Workload{OpsPerProc: 6, MaxGap: 40, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(obs.NewCollector(128))
	if !reflect.DeepEqual(plain.Stats, traced.Stats) {
		t.Errorf("latency stats diverge under tracing:\nplain:  %+v\ntraced: %+v",
			plain.Stats, traced.Stats)
	}
	if !reflect.DeepEqual(plain.Fingerprints, traced.Fingerprints) {
		t.Errorf("replica fingerprints diverge under tracing")
	}
}
