package harness

import (
	"fmt"
	"strings"

	"lintime/internal/adt"
	"lintime/internal/bounds"
	"lintime/internal/classify"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// MeasuredRow extends a bounds table row with measured worst-case
// latencies: Algorithm 1 (corrected timers) at the configured X, and the
// centralized folklore baseline.
type MeasuredRow struct {
	bounds.Row
	// ExpectedAtX is the class upper bound at the configured X (the
	// quantity the measurement must match exactly).
	ExpectedAtX bounds.Bound
	// MeasuredMax is Algorithm 1's observed worst-case latency.
	MeasuredMax simtime.Duration
	// BaselineMax is the centralized baseline's observed worst-case.
	BaselineMax simtime.Duration
}

// MeasuredTable is one of the paper's tables with measured columns.
type MeasuredTable struct {
	Number   int
	Title    string
	Params   simtime.Params
	TypeName string
	Rows     []MeasuredRow
}

// String renders the measured table.
func (t *MeasuredTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d (measured): %s  [type=%s n=%d d=%v u=%v ε=%v X=%v]\n",
		t.Number, t.Title, t.TypeName, t.Params.N, t.Params.D, t.Params.U, t.Params.Epsilon, t.Params.X)
	fmt.Fprintf(&b, "  %-14s | %-20s | %-28s | %-20s | %-10s | %-10s\n",
		"operation", "previous lower", "new lower", "upper @X", "measured", "baseline")
	fmt.Fprintf(&b, "  %s\n", strings.Repeat("-", 118))
	for _, r := range t.Rows {
		measured := "—"
		if r.MeasuredMax >= 0 {
			measured = r.MeasuredMax.String()
		}
		baseline := "—"
		if r.BaselineMax >= 0 {
			baseline = r.BaselineMax.String()
		}
		fmt.Fprintf(&b, "  %-14s | %-20s | %-28s | %-20s | %-10s | %-10s\n",
			r.Operation, r.PrevLower, r.NewLower, r.ExpectedAtX, measured, baseline)
		if r.Note != "" {
			fmt.Fprintf(&b, "  %-14s   note: %s\n", "", r.Note)
		}
	}
	return b.String()
}

// tableType maps table numbers to the data type they measure.
func tableType(number int) (string, error) {
	switch number {
	case 1:
		return "rmwregister", nil
	case 2, 5:
		return "queue", nil
	case 3:
		return "stack", nil
	case 4:
		return "tree", nil
	default:
		return "", fmt.Errorf("harness: no table %d (have 1-5)", number)
	}
}

// classRepresentatives maps Table 5's class rows to queue operations.
var classRepresentatives = map[string]string{
	"pure accessor":  adt.OpPeek,
	"last-sens. MOP": adt.OpEnqueue,
	"pair-free op":   adt.OpDequeue,
	"MOP+AOP sum":    adt.OpEnqueue + "+" + adt.OpPeek,
	"any op":         adt.OpDequeue,
}

// MeasureTable regenerates one of the paper's Tables 1-5 with measured
// worst-case latencies from a deterministic workload battery: Algorithm 1
// and the centralized baseline run the same closed-loop workload on the
// table's data type under the worst-case network (uniform delay d).
// MeasureTable runs sequentially; MeasureTableParallel fans the runs out.
func MeasureTable(number int, p simtime.Params, seed int64) (*MeasuredTable, error) {
	return MeasureTableParallel(number, p, seed, 1)
}

// MeasureTableParallel is MeasureTable with the algorithm and baseline
// runs fanned across at most parallel workers. The master seed is split
// into independent sub-seeds for the workload stream and the
// network/offset configuration stream (they must not alias — a coupled
// stream correlates operation gaps with message delays), so the output is
// deterministic and identical for every parallelism level.
func MeasureTableParallel(number int, p simtime.Params, seed int64, parallel int) (*MeasuredTable, error) {
	typeName, err := tableType(number)
	if err != nil {
		return nil, err
	}
	static := bounds.AllTables(p)[number-1]
	wl := Workload{OpsPerProc: 12, MaxGap: p.D / 2, Seed: DeriveSeed(seed, "table/workload")}
	cfgSeed := DeriveSeed(seed, "table/config")

	results, err := RunJobs([]Job{
		{Config: Config{Params: p, TypeName: typeName, Algorithm: AlgCore,
			Network: NetUniform, Offsets: OffZero, Seed: cfgSeed, Trace: sim.TraceOps}, Workload: wl},
		{Config: Config{Params: p, TypeName: typeName, Algorithm: AlgCentral,
			Network: NetUniform, Offsets: OffZero, Seed: cfgSeed, Trace: sim.TraceOps}, Workload: wl},
	}, Parallelism(parallel))
	if err != nil {
		return nil, err
	}
	coreRes, baseRes := results[0], results[1]
	if !coreRes.Converged() {
		return nil, fmt.Errorf("harness: core replicas diverged measuring table %d", number)
	}

	dt, _ := adt.Lookup(typeName)
	classes := ClassesFor(dt)
	maxOf := func(res *Result, op string) simtime.Duration {
		if st, ok := res.Stats[op]; ok {
			return st.Max
		}
		return -1
	}
	out := &MeasuredTable{Number: number, Title: static.Title, Params: p, TypeName: typeName}
	for _, row := range static.Rows {
		mr := MeasuredRow{Row: row, MeasuredMax: -1, BaselineMax: -1}
		opName := row.Operation
		if number == 5 {
			opName = classRepresentatives[row.Operation]
		}
		if parts := strings.Split(opName, "+"); len(parts) == 2 {
			// Sum rows: add the component worst cases.
			a, b := maxOf(coreRes, parts[0]), maxOf(coreRes, parts[1])
			ba, bb := maxOf(baseRes, parts[0]), maxOf(baseRes, parts[1])
			if a >= 0 && b >= 0 {
				mr.MeasuredMax = a + b
			}
			if ba >= 0 && bb >= 0 {
				mr.BaselineMax = ba + bb
			}
			ca, cb := classes[parts[0]], classes[parts[1]]
			mr.ExpectedAtX = bounds.Bound{
				Expr: "sum",
				Value: bounds.UpperFromClass(p, ca).Value +
					bounds.UpperFromClass(p, cb).Value,
				Source: "Alg 1 (corrected)",
			}
		} else if opName != "" {
			mr.MeasuredMax = maxOf(coreRes, opName)
			mr.BaselineMax = maxOf(baseRes, opName)
			mr.ExpectedAtX = bounds.UpperFromClass(p, classes[opName])
		}
		out.Rows = append(out.Rows, mr)
	}
	return out, nil
}

// MeasureAllTables regenerates Tables 1-5 sequentially.
func MeasureAllTables(p simtime.Params, seed int64) ([]*MeasuredTable, error) {
	return MeasureAllTablesParallel(p, seed, 1)
}

// MeasureAllTablesParallel regenerates Tables 1-5 with the per-table
// simulator runs fanned across at most parallel workers. Output is
// bit-identical to the sequential MeasureAllTables.
func MeasureAllTablesParallel(p simtime.Params, seed int64, parallel int) ([]*MeasuredTable, error) {
	out := make([]*MeasuredTable, 5)
	err := runIndexed(5, Parallelism(parallel), func(i int) error {
		t, err := MeasureTableParallel(i+1, p, seed, parallel)
		if err != nil {
			return err
		}
		out[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OptimalRow is one operation measured at its per-class optimal X — the
// quantity the paper's tables quote (pure mutators at X=0 cost ε; the
// paper's pure accessors at X=d-ε cost ε, ours 2ε).
type OptimalRow struct {
	Operation string
	Class     classify.Class
	// BestX is the X minimizing the class formula.
	BestX simtime.Duration
	// Measured is the worst-case latency observed at BestX.
	Measured simtime.Duration
	// Formula is the class bound at BestX.
	Formula bounds.Bound
}

// MeasureOptimal measures every operation of a data type at its per-class
// optimal X: the whole workload battery runs once at X=0 (optimal for
// pure mutators and mixed ops) and once at X=d-ε (optimal for pure
// accessors), and each operation reports the run matching its class.
func MeasureOptimal(typeName string, p simtime.Params, seed int64) ([]OptimalRow, error) {
	return MeasureOptimalParallel(typeName, p, seed, 1)
}

// MeasureOptimalParallel is MeasureOptimal with the two workload runs
// (X=0 and X=d-ε) fanned across workers.
func MeasureOptimalParallel(typeName string, p simtime.Params, seed int64, parallel int) ([]OptimalRow, error) {
	dt, err := adt.Lookup(typeName)
	if err != nil {
		return nil, err
	}
	classes := ClassesFor(dt)
	wl := Workload{OpsPerProc: 12, MaxGap: p.D / 2, Seed: DeriveSeed(seed, "optimal/workload")}
	cfgSeed := DeriveSeed(seed, "optimal/config")

	configAt := func(x simtime.Duration) Config {
		q := p
		q.X = x
		return Config{Params: q, TypeName: typeName, Algorithm: AlgCore,
			Network: NetUniform, Offsets: OffZero, Seed: cfgSeed, Trace: sim.TraceOps}
	}
	results, err := RunJobs([]Job{
		{Config: configAt(0), Workload: wl},
		{Config: configAt(p.D - p.Epsilon), Workload: wl},
	}, Parallelism(parallel))
	if err != nil {
		return nil, err
	}
	atZero, atMax := results[0], results[1]

	var rows []OptimalRow
	for _, op := range dt.Ops() {
		class := classes[op.Name]
		row := OptimalRow{Operation: op.Name, Class: class}
		var res *Result
		q := p
		if class == classify.PureAccessor {
			row.BestX = p.D - p.Epsilon
			res = atMax
		} else {
			row.BestX = 0
			res = atZero
		}
		q.X = row.BestX
		row.Formula = bounds.UpperFromClass(q, class)
		if st, ok := res.Stats[op.Name]; ok {
			row.Measured = st.Max
		} else {
			row.Measured = -1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOptimal renders the optimal-X measurement.
func FormatOptimal(typeName string, rows []OptimalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-operation optimal X on %s:\n", typeName)
	fmt.Fprintf(&b, "  %-12s %-6s %-10s %-24s %-10s\n", "operation", "class", "best X", "formula", "measured")
	for _, r := range rows {
		measured := "—"
		if r.Measured >= 0 {
			measured = r.Measured.String()
		}
		fmt.Fprintf(&b, "  %-12s %-6s %-10v %-24s %-10s\n",
			r.Operation, r.Class, r.BestX, r.Formula, measured)
	}
	return b.String()
}

// SweepPoint is one X value of the accessor/mutator tradeoff sweep.
type SweepPoint struct {
	X simtime.Duration
	// Measured worst-case latencies per class.
	AOPMax, MOPMax, OOPMax simtime.Duration
	// The corrected formulas at this X.
	AOPBound, MOPBound, OOPBound simtime.Duration
}

// SweepX measures the X tradeoff (§5.1.2): for points+1 values of
// X across [0, d-ε], run the workload and record worst-case latencies per
// operation class alongside the formulas d-X+ε, X+ε, d+ε.
func SweepX(p simtime.Params, typeName string, points int, seed int64) ([]SweepPoint, error) {
	return SweepXParallel(p, typeName, points, seed, 1)
}

// SweepXParallel is SweepX with the per-X simulator runs fanned across at
// most parallel workers. Each sweep point draws its workload and config
// streams from sub-seeds derived from (seed, point index), so the curve
// is deterministic and identical at every parallelism level.
func SweepXParallel(p simtime.Params, typeName string, points int, seed int64, parallel int) ([]SweepPoint, error) {
	if points < 1 {
		return nil, fmt.Errorf("harness: need at least 1 sweep interval")
	}
	dt, err := adt.Lookup(typeName)
	if err != nil {
		return nil, err
	}
	classes := ClassesFor(dt)
	out := make([]SweepPoint, points+1)
	span := p.D - p.Epsilon
	err = runIndexed(points+1, Parallelism(parallel), func(i int) error {
		q := p
		q.X = span * simtime.Duration(i) / simtime.Duration(points)
		runID := fmt.Sprintf("sweep/%d", i)
		res, err := Run(Config{Params: q, TypeName: typeName, Algorithm: AlgCore,
			Network: NetUniform, Offsets: OffZero, Seed: DeriveSeed(seed, runID+"/config"),
			Trace: sim.TraceOps},
			Workload{OpsPerProc: 10, MaxGap: q.D / 2, Seed: DeriveSeed(seed, runID+"/workload")})
		if err != nil {
			return err
		}
		pt := SweepPoint{
			X:        q.X,
			AOPBound: q.D - q.X + q.Epsilon,
			MOPBound: q.X + q.Epsilon,
			OOPBound: q.D + q.Epsilon,
		}
		for op, st := range res.Stats {
			switch classes[op] {
			case classify.PureAccessor:
				pt.AOPMax = simtime.Max(pt.AOPMax, st.Max)
			case classify.PureMutator:
				pt.MOPMax = simtime.Max(pt.MOPMax, st.Max)
			default:
				pt.OOPMax = simtime.Max(pt.OOPMax, st.Max)
			}
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatSweep renders a sweep as an aligned series table.
func FormatSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n",
		"X", "AOP max", "d-X+ε", "MOP max", "X+ε", "OOP max", "d+ε")
	fmt.Fprintf(&b, "  %s\n", strings.Repeat("-", 80))
	for _, pt := range points {
		fmt.Fprintf(&b, "  %-10v | %-10v %-10v | %-10v %-10v | %-10v %-10v\n",
			pt.X, pt.AOPMax, pt.AOPBound, pt.MOPMax, pt.MOPBound, pt.OOPMax, pt.OOPBound)
	}
	return b.String()
}
