package harness

import (
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
)

func hp() simtime.Params { return simtime.DefaultParams(4) }

func TestRunAllAlgorithms(t *testing.T) {
	p := hp()
	for _, alg := range Algorithms() {
		t.Run(alg, func(t *testing.T) {
			typeName := "queue"
			if alg == AlgQuorum {
				typeName = "register" // the quorum backend serves only the register
			}
			res, err := Run(Config{Params: p, TypeName: typeName, Algorithm: alg,
				Network: NetRandom, Offsets: OffSpread, Seed: 3},
				Workload{OpsPerProc: 5, MaxGap: 50, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, st := range res.Stats {
				total += st.Count
			}
			if total != 4*5 {
				t.Errorf("ran %d ops, want 20", total)
			}
			if !res.Converged() {
				t.Error("replicas diverged")
			}
			if !res.CheckLinearizable() {
				t.Error("run not linearizable")
			}
		})
	}
}

func TestRunUnknownInputs(t *testing.T) {
	p := hp()
	wl := Workload{OpsPerProc: 1, Seed: 1}
	if _, err := Run(Config{Params: p, TypeName: "nope", Algorithm: AlgCore}, wl); err == nil {
		t.Error("unknown type should error")
	}
	if _, err := Run(Config{Params: p, TypeName: "queue", Algorithm: "nope"}, wl); err == nil {
		t.Error("unknown algorithm should error")
	}
	if _, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore, Network: "nope"}, wl); err == nil {
		t.Error("unknown network should error")
	}
	if _, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore, Offsets: "nope"}, wl); err == nil {
		t.Error("unknown offsets should error")
	}
}

func TestWorkloadMix(t *testing.T) {
	p := hp()
	res, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore, Seed: 9},
		Workload{OpsPerProc: 10, Seed: 9, Mix: []OpPick{{Op: adt.OpEnqueue, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 1 || res.Stats[adt.OpEnqueue] == nil {
		t.Errorf("mix should restrict to enqueue, got %v", res.OpNames())
	}
}

func TestWorkloadMixValidation(t *testing.T) {
	p := hp()
	if _, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore},
		Workload{OpsPerProc: 1, Mix: []OpPick{{Op: "nope", Weight: 1}}}); err == nil {
		t.Error("unknown mix op should error")
	}
	if _, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore},
		Workload{OpsPerProc: 1, Mix: []OpPick{{Op: adt.OpPeek, Weight: 0}}}); err == nil {
		t.Error("zero weight should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := hp()
	cfg := Config{Params: p, TypeName: "stack", Algorithm: AlgCore, Network: NetRandom,
		Offsets: OffRandom, Seed: 5}
	wl := Workload{OpsPerProc: 6, MaxGap: 30, Seed: 6}
	a, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Ops) != len(b.Trace.Ops) {
		t.Fatal("run sizes differ")
	}
	for i := range a.Trace.Ops {
		if a.Trace.Ops[i] != b.Trace.Ops[i] {
			t.Errorf("op %d differs between identical runs", i)
		}
	}
}

func TestCoreLatenciesMatchFormulas(t *testing.T) {
	// Under uniform delay d and zero skew, the measured worst cases equal
	// the (corrected) Lemma 4 values exactly.
	p := hp()
	res, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore,
		Network: NetUniform, Offsets: OffZero, Seed: 7},
		Workload{OpsPerProc: 10, MaxGap: p.D, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]simtime.Duration{
		adt.OpPeek:    p.D - p.X + p.Epsilon,
		adt.OpEnqueue: p.X + p.Epsilon,
		adt.OpDequeue: p.D + p.Epsilon,
	}
	for op, w := range want {
		st := res.Stats[op]
		if st == nil {
			t.Fatalf("no %s in workload", op)
		}
		if st.Max != w {
			t.Errorf("%s max = %v, want %v", op, st.Max, w)
		}
		if st.Min != w {
			t.Errorf("%s min = %v, want %v (timer-driven latency is exact)", op, st.Min, w)
		}
	}
}

func TestBaselineSlowerThanCore(t *testing.T) {
	// The headline claim: Algorithm 1 beats the 2d folklore baselines on
	// every operation class that it accelerates.
	p := hp()
	wl := Workload{OpsPerProc: 8, MaxGap: 40, Seed: 11}
	coreRes, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore,
		Network: NetUniform, Offsets: OffZero, Seed: 11}, wl)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCentral,
		Network: NetUniform, Offsets: OffZero, Seed: 11}, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{adt.OpEnqueue, adt.OpPeek, adt.OpDequeue} {
		c, b := coreRes.Stats[op], baseRes.Stats[op]
		if c == nil || b == nil {
			t.Fatalf("missing op %s", op)
		}
		if c.Max >= b.Max {
			t.Errorf("%s: core max %v not below baseline max %v", op, c.Max, b.Max)
		}
	}
}

func TestAllOOPAblation(t *testing.T) {
	// Disabling classification costs latency: every op becomes d+ε.
	p := hp()
	res, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCoreAllOOP,
		Network: NetUniform, Offsets: OffZero, Seed: 13},
		Workload{OpsPerProc: 6, MaxGap: 40, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for op, st := range res.Stats {
		if st.Max != p.D+p.Epsilon {
			t.Errorf("all-OOP %s max = %v, want %v", op, st.Max, p.D+p.Epsilon)
		}
	}
	if !res.CheckLinearizable() {
		t.Error("all-OOP ablation must stay linearizable")
	}
}

func TestLatencyStats(t *testing.T) {
	s := &LatencyStats{}
	s.add(10)
	s.add(30)
	s.add(20)
	if s.Count != 3 || s.Min != 10 || s.Max != 30 || s.Mean() != 20 {
		t.Errorf("stats wrong: %+v mean %v", s, s.Mean())
	}
	empty := &LatencyStats{}
	if empty.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestMeasureTableAll(t *testing.T) {
	p := hp()
	tables, err := MeasureAllTables(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		if tab.String() == "" {
			t.Errorf("table %d renders empty", tab.Number)
		}
		for _, row := range tab.Rows {
			if row.MeasuredMax < 0 {
				continue // sum rows of unmeasured ops
			}
			if !row.ExpectedAtX.Defined() {
				t.Errorf("table %d row %s has measurement but no expectation", tab.Number, row.Operation)
				continue
			}
			if row.MeasuredMax != row.ExpectedAtX.Value {
				t.Errorf("table %d row %s: measured %v != expected %v",
					tab.Number, row.Operation, row.MeasuredMax, row.ExpectedAtX.Value)
			}
			if row.BaselineMax >= 0 && !strings.Contains(row.Operation, "+") {
				if row.BaselineMax > 2*p.D {
					t.Errorf("table %d row %s: baseline %v exceeds 2d", tab.Number, row.Operation, row.BaselineMax)
				}
			}
		}
	}
}

func TestMeasureTableUnknownNumber(t *testing.T) {
	if _, err := MeasureTable(9, hp(), 1); err == nil {
		t.Error("table 9 should error")
	}
}

func TestMeasureOptimal(t *testing.T) {
	// The paper's table entries at per-row optimal X: pure mutators cost
	// exactly ε (X=0), pure accessors exactly 2ε (corrected; X=d-ε),
	// mixed ops d+ε regardless.
	p := hp()
	rows, err := MeasureOptimal("queue", p, 51)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]simtime.Duration{
		adt.OpEnqueue: p.Epsilon,
		adt.OpPeek:    2 * p.Epsilon,
		adt.OpDequeue: p.D + p.Epsilon,
	}
	for _, r := range rows {
		if r.Measured < 0 {
			t.Errorf("%s unmeasured", r.Operation)
			continue
		}
		if r.Measured != want[r.Operation] {
			t.Errorf("%s at optimal X: measured %v, want %v", r.Operation, r.Measured, want[r.Operation])
		}
		if r.Measured != r.Formula.Value {
			t.Errorf("%s: measured %v != formula %v", r.Operation, r.Measured, r.Formula.Value)
		}
	}
	if FormatOptimal("queue", rows) == "" {
		t.Error("empty rendering")
	}
}

func TestMeasureOptimalUnknownType(t *testing.T) {
	if _, err := MeasureOptimal("nope", hp(), 1); err == nil {
		t.Error("unknown type should error")
	}
}

func TestSweepX(t *testing.T) {
	p := hp()
	points, err := SweepX(p, "queue", 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points, want 5", len(points))
	}
	if points[0].X != 0 || points[4].X != p.D-p.Epsilon {
		t.Errorf("sweep endpoints wrong: %v .. %v", points[0].X, points[4].X)
	}
	for _, pt := range points {
		if pt.AOPMax != pt.AOPBound {
			t.Errorf("X=%v: AOP measured %v != bound %v", pt.X, pt.AOPMax, pt.AOPBound)
		}
		if pt.MOPMax != pt.MOPBound {
			t.Errorf("X=%v: MOP measured %v != bound %v", pt.X, pt.MOPMax, pt.MOPBound)
		}
		if pt.OOPMax != pt.OOPBound {
			t.Errorf("X=%v: OOP measured %v != bound %v", pt.X, pt.OOPMax, pt.OOPBound)
		}
	}
	// The tradeoff: accessors get monotonically faster with X, mutators
	// slower.
	for i := 1; i < len(points); i++ {
		if points[i].AOPMax >= points[i-1].AOPMax {
			t.Error("AOP latency should fall as X grows")
		}
		if points[i].MOPMax <= points[i-1].MOPMax {
			t.Error("MOP latency should rise as X grows")
		}
	}
	if FormatSweep(points) == "" {
		t.Error("sweep renders empty")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := SweepX(hp(), "queue", 0, 1); err == nil {
		t.Error("zero intervals should error")
	}
	if _, err := SweepX(hp(), "nope", 2, 1); err == nil {
		t.Error("unknown type should error")
	}
}

func TestMessageOverhead(t *testing.T) {
	// Communication cost per algorithm: Algorithm 1 pays n-1 messages per
	// mutator and zero per pure accessor; the centralized baseline pays
	// 2 per remote op; the sequencer up to n per remote op.
	p := hp() // n = 4
	mutOnly := Workload{OpsPerProc: 5, Seed: 3, Mix: []OpPick{{Op: adt.OpEnqueue, Weight: 1}}}
	accOnly := Workload{OpsPerProc: 5, Seed: 3, Mix: []OpPick{{Op: adt.OpPeek, Weight: 1}}}

	res, err := Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore, Seed: 3}, mutOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MessagesPerOp(); got != float64(p.N-1) {
		t.Errorf("core mutator messages/op = %v, want %d", got, p.N-1)
	}
	res, err = Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCore, Seed: 3}, accOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MessageCount(); got != 0 {
		t.Errorf("core accessors sent %d messages, want 0", got)
	}
	res, err = Run(Config{Params: p, TypeName: "queue", Algorithm: AlgCentral, Seed: 3}, accOnly)
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 4 processes are remote (2 msgs/op); the server is free.
	if got, want := res.MessagesPerOp(), 2.0*3/4; got != want {
		t.Errorf("central messages/op = %v, want %v", got, want)
	}
}

func TestResultString(t *testing.T) {
	p := hp()
	res, err := Run(Config{Params: p, TypeName: "counter", Algorithm: AlgCore, Seed: 41},
		Workload{OpsPerProc: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty result string")
	}
}
