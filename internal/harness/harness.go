// Package harness assembles complete experiments: it wires data types,
// algorithms, networks and clock-offset assignments into simulator runs,
// drives closed-loop workloads, collects per-operation latency statistics,
// and regenerates the paper's tables with measured columns.
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/folklore"
	"lintime/internal/lincheck"
	"lintime/internal/obs"
	"lintime/internal/quorum"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Algorithm names accepted by Config.
const (
	AlgCore       = "core"        // Algorithm 1 with corrected timers
	AlgCorePaper  = "core-paper"  // Algorithm 1 with the paper's literal timers
	AlgCoreAllOOP = "core-alloop" // ablation: classification disabled
	AlgCentral    = "central"     // folklore centralized
	AlgSequencer  = "sequencer"   // folklore total-order broadcast
	AlgQuorum     = "quorum"      // ABD crash-tolerant majority-quorum register
)

// Algorithms lists the accepted algorithm names.
func Algorithms() []string {
	return []string{AlgCore, AlgCorePaper, AlgCoreAllOOP, AlgCentral, AlgSequencer, AlgQuorum}
}

// Network names accepted by Config.
const (
	NetUniform    = "uniform"     // every delay = d
	NetUniformMin = "uniform-min" // every delay = d-u
	NetRandom     = "random"      // i.i.d. uniform in [d-u, d]
	NetAdversary  = "adversarial" // extremal split by sender
)

// Offset assignment names accepted by Config.
const (
	OffZero        = "zero"
	OffSpread      = "spread"
	OffAlternating = "alternating"
	OffRandom      = "random"
)

// Config selects one experiment configuration.
type Config struct {
	Params    simtime.Params
	TypeName  string
	Algorithm string
	Network   string
	Offsets   string
	Seed      int64

	// Trace selects how much of the run the engine records (zero value =
	// sim.TraceFull). Bulk pipelines that only read Ops and Msgs — the
	// measurement tables, sweeps, and load simulations — run at
	// sim.TraceOps; the execution itself is identical at every level.
	Trace sim.TraceLevel

	// Tracer, when non-nil, receives span waypoints from the engine (an
	// obs.Ring, or an obs.Collector for causal trees with latency
	// attribution). The execution is identical with or without it; nil
	// (the default) keeps the engine's zero-cost tracing-off path.
	Tracer obs.Tracer
}

// Workload is a closed-loop random workload: each process issues
// OpsPerProc operations drawn from the type's declared operations (or the
// weighted Mix), waiting a random gap in [0, MaxGap] between response and
// next invocation.
type Workload struct {
	OpsPerProc int
	MaxGap     simtime.Duration
	Seed       int64
	Mix        []OpPick // empty = uniform over all declared ops
}

// OpPick weights one operation in a workload mix.
type OpPick struct {
	Op     string
	Weight int
}

// LatencyStats aggregates latencies of one operation.
type LatencyStats struct {
	Count    int
	Min, Max simtime.Duration
	sum      int64
}

func (s *LatencyStats) add(d simtime.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if s.Count == 0 || d > s.Max {
		s.Max = d
	}
	s.Count++
	s.sum += int64(d)
}

// Mean returns the average latency.
func (s *LatencyStats) Mean() simtime.Duration {
	if s.Count == 0 {
		return 0
	}
	return simtime.Duration(s.sum / int64(s.Count))
}

// Result is the outcome of one experiment run.
type Result struct {
	Config       Config
	Trace        *sim.Trace
	Stats        map[string]*LatencyStats
	Fingerprints []string // per-replica object state (core algorithms only)
}

// MessageCount returns the total number of messages the algorithm sent.
func (r *Result) MessageCount() int { return len(r.Trace.Msgs) }

// MessagesPerOp returns the average number of messages per completed
// operation — the communication-cost counterpart of the latency tables:
// Algorithm 1 sends n-1 messages per mutator and none per pure accessor,
// the centralized baseline 2 per remote operation, the sequencer up to n.
func (r *Result) MessagesPerOp() float64 {
	if len(r.Trace.Ops) == 0 {
		return 0
	}
	return float64(len(r.Trace.Msgs)) / float64(len(r.Trace.Ops))
}

// Converged reports whether all replicas ended in the same state (always
// true for configurations that do not replicate).
func (r *Result) Converged() bool {
	for i := 1; i < len(r.Fingerprints); i++ {
		if r.Fingerprints[i] != r.Fingerprints[0] {
			return false
		}
	}
	return true
}

// CheckLinearizable runs the linearizability checker over the full trace.
// Exponential in the worst case; intended for small/medium runs.
func (r *Result) CheckLinearizable() bool {
	dt, err := adt.Lookup(r.Config.TypeName)
	if err != nil {
		return false
	}
	return lincheck.CheckTrace(dt, r.Trace).Linearizable
}

// OpNames returns the measured operation names, sorted.
func (r *Result) OpNames() []string {
	names := make([]string, 0, len(r.Stats))
	for name := range r.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders the per-op stats.
func (r *Result) String() string {
	s := fmt.Sprintf("%s/%s on %s/%s (n=%d):\n", r.Config.Algorithm, r.Config.TypeName,
		r.Config.Network, r.Config.Offsets, r.Config.Params.N)
	for _, name := range r.OpNames() {
		st := r.Stats[name]
		s += fmt.Sprintf("  %-10s count=%-5d min=%-8v mean=%-8v max=%v\n",
			name, st.Count, st.Min, st.Mean(), st.Max)
	}
	return s
}

// classesCache avoids re-running the classifier per experiment. Guarded
// by classesMu: experiments run concurrently under the worker pool.
var (
	classesMu    sync.Mutex
	classesCache = map[string]map[string]classify.Class{}
)

// ClassesFor returns (cached) operation classes for a data type. Safe for
// concurrent use; the returned map must be treated as read-only.
func ClassesFor(dt spec.DataType) map[string]classify.Class {
	classesMu.Lock()
	defer classesMu.Unlock()
	if c, ok := classesCache[dt.Name()]; ok {
		return c
	}
	c := classify.Classify(dt, classify.DefaultConfig()).Classes()
	classesCache[dt.Name()] = c
	return c
}

// buildNodes constructs the algorithm replicas for a configuration.
func buildNodes(cfg Config, dt spec.DataType) ([]sim.Node, []*core.Replica, error) {
	n := cfg.Params.N
	switch cfg.Algorithm {
	case AlgCore, AlgCorePaper, AlgCoreAllOOP:
		classes := ClassesFor(dt)
		timers := core.DefaultTimers(cfg.Params)
		if cfg.Algorithm == AlgCorePaper {
			timers = core.PaperTimers(cfg.Params)
		}
		if cfg.Algorithm == AlgCoreAllOOP {
			classes = map[string]classify.Class{} // everything defaults to Mixed
		}
		replicas := make([]*core.Replica, n)
		nodes := make([]sim.Node, n)
		for i := range nodes {
			replicas[i] = core.NewReplica(dt, classes, timers)
			nodes[i] = replicas[i]
		}
		return nodes, replicas, nil
	case AlgCentral:
		return folklore.NewCentralNodes(n, dt), nil, nil
	case AlgSequencer:
		return folklore.NewSequencerNodes(n, dt), nil, nil
	case AlgQuorum:
		nodes, err := QuorumNodes(cfg.Params, dt, quorum.DefaultConfig(cfg.Params))
		return nodes, nil, err
	default:
		return nil, nil, fmt.Errorf("harness: unknown algorithm %q (have %v)", cfg.Algorithm, Algorithms())
	}
}

// QuorumNodes builds the ABD quorum-register replicas for a
// configuration. The quorum backend serves exactly the register data
// type: its initial value is recovered by reading the initial state.
func QuorumNodes(p simtime.Params, dt spec.DataType, cfg quorum.Config) ([]sim.Node, error) {
	if dt.Name() != adt.NewRegister(0).Name() {
		return nil, fmt.Errorf("harness: the quorum backend serves the register type, not %q", dt.Name())
	}
	v, _ := dt.Initial().Apply(quorum.OpRead, nil)
	initial, ok := v.(int)
	if !ok {
		return nil, fmt.Errorf("harness: register initial read returned %T, want int", v)
	}
	return quorum.NewReplicas(p.N, initial, cfg), nil
}

// buildNetwork constructs the delay model.
func buildNetwork(cfg Config) (sim.Network, error) {
	p := cfg.Params
	switch cfg.Network {
	case NetUniform, "":
		return sim.UniformNetwork{D: p.D}, nil
	case NetUniformMin:
		return sim.UniformNetwork{D: p.MinDelay()}, nil
	case NetRandom:
		return sim.NewRandomNetwork(p.D, p.U, cfg.Seed+1), nil
	case NetAdversary:
		return sim.AdversarialNetwork{D: p.D, U: p.U, N: p.N}, nil
	default:
		return nil, fmt.Errorf("harness: unknown network %q", cfg.Network)
	}
}

// buildOffsets constructs the clock-offset assignment.
func buildOffsets(cfg Config) ([]simtime.Duration, error) {
	return Offsets(cfg.Offsets, cfg.Params, cfg.Seed+2)
}

// Offsets constructs the named clock-offset assignment for p; seed feeds
// the random assignment only. The real-time serving layer shares this
// resolver with the simulator configs.
func Offsets(name string, p simtime.Params, seed int64) ([]simtime.Duration, error) {
	switch name {
	case OffZero, "":
		return sim.ZeroOffsets(p.N), nil
	case OffSpread:
		return sim.SpreadOffsets(p.N, p.Epsilon), nil
	case OffAlternating:
		return sim.AlternatingOffsets(p.N, p.Epsilon), nil
	case OffRandom:
		return sim.RandomOffsets(p.N, p.Epsilon, seed), nil
	default:
		return nil, fmt.Errorf("harness: unknown offsets %q", name)
	}
}

// enginePool recycles engines across Run calls: a reused engine keeps its
// event-queue backing array, bookkeeping maps, and trace-capacity hints,
// so the steady-state allocation of a run is the trace it returns, not
// the machinery that produced it. Traces escape via Result and are never
// recycled (sim.Engine.Reset allocates a fresh one), so pooling is
// invisible to callers.
var enginePool = sync.Pool{}

// runsTotal counts completed experiment runs on the process-wide
// registry; a scraper differentiates it into runs/sec.
var runsTotal = obs.Default.Counter("harness_runs_total")

// Run executes one experiment and returns its result.
func Run(cfg Config, wl Workload) (*Result, error) {
	dt, err := adt.Lookup(cfg.TypeName)
	if err != nil {
		return nil, err
	}
	nodes, replicas, err := buildNodes(cfg, dt)
	if err != nil {
		return nil, err
	}
	net, err := buildNetwork(cfg)
	if err != nil {
		return nil, err
	}
	offsets, err := buildOffsets(cfg)
	if err != nil {
		return nil, err
	}
	var eng *sim.Engine
	if pooled, ok := enginePool.Get().(*sim.Engine); ok {
		eng = pooled
		if err := eng.Reset(cfg.Params, offsets, net, nodes); err != nil {
			return nil, err
		}
	} else {
		eng, err = sim.NewEngine(cfg.Params, offsets, net, nodes)
		if err != nil {
			return nil, err
		}
	}
	defer enginePool.Put(eng)
	eng.SetTraceLevel(cfg.Trace)
	if cfg.Tracer != nil {
		eng.SetTracer(cfg.Tracer)
	}

	rng := rand.New(rand.NewSource(wl.Seed))
	picks, err := expandMix(dt, wl.Mix)
	if err != nil {
		return nil, err
	}
	remaining := make([]int, cfg.Params.N)
	for i := range remaining {
		remaining[i] = wl.OpsPerProc
	}
	invoke := func(proc sim.ProcID, at simtime.Time) {
		op := picks[rng.Intn(len(picks))]
		info, _ := spec.FindOp(dt, op)
		eng.InvokeAt(proc, at, op, info.Args[rng.Intn(len(info.Args))])
	}
	eng.OnRespond = func(rec sim.OpRecord) {
		remaining[rec.Proc]--
		if remaining[rec.Proc] > 0 {
			gap := simtime.Duration(0)
			if wl.MaxGap > 0 {
				gap = simtime.Duration(rng.Int63n(int64(wl.MaxGap) + 1))
			}
			invoke(rec.Proc, rec.RespondTime.Add(gap))
		}
	}
	for i := 0; i < cfg.Params.N; i++ {
		if remaining[i] > 0 {
			invoke(sim.ProcID(i), simtime.Time(rng.Int63n(int64(cfg.Params.D))))
		}
	}
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		return nil, err
	}

	res := &Result{Config: cfg, Trace: tr, Stats: map[string]*LatencyStats{}}
	for _, op := range tr.Ops {
		st, ok := res.Stats[op.Op]
		if !ok {
			st = &LatencyStats{}
			res.Stats[op.Op] = st
		}
		st.add(op.Latency())
	}
	for _, r := range replicas {
		res.Fingerprints = append(res.Fingerprints, r.StateFingerprint())
	}
	runsTotal.Inc()
	return res, nil
}

// ExpandMix resolves a workload mix into a weighted pick list: each
// operation appears Weight times, so a uniform draw over the list realizes
// the mix. An empty mix expands to one entry per declared operation. The
// load generator in internal/serve shares this resolver with Run.
func ExpandMix(dt spec.DataType, mix []OpPick) ([]string, error) {
	return expandMix(dt, mix)
}

// expandMix resolves the workload mix into a weighted pick list.
func expandMix(dt spec.DataType, mix []OpPick) ([]string, error) {
	if len(mix) == 0 {
		names := spec.OpNames(dt)
		return names, nil
	}
	var picks []string
	for _, m := range mix {
		if _, ok := spec.FindOp(dt, m.Op); !ok {
			return nil, fmt.Errorf("harness: type %s has no operation %q", dt.Name(), m.Op)
		}
		if m.Weight <= 0 {
			return nil, fmt.Errorf("harness: weight for %q must be positive", m.Op)
		}
		for i := 0; i < m.Weight; i++ {
			picks = append(picks, m.Op)
		}
	}
	return picks, nil
}
