package lowerbound

import (
	"testing"

	"lintime/internal/simtime"
)

// lbParams returns the canonical configuration for the lower-bound
// experiments: every fraction used by the constructions is exact.
func lbParams() simtime.Params {
	return simtime.DefaultParams(5) // d=2Q, u=Q, ε=(1-1/5)u, X=ε
}

func TestTheorem2ViolationBelowBound(t *testing.T) {
	p := lbParams()
	bound := p.U / 4
	rep, err := Theorem2(p, bound-1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("budget u/4 - 1 should produce a violation:\n%s", rep)
	}
	if rep.Bound != bound {
		t.Errorf("bound = %v, want %v", rep.Bound, bound)
	}
}

func TestTheorem2NoViolationAtBound(t *testing.T) {
	p := lbParams()
	rep, err := Theorem2(p, p.U/4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationFound {
		t.Errorf("budget u/4 should not produce a violation:\n%s", rep)
	}
}

func TestTheorem2VeryFastAccessor(t *testing.T) {
	p := lbParams()
	rep, err := Theorem2(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("near-instant accessor should certainly violate:\n%s", rep)
	}
}

func TestTheorem2ParameterValidation(t *testing.T) {
	p := lbParams()
	p.N = 2
	if _, err := Theorem2(p, 1); err == nil {
		t.Error("n < 3 should error")
	}
	p = lbParams()
	p.U = 10082 // not divisible by 4
	if _, err := Theorem2(p, 1); err == nil {
		t.Error("u not divisible by 4 should error")
	}
	p = lbParams()
	p.Epsilon = p.U/2 - 1
	p.X = 0
	if _, err := Theorem2(p, 1); err == nil {
		t.Error("ε < u/2 should error")
	}
}

func TestTheorem3ViolationBelowBound(t *testing.T) {
	p := lbParams()
	for _, k := range []int{2, 3, 5} {
		kd := simtime.Duration(k)
		bound := p.U - p.U/kd
		rep, err := Theorem3(p, k, bound-1)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !rep.ViolationFound {
			t.Errorf("k=%d: budget (1-1/k)u - 1 should produce a violation:\n%s", k, rep)
		}
		if rep.Bound != bound {
			t.Errorf("k=%d: bound = %v, want %v", k, rep.Bound, bound)
		}
	}
}

func TestTheorem3NoViolationAtBound(t *testing.T) {
	p := lbParams()
	for _, k := range []int{2, 5} {
		kd := simtime.Duration(k)
		rep, err := Theorem3(p, k, p.U-p.U/kd)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if rep.ViolationFound {
			t.Errorf("k=%d: budget (1-1/k)u should not produce a violation:\n%s", k, rep)
		}
	}
}

func TestTheorem3GrowingBoundWithK(t *testing.T) {
	// The bound grows with k: a budget violating k=5 may satisfy k=2.
	p := lbParams()
	budget := p.U/2 + p.U/8 // between u/2 (k=2) and 4u/5 (k=5)
	rep2, err := Theorem3(p, 2, budget)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ViolationFound {
		t.Errorf("budget %v ≥ u/2 should satisfy k=2:\n%s", budget, rep2)
	}
	rep5, err := Theorem3(p, 5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !rep5.ViolationFound {
		t.Errorf("budget %v < 4u/5 should violate k=5:\n%s", budget, rep5)
	}
}

func TestTheorem3ParameterValidation(t *testing.T) {
	p := lbParams()
	if _, err := Theorem3(p, 1, 10); err == nil {
		t.Error("k < 2 should error")
	}
	if _, err := Theorem3(p, p.N+1, 10); err == nil {
		t.Error("k > n should error")
	}
	p.U = 10082
	if _, err := Theorem3(p, 5, 10); err == nil {
		t.Error("u not divisible by 2k should error")
	}
}

func TestMinPairFree(t *testing.T) {
	p := simtime.Params{N: 3, D: 300, U: 40, Epsilon: 30}
	if got := MinPairFree(p); got != 30 {
		t.Errorf("m = %v, want ε = 30", got)
	}
	p.Epsilon = 500
	if got := MinPairFree(p); got != 40 {
		t.Errorf("m = %v, want u = 40", got)
	}
	p.U = 500
	if got := MinPairFree(p); got != 100 {
		t.Errorf("m = %v, want d/3 = 100", got)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Theorem: "T", DataType: "queue", Op: "peek", Budget: 1, Bound: 2}
	rep.logf("step %d", 1)
	if rep.String() == "" {
		t.Error("empty report string")
	}
	rep.ViolationFound = true
	if rep.String() == "" {
		t.Error("empty report string")
	}
}
