package lowerbound

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// adtLookup is a test helper for fetching data types.
func adtLookup(t *testing.T, name string) (spec.DataType, error) {
	t.Helper()
	dt, err := adt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return dt, err
}

// TestTheorem2AcrossTypes validates the specialization claim: the same
// u/4 construction works for every pure accessor in the stock scenarios,
// with the violation appearing below the bound and vanishing at it.
func TestTheorem2AcrossTypes(t *testing.T) {
	p := lbParams()
	for _, sc := range Thm2Scenarios() {
		sc := sc
		t.Run(sc.TypeName, func(t *testing.T) {
			rep, err := Theorem2For(p, sc, p.U/4-1)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.ViolationFound {
				t.Errorf("below bound: expected violation:\n%s", rep)
			}
			rep, err = Theorem2For(p, sc, p.U/4)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ViolationFound {
				t.Errorf("at bound: unexpected violation:\n%s", rep)
			}
		})
	}
}

// TestTheorem3AcrossTypes validates Corollary 1 and beyond: write, push,
// enqueue, append, pushfront and tree-insert are all subject to the
// (1-1/k)u bound.
func TestTheorem3AcrossTypes(t *testing.T) {
	p := lbParams()
	k := 4 // all stock scenarios support at least 4 distinct instances
	kd := simtime.Duration(k)
	bound := p.U - p.U/kd
	for _, sc := range Thm3Scenarios() {
		sc := sc
		t.Run(sc.TypeName, func(t *testing.T) {
			rep, err := Theorem3For(p, sc, k, bound-1)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.ViolationFound {
				t.Errorf("below bound: expected violation:\n%s", rep)
			}
			rep, err = Theorem3For(p, sc, k, bound)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ViolationFound {
				t.Errorf("at bound: unexpected violation:\n%s", rep)
			}
		})
	}
}

// TestTheorem4AcrossTypes validates Corollary 2 and beyond: rmw, dequeue,
// pop, withdraw, extractmin and popfront are all pair-free and subject to
// the d+m bound, with the proof chain completing below the bound and
// breaking at it.
func TestTheorem4AcrossTypes(t *testing.T) {
	p := lbParams()
	m := MinPairFree(p)
	for _, sc := range Thm4Scenarios() {
		sc := sc
		t.Run(sc.TypeName, func(t *testing.T) {
			rep, err := Theorem4For(p, sc, p.D+m-1)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.ViolationFound {
				t.Errorf("below bound: expected contradiction:\n%s", rep)
			}
			rep, err = Theorem4For(p, sc, p.D+m)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ViolationFound {
				t.Errorf("at bound: unexpected contradiction:\n%s", rep)
			}
		})
	}
}

// TestTheorem5AcrossTypes: (enqueue, peek) on the queue — the paper's
// example — plus (insert, depth) on the first-wins tree (Table 4's
// insert+depth row) and (pushback, front) on the deque.
func TestTheorem5AcrossTypes(t *testing.T) {
	p := lbParams()
	m := MinPairFree(p)
	for _, sc := range Thm5Scenarios() {
		sc := sc
		t.Run(sc.TypeName, func(t *testing.T) {
			rep, err := Theorem5For(p, sc, p.D-2*m, 3*m-1)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.ViolationFound {
				t.Errorf("below bound: expected violation:\n%s", rep)
			}
			rep, err = Theorem5For(p, sc, p.D-2*m, 3*m)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ViolationFound {
				t.Errorf("at bound: unexpected violation:\n%s", rep)
			}
		})
	}
}

func TestTheorem5OnUnknownType(t *testing.T) {
	p := lbParams()
	if _, err := Theorem5On(p, "register", 100, 100); err == nil {
		t.Error("types without a Theorem 5 scenario should error")
	}
}

func TestTheorem4OnUnknownType(t *testing.T) {
	if _, err := Theorem4On(lbParams(), "register", lbParams().D); err == nil {
		t.Error("types without a pair-free scenario should error")
	}
}

func TestThm4ScenarioValuesValidatePairFreeness(t *testing.T) {
	dt, _ := adtLookup(t, "queue")
	// A scenario whose op is not pair-free after ρ must be rejected.
	bad := Thm4Scenario{TypeName: "queue", Op: "peek"}
	if _, _, err := bad.values(dt); err == nil {
		t.Error("peek is not pair-free; values() should reject it")
	}
}

func TestTheorem2OnUnknownType(t *testing.T) {
	if _, err := Theorem2On(lbParams(), "maxregister", 1); err == nil {
		t.Error("types without a stock scenario should error")
	}
}

func TestTheorem3OnUnknownType(t *testing.T) {
	if _, err := Theorem3On(lbParams(), "set", 2, 1); err == nil {
		t.Error("types without a stock scenario should error")
	}
}

func TestTheorem3TreeInstanceCap(t *testing.T) {
	// The tree scenario supports at most len(treeChain)+1 parents.
	p := simtime.Params{N: 16, D: 2 * simtime.Quantum, U: simtime.Quantum,
		Epsilon: simtime.OptimalEpsilon(16, simtime.Quantum)}
	p.X = p.Epsilon
	sc, err := findThm3Scenario("tree")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Theorem3For(p, sc, 16, 1); err == nil {
		t.Error("k beyond the scenario's instance supply should error")
	}
}

func TestTheorem3OnRegisterMatchesCorollary1(t *testing.T) {
	// Corollary 1 names |Write| ≥ (1-1/n)u explicitly.
	p := lbParams()
	kd := simtime.Duration(p.N)
	rep, err := Theorem3On(p, "register", p.N, p.U-p.U/kd-1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("register write below (1-1/n)u should violate:\n%s", rep)
	}
}
