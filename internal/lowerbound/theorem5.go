package lowerbound

import (
	"fmt"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/shift"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// theorem5Matrix builds the D delay matrix of the Theorem 5 proof
// (Figure 8): d-m into p0 and p1, d everywhere else.
func theorem5Matrix(n int, d, m simtime.Duration) [][]simtime.Duration {
	mat := make([][]simtime.Duration, n)
	for i := range mat {
		mat[i] = make([]simtime.Duration, n)
		for j := range mat[i] {
			if i == j {
				continue
			}
			if j == 0 || j == 1 {
				mat[i][j] = d - m
			} else {
				mat[i][j] = d
			}
		}
	}
	return mat
}

// Theorem5 mechanizes the transposable-mutator + discriminating-accessor
// sum bound |OP| + |AOP| ≥ d + min{ε, u, d/3} (Theorem 5) on a FIFO
// queue with enqueue and peek (the paper's own example pair). See
// Theorem5For for other data types.
func Theorem5(p simtime.Params, budgetOp, budgetAop simtime.Duration) (*Report, error) {
	sc, err := findThm5Scenario("queue")
	if err != nil {
		return nil, err
	}
	return Theorem5For(p, sc, budgetOp, budgetAop)
}

// Theorem5On runs the Theorem 5 chain on the named data type's stock
// scenario.
func Theorem5On(p simtime.Params, typeName string, budgetOp, budgetAop simtime.Duration) (*Report, error) {
	sc, err := findThm5Scenario(typeName)
	if err != nil {
		return nil, err
	}
	return Theorem5For(p, sc, budgetOp, budgetAop)
}

// Theorem5For mechanizes Theorem 5 for an arbitrary scenario satisfying
// the theorem's hypotheses (a transposable mutator and a pure accessor
// with the three discriminators).
//
// Construction: p0 and p1 concurrently invoke the two mutator instances
// after ρ; accessors at p0, p1 and (m later) p2 observe the order. Our
// Algorithm 1 linearizes p0's instance first (timestamp order), so we run
// the proof's symmetric case: shift p0 later by m, chop the now-invalid
// p0→p1 delay, and complete p1's chopped accessor with its physical value
// from the control run in which p0 never invokes — p1 cannot distinguish
// the two within its response time. The completed history pits the
// discriminators against each other: p1's accessor says op1 came first
// while p0's and p2's say op0 did — no linearization exists when the
// budget sum is below d+m.
func Theorem5For(p simtime.Params, sc Thm5Scenario, budgetOp, budgetAop simtime.Duration) (*Report, error) {
	if p.N < 3 {
		return nil, fmt.Errorf("lowerbound: Theorem 5 demo needs n ≥ 3, got %d", p.N)
	}
	m := MinPairFree(p)
	if m <= 0 {
		return nil, fmt.Errorf("lowerbound: need m = min{ε,u,d/3} > 0")
	}
	budget := budgetOp + budgetAop
	rep := &Report{Theorem: "Theorem 5", DataType: sc.TypeName, Op: sc.Op + "+" + sc.AOP,
		Budget: budget, Bound: p.D + m}
	if budgetAop < 1 || budgetOp < 1 {
		return nil, fmt.Errorf("lowerbound: budgets must be positive")
	}

	dt, err := adt.Lookup(sc.TypeName)
	if err != nil {
		return nil, err
	}
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	timers := core.DefaultTimers(p)
	timers.MOPRespond = budgetOp
	timers.AOPRespond = budgetAop
	timers.AOPBackdate = 0
	d1 := theorem5Matrix(p.N, p.D, m)
	gap := p.D + p.U + p.Epsilon
	t := simtime.Time(simtime.Duration(len(sc.Rho)+1) * gap)
	tMax := t.Add(budgetOp)

	runScenario := func(withP0 bool) (*sim.Trace, map[string]int64) {
		nodes := core.NewReplicas(p.N, dt, classes, timers)
		eng, err := sim.NewEngine(p, sim.ZeroOffsets(p.N), matrixNetwork(d1), nodes)
		if err != nil {
			panic(err)
		}
		for i, inv := range sc.Rho {
			eng.InvokeAt(0, simtime.Time(simtime.Duration(i)*gap), inv.Op, inv.Arg)
		}
		seqs := map[string]int64{}
		if withP0 {
			seqs["op0"] = eng.InvokeAt(0, t, sc.Op, sc.Op0Arg)
		}
		seqs["op1"] = eng.InvokeAt(1, t, sc.Op, sc.Op1Arg)
		if withP0 {
			seqs["aop0"] = eng.InvokeAt(0, tMax, sc.AOP, sc.AOPArg)
		}
		seqs["aop1"] = eng.InvokeAt(1, tMax, sc.AOP, sc.AOPArg)
		seqs["aop2"] = eng.InvokeAt(2, tMax.Add(m), sc.AOP, sc.AOPArg)
		return eng.Run(), seqs
	}

	// --- R1: the full concurrent scenario. ---
	r1, seqs := runScenario(true)
	if err := r1.CheckComplete(); err != nil {
		return nil, err
	}
	if err := r1.CheckAdmissible(); err != nil {
		return nil, err
	}
	rep.logf("R1: %s(%s)@p0 and %s(%s)@p1 at %v; %s at p0/p1 (%v) and p2 (%v): values %v/%v/%v",
		sc.Op, spec.FormatValue(sc.Op0Arg), sc.Op, spec.FormatValue(sc.Op1Arg), t,
		sc.AOP, tMax, tMax.Add(m),
		opBySeq(r1, seqs["aop0"]).Ret, opBySeq(r1, seqs["aop1"]).Ret, opBySeq(r1, seqs["aop2"]).Ret)
	if !lincheck.CheckTrace(dt, r1).Linearizable {
		rep.logf("R1 itself is not linearizable — the too-fast algorithm already fails without shifting")
		rep.ViolationFound = true
		return rep, nil
	}

	// --- Shift p0 later by m; the p0→p1 delay becomes d-2m. The shift
	// and chop apply to the suffix after ρ (the prefix is re-attached
	// below with matching offsets, per the proof's append step). ---
	rhoCut := t.Add(-1)
	x := make([]simtime.Duration, p.N)
	x[0] = m
	s1, err := shift.Shift(shift.Suffix(r1, rhoCut), x)
	if err != nil {
		return nil, err
	}
	m2 := shiftMatrix(d1, x)
	bad := shift.InvalidPairs(m2, p)
	if len(bad) == 0 {
		rep.logf("shifted p0→p1 delay d-2m = %v is still admissible (2m ≤ u); the written proof does not apply in this regime", m2[0][1])
		return rep, nil
	}
	if len(bad) != 1 || bad[0] != [2]sim.ProcID{0, 1} {
		return nil, fmt.Errorf("lowerbound: expected exactly p0→p1 invalid, got %v", bad)
	}

	// --- Chop at δ = d-m. ---
	s1c, err := shift.Chop(s1, m2, p, p.D-m)
	if err != nil {
		return nil, err
	}
	if err := shift.CheckFragment(s1c); err != nil {
		return nil, err
	}
	if err := s1c.CheckAdmissible(); err != nil {
		return nil, fmt.Errorf("lowerbound: chopped fragment inadmissible: %w", err)
	}
	// Claim 8 (mirrored): op0, op1, aop0, aop2 survive complete; aop1 is
	// chopped pending.
	complete := func(proc sim.ProcID, op string) (sim.OpRecord, bool) {
		rec, ok := findOp(s1c, proc, op)
		return rec, ok && !rec.Pending()
	}
	op0Rec, op0OK := complete(0, sc.Op)
	_, op1OK := complete(1, sc.Op)
	aop0Rec, aop0OK := complete(0, sc.AOP)
	aop2Rec, aop2OK := complete(2, sc.AOP)
	if !op0OK || !op1OK || !aop0OK || !aop2OK {
		rep.logf("chop removed a required operation (op0=%v op1=%v aop0=%v aop2=%v) — budget does not beat the bound",
			op0OK, op1OK, aop0OK, aop2OK)
		return rep, nil
	}
	if _, aop1Complete := complete(1, sc.AOP); aop1Complete {
		rep.logf("aop1 survived the chop complete — budget does not beat the bound")
		return rep, nil
	}
	if _, ok := findOp(s1c, 1, sc.AOP); !ok {
		rep.logf("aop1 was dropped entirely by the chop — budget does not beat the bound")
		return rep, nil
	}
	rep.logf("S1'' = chop(shift(S1, (+m,0,0)), d-m): op0 (%v), op1, aop0=%v, aop2=%v complete; aop1 pending",
		op0Rec.Ret, aop0Rec.Ret, aop2Rec.Ret)

	// --- Indistinguishability: p1 cannot learn of p0's (shifted)
	// invocation before its peek responds, over the repaired delays. ---
	m3 := copyMatrix(m2)
	m3[0][1] = p.D // repair, per the extension of R2
	op0Invoke := t.Add(m)
	aop1Respond := tMax.Add(budgetAop)
	earliestLearn := op0Invoke.Add(shift.ShortestPaths(m3)[0][1])
	if aop1Respond >= earliestLearn {
		rep.logf("p1 can learn of op0 by %v, at or before aop1's response %v — indistinguishability fails (budget respects the bound)",
			earliestLearn, aop1Respond)
		return rep, nil
	}

	// --- Control run: p1's world without p0's operations. ---
	ctl, ctlSeqs := runScenario(false)
	if err := ctl.CheckComplete(); err != nil {
		return nil, err
	}
	ctlVal := opBySeq(ctl, ctlSeqs["aop1"]).Ret
	rep.logf("control (no p0): aop1 returns %v; R2's p1 is indistinguishable through its response", ctlVal)

	// --- Re-attach ρ (executed under the shifted offsets), complete aop1
	// with its physical value, and check. ---
	frag := completePending(s1c, 1, sc.AOP, ctlVal, budgetAop)
	r2 := frag
	if len(sc.Rho) > 0 {
		shiftedOffsets := append([]simtime.Duration(nil), sim.ZeroOffsets(p.N)...)
		shiftedOffsets[0] = -m
		nodes := core.NewReplicas(p.N, dt, classes, timers)
		loose := p
		engP, err := sim.NewEngine(loose, shiftedOffsets, matrixNetwork(d1), nodes)
		if err != nil {
			return nil, err
		}
		for i, inv := range sc.Rho {
			engP.InvokeAt(0, simtime.Time(simtime.Duration(i)*gap), inv.Op, inv.Arg)
		}
		prefix := engP.Run()
		r2, err = shift.Append(prefix, frag)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: appending ρ failed: %w", err)
		}
	}
	res := lincheck.CheckTrace(dt, r2)
	rep.ViolationFound = !res.Linearizable
	if rep.ViolationFound {
		rep.logf("R2 is NOT linearizable: the discriminators disagree on which %s came first", sc.Op)
	} else {
		rep.logf("R2 remains linearizable: budget sum %v ≥ d+m = %v", budget, p.D+m)
	}
	rep.logf("history: %s", formatOps(r2.CompletedOps()))
	return rep, nil
}

// indexOfSeq finds the index in tr.Ops with the given SeqID.
func indexOfSeq(tr *sim.Trace, seqID int64) int {
	for i, rec := range tr.Ops {
		if rec.SeqID == seqID {
			return i
		}
	}
	panic(fmt.Sprintf("lowerbound: seq %d not in trace", seqID))
}
