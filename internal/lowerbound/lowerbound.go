// Package lowerbound mechanizes the lower-bound proofs of Sections 3 and
// 4 of the paper as executable experiments.
//
// Each Theorem function instantiates the proof's run construction against
// a *hypothetical too-fast algorithm* — Algorithm 1 with its timers forced
// below the bound under test — records the run, applies the proof's
// transformation (shifting for Theorems 2 and 3; shifting, chopping and
// appending for Theorems 4 and 5), verifies that the transformed run is
// admissible, and asks the linearizability checker for the verdict. With
// a budget below the theorem's bound the transformed run is not
// linearizable (the violation the proof derives); at or above the bound
// the construction yields a linearizable run, matching the tightness of
// the argument.
package lowerbound

import (
	"fmt"

	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Report is the outcome of one mechanized lower-bound experiment.
type Report struct {
	Theorem  string
	DataType string
	Op       string
	// Budget is the operation latency the hypothetical algorithm was
	// forced to achieve.
	Budget simtime.Duration
	// Bound is the theorem's lower bound for the configuration.
	Bound simtime.Duration
	// ViolationFound reports whether the construction produced an
	// admissible non-linearizable run (expected iff Budget < Bound).
	ViolationFound bool
	// Log is the narrative of the construction's steps.
	Log []string
}

func (r *Report) logf(format string, args ...any) {
	r.Log = append(r.Log, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	verdict := "no violation (budget respects the bound)"
	if r.ViolationFound {
		verdict = "VIOLATION: admissible run with no legal linearization"
	}
	s := fmt.Sprintf("%s [%s.%s] budget=%v bound=%v → %s\n",
		r.Theorem, r.DataType, r.Op, r.Budget, r.Bound, verdict)
	for _, line := range r.Log {
		s += "  " + line + "\n"
	}
	return s
}

// MinPairFree is m = min{ε, u, d/3}, the additive term of Theorems 4
// and 5.
func MinPairFree(p simtime.Params) simtime.Duration {
	return simtime.Min(p.Epsilon, simtime.Min(p.U, p.D/3))
}

// opBySeq returns the operation record with the given SeqID. Records are
// appended in event-processing order, which need not match SeqID order.
func opBySeq(tr *sim.Trace, seqID int64) sim.OpRecord {
	for _, rec := range tr.Ops {
		if rec.SeqID == seqID {
			return rec
		}
	}
	panic(fmt.Sprintf("lowerbound: seq %d not in trace", seqID))
}

// formatOps renders a history compactly for logs.
func formatOps(ops []sim.OpRecord) string {
	s := ""
	for i, op := range ops {
		if i > 0 {
			s += " "
		}
		resp := op.RespondTime.String()
		if op.Pending() {
			resp = "…"
		}
		s += fmt.Sprintf("%s(%s→%s)@p%d[%v,%s]",
			op.Op, spec.FormatValue(op.Arg), spec.FormatValue(op.Ret), op.Proc, op.InvokeTime, resp)
	}
	return s
}
