package lowerbound

import (
	"fmt"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/shift"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Theorem2 mechanizes the pure-accessor bound |AOP| ≥ u/4 (Theorem 2) on
// a FIFO queue with peek as the accessor. See Theorem2For for other data
// types.
func Theorem2(p simtime.Params, budget simtime.Duration) (*Report, error) {
	sc, err := findThm2Scenario("queue")
	if err != nil {
		return nil, err
	}
	return Theorem2For(p, sc, budget)
}

// Theorem2On runs the Theorem 2 construction on the named data type's
// stock scenario.
func Theorem2On(p simtime.Params, typeName string, budget simtime.Duration) (*Report, error) {
	sc, err := findThm2Scenario(typeName)
	if err != nil {
		return nil, err
	}
	return Theorem2For(p, sc, budget)
}

// Theorem2For mechanizes Theorem 2 for an arbitrary pure-accessor
// scenario.
//
// Construction (following the proof): all delays are d - u/2 and clocks
// agree. Processes p0 and p1 execute alternating non-overlapping AOP
// instances every u/4 while p2 invokes one mutator whose announcement
// takes d - u/2 to arrive, so the accessors flip from the old return
// value to the new one at some index j. Shifting the process of the last
// old-value instance u/4 later and the other process u/4 earlier keeps
// the run admissible (delays stay in [d-u, d], skew u/2 ≤ ε) but makes
// the first new-value instance respond before the last old-value instance
// is invoked — which no linearization can explain when the budget is
// below u/4.
//
// The hypothetical algorithm is Algorithm 1 with the accessor wait forced
// to the budget and the mutator response slowed to d+ε so the mutator
// stays concurrent with the flip (any algorithm with |AOP| < u/4 is
// subject to the theorem; slow mutators keep the *unshifted* run
// linearizable, isolating the shift as the killer).
func Theorem2For(p simtime.Params, sc Thm2Scenario, budget simtime.Duration) (*Report, error) {
	if p.N < 3 {
		return nil, fmt.Errorf("lowerbound: Theorem 2 needs n ≥ 3, got %d", p.N)
	}
	if p.U%4 != 0 {
		return nil, fmt.Errorf("lowerbound: u = %v must be divisible by 4", p.U)
	}
	if p.Epsilon < p.U/2 {
		return nil, fmt.Errorf("lowerbound: need ε ≥ u/2 (ε = %v, u/2 = %v)", p.Epsilon, p.U/2)
	}
	rep := &Report{Theorem: "Theorem 2", DataType: sc.TypeName, Op: sc.AOP,
		Budget: budget, Bound: p.U / 4}

	dt, err := adt.Lookup(sc.TypeName)
	if err != nil {
		return nil, err
	}
	oldValue := spec.Response(dt.Initial(), sc.AOP, sc.AOPArg)
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	timers := core.Timers{
		AOPRespond:  budget,
		AOPBackdate: 0,
		MOPRespond:  p.D + p.Epsilon, // keep the mutator concurrent with the flip
		AddSelf:     p.D - p.U,
		ExecuteWait: p.U + p.Epsilon,
	}
	nodes := core.NewReplicas(p.N, dt, classes, timers)
	net := sim.NewPairwiseNetwork(p.N, p.D-p.U/2)
	eng, err := sim.NewEngine(p, sim.ZeroOffsets(p.N), net, nodes)
	if err != nil {
		return nil, err
	}

	// Alternating accessors at p0/p1; one mutator at p2.
	quarter := p.U / 4
	step := simtime.Max(quarter, budget+1) // keep same-process instances non-overlapping
	start := simtime.Time(quarter)
	count := int((p.D+p.U)/step) + 4
	var aopSeqs []int64
	for i := 0; i < count; i++ {
		proc := sim.ProcID(i % 2)
		seq := eng.InvokeAt(proc, start.Add(simtime.Duration(i)*step), sc.AOP, sc.AOPArg)
		aopSeqs = append(aopSeqs, seq)
	}
	eng.InvokeAt(2, start.Add(step), sc.Mut, sc.MutArg)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		return nil, err
	}
	if err := tr.CheckAdmissible(); err != nil {
		return nil, err
	}
	rep.logf("R1: %d alternating %s instances at p0/p1 every %v; %s(%s) at p2; all delays d-u/2 = %v",
		count, sc.AOP, step, sc.Mut, spec.FormatValue(sc.MutArg), p.D-p.U/2)

	// Locate j: the last accessor returning the old value, and verify the
	// flip is monotone (old* then new*), as the proof requires.
	j := -1
	for i, seq := range aopSeqs {
		if spec.ValuesEqual(opBySeq(tr, seq).Ret, oldValue) {
			j = i
		}
	}
	if j < 0 || j+1 >= len(aopSeqs) {
		return nil, fmt.Errorf("lowerbound: accessor flip not captured (j = %d of %d)", j, len(aopSeqs))
	}
	for i, seq := range aopSeqs {
		isOld := spec.ValuesEqual(opBySeq(tr, seq).Ret, oldValue)
		if (i <= j) != isOld {
			return nil, fmt.Errorf("lowerbound: non-monotone flip at instance %d", i)
		}
	}
	jProc := opBySeq(tr, aopSeqs[j]).Proc
	rep.logf("flip at j = %d (last old-value %s, at p%d; old value %s)",
		j, sc.AOP, jProc, spec.FormatValue(oldValue))

	// Shift the last old-value process later by u/4 and the other peeker
	// earlier.
	x := make([]simtime.Duration, p.N)
	x[jProc] = quarter
	x[1-jProc] = -quarter
	shifted, err := shift.Shift(tr, x)
	if err != nil {
		return nil, err
	}
	if err := shifted.CheckAdmissible(); err != nil {
		return nil, fmt.Errorf("lowerbound: shifted run inadmissible (construction bug): %w", err)
	}
	rep.logf("R2 = shift(R1, x) with x[p%d] = +u/4, x[p%d] = -u/4: admissible (skew u/2 = %v ≤ ε = %v)",
		jProc, 1-jProc, p.U/2, p.Epsilon)

	res := lincheck.CheckTrace(dt, shifted)
	rep.ViolationFound = !res.Linearizable
	if rep.ViolationFound {
		rep.logf("R2 is NOT linearizable: %s %d (new value) responds before %s %d (old value) is invoked",
			sc.AOP, j+1, sc.AOP, j)
	} else {
		rep.logf("R2 remains linearizable: budget %v ≥ u/4 = %v keeps the instances overlapping", budget, p.U/4)
	}
	rep.logf("history: %s", formatOps(shifted.CompletedOps()))
	return rep, nil
}
