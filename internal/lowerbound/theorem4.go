package lowerbound

import (
	"fmt"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/shift"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// theorem4Matrix builds the D¹ delay matrix of the Theorem 4 proof
// (Figure 2): d-m into p0 (except from p1) and d-m out of p1 (except to
// p0), d everywhere else.
func theorem4Matrix(n int, d, m simtime.Duration) [][]simtime.Duration {
	mat := make([][]simtime.Duration, n)
	for i := range mat {
		mat[i] = make([]simtime.Duration, n)
		for j := range mat[i] {
			switch {
			case i == j:
			case i != 1 && j == 0:
				mat[i][j] = d - m
			case i == 1 && j != 0:
				mat[i][j] = d - m
			default:
				mat[i][j] = d
			}
		}
	}
	return mat
}

// matrixNetwork wraps a delay matrix as a sim.Network.
func matrixNetwork(m [][]simtime.Duration) *sim.PairwiseNetwork {
	return &sim.PairwiseNetwork{Delays: m}
}

// fastOOPTimers returns Algorithm 1 timers forcing mixed-operation latency
// to exactly budget (the hypothetical too-fast algorithm of Theorems 4
// and 5).
func fastOOPTimers(p simtime.Params, budget simtime.Duration) (core.Timers, error) {
	if budget < p.D-p.U {
		return core.Timers{}, fmt.Errorf("lowerbound: OOP budget %v below the d-u self-delay %v", budget, p.D-p.U)
	}
	t := core.DefaultTimers(p)
	t.ExecuteWait = budget - t.AddSelf
	return t, nil
}

// Theorem4 mechanizes the pair-free bound |OP| ≥ d + min{ε, u, d/3}
// (Theorem 4) on a FIFO queue with dequeue. See Theorem4For for other
// data types.
func Theorem4(p simtime.Params, budget simtime.Duration) (*Report, error) {
	sc, err := findThm4Scenario("queue")
	if err != nil {
		return nil, err
	}
	return Theorem4For(p, sc, budget)
}

// Theorem4On runs the Theorem 4 chain on the named data type's stock
// scenario.
func Theorem4On(p simtime.Params, typeName string, budget simtime.Duration) (*Report, error) {
	sc, err := findThm4Scenario(typeName)
	if err != nil {
		return nil, err
	}
	return Theorem4For(p, sc, budget)
}

// Theorem4For mechanizes Theorem 4 for an arbitrary pair-free scenario,
// executing the proof's run chain: R1 (solo Op by p0 after ρ), R2 (adding
// a concurrent Op at p1), shift-and-chop to make both start together
// (R3), shift-and-chop again to make p0's start later (R4), and the final
// indistinguishability argument against the solo run R5 of p1.
//
// The chain's verdict: with |Op| < d+m the operations' recorded values
// admit no linearization — R4's pending Op at p1 is forced to the
// complementary value by the linearization order but forced to the solo
// value by physical indistinguishability from R5. The report's
// ViolationFound is true when every link of the chain (admissibility,
// chop validity, appendability, indistinguishability, and the two
// lincheck verdicts) holds.
func Theorem4For(p simtime.Params, sc Thm4Scenario, budget simtime.Duration) (*Report, error) {
	if p.N < 3 {
		return nil, fmt.Errorf("lowerbound: Theorem 4 demo needs n ≥ 3, got %d", p.N)
	}
	m := MinPairFree(p)
	if m <= 0 {
		return nil, fmt.Errorf("lowerbound: need m = min{ε,u,d/3} > 0")
	}
	rep := &Report{Theorem: "Theorem 4", DataType: sc.TypeName, Op: sc.Op,
		Budget: budget, Bound: p.D + m}
	timers, err := fastOOPTimers(p, budget)
	if err != nil {
		return nil, err
	}
	dt, err := adt.Lookup(sc.TypeName)
	if err != nil {
		return nil, err
	}
	solo, other, err := sc.values(dt)
	if err != nil {
		return nil, err
	}
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()

	c1 := make([]simtime.Duration, p.N)
	c1[1] = -m // C1 = (0, -m, 0, ...)
	c2 := make([]simtime.Duration, p.N)
	c0 := make([]simtime.Duration, p.N)
	c0[0] = -m // C0 = (-m, 0, ...)

	d1 := theorem4Matrix(p.N, p.D, m)
	// ρ executed by p0 starting at time 0; the pair-free instances start
	// at t, far past ρ's quiescence.
	gap := p.D + p.U + p.Epsilon
	t := simtime.Time(simtime.Duration(len(sc.Rho)+3) * gap)
	rhoCut := t.Add(-1)

	runRho := func(offsets []simtime.Duration) (*sim.Engine, []sim.Node) {
		nodes := core.NewReplicas(p.N, dt, classes, timers)
		eng, err := sim.NewEngine(p, offsets, matrixNetwork(d1), nodes)
		if err != nil {
			panic(err)
		}
		for i, inv := range sc.Rho {
			eng.InvokeAt(0, simtime.Time(simtime.Duration(i)*gap), inv.Op, inv.Arg)
		}
		return eng, nodes
	}

	// --- Step 1: R1 — solo dequeue by p0. ---
	eng1, _ := runRho(c1)
	op0Seq1 := eng1.InvokeAt(0, t, sc.Op, sc.OpArg)
	r1 := eng1.Run()
	if err := r1.CheckComplete(); err != nil {
		return nil, err
	}
	if !spec.ValuesEqual(opBySeq(r1, op0Seq1).Ret, solo) {
		rep.logf("R1: solo %s returned %v, not the solo value %v — chain broken",
			sc.Op, opBySeq(r1, op0Seq1).Ret, spec.FormatValue(solo))
		return rep, nil
	}
	rep.logf("R1: op0 = %s@p0[%v] returns %v with latency %v", sc.Op, t,
		spec.FormatValue(solo), opBySeq(r1, op0Seq1).Latency())

	// --- Step 2: R2 — add dequeue at p1 at t+m. ---
	eng2, _ := runRho(c1)
	op0Seq := eng2.InvokeAt(0, t, sc.Op, sc.OpArg)
	op1Seq := eng2.InvokeAt(1, t.Add(m), sc.Op, sc.OpArg)
	r2 := eng2.Run()
	if err := r2.CheckComplete(); err != nil {
		return nil, err
	}
	if err := r2.CheckAdmissible(); err != nil {
		return nil, err
	}
	if !spec.ValuesEqual(opBySeq(r2, op0Seq).Ret, solo) {
		rep.logf("R2: Claim 4 fails — op0 returned %v; p0 learned of op1 within d+m (budget ≥ bound)", opBySeq(r2, op0Seq).Ret)
		return rep, nil
	}
	if !spec.ValuesEqual(opBySeq(r2, op1Seq).Ret, other) {
		rep.logf("R2: op1 returned %v, not the pair-free complement %v — chain broken",
			opBySeq(r2, op1Seq).Ret, spec.FormatValue(other))
		return rep, nil
	}
	rep.logf("R2: op0 returns %v, op1' = %s@p1[%v] returns %v (Claim 4 holds)",
		spec.FormatValue(solo), sc.Op, t.Add(m), spec.FormatValue(other))

	// --- Step 3: shift p1 earlier by m and chop the invalid delay. ---
	s2 := shift.Suffix(r2, rhoCut)
	x := make([]simtime.Duration, p.N)
	x[1] = -m
	s2s, err := shift.Shift(s2, x)
	if err != nil {
		return nil, err
	}
	// Post-shift matrix: delays from p1 grow by m (p1→p0 becomes d+m,
	// invalid), delays into p1 shrink by m.
	m2 := shiftMatrix(d1, x)
	if bad := shift.InvalidPairs(m2, p); len(bad) != 1 || bad[0] != [2]sim.ProcID{1, 0} {
		return nil, fmt.Errorf("lowerbound: expected exactly p1→p0 invalid, got %v", bad)
	}
	s2c, err := shift.Chop(s2s, m2, p, p.D-m)
	if err != nil {
		return nil, err
	}
	if err := shift.CheckFragment(s2c); err != nil {
		return nil, err
	}
	if err := s2c.CheckAdmissible(); err != nil {
		return nil, fmt.Errorf("lowerbound: chopped fragment inadmissible: %w", err)
	}
	op1Rec, ok := findOp(s2c, 1, sc.Op)
	if !ok || op1Rec.Pending() {
		rep.logf("S2'': op1' did not survive the chop complete — budget %v does not beat the bound", budget)
		return rep, nil
	}
	op0Rec, _ := findOp(s2c, 0, sc.Op)
	rep.logf("S2'' = chop(shift(S2, (0,-m,0)), d-m): op1' complete (%v), op0 pending=%v", op1Rec.Ret, op0Rec.Pending())

	// --- Step 4: append to a ρ-run with offsets C2 and decide op0's
	// forced completion. ---
	engP, _ := runRho(c2)
	prefix2 := engP.Run()
	r3, err := shift.Append(prefix2, s2c)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: append failed: %w", err)
	}
	// Linearizability forces the pending op0 to complete with the solo
	// value (as in R1): the complementary value admits no linearization.
	withSolo := completePending(r3, 0, sc.Op, solo, budget)
	withOther := completePending(r3, 0, sc.Op, other, budget)
	okSolo := lincheck.CheckTrace(dt, withSolo).Linearizable
	okOther := lincheck.CheckTrace(dt, withOther).Linearizable
	if !okSolo || okOther {
		rep.logf("R3: completion analysis inconclusive (solo→%v, other→%v) — chain broken", okSolo, okOther)
		return rep, nil
	}
	rep.logf("R3 = ρ·S2'': linearizability forces op0 = %v (%v admits no linearization)",
		spec.FormatValue(solo), spec.FormatValue(other))
	r3 = withSolo

	// --- Step 5: shift p0 later by m and chop again. ---
	s3 := shift.Suffix(r3, rhoCut)
	y := make([]simtime.Duration, p.N)
	y[0] = m
	s3s, err := shift.Shift(s3, y)
	if err != nil {
		return nil, err
	}
	m3 := copyMatrix(m2)
	m3[1][0] = p.D - m // Step 4's repair of the p1→p0 delay
	m4 := shiftMatrix(m3, y)
	bad := shift.InvalidPairs(m4, p)
	if len(bad) == 0 {
		// The proof's Step 5 asserts the p0→p1 delay d-2m is invalid,
		// which requires 2m > u. When m = min{ε, u, d/3} ≤ u/2 the
		// shifted run is fully admissible, p1's view legitimately
		// includes op0's announcement, and the written construction
		// yields no contradiction — a gap in the published proof's
		// generality that this mechanization surfaces.
		rep.logf("S3': p0→p1 delay d-2m = %v is still admissible (2m ≤ u); the written proof does not apply in this regime", m4[0][1])
		return rep, nil
	}
	if len(bad) != 1 || bad[0] != [2]sim.ProcID{0, 1} {
		return nil, fmt.Errorf("lowerbound: expected exactly p0→p1 invalid, got %v", bad)
	}
	s3c, err := shift.Chop(s3s, m4, p, p.D-m)
	if err != nil {
		return nil, err
	}
	if err := shift.CheckFragment(s3c); err != nil {
		return nil, err
	}
	op0Rec4, ok := findOp(s3c, 0, sc.Op)
	if !ok || op0Rec4.Pending() {
		rep.logf("S3'': op0 did not survive the chop complete — budget %v does not beat the bound", budget)
		return rep, nil
	}
	op1Rec4, _ := findOp(s3c, 1, sc.Op)
	if !op1Rec4.Pending() {
		rep.logf("S3'': op1 unexpectedly complete — chain broken")
		return rep, nil
	}
	rep.logf("S3'' = chop(shift(S3, (+m,0,0)), d-m): op0 complete (%v), op1 pending", spec.FormatValue(solo))

	// --- Step 6: append to a ρ-run with offsets C0 → R4. ---
	engP0, _ := runRho(c0)
	prefix0 := engP0.Run()
	r4, err := shift.Append(prefix0, s3c)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: second append failed: %w", err)
	}
	// Linearizability of R4 forces op1 to complete with the complement
	// (op0 = solo is already fixed; a second solo value is impossible).
	r4withSolo := completePending(r4, 1, sc.Op, solo, budget)
	r4withOther := completePending(r4, 1, sc.Op, other, budget)
	okSolo = lincheck.CheckTrace(dt, r4withSolo).Linearizable
	okOther = lincheck.CheckTrace(dt, r4withOther).Linearizable
	if okSolo || !okOther {
		rep.logf("R4: completion analysis inconclusive (solo→%v, other→%v) — chain broken", okSolo, okOther)
		return rep, nil
	}
	rep.logf("R4 = ρ·S3'': linearizability forces op1 = %v", spec.FormatValue(other))

	// --- Step 7: indistinguishability from the solo run R5. ---
	// R4's extension repairs the p0→p1 delay to d (Figure 7). The
	// earliest any information about op0 (invoked at its shifted time)
	// can reach p1 is op0's invocation plus the shortest path from p0 to
	// p1 over the repaired delays; if op1 responds strictly earlier, p1's
	// view matches R5, where it runs op1 solo and returns 5 —
	// contradicting the forced "empty".
	op1Invoke := op1Rec4.InvokeTime
	window := op1Invoke.Add(budget)
	m5 := copyMatrix(m4)
	m5[0][1] = p.D // Step 6's repair of the p0→p1 delay
	earliestLearn := op0Rec4.InvokeTime.Add(shift.ShortestPaths(m5)[0][1])
	if window >= earliestLearn {
		rep.logf("R4: p1 can hear about op0 by %v, at or before its response at %v — indistinguishability fails (budget respects the bound)",
			earliestLearn, window)
		return rep, nil
	}
	for _, msg := range r4.Msgs { // sanity: the fragment itself carries no leak either
		if msg.To == 1 && msg.Received() && msg.RecvTime >= op1Invoke && msg.RecvTime <= window &&
			msg.SendTime >= op0Rec4.InvokeTime {
			return nil, fmt.Errorf("lowerbound: fragment leaks op0 to p1 at %v (construction bug)", msg.RecvTime)
		}
	}
	eng5, _ := runRho(c0)
	op1Solo := eng5.InvokeAt(1, op1Invoke, sc.Op, sc.OpArg)
	r5 := eng5.Run()
	if err := r5.CheckComplete(); err != nil {
		return nil, err
	}
	soloVal := opBySeq(r5, op1Solo).Ret
	if !spec.ValuesEqual(soloVal, solo) {
		rep.logf("R5: solo %s at p1 returned %v, not %v — chain broken", sc.Op, soloVal, spec.FormatValue(solo))
		return rep, nil
	}
	rep.logf("R5: p1 running solo returns %v; R4's p1 is indistinguishable from R5 through its response",
		spec.FormatValue(solo))
	rep.logf("CONTRADICTION: op1 must return %v (linearizability of R4) and %v (indistinguishability from R5)",
		spec.FormatValue(other), spec.FormatValue(solo))
	rep.ViolationFound = true
	return rep, nil
}

// findOp locates the record of the named op invoked at proc in the trace.
func findOp(tr *sim.Trace, proc sim.ProcID, op string) (sim.OpRecord, bool) {
	for _, rec := range tr.Ops {
		if rec.Proc == proc && rec.Op == op {
			return rec, true
		}
	}
	return sim.OpRecord{}, false
}

// completePending returns a copy of tr with the pending instance of op at
// proc completed with the given return value (response = invoke+latency).
func completePending(tr *sim.Trace, proc sim.ProcID, op string, ret any, latency simtime.Duration) *sim.Trace {
	out := tr.Clone()
	for i := range out.Ops {
		if out.Ops[i].Proc == proc && out.Ops[i].Op == op && out.Ops[i].Pending() {
			out.Ops[i].Ret = ret
			out.Ops[i].RespondTime = out.Ops[i].InvokeTime.Add(latency)
		}
	}
	return out
}

// shiftMatrix applies Theorem 1(2) to a delay matrix: δ_ij - x_i + x_j.
func shiftMatrix(m [][]simtime.Duration, x []simtime.Duration) [][]simtime.Duration {
	out := copyMatrix(m)
	for i := range out {
		for j := range out[i] {
			if i == j {
				continue
			}
			out[i][j] = m[i][j] - x[i] + x[j]
		}
	}
	return out
}

func copyMatrix(m [][]simtime.Duration) [][]simtime.Duration {
	out := make([][]simtime.Duration, len(m))
	for i := range m {
		out[i] = append([]simtime.Duration(nil), m[i]...)
	}
	return out
}
