package lowerbound

import (
	"fmt"

	"lintime/internal/adt"
	"lintime/internal/spec"
)

// Thm2Scenario instantiates Theorem 2 for a concrete pure accessor: the
// construction alternates AOP instances at p0/p1 around one mutator
// instance whose effect flips the accessor's return value. The paper
// derives the specific bounds of Tables 1-4 from Theorem 2 by exactly
// this specialization.
type Thm2Scenario struct {
	TypeName string
	AOP      string
	AOPArg   spec.Value
	Mut      string
	MutArg   spec.Value
}

// Thm2Scenarios are the stock Theorem 2 specializations: one per pure
// accessor in Tables 1-4, plus extras.
func Thm2Scenarios() []Thm2Scenario {
	return []Thm2Scenario{
		{TypeName: "queue", AOP: adt.OpPeek, Mut: adt.OpEnqueue, MutArg: 7},
		{TypeName: "stack", AOP: adt.OpPeek, Mut: adt.OpPush, MutArg: 7},
		{TypeName: "register", AOP: adt.OpRead, Mut: adt.OpWrite, MutArg: 3},
		{TypeName: "tree", AOP: adt.OpDepth, AOPArg: 1, Mut: adt.OpInsert, MutArg: adt.Edge{P: 0, C: 1}},
		{TypeName: "pqueue", AOP: adt.OpPQMin, Mut: adt.OpPQInsert, MutArg: 4},
		{TypeName: "counter", AOP: adt.OpReadCtr, Mut: adt.OpInc},
		{TypeName: "bank", AOP: adt.OpBalance, Mut: adt.OpDeposit, MutArg: 5},
	}
}

// findThm2Scenario returns the stock scenario for a type.
func findThm2Scenario(typeName string) (Thm2Scenario, error) {
	for _, sc := range Thm2Scenarios() {
		if sc.TypeName == typeName {
			return sc, nil
		}
	}
	return Thm2Scenario{}, fmt.Errorf("lowerbound: no Theorem 2 scenario for type %q", typeName)
}

// Thm3Scenario instantiates Theorem 3 for a concrete last-sensitive
// mutator: k processes concurrently invoke distinct instances, and a
// probe sequence executed afterwards at p0 reveals which instance was
// linearized last.
type Thm3Scenario struct {
	TypeName string
	Op       string
	// Args returns k distinct arguments, or nil if the type cannot
	// provide that many.
	Args func(k int) []spec.Value
	// Rho builds an optional prefix executed sequentially by p0 before
	// the concurrent phase (nil for none).
	Rho func(k int) []spec.Invocation
	// Probes is the post-quiescence revealing sequence (invoked at p0).
	Probes func(k int) []spec.Invocation
	// LastIndex maps the probe responses to the index (into Args) of the
	// instance revealed last.
	LastIndex func(args []spec.Value, probeRets []spec.Value) (int, error)
}

// intArgsFn returns 0..k-1 as arguments.
func intArgsFn(k int) []spec.Value {
	out := make([]spec.Value, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// indexOfValue finds ret among args.
func indexOfValue(args []spec.Value, ret spec.Value) (int, error) {
	for i, a := range args {
		if spec.ValuesEqual(a, ret) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("lowerbound: probe revealed %v, not one of the instances", ret)
}

// Thm3Scenarios are the stock Theorem 3 specializations, matching
// Corollary 1 (write, push, enqueue) plus the move-insert tree and the
// deque.
func Thm3Scenarios() []Thm3Scenario {
	repeat := func(op string, count func(k int) int) func(int) []spec.Invocation {
		return func(k int) []spec.Invocation {
			out := make([]spec.Invocation, count(k))
			for i := range out {
				out[i] = spec.Invocation{Op: op}
			}
			return out
		}
	}
	return []Thm3Scenario{
		{
			TypeName: "queue", Op: adt.OpEnqueue, Args: intArgsFn,
			Probes: repeat(adt.OpDequeue, func(k int) int { return k }),
			LastIndex: func(args, rets []spec.Value) (int, error) {
				// FIFO: the last dequeue returns the last enqueue.
				return indexOfValue(args, rets[len(rets)-1])
			},
		},
		{
			TypeName: "stack", Op: adt.OpPush, Args: intArgsFn,
			Probes: repeat(adt.OpPop, func(k int) int { return 1 }),
			LastIndex: func(args, rets []spec.Value) (int, error) {
				// LIFO: the first pop returns the last push.
				return indexOfValue(args, rets[0])
			},
		},
		{
			TypeName: "register", Op: adt.OpWrite, Args: intArgsFn,
			Probes: repeat(adt.OpRead, func(k int) int { return 1 }),
			LastIndex: func(args, rets []spec.Value) (int, error) {
				// The register holds the last write.
				return indexOfValue(args, rets[0])
			},
		},
		{
			TypeName: "log", Op: adt.OpAppend, Args: intArgsFn,
			Probes: repeat(adt.OpLast, func(k int) int { return 1 }),
			LastIndex: func(args, rets []spec.Value) (int, error) {
				return indexOfValue(args, rets[0])
			},
		},
		{
			TypeName: "deque", Op: adt.OpPushFront, Args: intArgsFn,
			Probes: repeat(adt.OpPopFront, func(k int) int { return 1 }),
			LastIndex: func(args, rets []spec.Value) (int, error) {
				// The last pushFront is the front.
				return indexOfValue(args, rets[0])
			},
		},
		{
			TypeName: "tree", Op: adt.OpInsert,
			// Distinct instances: move node 2 under parent i of a chain
			// 0→1→3→5→… built by ρ; the last insert wins, and depth(2)
			// reveals the winning parent's depth.
			Args: func(k int) []spec.Value {
				if k > len(treeChain)+1 {
					return nil
				}
				out := make([]spec.Value, k)
				out[0] = adt.Edge{P: 0, C: 2}
				for i := 1; i < k; i++ {
					out[i] = adt.Edge{P: treeChain[i-1], C: 2}
				}
				return out
			},
			Rho: treeRho,
			Probes: func(int) []spec.Invocation {
				return []spec.Invocation{{Op: adt.OpDepth, Arg: 2}}
			},
			LastIndex: func(args, rets []spec.Value) (int, error) {
				// depth(2) = 1 + depth of the winning parent; the chain
				// puts parent i at depth i.
				d, ok := rets[0].(int)
				if !ok || d < 1 {
					return 0, fmt.Errorf("lowerbound: depth probe returned %v", rets[0])
				}
				return d - 1, nil
			},
		},
	}
}

// treeChain is the chain of non-root parents for the tree scenario:
// insert(0,1), insert(1,3), insert(3,5), ... built as the prefix ρ.
var treeChain = []int{1, 3, 5, 7, 9, 11, 13}

// treeRho builds the prefix instance sequence for the tree scenario with
// k parents (chain of k-1 nodes under the root).
func treeRho(k int) []spec.Invocation {
	var out []spec.Invocation
	prev := 0
	for i := 0; i < k-1; i++ {
		out = append(out, spec.Invocation{Op: adt.OpInsert, Arg: adt.Edge{P: prev, C: treeChain[i]}})
		prev = treeChain[i]
	}
	return out
}

// Thm4Scenario instantiates Theorem 4 for a concrete pair-free operation:
// after the prefix ρ (executed by p0), a solo instance of Op returns
// SoloRet, while a second instance immediately following returns the
// distinct OtherRet — and neither order of the two "solo-valued"
// instances is legal (the pair-free property).
type Thm4Scenario struct {
	TypeName string
	Op       string
	OpArg    spec.Value
	Rho      []spec.Invocation
}

// Thm4Scenarios are the stock pair-free specializations: Corollary 2's
// rmw, dequeue and pop, plus the newer types.
func Thm4Scenarios() []Thm4Scenario {
	return []Thm4Scenario{
		{TypeName: "queue", Op: adt.OpDequeue,
			Rho: []spec.Invocation{{Op: adt.OpEnqueue, Arg: 5}}},
		{TypeName: "stack", Op: adt.OpPop,
			Rho: []spec.Invocation{{Op: adt.OpPush, Arg: 5}}},
		{TypeName: "rmwregister", Op: adt.OpRMW, OpArg: 1},
		{TypeName: "bank", Op: adt.OpWithdraw, OpArg: 5,
			Rho: []spec.Invocation{{Op: adt.OpDeposit, Arg: 5}}},
		{TypeName: "pqueue", Op: adt.OpPQExtract,
			Rho: []spec.Invocation{{Op: adt.OpPQInsert, Arg: 3}}},
		{TypeName: "deque", Op: adt.OpPopFront,
			Rho: []spec.Invocation{{Op: adt.OpPushBack, Arg: 5}}},
	}
}

// Thm5Scenario instantiates Theorem 5 for a concrete (transposable
// mutator, discriminating pure accessor) pair: two distinct mutator
// instances legal after ρ, and an accessor argument whose response
// discriminates the orders per the theorem's hypotheses.
type Thm5Scenario struct {
	TypeName string
	Rho      []spec.Invocation
	Op       string
	Op0Arg   spec.Value
	Op1Arg   spec.Value
	AOP      string
	AOPArg   spec.Value
}

// Thm5Scenarios are the stock Theorem 5 specializations: the paper's
// (enqueue, peek) example, the first-wins tree's (insert, depth) from
// Table 4, and the deque's (pushback, front).
func Thm5Scenarios() []Thm5Scenario {
	return []Thm5Scenario{
		{TypeName: "queue", Op: adt.OpEnqueue, Op0Arg: 1, Op1Arg: 2, AOP: adt.OpPeek},
		{
			TypeName: "treefw",
			Rho: []spec.Invocation{
				{Op: adt.OpInsert, Arg: adt.Edge{P: 0, C: 1}},
				{Op: adt.OpInsert, Arg: adt.Edge{P: 1, C: 3}},
			},
			Op:     adt.OpInsert,
			Op0Arg: adt.Edge{P: 1, C: 2}, // first-wins: winner fixes depth(2)
			Op1Arg: adt.Edge{P: 3, C: 2},
			AOP:    adt.OpDepth,
			AOPArg: 2,
		},
		{TypeName: "deque", Op: adt.OpPushBack, Op0Arg: 1, Op1Arg: 2, AOP: adt.OpFront},
	}
}

// findThm5Scenario returns the stock scenario for a type.
func findThm5Scenario(typeName string) (Thm5Scenario, error) {
	for _, sc := range Thm5Scenarios() {
		if sc.TypeName == typeName {
			return sc, nil
		}
	}
	return Thm5Scenario{}, fmt.Errorf("lowerbound: no Theorem 5 scenario for type %q", typeName)
}

// findThm4Scenario returns the stock scenario for a type.
func findThm4Scenario(typeName string) (Thm4Scenario, error) {
	for _, sc := range Thm4Scenarios() {
		if sc.TypeName == typeName {
			return sc, nil
		}
	}
	return Thm4Scenario{}, fmt.Errorf("lowerbound: no Theorem 4 scenario for type %q", typeName)
}

// values derives the solo and complementary return values of a pair-free
// scenario from the sequential specification and validates the pair-free
// property itself.
func (sc Thm4Scenario) values(dt spec.DataType) (solo, other spec.Value, err error) {
	state := dt.Initial()
	for _, inv := range sc.Rho {
		_, state = state.Apply(inv.Op, inv.Arg)
	}
	solo, afterOne := state.Apply(sc.Op, sc.OpArg)
	other, _ = afterOne.Apply(sc.Op, sc.OpArg)
	if spec.ValuesEqual(solo, other) {
		return nil, nil, fmt.Errorf("lowerbound: %s.%s is not pair-free after ρ (both return %v)",
			sc.TypeName, sc.Op, solo)
	}
	return solo, other, nil
}

// findThm3Scenario returns the stock scenario for a type.
func findThm3Scenario(typeName string) (Thm3Scenario, error) {
	for _, sc := range Thm3Scenarios() {
		if sc.TypeName == typeName {
			return sc, nil
		}
	}
	return Thm3Scenario{}, fmt.Errorf("lowerbound: no Theorem 3 scenario for type %q", typeName)
}
