package lowerbound

import (
	"fmt"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/core"
	"lintime/internal/lincheck"
	"lintime/internal/shift"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Theorem3 mechanizes the last-sensitive mutator bound
// |OP| ≥ (1 - 1/k)·u (Theorem 3) on a FIFO queue with enqueue. See
// Theorem3For for other data types.
func Theorem3(p simtime.Params, k int, budget simtime.Duration) (*Report, error) {
	sc, err := findThm3Scenario("queue")
	if err != nil {
		return nil, err
	}
	return Theorem3For(p, sc, k, budget)
}

// Theorem3On runs the Theorem 3 construction on the named data type's
// stock scenario.
func Theorem3On(p simtime.Params, typeName string, k int, budget simtime.Duration) (*Report, error) {
	sc, err := findThm3Scenario(typeName)
	if err != nil {
		return nil, err
	}
	return Theorem3For(p, sc, k, budget)
}

// Theorem3For mechanizes Theorem 3 for an arbitrary last-sensitive
// mutator scenario.
//
// Construction (following the proof, Figure 1): the delay matrix is the
// circulant d_ij = d - ((i-j) mod k)·u/k for i,j < k and d - u/2
// elsewhere; clocks agree. After an optional prefix ρ executed by p0,
// processes p0..p_{k-1} invoke the k distinct instances simultaneously at
// time t; afterwards p0 runs the scenario's probe sequence, revealing
// which instance the algorithm linearized last (p_z). Shifting by
// x_i = (-(k-1)/(2k) + ((z-i) mod k)/k)·u keeps the run admissible but,
// if |OP| < (1-1/k)u, makes op_z respond strictly before op_{(z+1) mod k}
// is invoked — forcing op_z to linearize before it, contradicting the
// probes that reveal op_z last.
func Theorem3For(p simtime.Params, sc Thm3Scenario, k int, budget simtime.Duration) (*Report, error) {
	if k < 2 || k > p.N {
		return nil, fmt.Errorf("lowerbound: need 2 ≤ k ≤ n, got k=%d n=%d", k, p.N)
	}
	kd := simtime.Duration(k)
	if p.U%(2*kd) != 0 {
		return nil, fmt.Errorf("lowerbound: u = %v must be divisible by 2k = %d", p.U, 2*k)
	}
	bound := p.U - p.U/kd
	if p.Epsilon < bound {
		return nil, fmt.Errorf("lowerbound: need ε ≥ (1-1/k)u = %v, got %v", bound, p.Epsilon)
	}
	args := sc.Args(k)
	if args == nil {
		return nil, fmt.Errorf("lowerbound: type %s cannot provide %d distinct %s instances", sc.TypeName, k, sc.Op)
	}
	rep := &Report{Theorem: "Theorem 3", DataType: sc.TypeName, Op: sc.Op,
		Budget: budget, Bound: bound}

	dt, err := adt.Lookup(sc.TypeName)
	if err != nil {
		return nil, err
	}
	classes := classify.Classify(dt, classify.DefaultConfig()).Classes()
	timers := core.DefaultTimers(p)
	timers.MOPRespond = budget
	nodes := core.NewReplicas(p.N, dt, classes, timers)
	net := sim.CirculantNetwork(p.N, k, p.D, p.U)
	if err := net.Validate(p); err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(p, sim.ZeroOffsets(p.N), net, nodes)
	if err != nil {
		return nil, err
	}

	// Optional prefix ρ, executed sequentially by p0.
	gap := p.D + p.U + p.Epsilon + 10
	t := simtime.Time(0)
	if sc.Rho != nil {
		for _, inv := range sc.Rho(k) {
			eng.InvokeAt(0, t, inv.Op, inv.Arg)
			t = t.Add(gap)
		}
		t = t.Add(2 * gap) // quiescence margin before the concurrent phase
	}

	// k concurrent instances at time t.
	for i := 0; i < k; i++ {
		eng.InvokeAt(sim.ProcID(i), t, sc.Op, args[i])
	}
	// Probe sequence at p0 revealing the linearization.
	probes := sc.Probes(k)
	probeStart := t.Add(3 * gap)
	var probeSeqs []int64
	for i, inv := range probes {
		seq := eng.InvokeAt(0, probeStart.Add(simtime.Duration(i)*gap), inv.Op, inv.Arg)
		probeSeqs = append(probeSeqs, seq)
	}
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		return nil, err
	}
	if err := tr.CheckAdmissible(); err != nil {
		return nil, err
	}

	probeRets := make([]spec.Value, len(probeSeqs))
	for i, seq := range probeSeqs {
		probeRets[i] = opBySeq(tr, seq).Ret
	}
	z, err := sc.LastIndex(args, probeRets)
	if err != nil {
		return nil, err
	}
	if z < 0 || z >= k {
		return nil, fmt.Errorf("lowerbound: revealed last index %d out of range", z)
	}
	rep.logf("R1: %d concurrent %s instances at t=%v on the circulant delay matrix; probes reveal last = op_%d (at p%d)",
		k, sc.Op, t, z, z)

	// Shift per the proof: x_i = (-(k-1)/(2k) + ((z-i) mod k)/k)·u.
	x := make([]simtime.Duration, p.N)
	for i := 0; i < k; i++ {
		mod := simtime.Duration(((z-i)%k + k) % k)
		x[i] = -(kd-1)*p.U/(2*kd) + mod*p.U/kd
	}
	shifted, err := shift.Shift(tr, x)
	if err != nil {
		return nil, err
	}
	if err := shifted.CheckAdmissible(); err != nil {
		return nil, fmt.Errorf("lowerbound: shifted run inadmissible (construction bug): %w", err)
	}
	rep.logf("R2 = shift(R1, x) with x = %v: admissible (max skew (1-1/k)u = %v ≤ ε = %v)",
		x[:k], bound, p.Epsilon)

	res := lincheck.CheckTrace(dt, shifted)
	rep.ViolationFound = !res.Linearizable
	if rep.ViolationFound {
		rep.logf("R2 is NOT linearizable: op_%d responds before op_%d is invoked, but the probes put it last", z, (z+1)%k)
	} else {
		rep.logf("R2 remains linearizable: budget %v ≥ (1-1/k)u = %v keeps the instances overlapping", budget, bound)
	}
	rep.logf("history: %s", formatOps(shifted.CompletedOps()))
	return rep, nil
}
