package lowerbound

import (
	"testing"

	"lintime/internal/simtime"
)

func TestTheorem5ViolationBelowBound(t *testing.T) {
	p := lbParams() // m = d/3? m = min(ε=0.8u, u, d/3): d=2Q, u=Q: d/3 < 0.8u? 2Q/3 < 0.8Q ✓ m = 2Q/3... Quantum divisible by 3 ✓
	m := MinPairFree(p)
	budgetOp := p.D - 2*m
	budgetAop := 3*m - 1 // sum = d+m-1
	rep, err := Theorem5(p, budgetOp, budgetAop)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("budget sum d+m-1 should produce the contradiction:\n%s", rep)
	}
	if rep.Bound != p.D+m {
		t.Errorf("bound = %v, want %v", rep.Bound, p.D+m)
	}
}

func TestTheorem5NoViolationAtBound(t *testing.T) {
	p := lbParams()
	m := MinPairFree(p)
	rep, err := Theorem5(p, p.D-2*m, 3*m) // sum = d+m exactly
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationFound {
		t.Errorf("budget sum d+m should not produce the contradiction:\n%s", rep)
	}
}

func TestTheorem5OtherSplit(t *testing.T) {
	// A different budget split below the bound still yields the
	// contradiction as long as the chop boundaries work out.
	p := lbParams()
	m := MinPairFree(p)
	rep, err := Theorem5(p, p.D-2*m-100, 3*m+99) // sum = d+m-1
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("alternate split below the bound should violate:\n%s", rep)
	}
}

func TestTheorem5ParameterValidation(t *testing.T) {
	p := lbParams()
	p.N = 2
	if _, err := Theorem5(p, 100, 100); err == nil {
		t.Error("n < 3 should error")
	}
	p = lbParams()
	if _, err := Theorem5(p, 0, 100); err == nil {
		t.Error("zero op budget should error")
	}
}

func TestTheorem5ProofGapWhenShiftStaysAdmissible(t *testing.T) {
	// Same regime gap as Theorem 4: with 2m ≤ u the shifted delay stays
	// admissible and the construction reports no violation.
	p := simtime.Params{N: 3, D: 3 * simtime.Quantum, U: simtime.Quantum,
		Epsilon: simtime.Quantum / 4, X: 0} // m = ε = u/4
	m := MinPairFree(p)
	rep, err := Theorem5(p, p.D-2*m, 3*m-1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationFound {
		t.Errorf("written proof does not apply when 2m ≤ u:\n%s", rep)
	}
}
