package lowerbound

import (
	"testing"

	"lintime/internal/simtime"
)

func TestTheorem4ViolationBelowBound(t *testing.T) {
	p := lbParams() // m = min(ε, u, d/3) = d/3 = 6720
	m := MinPairFree(p)
	rep, err := Theorem4(p, p.D+m-1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("budget d+m-1 should produce the contradiction:\n%s", rep)
	}
	if rep.Bound != p.D+m {
		t.Errorf("bound = %v, want %v", rep.Bound, p.D+m)
	}
}

func TestTheorem4NoViolationAtBound(t *testing.T) {
	p := lbParams()
	m := MinPairFree(p)
	rep, err := Theorem4(p, p.D+m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationFound {
		t.Errorf("budget d+m should not produce the contradiction:\n%s", rep)
	}
}

func TestTheorem4EpsilonLimited(t *testing.T) {
	// Configuration where m = ε < min(u, d/3) but 2m > u, so the written
	// proof's single-invalid-delay claim in Step 5 holds.
	p := simtime.Params{N: 5, D: 4 * simtime.Quantum, U: simtime.Quantum,
		Epsilon: simtime.OptimalEpsilon(5, simtime.Quantum), X: 0}
	m := MinPairFree(p)
	if m != p.Epsilon {
		t.Fatalf("expected ε-limited configuration, m = %v", m)
	}
	rep, err := Theorem4(p, p.D+m-1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("ε-limited: budget d+m-1 should violate:\n%s", rep)
	}
	rep, err = Theorem4(p, p.D+m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationFound {
		t.Errorf("ε-limited: budget d+m should not violate:\n%s", rep)
	}
}

func TestTheorem4ProofGapWhenShiftStaysAdmissible(t *testing.T) {
	// When 2m ≤ u, Step 5's shifted delay d-2m remains admissible and the
	// written construction cannot derive the contradiction. The
	// mechanization must detect this and report no violation rather than
	// fabricate one.
	p := simtime.Params{N: 3, D: 3 * simtime.Quantum, U: simtime.Quantum,
		Epsilon: simtime.Quantum / 4, X: 0} // m = ε = u/4, 2m = u/2 ≤ u
	m := MinPairFree(p)
	if 2*m > p.U {
		t.Fatal("test config must have 2m ≤ u")
	}
	rep, err := Theorem4(p, p.D+m-1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationFound {
		t.Errorf("written proof does not apply when 2m ≤ u; no violation should be reported:\n%s", rep)
	}
}

func TestTheorem4ULimited(t *testing.T) {
	// Configuration where m = u < min(ε, d/3).
	p := simtime.Params{N: 3, D: 3 * simtime.Quantum, U: simtime.Quantum / 4, Epsilon: simtime.Quantum / 2, X: 0}
	m := MinPairFree(p)
	if m != p.U {
		t.Fatalf("expected u-limited configuration, m = %v", m)
	}
	rep, err := Theorem4(p, p.D+m-1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ViolationFound {
		t.Errorf("u-limited: budget d+m-1 should violate:\n%s", rep)
	}
}

func TestTheorem4BudgetBelowSelfDelay(t *testing.T) {
	p := lbParams()
	if _, err := Theorem4(p, p.D-p.U-1); err == nil {
		t.Error("budget below d-u should error (our algorithm family cannot go faster)")
	}
}

func TestTheorem4NeedsThreeProcesses(t *testing.T) {
	p := lbParams()
	p.N = 2
	if _, err := Theorem4(p, p.D); err == nil {
		t.Error("n < 3 should error")
	}
}
