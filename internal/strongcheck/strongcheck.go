// Package strongcheck decides *strong* linearizability [Golab, Higham &
// Woelfel 2011]: an implementation is strongly linearizable if a single
// linearization function f can be chosen such that f(H) is a
// linearization of every history H and f is prefix-preserving — H a
// prefix of G implies f(H) a prefix of f(G). Equivalently, linearization
// points must be chosen online, without knowledge of the future.
//
// Two entry points:
//
//   - CheckStrong examines one history: it decides whether a linearization
//     can be chosen consistently across all prefixes of that history's
//     event sequence (a monotone chain L(H_0) ⊑ L(H_1) ⊑ … with each
//     L(H_t) a valid linearization of the prefix H_t), and returns the
//     commit points as a witness. For a single, fully known history this
//     is provably equivalent in verdict to plain linearizability — a
//     linearization respecting real-time order can always be realized by
//     commit points inside each operation's interval, and vice versa —
//     so CheckStrong ⇒ lincheck.Check by construction (the package tests
//     pin the equivalence over the FuzzCheck corpus). Its value is the
//     commit-point witness and that it is the building block of:
//
//   - CheckStrongTree examines a prefix tree of histories — several
//     executions of one implementation that share observable prefixes and
//     then diverge (the divergence is the adversary's move: a late message
//     delivered earlier, an extra invocation). Here prefix preservation
//     has bite: the linearization chosen for a shared prefix must extend
//     into *every* branch. The classic queue counterexample — a completed
//     enqueue and a concurrent read whose return reveals a different order
//     in each branch — is linearizable branch by branch yet admits no
//     consistent choice, and CheckStrongTree rejects it. This is the
//     per-configuration analogue of the forward-simulation
//     characterization of strong linearizability.
//
// The search mirrors internal/lincheck's discipline: explicit work on a
// recursion over tree nodes with a failed-state memo keyed by a compact
// (node, committed-bitmap, state-fingerprint) byte key assembled in a
// reused scratch buffer, so equivalent search states are explored once
// and lookups do not allocate.
package strongcheck

import (
	"sort"

	"lintime/internal/lincheck"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Result reports the outcome of a strong-linearizability check.
type Result struct {
	// Strong reports whether a prefix-consistent linearization choice
	// exists (for CheckStrong: across all prefixes of the one history;
	// for CheckStrongTree: across every branch of the tree).
	Strong bool
	// Linearization is a witness commit sequence when Strong is true and
	// the check ran over a single history. For trees it is the commit
	// sequence of the first (leftmost) branch.
	Linearization []spec.Instance
	// Points gives, for each instance of Linearization, the number of
	// history events (invocations and responses in time order) processed
	// before that instance was committed: its linearization point sits
	// between the Points[i]-th and the next event.
	Points []int
	// Explored counts visited search states, as a cost metric.
	Explored int
}

// event is one endpoint of an operation in the time-ordered event view of
// a history.
type event struct {
	time simtime.Time
	kind eventKind
	op   int // index into the unified op table
	ret  spec.Value
}

type eventKind uint8

const (
	evInvoke eventKind = iota
	evRespond
)

// eventSeq converts a history into its time-ordered event sequence.
// Simultaneous events order invocations before responses — an operation
// invoked at the very instant another responds still overlaps it in the
// interval order (lincheck's real-time precedence uses the same strict
// inequality), so the commit freedom of the two checkers coincides —
// and ties beyond that break by op index for determinism.
func eventSeq(ops []lincheck.Op) []event {
	evs := make([]event, 0, 2*len(ops))
	for i, op := range ops {
		evs = append(evs, event{time: op.Invoke, kind: evInvoke, op: i})
		if !op.Pending() {
			evs = append(evs, event{time: op.Respond, kind: evRespond, op: i, ret: op.Ret})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].time != evs[b].time {
			return evs[a].time < evs[b].time
		}
		if evs[a].kind != evs[b].kind {
			return evs[a].kind < evs[b].kind
		}
		return evs[a].op < evs[b].op
	})
	return evs
}

// CheckStrong decides whether a linearization of the history can be chosen
// consistently across all of its prefixes, and returns commit points as a
// witness. See the package comment for the precise semantics (and for why
// the verdict coincides with plain linearizability on a single history).
func CheckStrong(dt spec.DataType, history []lincheck.Op) Result {
	t := NewTree()
	t.Add(history)
	return t.Check(dt)
}

// CheckStrongTrace is shorthand for CheckStrong over lincheck.FromTrace.
func CheckStrongTrace(dt spec.DataType, tr TraceHistory) Result {
	return CheckStrong(dt, tr.Ops())
}

// TraceHistory abstracts the trace type to avoid an import cycle knot in
// callers that already hold []lincheck.Op; sim traces convert via
// lincheck.FromTrace.
type TraceHistory interface{ Ops() []lincheck.Op }
