package strongcheck

import (
	"encoding/binary"
	"fmt"
	"sort"

	"lintime/internal/lincheck"
	"lintime/internal/spec"
)

// Tree is a prefix tree (trie) of histories of one implementation. Each
// node carries one observable event — an invocation or a response, with
// the response's return value part of its identity — and histories that
// share a prefix of their time-ordered event sequences share the
// corresponding path of nodes. Operations appearing in several histories
// are unified by (process, operation, argument, invocation time), so a
// single commit decision in a shared prefix constrains every branch
// below it: exactly the prefix-preservation obligation of strong
// linearizability.
type Tree struct {
	ops      []treeOp
	opIndex  map[string]int
	root     *treeNode
	nodes    int
	branches int
}

// treeOp is an operation unified across branches. Its response (time and
// return value) is branch-local and lives on respond events, because an
// operation invoked in a shared prefix may complete differently — or not
// at all — in different branches.
type treeOp struct {
	proc   int
	name   string
	arg    spec.Value
	argKey string
}

type treeNode struct {
	id       int
	ev       event // zero-valued at the root sentinel
	isRoot   bool
	key      string // identity of ev among siblings
	children []*treeNode
}

// NewTree returns an empty prefix tree.
func NewTree() *Tree {
	t := &Tree{opIndex: map[string]int{}}
	t.root = &treeNode{id: 0, isRoot: true}
	t.nodes = 1
	return t
}

// Branches returns the number of histories added (= leaves, unless a
// history was added twice).
func (t *Tree) Branches() int { return t.branches }

// Nodes returns the number of event nodes (excluding the root sentinel).
func (t *Tree) Nodes() int { return t.nodes - 1 }

// Ops returns the number of unified operations.
func (t *Tree) Ops() int { return len(t.ops) }

// Add inserts a history into the tree. Operations are unified across
// histories by (process, operation, argument, invocation time) — with an
// occurrence counter so repeated identical invocations stay distinct —
// and the history's events are merged along the path of matching event
// identities. Events at equal times order invocations before responses
// (see eventSeq); remaining ties keep history order, so histories
// produced by replaying the same deterministic engine prefix share nodes
// exactly as far as their observable events agree.
func (t *Tree) Add(history []lincheck.Op) {
	// Map each local op to a unified op index.
	occ := map[string]int{}
	unified := make([]int, len(history))
	for i, op := range history {
		argKey := spec.FormatValue(op.Arg)
		base := fmt.Sprintf("%d·%s·%s·%d", op.Proc, op.Name, argKey, op.Invoke)
		key := fmt.Sprintf("%s·#%d", base, occ[base])
		occ[base]++
		idx, ok := t.opIndex[key]
		if !ok {
			idx = len(t.ops)
			t.opIndex[key] = idx
			t.ops = append(t.ops, treeOp{proc: op.Proc, name: op.Name, arg: op.Arg, argKey: argKey})
		}
		unified[i] = idx
	}
	// Build the event sequence over unified op indices and walk it into
	// the trie.
	local := eventSeq(history)
	cur := t.root
	for _, ev := range local {
		ev.op = unified[ev.op]
		key := eventKey(ev)
		child := cur.findChild(key)
		if child == nil {
			child = &treeNode{id: t.nodes, ev: ev, key: key}
			t.nodes++
			cur.insertChild(child)
		}
		cur = child
	}
	t.branches++
}

// eventKey renders an event's identity: kind, time, unified op, and — for
// responses — the return value. Two histories diverge at the first event
// whose key differs, so a response that differs only in its return value
// is a branch point.
func eventKey(ev event) string {
	if ev.kind == evInvoke {
		return fmt.Sprintf("i·%d·%d", ev.time, ev.op)
	}
	return fmt.Sprintf("r·%d·%d·%s", ev.time, ev.op, spec.FormatValue(ev.ret))
}

func (n *treeNode) findChild(key string) *treeNode {
	for _, c := range n.children {
		if c.key == key {
			return c
		}
	}
	return nil
}

// insertChild keeps children in sorted key order so exploration (and
// therefore Explored counts and witnesses) is independent of insertion
// order.
func (n *treeNode) insertChild(c *treeNode) {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].key >= c.key })
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
}

// CheckStrongTree decides whether the histories of the tree admit a
// prefix-preserving linearization: one assignment of commit points such
// that every branch's commit sequence is a legal linearization and
// branches sharing a prefix share its commits. See the package comment.
func CheckStrongTree(dt spec.DataType, t *Tree) Result {
	return t.Check(dt)
}

// Check runs the strong-linearizability search over the tree.
func (t *Tree) Check(dt spec.DataType) Result {
	c := newTChecker(t)
	init := dt.Initial()
	ok := c.solve(t.root, init, init.Fingerprint())
	res := Result{Strong: ok, Explored: c.visited}
	if ok {
		res.Linearization, res.Points = t.witnessFirstBranch(dt)
	}
	return res
}

// tchecker is the DFS state of one tree check, mirroring lincheck's
// checker: a failed-state memo with compact keys assembled in a reused
// scratch buffer. The recursion is over tree nodes (bounded by the
// longest branch plus the operation count), so an explicit stack is not
// needed here.
type tchecker struct {
	tree    *Tree
	taken   []bool
	invoked []bool
	// retOf holds the spec return produced when an op was committed. It is
	// checked when the op's respond event is processed (the recorded
	// return is branch-local, so the match cannot happen at commit time)
	// and is part of the memo key for taken ops: two paths can reach the
	// same (taken set, state) having assigned different returns, and only
	// some assignments satisfy the responses below.
	retOf   []spec.Value
	memo    map[string]struct{}
	keyBuf  []byte
	visited int
}

func newTChecker(t *Tree) *tchecker {
	return &tchecker{
		tree:    t,
		taken:   make([]bool, len(t.ops)),
		invoked: make([]bool, len(t.ops)),
		retOf:   make([]spec.Value, len(t.ops)),
		memo:    map[string]struct{}{},
		keyBuf:  make([]byte, 0, 4+(len(t.ops)+7)/8+64),
	}
}

// buildKey assembles the memo key for (node, taken set, pending return
// assignment, state fingerprint) in the reused scratch buffer.
func (c *tchecker) buildKey(n *treeNode, fp string) []byte {
	buf := c.keyBuf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.id))
	nb := (len(c.taken) + 7) / 8
	for i := 0; i < nb; i++ {
		buf = append(buf, 0)
	}
	for i, t := range c.taken {
		if t {
			buf[4+i/8] |= 1 << (i % 8)
		}
	}
	for i, t := range c.taken {
		if t {
			buf = append(buf, spec.FormatValue(c.retOf[i])...)
			buf = append(buf, '·')
		}
	}
	buf = append(buf, fp...)
	c.keyBuf = buf[:0]
	return buf
}

func (c *tchecker) knownFailed(n *treeNode, fp string) bool {
	_, bad := c.memo[string(c.buildKey(n, fp))]
	return bad
}

func (c *tchecker) markFailed(n *treeNode, fp string) {
	c.memo[string(c.buildKey(n, fp))] = struct{}{}
}

// solve decides whether the subtree rooted at n can be completed from the
// given state, with n's own event still unprocessed. Moves: process the
// event and descend into all children (a response requires its op
// committed with the branch's recorded return), or commit any invoked,
// uncommitted op first. Failures are memoized on (node, taken, returns,
// state).
func (c *tchecker) solve(n *treeNode, st spec.State, fp string) bool {
	c.visited++
	if c.knownFailed(n, fp) {
		return false
	}
	if c.tryEvent(n, st, fp) {
		return true
	}
	for i := range c.tree.ops {
		if c.taken[i] || !c.invoked[i] {
			continue
		}
		op := c.tree.ops[i]
		ret, next := st.Apply(op.name, op.arg)
		c.taken[i] = true
		c.retOf[i] = ret
		ok := c.solve(n, next, next.Fingerprint())
		c.taken[i] = false
		c.retOf[i] = nil
		if ok {
			return true
		}
	}
	c.markFailed(n, fp)
	return false
}

// tryEvent processes n's event (if legal) and requires every child
// subtree to succeed from the resulting search state. At the root
// sentinel there is no event; a node without children is a completed
// branch.
func (c *tchecker) tryEvent(n *treeNode, st spec.State, fp string) bool {
	if !n.isRoot {
		switch n.ev.kind {
		case evInvoke:
			c.invoked[n.ev.op] = true
			defer func() { c.invoked[n.ev.op] = false }()
		case evRespond:
			if !c.taken[n.ev.op] || !spec.ValuesEqual(c.retOf[n.ev.op], n.ev.ret) {
				return false
			}
		}
	}
	for _, child := range n.children {
		if !c.solve(child, st, fp) {
			return false
		}
	}
	return true
}

// witnessFirstBranch extracts a commit-point witness for the leftmost
// branch of the tree: a strong-linearizability witness for that single
// history (the whole-tree verdict guarantees one exists; the extraction
// reruns the search on the linear path recording commits). Points[i]
// counts the events processed before the i-th commit.
func (t *Tree) witnessFirstBranch(dt spec.DataType) ([]spec.Instance, []int) {
	var events []event
	for n := t.root; len(n.children) > 0; n = n.children[0] {
		events = append(events, n.children[0].ev)
	}
	c := newTChecker(t)
	var lin []spec.Instance
	var points []int
	init := dt.Initial()
	if !c.linear(events, 0, init, init.Fingerprint(), &lin, &points) {
		return nil, nil
	}
	return lin, points
}

// linear is the single-path variant of solve over a flat event slice,
// recording each commit and the number of events processed before it.
func (c *tchecker) linear(events []event, idx int, st spec.State, fp string, lin *[]spec.Instance, points *[]int) bool {
	node := &treeNode{id: idx} // memo identity: position in the path
	if c.knownFailed(node, fp) {
		return false
	}
	if idx == len(events) {
		return true
	}
	ev := events[idx]
	ok := func() bool {
		switch ev.kind {
		case evInvoke:
			c.invoked[ev.op] = true
			defer func() { c.invoked[ev.op] = false }()
		case evRespond:
			if !c.taken[ev.op] || !spec.ValuesEqual(c.retOf[ev.op], ev.ret) {
				return false
			}
		}
		return c.linear(events, idx+1, st, fp, lin, points)
	}()
	if ok {
		return true
	}
	for i := range c.tree.ops {
		if c.taken[i] || !c.invoked[i] {
			continue
		}
		op := c.tree.ops[i]
		ret, next := st.Apply(op.name, op.arg)
		c.taken[i] = true
		c.retOf[i] = ret
		*lin = append(*lin, spec.Instance{Op: op.name, Arg: op.arg, Ret: ret})
		*points = append(*points, idx)
		if c.linear(events, idx, next, next.Fingerprint(), lin, points) {
			c.taken[i] = false
			c.retOf[i] = nil
			return true
		}
		*lin = (*lin)[:len(*lin)-1]
		*points = (*points)[:len(*points)-1]
		c.taken[i] = false
		c.retOf[i] = nil
	}
	c.markFailed(node, fp)
	return false
}
