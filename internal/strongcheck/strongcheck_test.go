package strongcheck

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/lincheck"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// mkOp builds a history entry; resp == simtime.Infinity leaves it pending.
func mkOp(id, proc int, name string, arg, ret spec.Value, inv, resp simtime.Time) lincheck.Op {
	return lincheck.Op{ID: id, Proc: proc, Name: name, Arg: arg, Ret: ret, Invoke: inv, Respond: resp}
}

// TestCheckStrongPositives exercises prefix-closed histories with known
// verdicts on a single trace: sequential runs, overlapping ops, and
// pending invocations that must (or need not) take effect.
func TestCheckStrongPositives(t *testing.T) {
	q := adt.NewQueue()
	cases := []struct {
		name    string
		history []lincheck.Op
		want    bool
	}{
		{"empty", nil, true},
		{"sequential", []lincheck.Op{
			mkOp(0, 0, "enqueue", 1, nil, 0, 1),
			mkOp(1, 0, "dequeue", nil, 1, 2, 3),
		}, true},
		{"overlap-either-order", []lincheck.Op{
			mkOp(0, 0, "enqueue", 1, nil, 0, 4),
			mkOp(1, 1, "peek", nil, adt.EmptyMarker, 1, 2),
		}, true},
		{"pending-enqueue-observed", []lincheck.Op{
			mkOp(0, 0, "enqueue", 7, nil, 0, simtime.Infinity),
			mkOp(1, 1, "dequeue", nil, 7, 2, 3),
		}, true},
		{"illegal-return", []lincheck.Op{
			mkOp(0, 0, "enqueue", 1, nil, 0, 1),
			mkOp(1, 1, "dequeue", nil, 2, 2, 3),
		}, false},
		{"realtime-violation", []lincheck.Op{
			mkOp(0, 0, "enqueue", 1, nil, 0, 1),
			mkOp(1, 0, "enqueue", 2, nil, 2, 3),
			mkOp(2, 1, "dequeue", nil, 2, 4, 5),
		}, false},
		{"touching-intervals-concurrent", []lincheck.Op{
			// dequeue invoked at the instant enqueue responds: the
			// intervals touch, so either order is allowed and the empty
			// return is legal.
			mkOp(0, 0, "enqueue", 1, nil, 0, 2),
			mkOp(1, 1, "dequeue", nil, adt.EmptyMarker, 2, 3),
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := CheckStrong(q, tc.history)
			if res.Strong != tc.want {
				t.Fatalf("CheckStrong = %v, want %v", res.Strong, tc.want)
			}
			plain := lincheck.Check(q, tc.history)
			if res.Strong != plain.Linearizable {
				t.Fatalf("CheckStrong = %v but Check = %v: single-trace verdicts must agree", res.Strong, plain.Linearizable)
			}
			if res.Strong {
				checkWitness(t, q, tc.history, res)
			}
		})
	}
}

// checkWitness validates the commit-point witness: the linearization is a
// legal sequence, commit points are in event order (non-decreasing), and
// each commit falls inside its operation's interval — after its
// invocation event and not after its response event.
func checkWitness(t *testing.T, dt spec.DataType, history []lincheck.Op, res Result) {
	t.Helper()
	if len(res.Points) != len(res.Linearization) {
		t.Fatalf("witness: %d points for %d instances", len(res.Points), len(res.Linearization))
	}
	if !spec.Legal(dt, res.Linearization) {
		t.Fatalf("witness linearization illegal: %s", spec.FormatSeq(res.Linearization))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i] < res.Points[i-1] {
			t.Fatalf("witness commit points not monotone: %v", res.Points)
		}
	}
	evs := eventSeq(history)
	completed := 0
	for _, op := range history {
		if !op.Pending() {
			completed++
		}
	}
	if len(res.Linearization) < completed {
		t.Fatalf("witness drops completed ops: %d instances < %d completed", len(res.Linearization), completed)
	}
	// Every response event must have its op committed no later than the
	// event: count commits at or before each response.
	for ei, ev := range evs {
		if ev.kind != evRespond {
			continue
		}
		found := false
		for li, in := range res.Linearization {
			if res.Points[li] <= ei && in.Op == history[ev.op].Name && spec.ValuesEqual(in.Ret, ev.ret) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("response of op %d at event %d has no committed instance before it", ev.op, ei)
		}
	}
}

// TestCheckStrongTreeQueueCounterexample is the classic example of a
// history family that is linearizable branch by branch but not strongly
// linearizable: an enqueue completes while a concurrent peek is pending,
// and the adversary forks the run so the peek returns the old front in
// one branch and the new element in the other. The shared prefix contains
// the completed enqueue — it must be committed there — so no single
// choice for the peek's linearization point satisfies both futures.
func TestCheckStrongTreeQueueCounterexample(t *testing.T) {
	q := adt.NewQueue()
	shared := []lincheck.Op{
		mkOp(0, 1, "enqueue", 5, nil, 0, 2),
	}
	sees := append(append([]lincheck.Op(nil), shared...),
		mkOp(1, 0, "peek", nil, 5, 1, 4))
	misses := append(append([]lincheck.Op(nil), shared...),
		mkOp(1, 0, "peek", nil, adt.EmptyMarker, 1, 4))

	for name, branch := range map[string][]lincheck.Op{"sees": sees, "misses": misses} {
		if !lincheck.Check(q, branch).Linearizable {
			t.Fatalf("branch %q must be linearizable on its own", name)
		}
		if !CheckStrong(q, branch).Strong {
			t.Fatalf("branch %q must pass the single-trace check on its own", name)
		}
	}

	tree := NewTree()
	tree.Add(sees)
	tree.Add(misses)
	if tree.Branches() != 2 || tree.Ops() != 2 {
		t.Fatalf("tree shape: branches=%d ops=%d, want 2 and 2", tree.Branches(), tree.Ops())
	}
	res := CheckStrongTree(q, tree)
	if res.Strong {
		t.Fatalf("fork of peek returns must not be strongly linearizable")
	}
}

// TestCheckStrongTreePositives: forks that remain strongly linearizable —
// branches that diverge only in which op is invoked next, or in response
// *times* with identical returns, impose no conflicting commits.
func TestCheckStrongTreePositives(t *testing.T) {
	q := adt.NewQueue()
	t.Run("diverging-invocations", func(t *testing.T) {
		shared := mkOp(0, 0, "enqueue", 1, nil, 0, 1)
		tree := NewTree()
		tree.Add([]lincheck.Op{shared, mkOp(1, 1, "dequeue", nil, 1, 2, 3)})
		tree.Add([]lincheck.Op{shared, mkOp(1, 1, "peek", nil, 1, 2, 3)})
		if res := tree.Check(q); !res.Strong {
			t.Fatalf("fork on next invocation must stay strong")
		}
	})
	t.Run("diverging-response-times-same-ret", func(t *testing.T) {
		shared := mkOp(0, 0, "enqueue", 1, nil, 0, 1)
		tree := NewTree()
		tree.Add([]lincheck.Op{shared, mkOp(1, 1, "peek", nil, 1, 2, 3)})
		tree.Add([]lincheck.Op{shared, mkOp(1, 1, "peek", nil, 1, 2, 4)})
		if res := tree.Check(q); !res.Strong {
			t.Fatalf("fork on response time with equal returns must stay strong")
		}
	})
	t.Run("single-history-twice", func(t *testing.T) {
		tree := NewTree()
		h := []lincheck.Op{mkOp(0, 0, "enqueue", 1, nil, 0, 1)}
		tree.Add(h)
		tree.Add(h)
		if tree.Nodes() != 2 {
			t.Fatalf("identical histories must share all nodes, got %d", tree.Nodes())
		}
		if res := tree.Check(q); !res.Strong {
			t.Fatalf("duplicate history must stay strong")
		}
	})
}

// TestCheckStrongMatchesCheckOnCorpus replays every seed of the FuzzCheck
// corpus through both checkers: on a single trace the strong check must
// agree exactly with plain linearizability (CheckStrong ⇒ Check, and the
// converse holds because commit points can always realize a real-time
// respecting linearization).
func TestCheckStrongMatchesCheckOnCorpus(t *testing.T) {
	q := adt.NewQueue()
	dir := filepath.Join("..", "lincheck", "testdata", "fuzz", "FuzzCheck")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading FuzzCheck corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatalf("FuzzCheck corpus is empty")
	}
	for _, e := range entries {
		data, err := decodeCorpusFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		history := lincheck.DecodeFuzzHistory(data)
		strong := CheckStrong(q, history)
		plain := lincheck.Check(q, history)
		if strong.Strong != plain.Linearizable {
			t.Errorf("%s: CheckStrong = %v, Check = %v\nhistory: %+v", e.Name(), strong.Strong, plain.Linearizable, history)
		}
		if strong.Strong {
			checkWitness(t, q, history, strong)
		}
	}
}

// decodeCorpusFile parses a `go test fuzz v1` corpus entry holding one
// []byte value.
func decodeCorpusFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return nil, errMalformed(path)
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "[]byte(")
	body = strings.TrimSuffix(body, ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

type errMalformed string

func (e errMalformed) Error() string { return "malformed corpus file: " + string(e) }
