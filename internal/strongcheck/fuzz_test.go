package strongcheck

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/lincheck"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// refStrong is a brute-force reference for the single-trace strong check:
// it searches for a legal sequence of commit points directly. An order of
// operations (all completed ops, any subset of pending ones) is realizable
// iff commit times can be chosen non-decreasing with each inside its
// operation's interval — the greedy choice c_i = max(c_{i-1}, invoke_i)
// is optimal, so the recursion just carries the running commit time. This
// enforces real-time order purely through the stabbing constraint, with
// none of the production checker's event sweep, memoization, or pruning.
func refStrong(dt spec.DataType, history []lincheck.Op) bool {
	taken := make([]bool, len(history))
	completed := 0
	for _, op := range history {
		if !op.Pending() {
			completed++
		}
	}
	var rec func(st spec.State, last simtime.Time, left int) bool
	rec = func(st spec.State, last simtime.Time, left int) bool {
		if left == 0 {
			return true // remaining pending ops are dropped
		}
		for i, t := range taken {
			if t {
				continue
			}
			op := history[i]
			commit := last
			if op.Invoke > commit {
				commit = op.Invoke
			}
			if commit > op.Respond {
				continue // interval already closed before the running point
			}
			ret, next := st.Apply(op.Name, op.Arg)
			if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
				continue
			}
			l := left
			if !op.Pending() {
				l--
			}
			taken[i] = true
			if rec(next, commit, l) {
				taken[i] = false
				return true
			}
			taken[i] = false
		}
		return false
	}
	return rec(dt.Initial(), 0, completed)
}

// FuzzCheckStrong cross-checks the production strong checker against the
// brute-force commit-point reference on randomly generated histories,
// using the same encoding as lincheck's FuzzCheck corpus.
func FuzzCheckStrong(f *testing.F) {
	// An overlap resolvable either way, an illegal return, a pending
	// enqueue observed by a dequeue, a real-time violation, and
	// zero-duration ops with touching intervals.
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 10})
	f.Add([]byte{0, 2, 0, 1, 2, 0, 5, 3})
	f.Add([]byte{0, 3, 0, 7, 1, 0, 8, 12})
	f.Add([]byte{2, 0, 0, 1, 0, 1, 4, 2, 1, 0, 9, 14})
	f.Add([]byte{0, 1, 2, 0, 1, 0, 2, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		dt := adt.NewQueue()
		history := lincheck.DecodeFuzzHistory(data)
		want := refStrong(dt, history)
		res := CheckStrong(dt, history)
		if res.Strong != want {
			t.Fatalf("CheckStrong = %v, reference = %v\nhistory: %+v", res.Strong, want, history)
		}
		if plain := lincheck.Check(dt, history); res.Strong != plain.Linearizable {
			t.Fatalf("CheckStrong = %v, Check = %v: single-trace verdicts must agree\nhistory: %+v", res.Strong, plain.Linearizable, history)
		}
	})
}
