// Package bounds evaluates the paper's closed-form upper and lower bounds
// (Tables 1-5) for concrete model parameters and derives per-operation
// bounds from the computed classification of a data type.
//
// Two upper-bound columns are carried everywhere: the paper's claimed
// bounds (pure accessors in d-X) and this implementation's corrected
// bounds (pure accessors in d-X+ε; see internal/core's Timers doc comment
// for the counterexample to the paper's accessor wait).
package bounds

import (
	"fmt"

	"lintime/internal/classify"
	"lintime/internal/simtime"
)

// Bound is a formula with its value under specific parameters.
type Bound struct {
	Expr   string // human-readable formula, "—" when absent
	Value  simtime.Duration
	Source string // theorem or citation
}

// None is the absent bound.
func None() Bound { return Bound{Expr: "—", Value: -1} }

// String renders the bound with its source.
func (b Bound) String() string {
	if b.Expr == "—" {
		return "—"
	}
	if b.Source == "" {
		return fmt.Sprintf("%s = %v", b.Expr, b.Value)
	}
	return fmt.Sprintf("%s = %v (%s)", b.Expr, b.Value, b.Source)
}

// Defined reports whether the bound exists.
func (b Bound) Defined() bool { return b.Expr != "—" }

// The building blocks, evaluated for parameters p.

// QuarterU is the pure-accessor lower bound u/4 (Theorem 2).
func QuarterU(p simtime.Params) Bound {
	return Bound{Expr: "u/4", Value: p.U / 4, Source: "Thm 2"}
}

// HalfU is the classic two-instance mutator bound u/2 ([3], [13]).
func HalfU(p simtime.Params, source string) Bound {
	return Bound{Expr: "u/2", Value: p.U / 2, Source: source}
}

// LastSensitive is the k-instance mutator bound (1-1/k)u (Theorem 3).
func LastSensitive(p simtime.Params, k int) Bound {
	kd := simtime.Duration(k)
	return Bound{Expr: fmt.Sprintf("(1-1/%d)u", k), Value: p.U - p.U/kd, Source: "Thm 3"}
}

// PairFree is the mixed-operation bound d+min{ε,u,d/3} (Theorem 4).
func PairFree(p simtime.Params) Bound {
	m := simtime.Min(p.Epsilon, simtime.Min(p.U, p.D/3))
	return Bound{Expr: "d+min{ε,u,d/3}", Value: p.D + m, Source: "Thm 4"}
}

// SumDiscriminated is the mutator+accessor sum bound d+min{ε,u,d/3}
// (Theorem 5).
func SumDiscriminated(p simtime.Params) Bound {
	b := PairFree(p)
	b.Source = "Thm 5"
	return b
}

// JustD is the classic interference bound d ([13], [15]).
func JustD(p simtime.Params, source string) Bound {
	return Bound{Expr: "d", Value: p.D, Source: source}
}

// Upper bounds of Algorithm 1 (Section 5 / Lemma 4). The per-operation
// optimum chooses X per row, as the paper's tables do: X=0 makes pure
// mutators cost ε; X=d-ε makes the paper's pure accessors cost ε.

// UpperMOP is the pure-mutator upper bound X+ε.
func UpperMOP(p simtime.Params) Bound {
	return Bound{Expr: "X+ε", Value: p.X + p.Epsilon, Source: "Alg 1"}
}

// UpperMOPBest is the pure-mutator bound at the optimal X=0.
func UpperMOPBest(p simtime.Params) Bound {
	return Bound{Expr: "ε (X=0)", Value: p.Epsilon, Source: "Alg 1"}
}

// UpperAOPPaper is the paper's claimed pure-accessor bound d-X.
func UpperAOPPaper(p simtime.Params) Bound {
	return Bound{Expr: "d-X", Value: p.D - p.X, Source: "Alg 1 (paper)"}
}

// UpperAOP is this implementation's corrected pure-accessor bound d-X+ε.
func UpperAOP(p simtime.Params) Bound {
	return Bound{Expr: "d-X+ε", Value: p.D - p.X + p.Epsilon, Source: "Alg 1 (corrected)"}
}

// UpperAOPBestPaper is the paper's accessor bound at X=d-ε.
func UpperAOPBestPaper(p simtime.Params) Bound {
	return Bound{Expr: "ε (X=d-ε)", Value: p.Epsilon, Source: "Alg 1 (paper)"}
}

// UpperAOPBest is the corrected accessor bound at X=d-ε.
func UpperAOPBest(p simtime.Params) Bound {
	return Bound{Expr: "2ε (X=d-ε)", Value: 2 * p.Epsilon, Source: "Alg 1 (corrected)"}
}

// UpperOOP is the mixed-operation bound d+ε.
func UpperOOP(p simtime.Params) Bound {
	return Bound{Expr: "d+ε", Value: p.D + p.Epsilon, Source: "Alg 1"}
}

// UpperSumPaper is the paper's accessor+mutator sum bound d+ε.
func UpperSumPaper(p simtime.Params) Bound {
	return Bound{Expr: "d+ε", Value: p.D + p.Epsilon, Source: "Alg 1 (paper)"}
}

// UpperSum is the corrected accessor+mutator sum bound d+2ε.
func UpperSum(p simtime.Params) Bound {
	return Bound{Expr: "d+2ε", Value: p.D + 2*p.Epsilon, Source: "Alg 1 (corrected)"}
}

// Folklore is the baseline bound 2d.
func Folklore(p simtime.Params) Bound {
	return Bound{Expr: "2d", Value: 2 * p.D, Source: "folklore"}
}

// FromClassification derives the lower bound for one operation from its
// computed algebraic properties, applying the strongest applicable
// theorem:
//
//	pair-free                  → d + min{ε,u,d/3}   (Theorem 4)
//	last-sensitive, k wit.     → (1-1/k)u           (Theorem 3)
//	pure accessor              → u/4                (Theorem 2)
//
// kCap (usually n) caps the k used for Theorem 3 when the witness search
// found at least that many instances; analytically, operations with
// unbounded instance sets (writes, enqueues, pushes) are (1-1/n)u.
func FromClassification(p simtime.Params, rep classify.OpReport, kCap int) Bound {
	if rep.PairFree {
		return PairFree(p)
	}
	if rep.LastSensitiveK >= 2 {
		k := rep.LastSensitiveK
		if k >= classify.MaxKSearched && kCap > k {
			// The search is capped; data types with unbounded distinct
			// instances extend to any k ≤ n.
			k = kCap
		}
		return LastSensitive(p, k)
	}
	if rep.Class == classify.PureAccessor {
		return QuarterU(p)
	}
	return None()
}

// UpperFromClass gives Algorithm 1's (corrected) upper bound for an
// operation class at the configured X.
func UpperFromClass(p simtime.Params, class classify.Class) Bound {
	switch class {
	case classify.PureAccessor:
		return UpperAOP(p)
	case classify.PureMutator:
		return UpperMOP(p)
	default:
		return UpperOOP(p)
	}
}

// UpperFromClassPaper gives the paper's claimed upper bound for a class.
func UpperFromClassPaper(p simtime.Params, class classify.Class) Bound {
	switch class {
	case classify.PureAccessor:
		return UpperAOPPaper(p)
	case classify.PureMutator:
		return UpperMOP(p)
	default:
		return UpperOOP(p)
	}
}

// GenericRow is a computed per-operation bounds row.
type GenericRow struct {
	Op         string
	Class      classify.Class
	Lower      Bound
	Upper      Bound
	PaperUpper Bound
}

// GenericTable derives the full bounds table of a data type from its
// classification report.
func GenericTable(p simtime.Params, rep classify.Report) []GenericRow {
	rows := make([]GenericRow, 0, len(rep.Ops))
	for _, op := range rep.Ops {
		rows = append(rows, GenericRow{
			Op:         op.Op,
			Class:      op.Class,
			Lower:      FromClassification(p, op, p.N),
			Upper:      UpperFromClass(p, op.Class),
			PaperUpper: UpperFromClassPaper(p, op.Class),
		})
	}
	return rows
}
