package bounds

import (
	"fmt"
	"strings"

	"lintime/internal/simtime"
)

// Row is one line of a paper table: an operation (or sum of operations)
// with its previously known lower bound, the paper's new lower bound, the
// paper's claimed upper bound, and this implementation's corrected upper
// bound.
type Row struct {
	Operation  string
	PrevLower  Bound
	NewLower   Bound
	PaperUpper Bound
	Upper      Bound
	Note       string
}

// Table is one of the paper's evaluation tables, evaluated for concrete
// parameters.
type Table struct {
	Number int
	Title  string
	Params simtime.Params
	Rows   []Row
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: %s  (n=%d d=%v u=%v ε=%v X=%v)\n",
		t.Number, t.Title, t.Params.N, t.Params.D, t.Params.U, t.Params.Epsilon, t.Params.X)
	fmt.Fprintf(&b, "  %-16s | %-22s | %-30s | %-26s | %-26s\n",
		"operation", "previous lower", "new lower", "paper upper", "our upper")
	fmt.Fprintf(&b, "  %s\n", strings.Repeat("-", 130))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-16s | %-22s | %-30s | %-26s | %-26s\n",
			r.Operation, r.PrevLower, r.NewLower, r.PaperUpper, r.Upper)
		if r.Note != "" {
			fmt.Fprintf(&b, "  %-16s   note: %s\n", "", r.Note)
		}
	}
	return b.String()
}

// Table1 is the paper's Table 1: read/write/read-modify-write registers.
func Table1(p simtime.Params) Table {
	return Table{
		Number: 1,
		Title:  "Operation Bounds for Read/Write/Read-Modify-Write Registers",
		Params: p,
		Rows: []Row{
			{
				Operation:  "rmw",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   PairFree(p),
				PaperUpper: UpperOOP(p),
				Upper:      UpperOOP(p),
			},
			{
				Operation:  "write",
				PrevLower:  HalfU(p, "[3]"),
				NewLower:   LastSensitive(p, p.N),
				PaperUpper: UpperMOPBest(p),
				Upper:      UpperMOPBest(p),
			},
			{
				Operation:  "read",
				PrevLower:  QuarterU(p), // [3]; Theorem 2 generalizes it
				NewLower:   None(),
				PaperUpper: UpperAOPBestPaper(p),
				Upper:      UpperAOPBest(p),
			},
			{
				Operation:  "write+read",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   None(),
				PaperUpper: UpperSumPaper(p),
				Upper:      UpperSum(p),
			},
		},
	}
}

// Table2 is the paper's Table 2: FIFO queues.
func Table2(p simtime.Params) Table {
	return Table{
		Number: 2,
		Title:  "Operation Bounds for Queues",
		Params: p,
		Rows: []Row{
			{
				Operation:  "enqueue",
				PrevLower:  HalfU(p, "[3]"),
				NewLower:   LastSensitive(p, p.N),
				PaperUpper: UpperMOPBest(p),
				Upper:      UpperMOPBest(p),
			},
			{
				Operation:  "dequeue",
				PrevLower:  JustD(p, "[3]"),
				NewLower:   PairFree(p),
				PaperUpper: UpperOOP(p),
				Upper:      UpperOOP(p),
			},
			{
				Operation:  "peek",
				PrevLower:  None(),
				NewLower:   QuarterU(p),
				PaperUpper: UpperAOPBestPaper(p),
				Upper:      UpperAOPBest(p),
			},
			{
				Operation:  "enqueue+peek",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   SumDiscriminated(p),
				PaperUpper: UpperSumPaper(p),
				Upper:      UpperSum(p),
			},
		},
	}
}

// Table3 is the paper's Table 3: stacks. Push+peek has no Theorem 5 bound
// because a stack's peek depends only on the last push (§4.3).
func Table3(p simtime.Params) Table {
	return Table{
		Number: 3,
		Title:  "Operation Bounds for Stacks",
		Params: p,
		Rows: []Row{
			{
				Operation:  "push",
				PrevLower:  HalfU(p, "[3]"),
				NewLower:   LastSensitive(p, p.N),
				PaperUpper: UpperMOPBest(p),
				Upper:      UpperMOPBest(p),
			},
			{
				Operation:  "pop",
				PrevLower:  JustD(p, "[3]"),
				NewLower:   PairFree(p),
				PaperUpper: UpperOOP(p),
				Upper:      UpperOOP(p),
			},
			{
				Operation:  "peek",
				PrevLower:  None(),
				NewLower:   QuarterU(p),
				PaperUpper: UpperAOPBestPaper(p),
				Upper:      UpperAOPBest(p),
			},
			{
				Operation:  "push+peek",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   None(),
				PaperUpper: UpperSumPaper(p),
				Upper:      UpperSum(p),
				Note:       "Theorem 5 inapplicable: a stack's peek depends only on the last push",
			},
		},
	}
}

// Table4 is the paper's Table 4: simple rooted trees. The paper does not
// pin down tree semantics; the notes record which of our two variants
// (move-insert "tree", first-wins "treefw") witnesses each bound.
func Table4(p simtime.Params) Table {
	return Table{
		Number: 4,
		Title:  "Operation Bounds for Simple Rooted Trees",
		Params: p,
		Rows: []Row{
			{
				Operation:  "insert",
				PrevLower:  HalfU(p, "[13]"),
				NewLower:   LastSensitive(p, p.N),
				PaperUpper: UpperMOPBest(p),
				Upper:      UpperMOPBest(p),
				Note:       "(1-1/n)u witnessed by move-insert semantics; first-wins gives u/2",
			},
			{
				Operation:  "delete",
				PrevLower:  HalfU(p, "[13]"),
				NewLower:   LastSensitive(p, 2),
				PaperUpper: UpperMOPBest(p),
				Upper:      UpperMOPBest(p),
				Note:       "paper claims (1-1/n)u; leaf-delete witnesses only k=2 (u/2) — see EXPERIMENTS.md",
			},
			{
				Operation:  "depth",
				PrevLower:  None(),
				NewLower:   QuarterU(p),
				PaperUpper: UpperAOPBestPaper(p),
				Upper:      UpperAOPBest(p),
			},
			{
				Operation:  "insert+depth",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   SumDiscriminated(p),
				PaperUpper: UpperSumPaper(p),
				Upper:      UpperSum(p),
				Note:       "Theorem 5 witnessed by first-wins insert; move-insert admits no discriminators",
			},
			{
				Operation:  "delete+depth",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   SumDiscriminated(p),
				PaperUpper: UpperSumPaper(p),
				Upper:      UpperSum(p),
				Note:       "paper claims Thm 5; leaf-delete admits no discriminators (deletes commute or block) — see EXPERIMENTS.md",
			},
		},
	}
}

// Table5 is the class-level summary of Section 6.
func Table5(p simtime.Params) Table {
	return Table{
		Number: 5,
		Title:  "Summary: Bounds by Operation Class",
		Params: p,
		Rows: []Row{
			{
				Operation:  "pure accessor",
				PrevLower:  None(),
				NewLower:   QuarterU(p),
				PaperUpper: UpperAOPPaper(p),
				Upper:      UpperAOP(p),
			},
			{
				Operation:  "last-sens. MOP",
				PrevLower:  HalfU(p, "[3]"),
				NewLower:   LastSensitive(p, p.N),
				PaperUpper: UpperMOP(p),
				Upper:      UpperMOP(p),
			},
			{
				Operation:  "pair-free op",
				PrevLower:  JustD(p, "[13]"),
				NewLower:   PairFree(p),
				PaperUpper: UpperOOP(p),
				Upper:      UpperOOP(p),
			},
			{
				Operation:  "MOP+AOP sum",
				PrevLower:  JustD(p, "[15]"),
				NewLower:   SumDiscriminated(p),
				PaperUpper: UpperSumPaper(p),
				Upper:      UpperSum(p),
			},
			{
				Operation:  "any op",
				PrevLower:  None(),
				NewLower:   None(),
				PaperUpper: UpperOOP(p),
				Upper:      UpperOOP(p),
				Note:       "folklore baselines need " + Folklore(p).String(),
			},
		},
	}
}

// AllTables evaluates Tables 1-5 for the given parameters.
func AllTables(p simtime.Params) []Table {
	return []Table{Table1(p), Table2(p), Table3(p), Table4(p), Table5(p)}
}
