package bounds

import (
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/simtime"
)

func tp() simtime.Params {
	return simtime.Params{N: 5, D: 300, U: 120, Epsilon: 96, X: 96}
}

func TestFormulaValues(t *testing.T) {
	p := tp()
	cases := []struct {
		name string
		b    Bound
		want simtime.Duration
	}{
		{"u/4", QuarterU(p), 30},
		{"u/2", HalfU(p, "x"), 60},
		{"(1-1/5)u", LastSensitive(p, 5), 96},
		{"(1-1/2)u", LastSensitive(p, 2), 60},
		{"d+min", PairFree(p), 396}, // min(96,120,100)=96
		{"sum lower", SumDiscriminated(p), 396},
		{"d", JustD(p, "x"), 300},
		{"X+ε", UpperMOP(p), 192},
		{"ε best", UpperMOPBest(p), 96},
		{"d-X paper", UpperAOPPaper(p), 204},
		{"d-X+ε ours", UpperAOP(p), 300},
		{"ε best paper", UpperAOPBestPaper(p), 96},
		{"2ε best ours", UpperAOPBest(p), 192},
		{"d+ε", UpperOOP(p), 396},
		{"d+ε sum paper", UpperSumPaper(p), 396},
		{"d+2ε sum ours", UpperSum(p), 492},
		{"2d folklore", Folklore(p), 600},
	}
	for _, c := range cases {
		if c.b.Value != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.b.Value, c.want)
		}
	}
}

func TestPairFreeMinSelection(t *testing.T) {
	p := tp()
	p.Epsilon = 500
	p.U = 90 // u < d/3 = 100 < ε: u is the min
	if got := PairFree(p); got.Value != 390 {
		t.Errorf("PairFree = %v, want d+u = 390", got.Value)
	}
	p.U = 300 // ε=500 > d/3=100 < u: d/3 is the min
	if got := PairFree(p); got.Value != 400 {
		t.Errorf("PairFree = %v, want d+d/3 = 400", got.Value)
	}
}

func TestBoundString(t *testing.T) {
	if None().String() != "—" {
		t.Error("None should render as —")
	}
	if None().Defined() {
		t.Error("None should not be defined")
	}
	b := QuarterU(tp())
	if !strings.Contains(b.String(), "Thm 2") {
		t.Errorf("bound string missing source: %q", b.String())
	}
	if !b.Defined() {
		t.Error("QuarterU should be defined")
	}
	noSource := Bound{Expr: "x", Value: 1}
	if strings.Contains(noSource.String(), "(") {
		t.Errorf("sourceless bound should omit parens: %q", noSource.String())
	}
}

func TestUpperBoundsConsistent(t *testing.T) {
	// Lower bounds must never exceed the corrected upper bounds for any
	// valid parameter combination — the sanity check that the paper's
	// results and our correction are mutually consistent.
	for _, n := range []int{2, 3, 5, 8} {
		for _, u := range []simtime.Duration{0, simtime.Quantum / 2, simtime.Quantum} {
			d := 2 * simtime.Quantum
			eps := simtime.OptimalEpsilon(n, u)
			for _, x := range []simtime.Duration{0, eps, d - eps} {
				p := simtime.Params{N: n, D: d, U: u, Epsilon: eps, X: x}
				if err := p.Validate(); err != nil {
					t.Fatalf("test params invalid: %v", err)
				}
				if lb, ub := QuarterU(p), UpperAOP(p); lb.Value > ub.Value {
					t.Errorf("n=%d u=%v X=%v: accessor LB %v > UB %v", n, u, x, lb.Value, ub.Value)
				}
				if lb, ub := LastSensitive(p, n), UpperMOP(p); lb.Value > ub.Value {
					t.Errorf("n=%d u=%v X=%v: mutator LB %v > UB %v", n, u, x, lb.Value, ub.Value)
				}
				if lb, ub := PairFree(p), UpperOOP(p); lb.Value > ub.Value {
					t.Errorf("n=%d u=%v X=%v: pair-free LB %v > UB %v", n, u, x, lb.Value, ub.Value)
				}
				if lb, ub := SumDiscriminated(p), UpperSum(p); lb.Value > ub.Value {
					t.Errorf("n=%d u=%v X=%v: sum LB %v > UB %v", n, u, x, lb.Value, ub.Value)
				}
			}
		}
	}
}

func TestPaperSumUpperMeetsLowerOnlyWithEpsilonMin(t *testing.T) {
	// §6: if ε ≤ min(u, d/3) the paper's pair-free bounds are tight:
	// d+ε = d+min{ε,u,d/3}.
	p := tp() // ε=96 < u=120 < d/3=100? ε=96 ≤ min(120,100) ✓
	if PairFree(p).Value != UpperOOP(p).Value {
		t.Errorf("pair-free bounds should be tight here: LB %v UB %v",
			PairFree(p).Value, UpperOOP(p).Value)
	}
}

func TestAllTablesRender(t *testing.T) {
	p := tp()
	tables := AllTables(p)
	if len(tables) != 5 {
		t.Fatalf("AllTables returned %d tables", len(tables))
	}
	for _, tab := range tables {
		s := tab.String()
		if s == "" {
			t.Errorf("table %d renders empty", tab.Number)
		}
		if !strings.Contains(s, "operation") {
			t.Errorf("table %d missing header", tab.Number)
		}
	}
	if len(tables[0].Rows) != 4 || len(tables[3].Rows) != 5 {
		t.Error("table row counts off")
	}
}

func TestTableRowsMatchPaperStructure(t *testing.T) {
	p := tp()
	t2 := Table2(p)
	wantOps := []string{"enqueue", "dequeue", "peek", "enqueue+peek"}
	for i, r := range t2.Rows {
		if r.Operation != wantOps[i] {
			t.Errorf("table 2 row %d = %s, want %s", i, r.Operation, wantOps[i])
		}
	}
	// Enqueue's new lower bound must be (1-1/n)u and beat the previous
	// u/2 for n > 2.
	if t2.Rows[0].NewLower.Value <= t2.Rows[0].PrevLower.Value {
		t.Error("new enqueue bound should improve on u/2")
	}
	// Dequeue: d+min > d.
	if t2.Rows[1].NewLower.Value <= t2.Rows[1].PrevLower.Value {
		t.Error("new dequeue bound should improve on d")
	}
	// Stack push+peek has no new lower bound (Theorem 5 inapplicable).
	t3 := Table3(p)
	if t3.Rows[3].NewLower.Defined() {
		t.Error("push+peek must have no Theorem 5 bound")
	}
}

func TestFromClassification(t *testing.T) {
	p := tp()
	cfg := classify.DefaultConfig()
	cases := []struct {
		typeName, op string
		wantExpr     string
	}{
		{"queue", "dequeue", "d+min{ε,u,d/3}"},
		{"queue", "enqueue", "(1-1/5)u"},
		{"queue", "peek", "u/4"},
		{"rmwregister", "rmw", "d+min{ε,u,d/3}"},
		{"register", "write", "(1-1/5)u"},
		{"set", "add", "—"}, // commutative: no bound applies
		{"maxregister", "writemax", "—"},
		{"dict", "put", "(1-1/2)u"}, // same-key puts: only k=2 witnessed
		{"tree", "delete", "(1-1/2)u"},
	}
	for _, c := range cases {
		dt, err := adt.Lookup(c.typeName)
		if err != nil {
			t.Fatal(err)
		}
		rep := classify.Classify(dt, cfg)
		opRep, ok := rep.Find(c.op)
		if !ok {
			t.Fatalf("%s.%s not classified", c.typeName, c.op)
		}
		got := FromClassification(p, opRep, p.N)
		if got.Expr != c.wantExpr {
			t.Errorf("%s.%s lower bound = %s, want %s", c.typeName, c.op, got.Expr, c.wantExpr)
		}
	}
}

func TestGenericTable(t *testing.T) {
	p := tp()
	dt, _ := adt.Lookup("queue")
	rep := classify.Classify(dt, classify.DefaultConfig())
	rows := GenericTable(p, rep)
	if len(rows) != 3 {
		t.Fatalf("queue generic table has %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Upper.Defined() {
			t.Errorf("%s has no upper bound", r.Op)
		}
		if r.Lower.Defined() && r.Lower.Value > r.Upper.Value {
			t.Errorf("%s: LB %v exceeds UB %v", r.Op, r.Lower.Value, r.Upper.Value)
		}
	}
}

func TestUpperFromClass(t *testing.T) {
	p := tp()
	if UpperFromClass(p, classify.PureAccessor).Value != p.D-p.X+p.Epsilon {
		t.Error("accessor upper wrong")
	}
	if UpperFromClass(p, classify.PureMutator).Value != p.X+p.Epsilon {
		t.Error("mutator upper wrong")
	}
	if UpperFromClass(p, classify.Mixed).Value != p.D+p.Epsilon {
		t.Error("mixed upper wrong")
	}
	if UpperFromClassPaper(p, classify.PureAccessor).Value != p.D-p.X {
		t.Error("paper accessor upper wrong")
	}
}
