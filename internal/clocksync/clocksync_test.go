package clocksync

import (
	"math/rand"
	"testing"

	"lintime/internal/sim"
	"lintime/internal/simtime"
)

func scParams(n int) simtime.Params {
	u := simtime.Quantum // divisible by 2n for all test n
	return simtime.Params{N: n, D: 2 * simtime.Quantum, U: u,
		Epsilon: simtime.OptimalEpsilon(n, u)}
}

func skewOf(offsets []simtime.Duration) simtime.Duration {
	return maxSkew(offsets)
}

func TestSyncUniformDelaysPerfect(t *testing.T) {
	// With all delays equal to the midpoint d-u/2 the estimates are exact
	// and the corrected clocks agree perfectly, regardless of initial
	// offsets.
	p := scParams(4)
	initial := []simtime.Duration{0, 5040, 2520, 7560}
	net := sim.UniformNetwork{D: p.D - p.U/2}
	out, err := Run(p, initial, net)
	if err != nil {
		t.Fatal(err)
	}
	if got := skewOf(out); got != 0 {
		t.Errorf("midpoint delays should synchronize exactly, skew = %v", got)
	}
}

func TestSyncAdversarialAchievesExactBound(t *testing.T) {
	// The Lundelius-Lynch worst case: all messages into p0 travel at
	// d-u (p0 overestimates every peer by u/2) and all messages into p1
	// at d (p1 underestimates every peer by u/2). The corrected skew
	// between p0 and p1 is then exactly (1-1/n)·u — the optimum is tight.
	for _, n := range []int{2, 3, 5, 8} {
		p := scParams(n)
		net := sim.NewPairwiseNetwork(n, p.D-p.U/2)
		for i := 0; i < n; i++ {
			if i != 0 {
				net.Set(sim.ProcID(i), 0, p.D-p.U)
			}
			if i != 1 {
				net.Set(sim.ProcID(i), 1, p.D)
			}
		}
		out, err := Run(p, sim.ZeroOffsets(n), net)
		if err != nil {
			t.Fatal(err)
		}
		want := Bound(p)
		if got := (out[0] - out[1]).Abs(); got != want {
			t.Errorf("n=%d: adversarial skew p0/p1 = %v, want exactly (1-1/n)u = %v", n, got, want)
		}
		if got := skewOf(out); got > want {
			t.Errorf("n=%d: overall skew %v exceeds the bound %v", n, got, want)
		}
	}
}

func TestSyncRandomConfigsWithinBound(t *testing.T) {
	// Random delays and arbitrary (large!) initial offsets: the corrected
	// skew never exceeds (1-1/n)u, up to ±2 ticks of integer averaging.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		p := scParams(n)
		initial := make([]simtime.Duration, n)
		for i := range initial {
			initial[i] = simtime.Duration(rng.Int63n(100 * int64(simtime.Quantum)))
		}
		net := sim.NewRandomNetwork(p.D, p.U, rng.Int63())
		out, err := Run(p, initial, net)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := skewOf(out), Bound(p)+2; got > want {
			t.Errorf("trial %d (n=%d): skew %v exceeds bound %v (initial skew %v)",
				trial, n, got, Bound(p), skewOf(initial))
		}
	}
}

func TestSyncImprovesLargeInitialSkew(t *testing.T) {
	p := scParams(3)
	initial := []simtime.Duration{0, 50 * simtime.Quantum, 100 * simtime.Quantum}
	out, err := Run(p, initial, sim.NewRandomNetwork(p.D, p.U, 4))
	if err != nil {
		t.Fatal(err)
	}
	if skewOf(out) >= skewOf(initial)/100 {
		t.Errorf("sync barely improved skew: %v → %v", skewOf(initial), skewOf(out))
	}
}

func TestSyncSingleInvocationSynchronizesAll(t *testing.T) {
	// Only p0 is invoked; hearing a reading triggers everyone else.
	p := scParams(5)
	out, err := Run(p, sim.SpreadOffsets(p.N, 3*simtime.Quantum), sim.UniformNetwork{D: p.D})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != p.N {
		t.Fatalf("got %d offsets", len(out))
	}
}

func TestSyncFeedsAlgorithmOne(t *testing.T) {
	// End-to-end: synchronize badly skewed clocks, then verify the
	// corrected offsets are admissible for the paper's ε so Algorithm 1
	// can be deployed on them.
	p := scParams(4)
	initial := []simtime.Duration{0, 30 * simtime.Quantum, 60 * simtime.Quantum, 10 * simtime.Quantum}
	corrected, err := Run(p, initial, sim.NewRandomNetwork(p.D, p.U, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Normalize (subtract min) — only pairwise skew matters.
	min := corrected[0]
	for _, c := range corrected {
		if c < min {
			min = c
		}
	}
	normalized := make([]simtime.Duration, len(corrected))
	for i := range corrected {
		normalized[i] = corrected[i] - min
	}
	withSlack := p
	withSlack.Epsilon = Bound(p) + 2 // integer-averaging slack
	if err := sim.ValidateOffsets(normalized, withSlack.Epsilon); err != nil {
		t.Errorf("corrected offsets not deployable: %v", err)
	}
}

func TestBound(t *testing.T) {
	p := scParams(5)
	if Bound(p) != p.U-p.U/5 {
		t.Errorf("Bound = %v", Bound(p))
	}
}
