// Package clocksync implements the clock synchronization substrate the
// paper assumes: §5 proceeds "under the assumption that some such
// algorithm has already synchronized the clocks in our system" to the
// optimal error ε = (1-1/n)·u of Lundelius & Lynch [16]. This package
// makes that assumption constructive.
//
// The algorithm is the classic averaging scheme. Every process broadcasts
// a reading of its local clock; a receiver that gets reading τ after a
// delay known only to lie in [d-u, d] estimates the sender's current
// clock as τ + d - u/2, an estimate with error at most u/2 in either
// direction. Each process then adjusts its clock to the average of the
// estimates of all n clocks (its own included, with error 0). Lundelius
// and Lynch proved the resulting skew is at most (1-1/n)·u and that no
// algorithm does better — which is exactly the ε the paper's Algorithm 1
// plugs into its timers.
//
// The implementation runs as a sim.Node phase: call Run to execute a
// synchronization round on an engine and obtain the corrected offsets,
// then build the object replicas with those offsets.
package clocksync

import (
	"fmt"

	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// reading is a broadcast clock sample.
type reading struct {
	Local simtime.Time // sender's local clock at send time
}

// Node is one process of the synchronization algorithm. After the round
// completes, Adjustment holds the correction to add to the local clock.
type Node struct {
	params simtime.Params

	sent      bool
	estimates []estimate // per-sender estimate of (their clock - my clock)
	received  int
	done      bool

	// Adjustment is the computed clock correction (valid once Done).
	Adjustment simtime.Duration
}

type estimate struct {
	have bool
	diff simtime.Duration // estimated (sender clock - local clock)
}

// NewNode builds one synchronization process.
func NewNode(p simtime.Params) *Node {
	return &Node{params: p, estimates: make([]estimate, p.N)}
}

// NewNodes builds n synchronization processes.
func NewNodes(p simtime.Params) []sim.Node {
	nodes := make([]sim.Node, p.N)
	for i := range nodes {
		nodes[i] = NewNode(p)
	}
	return nodes
}

// Done reports whether the node has computed its adjustment.
func (n *Node) Done() bool { return n.done }

// Init implements sim.Node.
func (n *Node) Init(ctx sim.Context) {}

// OnInvoke implements sim.Node: the "sync" invocation starts the round at
// this process and responds once all estimates are in.
func (n *Node) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	if inv.Op != "sync" {
		panic(fmt.Sprintf("clocksync: unexpected operation %q", inv.Op))
	}
	n.start(ctx)
	// Respond when the round completes; poll via a timer tagged with the
	// invocation (the round is bounded by d, so d+1 always suffices).
	ctx.SetTimer(n.params.D+1, inv.SeqID)
}

// start broadcasts this process's clock reading once.
func (n *Node) start(ctx sim.Context) {
	if n.sent {
		return
	}
	n.sent = true
	// Estimate of our own clock: exact.
	n.estimates[ctx.ID()] = estimate{have: true, diff: 0}
	n.received++
	ctx.Broadcast(reading{Local: ctx.LocalTime()})
	n.maybeFinish(ctx)
}

// OnMessage implements sim.Node: fold in the sender's estimated offset.
func (n *Node) OnMessage(ctx sim.Context, from sim.ProcID, payload any) {
	msg, ok := payload.(reading)
	if !ok {
		panic(fmt.Sprintf("clocksync: unexpected message %T", payload))
	}
	// The message is between d-u and d old; the midpoint estimator puts
	// the sender's current clock at msg.Local + d - u/2, off by ≤ u/2.
	if !n.estimates[from].have {
		senderNow := msg.Local.Add(n.params.D - n.params.U/2)
		n.estimates[from] = estimate{have: true, diff: senderNow.Sub(ctx.LocalTime())}
		n.received++
	}
	// Hearing from a peer also triggers our own broadcast (so a single
	// invocation anywhere synchronizes everyone).
	n.start(ctx)
	n.maybeFinish(ctx)
}

// OnTimer implements sim.Node: respond to the original invocation.
func (n *Node) OnTimer(ctx sim.Context, tag any) {
	ctx.Respond(tag.(int64), int64(n.Adjustment))
}

// maybeFinish computes the adjustment once all estimates arrived: the
// average estimated difference to every clock (including our own zero).
func (n *Node) maybeFinish(sim.Context) {
	if n.done || n.received < n.params.N {
		return
	}
	var sum simtime.Duration
	for _, e := range n.estimates {
		sum += e.diff
	}
	n.Adjustment = sum / simtime.Duration(n.params.N)
	n.done = true
}

// Run executes one synchronization round on a fresh engine with the given
// true offsets and network, and returns the corrected offsets
// (offset + adjustment per process). The corrected offsets are what the
// paper's Algorithm 1 should be deployed with: their pairwise skew is at
// most (1-1/n)·u regardless of the initial skew.
func Run(p simtime.Params, offsets []simtime.Duration, net sim.Network) ([]simtime.Duration, error) {
	// The sync round itself tolerates arbitrary initial skew; engine
	// validation is against p.Epsilon, so run it with a permissive bound.
	loose := p
	loose.Epsilon = maxSkew(offsets)
	if loose.Epsilon < p.Epsilon {
		loose.Epsilon = p.Epsilon
	}
	loose.X = 0
	nodes := NewNodes(loose)
	eng, err := sim.NewEngine(loose, offsets, net, nodes)
	if err != nil {
		return nil, err
	}
	eng.InvokeAt(0, 0, "sync", nil)
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		return nil, err
	}
	out := make([]simtime.Duration, p.N)
	for i, node := range nodes {
		sn := node.(*Node)
		if !sn.Done() {
			return nil, fmt.Errorf("clocksync: p%d did not finish the round", i)
		}
		out[i] = offsets[i] + sn.Adjustment
	}
	return out, nil
}

// maxSkew returns the maximum pairwise offset difference.
func maxSkew(offsets []simtime.Duration) simtime.Duration {
	var max simtime.Duration
	for i := range offsets {
		for j := range offsets {
			if s := (offsets[i] - offsets[j]).Abs(); s > max {
				max = s
			}
		}
	}
	return max
}

// Bound returns the optimal achievable skew (1-1/n)·u for the parameters.
func Bound(p simtime.Params) simtime.Duration {
	return simtime.OptimalEpsilon(p.N, p.U)
}
