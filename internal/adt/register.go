package adt

import (
	"fmt"

	"lintime/internal/spec"
)

// Register operation names.
const (
	OpRead  = "read"
	OpWrite = "write"
)

// Register is the classic read/write register over int values.
//
// Operations:
//
//	read(⊥, v)  — pure accessor; returns the current value.
//	write(v, ⊥) — pure mutator and overwriter; sets the value.
type Register struct {
	initial int
}

// NewRegister returns a register data type with the given initial value.
func NewRegister(initial int) *Register { return &Register{initial: initial} }

// Name implements spec.DataType.
func (r *Register) Name() string { return "register" }

// Ops implements spec.DataType.
func (r *Register) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpRead, Args: []spec.Value{nil}},
		{Name: OpWrite, Args: intArgs(4)},
	}
}

// Initial implements spec.DataType.
func (r *Register) Initial() spec.State { return registerState{value: r.initial} }

type registerState struct {
	value int
}

func (s registerState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpRead:
		return s.value, s
	case OpWrite:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		return nil, registerState{value: v}
	default:
		return errValue(op, arg), s
	}
}

func (s registerState) Fingerprint() string { return fmt.Sprintf("reg:%d", s.value) }

// errValue is the total-function response to a malformed invocation: the
// instance returns an error marker and leaves the state unchanged, so
// Completeness holds even for arguments outside the intended domain.
func errValue(op string, arg spec.Value) spec.Value {
	return fmt.Sprintf("error:%s(%s)", op, spec.FormatValue(arg))
}
