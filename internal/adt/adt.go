// Package adt provides concrete sequential data types implementing the
// spec.DataType interface: read/write registers, read-modify-write
// registers, FIFO queues, stacks, simple rooted trees (the four families
// whose bounds appear in Tables 1-4 of the paper) plus sets, counters,
// dictionaries, append-logs and max-registers used for additional
// classification and workload coverage.
//
// All states are immutable: Apply returns a fresh state and never mutates
// the receiver. Fingerprints are canonical, so spec.Equivalent is exact.
package adt

import (
	"fmt"
	"sort"

	"lintime/internal/spec"
)

// Registry returns all data types provided by this package, keyed by name.
func Registry() map[string]spec.DataType {
	types := []spec.DataType{
		NewRegister(0),
		NewRMWRegister(0),
		NewQueue(),
		NewStack(),
		NewTree(),
		NewTreeFW(),
		NewSet(),
		NewCounter(),
		NewDict(),
		NewLog(),
		NewMaxRegister(0),
		NewPQueue(),
		NewDeque(),
		NewBank(0),
	}
	m := make(map[string]spec.DataType, len(types))
	for _, dt := range types {
		m[dt.Name()] = dt
	}
	return m
}

// Names returns the registry keys in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the data type with the given name.
func Lookup(name string) (spec.DataType, error) {
	dt, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("adt: unknown data type %q (have %v)", name, Names())
	}
	return dt, nil
}

// intArgs returns the sample arguments 0..n-1 as Values.
func intArgs(n int) []spec.Value {
	args := make([]spec.Value, n)
	for i := range args {
		args[i] = i
	}
	return args
}

// copyInts clones an int slice.
func copyInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}
