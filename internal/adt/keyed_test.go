package adt

import (
	"testing"

	"lintime/internal/spec"
)

func TestKeyedIndependentObjects(t *testing.T) {
	k := NewKeyed(NewQueue())
	s := k.Initial()
	apply := func(op, key string, arg spec.Value) spec.Value {
		t.Helper()
		ka, err := KeyArg(key, arg)
		if err != nil {
			t.Fatalf("KeyArg(%q, %v): %v", key, arg, err)
		}
		var ret spec.Value
		ret, s = s.Apply(op, ka)
		return ret
	}
	apply(OpEnqueue, "a", 1)
	apply(OpEnqueue, "b", 2)
	apply(OpEnqueue, "a", 3)
	if got := apply(OpPeek, "a", nil); !spec.ValuesEqual(got, 1) {
		t.Errorf("peek(a) = %v, want 1", got)
	}
	if got := apply(OpDequeue, "b", nil); !spec.ValuesEqual(got, 2) {
		t.Errorf("dequeue(b) = %v, want 2", got)
	}
	if got := apply(OpDequeue, "b", nil); !spec.ValuesEqual(got, EmptyMarker) {
		t.Errorf("dequeue(b) on drained object = %v, want empty", got)
	}
	if got := apply(OpDequeue, "a", nil); !spec.ValuesEqual(got, 1) {
		t.Errorf("dequeue(a) = %v, want 1", got)
	}
	if got := apply(OpDequeue, "a", nil); !spec.ValuesEqual(got, 3) {
		t.Errorf("dequeue(a) = %v, want 3", got)
	}
}

// TestKeyedFingerprintCanonical pins the canonicality contract: a key
// returned to (or only ever observed in) the base initial state must not
// appear in the fingerprint, so behaviorally equivalent states compare
// equal.
func TestKeyedFingerprintCanonical(t *testing.T) {
	k := NewKeyed(NewQueue())
	empty := k.Initial()

	_, touched := empty.Apply(OpPeek, "a") // accessor on an untouched key
	if got, want := touched.Fingerprint(), empty.Fingerprint(); got != want {
		t.Errorf("accessor-touched fingerprint %q != initial %q", got, want)
	}

	_, s := empty.Apply(OpEnqueue, KV{K: "a", V: 5})
	if s.Fingerprint() == empty.Fingerprint() {
		t.Error("enqueue(a,5) should change the fingerprint")
	}
	_, s = s.Apply(OpDequeue, "a")
	if got, want := s.Fingerprint(), empty.Fingerprint(); got != want {
		t.Errorf("drained-key fingerprint %q != initial %q", got, want)
	}

	// Distinct keys order-insensitively.
	_, ab := empty.Apply(OpEnqueue, KV{K: "a", V: 1})
	_, ab = ab.Apply(OpEnqueue, KV{K: "b", V: 2})
	_, ba := empty.Apply(OpEnqueue, KV{K: "b", V: 2})
	_, ba = ba.Apply(OpEnqueue, KV{K: "a", V: 1})
	if ab.Fingerprint() != ba.Fingerprint() {
		t.Errorf("cross-key commutation broken: %q vs %q", ab.Fingerprint(), ba.Fingerprint())
	}
}

func TestKeyedBadArgs(t *testing.T) {
	k := NewKeyed(NewQueue())
	s := k.Initial()
	if ret, next := s.Apply(OpEnqueue, 7); next.Fingerprint() != s.Fingerprint() {
		t.Errorf("un-keyed arg mutated state (ret %v)", ret)
	}
	if _, err := KeyArg("", nil); err == nil {
		t.Error("empty key should error")
	}
	if _, err := KeyArg("a", "str"); err == nil {
		t.Error("string base argument should error")
	}
}

func TestSplitKeyArgRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		key string
		arg spec.Value
	}{
		{"obj1", nil},
		{"obj2", 42},
	} {
		ka, err := KeyArg(tc.key, tc.arg)
		if err != nil {
			t.Fatal(err)
		}
		key, inner, ok := SplitKeyArg(ka)
		if !ok || key != tc.key || !spec.ValuesEqual(inner, tc.arg) {
			t.Errorf("round trip of (%q, %v) = (%q, %v, %v)", tc.key, tc.arg, key, inner, ok)
		}
	}
	if _, _, ok := SplitKeyArg(7); ok {
		t.Error("plain int is not a keyed argument")
	}
	if _, _, ok := SplitKeyArg(nil); ok {
		t.Error("nil is not a keyed argument")
	}
}

// TestKeyedLegalSequences replays a keyed sequence through the spec
// machinery end to end.
func TestKeyedLegalSequences(t *testing.T) {
	k := NewKeyed(NewStack())
	seq := []spec.Instance{
		{Op: OpPush, Arg: KV{K: "x", V: 1}, Ret: nil},
		{Op: OpPush, Arg: KV{K: "y", V: 2}, Ret: nil},
		{Op: OpPop, Arg: "x", Ret: 1},
		{Op: OpPop, Arg: "y", Ret: 2},
		{Op: OpPop, Arg: "x", Ret: EmptyMarker},
	}
	if !spec.Legal(k, seq) {
		t.Error("cross-key stack sequence should be legal")
	}
	bad := []spec.Instance{
		{Op: OpPush, Arg: KV{K: "x", V: 1}, Ret: nil},
		{Op: OpPop, Arg: "y", Ret: 1}, // wrong object
	}
	if spec.Legal(k, bad) {
		t.Error("pop from the wrong key should be illegal")
	}
}
