package adt

import (
	"testing"

	"lintime/internal/spec"
)

func TestTreeInitialRootOnly(t *testing.T) {
	s := NewTree().Initial()
	apply(t, s, OpDepth, 0, 0)
	apply(t, s, OpDepth, 1, AbsentMarker)
}

func TestTreeInsertAndDepth(t *testing.T) {
	s := NewTree().Initial()
	s = apply(t, s, OpInsert, Edge{P: 0, C: 1}, nil)
	s = apply(t, s, OpInsert, Edge{P: 1, C: 2}, nil)
	s = apply(t, s, OpDepth, 1, 1)
	s = apply(t, s, OpDepth, 2, 2)
	apply(t, s, OpDepth, 3, AbsentMarker)
}

func TestTreeInsertMissingParentNoOp(t *testing.T) {
	s := NewTree().Initial()
	before := s.Fingerprint()
	_, next := s.Apply(OpInsert, Edge{P: 5, C: 6})
	if next.Fingerprint() != before {
		t.Error("insert under absent parent should be a no-op")
	}
}

func TestTreeInsertRootAsChildNoOp(t *testing.T) {
	s := NewTree().Initial()
	_, s = s.Apply(OpInsert, Edge{P: 0, C: 1})
	before := s.Fingerprint()
	_, next := s.Apply(OpInsert, Edge{P: 1, C: 0})
	if next.Fingerprint() != before {
		t.Error("the root cannot be re-parented")
	}
}

func TestTreeInsertMoveSemantics(t *testing.T) {
	// insert of an existing node moves it (and its subtree).
	s := NewTree().Initial()
	s = apply(t, s, OpInsert, Edge{P: 0, C: 1}, nil)
	s = apply(t, s, OpInsert, Edge{P: 0, C: 2}, nil)
	s = apply(t, s, OpInsert, Edge{P: 1, C: 3}, nil)
	// Move node 1 (with child 3) under node 2.
	s = apply(t, s, OpInsert, Edge{P: 2, C: 1}, nil)
	s = apply(t, s, OpDepth, 1, 2)
	apply(t, s, OpDepth, 3, 3)
}

func TestTreeInsertCycleRejected(t *testing.T) {
	// Moving a node under its own descendant would create a cycle; no-op.
	s := NewTree().Initial()
	_, s = s.Apply(OpInsert, Edge{P: 0, C: 1})
	_, s = s.Apply(OpInsert, Edge{P: 1, C: 2})
	before := s.Fingerprint()
	_, next := s.Apply(OpInsert, Edge{P: 2, C: 1})
	if next.Fingerprint() != before {
		t.Error("cycle-creating insert should be a no-op")
	}
	// Self-loop is also a cycle.
	_, next = s.Apply(OpInsert, Edge{P: 1, C: 1})
	if next.Fingerprint() != before {
		t.Error("self-loop insert should be a no-op")
	}
}

func TestTreeInsertLastWinsParent(t *testing.T) {
	// The Theorem 3 witness: the last insert of a node determines its
	// parent, so insert is last-sensitive.
	dt := NewTree()
	rho := []spec.Instance{
		{Op: OpInsert, Arg: Edge{P: 0, C: 1}},
		{Op: OpInsert, Arg: Edge{P: 0, C: 2}},
	}
	a := append(append([]spec.Instance{}, rho...),
		spec.Instance{Op: OpInsert, Arg: Edge{P: 1, C: 3}},
		spec.Instance{Op: OpInsert, Arg: Edge{P: 2, C: 3}})
	b := append(append([]spec.Instance{}, rho...),
		spec.Instance{Op: OpInsert, Arg: Edge{P: 2, C: 3}},
		spec.Instance{Op: OpInsert, Arg: Edge{P: 1, C: 3}})
	if spec.Equivalent(dt, a, b) {
		t.Error("insert orders with different last should differ")
	}
	sa := spec.Replay(dt.Initial(), a)
	ra, _ := sa.Apply(OpDepth, 3)
	if !spec.ValuesEqual(ra, 2) {
		t.Errorf("depth(3) = %v, want 2", ra)
	}
}

func TestTreeDeleteLeafOnly(t *testing.T) {
	s := NewTree().Initial()
	_, s = s.Apply(OpInsert, Edge{P: 0, C: 1})
	_, s = s.Apply(OpInsert, Edge{P: 1, C: 2})
	// Node 1 has a child: delete is a no-op.
	before := s.Fingerprint()
	_, next := s.Apply(OpDelete, 1)
	if next.Fingerprint() != before {
		t.Error("deleting an internal node should be a no-op")
	}
	// Node 2 is a leaf: delete succeeds.
	s = apply(t, s, OpDelete, 2, nil)
	s = apply(t, s, OpDepth, 2, AbsentMarker)
	// Now node 1 is a leaf and can be deleted.
	s = apply(t, s, OpDelete, 1, nil)
	apply(t, s, OpDepth, 1, AbsentMarker)
}

func TestTreeDeleteRootNoOp(t *testing.T) {
	s := NewTree().Initial()
	before := s.Fingerprint()
	_, next := s.Apply(OpDelete, 0)
	if next.Fingerprint() != before {
		t.Error("root must not be deletable")
	}
}

func TestTreeDeleteOrderSensitive(t *testing.T) {
	// The order of two deletes on a chain matters: the u/2 last-sensitive
	// witness for delete (k = 2).
	dt := NewTree()
	rho := []spec.Instance{
		{Op: OpInsert, Arg: Edge{P: 0, C: 1}},
		{Op: OpInsert, Arg: Edge{P: 1, C: 2}},
	}
	d1 := spec.Instance{Op: OpDelete, Arg: 1}
	d2 := spec.Instance{Op: OpDelete, Arg: 2}
	a := append(append([]spec.Instance{}, rho...), d1, d2) // d1 no-op, removes 2
	b := append(append([]spec.Instance{}, rho...), d2, d1) // removes both
	if spec.Equivalent(dt, a, b) {
		t.Error("delete orders should not be equivalent")
	}
}

func TestTreeFingerprintCanonical(t *testing.T) {
	// Same final structure via different insertion orders.
	a := NewTree().Initial()
	_, a = a.Apply(OpInsert, Edge{P: 0, C: 1})
	_, a = a.Apply(OpInsert, Edge{P: 0, C: 2})
	b := NewTree().Initial()
	_, b = b.Apply(OpInsert, Edge{P: 0, C: 2})
	_, b = b.Apply(OpInsert, Edge{P: 0, C: 1})
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestTreeDepthDeepChain(t *testing.T) {
	s := NewTree().Initial()
	for i := 1; i <= 50; i++ {
		_, s = s.Apply(OpInsert, Edge{P: i - 1, C: i})
	}
	ret, _ := s.Apply(OpDepth, 50)
	if !spec.ValuesEqual(ret, 50) {
		t.Errorf("depth(50) = %v, want 50", ret)
	}
}
