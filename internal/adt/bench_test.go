package adt

import (
	"testing"

	"lintime/internal/spec"
)

// BenchmarkQueueApply measures the immutable-state Apply cost that
// dominates replica execution and linearizability checking.
func BenchmarkQueueApply(b *testing.B) {
	s := NewQueue().Initial()
	for i := 0; i < 64; i++ {
		_, s = s.Apply(OpEnqueue, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, next := s.Apply(OpEnqueue, i)
		_, next = next.Apply(OpDequeue, nil)
		_ = next
	}
}

// BenchmarkTreeApply measures the map-cloning tree state.
func BenchmarkTreeApply(b *testing.B) {
	s := NewTree().Initial()
	for i := 1; i <= 32; i++ {
		_, s = s.Apply(OpInsert, Edge{P: (i - 1) / 2, C: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, next := s.Apply(OpInsert, Edge{P: 0, C: 100})
		_ = next
	}
}

// BenchmarkFingerprint measures canonical fingerprinting, the memo key of
// the checker and the dedup key of the classifier.
func BenchmarkFingerprint(b *testing.B) {
	s := NewQueue().Initial()
	for i := 0; i < 64; i++ {
		_, s = s.Apply(OpEnqueue, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Fingerprint() == "" {
			b.Fatal("empty fingerprint")
		}
	}
}

// BenchmarkReplay measures full-history replay, the executor primitive.
func BenchmarkReplay(b *testing.B) {
	dt := NewStack()
	var seq []spec.Instance
	for i := 0; i < 100; i++ {
		seq = append(seq, spec.Instance{Op: OpPush, Arg: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Replay(dt.Initial(), seq)
	}
}
