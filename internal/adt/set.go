package adt

import (
	"fmt"
	"sort"
	"strings"

	"lintime/internal/spec"
)

// Set operation names.
const (
	OpAdd      = "add"
	OpRemove   = "remove"
	OpContains = "contains"
	OpSize     = "size"
)

// Set is a mathematical set of ints. Add and remove are commutative
// (idempotent) pure mutators — deliberately *not* last-sensitive, which
// exercises the negative side of the classify decision procedures and
// shows that the (1-1/k)u lower bound of Theorem 3 does not apply to every
// mutator.
//
// Operations:
//
//	add(v, ⊥)       — pure mutator, commutative.
//	remove(v, ⊥)    — pure mutator, commutative.
//	contains(v, b)  — pure accessor.
//	size(⊥, n)      — pure accessor.
type Set struct{}

// NewSet returns the int-set data type.
func NewSet() *Set { return &Set{} }

// Name implements spec.DataType.
func (s *Set) Name() string { return "set" }

// Ops implements spec.DataType.
func (s *Set) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpAdd, Args: intArgs(4)},
		{Name: OpRemove, Args: intArgs(4)},
		{Name: OpContains, Args: intArgs(4)},
		{Name: OpSize, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (s *Set) Initial() spec.State { return setState{members: map[int]bool{}} }

type setState struct {
	members map[int]bool
}

func (s setState) clone() setState {
	next := make(map[int]bool, len(s.members))
	for k := range s.members {
		next[k] = true
	}
	return setState{members: next}
}

func (s setState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpAdd:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		if s.members[v] {
			return nil, s
		}
		next := s.clone()
		next.members[v] = true
		return nil, next
	case OpRemove:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		if !s.members[v] {
			return nil, s
		}
		next := s.clone()
		delete(next.members, v)
		return nil, next
	case OpContains:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		return s.members[v], s
	case OpSize:
		return len(s.members), s
	default:
		return errValue(op, arg), s
	}
}

func (s setState) Fingerprint() string {
	vals := make([]int, 0, len(s.members))
	for v := range s.members {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "set:" + strings.Join(parts, ",")
}
