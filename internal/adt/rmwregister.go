package adt

import (
	"fmt"

	"lintime/internal/spec"
)

// OpRMW is the read-modify-write operation name.
const OpRMW = "rmw"

// RMWRegister is a register supporting read, write and an atomic
// read-modify-write. The RMW variant implemented is fetch-and-add: it
// returns the value held before the update and adds its argument. This is
// the canonical pair-free mixed operation from Table 1: two concurrent
// fetch-and-adds cannot both return the pre-state value, so rmw instances
// with the correct return value cannot follow one another.
//
// Operations:
//
//	read(⊥, v)   — pure accessor.
//	write(v, ⊥)  — pure mutator, overwriter.
//	rmw(δ, v)    — mixed (accessor+mutator), pair-free; returns the old
//	               value and adds δ.
type RMWRegister struct {
	initial int
}

// NewRMWRegister returns a read-modify-write register data type with the
// given initial value.
func NewRMWRegister(initial int) *RMWRegister { return &RMWRegister{initial: initial} }

// Name implements spec.DataType.
func (r *RMWRegister) Name() string { return "rmwregister" }

// Ops implements spec.DataType.
func (r *RMWRegister) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpRead, Args: []spec.Value{nil}},
		{Name: OpWrite, Args: intArgs(4)},
		{Name: OpRMW, Args: []spec.Value{1, 2, 3, 5}},
	}
}

// Initial implements spec.DataType.
func (r *RMWRegister) Initial() spec.State { return rmwState{value: r.initial} }

type rmwState struct {
	value int
}

func (s rmwState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpRead:
		return s.value, s
	case OpWrite:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		return nil, rmwState{value: v}
	case OpRMW:
		delta, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		return s.value, rmwState{value: s.value + delta}
	default:
		return errValue(op, arg), s
	}
}

func (s rmwState) Fingerprint() string { return fmt.Sprintf("rmw:%d", s.value) }
