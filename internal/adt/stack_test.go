package adt

import (
	"testing"
	"testing/quick"

	"lintime/internal/spec"
)

func TestStackEmptyBehavior(t *testing.T) {
	s := NewStack().Initial()
	apply(t, s, OpPop, nil, EmptyMarker)
	apply(t, s, OpPeek, nil, EmptyMarker)
}

func TestStackLIFOOrder(t *testing.T) {
	s := NewStack().Initial()
	s = apply(t, s, OpPush, 1, nil)
	s = apply(t, s, OpPush, 2, nil)
	s = apply(t, s, OpPush, 3, nil)
	s = apply(t, s, OpPeek, nil, 3)
	s = apply(t, s, OpPop, nil, 3)
	s = apply(t, s, OpPop, nil, 2)
	s = apply(t, s, OpPeek, nil, 1)
	s = apply(t, s, OpPop, nil, 1)
	apply(t, s, OpPop, nil, EmptyMarker)
}

func TestStackPopReversesPush(t *testing.T) {
	f := func(items []uint8) bool {
		s := NewStack().Initial()
		for _, v := range items {
			_, s = s.Apply(OpPush, int(v))
		}
		for i := len(items) - 1; i >= 0; i-- {
			ret, next := s.Apply(OpPop, nil)
			if !spec.ValuesEqual(ret, int(items[i])) {
				return false
			}
			s = next
		}
		ret, _ := s.Apply(OpPop, nil)
		return spec.ValuesEqual(ret, EmptyMarker)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStackSliceAliasing(t *testing.T) {
	// Pop shares the prefix slice; pushes from the popped state must not
	// corrupt sibling states.
	s0 := NewStack().Initial()
	_, s1 := s0.Apply(OpPush, 1)
	_, s2 := s1.Apply(OpPush, 2)
	_, s3 := s2.Apply(OpPop, nil) // s3 = [1]
	_, s4a := s3.Apply(OpPush, 7) // [1 7]
	_, s4b := s3.Apply(OpPush, 8) // must be [1 8]
	ra, _ := s4a.Apply(OpPeek, nil)
	rb, _ := s4b.Apply(OpPeek, nil)
	if !spec.ValuesEqual(ra, 7) || !spec.ValuesEqual(rb, 8) {
		t.Errorf("aliasing bug: tops %v and %v, want 7 and 8", ra, rb)
	}
	// The original s2 must also still pop 2.
	r2, _ := s2.Apply(OpPop, nil)
	if !spec.ValuesEqual(r2, 2) {
		t.Errorf("original state corrupted: pop = %v", r2)
	}
}

func TestStackPushLastSensitiveWitness(t *testing.T) {
	dt := NewStack()
	p1 := spec.Instance{Op: OpPush, Arg: 1}
	p2 := spec.Instance{Op: OpPush, Arg: 2}
	if spec.Equivalent(dt, []spec.Instance{p1, p2}, []spec.Instance{p2, p1}) {
		t.Error("push orders should not be equivalent")
	}
}

func TestStackPeekSoleDependenceOnTop(t *testing.T) {
	// §4.3 remarks that for stacks, peek depends only on the last push —
	// after pushing different prefixes but the same final element, peek
	// agrees.
	a := NewStack().Initial()
	_, a = a.Apply(OpPush, 1)
	_, a = a.Apply(OpPush, 9)
	b := NewStack().Initial()
	_, b = b.Apply(OpPush, 2)
	_, b = b.Apply(OpPush, 9)
	ra, _ := a.Apply(OpPeek, nil)
	rb, _ := b.Apply(OpPeek, nil)
	if !spec.ValuesEqual(ra, rb) {
		t.Errorf("peek differs: %v vs %v", ra, rb)
	}
}
