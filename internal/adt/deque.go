package adt

import (
	"fmt"
	"strings"

	"lintime/internal/spec"
)

// Deque operation names.
const (
	OpPushFront = "pushfront"
	OpPushBack  = "pushback"
	OpPopFront  = "popfront"
	OpPopBack   = "popback"
	OpFront     = "front"
	OpBack      = "back"
)

// Deque is a double-ended queue over int items. Both pushes are
// last-sensitive pure mutators, both pops are pair-free mixed operations,
// and both end accessors are pure accessors — six operations spanning all
// three of Algorithm 1's classes and both lower-bound families.
type Deque struct{}

// NewDeque returns the double-ended-queue data type.
func NewDeque() *Deque { return &Deque{} }

// Name implements spec.DataType.
func (d *Deque) Name() string { return "deque" }

// Ops implements spec.DataType.
func (d *Deque) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpPushFront, Args: intArgs(4)},
		{Name: OpPushBack, Args: intArgs(4)},
		{Name: OpPopFront, Args: []spec.Value{nil}},
		{Name: OpPopBack, Args: []spec.Value{nil}},
		{Name: OpFront, Args: []spec.Value{nil}},
		{Name: OpBack, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (d *Deque) Initial() spec.State { return dequeState{} }

type dequeState struct {
	items []int // front at index 0; never mutated in place
}

func (s dequeState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpPushFront, OpPushBack:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		next := make([]int, 0, len(s.items)+1)
		if op == OpPushFront {
			next = append(next, v)
			next = append(next, s.items...)
		} else {
			next = append(next, s.items...)
			next = append(next, v)
		}
		return nil, dequeState{items: next}
	case OpPopFront:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[0], dequeState{items: s.items[1:]}
	case OpPopBack:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[len(s.items)-1], dequeState{items: s.items[:len(s.items)-1]}
	case OpFront:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[0], s
	case OpBack:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[len(s.items)-1], s
	default:
		return errValue(op, arg), s
	}
}

func (s dequeState) Fingerprint() string {
	parts := make([]string, len(s.items))
	for i, v := range s.items {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "deque:" + strings.Join(parts, ",")
}
