package adt

import (
	"math/rand"
	"testing"

	"lintime/internal/spec"
)

func TestRegistryContainsAllTypes(t *testing.T) {
	want := []string{
		"register", "rmwregister", "queue", "stack", "tree", "treefw",
		"set", "counter", "dict", "log", "maxregister",
		"pqueue", "deque", "bank",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Errorf("registry has %d types, want %d", len(reg), len(want))
	}
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("registry missing %q", name)
		}
	}
}

func TestLookup(t *testing.T) {
	dt, err := Lookup("queue")
	if err != nil || dt.Name() != "queue" {
		t.Errorf("Lookup(queue) = %v, %v", dt, err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("Lookup(bogus) should error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

// randomSequence builds a random invocation sequence drawn from the
// declared op/arg samples of dt.
func randomSequence(dt spec.DataType, rng *rand.Rand, length int) []spec.Invocation {
	ops := dt.Ops()
	invs := make([]spec.Invocation, length)
	for i := range invs {
		op := ops[rng.Intn(len(ops))]
		invs[i] = spec.Invocation{Op: op.Name, Arg: op.Args[rng.Intn(len(op.Args))]}
	}
	return invs
}

// TestAllTypesDeterminism replays random invocation sequences twice and
// checks identical responses — the Determinism axiom.
func TestAllTypesDeterminism(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			for trial := 0; trial < 20; trial++ {
				invs := randomSequence(dt, rng, 15)
				a := spec.Complete(dt.Initial(), invs)
				b := spec.Complete(dt.Initial(), invs)
				for i := range a {
					if !spec.ValuesEqual(a[i].Ret, b[i].Ret) {
						t.Fatalf("nondeterministic return at %d: %v vs %v", i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestAllTypesCompleteness checks that completed sequences are legal — the
// Completeness axiom, including for arguments outside the sample domain.
func TestAllTypesCompleteness(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			for trial := 0; trial < 20; trial++ {
				invs := randomSequence(dt, rng, 12)
				seq := spec.Complete(dt.Initial(), invs)
				if !spec.Legal(dt, seq) {
					t.Fatalf("completed sequence not legal: %s", spec.FormatSeq(seq))
				}
			}
		})
	}
}

// TestAllTypesPrefixClosure checks the Prefix Closure axiom on random
// legal sequences.
func TestAllTypesPrefixClosure(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			seq := spec.Complete(dt.Initial(), randomSequence(dt, rng, 20))
			for i := 0; i <= len(seq); i++ {
				if !spec.Legal(dt, seq[:i]) {
					t.Fatalf("prefix of length %d illegal", i)
				}
			}
		})
	}
}

// TestAllTypesImmutability verifies that Apply never mutates the receiver
// state: applying an operation must not change the original state's
// fingerprint or the responses it gives.
func TestAllTypesImmutability(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4))
			for trial := 0; trial < 20; trial++ {
				s := spec.Replay(dt.Initial(), spec.Complete(dt.Initial(), randomSequence(dt, rng, 8)))
				before := s.Fingerprint()
				// Apply every sampled op/arg to s; s must be unaffected.
				for _, op := range dt.Ops() {
					for _, arg := range op.Args {
						s.Apply(op.Name, arg)
					}
				}
				if got := s.Fingerprint(); got != before {
					t.Fatalf("state mutated in place: %q -> %q", before, got)
				}
			}
		})
	}
}

// TestAllTypesFingerprintConsistency: equal fingerprints must imply equal
// responses to every sampled invocation (fingerprint soundness).
func TestAllTypesFingerprintConsistency(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			type entry struct {
				state spec.State
				fp    string
			}
			var states []entry
			for trial := 0; trial < 30; trial++ {
				s := spec.Replay(dt.Initial(), spec.Complete(dt.Initial(), randomSequence(dt, rng, 6)))
				states = append(states, entry{s, s.Fingerprint()})
			}
			for i := range states {
				for j := i + 1; j < len(states); j++ {
					if states[i].fp != states[j].fp {
						continue
					}
					for _, op := range dt.Ops() {
						for _, arg := range op.Args {
							ri, _ := states[i].state.Apply(op.Name, arg)
							rj, _ := states[j].state.Apply(op.Name, arg)
							if !spec.ValuesEqual(ri, rj) {
								t.Fatalf("states with equal fingerprint %q disagree on %s(%v): %v vs %v",
									states[i].fp, op.Name, arg, ri, rj)
							}
						}
					}
				}
			}
		})
	}
}

// TestAllTypesTotalOnBadArgs: Apply must be total even for nonsense
// arguments (Completeness as a total function).
func TestAllTypesTotalOnBadArgs(t *testing.T) {
	bad := []spec.Value{nil, "garbage", 3.14, []int{1}, struct{ X int }{5}}
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			s := dt.Initial()
			for _, op := range dt.Ops() {
				for _, arg := range bad {
					func() {
						defer func() {
							if r := recover(); r != nil {
								t.Errorf("Apply(%s, %v) panicked: %v", op.Name, arg, r)
							}
						}()
						_, next := s.Apply(op.Name, arg)
						if next == nil {
							t.Errorf("Apply(%s, %v) returned nil state", op.Name, arg)
						}
					}()
				}
			}
		})
	}
}

// TestAllTypesUnknownOp: unknown operation names must not panic and must
// leave the state unchanged.
func TestAllTypesUnknownOp(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			s := dt.Initial()
			before := s.Fingerprint()
			_, next := s.Apply("no-such-op", 7)
			if next.Fingerprint() != before {
				t.Error("unknown op changed state")
			}
		})
	}
}

// TestAllTypesVerifyAxioms runs the exported axiom verifier over every
// registered type — the same checker downstream users run on custom
// types.
func TestAllTypesVerifyAxioms(t *testing.T) {
	for name, dt := range Registry() {
		if err := spec.VerifyAxioms(dt, 11, 30); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestAllTypesArgSamplesNonEmpty: every declared operation needs at least
// one sample argument for the classifier to work with.
func TestAllTypesArgSamplesNonEmpty(t *testing.T) {
	for name, dt := range Registry() {
		t.Run(name, func(t *testing.T) {
			for _, op := range dt.Ops() {
				if len(op.Args) == 0 {
					t.Errorf("op %s has no sample args", op.Name)
				}
			}
		})
	}
}
