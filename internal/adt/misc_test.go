package adt

import (
	"testing"
	"testing/quick"

	"lintime/internal/spec"
)

func TestSetAddRemoveContains(t *testing.T) {
	s := NewSet().Initial()
	s = apply(t, s, OpContains, 1, false)
	s = apply(t, s, OpAdd, 1, nil)
	s = apply(t, s, OpContains, 1, true)
	s = apply(t, s, OpSize, nil, 1)
	s = apply(t, s, OpAdd, 1, nil) // idempotent
	s = apply(t, s, OpSize, nil, 1)
	s = apply(t, s, OpRemove, 1, nil)
	s = apply(t, s, OpContains, 1, false)
	apply(t, s, OpSize, nil, 0)
}

func TestSetAddCommutative(t *testing.T) {
	dt := NewSet()
	a1 := spec.Instance{Op: OpAdd, Arg: 1}
	a2 := spec.Instance{Op: OpAdd, Arg: 2}
	if !spec.Equivalent(dt, []spec.Instance{a1, a2}, []spec.Instance{a2, a1}) {
		t.Error("set adds should commute")
	}
}

func TestSetRemoveAbsentNoOp(t *testing.T) {
	s := NewSet().Initial()
	before := s.Fingerprint()
	_, next := s.Apply(OpRemove, 99)
	if next.Fingerprint() != before {
		t.Error("removing an absent element should be a no-op")
	}
}

func TestCounterIncRead(t *testing.T) {
	s := NewCounter().Initial()
	s = apply(t, s, OpReadCtr, nil, 0)
	s = apply(t, s, OpInc, nil, nil)
	s = apply(t, s, OpInc, nil, nil)
	s = apply(t, s, OpAddN, 5, nil)
	apply(t, s, OpReadCtr, nil, 7)
}

func TestCounterCommutative(t *testing.T) {
	dt := NewCounter()
	i := spec.Instance{Op: OpInc}
	a := spec.Instance{Op: OpAddN, Arg: 3}
	if !spec.Equivalent(dt, []spec.Instance{i, a}, []spec.Instance{a, i}) {
		t.Error("counter mutators should commute")
	}
}

func TestDictPutGetDel(t *testing.T) {
	s := NewDict().Initial()
	s = apply(t, s, OpGet, "a", nil)
	s = apply(t, s, OpPut, KV{K: "a", V: 1}, nil)
	s = apply(t, s, OpGet, "a", 1)
	s = apply(t, s, OpLenKey, nil, 1)
	s = apply(t, s, OpPut, KV{K: "a", V: 2}, nil)
	s = apply(t, s, OpGet, "a", 2)
	s = apply(t, s, OpDel, "a", nil)
	s = apply(t, s, OpGet, "a", nil)
	apply(t, s, OpLenKey, nil, 0)
}

func TestDictSwapReturnsPrevious(t *testing.T) {
	s := NewDict().Initial()
	s = apply(t, s, OpSwap, KV{K: "k", V: 1}, nil) // previously absent
	s = apply(t, s, OpSwap, KV{K: "k", V: 2}, 1)
	apply(t, s, OpGet, "k", 2)
}

func TestDictPutSameKeyLastWins(t *testing.T) {
	dt := NewDict()
	p1 := spec.Instance{Op: OpPut, Arg: KV{K: "a", V: 1}}
	p2 := spec.Instance{Op: OpPut, Arg: KV{K: "a", V: 2}}
	if spec.Equivalent(dt, []spec.Instance{p1, p2}, []spec.Instance{p2, p1}) {
		t.Error("puts to the same key should not commute")
	}
}

func TestDictPutDifferentKeysCommute(t *testing.T) {
	dt := NewDict()
	p1 := spec.Instance{Op: OpPut, Arg: KV{K: "a", V: 1}}
	p2 := spec.Instance{Op: OpPut, Arg: KV{K: "b", V: 2}}
	if !spec.Equivalent(dt, []spec.Instance{p1, p2}, []spec.Instance{p2, p1}) {
		t.Error("puts to different keys should commute")
	}
}

func TestLogAppendAtLen(t *testing.T) {
	s := NewLog().Initial()
	s = apply(t, s, OpLen, nil, 0)
	s = apply(t, s, OpLast, nil, AbsentMarker)
	s = apply(t, s, OpAt, 0, AbsentMarker)
	s = apply(t, s, OpAppend, 10, nil)
	s = apply(t, s, OpAppend, 20, nil)
	s = apply(t, s, OpLen, nil, 2)
	s = apply(t, s, OpAt, 0, 10)
	s = apply(t, s, OpAt, 1, 20)
	s = apply(t, s, OpAt, 2, AbsentMarker)
	s = apply(t, s, OpAt, -1, AbsentMarker)
	apply(t, s, OpLast, nil, 20)
}

func TestLogAppendOrderObservable(t *testing.T) {
	f := func(items []uint8) bool {
		s := NewLog().Initial()
		for _, v := range items {
			_, s = s.Apply(OpAppend, int(v))
		}
		for i, v := range items {
			ret, _ := s.Apply(OpAt, i)
			if !spec.ValuesEqual(ret, int(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxRegister(t *testing.T) {
	s := NewMaxRegister(0).Initial()
	s = apply(t, s, OpReadMax, nil, 0)
	s = apply(t, s, OpWriteMax, 5, nil)
	s = apply(t, s, OpReadMax, nil, 5)
	s = apply(t, s, OpWriteMax, 3, nil) // smaller: ignored
	s = apply(t, s, OpReadMax, nil, 5)
	s = apply(t, s, OpWriteMax, 9, nil)
	apply(t, s, OpReadMax, nil, 9)
}

func TestMaxRegisterWritesCommute(t *testing.T) {
	dt := NewMaxRegister(0)
	w1 := spec.Instance{Op: OpWriteMax, Arg: 3}
	w2 := spec.Instance{Op: OpWriteMax, Arg: 7}
	if !spec.Equivalent(dt, []spec.Instance{w1, w2}, []spec.Instance{w2, w1}) {
		t.Error("writemax should commute")
	}
}

func TestMaxRegisterIdempotent(t *testing.T) {
	f := func(vals []int8) bool {
		s := NewMaxRegister(0).Initial()
		max := 0
		for _, v := range vals {
			_, s = s.Apply(OpWriteMax, int(v))
			if int(v) > max {
				max = int(v)
			}
		}
		ret, _ := s.Apply(OpReadMax, nil)
		return spec.ValuesEqual(ret, max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
