package adt

import "lintime/internal/spec"

// TreeFW is the rooted tree with *first-wins* insert semantics: inserting
// a node that already exists is a no-op, so the first insert of a node
// fixes its parent forever (until the node is deleted).
//
// The paper's Table 4 needs two properties of tree operations that no
// single natural insert semantics provides simultaneously:
//
//   - Theorem 3 (Insert ≥ (1-1/k)u) needs insert to be last-sensitive for
//     large k, which the move-insert Tree provides ("last insert of a node
//     determines its parent").
//   - Theorem 5 (Insert+Depth ≥ d+min{ε,u,d/3}) needs depth to
//     discriminate ρ.insert₀ from ρ.insert₁.insert₀, which requires the
//     *earlier* insert to win — this variant.
//
// Under first-wins semantics insert is still last-sensitive with k = 2
// (two inserts of the same node under different parents do not commute),
// giving the u/2 bound. See EXPERIMENTS.md for the full discussion.
type TreeFW struct{}

// NewTreeFW returns the first-wins rooted tree data type.
func NewTreeFW() *TreeFW { return &TreeFW{} }

// Name implements spec.DataType.
func (t *TreeFW) Name() string { return "treefw" }

// Ops implements spec.DataType.
func (t *TreeFW) Ops() []spec.OpInfo { return treeOps() }

// Initial implements spec.DataType.
func (t *TreeFW) Initial() spec.State { return treeFWState{treeState{parent: map[int]int{}}} }

// treeFWState wraps treeState, overriding insert to be first-wins.
type treeFWState struct {
	treeState
}

func (s treeFWState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	if op == OpInsert {
		e, ok := arg.(Edge)
		if !ok {
			return errValue(op, arg), s
		}
		if s.has(e.C) || !s.has(e.P) {
			return nil, s // first insert wins; later inserts are no-ops
		}
		next := s.clone()
		next.parent[e.C] = e.P
		return nil, treeFWState{next}
	}
	ret, inner := s.treeState.Apply(op, arg)
	return ret, treeFWState{inner.(treeState)}
}

func (s treeFWState) Fingerprint() string { return "fw" + s.treeState.Fingerprint() }
