package adt

import (
	"fmt"
	"sort"
	"strings"

	"lintime/internal/spec"
)

// Dict operation names.
const (
	OpPut    = "put"
	OpGet    = "get"
	OpDel    = "del"
	OpSwap   = "swap"
	OpLenKey = "len"
)

// KV is the argument of put and swap: key k, value v.
type KV struct {
	K string
	V int
}

// Dict is a string→int dictionary. Put is a per-key overwriting pure
// mutator (last-sensitive among puts to the same key); swap is a mixed
// pair-free-style operation returning the previous binding; get/len are
// pure accessors.
//
// Operations:
//
//	put({k,v}, ⊥)  — pure mutator.
//	del(k, ⊥)      — pure mutator.
//	get(k, v|⊥)    — pure accessor; returns the binding or nil.
//	swap({k,v}, v') — mixed; sets k to v and returns the previous binding
//	                  (or nil if the key was absent).
//	len(⊥, n)      — pure accessor.
type Dict struct{}

// NewDict returns the dictionary data type.
func NewDict() *Dict { return &Dict{} }

// Name implements spec.DataType.
func (d *Dict) Name() string { return "dict" }

// Ops implements spec.DataType.
func (d *Dict) Ops() []spec.OpInfo {
	keys := []string{"a", "b"}
	var puts, swaps []spec.Value
	for _, k := range keys {
		for v := 0; v < 2; v++ {
			puts = append(puts, KV{K: k, V: v})
			swaps = append(swaps, KV{K: k, V: v})
		}
	}
	gets := []spec.Value{"a", "b"}
	return []spec.OpInfo{
		{Name: OpPut, Args: puts},
		{Name: OpDel, Args: gets},
		{Name: OpGet, Args: gets},
		{Name: OpSwap, Args: swaps},
		{Name: OpLenKey, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (d *Dict) Initial() spec.State { return dictState{bindings: map[string]int{}} }

type dictState struct {
	bindings map[string]int
}

func (s dictState) clone() dictState {
	next := make(map[string]int, len(s.bindings))
	for k, v := range s.bindings {
		next[k] = v
	}
	return dictState{bindings: next}
}

func (s dictState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpPut:
		kv, ok := arg.(KV)
		if !ok {
			return errValue(op, arg), s
		}
		next := s.clone()
		next.bindings[kv.K] = kv.V
		return nil, next
	case OpDel:
		k, ok := arg.(string)
		if !ok {
			return errValue(op, arg), s
		}
		if _, present := s.bindings[k]; !present {
			return nil, s
		}
		next := s.clone()
		delete(next.bindings, k)
		return nil, next
	case OpGet:
		k, ok := arg.(string)
		if !ok {
			return errValue(op, arg), s
		}
		if v, present := s.bindings[k]; present {
			return v, s
		}
		return nil, s
	case OpSwap:
		kv, ok := arg.(KV)
		if !ok {
			return errValue(op, arg), s
		}
		var prev spec.Value
		if v, present := s.bindings[kv.K]; present {
			prev = v
		}
		next := s.clone()
		next.bindings[kv.K] = kv.V
		return prev, next
	case OpLenKey:
		return len(s.bindings), s
	default:
		return errValue(op, arg), s
	}
}

func (s dictState) Fingerprint() string {
	keys := make([]string, 0, len(s.bindings))
	for k := range s.bindings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, s.bindings[k])
	}
	return "dict:" + strings.Join(parts, ",")
}
