package adt

import (
	"fmt"
	"strings"

	"lintime/internal/spec"
)

// Queue operation names.
const (
	OpEnqueue = "enqueue"
	OpDequeue = "dequeue"
	OpPeek    = "peek"
)

// EmptyMarker is returned by dequeue/pop/peek on an empty container.
const EmptyMarker = "empty"

// Queue is a FIFO queue over int items (Table 2 of the paper).
//
// Operations:
//
//	enqueue(v, ⊥) — pure mutator, transposable and last-sensitive.
//	dequeue(⊥, v) — mixed (accessor+mutator), pair-free; returns and
//	                removes the head, or "empty".
//	peek(⊥, v)    — pure accessor; returns the head without removing it.
type Queue struct{}

// NewQueue returns the FIFO queue data type.
func NewQueue() *Queue { return &Queue{} }

// Name implements spec.DataType.
func (q *Queue) Name() string { return "queue" }

// Ops implements spec.DataType.
func (q *Queue) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpEnqueue, Args: intArgs(4)},
		{Name: OpDequeue, Args: []spec.Value{nil}},
		{Name: OpPeek, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (q *Queue) Initial() spec.State { return queueState{} }

type queueState struct {
	items []int // head at index 0; never mutated in place
}

func (s queueState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpEnqueue:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		next := make([]int, len(s.items)+1)
		copy(next, s.items)
		next[len(s.items)] = v
		return nil, queueState{items: next}
	case OpDequeue:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[0], queueState{items: s.items[1:]}
	case OpPeek:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[0], s
	default:
		return errValue(op, arg), s
	}
}

func (s queueState) Fingerprint() string {
	var b strings.Builder
	b.WriteString("queue:")
	for i, v := range s.items {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
