package adt

import (
	"fmt"
	"strings"

	"lintime/internal/spec"
)

// Log operation names.
const (
	OpAppend = "append"
	OpAt     = "at"
	OpLen    = "len"
	OpLast   = "last"
)

// Log is an append-only log of int entries. Append is a pure mutator that
// is transposable and last-sensitive for any k; at/len/last are pure
// accessors. The log is the archetypal shared object in replicated
// systems, and a good stress case for the history-replay executor because
// its state grows without bound.
//
// Operations:
//
//	append(v, ⊥) — pure mutator.
//	at(i, v|-1)  — pure accessor; entry at index i or -1.
//	len(⊥, n)    — pure accessor.
//	last(⊥, v|-1)— pure accessor; latest entry or -1.
type Log struct{}

// NewLog returns the append-only log data type.
func NewLog() *Log { return &Log{} }

// Name implements spec.DataType.
func (l *Log) Name() string { return "log" }

// Ops implements spec.DataType.
func (l *Log) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpAppend, Args: intArgs(4)},
		{Name: OpAt, Args: []spec.Value{0, 1, 2}},
		{Name: OpLen, Args: []spec.Value{nil}},
		{Name: OpLast, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (l *Log) Initial() spec.State { return logState{} }

type logState struct {
	entries []int // never mutated in place
}

func (s logState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpAppend:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		next := make([]int, len(s.entries)+1)
		copy(next, s.entries)
		next[len(s.entries)] = v
		return nil, logState{entries: next}
	case OpAt:
		i, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		if i < 0 || i >= len(s.entries) {
			return AbsentMarker, s
		}
		return s.entries[i], s
	case OpLen:
		return len(s.entries), s
	case OpLast:
		if len(s.entries) == 0 {
			return AbsentMarker, s
		}
		return s.entries[len(s.entries)-1], s
	default:
		return errValue(op, arg), s
	}
}

func (s logState) Fingerprint() string {
	parts := make([]string, len(s.entries))
	for i, v := range s.entries {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "log:" + strings.Join(parts, ",")
}
