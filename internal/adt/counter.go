package adt

import (
	"fmt"

	"lintime/internal/spec"
)

// Counter operation names.
const (
	OpInc     = "inc"
	OpAddN    = "addn"
	OpReadCtr = "read"
)

// Counter is an integer counter. Inc and addn are commutative pure
// mutators (not last-sensitive); read is a pure accessor.
//
// Operations:
//
//	inc(⊥, ⊥)  — pure mutator; adds one.
//	addn(n, ⊥) — pure mutator; adds n.
//	read(⊥, v) — pure accessor.
type Counter struct{}

// NewCounter returns the counter data type.
func NewCounter() *Counter { return &Counter{} }

// Name implements spec.DataType.
func (c *Counter) Name() string { return "counter" }

// Ops implements spec.DataType.
func (c *Counter) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpInc, Args: []spec.Value{nil}},
		{Name: OpAddN, Args: []spec.Value{1, 2, 5}},
		{Name: OpReadCtr, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (c *Counter) Initial() spec.State { return counterState{} }

type counterState struct {
	value int
}

func (s counterState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpInc:
		return nil, counterState{value: s.value + 1}
	case OpAddN:
		n, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		return nil, counterState{value: s.value + n}
	case OpReadCtr:
		return s.value, s
	default:
		return errValue(op, arg), s
	}
}

func (s counterState) Fingerprint() string { return fmt.Sprintf("ctr:%d", s.value) }
