package adt

import (
	"fmt"
	"sort"
	"strings"

	"lintime/internal/spec"
)

// Priority queue operation names.
const (
	OpPQInsert  = "insert"
	OpPQExtract = "extractmin"
	OpPQMin     = "min"
)

// PQueue is a min-priority queue over int keys (a multiset with minimum
// extraction). It exercises a classification corner the paper's examples
// do not: insert is a *commutative* pure mutator — the multiset is
// order-blind — so Theorem 3 does not apply to it even though it is a
// mutator with unboundedly many distinct instances.
//
// Operations:
//
//	insert(v, ⊥)      — pure mutator, commutative (NOT last-sensitive).
//	extractmin(⊥, v)  — mixed, pair-free; removes and returns the
//	                    minimum, or "empty".
//	min(⊥, v)         — pure accessor; returns the minimum or "empty".
type PQueue struct{}

// NewPQueue returns the min-priority-queue data type.
func NewPQueue() *PQueue { return &PQueue{} }

// Name implements spec.DataType.
func (q *PQueue) Name() string { return "pqueue" }

// Ops implements spec.DataType.
func (q *PQueue) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpPQInsert, Args: intArgs(4)},
		{Name: OpPQExtract, Args: []spec.Value{nil}},
		{Name: OpPQMin, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (q *PQueue) Initial() spec.State { return pqState{} }

// pqState keeps the multiset as a sorted slice (canonical form).
type pqState struct {
	keys []int // sorted ascending; never mutated in place
}

func (s pqState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpPQInsert:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		next := make([]int, len(s.keys)+1)
		i := sort.SearchInts(s.keys, v)
		copy(next, s.keys[:i])
		next[i] = v
		copy(next[i+1:], s.keys[i:])
		return nil, pqState{keys: next}
	case OpPQExtract:
		if len(s.keys) == 0 {
			return EmptyMarker, s
		}
		return s.keys[0], pqState{keys: s.keys[1:]}
	case OpPQMin:
		if len(s.keys) == 0 {
			return EmptyMarker, s
		}
		return s.keys[0], s
	default:
		return errValue(op, arg), s
	}
}

func (s pqState) Fingerprint() string {
	parts := make([]string, len(s.keys))
	for i, v := range s.keys {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "pq:" + strings.Join(parts, ",")
}
