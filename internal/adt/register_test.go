package adt

import (
	"testing"
	"testing/quick"

	"lintime/internal/spec"
)

func apply(t *testing.T, s spec.State, op string, arg spec.Value, wantRet spec.Value) spec.State {
	t.Helper()
	ret, next := s.Apply(op, arg)
	if !spec.ValuesEqual(ret, wantRet) {
		t.Fatalf("%s(%v) returned %v, want %v", op, arg, ret, wantRet)
	}
	return next
}

func TestRegisterReadInitial(t *testing.T) {
	s := NewRegister(7).Initial()
	apply(t, s, OpRead, nil, 7)
}

func TestRegisterWriteRead(t *testing.T) {
	s := NewRegister(0).Initial()
	s = apply(t, s, OpWrite, 42, nil)
	s = apply(t, s, OpRead, nil, 42)
	s = apply(t, s, OpWrite, 7, nil)
	apply(t, s, OpRead, nil, 7)
}

func TestRegisterLastWriteWins(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewRegister(0).Initial()
		for _, v := range vals {
			_, s = s.Apply(OpWrite, int(v))
		}
		ret, _ := s.Apply(OpRead, nil)
		return spec.ValuesEqual(ret, int(vals[len(vals)-1]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterFingerprint(t *testing.T) {
	s := NewRegister(0).Initial()
	if s.Fingerprint() != "reg:0" {
		t.Errorf("fingerprint = %q", s.Fingerprint())
	}
	_, s2 := s.Apply(OpWrite, 5)
	if s2.Fingerprint() != "reg:5" {
		t.Errorf("fingerprint after write = %q", s2.Fingerprint())
	}
}

func TestRegisterBadWriteArg(t *testing.T) {
	s := NewRegister(3).Initial()
	ret, next := s.Apply(OpWrite, "oops")
	if ret == nil {
		t.Error("bad arg should return error marker")
	}
	if next.Fingerprint() != s.Fingerprint() {
		t.Error("bad arg must not change state")
	}
}

func TestRMWRegisterFetchAndAdd(t *testing.T) {
	s := NewRMWRegister(10).Initial()
	s = apply(t, s, OpRMW, 5, 10) // returns old value 10, state becomes 15
	s = apply(t, s, OpRead, nil, 15)
	s = apply(t, s, OpRMW, -3, 15)
	apply(t, s, OpRead, nil, 12)
}

func TestRMWRegisterWriteOverrides(t *testing.T) {
	s := NewRMWRegister(0).Initial()
	s = apply(t, s, OpRMW, 100, 0)
	s = apply(t, s, OpWrite, 1, nil)
	apply(t, s, OpRead, nil, 1)
}

func TestRMWRegisterSumProperty(t *testing.T) {
	// A series of rmw(δ) from initial v0 leaves v0 + Σδ and each rmw
	// returns the running prefix sum.
	f := func(deltas []int8) bool {
		s := NewRMWRegister(0).Initial()
		sum := 0
		for _, d := range deltas {
			ret, next := s.Apply(OpRMW, int(d))
			if !spec.ValuesEqual(ret, sum) {
				return false
			}
			sum += int(d)
			s = next
		}
		ret, _ := s.Apply(OpRead, nil)
		return spec.ValuesEqual(ret, sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMWRegisterPairFreeWitness(t *testing.T) {
	// Two rmw instances with the "solo" return value cannot both appear:
	// rmw(1, 0) then rmw(1, 0) is illegal after the empty sequence.
	dt := NewRMWRegister(0)
	one := spec.Instance{Op: OpRMW, Arg: 1, Ret: 0}
	if !spec.Legal(dt, []spec.Instance{one}) {
		t.Fatal("single rmw(1,0) should be legal")
	}
	if spec.Legal(dt, []spec.Instance{one, one}) {
		t.Error("rmw(1,0).rmw(1,0) should be illegal (pair-free witness)")
	}
}
