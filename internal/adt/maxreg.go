package adt

import (
	"fmt"

	"lintime/internal/spec"
)

// MaxRegister operation names.
const (
	OpWriteMax = "writemax"
	OpReadMax  = "readmax"
)

// MaxRegister holds the maximum value ever written. WriteMax is a pure
// mutator that is transposable but — unlike a plain register write —
// commutative, hence *not* last-sensitive: the Theorem 3 lower bound does
// not apply, and the classifier must report that. ReadMax is a pure
// accessor.
//
// Operations:
//
//	writemax(v, ⊥) — pure mutator, commutative.
//	readmax(⊥, v)  — pure accessor.
type MaxRegister struct {
	initial int
}

// NewMaxRegister returns a max-register data type with the given initial
// value.
func NewMaxRegister(initial int) *MaxRegister { return &MaxRegister{initial: initial} }

// Name implements spec.DataType.
func (m *MaxRegister) Name() string { return "maxregister" }

// Ops implements spec.DataType.
func (m *MaxRegister) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpWriteMax, Args: intArgs(4)},
		{Name: OpReadMax, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (m *MaxRegister) Initial() spec.State { return maxRegState{value: m.initial} }

type maxRegState struct {
	value int
}

func (s maxRegState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpWriteMax:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		if v > s.value {
			return nil, maxRegState{value: v}
		}
		return nil, s
	case OpReadMax:
		return s.value, s
	default:
		return errValue(op, arg), s
	}
}

func (s maxRegState) Fingerprint() string { return fmt.Sprintf("max:%d", s.value) }
