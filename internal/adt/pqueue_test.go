package adt

import (
	"sort"
	"testing"
	"testing/quick"

	"lintime/internal/spec"
)

func TestPQueueBasics(t *testing.T) {
	s := NewPQueue().Initial()
	s = apply(t, s, OpPQMin, nil, EmptyMarker)
	s = apply(t, s, OpPQExtract, nil, EmptyMarker)
	s = apply(t, s, OpPQInsert, 5, nil)
	s = apply(t, s, OpPQInsert, 2, nil)
	s = apply(t, s, OpPQInsert, 8, nil)
	s = apply(t, s, OpPQMin, nil, 2)
	s = apply(t, s, OpPQExtract, nil, 2)
	s = apply(t, s, OpPQExtract, nil, 5)
	s = apply(t, s, OpPQMin, nil, 8)
	s = apply(t, s, OpPQExtract, nil, 8)
	apply(t, s, OpPQExtract, nil, EmptyMarker)
}

func TestPQueueDuplicates(t *testing.T) {
	s := NewPQueue().Initial()
	s = apply(t, s, OpPQInsert, 3, nil)
	s = apply(t, s, OpPQInsert, 3, nil)
	s = apply(t, s, OpPQExtract, nil, 3)
	s = apply(t, s, OpPQExtract, nil, 3)
	apply(t, s, OpPQExtract, nil, EmptyMarker)
}

func TestPQueueExtractSortsInput(t *testing.T) {
	f := func(items []uint8) bool {
		s := NewPQueue().Initial()
		for _, v := range items {
			_, s = s.Apply(OpPQInsert, int(v))
		}
		sorted := make([]int, len(items))
		for i, v := range items {
			sorted[i] = int(v)
		}
		sort.Ints(sorted)
		for _, want := range sorted {
			ret, next := s.Apply(OpPQExtract, nil)
			if !spec.ValuesEqual(ret, want) {
				return false
			}
			s = next
		}
		ret, _ := s.Apply(OpPQExtract, nil)
		return spec.ValuesEqual(ret, EmptyMarker)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPQueueInsertsCommute(t *testing.T) {
	dt := NewPQueue()
	a := spec.Instance{Op: OpPQInsert, Arg: 1}
	b := spec.Instance{Op: OpPQInsert, Arg: 2}
	if !spec.Equivalent(dt, []spec.Instance{a, b}, []spec.Instance{b, a}) {
		t.Error("priority-queue inserts must commute (multiset semantics)")
	}
}

func TestPQueueSliceAliasing(t *testing.T) {
	s0 := NewPQueue().Initial()
	_, s1 := s0.Apply(OpPQInsert, 1)
	_, s2 := s1.Apply(OpPQInsert, 2)
	_, s3 := s2.Apply(OpPQExtract, nil) // [2]
	_, s4a := s3.Apply(OpPQInsert, 7)
	_, s4b := s3.Apply(OpPQInsert, 8)
	ra, _ := s4a.Apply(OpPQMin, nil)
	rb, _ := s4b.Apply(OpPQMin, nil)
	if !spec.ValuesEqual(ra, 2) || !spec.ValuesEqual(rb, 2) {
		t.Errorf("aliasing: mins %v %v", ra, rb)
	}
	r2, _ := s2.Apply(OpPQExtract, nil)
	if !spec.ValuesEqual(r2, 1) {
		t.Errorf("original state corrupted: %v", r2)
	}
}

func TestDequeBasics(t *testing.T) {
	s := NewDeque().Initial()
	s = apply(t, s, OpFront, nil, EmptyMarker)
	s = apply(t, s, OpBack, nil, EmptyMarker)
	s = apply(t, s, OpPushBack, 1, nil)  // [1]
	s = apply(t, s, OpPushFront, 2, nil) // [2 1]
	s = apply(t, s, OpPushBack, 3, nil)  // [2 1 3]
	s = apply(t, s, OpFront, nil, 2)
	s = apply(t, s, OpBack, nil, 3)
	s = apply(t, s, OpPopFront, nil, 2) // [1 3]
	s = apply(t, s, OpPopBack, nil, 3)  // [1]
	s = apply(t, s, OpPopFront, nil, 1)
	apply(t, s, OpPopBack, nil, EmptyMarker)
}

func TestDequeMirrorsQueueAndStack(t *testing.T) {
	// pushBack+popFront is a queue; pushBack+popBack is a stack.
	f := func(items []uint8) bool {
		q := NewDeque().Initial()
		st := NewDeque().Initial()
		for _, v := range items {
			_, q = q.Apply(OpPushBack, int(v))
			_, st = st.Apply(OpPushBack, int(v))
		}
		for i := range items {
			rq, nq := q.Apply(OpPopFront, nil)
			if !spec.ValuesEqual(rq, int(items[i])) {
				return false
			}
			q = nq
			rs, ns := st.Apply(OpPopBack, nil)
			if !spec.ValuesEqual(rs, int(items[len(items)-1-i])) {
				return false
			}
			st = ns
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDequePushesDoNotCommute(t *testing.T) {
	dt := NewDeque()
	a := spec.Instance{Op: OpPushFront, Arg: 1}
	b := spec.Instance{Op: OpPushFront, Arg: 2}
	if spec.Equivalent(dt, []spec.Instance{a, b}, []spec.Instance{b, a}) {
		t.Error("pushFront order must be observable")
	}
}

func TestBankBasics(t *testing.T) {
	s := NewBank(10).Initial()
	s = apply(t, s, OpBalance, nil, 10)
	s = apply(t, s, OpDeposit, 5, nil)
	s = apply(t, s, OpBalance, nil, 15)
	s = apply(t, s, OpWithdraw, 5, true)
	s = apply(t, s, OpBalance, nil, 10)
}

func TestBankOverdraftProtection(t *testing.T) {
	s := NewBank(3).Initial()
	s = apply(t, s, OpWithdraw, 5, false) // insufficient funds
	s = apply(t, s, OpBalance, nil, 3)    // unchanged
	s = apply(t, s, OpWithdraw, 3, true)
	s = apply(t, s, OpWithdraw, 1, false)
	apply(t, s, OpBalance, nil, 0)
}

func TestBankNeverNegative(t *testing.T) {
	f := func(ops []int8) bool {
		s := NewBank(0).Initial()
		for _, o := range ops {
			amount := int(o)
			if amount < 0 {
				amount = -amount
			}
			if o%2 == 0 {
				_, s = s.Apply(OpDeposit, amount)
			} else {
				_, s = s.Apply(OpWithdraw, amount)
			}
			bal, _ := s.Apply(OpBalance, nil)
			if bal.(int) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankPairFreeWitness(t *testing.T) {
	// Two withdrawals succeeding against the same funds cannot be
	// serialized: after deposit(5), withdraw(5,true) cannot follow
	// withdraw(5,true).
	dt := NewBank(0)
	dep := spec.Instance{Op: OpDeposit, Arg: 5}
	w := spec.Instance{Op: OpWithdraw, Arg: 5, Ret: true}
	if !spec.Legal(dt, []spec.Instance{dep, w}) {
		t.Fatal("first withdrawal should succeed")
	}
	if spec.Legal(dt, []spec.Instance{dep, w, w}) {
		t.Error("double-spend must be illegal")
	}
}

func TestBankNegativeAmountRejected(t *testing.T) {
	s := NewBank(10).Initial()
	ret, next := s.Apply(OpWithdraw, -5)
	if ret == nil || ret == true {
		t.Errorf("negative withdrawal returned %v", ret)
	}
	if next.Fingerprint() != s.Fingerprint() {
		t.Error("negative withdrawal changed state")
	}
}
