package adt

import (
	"fmt"
	"sort"
	"strings"

	"lintime/internal/spec"
)

// Keyed lifts a base data type to a family of independent named objects:
// the state is a finite map key → base-type state, every operation names
// the object it acts on, and objects not yet touched are in the base
// initial state. The serving layer's shard-set serves one Keyed object
// per shard, so many named objects (keys) share one Algorithm 1 cluster
// while remaining sequentially independent.
//
// Linearizability of a Keyed object implies linearizability of every
// per-key projection (each key's subhistory replays against the base
// type), which is the direction the shard-set's per-object checker
// verifies; the converse holds too because operations on distinct keys
// commute.
//
// Argument convention: a keyed invocation packs (key, base argument) into
// one spec.Value via KeyArg — the bare key string when the base argument
// is nil, or KV{K: key, V: v} when it is an int. These are exactly the
// shapes the histio wire encoding already carries, so keyed operations
// need no protocol extension beyond the request's key field.
//
// Classification note: wrapping preserves each operation's algebraic
// class. A base pure mutator applied under a key mutates only that key's
// substate and still returns a state-independent value; a base pure
// accessor still never mutates. The serving layer therefore classifies
// the basis type and reuses those classes for the keyed ops (same names).
type Keyed struct {
	inner     spec.DataType
	sampleKey []string
	initialFP string
}

// NewKeyed wraps a base data type into its keyed family. The base type's
// operation arguments must be nil or int (true for every registry type);
// other argument shapes are rejected at call time by KeyArg.
func NewKeyed(inner spec.DataType) *Keyed {
	return &Keyed{
		inner:     inner,
		sampleKey: []string{"a", "b"},
		initialFP: inner.Initial().Fingerprint(),
	}
}

// Name implements spec.DataType.
func (k *Keyed) Name() string { return "keyed-" + k.inner.Name() }

// Basis returns the wrapped base data type.
func (k *Keyed) Basis() spec.DataType { return k.inner }

// Ops implements spec.DataType: the base operations with arguments lifted
// over a small sample key set (enough for the classification decision
// procedures to exercise cross-key interleavings).
func (k *Keyed) Ops() []spec.OpInfo {
	base := k.inner.Ops()
	out := make([]spec.OpInfo, len(base))
	for i, op := range base {
		var args []spec.Value
		for _, key := range k.sampleKey {
			for _, a := range op.Args {
				ka, err := KeyArg(key, a)
				if err != nil {
					continue
				}
				args = append(args, ka)
			}
		}
		out[i] = spec.OpInfo{Name: op.Name, Args: args}
	}
	return out
}

// Initial implements spec.DataType.
func (k *Keyed) Initial() spec.State {
	return keyedState{dt: k, objs: nil}
}

// KeyArg packs an object key and a base-type argument into one keyed
// argument value: the bare key when the base argument is nil, KV{key, v}
// when it is an int.
func KeyArg(key string, arg spec.Value) (spec.Value, error) {
	if key == "" {
		return nil, fmt.Errorf("adt: keyed operation needs a non-empty key")
	}
	switch v := arg.(type) {
	case nil:
		return key, nil
	case int:
		return KV{K: key, V: v}, nil
	default:
		return nil, fmt.Errorf("adt: keyed argument must be nil or int, got %T", arg)
	}
}

// SplitKeyArg is the inverse of KeyArg: it unpacks a keyed argument into
// the object key and the base-type argument. ok is false for values that
// are not keyed arguments.
func SplitKeyArg(arg spec.Value) (key string, inner spec.Value, ok bool) {
	switch v := arg.(type) {
	case string:
		return v, nil, v != ""
	case KV:
		return v.K, v.V, v.K != ""
	default:
		return "", nil, false
	}
}

// keyedState is the immutable map key → base state. Keys whose substate
// is (back at) the base initial state are elided, keeping Fingerprint
// canonical: touching an object with accessors only leaves the state
// behaviorally — and representationally — unchanged.
type keyedState struct {
	dt   *Keyed
	objs map[string]spec.State
}

func (s keyedState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	key, innerArg, ok := SplitKeyArg(arg)
	if !ok {
		return errValue(op, arg), s
	}
	obj, exists := s.objs[key]
	if !exists {
		obj = s.dt.inner.Initial()
	}
	ret, next := obj.Apply(op, innerArg)
	nextFP := next.Fingerprint()
	if exists {
		if nextFP == obj.Fingerprint() {
			return ret, s
		}
	} else if nextFP == s.dt.initialFP {
		return ret, s
	}
	objs := make(map[string]spec.State, len(s.objs)+1)
	for k, v := range s.objs {
		objs[k] = v
	}
	if nextFP == s.dt.initialFP {
		delete(objs, key)
	} else {
		objs[key] = next
	}
	return ret, keyedState{dt: s.dt, objs: objs}
}

func (s keyedState) Fingerprint() string {
	keys := make([]string, 0, len(s.objs))
	for k := range s.objs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("keyed{")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%q=%s", k, s.objs[k].Fingerprint())
	}
	b.WriteByte('}')
	return b.String()
}
