package adt

import (
	"testing"

	"lintime/internal/spec"
)

func TestTreeFWFirstInsertWins(t *testing.T) {
	s := NewTreeFW().Initial()
	s = apply(t, s, OpInsert, Edge{P: 0, C: 1}, nil)
	s = apply(t, s, OpInsert, Edge{P: 1, C: 2}, nil)
	// Node 2 already exists: re-insert elsewhere is a no-op.
	s = apply(t, s, OpInsert, Edge{P: 0, C: 2}, nil)
	apply(t, s, OpDepth, 2, 2)
}

func TestTreeFWDeleteThenReinsert(t *testing.T) {
	s := NewTreeFW().Initial()
	s = apply(t, s, OpInsert, Edge{P: 0, C: 1}, nil)
	s = apply(t, s, OpInsert, Edge{P: 0, C: 2}, nil)
	s = apply(t, s, OpDelete, 2, nil)
	// After deletion the node can be inserted again, elsewhere.
	s = apply(t, s, OpInsert, Edge{P: 1, C: 2}, nil)
	apply(t, s, OpDepth, 2, 2)
}

func TestTreeFWDeleteLeafOnly(t *testing.T) {
	s := NewTreeFW().Initial()
	_, s = s.Apply(OpInsert, Edge{P: 0, C: 1})
	_, s = s.Apply(OpInsert, Edge{P: 1, C: 2})
	before := s.Fingerprint()
	_, next := s.Apply(OpDelete, 1)
	if next.Fingerprint() != before {
		t.Error("deleting an internal node should be a no-op")
	}
}

func TestTreeFWMissingParentNoOp(t *testing.T) {
	s := NewTreeFW().Initial()
	before := s.Fingerprint()
	_, next := s.Apply(OpInsert, Edge{P: 9, C: 10})
	if next.Fingerprint() != before {
		t.Error("insert under absent parent should be a no-op")
	}
}

func TestTreeFWTheorem5DiscriminatorShape(t *testing.T) {
	// The configuration used by Theorem 5 for trees: parents at different
	// depths, first-wins decides which one node 4 lands under, and depth
	// observes the difference.
	dt := NewTreeFW()
	rho := []spec.Instance{
		{Op: OpInsert, Arg: Edge{P: 0, C: 1}},
		{Op: OpInsert, Arg: Edge{P: 1, C: 3}},
	}
	op0 := spec.Instance{Op: OpInsert, Arg: Edge{P: 1, C: 2}} // depth 2
	op1 := spec.Instance{Op: OpInsert, Arg: Edge{P: 3, C: 2}} // depth 3

	s := spec.Replay(dt.Initial(), rho)
	_, after0 := s.Apply(op0.Op, op0.Arg)
	_, after1 := s.Apply(op1.Op, op1.Arg)
	_, after10 := after1.Apply(op0.Op, op0.Arg)
	_, after01 := after0.Apply(op1.Op, op1.Arg)

	d0a, _ := after0.Apply(OpDepth, 2)
	d0b, _ := after10.Apply(OpDepth, 2)
	if spec.ValuesEqual(d0a, d0b) {
		t.Errorf("depth(2) must discriminate ρ.op0 (%v) from ρ.op1.op0 (%v)", d0a, d0b)
	}
	d1a, _ := after1.Apply(OpDepth, 2)
	d1b, _ := after01.Apply(OpDepth, 2)
	if spec.ValuesEqual(d1a, d1b) {
		t.Errorf("depth(2) must discriminate ρ.op1 (%v) from ρ.op0.op1 (%v)", d1a, d1b)
	}
}

func TestTreeFWBadArgsTotal(t *testing.T) {
	s := NewTreeFW().Initial()
	ret, next := s.Apply(OpInsert, "junk")
	if ret == nil || next == nil {
		t.Error("bad insert arg should return error marker and valid state")
	}
}
