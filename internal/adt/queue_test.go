package adt

import (
	"testing"
	"testing/quick"

	"lintime/internal/spec"
)

func TestQueueEmptyBehavior(t *testing.T) {
	s := NewQueue().Initial()
	apply(t, s, OpDequeue, nil, EmptyMarker)
	apply(t, s, OpPeek, nil, EmptyMarker)
}

func TestQueueFIFOOrder(t *testing.T) {
	s := NewQueue().Initial()
	s = apply(t, s, OpEnqueue, 1, nil)
	s = apply(t, s, OpEnqueue, 2, nil)
	s = apply(t, s, OpEnqueue, 3, nil)
	s = apply(t, s, OpPeek, nil, 1)
	s = apply(t, s, OpDequeue, nil, 1)
	s = apply(t, s, OpDequeue, nil, 2)
	s = apply(t, s, OpPeek, nil, 3)
	s = apply(t, s, OpDequeue, nil, 3)
	apply(t, s, OpDequeue, nil, EmptyMarker)
}

func TestQueuePeekDoesNotMutate(t *testing.T) {
	s := NewQueue().Initial()
	s = apply(t, s, OpEnqueue, 9, nil)
	before := s.Fingerprint()
	_, next := s.Apply(OpPeek, nil)
	if next.Fingerprint() != before {
		t.Error("peek changed the state")
	}
}

func TestQueueDequeueAllInOrder(t *testing.T) {
	f := func(items []uint8) bool {
		s := NewQueue().Initial()
		for _, v := range items {
			_, s = s.Apply(OpEnqueue, int(v))
		}
		for _, v := range items {
			ret, next := s.Apply(OpDequeue, nil)
			if !spec.ValuesEqual(ret, int(v)) {
				return false
			}
			s = next
		}
		ret, _ := s.Apply(OpDequeue, nil)
		return spec.ValuesEqual(ret, EmptyMarker)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueFingerprintCanonical(t *testing.T) {
	a := NewQueue().Initial()
	_, a = a.Apply(OpEnqueue, 1)
	_, a = a.Apply(OpEnqueue, 2)
	_, a = a.Apply(OpDequeue, nil)

	b := NewQueue().Initial()
	_, b = b.Apply(OpEnqueue, 2)

	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("states with same contents differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestQueueSliceAliasing(t *testing.T) {
	// Dequeue shares the tail slice; a subsequent enqueue on the old state
	// must not corrupt the new one.
	s0 := NewQueue().Initial()
	_, s1 := s0.Apply(OpEnqueue, 1)
	_, s2 := s1.Apply(OpEnqueue, 2)
	_, s3 := s2.Apply(OpDequeue, nil) // s3 = [2]
	_, s4a := s3.Apply(OpEnqueue, 7)  // s4a = [2 7]
	_, s4b := s3.Apply(OpEnqueue, 8)  // must be [2 8], not corrupted by s4a
	ra, _ := spec.Replay(s4a, nil).Apply(OpPeek, nil)
	if !spec.ValuesEqual(ra, 2) {
		t.Errorf("s4a head = %v", ra)
	}
	_, s5b := s4b.Apply(OpDequeue, nil)
	rb, _ := s5b.Apply(OpDequeue, nil)
	if !spec.ValuesEqual(rb, 8) {
		t.Errorf("s4b second element = %v, want 8 (aliasing bug)", rb)
	}
}

func TestQueueEnqueueLastSensitiveWitness(t *testing.T) {
	// Different orders of the same enqueues are distinguishable by
	// dequeue-ing to the end — the Theorem 3 witness for queues.
	dt := NewQueue()
	e1 := spec.Instance{Op: OpEnqueue, Arg: 1}
	e2 := spec.Instance{Op: OpEnqueue, Arg: 2}
	if spec.Equivalent(dt, []spec.Instance{e1, e2}, []spec.Instance{e2, e1}) {
		t.Error("enqueue orders should not be equivalent")
	}
}
