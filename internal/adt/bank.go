package adt

import (
	"fmt"

	"lintime/internal/spec"
)

// Bank account operation names.
const (
	OpDeposit  = "deposit"
	OpWithdraw = "withdraw"
	OpBalance  = "balance"
)

// Bank is an overdraft-protected bank account: withdrawals fail (return
// false) rather than drive the balance negative. Deposit is a commutative
// pure mutator; withdraw both observes (success flag) and mutates the
// balance and is pair-free — two withdrawals that both succeeded against
// the same funds cannot be serialized; balance is a pure accessor. This
// is the paper's motivating electronic-commerce scenario as a data type.
type Bank struct {
	initial int
}

// NewBank returns a bank-account data type with the given opening
// balance.
func NewBank(initial int) *Bank { return &Bank{initial: initial} }

// Name implements spec.DataType.
func (b *Bank) Name() string { return "bank" }

// Ops implements spec.DataType.
func (b *Bank) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpDeposit, Args: []spec.Value{1, 2, 5}},
		{Name: OpWithdraw, Args: []spec.Value{1, 2, 5}},
		{Name: OpBalance, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (b *Bank) Initial() spec.State { return bankState{balance: b.initial} }

type bankState struct {
	balance int
}

func (s bankState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpDeposit:
		v, ok := arg.(int)
		if !ok || v < 0 {
			return errValue(op, arg), s
		}
		return nil, bankState{balance: s.balance + v}
	case OpWithdraw:
		v, ok := arg.(int)
		if !ok || v < 0 {
			return errValue(op, arg), s
		}
		if v > s.balance {
			return false, s
		}
		return true, bankState{balance: s.balance - v}
	case OpBalance:
		return s.balance, s
	default:
		return errValue(op, arg), s
	}
}

func (s bankState) Fingerprint() string { return fmt.Sprintf("bank:%d", s.balance) }
