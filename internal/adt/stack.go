package adt

import (
	"fmt"
	"strings"

	"lintime/internal/spec"
)

// Stack operation names.
const (
	OpPush = "push"
	OpPop  = "pop"
	// Stacks reuse OpPeek from the queue for their top accessor.
)

// Stack is a LIFO stack over int items (Table 3 of the paper).
//
// Operations:
//
//	push(v, ⊥) — pure mutator, transposable and last-sensitive.
//	pop(⊥, v)  — mixed (accessor+mutator), pair-free; returns and removes
//	             the top, or "empty".
//	peek(⊥, v) — pure accessor; returns the top without removing it.
type Stack struct{}

// NewStack returns the LIFO stack data type.
func NewStack() *Stack { return &Stack{} }

// Name implements spec.DataType.
func (st *Stack) Name() string { return "stack" }

// Ops implements spec.DataType.
func (st *Stack) Ops() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpPush, Args: intArgs(4)},
		{Name: OpPop, Args: []spec.Value{nil}},
		{Name: OpPeek, Args: []spec.Value{nil}},
	}
}

// Initial implements spec.DataType.
func (st *Stack) Initial() spec.State { return stackState{} }

type stackState struct {
	items []int // top at the end; never mutated in place
}

func (s stackState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpPush:
		v, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		next := make([]int, len(s.items)+1)
		copy(next, s.items)
		next[len(s.items)] = v
		return nil, stackState{items: next}
	case OpPop:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		top := s.items[len(s.items)-1]
		return top, stackState{items: s.items[:len(s.items)-1]}
	case OpPeek:
		if len(s.items) == 0 {
			return EmptyMarker, s
		}
		return s.items[len(s.items)-1], s
	default:
		return errValue(op, arg), s
	}
}

func (s stackState) Fingerprint() string {
	var b strings.Builder
	b.WriteString("stack:")
	for i, v := range s.items {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
