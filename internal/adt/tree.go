package adt

import (
	"fmt"
	"sort"
	"strings"

	"lintime/internal/spec"
)

// Tree operation names.
const (
	OpInsert = "insert"
	OpDelete = "delete"
	OpDepth  = "depth"
)

// AbsentMarker is returned by queries that target a node not in the tree.
const AbsentMarker = -1

// Edge is the argument of insert: place node C under parent P.
type Edge struct {
	P int
	C int
}

// Tree is a simple rooted tree over int node IDs with root 0 (Table 4 of
// the paper). The paper does not pin down the exact sequential semantics
// of Insert/Delete; we choose semantics that (a) keep both pure mutators,
// as required for the ε upper bound in Table 4, and (b) make Insert
// last-sensitive for arbitrarily large k (see classify): Insert is a
// create-or-move so the last insert of a node determines its parent.
// Delete is leaf-only, which makes it order-sensitive (hence
// last-sensitive with k = 2, the u/2 bound); see EXPERIMENTS.md for the
// discussion of the (1-1/n)u claim for Delete under other semantics.
//
// Operations:
//
//	insert({p,c}, ⊥) — pure mutator. If p is present, c ≠ 0, and c is not
//	                   an ancestor of p, then c is created under p (moving
//	                   c and its subtree if c already exists). Otherwise a
//	                   no-op.
//	delete(c, ⊥)     — pure mutator. Removes c if c is a leaf other than
//	                   the root; otherwise a no-op.
//	depth(c, k)      — pure accessor. Returns the depth of node c (root
//	                   has depth 0), or -1 if c is absent.
type Tree struct{}

// NewTree returns the simple rooted tree data type.
func NewTree() *Tree { return &Tree{} }

// Name implements spec.DataType.
func (t *Tree) Name() string { return "tree" }

// Ops implements spec.DataType.
func (t *Tree) Ops() []spec.OpInfo {
	return treeOps()
}

// Initial implements spec.DataType.
func (t *Tree) Initial() spec.State { return treeState{parent: map[int]int{}} }

// treeOps is shared by the move-insert and first-wins tree variants. The
// insert samples include three different parents (0, 1, 3) for the common
// child 2, which lets the classifier find last-sensitive witnesses with
// k = 3 under move semantics.
func treeOps() []spec.OpInfo {
	return []spec.OpInfo{
		{Name: OpInsert, Args: []spec.Value{
			Edge{P: 0, C: 1}, Edge{P: 1, C: 3}, Edge{P: 0, C: 2}, Edge{P: 1, C: 2}, Edge{P: 3, C: 2},
		}},
		{Name: OpDelete, Args: []spec.Value{1, 2, 3}},
		{Name: OpDepth, Args: []spec.Value{0, 1, 2, 3}},
	}
}

// treeState maps each non-root node to its parent. The root 0 is always
// present and has no entry. The map is never mutated in place.
type treeState struct {
	parent map[int]int
}

func (s treeState) has(node int) bool {
	if node == 0 {
		return true
	}
	_, ok := s.parent[node]
	return ok
}

func (s treeState) isLeaf(node int) bool {
	for _, p := range s.parent {
		if p == node {
			return false
		}
	}
	return true
}

// isAncestor reports whether a is a (non-strict) ancestor of b.
func (s treeState) isAncestor(a, b int) bool {
	for {
		if a == b {
			return true
		}
		p, ok := s.parent[b]
		if !ok {
			return false
		}
		b = p
	}
}

func (s treeState) clone() treeState {
	next := make(map[int]int, len(s.parent))
	for k, v := range s.parent {
		next[k] = v
	}
	return treeState{parent: next}
}

func (s treeState) Apply(op string, arg spec.Value) (spec.Value, spec.State) {
	switch op {
	case OpInsert:
		e, ok := arg.(Edge)
		if !ok {
			return errValue(op, arg), s
		}
		if e.C == 0 || !s.has(e.P) || (s.has(e.C) && s.isAncestor(e.C, e.P)) {
			return nil, s
		}
		next := s.clone()
		next.parent[e.C] = e.P
		return nil, next
	case OpDelete:
		c, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		if c == 0 || !s.has(c) || !s.isLeaf(c) {
			return nil, s
		}
		next := s.clone()
		delete(next.parent, c)
		return nil, next
	case OpDepth:
		c, ok := arg.(int)
		if !ok {
			return errValue(op, arg), s
		}
		if !s.has(c) {
			return AbsentMarker, s
		}
		depth := 0
		for c != 0 {
			c = s.parent[c]
			depth++
		}
		return depth, s
	default:
		return errValue(op, arg), s
	}
}

func (s treeState) Fingerprint() string {
	edges := make([]string, 0, len(s.parent))
	for c, p := range s.parent {
		edges = append(edges, fmt.Sprintf("%d<%d", c, p))
	}
	sort.Strings(edges)
	return "tree:" + strings.Join(edges, ",")
}
