// Package spec defines sequential specifications of shared-object data
// types in the style of Section 2.1 of the paper.
//
// A data type T has a set of operations OPS(T); an operation instance
// OP(arg, ret) pairs an invocation argument with a response value. The set
// of legal sequences L(T) must satisfy Prefix Closure, Completeness and
// Determinism. We realize L(T) with deterministic sequential state
// machines: a sequence is legal iff replaying it from the initial state
// produces, at each step, exactly the recorded return value. This
// construction guarantees all three axioms:
//
//   - Prefix Closure: replay of a prefix is a prefix of the replay.
//   - Completeness: Apply is total, so every invocation has a response.
//   - Determinism: Apply is a function of (state, op, arg).
//
// Equivalence of sequences (ρ1 ≡ ρ2 iff every continuation is legal after
// ρ1 exactly when it is legal after ρ2) reduces to equality of the states
// reached, which ADTs expose through canonical fingerprints.
package spec

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Value is an operation argument or return value. Implementations use
// small scalar values (ints, strings, bools, nil) or flat structs;
// equality is structural.
type Value any

// ValuesEqual reports structural equality of two values.
func ValuesEqual(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return reflect.DeepEqual(a, b)
}

// FormatValue renders a value compactly for fingerprints and traces.
func FormatValue(v Value) string {
	if v == nil {
		return "⊥"
	}
	return fmt.Sprintf("%v", v)
}

// Instance is an operation instance OP(arg, ret): an invocation bundled
// with its matching response.
type Instance struct {
	Op  string
	Arg Value
	Ret Value
}

// String renders the instance as OP(arg, ret).
func (in Instance) String() string {
	return fmt.Sprintf("%s(%s, %s)", in.Op, FormatValue(in.Arg), FormatValue(in.Ret))
}

// Invocation is an operation invocation OP(arg) whose response is not yet
// determined.
type Invocation struct {
	Op  string
	Arg Value
}

// String renders the invocation as OP(arg).
func (iv Invocation) String() string {
	return fmt.Sprintf("%s(%s)", iv.Op, FormatValue(iv.Arg))
}

// State is an immutable sequential state of a data type. Apply must be
// deterministic and total, and must not mutate the receiver: it returns
// the response and the successor state. Fingerprint must be canonical:
// two states are behaviorally equivalent iff their fingerprints are equal.
type State interface {
	Apply(op string, arg Value) (ret Value, next State)
	Fingerprint() string
}

// OpInfo describes one operation of a data type: its name and a finite,
// representative sample of invocation arguments used by the classification
// decision procedures and by workload generators. Operations without
// arguments use the single sample nil.
type OpInfo struct {
	Name string
	Args []Value
}

// DataType is a sequential data-type specification.
type DataType interface {
	Name() string
	Ops() []OpInfo
	Initial() State
}

// OpNames returns the operation names of a data type in declaration order.
func OpNames(dt DataType) []string {
	ops := dt.Ops()
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name
	}
	return names
}

// FindOp returns the OpInfo with the given name.
func FindOp(dt DataType, name string) (OpInfo, bool) {
	for _, op := range dt.Ops() {
		if op.Name == name {
			return op, true
		}
	}
	return OpInfo{}, false
}

// Replay applies the invocations underlying seq from state s, ignoring the
// recorded return values, and returns the resulting state.
func Replay(s State, seq []Instance) State {
	for _, in := range seq {
		_, s = s.Apply(in.Op, in.Arg)
	}
	return s
}

// ReplayLegal replays seq from state s checking the recorded return value
// of every instance. It returns the final state and the index of the first
// illegal instance (or -1 if the whole sequence is legal).
func ReplayLegal(s State, seq []Instance) (State, int) {
	for i, in := range seq {
		ret, next := s.Apply(in.Op, in.Arg)
		if !ValuesEqual(ret, in.Ret) {
			return s, i
		}
		s = next
	}
	return s, -1
}

// Legal reports whether seq is a legal sequence of dt, i.e. a member of
// L(T).
func Legal(dt DataType, seq []Instance) bool {
	_, bad := ReplayLegal(dt.Initial(), seq)
	return bad == -1
}

// LegalFrom reports whether seq is legal when executed from state s.
func LegalFrom(s State, seq []Instance) bool {
	_, bad := ReplayLegal(s, seq)
	return bad == -1
}

// Complete converts a sequence of invocations into the unique legal
// sequence of instances starting from state s (Completeness + Determinism
// guarantee existence and uniqueness).
func Complete(s State, invs []Invocation) []Instance {
	out := make([]Instance, len(invs))
	for i, iv := range invs {
		ret, next := s.Apply(iv.Op, iv.Arg)
		out[i] = Instance{Op: iv.Op, Arg: iv.Arg, Ret: ret}
		s = next
	}
	return out
}

// Response returns the unique legal return value for invoking op(arg) in
// state s.
func Response(s State, op string, arg Value) Value {
	ret, _ := s.Apply(op, arg)
	return ret
}

// Equivalent reports whether ρ1 ≡ ρ2 for data type dt: every continuation
// legal after ρ1 is legal after ρ2 and vice versa. Both sequences must be
// legal; Equivalent panics otherwise, since equivalence of illegal
// sequences is not meaningful in the paper's definitions.
func Equivalent(dt DataType, rho1, rho2 []Instance) bool {
	s1, bad1 := ReplayLegal(dt.Initial(), rho1)
	s2, bad2 := ReplayLegal(dt.Initial(), rho2)
	if bad1 != -1 {
		panic(fmt.Sprintf("spec: Equivalent called with illegal ρ1 (instance %d)", bad1))
	}
	if bad2 != -1 {
		panic(fmt.Sprintf("spec: Equivalent called with illegal ρ2 (instance %d)", bad2))
	}
	return s1.Fingerprint() == s2.Fingerprint()
}

// FormatSeq renders a sequence of instances as "op(a,r).op(a,r)...".
func FormatSeq(seq []Instance) string {
	if len(seq) == 0 {
		return "ε"
	}
	parts := make([]string, len(seq))
	for i, in := range seq {
		parts[i] = in.String()
	}
	return strings.Join(parts, ".")
}

// SortValues orders a slice of values by their formatted representation;
// useful for canonical fingerprints of set-like states.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool {
		return FormatValue(vs[i]) < FormatValue(vs[j])
	})
}
