package spec

import (
	"fmt"
	"math/rand"
)

// VerifyAxioms checks a data-type implementation against the §2.1 axioms
// and this framework's additional contracts by randomized testing:
//
//   - Determinism: identical invocation sequences yield identical
//     responses.
//   - Completeness/totality: Apply handles every sampled argument and
//     arbitrary junk arguments without panicking and returns a non-nil
//     state.
//   - Immutability: Apply never mutates the receiver state.
//   - Fingerprint soundness: states with equal fingerprints respond
//     identically to every sampled invocation.
//   - Sample coverage: every declared operation has at least one sample
//     argument.
//
// It is intended for users adding their own DataType implementations:
// call it from a test with a fixed seed. The adt package's own types are
// verified the same way.
func VerifyAxioms(dt DataType, seed int64, trials int) (err error) {
	defer func() {
		// A defective Apply (e.g. one returning a nil state that a later
		// call dereferences) surfaces as a panic; report it as a failure.
		if r := recover(); r != nil {
			err = fmt.Errorf("spec: %s panicked during verification (nil state or defective Apply?): %v",
				dt.Name(), r)
		}
	}()
	ops := dt.Ops()
	if len(ops) == 0 {
		return fmt.Errorf("spec: %s declares no operations", dt.Name())
	}
	for _, op := range ops {
		if len(op.Args) == 0 {
			return fmt.Errorf("spec: %s.%s has no sample arguments", dt.Name(), op.Name)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	randomInvs := func(length int) []Invocation {
		invs := make([]Invocation, length)
		for i := range invs {
			op := ops[rng.Intn(len(ops))]
			invs[i] = Invocation{Op: op.Name, Arg: op.Args[rng.Intn(len(op.Args))]}
		}
		return invs
	}

	type probed struct {
		state State
		fp    string
	}
	var states []probed

	for trial := 0; trial < trials; trial++ {
		invs := randomInvs(3 + rng.Intn(10))

		// Determinism.
		a := Complete(dt.Initial(), invs)
		b := Complete(dt.Initial(), invs)
		for i := range a {
			if !ValuesEqual(a[i].Ret, b[i].Ret) {
				return fmt.Errorf("spec: %s nondeterministic at %s: %v vs %v",
					dt.Name(), a[i].String(), a[i].Ret, b[i].Ret)
			}
		}
		// Completeness: the completed sequence must be legal.
		if !Legal(dt, a) {
			return fmt.Errorf("spec: %s completed sequence illegal: %s", dt.Name(), FormatSeq(a))
		}
		// Prefix Closure on the completed sequence.
		for i := 0; i <= len(a); i++ {
			if !Legal(dt, a[:i]) {
				return fmt.Errorf("spec: %s prefix of length %d illegal", dt.Name(), i)
			}
		}

		// Immutability: replay to a state, apply everything, re-check.
		s := Replay(dt.Initial(), a)
		before := s.Fingerprint()
		for _, op := range ops {
			for _, arg := range op.Args {
				if _, next := s.Apply(op.Name, arg); next == nil {
					return fmt.Errorf("spec: %s.%s(%v) returned nil state", dt.Name(), op.Name, arg)
				}
			}
		}
		if got := s.Fingerprint(); got != before {
			return fmt.Errorf("spec: %s state mutated in place: %q → %q", dt.Name(), before, got)
		}
		states = append(states, probed{s, before})

		// Totality on junk arguments.
		junk := []Value{nil, "junk", 2.5, []byte{1}, struct{ Z int }{1}}
		for _, op := range ops {
			for _, arg := range junk {
				if err := applySafely(s, op.Name, arg); err != nil {
					return fmt.Errorf("spec: %s.%s: %w", dt.Name(), op.Name, err)
				}
			}
		}
		if err := applySafely(s, "no-such-operation", 1); err != nil {
			return fmt.Errorf("spec: %s unknown op: %w", dt.Name(), err)
		}
	}

	// Fingerprint soundness across the probed states.
	for i := range states {
		for j := i + 1; j < len(states); j++ {
			if states[i].fp != states[j].fp {
				continue
			}
			for _, op := range ops {
				for _, arg := range op.Args {
					ri, _ := states[i].state.Apply(op.Name, arg)
					rj, _ := states[j].state.Apply(op.Name, arg)
					if !ValuesEqual(ri, rj) {
						return fmt.Errorf("spec: %s states with fingerprint %q disagree on %s(%v): %v vs %v",
							dt.Name(), states[i].fp, op.Name, arg, ri, rj)
					}
				}
			}
		}
	}
	return nil
}

// applySafely converts Apply panics into errors.
func applySafely(s State, op string, arg Value) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("Apply(%v) panicked: %v", arg, r)
		}
	}()
	_, next := s.Apply(op, arg)
	if next == nil {
		return fmt.Errorf("Apply(%v) returned nil state", arg)
	}
	return nil
}
