package spec

import (
	"fmt"
	"testing"
)

// toyCounter is a minimal DataType used to test the spec machinery without
// importing the adt package (which would create an import cycle in tests).
type toyCounter struct{}

func (toyCounter) Name() string { return "toy" }
func (toyCounter) Ops() []OpInfo {
	return []OpInfo{
		{Name: "inc", Args: []Value{nil}},
		{Name: "get", Args: []Value{nil}},
	}
}
func (toyCounter) Initial() State { return toyState(0) }

type toyState int

func (s toyState) Apply(op string, arg Value) (Value, State) {
	switch op {
	case "inc":
		return nil, s + 1
	case "get":
		return int(s), s
	default:
		return "error", s
	}
}
func (s toyState) Fingerprint() string { return fmt.Sprintf("toy:%d", int(s)) }

func inc() Instance      { return Instance{Op: "inc"} }
func get(v int) Instance { return Instance{Op: "get", Ret: v} }

func TestValuesEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{nil, 0, false},
		{0, nil, false},
		{1, 1, true},
		{1, 2, false},
		{"x", "x", true},
		{"x", "y", false},
		{1, "1", false},
		{true, true, true},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{2, 1}, false},
	}
	for _, c := range cases {
		if got := ValuesEqual(c.a, c.b); got != c.want {
			t.Errorf("ValuesEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFormatValue(t *testing.T) {
	if FormatValue(nil) != "⊥" {
		t.Error("nil should format as ⊥")
	}
	if FormatValue(42) != "42" {
		t.Error("int format wrong")
	}
	if FormatValue("abc") != "abc" {
		t.Error("string format wrong")
	}
}

func TestInstanceString(t *testing.T) {
	in := Instance{Op: "write", Arg: 5, Ret: nil}
	if got := in.String(); got != "write(5, ⊥)" {
		t.Errorf("String() = %q", got)
	}
}

func TestInvocationString(t *testing.T) {
	iv := Invocation{Op: "read"}
	if got := iv.String(); got != "read(⊥)" {
		t.Errorf("String() = %q", got)
	}
}

func TestLegalEmptySequence(t *testing.T) {
	if !Legal(toyCounter{}, nil) {
		t.Error("empty sequence must be legal (Prefix Closure base case)")
	}
}

func TestLegalSequences(t *testing.T) {
	dt := toyCounter{}
	cases := []struct {
		seq  []Instance
		want bool
	}{
		{[]Instance{get(0)}, true},
		{[]Instance{get(1)}, false},
		{[]Instance{inc(), get(1)}, true},
		{[]Instance{inc(), get(0)}, false},
		{[]Instance{inc(), inc(), get(2), inc(), get(3)}, true},
		{[]Instance{inc(), inc(), get(2), inc(), get(2)}, false},
	}
	for _, c := range cases {
		if got := Legal(dt, c.seq); got != c.want {
			t.Errorf("Legal(%s) = %v, want %v", FormatSeq(c.seq), got, c.want)
		}
	}
}

func TestPrefixClosure(t *testing.T) {
	// Every prefix of a legal sequence is legal.
	dt := toyCounter{}
	seq := []Instance{inc(), get(1), inc(), inc(), get(3)}
	if !Legal(dt, seq) {
		t.Fatal("base sequence should be legal")
	}
	for i := 0; i <= len(seq); i++ {
		if !Legal(dt, seq[:i]) {
			t.Errorf("prefix of length %d not legal", i)
		}
	}
}

func TestReplayLegalReportsFirstViolation(t *testing.T) {
	dt := toyCounter{}
	seq := []Instance{inc(), get(1), get(99), get(1)}
	_, bad := ReplayLegal(dt.Initial(), seq)
	if bad != 2 {
		t.Errorf("first illegal index = %d, want 2", bad)
	}
}

func TestReplayIgnoresReturns(t *testing.T) {
	dt := toyCounter{}
	// Replay applies invocations regardless of recorded (wrong) returns.
	s := Replay(dt.Initial(), []Instance{inc(), get(999), inc()})
	if s.Fingerprint() != "toy:2" {
		t.Errorf("state after replay = %s, want toy:2", s.Fingerprint())
	}
}

func TestComplete(t *testing.T) {
	dt := toyCounter{}
	invs := []Invocation{{Op: "inc"}, {Op: "get"}, {Op: "inc"}, {Op: "get"}}
	out := Complete(dt.Initial(), invs)
	want := []Instance{inc(), get(1), inc(), get(2)}
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i].Op != want[i].Op || !ValuesEqual(out[i].Ret, want[i].Ret) {
			t.Errorf("instance %d = %v, want %v", i, out[i], want[i])
		}
	}
	if !Legal(dt, out) {
		t.Error("completed sequence must be legal (Completeness)")
	}
}

func TestDeterminism(t *testing.T) {
	// Completing the same invocations twice gives identical instances.
	dt := toyCounter{}
	invs := []Invocation{{Op: "inc"}, {Op: "get"}}
	a := Complete(dt.Initial(), invs)
	b := Complete(dt.Initial(), invs)
	for i := range a {
		if !ValuesEqual(a[i].Ret, b[i].Ret) {
			t.Errorf("nondeterministic return at %d: %v vs %v", i, a[i].Ret, b[i].Ret)
		}
	}
}

func TestResponse(t *testing.T) {
	dt := toyCounter{}
	if got := Response(dt.Initial(), "get", nil); got != 0 {
		t.Errorf("Response = %v, want 0", got)
	}
}

func TestEquivalent(t *testing.T) {
	dt := toyCounter{}
	// get does not change state: ρ ≡ ρ.get.
	rho := []Instance{inc(), get(1)}
	rhoGet := []Instance{inc(), get(1), get(1)}
	if !Equivalent(dt, rho, rhoGet) {
		t.Error("appending an accessor should preserve equivalence")
	}
	// inc changes state: ρ ≢ ρ.inc.
	rhoInc := []Instance{inc(), get(1), inc()}
	if Equivalent(dt, rho, rhoInc) {
		t.Error("appending a mutator should break equivalence")
	}
}

func TestEquivalentPanicsOnIllegal(t *testing.T) {
	dt := toyCounter{}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on illegal sequence")
		}
	}()
	Equivalent(dt, []Instance{get(7)}, nil)
}

func TestLegalFrom(t *testing.T) {
	dt := toyCounter{}
	s := Replay(dt.Initial(), []Instance{inc(), inc()})
	if !LegalFrom(s, []Instance{get(2)}) {
		t.Error("get(2) should be legal from state 2")
	}
	if LegalFrom(s, []Instance{get(0)}) {
		t.Error("get(0) should be illegal from state 2")
	}
}

func TestOpNamesAndFindOp(t *testing.T) {
	dt := toyCounter{}
	names := OpNames(dt)
	if len(names) != 2 || names[0] != "inc" || names[1] != "get" {
		t.Errorf("OpNames = %v", names)
	}
	if op, ok := FindOp(dt, "inc"); !ok || op.Name != "inc" {
		t.Error("FindOp(inc) failed")
	}
	if _, ok := FindOp(dt, "nope"); ok {
		t.Error("FindOp(nope) should fail")
	}
}

func TestFormatSeq(t *testing.T) {
	if FormatSeq(nil) != "ε" {
		t.Error("empty sequence should format as ε")
	}
	got := FormatSeq([]Instance{inc(), get(1)})
	if got != "inc(⊥, ⊥).get(⊥, 1)" {
		t.Errorf("FormatSeq = %q", got)
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{3, 1, 2}
	SortValues(vs)
	if vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Errorf("SortValues = %v", vs)
	}
}
