package spec

import (
	"fmt"
	"strings"
	"testing"
)

func TestVerifyAxiomsAcceptsToyCounter(t *testing.T) {
	if err := VerifyAxioms(toyCounter{}, 1, 20); err != nil {
		t.Errorf("toy counter should pass: %v", err)
	}
}

// brokenType wraps toyCounter and injects one configurable defect.
type brokenType struct {
	defect string
}

func (b brokenType) Name() string { return "broken-" + b.defect }
func (b brokenType) Ops() []OpInfo {
	if b.defect == "no-args" {
		return []OpInfo{{Name: "inc"}}
	}
	if b.defect == "no-ops" {
		return nil
	}
	return []OpInfo{
		{Name: "inc", Args: []Value{nil}},
		{Name: "get", Args: []Value{nil}},
	}
}
func (b brokenType) Initial() State { return &brokenState{defect: b.defect} }

type brokenState struct {
	defect string
	count  int
	reads  int
}

func (s *brokenState) Apply(op string, arg Value) (Value, State) {
	switch s.defect {
	case "mutates-in-place":
		if op == "inc" {
			s.count++ // mutates the receiver!
			return nil, s
		}
		return s.count, s
	case "nondeterministic":
		if op == "get" {
			s.reads++ // reads change hidden state → different later replays
			return s.count + s.reads%2, s
		}
		next := *s
		next.count++
		return nil, &next
	case "panics":
		if _, ok := arg.(string); ok {
			panic("junk argument")
		}
		next := *s
		if op == "inc" {
			next.count++
			return nil, &next
		}
		return s.count, &next
	case "nil-state":
		return nil, nil
	default:
		next := *s
		if op == "inc" {
			next.count++
			return nil, &next
		}
		return s.count, &next
	}
}

func (s *brokenState) Fingerprint() string {
	if s.defect == "bad-fingerprint" {
		return "constant" // all states collide
	}
	return fmt.Sprintf("bs:%d", s.count)
}

func TestVerifyAxiomsCatchesDefects(t *testing.T) {
	cases := []struct {
		defect  string
		keyword string
	}{
		{"no-ops", "no operations"},
		{"no-args", "no sample arguments"},
		{"mutates-in-place", "mutated in place"},
		{"panics", "panicked"},
		{"nil-state", "nil state"}, // caught via the panic guard
		{"bad-fingerprint", "disagree"},
	}
	for _, c := range cases {
		t.Run(c.defect, func(t *testing.T) {
			err := VerifyAxioms(brokenType{defect: c.defect}, 7, 30)
			if err == nil {
				t.Fatalf("defect %q not caught", c.defect)
			}
			if !strings.Contains(err.Error(), c.keyword) {
				t.Errorf("defect %q produced %q, want mention of %q", c.defect, err, c.keyword)
			}
		})
	}
}
