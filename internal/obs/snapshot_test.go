package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lintime/internal/obs"
)

func readSnapshots(t *testing.T, path string) []obs.Snapshot {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []obs.Snapshot
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var snap obs.Snapshot
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		out = append(out, snap)
	}
	return out
}

// TestSnapshotWriterFinalFlush is the SIGINT contract: with the ticker
// disabled (interval ≤ 0), Close still writes exactly one snapshot
// carrying the registry's final state.
func TestSnapshotWriterFinalFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	r := obs.NewRegistry()
	sw, err := obs.NewSnapshotWriter(path, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	r.Counter("runs_total").Add(9)
	r.Hist("lat", 16).Add(3)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	snaps := readSnapshots(t, path)
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want exactly 1 (the Close flush)", len(snaps))
	}
	final := snaps[0]
	if final.TimeMS == 0 {
		t.Fatal("final snapshot not timestamped")
	}
	if final.Counters["runs_total"] != 9 {
		t.Fatalf("final counters: %+v", final.Counters)
	}
	if final.Hists["lat"].Count != 1 {
		t.Fatalf("final hists: %+v", final.Hists)
	}
}

// TestSnapshotWriterPeriodic lets the ticker run and checks the file
// accumulates interval lines before the final flush, monotone in time
// and counter value.
func TestSnapshotWriterPeriodic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	r := obs.NewRegistry()
	c := r.Counter("ticks_total")
	sw, err := obs.NewSnapshotWriter(path, 10*time.Millisecond, r)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.Inc()
		if len(readSnapshots(t, path)) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	snaps := readSnapshots(t, path)
	if len(snaps) < 3 { // ≥ 2 ticks + the Close flush
		t.Fatalf("got %d snapshots, want at least 3", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].TimeMS < snaps[i-1].TimeMS {
			t.Fatalf("snapshot %d went back in time: %d < %d", i, snaps[i].TimeMS, snaps[i-1].TimeMS)
		}
		if snaps[i].Counters["ticks_total"] < snaps[i-1].Counters["ticks_total"] {
			t.Fatalf("counter not monotone across snapshots %d..%d", i-1, i)
		}
	}
}

func TestSnapshotWriterBadPath(t *testing.T) {
	if _, err := obs.NewSnapshotWriter(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl"), 0); err == nil {
		t.Fatal("expected error for uncreatable path")
	}
}
