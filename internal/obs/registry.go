package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named-metric namespace. Names follow the Prometheus
// convention and may carry a label set inline:
//
//	serve_ops_total
//	serve_class_latency_ticks{class="AOP"}
//
// Instruments are get-or-create: the first call for a name fixes its kind
// and later calls return the same instrument (a mismatched kind panics —
// that is a programming error, not an operational condition). Hot paths
// fetch instruments once at construction and hold the pointer; the
// registry lock is only taken at creation and snapshot time.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	maxes    map[string]*Max
	hists    map[string]*Hist
	funcs    map[string]func() int64
}

// Default is the process-wide registry. Package-level instruments (the
// harness run counter, the adversary campaign counters) live here;
// per-server metrics get their own registry so concurrent servers in one
// process never share instruments.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		maxes:    map[string]*Max{},
		hists:    map[string]*Hist{},
		funcs:    map[string]func() int64{},
	}
}

// WithLabel inserts one label pair into an instrument name, composing
// with labels the name already carries:
//
//	WithLabel("serve_calls_total", "shard", "2")
//	        → serve_calls_total{shard="2"}
//	WithLabel(`serve_latency_ticks{class="AOP"}`, "shard", "2")
//	        → serve_latency_ticks{shard="2",class="AOP"}
//
// The sharded serving layer uses it to give each shard's registry a
// disjoint namespace, so merging every shard into one /metrics endpoint
// never collides.
func WithLabel(name, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i+1] + pair + "," + name[i+1:]
	}
	return name + "{" + pair + "}"
}

// checkKind panics when name is already registered under a different
// instrument kind.
func (r *Registry) checkKind(name, want string) {
	kinds := []struct {
		kind string
		ok   bool
	}{
		{"counter", r.counters[name] != nil},
		{"gauge", r.gauges[name] != nil},
		{"max", r.maxes[name] != nil},
		{"hist", r.hists[name] != nil},
		{"func", r.funcs[name] != nil},
	}
	for _, k := range kinds {
		if k.ok && k.kind != want {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s (want %s)", name, k.kind, want))
		}
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkKind(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkKind(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Max returns the named high-water-mark gauge, creating it if needed.
func (r *Registry) Max(name string) *Max {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.maxes[name]; ok {
		return m
	}
	r.checkKind(name, "max")
	m := &Max{}
	r.maxes[name] = m
	return m
}

// Hist returns the named histogram, creating it with the given bucket
// limit if needed (limit ≤ 0 selects DefaultHistLimit; the limit of an
// existing histogram is not changed).
func (r *Registry) Hist(name string, limit int) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkKind(name, "hist")
	h := NewHist(limit)
	r.hists[name] = h
	return h
}

// GaugeFunc registers a callback sampled at snapshot time (queue depths,
// map sizes — values that already exist and should not be double-counted
// into a stored gauge). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "func")
	r.funcs[name] = f
}

// Snapshot is a point-in-time reading of one or more registries, the
// JSON document served at /metrics.json and written to JSONL snapshot
// files. Maps marshal with sorted keys, so the encoding is byte-stable
// for fixed values.
type Snapshot struct {
	TimeMS   int64                  `json:"t_ms,omitempty"`
	Counters map[string]int64       `json:"counters,omitempty"`
	Gauges   map[string]int64       `json:"gauges,omitempty"`
	Hists    map[string]HistSummary `json:"hists,omitempty"`
}

// Snapshot reads every instrument. Gauge callbacks run while the registry
// lock is held; they must not re-enter the registry.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSummary{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, m := range r.maxes {
		snap.Gauges[name] = m.Value()
	}
	for name, f := range r.funcs {
		snap.Gauges[name] = f()
	}
	for name, h := range r.hists {
		snap.Hists[name] = h.Summary()
	}
	return snap
}

// TakeSnapshot merges the snapshots of several registries (later
// registries win on a name collision; callers keep namespaces disjoint).
func TakeSnapshot(regs ...*Registry) Snapshot {
	merged := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSummary{},
	}
	for _, r := range regs {
		if r == nil {
			continue
		}
		s := r.Snapshot()
		for k, v := range s.Counters {
			merged.Counters[k] = v
		}
		for k, v := range s.Gauges {
			merged.Gauges[k] = v
		}
		for k, v := range s.Hists {
			merged.Hists[k] = v
		}
	}
	return merged
}

// Flatten renders the snapshot as a benchjson ledger side: metric name →
// {submetric → value}. Counters and gauges flatten to {"value": v};
// histograms to their summary fields. `cmd/benchjson -snapshots` folds
// the last line of a JSONL snapshot file through this shape into a
// ledger.
func (s Snapshot) Flatten() map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for k, v := range s.Counters {
		out[k] = map[string]float64{"value": float64(v)}
	}
	for k, v := range s.Gauges {
		out[k] = map[string]float64{"value": float64(v)}
	}
	for k, h := range s.Hists {
		out[k] = map[string]float64{
			"count": float64(h.Count), "min": float64(h.Min), "p50": float64(h.P50),
			"p95": float64(h.P95), "p99": float64(h.P99), "max": float64(h.Max),
			"mean": float64(h.Mean), "sum": float64(h.Sum),
		}
	}
	return out
}

// SplitName separates an inline label set from a metric name:
// `lat{class="AOP"}` → ("lat", `class="AOP"`). Names without labels
// return an empty label string.
func SplitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// Label extracts one label value from a metric name with inline labels,
// or "" when absent: Label(`lat{class="AOP"}`, "class") → "AOP".
func Label(name, key string) string {
	_, labels := SplitName(name)
	for _, part := range strings.Split(labels, ",") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		if strings.TrimSpace(part[:eq]) != key {
			continue
		}
		v := strings.TrimSpace(part[eq+1:])
		return strings.Trim(v, `"`)
	}
	return ""
}

// sortedKeys returns the sorted key set of any of the snapshot maps.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
