package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// finish runs one complete root span through c: invoke at start,
// respond at end.
func finish(c *Collector, proc int32, span int64, op string, start, end int64) {
	c.OpStart(proc, span, op, start)
	c.OpEnd(proc, span, end)
}

func TestTermString(t *testing.T) {
	want := map[Term]string{
		TermXWait:          "x_wait",
		TermNetDelay:       "net_delay",
		TermBatchResidency: "batch_residency",
		TermQueue:          "queue",
		TermExec:           "exec",
		TermSkewAdjust:     "skew_adjust",
	}
	for term, name := range want {
		if got := term.String(); got != name {
			t.Errorf("Term(%d).String() = %q, want %q", term, got, name)
		}
	}
	if got := Term(42).String(); got != "Term(42)" {
		t.Errorf("unknown term = %q", got)
	}
}

func TestAttributionSum(t *testing.T) {
	a := Attribution{1, 2, 3, 4, 5, -6}
	if got := a.Sum(); got != 9 {
		t.Errorf("Sum() = %d, want 9", got)
	}
}

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector(8)
	if got := c.CurrentSpan(0); got != -1 {
		t.Fatalf("CurrentSpan before any op = %d, want -1", got)
	}
	c.OpStartCtx(0, 1, 77, "enqueue", 10)
	if got := c.CurrentSpan(0); got != 1 {
		t.Fatalf("CurrentSpan mid-op = %d, want 1", got)
	}
	c.Event(1, StageBroadcast, 0, 11)
	c.Deliver(1, 2, 15, 11, 3) // peer-side delivery with batch residency
	c.Child(0, -100, 1, "query", 12)
	c.ChildEnd(0, -100, 14)
	c.ChildEnd(0, 1, 15) // root span: only OpEnd may complete it
	c.OpEnd(0, 1, 20)
	if got := c.CurrentSpan(0); got != -1 {
		t.Fatalf("CurrentSpan after respond = %d, want -1", got)
	}
	if got := c.Completed(); got != 1 {
		t.Fatalf("Completed() = %d, want 1", got)
	}
	trees := c.Trees()
	if len(trees) != 1 {
		t.Fatalf("Trees() returned %d trees, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Span != 1 || tr.Parent != 77 || tr.Op != "enqueue" || tr.Proc != 0 {
		t.Errorf("root identity = %+v", tr)
	}
	if tr.Start != 10 || tr.End != 20 {
		t.Errorf("root window = [%d, %d], want [10, 20]", tr.Start, tr.End)
	}
	// invoke, broadcast, deliver, respond.
	if len(tr.Events) != 4 {
		t.Fatalf("root has %d events, want 4: %+v", len(tr.Events), tr.Events)
	}
	if tr.Events[0].Stage != StageInvoke || tr.Events[len(tr.Events)-1].Stage != StageRespond {
		t.Errorf("events not invoke-first respond-last: %+v", tr.Events)
	}
	del := tr.Events[2]
	if del.Stage != StageDeliver || del.Sent != 11 || del.Residency != 3 {
		t.Errorf("delivery annotations lost: %+v", del)
	}
	if len(tr.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(tr.Children))
	}
	ch := tr.Children[0]
	if ch.Span != -100 || ch.Parent != 1 || ch.Op != "query" || ch.Start != 12 || ch.End != 14 {
		t.Errorf("child = %+v", ch)
	}
}

func TestCollectorFlatOpStartHasNoParent(t *testing.T) {
	c := NewCollector(2)
	finish(c, 0, 5, "peek", 0, 3)
	if trees := c.Trees(); trees[0].Parent != -1 {
		t.Errorf("flat OpStart parent = %d, want -1", trees[0].Parent)
	}
}

func TestCollectorDefaultCapacity(t *testing.T) {
	c := NewCollector(0)
	if len(c.done) != 256 {
		t.Errorf("default capacity = %d, want 256", len(c.done))
	}
}

// TestCollectorRingWrap pins the flight-recorder semantics: the ring
// keeps the last capacity completed trees oldest-first, overwritten
// trees count as dropped, and their spans leave the index (late events
// for them are discarded, attribution refuses them).
func TestCollectorRingWrap(t *testing.T) {
	c := NewCollector(2)
	finish(c, 0, 1, "a", 0, 1)
	finish(c, 0, 2, "b", 2, 3)
	finish(c, 0, 3, "c", 4, 5)
	trees := c.Trees()
	if len(trees) != 2 || trees[0].Span != 2 || trees[1].Span != 3 {
		t.Fatalf("retained spans = %v, want [2 3] oldest first", []any{trees})
	}
	if got := c.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
	if got := c.Completed(); got != 3 {
		t.Errorf("Completed() = %d, want 3", got)
	}
	// Span 1 was evicted from the index: late events vanish, attribution
	// refuses it.
	c.Event(1, StageDeliver, 1, 9)
	if _, ok := c.Attribute(1, "MOP", 0, AttrParams{}); ok {
		t.Error("Attribute succeeded on an evicted span")
	}
	for _, tr := range c.Trees() {
		for _, ev := range tr.Events {
			if ev.Span == 1 {
				t.Errorf("late event for evicted span landed on %+v", tr)
			}
		}
	}
}

// Ring overwrite must also evict the overwritten tree's children from
// the index, or a long run leaks one entry per phase span.
func TestCollectorRingWrapEvictsChildren(t *testing.T) {
	c := NewCollector(1)
	c.OpStart(0, 1, "read", 0)
	c.Child(0, -1000, 1, "query", 1)
	c.ChildEnd(0, -1000, 2)
	c.OpEnd(0, 1, 3)
	finish(c, 0, 2, "read", 4, 5) // overwrites span 1's slot
	c.mu.Lock()
	_, rootIndexed := c.index[1]
	_, childIndexed := c.index[-1000]
	c.mu.Unlock()
	if rootIndexed || childIndexed {
		t.Errorf("overwritten tree still indexed: root=%v child=%v", rootIndexed, childIndexed)
	}
}

// TestCollectorLiveBound pins open-set eviction: opening more roots
// than the ring capacity evicts the oldest open root (and its
// children) so a crashed owner cannot pin memory forever.
func TestCollectorLiveBound(t *testing.T) {
	c := NewCollector(2)
	c.OpStart(0, 1, "a", 0)
	c.Child(0, -10, 1, "query", 1)
	c.OpStart(1, 2, "b", 2)
	c.OpStart(2, 3, "c", 4) // evicts span 1 and its child
	if got := c.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
	c.Event(1, StageDeliver, 0, 5) // span 1 gone: dropped silently
	c.Event(-10, StageTimer, 0, 5) // its child too
	c.OpEnd(0, 1, 6)               // completing an evicted span: no-op
	if got := c.Completed(); got != 0 {
		t.Errorf("Completed() = %d after evicted-span OpEnd, want 0", got)
	}
	c.OpEnd(1, 2, 7)
	c.OpEnd(2, 3, 8)
	if trees := c.Trees(); len(trees) != 2 {
		t.Errorf("retained %d trees, want 2", len(trees))
	}
}

// Late peer events and straggler phase completions must land on the
// retained completed tree, not vanish: a mutator's broadcast outlives
// its X-wait, and a quorum phase's last ack can arrive after the
// coordinator responded.
func TestCollectorLateEventsAfterComplete(t *testing.T) {
	c := NewCollector(4)
	c.OpStart(0, 1, "write", 0)
	c.Child(0, -1, 1, "write_back", 2)
	c.OpEnd(0, 1, 5)
	// All of these arrive after the root completed.
	c.Deliver(1, 2, 7, 0, 0)     // broadcast landing on a peer
	c.Child(0, -2, 1, "late", 8) // a phase opened on a done root
	c.ChildEnd(0, -1, 9)         // straggler phase completion
	c.ChildEnd(0, -2, 10)
	c.ChildEnd(0, 99, 11) // unknown child: dropped
	c.ChildEnd(0, 1, 12)  // root span: ChildEnd must not touch it
	tr := c.Trees()[0]
	if tr.End != 5 {
		t.Fatalf("root End = %d after late events, want 5", tr.End)
	}
	if n := len(tr.Events); n != 3 { // invoke, respond, late deliver
		t.Fatalf("root has %d events, want 3: %+v", n, tr.Events)
	}
	if len(tr.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(tr.Children))
	}
	for _, ch := range tr.Children {
		if ch.End < 0 {
			t.Errorf("child %d not completed: %+v", ch.Span, ch)
		}
	}
}

func TestCollectorUnknownSpansDropped(t *testing.T) {
	c := NewCollector(2)
	c.Event(42, StageBroadcast, 0, 1)
	c.Deliver(42, 0, 2, 1, 0)
	c.Child(0, -5, 42, "query", 3)
	c.OpEnd(0, 42, 4)
	if got := c.Completed(); got != 0 {
		t.Errorf("Completed() = %d, want 0", got)
	}
	if len(c.Trees()) != 0 {
		t.Error("unknown spans produced trees")
	}
}

// attributionCase runs one synthetic owner timeline through Attribute.
func attributionCase(t *testing.T, class string, p AttrParams, want Attribution) {
	t.Helper()
	c := NewCollector(4)
	c.OpStartCtx(0, 1, -1, "op", 2)  // queue: submit 0 → handled 2
	c.Event(1, StageBroadcast, 0, 3) // exec 1
	c.Deliver(1, 0, 10, 3, 2)        // dt 7: residency 2, flight 5
	c.Deliver(1, 1, 12, 3, 0)        // peer-side: not on owner timeline
	c.Event(1, StageTimer, 0, 18)    // wait 8
	c.OpEnd(0, 1, 20)                // exec 2
	c.Deliver(1, 0, 25, 20, 0)       // own echo after respond: ignored
	a, ok := c.Attribute(1, class, 0, p)
	if !ok {
		t.Fatal("Attribute refused a retained complete root")
	}
	if a != want {
		t.Errorf("class %q attribution = %v, want %v", class, a, want)
	}
	if got := a.Sum(); got != 20 {
		t.Errorf("class %q terms sum to %d, want measured latency 20", class, got)
	}
}

func TestAttributeSplitsWaitByClass(t *testing.T) {
	// Timeline totals: queue 2, exec 3, residency 2, flight 5, wait 8.
	attributionCase(t, "MOP", AttrParams{D: 20, X: 5},
		Attribution{TermXWait: 5, TermNetDelay: 5, TermBatchResidency: 2,
			TermQueue: 2, TermExec: 3, TermSkewAdjust: 3})
	attributionCase(t, "AOP", AttrParams{D: 6, X: 2}, // deliberate d−X = 4
		Attribution{TermNetDelay: 9, TermBatchResidency: 2,
			TermQueue: 2, TermExec: 3, TermSkewAdjust: 4})
	// Unclassified: the whole wait is capped network stabilization.
	attributionCase(t, "OOP", AttrParams{D: 100, X: 5},
		Attribution{TermNetDelay: 13, TermBatchResidency: 2,
			TermQueue: 2, TermExec: 3})
	// AOP with X > d: the formula's d−X goes negative and clamps to 0.
	attributionCase(t, "AOP", AttrParams{D: 2, X: 5},
		Attribution{TermNetDelay: 5, TermBatchResidency: 2,
			TermQueue: 2, TermExec: 3, TermSkewAdjust: 8})
}

func TestAttributeNoTimerMeansNoDeliberateWait(t *testing.T) {
	// Quorum-style op: no stabilization timer ever fires, so nothing is
	// attributed to the deliberate-wait terms even for a mutator class.
	c := NewCollector(2)
	c.OpStart(0, 1, "write", 0)
	c.Deliver(1, 0, 5, 0, 0)
	c.OpEnd(0, 1, 8)
	a, ok := c.Attribute(1, "MOP", 0, AttrParams{D: 4, X: 3})
	if !ok {
		t.Fatal("Attribute refused")
	}
	want := Attribution{TermNetDelay: 5, TermExec: 3}
	if a != want {
		t.Errorf("attribution = %v, want %v", a, want)
	}
}

func TestAttributeResidencyClamps(t *testing.T) {
	c := NewCollector(2)
	c.OpStart(0, 1, "op", 0)
	c.Deliver(1, 0, 3, 0, 10) // residency exceeds the interval: clamp to dt
	c.Deliver(1, 0, 5, 3, -4) // negative residency: clamp to 0
	c.OpEnd(0, 1, 5)
	a, ok := c.Attribute(1, "OOP", 0, AttrParams{D: 0})
	if !ok {
		t.Fatal("Attribute refused")
	}
	want := Attribution{TermBatchResidency: 3, TermNetDelay: 2}
	if a != want {
		t.Errorf("attribution = %v, want %v", a, want)
	}
}

func TestAttributeRefusals(t *testing.T) {
	c := NewCollector(4)
	if _, ok := c.Attribute(1, "MOP", 0, AttrParams{}); ok {
		t.Error("unknown span attributed")
	}
	c.OpStart(0, 1, "op", 0)
	if _, ok := c.Attribute(1, "MOP", 0, AttrParams{}); ok {
		t.Error("open span attributed")
	}
	c.Child(0, -7, 1, "query", 1)
	c.OpEnd(0, 1, 2)
	c.ChildEnd(0, -7, 3)
	if _, ok := c.Attribute(-7, "MOP", 0, AttrParams{}); ok {
		t.Error("child span attributed as a root")
	}
	if _, ok := c.Attribute(1, "MOP", 0, AttrParams{}); !ok {
		t.Error("completed root refused")
	}
}

// Trees must return deep clones in canonical order: sharing memory with
// the collector would race live appends, and nondeterministic event
// order would break golden exports.
func TestTreesClonesCanonical(t *testing.T) {
	c := NewCollector(2)
	c.OpStart(1, 1, "op", 0)
	// Same tick on two processes: canonical order sorts by proc.
	c.Deliver(1, 2, 4, 0, 0)
	c.Deliver(1, 0, 4, 0, 0)
	// Children starting at the same tick sort by descending span.
	c.Child(1, -1, 1, "query", 5)
	c.Child(1, -2, 1, "write_back", 5)
	c.OpEnd(1, 1, 9)
	tr := c.Trees()[0]
	if tr.Events[1].Proc != 0 || tr.Events[2].Proc != 2 {
		t.Errorf("same-tick events not proc-ordered: %+v", tr.Events)
	}
	if tr.Children[0].Span != -1 || tr.Children[1].Span != -2 {
		t.Errorf("same-start children not span-ordered: %+v", tr.Children)
	}
	// Mutating the clone must not reach the collector.
	tr.Events[0].Time = 999
	if c.Trees()[0].Events[0].Time == 999 {
		t.Error("Trees returned shared memory")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector(4)
	c.OpStartCtx(0, 1, 42, "enqueue", 10)
	c.Event(1, StageBroadcast, 0, 11)
	c.Deliver(1, 1, 15, 11, 3)
	c.Deliver(1, 2, 14, 0, 0) // sent 0: no delivery args
	c.Child(0, -1, 1, "query", 12)
	c.ChildEnd(0, -1, 16)
	c.OpEnd(0, 1, 20)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c.Trees()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   *int64         `json:"dur"`
			TID   int64          `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, instants, deliverArgs int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			slices++
			if ev.Dur == nil {
				t.Errorf("slice %q missing dur", ev.Name)
			}
			if ev.Name == "enqueue" && (ev.TS != 10 || *ev.Dur != 10 || ev.Cat != "op") {
				t.Errorf("root slice wrong: %+v", ev)
			}
			if ev.Name == "query" && ev.Cat != "phase" {
				t.Errorf("child slice cat = %q, want phase", ev.Cat)
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
			if ev.Name == "invoke" || ev.Name == "respond" {
				t.Errorf("endpoint waypoint %q emitted as instant", ev.Name)
			}
			if _, ok := ev.Args["sent"]; ok {
				deliverArgs++
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if slices != 2 {
		t.Errorf("slices = %d, want 2 (root + child)", slices)
	}
	if instants != 3 {
		t.Errorf("instants = %d, want 3 (broadcast + 2 delivers)", instants)
	}
	if deliverArgs != 1 {
		t.Errorf("delivery-annotated instants = %d, want 1", deliverArgs)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, c.Trees()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteChromeTrace output is not deterministic")
	}
}
