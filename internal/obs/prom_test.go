package obs_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"lintime/internal/obs"
)

// fixedSnapshot builds a registry with one of everything, using the real
// metric names the serving layer registers, so the golden below doubles
// as documentation of the exposition format.
func fixedRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("serve_calls_total").Add(12)
	r.Counter(`rtnet_messages_delivered_total`).Add(36)
	r.Gauge("serve_inflight_ops").Set(2)
	r.Max("rtnet_inbox_depth_max").Observe(5)
	h := r.Hist(`serve_latency_ticks{class="AOP"}`, 16)
	for _, v := range []int64{1, 2, 3, 4} {
		h.Add(v)
	}
	h2 := r.Hist(`serve_latency_ticks{class="MOP"}`, 16)
	h2.Add(7)
	return r
}

// TestWritePrometheusGolden pins the exact text exposition: sorted
// families, # TYPE lines once per family, labelled summary series with
// contiguous families, companion _min/_max gauges.
func TestWritePrometheusGolden(t *testing.T) {
	snap := obs.TakeSnapshot(fixedRegistry())
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, snap); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE rtnet_messages_delivered_total counter
rtnet_messages_delivered_total 36
# TYPE serve_calls_total counter
serve_calls_total 12
# TYPE rtnet_inbox_depth_max gauge
rtnet_inbox_depth_max 5
# TYPE serve_inflight_ops gauge
serve_inflight_ops 2
# TYPE serve_latency_ticks summary
serve_latency_ticks{class="AOP",quantile="0.5"} 2
serve_latency_ticks{class="AOP",quantile="0.95"} 4
serve_latency_ticks{class="AOP",quantile="0.99"} 4
serve_latency_ticks{class="MOP",quantile="0.5"} 7
serve_latency_ticks{class="MOP",quantile="0.95"} 7
serve_latency_ticks{class="MOP",quantile="0.99"} 7
serve_latency_ticks_sum{class="AOP"} 10
serve_latency_ticks_sum{class="MOP"} 7
serve_latency_ticks_count{class="AOP"} 4
serve_latency_ticks_count{class="MOP"} 1
# TYPE serve_latency_ticks_min gauge
serve_latency_ticks_min{class="AOP"} 1
serve_latency_ticks_min{class="MOP"} 7
# TYPE serve_latency_ticks_max gauge
serve_latency_ticks_max{class="AOP"} 4
serve_latency_ticks_max{class="MOP"} 7
`
	if got := sb.String(); got != want {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(obs.Handler(fixedRegistry()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type: %q", ct)
	}
	for _, series := range []string{
		"serve_calls_total 12",
		`serve_latency_ticks{class="AOP",quantile="0.99"} 4`,
		"# TYPE serve_latency_ticks summary",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q in:\n%s", series, body)
		}
	}
}

func TestHandlerMetricsJSONRoundTrip(t *testing.T) {
	srv := httptest.NewServer(obs.Handler(fixedRegistry()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.TimeMS == 0 {
		t.Fatal("snapshot not stamped with wall-clock time")
	}
	if snap.Counters["serve_calls_total"] != 12 {
		t.Fatalf("counters did not round-trip: %+v", snap.Counters)
	}
	if h := snap.Hists[`serve_latency_ticks{class="AOP"}`]; h.Count != 4 || h.P99 != 4 {
		t.Fatalf("hist summary did not round-trip: %+v", h)
	}
}

// TestHandlerDebugVars asserts /debug/vars is valid JSON carrying both
// the standard expvar keys and the snapshot under "lintime" — the format
// expvar-aware collectors expect.
func TestHandlerDebugVars(t *testing.T) {
	srv := httptest.NewServer(obs.Handler(fixedRegistry()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	for _, key := range []string{"memstats", "lintime"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/debug/vars missing %q (have %d keys)", key, len(doc))
		}
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(doc["lintime"], &snap); err != nil {
		t.Fatalf(`"lintime" value is not a snapshot: %v`, err)
	}
	if snap.Counters["serve_calls_total"] != 12 {
		t.Fatalf("snapshot under lintime wrong: %+v", snap.Counters)
	}
}

func TestHandlerIndexAndNotFound(t *testing.T) {
	srv := httptest.NewServer(obs.Handler(fixedRegistry()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/metrics.json") {
		t.Fatalf("index page does not list endpoints:\n%s", body)
	}
	resp, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path: got %d, want 404", resp.StatusCode)
	}
}
