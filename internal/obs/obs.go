// Package obs is the repository's zero-dependency observability core:
// sharded atomic counters, gauges, high-water marks, fixed-bucket latency
// histograms with exact quantiles, a named-metric registry with
// Prometheus/expvar/JSON exposition, a periodic JSONL snapshot writer,
// and lightweight span tracing that follows one operation through the
// simulator or the real-time substrate.
//
// Everything here is stdlib-only and built for hot paths: recording a
// sample is a handful of atomic operations, instruments are plain struct
// pointers the instrumented code captures once (never a map lookup per
// event), and the span tracer has a Nop implementation so untraced runs
// pay a single predictable branch. The paper's whole contribution is
// latency accounting — |AOP| = d−X+ε, |MOP| = X+ε, |OOP| = d+ε — and this
// package is what lets a live cluster be held to those formulas while it
// runs, instead of only in post-hoc load reports.
package obs

import (
	"sync/atomic"
	"unsafe"
)

// nShards is the stripe count of a Counter. Fixed at a small power of two:
// enough stripes that concurrent writers on a many-core box rarely collide
// on a cache line, small enough that reading a counter stays trivial.
const nShards = 32

// stripe is one cache-line-padded counter shard. 64-byte alignment keeps
// two stripes from sharing a line, which is the entire point of striping.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks
// live at distinct addresses, so folding the address of a stack variable
// into the index spreads concurrent writers across stripes without any
// per-goroutine state or runtime hooks. The pointer never escapes — it is
// only folded into an integer — so the probe costs nothing.
func shardIndex() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((p>>10)^(p>>16)) & (nShards - 1)
}

// Counter is a monotonically increasing, write-striped counter. Adds from
// different goroutines usually land on different cache lines; Value folds
// the stripes. The zero value is ready to use.
type Counter struct {
	shards [nShards]stripe
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (callers keep deltas non-negative; a Counter is
// monotone by convention, which the Prometheus exposition relies on).
func (c *Counter) Add(delta int64) { c.shards[shardIndex()].v.Add(delta) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a last-write-wins instantaneous value. The zero value is ready
// to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (e.g. in-flight tracking).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max is a high-water-mark gauge: Observe keeps the largest value seen.
// The zero value reports 0 until the first observation.
type Max struct {
	v atomic.Int64
}

// Observe raises the mark to v if v is larger.
func (m *Max) Observe(v int64) {
	for {
		cur := m.v.Load()
		if v <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark.
func (m *Max) Value() int64 { return m.v.Load() }
