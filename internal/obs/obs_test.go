package obs_test

import (
	"sync"
	"testing"

	"lintime/internal/obs"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// asserts nothing is lost: the striped shards must still sum exactly.
// Run under -race this also proves the fast path is race-free.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 32, 10_000
	var c obs.Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d, want %d", got, goroutines*perG)
	}
	c.Add(-5)
	if got := c.Value(); got != goroutines*perG-5 {
		t.Fatalf("Add(-5): got %d", got)
	}
}

// TestGaugeAndMaxConcurrent exercises Gauge set/add and Max observe
// under contention; Max must converge to the true maximum.
func TestGaugeAndMaxConcurrent(t *testing.T) {
	const goroutines = 16
	var g obs.Gauge
	var m obs.Max
	var wg sync.WaitGroup
	for i := 1; i <= goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Add(1)
			for v := 0; v <= i*100; v++ {
				m.Observe(int64(v))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines {
		t.Fatalf("gauge: got %d, want %d", got, goroutines)
	}
	if got := m.Value(); got != goroutines*100 {
		t.Fatalf("max: got %d, want %d", got, goroutines*100)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge Set(-7): got %d", got)
	}
	// Observing a smaller value never lowers the watermark.
	m.Observe(1)
	if got := m.Value(); got != goroutines*100 {
		t.Fatalf("max lowered by smaller observe: got %d", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := obs.NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("Counter did not return the same instrument for one name")
	}
	h1 := r.Hist("lat", 64)
	h2 := r.Hist("lat", 999) // limit of an existing hist is ignored
	if h1 != h2 {
		t.Fatal("Hist did not return the same instrument for one name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestSnapshotMergeAndFlatten(t *testing.T) {
	a := obs.NewRegistry()
	b := obs.NewRegistry()
	a.Counter("runs_total").Add(3)
	a.Gauge("depth").Set(7)
	a.Max("peak").Observe(11)
	a.GaugeFunc("live", func() int64 { return 42 })
	b.Counter("other_total").Inc()
	h := b.Hist("lat", 16)
	h.Add(4)
	h.Add(8)

	snap := obs.TakeSnapshot(a, b)
	if snap.Counters["runs_total"] != 3 || snap.Counters["other_total"] != 1 {
		t.Fatalf("merged counters wrong: %+v", snap.Counters)
	}
	if snap.Gauges["depth"] != 7 || snap.Gauges["peak"] != 11 || snap.Gauges["live"] != 42 {
		t.Fatalf("merged gauges wrong (maxes and funcs fold in): %+v", snap.Gauges)
	}
	if hs := snap.Hists["lat"]; hs.Count != 2 || hs.Min != 4 || hs.Max != 8 {
		t.Fatalf("hist summary wrong: %+v", snap.Hists["lat"])
	}

	flat := snap.Flatten()
	if flat["runs_total"]["value"] != 3 {
		t.Fatalf("flatten counter: %+v", flat["runs_total"])
	}
	if flat["lat"]["p99"] != 8 || flat["lat"]["count"] != 2 {
		t.Fatalf("flatten hist: %+v", flat["lat"])
	}
}

func TestSplitNameAndLabel(t *testing.T) {
	base, labels := obs.SplitName(`serve_latency_ticks{class="AOP"}`)
	if base != "serve_latency_ticks" || labels != `class="AOP"` {
		t.Fatalf("SplitName: got %q %q", base, labels)
	}
	if got := obs.Label(`serve_latency_ticks{class="AOP"}`, "class"); got != "AOP" {
		t.Fatalf("Label: got %q", got)
	}
	base, labels = obs.SplitName("plain_name")
	if base != "plain_name" || labels != "" {
		t.Fatalf("SplitName plain: got %q %q", base, labels)
	}
	if got := obs.Label("plain_name", "class"); got != "" {
		t.Fatalf("Label on unlabelled name: got %q", got)
	}
}
