package obs_test

import (
	"math/rand"
	"sync"
	"testing"

	"lintime/internal/histio"
	"lintime/internal/obs"
	"lintime/internal/simtime"
)

// TestHistMatchesHistio cross-checks the fixed-bucket histogram against
// the exact-sample histio implementation — the repo's quantile
// convention — for in-range integer samples. With one bucket per tick
// value there is no binning error, so every summary field must agree
// exactly.
func TestHistMatchesHistio(t *testing.T) {
	const limit = 256
	rng := rand.New(rand.NewSource(1))
	h := obs.NewHist(limit)
	oracle := &histio.Histogram{}
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(limit)
		h.Add(v)
		oracle.Add(simtime.Duration(v))
	}
	got := h.Summary()
	want := oracle.Summary()
	if got.Count != int64(want.Count) || got.Min != want.Min || got.Max != want.Max ||
		got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 ||
		got.Mean != want.Mean {
		t.Fatalf("summary mismatch:\n got %+v\nwant count=%d min=%d p50=%d p95=%d p99=%d max=%d mean=%d",
			got, want.Count, want.Min, want.P50, want.P95, want.P99, want.Max, want.Mean)
	}
}

// TestHistBucketBoundaries pins the exact bucket-edge behavior: 0 and
// limit-1 are in range, limit and above land in the overflow bucket but
// still report exact max, negatives clamp to 0.
func TestHistBucketBoundaries(t *testing.T) {
	const limit = 8
	h := obs.NewHist(limit)
	for _, v := range []int64{0, limit - 1, limit, limit + 100, -3} {
		h.Add(v)
	}
	s := h.Summary()
	if s.Count != 5 {
		t.Fatalf("count: got %d, want 5", s.Count)
	}
	if s.Min != 0 {
		t.Fatalf("min: got %d, want 0 (negative clamps to 0)", s.Min)
	}
	if s.Max != limit+100 {
		t.Fatalf("max: got %d, want %d (overflow keeps exact max)", s.Max, limit+100)
	}
	// Ranks: sorted clamped samples are [0, 0, 7, 8+, 8+]. The nearest-rank
	// median (rank 3 of 5) is 7; p95/p99 (rank 5) fall in the overflow
	// bucket, which reports the exact observed maximum.
	if s.P50 != limit-1 {
		t.Fatalf("p50: got %d, want %d", s.P50, limit-1)
	}
	if s.P99 != limit+100 {
		t.Fatalf("p99: got %d, want %d", s.P99, limit+100)
	}
}

func TestHistEmpty(t *testing.T) {
	h := obs.NewHist(16)
	s := h.Summary()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not all-zero: %+v", s)
	}
}

// TestHistConcurrent hammers Add from many goroutines; under -race this
// validates the lock-free publication order (count is incremented last).
func TestHistConcurrent(t *testing.T) {
	const goroutines, perG = 16, 5_000
	h := obs.NewHist(64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Add(int64((g*perG + i) % 64))
			}
		}()
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != goroutines*perG {
		t.Fatalf("count: got %d, want %d", s.Count, goroutines*perG)
	}
	if s.Min != 0 || s.Max != 63 {
		t.Fatalf("extrema: got min=%d max=%d, want 0/63", s.Min, s.Max)
	}
}
