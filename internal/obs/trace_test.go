package obs_test

import (
	"testing"

	"lintime/internal/obs"
)

func TestStageString(t *testing.T) {
	want := map[obs.Stage]string{
		obs.StageInvoke:    "invoke",
		obs.StageBroadcast: "broadcast",
		obs.StageDeliver:   "deliver",
		obs.StageTimer:     "timer",
		obs.StageRespond:   "respond",
		obs.Stage(99):      "Stage(99)",
	}
	for stage, s := range want {
		if got := stage.String(); got != s {
			t.Fatalf("Stage(%d).String(): got %q, want %q", stage, got, s)
		}
	}
}

func TestIsNop(t *testing.T) {
	if !obs.IsNop(nil) || !obs.IsNop(obs.Nop) {
		t.Fatal("nil and Nop must both be nop")
	}
	if obs.IsNop(obs.NewRing(8)) {
		t.Fatal("Ring reported as nop")
	}
}

// TestRingLifecycle walks one span through the canonical stages and
// asserts record order, current-span tracking, and span filtering.
func TestRingLifecycle(t *testing.T) {
	r := obs.NewRing(64)
	if got := r.CurrentSpan(0); got != -1 {
		t.Fatalf("CurrentSpan before any op: got %d, want -1", got)
	}
	r.OpStart(0, 7, "inc", 10)
	if got := r.CurrentSpan(0); got != 7 {
		t.Fatalf("CurrentSpan mid-op: got %d, want 7", got)
	}
	r.Event(7, obs.StageBroadcast, 0, 10)
	r.Event(7, obs.StageDeliver, 1, 15)
	r.Event(7, obs.StageTimer, 0, 20)
	r.OpEnd(0, 7, 21)
	if got := r.CurrentSpan(0); got != -1 {
		t.Fatalf("CurrentSpan after OpEnd: got %d, want -1", got)
	}

	// An unrelated span interleaves; Span(7) must filter it out.
	r.OpStart(1, 8, "read", 22)

	evs := r.Span(7)
	wantStages := []obs.Stage{obs.StageInvoke, obs.StageBroadcast, obs.StageDeliver, obs.StageTimer, obs.StageRespond}
	if len(evs) != len(wantStages) {
		t.Fatalf("span 7: got %d events, want %d: %+v", len(evs), len(wantStages), evs)
	}
	for i, ev := range evs {
		if ev.Stage != wantStages[i] {
			t.Fatalf("span 7 event %d: got stage %v, want %v", i, ev.Stage, wantStages[i])
		}
	}
	if evs[0].Op != "inc" {
		t.Fatalf("invoke event op: got %q, want inc", evs[0].Op)
	}
	if evs[2].Proc != 1 {
		t.Fatalf("deliver proc: got %d, want 1", evs[2].Proc)
	}
	if evs[4].Time != 21 {
		t.Fatalf("respond time: got %d, want 21", evs[4].Time)
	}
}

// TestRingWrap fills past capacity and checks the ring keeps the newest
// events in order and counts the overwritten ones.
func TestRingWrap(t *testing.T) {
	r := obs.NewRing(4)
	for i := int64(0); i < 10; i++ {
		r.Event(i, obs.StageDeliver, 0, i)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped: got %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained: got %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Span != want {
			t.Fatalf("retained[%d]: got span %d, want %d (oldest-first order)", i, ev.Span, want)
		}
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := obs.NewRing(0)
	for i := int64(0); i < 4096; i++ {
		r.Event(i, obs.StageDeliver, 0, i)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("default capacity dropped events early: %d", got)
	}
	if got := len(r.Events()); got != 4096 {
		t.Fatalf("default capacity: retained %d, want 4096", got)
	}
}
