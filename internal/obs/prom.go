package obs

import (
	"fmt"
	"io"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit as their own families;
// histograms emit as summaries — quantile-labelled series plus _sum and
// _count — because the quantiles here are exact, which is precisely what
// a summary asserts. The observed extrema emit as companion _min/_max
// gauge families. Output is sorted by name, so the text is byte-stable
// for fixed values.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	typed := map[string]bool{} // base families whose # TYPE line is out
	emitType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	series := func(base, labels string, extra string, v int64) error {
		switch {
		case labels == "" && extra == "":
			_, err := fmt.Fprintf(w, "%s %d\n", base, v)
			return err
		case labels == "":
			_, err := fmt.Fprintf(w, "%s{%s} %d\n", base, extra, v)
			return err
		case extra == "":
			_, err := fmt.Fprintf(w, "%s{%s} %d\n", base, labels, v)
			return err
		default:
			_, err := fmt.Fprintf(w, "%s{%s,%s} %d\n", base, labels, extra, v)
			return err
		}
	}

	for _, name := range sortedKeys(snap.Counters) {
		base, labels := SplitName(name)
		if err := emitType(base, "counter"); err != nil {
			return err
		}
		if err := series(base, labels, "", snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		base, labels := SplitName(name)
		if err := emitType(base, "gauge"); err != nil {
			return err
		}
		if err := series(base, labels, "", snap.Gauges[name]); err != nil {
			return err
		}
	}
	// Histograms group by base family so every family's samples stay
	// contiguous (labelled variants of one base sort adjacently).
	histNames := sortedKeys(snap.Hists)
	for i := 0; i < len(histNames); {
		base, _ := SplitName(histNames[i])
		j := i
		for j < len(histNames) {
			if b, _ := SplitName(histNames[j]); b != base {
				break
			}
			j++
		}
		group := histNames[i:j]
		i = j
		if err := emitType(base, "summary"); err != nil {
			return err
		}
		for _, name := range group {
			_, labels := SplitName(name)
			h := snap.Hists[name]
			for _, q := range []struct {
				label string
				v     int64
			}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
				if err := series(base, labels, fmt.Sprintf("quantile=%q", q.label), q.v); err != nil {
					return err
				}
			}
		}
		for _, suffix := range []string{"_sum", "_count"} {
			for _, name := range group {
				_, labels := SplitName(name)
				h := snap.Hists[name]
				v := h.Sum
				if suffix == "_count" {
					v = h.Count
				}
				if err := series(base+suffix, labels, "", v); err != nil {
					return err
				}
			}
		}
		for _, g := range []struct {
			suffix string
			pick   func(HistSummary) int64
		}{{"_min", func(h HistSummary) int64 { return h.Min }},
			{"_max", func(h HistSummary) int64 { return h.Max }}} {
			if err := emitType(base+g.suffix, "gauge"); err != nil {
				return err
			}
			for _, name := range group {
				_, labels := SplitName(name)
				if err := series(base+g.suffix, labels, "", g.pick(snap.Hists[name])); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
