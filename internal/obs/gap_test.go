package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// TestRingWrapOrder pins the wrap-order contract Events documents: after
// the ring wraps, the returned slice is record order — oldest retained
// first — never the raw backing-array order, which would splice the
// newest events in front of the oldest across the wrap boundary.
func TestRingWrapOrder(t *testing.T) {
	r := NewRing(4)
	for i := int64(0); i < 6; i++ {
		r.Event(i, StageBroadcast, 0, i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.Time != want {
			t.Fatalf("Events()[%d].Time = %d, want %d (record order): %+v",
				i, ev.Time, want, evs)
		}
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
}

// A span whose head was overwritten by the wrap must report
// complete=false (its invoke is gone), and one whose respond has not
// landed yet must too — only an intact invoke…respond lifecycle is
// complete.
func TestRingPartiallyEvictedSpan(t *testing.T) {
	r := NewRing(4)
	r.OpStart(0, 1, "enqueue", 0)
	r.Event(1, StageBroadcast, 0, 1)
	r.Event(1, StageDeliver, 0, 2)
	r.OpEnd(0, 1, 3)
	if evs, complete := r.SpanEvents(1); !complete || len(evs) != 4 {
		t.Fatalf("intact span: complete=%v len=%d, want true 4", complete, len(evs))
	}
	r.OpStart(1, 2, "peek", 4) // overwrites span 1's invoke
	evs, complete := r.SpanEvents(1)
	if complete {
		t.Error("head-evicted span reported complete")
	}
	if len(evs) != 3 || evs[0].Stage != StageBroadcast {
		t.Errorf("head-evicted span events = %+v, want broadcast-first triple", evs)
	}
	if got := r.Span(1); len(got) != 3 {
		t.Errorf("Span(1) len = %d, want 3", len(got))
	}
	if _, complete := r.SpanEvents(2); complete {
		t.Error("open span (no respond yet) reported complete")
	}
	if evs, complete := r.SpanEvents(99); complete || evs != nil {
		t.Errorf("unknown span = (%v, %v), want (nil, false)", evs, complete)
	}
}

func TestNopTracer(t *testing.T) {
	Nop.OpStart(0, 1, "x", 0)
	Nop.Event(1, StageBroadcast, 0, 1)
	Nop.OpEnd(0, 1, 2)
	if got := Nop.CurrentSpan(0); got != -1 {
		t.Errorf("Nop.CurrentSpan = %d, want -1", got)
	}
}

func TestStageMarshalJSON(t *testing.T) {
	b, err := json.Marshal(SpanEvent{Span: 1, Stage: StageDeliver, Proc: 2, Time: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"deliver"`) {
		t.Errorf("stage not marshalled by name: %s", b)
	}
}

func TestStageStringUnknown(t *testing.T) {
	if got := Stage(99).String(); got != "Stage(99)" {
		t.Errorf("unknown stage = %q", got)
	}
}

func TestHistLimitAndQuantileEdges(t *testing.T) {
	h := NewHist(-1)
	if got := h.Limit(); got != DefaultHistLimit {
		t.Errorf("Limit() = %d, want DefaultHistLimit %d", got, DefaultHistLimit)
	}
	h = NewHist(4)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	h.Add(1)
	h.Add(3)
	h.Add(100) // overflow bucket
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %d, want max 100", got)
	}
	// Rank 3 of 3 lands in the overflow bucket: report the observed max,
	// not the bucket boundary.
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("overflow Quantile(0.99) = %d, want 100", got)
	}
	if got := h.Quantile(0.34); got != 3 {
		t.Errorf("Quantile(0.34) = %d, want 3", got)
	}
}

func TestWithLabel(t *testing.T) {
	if got := WithLabel("calls_total", "shard", "2"); got != `calls_total{shard="2"}` {
		t.Errorf("plain name: %q", got)
	}
	got := WithLabel(`lat{class="AOP"}`, "shard", "2")
	if got != `lat{shard="2",class="AOP"}` {
		t.Errorf("labelled name: %q", got)
	}
}

func TestRegistryGaugeMaxExisting(t *testing.T) {
	r := NewRegistry()
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge did not return the existing instrument")
	}
	if r.Max("m") != r.Max("m") {
		t.Error("Max did not return the existing instrument")
	}
}

func TestTakeSnapshotSkipsNil(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	snap := TakeSnapshot(nil, r, nil)
	if snap.Counters["c"] != 7 {
		t.Errorf("merged counters = %v", snap.Counters)
	}
}

func TestLabelMalformedPart(t *testing.T) {
	if got := Label(`lat{noeq,class="AOP"}`, "class"); got != "AOP" {
		t.Errorf("Label skipped past malformed part wrong: %q", got)
	}
}

// limitWriter fails every write once n bytes have been accepted.
type limitWriter struct {
	n   int
	buf bytes.Buffer
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if lw.buf.Len()+len(p) > lw.n {
		return 0, os.ErrClosed
	}
	return lw.buf.Write(p)
}

// Sweep a byte budget from 0 to the full render length so every early
// error return in WritePrometheus fires at least once.
func TestWritePrometheusErrorPaths(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]int64{"c_total": 1, `c_total{shard="0"}`: 2},
		Gauges:   map[string]int64{"depth": 3},
		Hists: map[string]HistSummary{
			"lat":              {Count: 2, Sum: 10, Min: 1, Max: 9, P50: 4, P95: 9, P99: 9},
			`lat{class="AOP"}`: {Count: 1, Sum: 5, Min: 5, Max: 5, P50: 5, P95: 5, P99: 5},
			`other{shard="1"}`: {Count: 1, Sum: 2, Min: 2, Max: 2, P50: 2, P95: 2, P99: 2},
		},
	}
	var full bytes.Buffer
	if err := WritePrometheus(&full, snap); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n++ {
		if err := WritePrometheus(&limitWriter{n: n}, snap); err == nil {
			t.Fatalf("budget %d of %d: no error", n, full.Len())
		}
	}
	if err := WritePrometheus(&limitWriter{n: full.Len()}, snap); err != nil {
		t.Fatalf("exact budget failed: %v", err)
	}
}

// Writing to /dev/full forces the write error path: the error is sticky
// and Close reports it (idempotently).
func TestSnapshotWriterWriteError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	r := NewRegistry()
	r.Counter("c").Add(1)
	sw, err := NewSnapshotWriter("/dev/full", 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close reported no error writing to /dev/full")
	}
	if err := sw.Close(); err == nil {
		t.Fatal("second Close lost the sticky error")
	}
}

func TestSnapshotWriterDoubleClose(t *testing.T) {
	sw, err := NewSnapshotWriter(t.TempDir()+"/snap.jsonl", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// Same-time same-proc events sort by stage, then span — the final
// tiebreaks that keep golden trace exports byte-stable.
func TestSortEventsTiebreaks(t *testing.T) {
	evs := []SpanEvent{
		{Span: 2, Stage: StageDeliver, Proc: 0, Time: 5},
		{Span: 1, Stage: StageDeliver, Proc: 0, Time: 5},
		{Span: 3, Stage: StageBroadcast, Proc: 0, Time: 5},
	}
	sortEvents(evs)
	if evs[0].Stage != StageBroadcast || evs[1].Span != 1 || evs[2].Span != 2 {
		t.Errorf("tiebreak order wrong: %+v", evs)
	}
}

// White-box: a writer racing the scan increments buckets after count is
// visible, so the cumulative walk can come up short of the rank; the
// observed maximum is the only safe answer.
func TestHistQuantileTrailingRank(t *testing.T) {
	h := NewHist(4)
	h.count.Store(5) // count visible, bucket increments not yet landed
	if got := h.Quantile(0.5); got != h.Max() {
		t.Errorf("trailing-rank Quantile = %d, want Max %d", got, h.Max())
	}
}

func TestLabelKeyMismatch(t *testing.T) {
	if got := Label(`lat{class="AOP",shard="2"}`, "shard"); got != "2" {
		t.Errorf("Label skipped past non-matching key wrong: %q", got)
	}
}

func TestStageDroppedString(t *testing.T) {
	if got := StageDropped.String(); got != "dropped" {
		t.Errorf("StageDropped.String() = %q", got)
	}
}
