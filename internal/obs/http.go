package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the merged view of the given registries over HTTP:
//
//	/metrics       Prometheus text exposition (counters, gauges, summaries)
//	/metrics.json  the Snapshot JSON document (what `lintime stat` polls)
//	/debug/vars    expvar-compatible JSON: the process's published expvars
//	               (cmdline, memstats) plus the snapshot under "lintime"
//	/debug/pprof/  the standard net/http/pprof profile index
//
// The handler is read-only and safe to expose on a loopback port next to
// a serving cluster; every request takes a fresh snapshot, so scrapes
// always observe current values.
func Handler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, TakeSnapshot(regs...))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		snap := TakeSnapshot(regs...)
		snap.TimeMS = time.Now().UnixMilli()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// expvar.Handler writes the global var map; splicing the snapshot
		// in here (instead of expvar.Publish, which panics on duplicate
		// names) keeps multiple handlers in one process independent.
		fmt.Fprintf(w, "{\n")
		expvar.Do(func(kv expvar.KeyValue) {
			fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value)
		})
		b, err := json.Marshal(TakeSnapshot(regs...))
		if err != nil {
			b = []byte("{}")
		}
		fmt.Fprintf(w, "%q: %s\n}\n", "lintime", b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "lintime observability endpoint\n\n"+
			"  /metrics       Prometheus text format\n"+
			"  /metrics.json  JSON snapshot (lintime stat)\n"+
			"  /debug/vars    expvar JSON\n"+
			"  /debug/pprof/  pprof profiles\n")
	})
	return mux
}
