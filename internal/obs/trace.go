package obs

import (
	"fmt"
	"sync"
)

// Stage is one waypoint in an operation's lifecycle. The stages mirror
// the paper's timing diagram for Algorithm 1: the client invoke starts
// the span; a mutator's replica broadcast fans out; each delivery lands
// the update at a peer; the stabilization timer (the u+ε / X+ε wait)
// fires; the response closes the span.
type Stage uint8

// Lifecycle stages, in canonical order. StageDropped sits outside the
// happy path: it marks a delivery that reached a crashed process and was
// discarded instead of handled.
const (
	StageInvoke Stage = iota
	StageBroadcast
	StageDeliver
	StageTimer
	StageRespond
	StageDropped
)

// MarshalJSON renders the stage as its canonical name, so flight-recorder
// dumps and trace exports stay readable without the enum table.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageInvoke:
		return "invoke"
	case StageBroadcast:
		return "broadcast"
	case StageDeliver:
		return "deliver"
	case StageTimer:
		return "timer"
	case StageRespond:
		return "respond"
	case StageDropped:
		return "dropped"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// SpanEvent is one recorded waypoint. Span is the operation's SeqID
// (cluster- or engine-unique), or -1 for events no pending operation
// could be blamed for (e.g. a background timer on an idle process).
// Time is in virtual ticks on whichever substrate recorded the event.
//
// Sent and Residency are causal-delivery annotations, populated only for
// StageDeliver events recorded through a CausalTracer's Deliver hook:
// Sent is the tick the message left its sender, and Residency is the
// portion of the delivery delay spent waiting in a coalescing batch
// window rather than in flight.
type SpanEvent struct {
	Span      int64  `json:"span"`
	Stage     Stage  `json:"stage"`
	Proc      int32  `json:"proc"`
	Time      int64  `json:"time"`
	Op        string `json:"op,omitempty"` // set on StageInvoke only
	Sent      int64  `json:"sent,omitempty"`
	Residency int64  `json:"residency,omitempty"`
}

// Tracer observes operation lifecycles. Implementations must be safe for
// concurrent use: the real-time substrate records from every process
// loop.
//
// Attribution leans on the model's one-pending-operation-per-process
// rule: OpStart makes span the process's current span, and the substrate
// stamps sends and timer registrations with CurrentSpan at the moment
// they happen — so a delivery or timer fire is attributed to the
// operation that caused it, even when it executes on another process or
// after the span moved on.
type Tracer interface {
	// OpStart records the invoke waypoint and makes span the process's
	// current span.
	OpStart(proc int32, span int64, op string, now int64)
	// Event records an intermediate waypoint for span (-1 allowed).
	Event(span int64, stage Stage, proc int32, now int64)
	// OpEnd records the respond waypoint and clears the process's current
	// span.
	OpEnd(proc int32, span int64, now int64)
	// CurrentSpan returns the process's current span, or -1.
	CurrentSpan(proc int32) int64
}

// Nop is the tracer compiled in by default: every method is an empty
// no-op, so the TraceOff hot path pays nothing beyond the enabled-check
// branch the instrumented engines already fold it into.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) OpStart(int32, int64, string, int64) {}
func (nopTracer) Event(int64, Stage, int32, int64)    {}
func (nopTracer) OpEnd(int32, int64, int64)           {}
func (nopTracer) CurrentSpan(int32) int64             { return -1 }

// IsNop reports whether t is nil or the Nop tracer — the check the
// instrumented engines use to skip tracing entirely.
func IsNop(t Tracer) bool {
	if t == nil {
		return true
	}
	_, off := t.(nopTracer)
	return off
}

// CausalTracer extends Tracer with the causal metadata the cross-process
// tracing subsystem records: parent edges between spans, child spans for
// protocol phases, and per-delivery latency accounting. The substrates
// detect the extension with a type assertion at SetTracer time and fall
// back to the flat Tracer hooks when it is absent, so existing Tracer
// implementations keep working unchanged.
type CausalTracer interface {
	Tracer
	// OpStartCtx is OpStart carrying a causal parent: the span of the
	// client-side operation that caused this one (propagated through the
	// wire protocols), or -1 for a local root.
	OpStartCtx(proc int32, span, parent int64, op string, now int64)
	// Child opens a named child span (e.g. a quorum phase) under parent.
	Child(proc int32, span, parent int64, name string, now int64)
	// ChildEnd closes a child span.
	ChildEnd(proc int32, span int64, now int64)
	// Deliver is Event(span, StageDeliver, proc, now) plus delivery
	// accounting: the send tick and the batch-window residency portion of
	// the delay (0 for unbatched deliveries).
	Deliver(span int64, proc int32, now, sent, residency int64)
}

// Ring is a fixed-capacity recording tracer: the last capacity events,
// in record order, plus per-process current spans. One mutex guards
// everything — tracing is a debugging/verification tool, not a hot-path
// default, so contention here is acceptable and the memory bound is
// strict.
type Ring struct {
	mu      sync.Mutex
	events  []SpanEvent
	next    int
	wrapped bool
	dropped int64
	cur     map[int32]int64
}

// NewRing builds a ring tracer holding the last capacity events
// (capacity ≤ 0 selects 4096).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ring{events: make([]SpanEvent, capacity), cur: map[int32]int64{}}
}

func (r *Ring) record(ev SpanEvent) {
	if r.wrapped {
		r.dropped++
	}
	r.events[r.next] = ev
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// OpStart implements Tracer.
func (r *Ring) OpStart(proc int32, span int64, op string, now int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.record(SpanEvent{Span: span, Stage: StageInvoke, Proc: proc, Time: now, Op: op})
	r.cur[proc] = span
}

// Event implements Tracer.
func (r *Ring) Event(span int64, stage Stage, proc int32, now int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.record(SpanEvent{Span: span, Stage: stage, Proc: proc, Time: now})
}

// OpEnd implements Tracer.
func (r *Ring) OpEnd(proc int32, span int64, now int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.record(SpanEvent{Span: span, Stage: StageRespond, Proc: proc, Time: now})
	delete(r.cur, proc)
}

// CurrentSpan implements Tracer.
func (r *Ring) CurrentSpan(proc int32) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if span, ok := r.cur[proc]; ok {
		return span
	}
	return -1
}

// Events returns the retained events in record order: after the ring has
// wrapped, the oldest retained event is the one at the write cursor, so
// the copy starts there and walks the ring modularly — never the raw
// backing-array order, which would splice the newest events in front of
// the oldest across the wrap boundary (pinned by TestRingWrapOrder).
func (r *Ring) Events() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]SpanEvent(nil), r.events[:r.next]...)
	}
	out := make([]SpanEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Span returns the retained events of one span, in record order. A span
// whose oldest events have been overwritten by the wrap comes back
// truncated; use SpanEvents when the caller must distinguish a complete
// lifecycle from an evicted head or tail.
func (r *Ring) Span(span int64) []SpanEvent {
	evs, _ := r.SpanEvents(span)
	return evs
}

// SpanEvents returns one span's retained events in record order, plus
// whether the lifecycle is complete: a partially-evicted span — its
// StageInvoke (and possibly more) already overwritten, or its
// StageRespond not yet recorded — reports complete=false, so consumers
// (latency attribution, tree assembly) can skip it instead of
// misreading a truncated sequence as a whole operation.
func (r *Ring) SpanEvents(span int64) ([]SpanEvent, bool) {
	var out []SpanEvent
	for _, ev := range r.Events() {
		if ev.Span == span {
			out = append(out, ev)
		}
	}
	complete := len(out) > 0 &&
		out[0].Stage == StageInvoke &&
		out[len(out)-1].Stage == StageRespond
	return out, complete
}

// Dropped returns how many events the ring has overwritten.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
