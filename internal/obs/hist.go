package obs

import (
	"math"
	"sync/atomic"
)

// DefaultHistLimit is the bucket count used when a histogram is created
// with limit ≤ 0. Latencies in this repository are small virtual-tick
// integers (a few multiples of d, itself tens of ticks), so 4096
// one-tick buckets makes every realistic sample exact.
const DefaultHistLimit = 4096

// Hist is a fixed-bucket concurrent latency histogram with one bucket per
// integer value in [0, limit): recorded values below the limit have an
// exact distribution, so p50/p95/p99 are exact order statistics — the
// same nearest-rank convention as internal/histio, against which the
// tests pin this implementation. Values ≥ limit land in a single
// overflow bucket and quantiles that fall there report the exact
// observed maximum (an upper bound for any rank inside the tail).
// Negative values clamp to 0.
//
// All methods are safe for concurrent use. Add is wait-free: two bucket
// increments plus min/max CAS loops. Quantile reads are taken without a
// barrier, so a snapshot racing writers may be off by in-flight samples —
// exactly the monitoring semantics a /metrics scrape wants; quiesce first
// when exactness across the whole set matters (the tests do).
type Hist struct {
	limit   int
	buckets []atomic.Uint64 // len limit+1; buckets[limit] = overflow
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64 // valid once count > 0 (samples are non-negative)
	min     atomic.Int64 // sentinel math.MaxInt64 until the first Add lands
}

// NewHist builds a histogram with one bucket per value in [0, limit).
// limit ≤ 0 selects DefaultHistLimit.
func NewHist(limit int) *Hist {
	if limit <= 0 {
		limit = DefaultHistLimit
	}
	h := &Hist{limit: limit, buckets: make([]atomic.Uint64, limit+1)}
	h.min.Store(math.MaxInt64)
	return h
}

// Limit returns the exact-range bound (values ≥ Limit share the overflow
// bucket).
func (h *Hist) Limit() int { return h.limit }

// Add records one sample.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	idx := v
	if idx >= int64(h.limit) {
		idx = int64(h.limit)
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	// The marks only ever tighten (max starts at 0, min at the sentinel),
	// so plain CAS loops are race-free regardless of writer interleaving.
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	// Count lands last: count > 0 implies at least one writer has fully
	// published its sample into the buckets and marks.
	h.count.Add(1)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return int64(h.count.Load()) }

// Sum returns the sum of recorded samples.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Min returns the smallest sample (0 when empty).
func (h *Hist) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest sample (0 when empty).
func (h *Hist) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average sample rounded toward zero (0 when empty),
// matching internal/histio's convention.
func (h *Hist) Mean() int64 {
	n := int64(h.count.Load())
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns the nearest-rank q-quantile (q in [0, 1]): the
// smallest recorded value v such that at least ⌈q·count⌉ samples are ≤ v.
// Quantile(0) is the minimum, Quantile(1) the maximum; an empty histogram
// returns 0. A quantile that lands in the overflow bucket reports the
// observed maximum.
func (h *Hist) Quantile(q float64) int64 {
	total := int64(h.count.Load())
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i <= h.limit; i++ {
		cum += int64(h.buckets[i].Load())
		if cum >= rank {
			if i == h.limit {
				return h.Max()
			}
			return int64(i)
		}
	}
	// Writers raced the scan (bucket increments land before the count);
	// the maximum is the only safe answer for a trailing rank.
	return h.Max()
}

// HistSummary is the JSON-ready quantile set of a histogram. Field names
// match internal/histio.Quantiles so load summaries and live snapshots
// read identically.
type HistSummary struct {
	Count int64 `json:"count"`
	Min   int64 `json:"min"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
	Sum   int64 `json:"sum"`
}

// Summary extracts the standard quantile set.
func (h *Hist) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
		Mean:  h.Mean(),
		Sum:   h.Sum(),
	}
}
