// Causal, cross-process tracing with deterministic latency attribution.
//
// The Collector grows the per-process span ring (Ring) into a tree
// store: every operation is a root span, quorum phases open child spans
// under it, and message deliveries — batched or not — attach to whichever
// span caused them, propagated through the substrates' handling context
// and the wire protocols' trace-context field. A completed root
// decomposes its wall-clock (virtual-tick) latency into named terms that
// sum exactly to the measured latency:
//
//	latency = queue + exec + net_delay + batch_residency + x_wait + skew_adjust
//
// The identity is structural, not statistical: the owner process records
// its span waypoints from a single goroutine, so the waypoint intervals
// telescope from invoke to respond; each interval is assigned wholly to
// one term (splitting delivery intervals exactly between residency and
// flight), and the stabilization-timer wait is split by the paper's own
// formulas — X for a mutator's x_wait, d−X for an accessor's net_delay,
// d for an unclassified wait — with the remainder (the ε the formulas
// add, plus real scheduling jitter on the rtnet substrate) landing in
// skew_adjust. Tests assert the sum exactly.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Term names one component of an operation's attributed latency.
type Term uint8

// Attribution terms, in canonical (export) order.
const (
	// TermXWait is the deliberate accessor/mutator trade-off wait: the X
	// ticks a mutator holds its response (|MOP| = X+ε).
	TermXWait Term = iota
	// TermNetDelay is time spent waiting on message propagation: an
	// accessor's d−X stabilization wait, an unclassified operation's d,
	// and mid-span delivery waits (quorum ack round trips).
	TermNetDelay
	// TermBatchResidency is the portion of a mid-span delivery wait spent
	// parked in a sender's coalescing batch window rather than in flight.
	TermBatchResidency
	// TermQueue is pre-handling time: submitted but not yet picked up by
	// the owner process's event loop.
	TermQueue
	// TermExec is handler execution time (broadcast fan-out, local
	// apply, respond).
	TermExec
	// TermSkewAdjust absorbs what the formulas call ε — clock-skew
	// padding — plus scheduling jitter on the real-time substrate. Signed:
	// it is the exact remainder that makes the terms sum to the measured
	// latency.
	TermSkewAdjust
	// NumTerms is the number of attribution terms.
	NumTerms
)

// String returns the term's canonical snake_case name.
func (t Term) String() string {
	switch t {
	case TermXWait:
		return "x_wait"
	case TermNetDelay:
		return "net_delay"
	case TermBatchResidency:
		return "batch_residency"
	case TermQueue:
		return "queue"
	case TermExec:
		return "exec"
	case TermSkewAdjust:
		return "skew_adjust"
	default:
		return fmt.Sprintf("Term(%d)", uint8(t))
	}
}

// Attribution is one operation's latency decomposition, indexed by Term,
// in virtual ticks.
type Attribution [NumTerms]int64

// Sum returns the total attributed latency — exactly the operation's
// measured respond−invoke by construction.
func (a Attribution) Sum() int64 {
	var s int64
	for _, v := range a {
		s += v
	}
	return s
}

// AttrParams carries the model parameters attribution splits waits by,
// in virtual ticks (mirrors simtime.Params without the import).
type AttrParams struct {
	D       int64
	U       int64
	Epsilon int64
	X       int64
}

// Tree is one operation's causal span tree: the root operation span with
// its recorded waypoints and any protocol-phase child spans.
type Tree struct {
	Span   int64 `json:"span"`
	Parent int64 `json:"parent"`
	// Op is the operation name for roots, the phase name for children.
	Op       string      `json:"op,omitempty"`
	Proc     int32       `json:"proc"`
	Start    int64       `json:"start"`
	End      int64       `json:"end"`
	Events   []SpanEvent `json:"events,omitempty"`
	Children []*Tree     `json:"children,omitempty"`

	done bool
	// root distinguishes operation roots from protocol-phase children: a
	// root's Parent may be a remote client-side span, so Parent == -1
	// cannot tell the two apart.
	root bool
}

// clone deep-copies the tree with events in canonical order.
func (t *Tree) clone() *Tree {
	out := *t
	out.Events = append([]SpanEvent(nil), t.Events...)
	sortEvents(out.Events)
	out.Children = make([]*Tree, len(t.Children))
	for i, c := range t.Children {
		out.Children[i] = c.clone()
	}
	sort.Slice(out.Children, func(i, j int) bool {
		a, b := out.Children[i], out.Children[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Span > b.Span
	})
	return &out
}

// sortEvents orders events canonically: by time, then process, then
// stage, then span. Recording order is already time-ordered per process;
// the canonical order additionally makes concurrently-recorded events
// from different processes deterministic for golden exports.
func sortEvents(evs []SpanEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Span < b.Span
	})
}

// Collector is the causal tracing sink: a CausalTracer that assembles
// complete operation trees and retains the last capacity of them in a
// ring — the flight recorder. Safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	live    map[int64]*Tree // open spans (roots and children), by span id
	order   []int64         // live-root start order, for bounded eviction
	index   map[int64]*Tree // retained completed spans, for late events
	done    []*Tree         // completed-root ring, record order
	next    int
	wrapped bool
	dropped int64
	total   int64
	cur     map[int32]int64
}

// NewCollector builds a collector retaining the last capacity completed
// trees (capacity ≤ 0 selects 256). At most capacity root spans may be
// open at once; opening more evicts the oldest open root.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 256
	}
	return &Collector{
		live:  map[int64]*Tree{},
		index: map[int64]*Tree{},
		done:  make([]*Tree, capacity),
		cur:   map[int32]int64{},
	}
}

// OpStart implements Tracer.
func (c *Collector) OpStart(proc int32, span int64, op string, now int64) {
	c.OpStartCtx(proc, span, -1, op, now)
}

// OpStartCtx implements CausalTracer: opens a root span, recording the
// causal parent (a client-side span propagated over the wire, or -1).
func (c *Collector) OpStartCtx(proc int32, span, parent int64, op string, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Tree{Span: span, Parent: parent, Op: op, Proc: proc, Start: now, End: -1, root: true}
	t.Events = append(t.Events, SpanEvent{Span: span, Stage: StageInvoke, Proc: proc, Time: now, Op: op})
	c.live[span] = t
	c.order = append(c.order, span)
	c.cur[proc] = span
	// Bound the open set: a span that never completes (crashed owner)
	// must not pin memory forever.
	for len(c.order) > len(c.done) {
		victim := c.order[0]
		c.order = c.order[1:]
		if v, ok := c.live[victim]; ok && !v.done {
			c.evictLive(v)
			c.dropped++
		}
	}
}

// evictLive removes an open root and its children from the live set.
func (c *Collector) evictLive(t *Tree) {
	delete(c.live, t.Span)
	for _, child := range t.Children {
		delete(c.live, child.Span)
	}
}

// Event implements Tracer: append a waypoint to its span, live or
// recently completed (late peer deliveries land after the owner
// responded). Events for unknown spans — span -1, or spans already
// evicted — are dropped.
func (c *Collector) Event(span int64, stage Stage, proc int32, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.append(SpanEvent{Span: span, Stage: stage, Proc: proc, Time: now})
}

// Deliver implements CausalTracer.
func (c *Collector) Deliver(span int64, proc int32, now, sent, residency int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.append(SpanEvent{Span: span, Stage: StageDeliver, Proc: proc, Time: now,
		Sent: sent, Residency: residency})
}

func (c *Collector) append(ev SpanEvent) {
	t, ok := c.live[ev.Span]
	if !ok {
		if t, ok = c.index[ev.Span]; !ok {
			return
		}
	}
	t.Events = append(t.Events, ev)
}

// Child implements CausalTracer: opens a named child span under parent.
// A child of an unknown parent is dropped.
func (c *Collector) Child(proc int32, span, parent int64, name string, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt, ok := c.live[parent]
	if !ok {
		if pt, ok = c.index[parent]; !ok {
			return
		}
	}
	t := &Tree{Span: span, Parent: parent, Op: name, Proc: proc, Start: now, End: -1}
	pt.Children = append(pt.Children, t)
	if pt.done {
		c.index[span] = t
	} else {
		c.live[span] = t
	}
}

// ChildEnd implements CausalTracer. Closing a child of an
// already-completed root (a quorum phase whose last ack straggled in
// after the coordinator responded) still lands on the retained tree.
func (c *Collector) ChildEnd(proc int32, span int64, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.live[span]
	if !ok {
		if t, ok = c.index[span]; !ok || t == nil {
			return
		}
	}
	if t.root {
		return // only OpEnd completes a root
	}
	t.End = now
	t.done = true
}

// OpEnd implements Tracer: completes the root span and moves the tree
// into the flight-recorder ring.
func (c *Collector) OpEnd(proc int32, span int64, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cur, proc)
	t, ok := c.live[span]
	if !ok {
		return
	}
	t.Events = append(t.Events, SpanEvent{Span: span, Stage: StageRespond, Proc: proc, Time: now})
	t.End = now
	t.done = true
	// The tree stays indexed while retained, so deliveries landing on
	// peers after the owner responded (a mutator's broadcast outliving
	// its X-wait) still attach to the completed tree.
	delete(c.live, span)
	c.index[span] = t
	for _, child := range t.Children {
		delete(c.live, child.Span)
		c.index[child.Span] = child
	}
	if old := c.done[c.next]; old != nil {
		delete(c.index, old.Span)
		for _, child := range old.Children {
			delete(c.index, child.Span)
		}
		c.dropped++
	}
	c.done[c.next] = t
	c.next++
	c.total++
	if c.next == len(c.done) {
		c.next = 0
		c.wrapped = true
	}
}

// CurrentSpan implements Tracer.
func (c *Collector) CurrentSpan(proc int32) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if span, ok := c.cur[proc]; ok {
		return span
	}
	return -1
}

// Dropped returns how many trees were discarded: completed trees
// overwritten by the ring plus open roots evicted by the live bound.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Completed returns how many root spans have completed.
func (c *Collector) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Trees returns deep copies of the retained completed trees, oldest
// first, with events and children in canonical deterministic order.
func (c *Collector) Trees() []*Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Tree
	appendFrom := func(src []*Tree) {
		for _, t := range src {
			if t != nil {
				out = append(out, t.clone())
			}
		}
	}
	if c.wrapped {
		appendFrom(c.done[c.next:])
	}
	appendFrom(c.done[:c.next])
	return out
}

// Attribute decomposes one completed operation's latency into terms.
// class is the operation's latency class ("AOP", "MOP", anything else is
// treated as unclassified); invoke is the measured invoke tick (the
// submission instant, which precedes the owner's StageInvoke by the
// inbox queue time). Returns false if the span is not retained or not
// complete. The returned terms sum exactly to end − invoke.
func (c *Collector) Attribute(span int64, class string, invoke int64, p AttrParams) (Attribution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.index[span]
	if !ok || t == nil || !t.done || !t.root {
		return Attribution{}, false
	}
	return attribute(t, class, invoke, p), true
}

// attribute implements the decomposition on the owner-process timeline.
func attribute(t *Tree, class string, invoke int64, p AttrParams) Attribution {
	var a Attribution
	prev := invoke
	var wait int64
	for _, ev := range t.Events {
		if ev.Proc != t.Proc {
			continue // peer-side annotations are not on the owner timeline
		}
		if ev.Time > t.End {
			// The owner can keep receiving this operation's traffic after
			// responding (its own broadcast echo arrives up to d after an
			// early MOP respond); latency ends at the respond instant.
			continue
		}
		dt := ev.Time - prev
		prev = ev.Time
		switch ev.Stage {
		case StageInvoke:
			a[TermQueue] += dt
		case StageDeliver:
			res := ev.Residency
			if res < 0 {
				res = 0
			}
			if res > dt {
				res = dt
			}
			a[TermBatchResidency] += res
			a[TermNetDelay] += dt - res
		case StageTimer:
			wait += dt
		default: // StageBroadcast, StageRespond, StageDropped
			a[TermExec] += dt
		}
	}
	// Split the stabilization wait by the paper's formulas; the exact
	// remainder — the formulas' ε plus any real-substrate jitter — is
	// skew_adjust.
	var deliberate int64
	var deliberateTerm Term
	switch class {
	case "MOP":
		deliberate, deliberateTerm = p.X, TermXWait
	case "AOP":
		deliberate, deliberateTerm = p.D-p.X, TermNetDelay
	default:
		deliberate, deliberateTerm = p.D, TermNetDelay
	}
	if deliberate < 0 {
		deliberate = 0
	}
	if wait == 0 {
		deliberate = 0 // no timer ever fired (quorum path): nothing to split
	} else if deliberate > wait {
		deliberate = wait
	}
	a[deliberateTerm] += deliberate
	a[TermSkewAdjust] += wait - deliberate
	return a
}

// chromeEvent is one Chrome trace-event / Perfetto JSON entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders trees in the Chrome trace-event JSON format
// (the {"traceEvents": [...]} flavor), loadable by Perfetto and
// chrome://tracing: root and child spans as complete ("X") slices on
// their owner process's track, waypoints as thread-scoped instant
// events. Virtual ticks map one-to-one onto the format's microsecond
// timestamps. Output is deterministic given deterministic trees.
func WriteChromeTrace(w io.Writer, trees []*Tree) error {
	events := make([]chromeEvent, 0, len(trees)*4)
	var walk func(t *Tree, root int64, depth int)
	walk = func(t *Tree, root int64, depth int) {
		cat := "op"
		if depth > 0 {
			cat = "phase"
		}
		dur := t.End - t.Start
		ev := chromeEvent{Name: t.Op, Cat: cat, Phase: "X", TS: t.Start, Dur: &dur,
			PID: 0, TID: int64(t.Proc),
			Args: map[string]any{"span": t.Span, "parent": t.Parent}}
		events = append(events, ev)
		for _, sub := range t.Events {
			if sub.Stage == StageInvoke || sub.Stage == StageRespond {
				continue // endpoints are the slice itself
			}
			args := map[string]any{"span": sub.Span}
			if sub.Stage == StageDeliver && sub.Sent != 0 {
				args["sent"] = sub.Sent
				args["residency"] = sub.Residency
			}
			events = append(events, chromeEvent{Name: sub.Stage.String(), Cat: "waypoint",
				Phase: "i", TS: sub.Time, PID: 0, TID: int64(sub.Proc), Scope: "t", Args: args})
		}
		for _, child := range t.Children {
			walk(child, root, depth+1)
		}
	}
	for _, t := range trees {
		walk(t, t.Span, 0)
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
