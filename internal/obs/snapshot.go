package obs

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// SnapshotWriter periodically appends registry snapshots to a JSONL file:
// one Snapshot document per line, stamped with wall-clock milliseconds so
// post-processing can turn counter deltas into rates. Close writes one
// final snapshot — the flush `lintime load` relies on for SIGINT-shortened
// runs — then closes the file. The last line of a snapshot file is
// ledger-compatible: `cmd/benchjson -snapshots` folds it (via
// Snapshot.Flatten) into a BENCH-style JSON ledger.
type SnapshotWriter struct {
	f        *os.File
	regs     []*Registry
	interval time.Duration

	mu   sync.Mutex // serializes writes (ticker loop vs Close)
	err  error      // first write error; sticky
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewSnapshotWriter creates (truncating) the JSONL file and starts the
// periodic writer. interval ≤ 0 disables the ticker — only the final
// Close snapshot is written, which suits short deterministic runs.
func NewSnapshotWriter(path string, interval time.Duration, regs ...*Registry) (*SnapshotWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sw := &SnapshotWriter{
		f: f, regs: regs, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go sw.loop()
	return sw, nil
}

func (sw *SnapshotWriter) loop() {
	defer close(sw.done)
	if sw.interval <= 0 {
		<-sw.stop
		return
	}
	t := time.NewTicker(sw.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			sw.write()
		case <-sw.stop:
			return
		}
	}
}

func (sw *SnapshotWriter) write() {
	snap := TakeSnapshot(sw.regs...)
	snap.TimeMS = time.Now().UnixMilli()
	b, err := json.Marshal(snap)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if err == nil {
		_, err = sw.f.Write(append(b, '\n'))
	}
	if err != nil && sw.err == nil {
		sw.err = err
	}
}

// Close stops the ticker, writes one final snapshot, and closes the file.
// It returns the first error the writer encountered. Safe to call more
// than once.
func (sw *SnapshotWriter) Close() error {
	sw.once.Do(func() {
		close(sw.stop)
		<-sw.done
		sw.write()
		sw.mu.Lock()
		defer sw.mu.Unlock()
		if err := sw.f.Close(); err != nil && sw.err == nil {
			sw.err = err
		}
	})
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}
