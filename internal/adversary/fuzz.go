package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"lintime/internal/harness"
	"lintime/internal/obs"
	"lintime/internal/quorum"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Campaign throughput counters on the process-wide registry: a scraper
// differentiates schedules_total into schedules/sec, and the novelty
// hit rate is novelty_hits_total / schedules_total.
var (
	schedulesTotal  = obs.Default.Counter("adversary_schedules_total")
	noveltyHits     = obs.Default.Counter("adversary_novelty_hits_total")
	violationsTotal = obs.Default.Counter("adversary_violations_total")
	mutantKills     = obs.Default.Counter("adversary_mutant_kills_total")
)

// batchSize is the number of schedules evaluated between feedback points.
// The coverage pool and the stop-early decision are updated only at batch
// boundaries, in index order, so the set of schedules a fuzz run evaluates
// depends on (seed, budget, strategies) alone — never on parallelism.
const batchSize = 64

// poolCap bounds the coverage strategy's novelty pool (oldest evicted).
const poolCap = 128

// Options configures a fuzzing campaign.
type Options struct {
	Params simtime.Params
	DT     spec.DataType
	Target Target
	Seed   int64
	Budget int // total schedules to evaluate (rounded up to a batch)
	// Strategies to interleave (round-robin by schedule index); nil
	// selects all of Strategies().
	Strategies []string
	// Parallel is the worker count for batch evaluation (harness
	// semantics: < 1 selects GOMAXPROCS).
	Parallel int
	// StopEarly stops at the end of the first batch containing a
	// violation — the mode used for mutant hunts, where one
	// counterexample suffices.
	StopEarly bool
	// Shrink reduces each reported violation to a minimal schedule.
	Shrink bool
	// CheckWorkers is passed through to the linearizability checker.
	CheckWorkers int
}

// Violation is one schedule that broke a checked property.
type Violation struct {
	Index      int    // schedule index within the campaign
	Strategy   string // generating strategy
	Kind       string // KindNonLinearizable, KindDiverged, KindIncomplete
	Schedule   Schedule
	Shrunk     *Schedule // minimal reduction (when Options.Shrink)
	ShrunkKind string    // violation kind of the shrunk schedule
	Runs       int       // shrinker executions spent
}

// Report summarizes a fuzzing campaign.
type Report struct {
	Target     Target
	Schedules  int // schedules evaluated
	Signatures int // distinct event-ordering signatures observed
	ByStrategy map[string]int
	Violations []Violation
}

// Fuzz runs a campaign and returns its report. The report is a pure
// function of Options (minus Parallel): batches fan out through
// harness.RunIndexed with per-index derived seeds and fold results in
// index order.
func Fuzz(opts Options) (*Report, error) {
	p := opts.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Crash-tolerant targets get the fault axes (crashes, drops) mixed
	// into random and coverage candidates plus the deterministic
	// faultcorner strategy; the boundary strategy stays fault-free (its
	// rule-based schedules probe the timing bounds, which assume reliable
	// delivery). Against reliable targets the default strategy set drops
	// faultcorner silently — so existing campaigns are byte-identical —
	// while requesting it explicitly is an error.
	faults := opts.Target.SupportsFaults()
	explicit := len(opts.Strategies) > 0
	requested := opts.Strategies
	if !explicit {
		requested = Strategies()
	}
	enabled := make([]string, 0, len(requested))
	for _, s := range requested {
		switch s {
		case StratBoundary, StratRandom, StratCoverage:
			enabled = append(enabled, s)
		case StratFaultCorner:
			if !faults {
				if explicit {
					return nil, fmt.Errorf("adversary: strategy %q applies only to crash-tolerant targets (have %s)", s, opts.Target)
				}
				continue
			}
			enabled = append(enabled, s)
		default:
			return nil, fmt.Errorf("adversary: unknown strategy %q (have %s)", s, strings.Join(Strategies(), ", "))
		}
	}
	if len(enabled) == 0 {
		return nil, fmt.Errorf("adversary: no applicable strategies for target %s", opts.Target)
	}
	if opts.Budget <= 0 {
		opts.Budget = batchSize
	}
	ops := opsFor(opts.DT)
	var corners []candidate
	if faults {
		corners = faultCorners(p, ops)
	}
	boundary := newBoundarySource(p, ops)
	// The campaign never reads Steps: coverage signatures come from the
	// engine's incremental hash, so the runner skips recording them.
	runner := &Runner{Params: p, DT: opts.DT, Target: opts.Target, CheckWorkers: opts.CheckWorkers,
		Trace: sim.TraceOps}

	rep := &Report{Target: opts.Target, ByStrategy: map[string]int{}}
	seen := map[uint64]bool{}
	var pool []Schedule // coverage novelty pool, index order

	type slot struct {
		strategy string
		sched    Schedule
		outcome  *Outcome
	}

	for base := 0; base < opts.Budget; base += batchSize {
		count := batchSize
		if base+count > opts.Budget {
			count = opts.Budget - base
		}
		// Snapshot the pool: workers read it concurrently while the fold
		// below (after the batch barrier) is the only writer.
		poolSnap := append([]Schedule(nil), pool...)
		slots := make([]slot, count)
		err := harness.RunIndexed(count, opts.Parallel, func(k int) error {
			i := base + k
			strat := enabled[i%len(enabled)]
			ordinal := i / len(enabled)
			var (
				sched Schedule
				out   *Outcome
				err   error
			)
			switch strat {
			case StratBoundary:
				cand := boundary.candidateAt(p, ops, opts.Seed, ordinal)
				sched, out, err = runner.RunRule(cand.offsets, cand.plans, cand.net)
			case StratRandom:
				cand := randomCandidate(p, ops, opts.Seed, "random", ordinal, faults)
				sched = cand.sched
				out, err = runner.Run(sched)
			case StratCoverage:
				if len(poolSnap) == 0 {
					cand := randomCandidate(p, ops, opts.Seed, "coverage-seed", ordinal, faults)
					sched = cand.sched
				} else {
					rng := rand.New(rand.NewSource(harness.DeriveSeed(opts.Seed, fmt.Sprintf("adversary/coverage/%d", ordinal))))
					parent := poolSnap[rng.Intn(len(poolSnap))]
					sched = mutateSchedule(parent, p, ops, rng, faults)
				}
				out, err = runner.Run(sched)
			case StratFaultCorner:
				if len(corners) == 0 { // degenerate n: no corners apply
					cand := randomCandidate(p, ops, opts.Seed, "faultcorner-fill", ordinal, faults)
					sched = cand.sched
				} else {
					sched = corners[ordinal%len(corners)].sched
				}
				out, err = runner.Run(sched)
			}
			if err != nil {
				return err
			}
			slots[k] = slot{strategy: strat, sched: sched, outcome: out}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Fold in index order: coverage pool, signature set, violations.
		batchViolated := false
		for k := 0; k < count; k++ {
			sl := slots[k]
			rep.Schedules++
			schedulesTotal.Inc()
			rep.ByStrategy[sl.strategy]++
			sig := sl.outcome.Signature()
			if !seen[sig] {
				seen[sig] = true
				noveltyHits.Inc()
				if len(pool) == poolCap {
					pool = pool[1:]
				}
				pool = append(pool, sl.sched)
			}
			if kind := sl.outcome.Violation(); kind != "" {
				batchViolated = true
				violationsTotal.Inc()
				v := Violation{
					Index:    base + k,
					Strategy: sl.strategy,
					Kind:     kind,
					Schedule: sl.sched,
				}
				if opts.Shrink {
					shrunk, shrunkKind, runs, err := Shrink(runner, sl.sched, ShrinkOptions{})
					if err != nil {
						return nil, err
					}
					v.Shrunk = &shrunk
					v.ShrunkKind = shrunkKind
					v.Runs = runs
				}
				rep.Violations = append(rep.Violations, v)
			}
		}
		if opts.StopEarly && batchViolated {
			break
		}
	}
	rep.Signatures = len(seen)
	return rep, nil
}

// KillEntry is one row of a mutant kill matrix.
type KillEntry struct {
	Mutant     string
	Desc       string
	Killed     bool
	Kind       string // violation kind that killed it
	Schedules  int    // schedules evaluated before the kill (or budget)
	Shrunk     *Schedule
	ShrunkKind string
}

// KillMatrix fuzzes every seeded mutant (plus the correct algorithm as a
// control) with the given per-mutant budget and reports which died. The
// control row has Mutant == "correct" and must never be killed.
func KillMatrix(opts Options) ([]KillEntry, error) {
	targets := []Mutant{{Name: Correct}}
	controlDesc := "corrected Algorithm 1 (control)"
	if opts.Target.Algorithm == harness.AlgQuorum {
		controlDesc = "correct ABD quorum register (control)"
		for _, m := range quorum.Mutants() {
			targets = append(targets, Mutant{Name: m.Name, Desc: m.Desc})
		}
	} else {
		targets = append(targets, Mutants()...)
	}
	entries := make([]KillEntry, 0, len(targets))
	for _, m := range targets {
		o := opts
		o.Target = Target{Algorithm: opts.Target.Algorithm, Mutant: m.Name}
		o.StopEarly = true
		rep, err := Fuzz(o)
		if err != nil {
			return nil, err
		}
		e := KillEntry{
			Mutant:    m.Name,
			Desc:      m.Desc,
			Killed:    len(rep.Violations) > 0,
			Schedules: rep.Schedules,
		}
		if e.Mutant == Correct {
			e.Mutant = "correct"
			e.Desc = controlDesc
		}
		if e.Killed {
			mutantKills.Inc()
			v := rep.Violations[0]
			e.Kind = v.Kind
			e.Schedules = v.Index + 1
			e.Shrunk = v.Shrunk
			e.ShrunkKind = v.ShrunkKind
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// SortedStrategies returns the strategy names of a report's counter map
// in fixed registry order (for deterministic rendering).
func (r *Report) SortedStrategies() []string {
	names := make([]string, 0, len(r.ByStrategy))
	for _, s := range Strategies() {
		if r.ByStrategy[s] > 0 {
			names = append(names, s)
		}
	}
	// Defensive: include any unknown keys deterministically.
	extra := make([]string, 0)
	for s := range r.ByStrategy {
		switch s {
		case StratBoundary, StratRandom, StratCoverage, StratFaultCorner:
		default:
			extra = append(extra, s)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}
