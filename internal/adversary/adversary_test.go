package adversary

import (
	"bytes"
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

func defaultOpts() Options {
	return Options{
		Params: simtime.DefaultParams(5),
		DT:     adt.NewQueue(),
		Seed:   42,
	}
}

// TestKillMatrix is the package's headline property: schedule exploration
// rediscovers every seeded bug from scratch within one batch, shrinks
// each to a replayable minimal counterexample, and never flags the
// corrected algorithm.
func TestKillMatrix(t *testing.T) {
	opts := defaultOpts()
	opts.Budget = 64
	opts.Shrink = true
	entries, err := KillMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(Mutants())+1 {
		t.Fatalf("got %d entries, want %d", len(entries), len(Mutants())+1)
	}
	for _, e := range entries {
		if e.Mutant == "correct" {
			if e.Killed {
				t.Errorf("control (correct algorithm) was flagged: %s", e.Kind)
			}
			continue
		}
		if !e.Killed {
			t.Errorf("mutant %s survived %d schedules", e.Mutant, e.Schedules)
			continue
		}
		if e.Shrunk == nil {
			t.Errorf("mutant %s killed but not shrunk", e.Mutant)
			continue
		}
		// The shrunk schedule must itself replay to a violation.
		r := &Runner{
			Params: opts.Params,
			DT:     opts.DT,
			Target: Target{Mutant: e.Mutant},
		}
		out, err := r.Run(*e.Shrunk)
		if err != nil {
			t.Errorf("mutant %s: replaying shrunk schedule: %v", e.Mutant, err)
			continue
		}
		if got := out.Violation(); got != e.ShrunkKind {
			t.Errorf("mutant %s: shrunk replay violation = %q, recorded %q", e.Mutant, got, e.ShrunkKind)
		}
	}
}

// TestKillMatrixFinding1 pins the EXPERIMENTS.md Finding 1 regression:
// the d-X accessor wait (without +ε) must be killed by a genuine
// black-box non-linearizability witness, not just divergence.
func TestKillMatrixFinding1(t *testing.T) {
	opts := defaultOpts()
	opts.Target = Target{Mutant: "aop-no-eps"}
	opts.Budget = 64
	opts.StopEarly = true
	opts.Shrink = true
	rep, err := Fuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("aop-no-eps mutant survived")
	}
	v := rep.Violations[0]
	if v.Kind != KindNonLinearizable {
		t.Errorf("first violation kind = %s, want %s", v.Kind, KindNonLinearizable)
	}
	if v.Shrunk.NumOps() > 5 {
		t.Errorf("shrunk counterexample has %d ops; expected a tight witness (≤5)", v.Shrunk.NumOps())
	}
}

// TestCorrectAlgorithmClean sweeps ≥10⁴ schedules over the corrected
// Algorithm 1 and requires zero violations of any kind.
func TestCorrectAlgorithmClean(t *testing.T) {
	opts := defaultOpts()
	opts.Budget = 1000
	if !testing.Short() {
		opts.Budget = 10000
	}
	rep, err := Fuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != opts.Budget {
		t.Errorf("evaluated %d schedules, want %d", rep.Schedules, opts.Budget)
	}
	for _, v := range rep.Violations {
		t.Errorf("correct algorithm flagged %s at schedule %d (%s):\n%s",
			v.Kind, v.Index, v.Strategy, v.Schedule.String())
	}
	if rep.Signatures < rep.Schedules/4 {
		t.Errorf("only %d distinct signatures over %d schedules; exploration collapsed", rep.Signatures, rep.Schedules)
	}
}

// TestFolkloreTargetsClean runs the folklore baselines through the same
// adversaries: both are trivially linearizable, so any violation is a
// harness bug.
func TestFolkloreTargetsClean(t *testing.T) {
	for _, alg := range []string{harness.AlgCentral, harness.AlgSequencer} {
		opts := defaultOpts()
		opts.Target = Target{Algorithm: alg}
		opts.Budget = 192
		rep, err := Fuzz(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s flagged %s at schedule %d:\n%s", alg, v.Kind, v.Index, v.Schedule.String())
		}
	}
}

// TestFuzzDeterministicAcrossParallelism renders the full report
// (including shrunk counterexamples and diagrams) at parallelism 1 and 4
// and requires byte-identical output.
func TestFuzzDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel int) string {
		opts := defaultOpts()
		opts.Target = Target{Mutant: "exec-no-eps"}
		opts.Budget = 128
		opts.Shrink = true
		opts.Parallel = parallel
		rep, err := Fuzz(opts)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Params: opts.Params, DT: opts.DT, Target: opts.Target}
		var b bytes.Buffer
		if err := WriteReport(&b, r, rep); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Errorf("report differs between -parallel 1 and -parallel 4:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "violation") {
		t.Errorf("expected at least one violation in the report:\n%s", seq)
	}
}

// TestShrinkLocallyMinimal verifies 1-minimality of a shrunk
// counterexample: removing any single remaining op destroys the
// violation.
func TestShrinkLocallyMinimal(t *testing.T) {
	opts := defaultOpts()
	opts.Target = Target{Mutant: "aop-no-eps"}
	opts.Budget = 64
	opts.StopEarly = true
	opts.Shrink = true
	rep, err := Fuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation to shrink")
	}
	s := *rep.Violations[0].Shrunk
	r := &Runner{Params: opts.Params, DT: opts.DT, Target: opts.Target}
	for proc := range s.Plans {
		for i := range s.Plans[proc] {
			cand := s.Clone()
			cand.Plans[proc] = append(cand.Plans[proc][:i:i], cand.Plans[proc][i+1:]...)
			out, err := r.Run(cand)
			if err != nil {
				t.Fatal(err)
			}
			if out.Violation() != "" {
				t.Errorf("dropping p%d op %d still violates (%s): shrink not minimal", proc, i, out.Violation())
			}
		}
	}
}

// TestRunRuleConcretizes checks the rule→explicit round trip: replaying
// the concretized delay vector reproduces the identical execution.
func TestRunRuleConcretizes(t *testing.T) {
	p := simtime.DefaultParams(5)
	ops := opsFor(adt.NewQueue())
	r := &Runner{Params: p, DT: adt.NewQueue(), Target: Target{Mutant: "aop-no-eps"}}
	for i := 0; i < 8; i++ {
		cand := boundaryCandidate(p, ops, 7, i)
		sched, out, err := r.RunRule(cand.offsets, cand.plans, cand.net)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := r.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		if replay.Signature() != out.Signature() {
			t.Errorf("corner %d: replay signature %x != original %x", i, replay.Signature(), out.Signature())
		}
		if replay.Violation() != out.Violation() {
			t.Errorf("corner %d: replay violation %q != original %q", i, replay.Violation(), out.Violation())
		}
	}
}

// TestScheduleValidate exercises the schedule validity checks.
func TestScheduleValidate(t *testing.T) {
	p := simtime.DefaultParams(3)
	dt := adt.NewQueue()
	valid := Schedule{
		Offsets: make([]simtime.Duration, 3),
		Delays:  []simtime.Duration{p.D, p.MinDelay()},
		Plans:   [][]PlannedOp{{{Op: "enqueue", Arg: 1, Gap: 0}}, nil, nil},
	}
	if err := valid.Validate(p, dt); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	cases := []struct {
		name string
		edit func(s *Schedule)
	}{
		{"wrong offset count", func(s *Schedule) { s.Offsets = s.Offsets[:2] }},
		{"offset over skew", func(s *Schedule) { s.Offsets[0] = p.Epsilon + 1 }},
		{"delay over d", func(s *Schedule) { s.Delays[0] = p.D + 1 }},
		{"delay under d-u", func(s *Schedule) { s.Delays[1] = p.MinDelay() - 1 }},
		{"wrong plan count", func(s *Schedule) { s.Plans = s.Plans[:2] }},
		{"negative gap", func(s *Schedule) { s.Plans[0][0].Gap = -1 }},
		{"unknown op", func(s *Schedule) { s.Plans[0][0].Op = "frobnicate" }},
	}
	for _, tc := range cases {
		s := valid.Clone()
		tc.edit(&s)
		if err := s.Validate(p, dt); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// TestLookupMutant covers the registry lookups.
func TestLookupMutant(t *testing.T) {
	for _, name := range MutantNames() {
		m, err := LookupMutant(name)
		if err != nil {
			t.Errorf("lookup %s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("lookup %s returned %s", name, m.Name)
		}
	}
	for _, name := range []string{"", "none"} {
		m, err := LookupMutant(name)
		if err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
		if m.Name != Correct {
			t.Errorf("lookup %q returned %q, want the corrected algorithm", name, m.Name)
		}
	}
	if _, err := LookupMutant("no-such-mutant"); err == nil {
		t.Error("expected error for unknown mutant")
	}
}

// TestMutantsRejectedForFolklore checks that mutants only apply to the
// core algorithm.
func TestMutantsRejectedForFolklore(t *testing.T) {
	r := &Runner{
		Params: simtime.DefaultParams(3),
		DT:     adt.NewQueue(),
		Target: Target{Algorithm: harness.AlgCentral, Mutant: "mop-zero"},
	}
	s := Schedule{
		Offsets: make([]simtime.Duration, 3),
		Plans:   [][]PlannedOp{{{Op: "enqueue", Arg: 1}}, nil, nil},
	}
	if _, err := r.Run(s); err == nil {
		t.Error("expected error applying a mutant to a folklore baseline")
	}
}

// TestOpsForFallbacks checks class derivation across data types,
// including types without mixed or pure ops.
func TestOpsForFallbacks(t *testing.T) {
	for _, name := range adt.Names() {
		dt, err := adt.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		s := opsFor(dt)
		if len(s.mutators) == 0 || len(s.accessors) == 0 || len(s.mixed) == 0 || len(s.all) == 0 {
			t.Errorf("%s: empty op class after fallbacks: %+v", name, s)
		}
	}
}

// TestFuzzUnknownStrategy checks option validation.
func TestFuzzUnknownStrategy(t *testing.T) {
	opts := defaultOpts()
	opts.Strategies = []string{"quantum"}
	if _, err := Fuzz(opts); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

// TestOutcomeViolationOrder checks severity ordering of the violation
// kinds.
func TestOutcomeViolationOrder(t *testing.T) {
	o := &Outcome{Fingerprints: []string{"a", "b"}, Incomplete: true}
	o.Check.Linearizable = false
	if got := o.Violation(); got != KindNonLinearizable {
		t.Errorf("got %s, want %s", got, KindNonLinearizable)
	}
	o.Check.Linearizable = true
	if got := o.Violation(); got != KindIncomplete {
		t.Errorf("got %s, want %s", got, KindIncomplete)
	}
	o.Incomplete = false
	if got := o.Violation(); got != KindDiverged {
		t.Errorf("got %s, want %s", got, KindDiverged)
	}
	o.Fingerprints[1] = "a"
	if got := o.Violation(); got != "" {
		t.Errorf("got %s, want clean", got)
	}
}

// TestScheduleString pins the compact rendering format.
func TestScheduleString(t *testing.T) {
	s := Schedule{
		Offsets: []simtime.Duration{1, 0},
		Delays:  []simtime.Duration{5},
		Plans: [][]PlannedOp{
			{{Op: "enqueue", Arg: 7, Gap: 0}, {Op: "peek", Arg: nil, Gap: 3}},
			nil,
		},
	}
	got := s.String()
	want := "offsets [1 0]\ndelays  [5] (then d)\np0: enqueue(7)@0 | peek(⊥)@+3\n"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var _ spec.Value = s.Plans[0][0].Arg
}
