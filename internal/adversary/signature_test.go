package adversary

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// TestCachedSignatureMatchesTraceOracle pins the incremental signature
// (engine step hash continued over message records, available at
// sim.TraceOps) against the original full-trace computation: the
// coverage-greedy strategy's novelty pool, and the campaign report's
// "signatures N distinct" line, depend on the two being byte-identical.
func TestCachedSignatureMatchesTraceOracle(t *testing.T) {
	p := simtime.DefaultParams(3)
	dt, err := adt.Lookup("queue")
	if err != nil {
		t.Fatal(err)
	}
	full := &Runner{Params: p, DT: dt}
	ops := &Runner{Params: p, DT: dt, Trace: sim.TraceOps}
	for i := 0; i < 16; i++ {
		cand := randomCandidate(p, opsFor(dt), 7, "sig-test", i, false)
		outFull, err := full.Run(cand.sched)
		if err != nil {
			t.Fatal(err)
		}
		if !outFull.hasSig {
			t.Fatal("runner outcome missing cached signature")
		}
		oracle := signatureFromTrace(outFull.Trace)
		if outFull.Signature() != oracle {
			t.Fatalf("cand %d: cached signature %x != trace oracle %x",
				i, outFull.Signature(), oracle)
		}
		outOps, err := ops.Run(cand.sched)
		if err != nil {
			t.Fatal(err)
		}
		if len(outOps.Trace.Steps) != 0 {
			t.Fatalf("cand %d: TraceOps runner recorded %d steps", i, len(outOps.Trace.Steps))
		}
		if outOps.Signature() != oracle {
			t.Fatalf("cand %d: TraceOps signature %x != full-trace oracle %x",
				i, outOps.Signature(), oracle)
		}
	}
}
