package adversary

import (
	"lintime/internal/simtime"
)

// ShrinkOptions bounds the shrinking search.
type ShrinkOptions struct {
	// MaxRuns caps the number of schedule executions (default 2000).
	MaxRuns int
}

// Shrink reduces a violating schedule to a locally minimal counterexample
// by delta debugging: it repeatedly tries simplifying edits — dropping
// operations, normalizing delays to the extremes of [d-u, d], zeroing
// clock offsets and invocation gaps, truncating the delay vector — and
// keeps any edit under which the run still violates *some* checked
// property (the violation kind may shift as the schedule shrinks, e.g.
// from non-linearizable to diverged; the final kind is returned). Edits
// are applied in a fixed order to a fixpoint, so the result is
// deterministic. Returns the shrunk schedule, its violation kind, and
// the number of executions spent.
func Shrink(r *Runner, s Schedule, opts ShrinkOptions) (Schedule, string, int, error) {
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 2000
	}
	runs := 0
	// violates replays a candidate and reports its violation kind ("" if
	// the candidate no longer fails). An execution error (which a pure
	// simplification cannot cause) aborts the shrink.
	violates := func(c Schedule) (string, error) {
		runs++
		out, err := r.Run(c)
		if err != nil {
			return "", err
		}
		return out.Violation(), nil
	}

	cur := s.Clone()
	kind, err := violates(cur)
	if err != nil {
		return Schedule{}, "", runs, err
	}
	if kind == "" {
		// Not actually violating (caller bug or a rule/explicit mismatch):
		// return the input unchanged.
		return cur, "", runs, nil
	}

	p := r.Params
	improved := true
	for improved && runs < maxRuns {
		improved = false

		// Pass 1: drop operations, one at a time, later ops first (probes
		// and trailing noise go before the ops that seed the violation).
		for proc := len(cur.Plans) - 1; proc >= 0 && runs < maxRuns; proc-- {
			for i := len(cur.Plans[proc]) - 1; i >= 0 && runs < maxRuns; i-- {
				if cur.NumOps() <= 1 {
					break
				}
				cand := cur.Clone()
				cand.Plans[proc] = append(cand.Plans[proc][:i:i], cand.Plans[proc][i+1:]...)
				if k, err := violates(cand); err != nil {
					return Schedule{}, "", runs, err
				} else if k != "" {
					cur, kind, improved = cand, k, true
				}
			}
		}

		// Pass 2: normalize every delay to d, then to d-u.
		for i := 0; i < len(cur.Delays) && runs < maxRuns; i++ {
			for _, v := range []simtime.Duration{p.D, p.MinDelay()} {
				if cur.Delays[i] == v {
					break // already the preferred extreme
				}
				cand := cur.Clone()
				cand.Delays[i] = v
				if k, err := violates(cand); err != nil {
					return Schedule{}, "", runs, err
				} else if k != "" {
					cur, kind, improved = cand, k, true
					break
				}
			}
		}

		// Pass 3: zero clock offsets.
		for i := 0; i < len(cur.Offsets) && runs < maxRuns; i++ {
			if cur.Offsets[i] == 0 {
				continue
			}
			cand := cur.Clone()
			cand.Offsets[i] = 0
			if k, err := violates(cand); err != nil {
				return Schedule{}, "", runs, err
			} else if k != "" {
				cur, kind, improved = cand, k, true
			}
		}

		// Pass 4: zero invocation gaps.
		for proc := 0; proc < len(cur.Plans) && runs < maxRuns; proc++ {
			for i := 0; i < len(cur.Plans[proc]) && runs < maxRuns; i++ {
				if cur.Plans[proc][i].Gap == 0 {
					continue
				}
				cand := cur.Clone()
				cand.Plans[proc][i].Gap = 0
				if k, err := violates(cand); err != nil {
					return Schedule{}, "", runs, err
				} else if k != "" {
					cur, kind, improved = cand, k, true
				}
			}
		}

		// Pass 5: remove crashes (set to Infinity), else normalize a
		// surviving crash to time 0.
		for i := 0; i < len(cur.Crashes) && runs < maxRuns; i++ {
			if cur.Crashes[i] == simtime.Infinity {
				continue
			}
			for _, v := range []simtime.Time{simtime.Infinity, 0} {
				if cur.Crashes[i] == v {
					break
				}
				cand := cur.Clone()
				cand.Crashes[i] = v
				if k, err := violates(cand); err != nil {
					return Schedule{}, "", runs, err
				} else if k != "" {
					cur, kind, improved = cand, k, true
					break
				}
			}
		}

		// Pass 6: remove message drops, one at a time.
		for i := len(cur.Drops) - 1; i >= 0 && runs < maxRuns; i-- {
			cand := cur.Clone()
			cand.Drops = append(cand.Drops[:i:i], cand.Drops[i+1:]...)
			if k, err := violates(cand); err != nil {
				return Schedule{}, "", runs, err
			} else if k != "" {
				cur, kind, improved = cand, k, true
			}
		}
	}

	// Final tidy: truncate the delay vector to the messages actually sent
	// (the tail is dead weight; replay is unchanged since out-of-range
	// sends already default to d — dropped sends still consume their
	// ordinal, so the recorded message count remains the right cutoff).
	if out, err := r.Run(cur); err == nil {
		runs++
		if n := len(out.Trace.Msgs); n < len(cur.Delays) {
			cand := cur.Clone()
			cand.Delays = cand.Delays[:n]
			if k, err2 := violates(cand); err2 == nil && k != "" {
				cur, kind = cand, k
			}
		}
	}
	// A crash axis with no finite entry is semantically absent: drop it
	// without a replay.
	if len(cur.Crashes) > 0 && cur.NumCrashed() == 0 {
		cur.Crashes = nil
	}

	return cur, kind, runs, nil
}
