package adversary

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// fuzzReader consumes the fuzzer's byte string left to right; exhausted
// input reads as zero so every byte string decodes to some valid
// schedule (coverage-guided mutation must never hit a reject wall).
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) next() byte {
	if r.i < len(r.data) {
		b := r.data[r.i]
		r.i++
		return b
	}
	return 0
}

// decodeQuorumSchedule maps an arbitrary byte string onto an admissible
// crash/loss schedule for the ABD quorum register: n ∈ {2,3}, up to five
// operations with bounded gaps, explicit delays in [d−u, d], at most a
// minority of crashes, and a handful of dropped send ordinals. Keeping
// the op count small keeps the brute-force reference check tractable.
func decodeQuorumSchedule(data []byte) (simtime.Params, Schedule) {
	r := &fuzzReader{data: data}
	n := 2 + int(r.next())%2
	p := quorumParams(n)

	s := Schedule{
		Offsets: make([]simtime.Duration, n),
		Plans:   make([][]PlannedOp, n),
	}
	ops := 1 + int(r.next())%5
	for i := 0; i < ops; i++ {
		proc := int(r.next()) % n
		op := adt.OpWrite
		var arg spec.Value
		if r.next()%2 == 0 {
			op = adt.OpRead
		} else {
			arg = int(r.next() % 4)
		}
		gap := simtime.Duration(r.next()%8) * simtime.Quantum
		s.Plans[proc] = append(s.Plans[proc], PlannedOp{Op: op, Arg: arg, Gap: gap})
	}
	delays := int(r.next()) % 33
	for i := 0; i < delays; i++ {
		frac := simtime.Duration(r.next())
		s.Delays = append(s.Delays, p.D-p.U+frac*p.U/255)
	}
	maxCrash := (n - 1) / 2
	if crashes := int(r.next()) % (maxCrash + 1); crashes > 0 {
		s.Crashes = make([]simtime.Time, n)
		for i := range s.Crashes {
			s.Crashes[i] = simtime.Infinity
		}
		for i := 0; i < crashes; i++ {
			proc := int(r.next()) % n
			s.Crashes[proc] = simtime.Time(r.next()) * simtime.Time(simtime.Quantum) / 4
		}
	}
	drops := int(r.next()) % 4
	for i := 0; i < drops; i++ {
		s.Drops = append(s.Drops, int64(r.next())%40)
	}
	return p, s
}

// refRegisterCheck is a brute-force reference linearizability check for
// the fuzz histories: plain recursive enumeration of every permutation
// respecting real-time precedence, with completed operations required to
// match their recorded returns and pending operations (including those
// orphaned by a crash) free to take effect or be dropped. No memoization,
// no pruning — slow but obviously correct at the ≤ 5-op sizes the
// decoder emits, and entirely independent of the production checker.
func refRegisterCheck(dt spec.DataType, history []lincheck.Op) bool {
	taken := make([]bool, len(history))
	var rec func(st spec.State, completedLeft int) bool
	rec = func(st spec.State, completedLeft int) bool {
		if completedLeft == 0 {
			return true
		}
		minRespond := simtime.Infinity
		for i, t := range taken {
			if !t && history[i].Respond < minRespond {
				minRespond = history[i].Respond
			}
		}
		for i, t := range taken {
			if t {
				continue
			}
			op := history[i]
			if op.Invoke > minRespond {
				continue
			}
			ret, next := st.Apply(op.Name, op.Arg)
			if !op.Pending() && !spec.ValuesEqual(ret, op.Ret) {
				continue
			}
			left := completedLeft
			if !op.Pending() {
				left--
			}
			taken[i] = true
			if rec(next, left) {
				taken[i] = false
				return true
			}
			taken[i] = false
		}
		return false
	}
	completed := 0
	for _, op := range history {
		if !op.Pending() {
			completed++
		}
	}
	return rec(dt.Initial(), completed)
}

// FuzzQuorum is the native coverage-guided hunt over the ABD quorum
// register's fault space: every byte string decodes to an admissible
// crash/loss schedule, the trace is cross-checked against the
// brute-force atomic-register reference, and any history the correct
// protocol produces must be linearizable. A failure here is either a
// protocol bug (quorum intersection broken under the decoded faults) or
// a checker bug (lincheck disagrees with the reference).
func FuzzQuorum(f *testing.F) {
	// Overlapping write/read with delay spread, a crash at p2 under a
	// read racing the write-back, two transit drops, and two concurrent
	// writers at n=2.
	f.Add([]byte{1, 2, 0, 1, 1, 0, 1, 0, 0, 0, 2, 1, 2, 2, 4, 0, 255, 128, 64, 0, 0})
	f.Add([]byte{1, 1, 0, 1, 3, 0, 1, 0, 0, 4, 0, 1, 2, 8, 0})
	f.Add([]byte{1, 1, 0, 1, 1, 0, 1, 0, 0, 2, 0, 0, 2, 3, 5})
	f.Add([]byte{0, 2, 0, 1, 1, 0, 1, 1, 2, 0, 0, 0, 0, 1, 2, 255, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, s := decodeQuorumSchedule(data)
		dt := adt.NewRegister(0)
		r := &Runner{Params: p, DT: dt, Target: Target{Algorithm: harness.AlgQuorum}}
		out, err := r.Run(s)
		if err != nil {
			t.Fatalf("decoded schedule rejected: %v\n%s", err, s)
		}
		want := refRegisterCheck(dt, lincheck.FromTrace(out.Trace))
		if got := out.Check.Linearizable; got != want {
			t.Fatalf("lincheck = %v, brute-force reference = %v\nschedule:\n%s", got, want, s)
		}
		if !want {
			t.Fatalf("correct ABD produced a non-linearizable history under faults\nschedule:\n%s", s)
		}
	})
}
