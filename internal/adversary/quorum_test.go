package adversary

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/simtime"
)

// quorumParams are the fuzzing parameters used against the ABD quorum
// backend: a wide delay uncertainty (u = 3d/4) so that fast and slow
// message interleavings diverge enough to expose stale reads. The
// quorum protocol reads no clocks, so ε and X are irrelevant and kept 0.
func quorumParams(n int) simtime.Params {
	return simtime.Params{N: n, D: 8 * simtime.Quantum, U: 6 * simtime.Quantum}
}

// TestQuorumKillMatrix is the crash-tolerance headline: schedule
// exploration with fault axes (crashes, drops) kills every seeded ABD
// mutant while the correct protocol survives the same budget.
func TestQuorumKillMatrix(t *testing.T) {
	opts := Options{
		Params: quorumParams(3),
		DT:     adt.NewRegister(0),
		Target: Target{Algorithm: harness.AlgQuorum},
		Seed:   1,
		Budget: 16384,
		Shrink: true,
	}
	entries, err := KillMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 { // control + 4 mutants
		t.Fatalf("expected 5 kill-matrix rows, got %d", len(entries))
	}
	for _, e := range entries {
		if e.Mutant == "correct" {
			if e.Killed {
				t.Errorf("control (correct ABD) was killed: kind=%s", e.Kind)
			}
			continue
		}
		if !e.Killed {
			t.Errorf("mutant %q survived %d schedules", e.Mutant, e.Schedules)
			continue
		}
		t.Logf("mutant %-18s killed after %4d schedules (%s)", e.Mutant, e.Schedules, e.Kind)
		if e.Shrunk != nil {
			t.Logf("  shrunk: %s", e.Shrunk)
		}
	}
}

// TestQuorumFaultScheduleAdmissible pins the fault-axis plumbing: a
// schedule with a crash and a dropped message runs against the quorum
// backend, produces an admissible trace, and completes (modulo ops
// invoked at crashed processes).
func TestQuorumFaultSchedule(t *testing.T) {
	p := quorumParams(3)
	r := &Runner{Params: p, DT: adt.NewRegister(0), Target: Target{Algorithm: harness.AlgQuorum}}
	s := Schedule{
		Offsets: make([]simtime.Duration, 3),
		Plans: [][]PlannedOp{
			{{Op: adt.OpWrite, Arg: 1}},
			{{Op: adt.OpRead, Gap: 2 * p.D}},
			nil,
		},
		Crashes: []simtime.Time{simtime.Infinity, simtime.Infinity, 0},
		Drops:   []int64{0},
	}
	out, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Violation(); v != "" {
		t.Fatalf("fault schedule violated %q unexpectedly", v)
	}
	dropped := 0
	for _, m := range out.Trace.Msgs {
		if m.Dropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("expected dropped messages in trace (crash at p2 plus drop ordinal 0)")
	}
}

// TestFaultGate pins the admissibility boundary: fault axes against a
// target that assumes reliable processes must be rejected, not silently
// ignored.
func TestFaultGate(t *testing.T) {
	p := simtime.DefaultParams(3)
	r := &Runner{Params: p, DT: adt.NewRegister(0), Target: Target{Algorithm: harness.AlgCore}}
	s := Schedule{
		Offsets: make([]simtime.Duration, 3),
		Plans:   [][]PlannedOp{{{Op: adt.OpWrite, Arg: 1}}, nil, nil},
		Crashes: []simtime.Time{simtime.Infinity, simtime.Infinity, 0},
	}
	if _, err := r.Run(s); err == nil {
		t.Fatal("expected fault-gate error for crash schedule against core target")
	}
}
