package adversary

import (
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
)

// TestRunnerRejectsInadmissibleDelay pins the canonical admissibility
// predicate on the execution path itself: every consumer (fuzzer, strong
// hunt, bounded model checker) funnels schedules through Runner.Run,
// which must refuse a delay outside [d-u, d] — a second, drifted
// validator in one of the consumers would silently shrink the exhaustive
// space the BMC claims to cover.
func TestRunnerRejectsInadmissibleDelay(t *testing.T) {
	p := simtime.DefaultParams(3)
	r := &Runner{Params: p, DT: adt.NewQueue()}
	base := Schedule{
		Offsets: make([]simtime.Duration, 3),
		Delays:  []simtime.Duration{p.D, p.MinDelay()},
		Plans:   [][]PlannedOp{{{Op: "enqueue", Arg: 1}}, nil, nil},
	}
	if _, err := r.Run(base); err != nil {
		t.Fatalf("admissible schedule rejected: %v", err)
	}
	for _, bad := range []simtime.Duration{p.MinDelay() - 1, p.D + 1} {
		s := base.Clone()
		s.Delays[0] = bad
		if _, err := r.Run(s); err == nil {
			t.Errorf("Run accepted inadmissible delay %v (admissible range [%v, %v])", bad, p.MinDelay(), p.D)
		}
	}
}

// TestStrongHuntFindsForkOnPaperTimers is the headline property: under
// the paper's literal accessor bound (the aop-no-eps mutant, d-X without
// the +ε correction) there are admissible executions that are
// linearizable in every future yet not strongly linearizable — the
// adversary forks a single message delay and the accessor's return
// reveals a different order in each future. The hunt must find, and the
// shrinker must preserve, such a pair.
func TestStrongHuntFindsForkOnPaperTimers(t *testing.T) {
	rep, err := StrongHunt(StrongOptions{
		Params:    simtime.DefaultParams(3),
		DT:        adt.NewQueue(),
		Target:    Target{Mutant: "aop-no-eps"},
		Seed:      7,
		Budget:    16,
		StopEarly: true,
		Shrink:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("no strong-linearizability violation found (%d bases, %d forks, %d pairs)",
			rep.Bases, rep.Forks, rep.Pairs)
	}
	v := rep.Violations[0]
	if v.Shrunk == nil {
		t.Fatalf("violation not shrunk")
	}
	// Re-establish the shrunk pair from scratch: both futures clean,
	// histories diverging, tree check failing.
	p := simtime.DefaultParams(3)
	r := &Runner{Params: p, DT: adt.NewQueue(), Target: Target{Mutant: "aop-no-eps"}}
	baseOut, err := r.Run(*v.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if baseOut.Violation() != "" {
		t.Fatalf("shrunk base violates %q: not a strong-only counterexample", baseOut.Violation())
	}
	idx, delay, _, _, _, found, err := findFork(r, *v.Shrunk, baseOut)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("shrunk schedule no longer admits a violating fork")
	}
	if idx != v.ShrunkForkIndex || delay != v.ShrunkForkDelay {
		t.Errorf("fork drifted: got (%d, %v), report says (%d, %v)", idx, delay, v.ShrunkForkIndex, v.ShrunkForkDelay)
	}
	var b strings.Builder
	if err := WriteStrongReport(&b, r, rep); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"strong violation 1", "fork: delay[", "future A", "future B", "diverging response"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestStrongHuntFindsForkOnCorrectedAlgorithm is the empirical
// realization of the Chandra–Hadzilacos–Jayanti–Toueg impossibility on
// this codebase: even the *corrected* Algorithm 1 — fully linearizable
// under every admissible schedule — is not strongly linearizable. The
// mechanism lives in the execute-wait drain: accessors backdate their
// timestamp by X while mixed ops do not, so a concurrent mixed op with a
// larger timestamp can be committed into replica state (its u+ε execute
// timer fires) before the accessor's respond timer does. Forking one
// delay moves that commit across the accessor's speculative read, and
// both futures stay individually linearizable because the mixed op's
// response pins its commit into the shared prefix.
func TestStrongHuntFindsForkOnCorrectedAlgorithm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := StrongHunt(StrongOptions{
		Params:    simtime.DefaultParams(3),
		DT:        adt.NewQueue(),
		Seed:      7,
		Budget:    16,
		StopEarly: true,
		Shrink:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("corrected algorithm produced no strong-linearizability fork (%d bases, %d forks, %d pairs) — "+
			"the CHHT counterexample should be reachable", rep.Bases, rep.Forks, rep.Pairs)
	}
	v := rep.Violations[0]
	if v.Shrunk == nil {
		t.Fatalf("violation not shrunk")
	}
	// Both futures of the shrunk pair must be clean (linearizable,
	// complete, convergent): the violation is strictly about prefix
	// preservation, not plain correctness of the corrected algorithm.
	p := simtime.DefaultParams(3)
	r := &Runner{Params: p, DT: adt.NewQueue()}
	baseOut, err := r.Run(*v.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if baseOut.Violation() != "" {
		t.Fatalf("shrunk base violates %q: corrected algorithm must stay linearizable", baseOut.Violation())
	}
	forkOut, err := r.Run(ForkOf(*v.Shrunk, v.ShrunkForkIndex, v.ShrunkForkDelay))
	if err != nil {
		t.Fatal(err)
	}
	if forkOut.Violation() != "" {
		t.Fatalf("shrunk fork violates %q: corrected algorithm must stay linearizable", forkOut.Violation())
	}
	if historiesEqual(baseOut.Trace, forkOut.Trace) {
		t.Fatalf("shrunk pair no longer diverges")
	}
}
