package adversary

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/simtime"
)

// BenchmarkFuzzCampaign measures adversarial-schedule throughput: one
// 128-schedule campaign (two batches) against the corrected algorithm,
// sequentially, so ns/op divided by 128 is the per-schedule cost and
// schedules/sec is reported as a custom metric.
func BenchmarkFuzzCampaign(b *testing.B) {
	p := simtime.DefaultParams(3)
	dt, err := adt.Lookup("queue")
	if err != nil {
		b.Fatal(err)
	}
	const budget = 128
	var rep *Report
	for i := 0; i < b.N; i++ {
		rep, err = Fuzz(Options{Params: p, DT: dt, Seed: 1, Budget: budget, Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			b.Fatal("correct algorithm flagged")
		}
	}
	b.ReportMetric(float64(budget)*float64(b.N)/b.Elapsed().Seconds(), "schedules/sec")
}

// BenchmarkRunnerRun measures one schedule execution end to end (engine
// run + admissibility + linearizability check), the unit of work every
// strategy pays per candidate.
func BenchmarkRunnerRun(b *testing.B) {
	p := simtime.DefaultParams(3)
	dt, err := adt.Lookup("queue")
	if err != nil {
		b.Fatal(err)
	}
	r := &Runner{Params: p, DT: dt}
	cand := randomCandidate(p, opsFor(dt), 1, "bench", 0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cand.sched); err != nil {
			b.Fatal(err)
		}
	}
}
