package adversary

import (
	"fmt"
	"strings"

	"lintime/internal/core"
	"lintime/internal/simtime"
)

// Mutant is one deliberately broken variant of Algorithm 1, obtained by
// weakening a single wait (or reinstating the paper's literal pseudocode
// where the reproduction corrects it). Each mutant corresponds to a
// documented failure mode — see EXPERIMENTS.md's ablation table and
// Finding 1 — and the fuzzer's kill matrix asserts that schedule
// exploration rediscovers every one of them from scratch, while never
// flagging the corrected algorithm. The matrix is evaluated at the
// default parameters (ε > 0, X > 0); a mutant whose weakened wait is not
// exercised by the parameters (e.g. a dropped +ε at ε = 0) is genuinely
// correct there and has nothing to kill.
type Mutant struct {
	Name string
	Desc string
	// Timers builds the (broken) timer durations.
	Timers func(p simtime.Params) core.Timers
	// LiteralDrain enables the paper's literal accessor drain commit.
	LiteralDrain bool
}

// Correct is the name of the non-mutant: the corrected Algorithm 1.
const Correct = ""

// Mutants returns the seeded-bug registry in fixed order.
func Mutants() []Mutant {
	return []Mutant{
		{
			Name: "aop-no-eps",
			Desc: "pure-accessor wait d-X without the +ε correction (paper's literal bound; EXPERIMENTS.md Finding 1)",
			Timers: func(p simtime.Params) core.Timers {
				t := core.DefaultTimers(p)
				t.AOPRespond = p.D - p.X
				return t
			},
		},
		{
			Name: "literal-drain",
			Desc: "paper's d-X wait plus the literal drain that permanently commits the accessor's view (replicas diverge)",
			Timers: func(p simtime.Params) core.Timers {
				t := core.DefaultTimers(p)
				t.AOPRespond = p.D - p.X
				return t
			},
			LiteralDrain: true,
		},
		{
			Name: "exec-no-eps",
			Desc: "execute stabilization wait u instead of u+ε (skewed concurrent mutators commit in different orders)",
			Timers: func(p simtime.Params) core.Timers {
				t := core.DefaultTimers(p)
				t.ExecuteWait = p.U
				return t
			},
		},
		{
			Name: "addself-zero",
			Desc: "d-u self-delay removed (a mixed op executes before a completed remote mutator arrives)",
			Timers: func(p simtime.Params) core.Timers {
				t := core.DefaultTimers(p)
				t.AddSelf = 0
				return t
			},
		},
		{
			Name: "mop-zero",
			Desc: "pure mutators respond immediately instead of after X+ε (a later op on a lagging clock gets a smaller timestamp)",
			Timers: func(p simtime.Params) core.Timers {
				t := core.DefaultTimers(p)
				t.MOPRespond = 0
				return t
			},
		},
	}
}

// MutantNames lists the registry names in order.
func MutantNames() []string {
	ms := Mutants()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// LookupMutant resolves a mutant by name; the empty name selects the
// corrected Algorithm 1.
func LookupMutant(name string) (Mutant, error) {
	if name == Correct || name == "none" {
		return Mutant{Name: Correct, Desc: "corrected Algorithm 1", Timers: core.DefaultTimers}, nil
	}
	for _, m := range Mutants() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mutant{}, fmt.Errorf("adversary: unknown mutant %q (have %s)", name, strings.Join(MutantNames(), ", "))
}
