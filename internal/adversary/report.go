package adversary

import (
	"fmt"
	"io"
	"strings"

	"lintime/internal/diagram"
)

// WriteReport renders a campaign report as deterministic plain text,
// including a rendered space-time diagram for each (shrunk) violation.
func WriteReport(w io.Writer, r *Runner, rep *Report) error {
	fmt.Fprintf(w, "target      %s on %s\n", rep.Target, r.DT.Name())
	fmt.Fprintf(w, "params      n=%d d=%v u=%v eps=%v X=%v\n",
		r.Params.N, r.Params.D, r.Params.U, r.Params.Epsilon, r.Params.X)
	fmt.Fprintf(w, "schedules   %d", rep.Schedules)
	parts := make([]string, 0, len(rep.ByStrategy))
	for _, s := range rep.SortedStrategies() {
		parts = append(parts, fmt.Sprintf("%s %d", s, rep.ByStrategy[s]))
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, " (%s)", strings.Join(parts, ", "))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "signatures  %d distinct event orderings\n", rep.Signatures)
	fmt.Fprintf(w, "violations  %d\n", len(rep.Violations))
	for vi := range rep.Violations {
		v := &rep.Violations[vi]
		fmt.Fprintf(w, "\n--- violation %d: %s (schedule %d, strategy %s) ---\n",
			vi+1, v.Kind, v.Index, v.Strategy)
		minimal := v.Schedule
		if v.Shrunk != nil {
			fmt.Fprintf(w, "shrunk from %d ops / %d delays to %d ops / %d delays in %d runs; minimal violation: %s\n",
				v.Schedule.NumOps(), len(v.Schedule.Delays),
				v.Shrunk.NumOps(), len(v.Shrunk.Delays), v.Runs, v.ShrunkKind)
			minimal = *v.Shrunk
		}
		fmt.Fprint(w, minimal.String())
		if err := writeDiagram(w, r, minimal); err != nil {
			return err
		}
	}
	return nil
}

// writeDiagram replays a schedule and renders its space-time diagram.
func writeDiagram(w io.Writer, r *Runner, s Schedule) error {
	out, err := r.Run(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed violation: %s\n", out.Violation())
	fmt.Fprint(w, diagram.Render(out.Trace, diagram.Options{SuppressMessages: true, MaxRows: 40}))
	return nil
}

// WriteKillMatrix renders a mutant kill matrix as deterministic text.
func WriteKillMatrix(w io.Writer, r *Runner, entries []KillEntry) error {
	nameW := 14
	for _, e := range entries {
		if len(e.Mutant)+1 > nameW {
			nameW = len(e.Mutant) + 1
		}
	}
	fmt.Fprintf(w, "%-*s %-24s %-10s %s\n", nameW, "mutant", "verdict", "schedules", "description")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 84))
	for _, e := range entries {
		verdict := "survived"
		if e.Killed {
			verdict = "killed: " + e.Kind
		} else if e.Mutant == "correct" {
			verdict = "clean"
		}
		fmt.Fprintf(w, "%-*s %-24s %-10d %s\n", nameW, e.Mutant, verdict, e.Schedules, e.Desc)
	}
	for _, e := range entries {
		if e.Shrunk == nil {
			continue
		}
		fmt.Fprintf(w, "\n--- %s minimal counterexample (%s) ---\n", e.Mutant, e.ShrunkKind)
		fmt.Fprint(w, e.Shrunk.String())
		target := Target{Algorithm: r.Target.Algorithm, Mutant: e.Mutant}
		rr := &Runner{Params: r.Params, DT: r.DT, Target: target, CheckWorkers: r.CheckWorkers}
		if err := writeDiagram(w, rr, *e.Shrunk); err != nil {
			return err
		}
	}
	return nil
}
