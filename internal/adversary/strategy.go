package adversary

import (
	"fmt"
	"math/rand"

	"lintime/internal/classify"
	"lintime/internal/harness"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// Strategy names.
const (
	StratBoundary = "boundary"
	StratRandom   = "random"
	StratCoverage = "coverage"
	// StratFaultCorner enumerates deterministic crash/drop corner
	// schedules derived from the quorum protocol's phase structure. It
	// applies only to crash-tolerant targets; against reliable-channel
	// targets it is skipped (or rejected when requested explicitly).
	StratFaultCorner = "faultcorner"
)

// Strategies lists the generation strategies in fixed order.
func Strategies() []string {
	return []string{StratBoundary, StratRandom, StratCoverage, StratFaultCorner}
}

// candidate is one generated adversary: either rule-based (net != nil;
// concretized by the runner) or an explicit schedule (coverage mutants).
type candidate struct {
	offsets []simtime.Duration
	plans   [][]PlannedOp
	net     sim.Network
	sched   Schedule // used when net == nil
}

// funcNetwork adapts a function to sim.Network.
type funcNetwork func(from, to sim.ProcID, at simtime.Time, msgIndex int64) simtime.Duration

// Delay implements sim.Network.
func (f funcNetwork) Delay(from, to sim.ProcID, at simtime.Time, msgIndex int64) simtime.Duration {
	return f(from, to, at, msgIndex)
}

// opset holds representative operations of each Algorithm 1 class for a
// data type, with graceful fallbacks for types missing a class.
type opset struct {
	mutators  []spec.OpInfo // pure mutators (fallback: mixed)
	accessors []spec.OpInfo // pure accessors (fallback: mixed)
	mixed     []spec.OpInfo // mixed (fallback: all ops)
	all       []spec.OpInfo
}

// opsFor classifies dt's operations into the sets the plan templates
// draw from.
func opsFor(dt spec.DataType) opset {
	classes := harness.ClassesFor(dt)
	var s opset
	for _, info := range dt.Ops() {
		s.all = append(s.all, info)
		switch classes[info.Name] {
		case classify.PureMutator:
			s.mutators = append(s.mutators, info)
		case classify.PureAccessor:
			s.accessors = append(s.accessors, info)
		default:
			s.mixed = append(s.mixed, info)
		}
	}
	if len(s.mixed) == 0 {
		s.mixed = s.all
	}
	if len(s.mutators) == 0 {
		s.mutators = s.mixed
	}
	if len(s.accessors) == 0 {
		s.accessors = s.mixed
	}
	return s
}

// argAt picks a deterministic argument sample, spreading distinct values
// across processes so violations are observable.
func argAt(info spec.OpInfo, i int) spec.Value {
	return info.Args[i%len(info.Args)]
}

// planned builds a PlannedOp from an op sample.
func planned(info spec.OpInfo, i int, gap simtime.Duration) PlannedOp {
	return PlannedOp{Op: info.Name, Arg: argAt(info, i), Gap: gap}
}

// addProbes appends post-quiescence accessor probes to the first two
// processes. The probes fire long after all other activity has settled,
// so they read each replica's committed state: a diverged pair of
// replicas turns into two sequential accessors returning inconsistent
// values — a black-box linearizability violation rather than an internal
// fingerprint mismatch.
func addProbes(plans [][]PlannedOp, ops opset, p simtime.Params) [][]PlannedOp {
	probe := ops.accessors[0]
	plans[0] = append(plans[0], planned(probe, 0, 5*p.D))
	if p.N > 1 {
		plans[1] = append(plans[1], planned(probe, 0, 8*p.D))
	}
	return plans
}

// emptyPlans allocates one empty plan per process.
func emptyPlans(n int) [][]PlannedOp { return make([][]PlannedOp, n) }

// --- offset patterns ---

var offsetPatterns = []struct {
	name  string
	build func(n int, eps simtime.Duration) []simtime.Duration
}{
	{"zero", func(n int, eps simtime.Duration) []simtime.Duration { return sim.ZeroOffsets(n) }},
	{"spread", sim.SpreadOffsets},
	{"alternating", sim.AlternatingOffsets},
	{"first-ahead", func(n int, eps simtime.Duration) []simtime.Duration {
		out := make([]simtime.Duration, n)
		out[0] = eps
		return out
	}},
	{"last-ahead", func(n int, eps simtime.Duration) []simtime.Duration {
		out := make([]simtime.Duration, n)
		out[n-1] = eps
		return out
	}},
	{"reverse-spread", func(n int, eps simtime.Duration) []simtime.Duration {
		out := sim.SpreadOffsets(n, eps)
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}},
}

// --- delay rules ---

// delayRules are extremal per-message delay assignments; every rule keeps
// delays in {d-u, midpoint, d}.
var delayRules = []struct {
	name  string
	build func(p simtime.Params) sim.Network
}{
	{"all-max", func(p simtime.Params) sim.Network { return sim.UniformNetwork{D: p.D} }},
	{"all-min", func(p simtime.Params) sim.Network { return sim.UniformNetwork{D: p.MinDelay()} }},
	{"low-senders-slow", func(p simtime.Params) sim.Network {
		return funcNetwork(func(from, _ sim.ProcID, _ simtime.Time, _ int64) simtime.Duration {
			if int(from) < p.N/2 {
				return p.D
			}
			return p.MinDelay()
		})
	}},
	{"low-senders-fast", func(p simtime.Params) sim.Network {
		return funcNetwork(func(from, _ sim.ProcID, _ simtime.Time, _ int64) simtime.Duration {
			if int(from) < p.N/2 {
				return p.MinDelay()
			}
			return p.D
		})
	}},
	{"downhill-slow", func(p simtime.Params) sim.Network {
		return funcNetwork(func(from, to sim.ProcID, _ simtime.Time, _ int64) simtime.Duration {
			if from > to {
				return p.D
			}
			return p.MinDelay()
		})
	}},
	{"parity", func(p simtime.Params) sim.Network {
		return funcNetwork(func(_, _ sim.ProcID, _ simtime.Time, idx int64) simtime.Duration {
			if idx%2 == 0 {
				return p.D
			}
			return p.MinDelay()
		})
	}},
	{"p1-slow", func(p simtime.Params) sim.Network {
		return funcNetwork(func(from, _ sim.ProcID, _ simtime.Time, _ int64) simtime.Duration {
			if from == 1 {
				return p.D
			}
			return p.MinDelay()
		})
	}},
}

// --- plan templates ---

// planTemplates build invocation plans around a data type's op classes.
type planTemplate struct {
	name  string
	build func(p simtime.Params, ops opset) [][]PlannedOp
}

func planTemplates() []planTemplate {
	return []planTemplate{
		{"mutator-storm", func(p simtime.Params, ops opset) [][]PlannedOp {
			plans := emptyPlans(p.N)
			for i := 0; i < p.N; i++ {
				plans[i] = append(plans[i], planned(ops.mutators[i%len(ops.mutators)], i, 0))
			}
			return plans
		}},
		{"accessor-ahead", func(p simtime.Params, ops opset) [][]PlannedOp {
			// The Finding 1 shape: an accessor on a fast clock invoked
			// inside the window (X-ε, X) while every other process mutates
			// at time 0 — its backdated timestamp dominates the mutators'.
			plans := emptyPlans(p.N)
			start := simtime.Max(0, p.X-p.Epsilon) + simtime.Min(p.X, p.Epsilon)/2
			plans[0] = append(plans[0], planned(ops.accessors[0], 0, start))
			for i := 1; i < p.N; i++ {
				plans[i] = append(plans[i], planned(ops.mutators[i%len(ops.mutators)], i, 0))
			}
			return plans
		}},
		{"staggered-mutators", func(p simtime.Params, ops opset) [][]PlannedOp {
			plans := emptyPlans(p.N)
			step := p.Epsilon / simtime.Duration(max(1, p.N-1))
			for i := 0; i < p.N; i++ {
				plans[i] = append(plans[i], planned(ops.mutators[i%len(ops.mutators)], i, simtime.Duration(i)*step))
			}
			return plans
		}},
		{"mutator-then-mixed", func(p simtime.Params, ops opset) [][]PlannedOp {
			// A mixed op invoked just after a remote mutator completed:
			// the shape that defeats a missing self-delay.
			plans := emptyPlans(p.N)
			plans[0] = append(plans[0], planned(ops.mutators[0], 1, 0))
			if p.N > 1 {
				plans[1] = append(plans[1], planned(ops.mixed[0], 1, p.X+p.Epsilon+1))
			}
			return plans
		}},
		{"pairs", func(p simtime.Params, ops opset) [][]PlannedOp {
			plans := emptyPlans(p.N)
			for i := 0; i < p.N; i++ {
				plans[i] = append(plans[i],
					planned(ops.mutators[i%len(ops.mutators)], i, 0),
					planned(ops.accessors[i%len(ops.accessors)], i, 0))
			}
			return plans
		}},
		{"lone-mutator", func(p simtime.Params, ops opset) [][]PlannedOp {
			plans := emptyPlans(p.N)
			for i := 0; i < p.N; i++ {
				if i == 1 || p.N == 1 {
					plans[i] = append(plans[i], planned(ops.mutators[0], i, 0))
				} else {
					plans[i] = append(plans[i], planned(ops.accessors[i%len(ops.accessors)], i, 0))
				}
			}
			return plans
		}},
	}
}

// --- curated corners ---

// curatedCorners are the handcrafted extremal schedules generalizing the
// repository's failure-injection ablations to arbitrary parameters. They
// come first in the boundary enumeration so that every seeded mutant dies
// within a handful of schedules even at tiny budgets; the rest of the
// boundary space then sweeps the full pattern product.
func curatedCorners(p simtime.Params, ops opset) []candidate {
	if p.N < 3 {
		return nil
	}
	var out []candidate

	// 1. Finding 1 corner: accessor on the fast clock, lowest-id mutator's
	// announcements at maximum delay, everyone else's at minimum. With the
	// paper's d-X wait the accessor observes a non-prefix of the timestamp
	// order; post-quiescence probes pin the committed order.
	{
		plans := emptyPlans(p.N)
		start := simtime.Max(0, p.X-p.Epsilon) + simtime.Min(p.X, p.Epsilon)/2
		plans[0] = append(plans[0], planned(ops.accessors[0], 0, start))
		for i := 1; i < p.N; i++ {
			plans[i] = append(plans[i], planned(ops.mutators[i%len(ops.mutators)], i, 0))
		}
		out = append(out, candidate{
			offsets: offsetPatterns[3].build(p.N, p.Epsilon), // first-ahead
			plans:   addProbes(plans, ops, p),
			net:     delayRules[6].build(p), // p1-slow
		})
	}

	// 2. Execute-wait corner: two near-simultaneous mutators whose
	// real-time send order is the reverse of their timestamp order (the
	// later sender's clock runs behind); the earlier send travels fast,
	// the later one slow. A stabilization wait of u alone commits them in
	// arrival order at third parties.
	{
		plans := emptyPlans(p.N)
		plans[0] = append(plans[0], planned(ops.mutators[0], 0, 0))
		plans[1] = append(plans[1], planned(ops.mutators[1%len(ops.mutators)], 1, p.Epsilon/2))
		out = append(out, candidate{
			offsets: offsetPatterns[3].build(p.N, p.Epsilon), // first-ahead
			plans:   addProbes(plans, ops, p),
			net: funcNetwork(func(from, _ sim.ProcID, _ simtime.Time, _ int64) simtime.Duration {
				if from == 1 {
					return p.D
				}
				return p.MinDelay()
			}),
		})
	}

	// 3. Self-delay corner: a mixed op concurrent with a remote mutator
	// whose announcement travels at the maximum delay. Without the d-u
	// self-delay the mixed op executes before the (smaller-timestamped)
	// mutator arrives, and its own announcement reaches the mutator's
	// replica in time — so the two replicas commit in opposite orders.
	{
		plans := emptyPlans(p.N)
		start := simtime.Max(1, (p.D-p.U-p.Epsilon)/2)
		plans[0] = append(plans[0], planned(ops.mixed[0], 0, start))
		plans[1] = append(plans[1], planned(ops.mutators[0], 1, 0))
		out = append(out, candidate{
			offsets: sim.ZeroOffsets(p.N),
			plans:   addProbes(plans, ops, p),
			net: funcNetwork(func(from, _ sim.ProcID, _ simtime.Time, _ int64) simtime.Duration {
				if from == 1 {
					return p.D
				}
				return p.MinDelay()
			}),
		})
	}

	// 4. Mutator-response corner: a mutator on the fast clock followed
	// immediately by a mixed op on a slow clock. If the mutator responds
	// before X+ε has passed, the mixed op's timestamp can undercut the
	// completed mutator's, and the mixed op misses it everywhere.
	{
		plans := emptyPlans(p.N)
		plans[0] = append(plans[0], planned(ops.mutators[0], 0, 0))
		plans[1] = append(plans[1], planned(ops.mixed[0], 1, 1))
		out = append(out, candidate{
			offsets: offsetPatterns[3].build(p.N, p.Epsilon), // first-ahead
			plans:   addProbes(plans, ops, p),
			net:     sim.UniformNetwork{D: p.D},
		})
	}

	// 5. General stress corner: every process mutates then immediately
	// issues a mixed op, on alternating extremal clocks and a sender-split
	// extremal network.
	{
		plans := emptyPlans(p.N)
		for i := 0; i < p.N; i++ {
			plans[i] = append(plans[i],
				planned(ops.mutators[i%len(ops.mutators)], i, 0),
				planned(ops.mixed[i%len(ops.mixed)], i, 0))
		}
		out = append(out, candidate{
			offsets: sim.AlternatingOffsets(p.N, p.Epsilon),
			plans:   addProbes(plans, ops, p),
			net:     delayRules[2].build(p), // low-senders-slow
		})
	}
	return out
}

// boundaryCandidate returns the i-th boundary-strategy candidate: first
// the curated corners, then the full (template × delay rule × offset
// pattern) product, then the product again with derived-seed gap jitter.
func boundaryCandidate(p simtime.Params, ops opset, seed int64, i int) candidate {
	return newBoundarySource(p, ops).candidateAt(p, ops, seed, i)
}

// boundarySource caches the curated corner list and the plan templates
// for one campaign. boundaryCandidate is on the per-schedule hot path,
// and rebuilding the full corner list just to index one element dominated
// the strategy's allocations. Candidates handed out are safe to share:
// every downstream mutation path (mutateSchedule, Shrink) clones first.
type boundarySource struct {
	curated   []candidate
	templates []planTemplate
}

func newBoundarySource(p simtime.Params, ops opset) *boundarySource {
	return &boundarySource{curated: curatedCorners(p, ops), templates: planTemplates()}
}

func (b *boundarySource) candidateAt(p simtime.Params, ops opset, seed int64, i int) candidate {
	curated := b.curated
	if i < len(curated) {
		return curated[i]
	}
	j := i - len(curated)
	templates := b.templates
	nT, nD, nO := len(templates), len(delayRules), len(offsetPatterns)
	product := nT * nD * nO
	k := j % product
	tIdx, k := k%nT, k/nT
	dIdx, k := k%nD, k/nD
	oIdx := k % nO
	plans := addProbes(templates[tIdx].build(p, ops), ops, p)
	cand := candidate{
		offsets: offsetPatterns[oIdx].build(p.N, p.Epsilon),
		plans:   plans,
		net:     delayRules[dIdx].build(p),
	}
	if j >= product {
		// Wrapped around: jitter the invocation times to visit nearby
		// corners of the same pattern combination.
		rng := rand.New(rand.NewSource(harness.DeriveSeed(seed, fmt.Sprintf("adversary/boundary/%d", i))))
		for proc := range cand.plans {
			for oi := range cand.plans[proc] {
				if gap := &cand.plans[proc][oi].Gap; *gap < 4*p.D { // leave probes alone
					*gap += simtime.Duration(rng.Int63n(int64(simtime.Max(1, p.Epsilon) + 1)))
				}
			}
		}
	}
	return cand
}

// faultCorners enumerates deterministic crash/drop corner schedules
// derived from the quorum protocol's phase structure. Random fault
// sampling reliably finds single-axis bugs, but the classic new-old
// inversion needs a conjunction — the writer's entire propagate phase
// lost in transit plus one precisely slow acknowledgment — that random
// search essentially never hits. Each corner is an explicit Schedule
// (net == nil), so the shrinker and coverage mutator apply unchanged.
//
// Ordinal bookkeeping: a broadcast sends n-1 messages in process order
// (skipping self), so with a lone writer starting at time 0 and all
// earlier delays at the minimum d-u, its query requests take ordinals
// [0, n-1), the acknowledgments [n-1, 2(n-1)), and the propagate-phase
// updates [2(n-1), 3(n-1)) — the window the inversion corners drop.
// Later ordinals shift with scheduling details, so the slow-message
// corners sweep a window of ordinals instead of pinning one.
func faultCorners(p simtime.Params, ops opset) []candidate {
	if p.N < 2 {
		return nil
	}
	du := p.MinDelay()
	phase := simtime.Duration(2) * du // one quorum round trip at minimum delay
	nm := p.N - 1                     // messages per broadcast
	minVec := func(w int) []simtime.Duration {
		out := make([]simtime.Duration, w)
		for i := range out {
			out[i] = du
		}
		return out
	}
	noCrash := func() []simtime.Time {
		out := make([]simtime.Time, p.N)
		for i := range out {
			out[i] = simtime.Infinity
		}
		return out
	}
	var out []candidate
	add := func(s Schedule) { out = append(out, candidate{sched: s}) }

	// 1. Equal-timestamp collision: two writes whose query phases fully
	// overlap propose the same timestamp; the proc-id tie-break must
	// commit one order everywhere. Post-quiescence probes on p0 and p1
	// read the committed states sequentially, so a tie-break that keeps
	// the incumbent turns into two reads returning different values.
	{
		plans := emptyPlans(p.N)
		plans[0] = append(plans[0], planned(ops.mutators[0], 1, 0))
		plans[1] = append(plans[1], planned(ops.mutators[0], 2, 0))
		add(Schedule{Offsets: make([]simtime.Duration, p.N), Delays: minVec(4 * nm),
			Plans: addProbes(plans, ops, p)})
	}

	if p.N >= 3 {
		// 2. New-old inversion: the writer's propagate phase is lost in
		// transit, so only the writer's own replica holds the new tag.
		// Reader 1 reaches a quorum containing the writer and returns new;
		// reader 2, invoked strictly after reader 1 responded, reaches the
		// complementary quorum when the writer's acknowledgment travels at
		// the maximum delay — and returns old. Which ordinal carries that
		// acknowledgment depends on ack interleaving, so sweep a window.
		r1 := phase + 1
		r2 := simtime.Duration(2)*phase + 2
		drops := make([]int64, 0, nm)
		for i := 2 * nm; i < 3*nm; i++ {
			drops = append(drops, int64(i))
		}
		for k := 3 * nm; k < 7*nm+4; k++ {
			plans := emptyPlans(p.N)
			plans[0] = append(plans[0], planned(ops.mutators[0], 1, 0))
			plans[1] = append(plans[1], planned(ops.accessors[0], 0, r1))
			plans[2] = append(plans[2], planned(ops.accessors[0], 0, r2))
			delays := minVec(8*nm + 8)
			delays[k] = p.D
			add(Schedule{Offsets: make([]simtime.Duration, p.N), Delays: delays,
				Plans: addProbes(plans, ops, p), Drops: append([]int64(nil), drops...)})
		}

		// 3. Stale-read window: the propagate update to the last process
		// travels at the maximum delay while the write completes through
		// the rest of the quorum. A read at the lagging replica invoked
		// after the write responded must still see the new value — any
		// read quorum too small to intersect the write quorum returns the
		// stale local copy.
		writeDone := simtime.Duration(2) * phase
		arrival := phase + p.D
		if writeDone < arrival {
			plans := emptyPlans(p.N)
			plans[0] = append(plans[0], planned(ops.mutators[0], 1, 0))
			plans[p.N-1] = append(plans[p.N-1], planned(ops.accessors[0], 0,
				writeDone+(arrival-writeDone)/2))
			delays := minVec(4 * nm)
			delays[3*nm-1] = p.D // propagate update to the last process
			add(Schedule{Offsets: make([]simtime.Duration, p.N), Delays: delays,
				Plans: addProbes(plans, ops, p)})
		}
	}

	// 4. Crash corners: a minority of processes crash at each phase
	// boundary of a write-then-read run. The correct protocol stays live
	// and linearizable through every placement; implementations that
	// miscount a crashed process toward a quorum die here.
	if maxCrashes := (p.N - 1) / 2; maxCrashes > 0 {
		moments := []simtime.Time{0, simtime.Time(du), simtime.Time(phase),
			simtime.Time(p.D), simtime.Time(3 * p.D)}
		for c := 1; c <= maxCrashes; c++ {
			for _, m := range moments {
				plans := emptyPlans(p.N)
				plans[0] = append(plans[0], planned(ops.mutators[0], 1, 0))
				plans[1] = append(plans[1], planned(ops.accessors[0], 0, phase+1))
				crashes := noCrash()
				for i := 0; i < c; i++ {
					crashes[p.N-1-i] = m // crash the idle tail processes
				}
				add(Schedule{Offsets: make([]simtime.Duration, p.N), Delays: minVec(4 * nm),
					Plans: addProbes(plans, ops, p), Crashes: crashes})
			}
		}
		// One corner crashing a reader mid-operation: its pending op must
		// be excused by crash-aware completeness, not reported stuck.
		plans := emptyPlans(p.N)
		plans[0] = append(plans[0], planned(ops.mutators[0], 1, 0))
		plans[1] = append(plans[1], planned(ops.accessors[0], 0, phase+1))
		crashes := noCrash()
		crashes[1] = simtime.Time(phase + 2)
		add(Schedule{Offsets: make([]simtime.Duration, p.N), Delays: minVec(4 * nm),
			Plans: addProbes(plans, ops, p), Crashes: crashes})
	}
	return out
}

// randomFaults draws a crash/drop assignment for a crash-tolerant
// target: with probability 1/2 a minority of processes crash at times
// biased toward phase boundaries, and with probability 1/3 a few early
// send ordinals are lost in transit.
func randomFaults(s *Schedule, p simtime.Params, rng *rand.Rand) {
	if maxCrashes := (p.N - 1) / 2; maxCrashes > 0 && rng.Intn(2) == 0 {
		crashes := make([]simtime.Time, p.N)
		for i := range crashes {
			crashes[i] = simtime.Infinity
		}
		moments := []simtime.Time{0, 0, simtime.Time(p.MinDelay()), simtime.Time(p.D),
			simtime.Time(2 * p.D), simtime.Time(rng.Int63n(int64(4*p.D) + 1))}
		for _, proc := range rng.Perm(p.N)[:1+rng.Intn(maxCrashes)] {
			crashes[proc] = moments[rng.Intn(len(moments))]
		}
		s.Crashes = crashes
	}
	if rng.Intn(3) == 0 {
		count := 1 + rng.Intn(3)
		for i := 0; i < count; i++ {
			s.Drops = append(s.Drops, rng.Int63n(32))
		}
	}
}

// randomCandidate returns the i-th biased-random candidate: offsets and
// delays biased toward the admissible extremes, short plans with gaps
// clustered around the algorithm's critical constants.
func randomCandidate(p simtime.Params, ops opset, seed int64, stream string, i int, faults bool) candidate {
	rng := rand.New(rand.NewSource(harness.DeriveSeed(seed, fmt.Sprintf("adversary/%s/%d", stream, i))))
	offsets := make([]simtime.Duration, p.N)
	for pi := range offsets {
		switch rng.Intn(10) {
		case 0, 1, 2:
			offsets[pi] = 0
		case 3, 4, 5:
			offsets[pi] = p.Epsilon
		default:
			if p.Epsilon > 0 {
				offsets[pi] = simtime.Duration(rng.Int63n(int64(p.Epsilon) + 1))
			}
		}
	}
	delays := make([]simtime.Duration, 96)
	for di := range delays {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			delays[di] = p.D
		case 4, 5, 6:
			delays[di] = p.MinDelay()
		default:
			delays[di] = p.MinDelay() + simtime.Duration(rng.Int63n(int64(p.U)+1))
		}
	}
	gapChoices := []simtime.Duration{0, 0, 1, p.Epsilon / 2, p.Epsilon, p.X, p.U + p.Epsilon}
	plans := emptyPlans(p.N)
	for pi := 0; pi < p.N; pi++ {
		count := rng.Intn(3)
		if pi == 1 {
			count++ // guarantee at least one busy process
		}
		for oi := 0; oi < count; oi++ {
			var info spec.OpInfo
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				info = ops.mutators[rng.Intn(len(ops.mutators))]
			case 4, 5:
				info = ops.accessors[rng.Intn(len(ops.accessors))]
			case 6, 7:
				info = ops.mixed[rng.Intn(len(ops.mixed))]
			default:
				info = ops.all[rng.Intn(len(ops.all))]
			}
			gap := gapChoices[rng.Intn(len(gapChoices))]
			if oi == 0 && rng.Intn(2) == 0 {
				gap = simtime.Duration(rng.Int63n(int64(p.D)))
			}
			plans[pi] = append(plans[pi], planned(info, rng.Intn(4), gap))
		}
	}
	sched := Schedule{Offsets: offsets, Delays: delays, Plans: addProbes(plans, ops, p)}
	if faults {
		randomFaults(&sched, p, rng)
	}
	return candidate{sched: sched}
}

// mutateSchedule derives a coverage-strategy candidate by applying a few
// random admissible edits to a parent schedule from the novelty pool.
// Against crash-tolerant targets (faults) the edit space additionally
// toggles crash times and message drops.
func mutateSchedule(parent Schedule, p simtime.Params, ops opset, rng *rand.Rand, faults bool) Schedule {
	s := parent.Clone()
	kinds := 6
	if faults {
		kinds = 8
	}
	edits := 1 + rng.Intn(3)
	for e := 0; e < edits; e++ {
		switch rng.Intn(kinds) {
		case 0: // flip a delay to an extreme
			if len(s.Delays) > 0 {
				choices := []simtime.Duration{p.D, p.MinDelay(), p.MinDelay() + p.U/2}
				s.Delays[rng.Intn(len(s.Delays))] = choices[rng.Intn(len(choices))]
			}
		case 1: // flip an offset to an extreme
			s.Offsets[rng.Intn(len(s.Offsets))] = []simtime.Duration{0, p.Epsilon}[rng.Intn(2)]
		case 2: // tweak a gap
			if proc, oi, ok := pickOp(s, rng); ok {
				s.Plans[proc][oi].Gap = []simtime.Duration{0, 1, p.Epsilon / 2, p.Epsilon, p.X}[rng.Intn(5)]
			}
		case 3: // swap an op for another of a random class
			if proc, oi, ok := pickOp(s, rng); ok {
				pools := [][]spec.OpInfo{ops.mutators, ops.accessors, ops.mixed}
				pool := pools[rng.Intn(len(pools))]
				info := pool[rng.Intn(len(pool))]
				s.Plans[proc][oi] = planned(info, rng.Intn(4), s.Plans[proc][oi].Gap)
			}
		case 4: // insert an op at a random position
			proc := rng.Intn(len(s.Plans))
			info := ops.all[rng.Intn(len(ops.all))]
			op := planned(info, rng.Intn(4), []simtime.Duration{0, 1, p.Epsilon}[rng.Intn(3)])
			pos := 0
			if len(s.Plans[proc]) > 0 {
				pos = rng.Intn(len(s.Plans[proc]) + 1)
			}
			plan := append([]PlannedOp(nil), s.Plans[proc][:pos]...)
			plan = append(plan, op)
			plan = append(plan, s.Plans[proc][pos:]...)
			s.Plans[proc] = plan
		case 5: // delete an op
			if proc, oi, ok := pickOp(s, rng); ok && s.NumOps() > 1 {
				s.Plans[proc] = append(s.Plans[proc][:oi:oi], s.Plans[proc][oi+1:]...)
			}
		case 6: // toggle a crash (faults only)
			if maxCrashes := (p.N - 1) / 2; maxCrashes > 0 {
				if len(s.Crashes) == 0 {
					s.Crashes = make([]simtime.Time, len(s.Plans))
					for i := range s.Crashes {
						s.Crashes[i] = simtime.Infinity
					}
				}
				proc := rng.Intn(len(s.Crashes))
				if s.Crashes[proc] == simtime.Infinity && s.NumCrashed() < maxCrashes {
					moments := []simtime.Time{0, simtime.Time(p.MinDelay()),
						simtime.Time(p.D), simtime.Time(2 * p.D)}
					s.Crashes[proc] = moments[rng.Intn(len(moments))]
				} else {
					s.Crashes[proc] = simtime.Infinity
				}
				if s.NumCrashed() == 0 {
					s.Crashes = nil
				}
			}
		case 7: // add or remove a message drop (faults only)
			if len(s.Drops) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(s.Drops))
				s.Drops = append(s.Drops[:i:i], s.Drops[i+1:]...)
			} else {
				s.Drops = append(s.Drops, rng.Int63n(32))
			}
		}
	}
	return s
}

// pickOp selects a uniformly random planned op, if any.
func pickOp(s Schedule, rng *rand.Rand) (proc, idx int, ok bool) {
	total := s.NumOps()
	if total == 0 {
		return 0, 0, false
	}
	k := rng.Intn(total)
	for proc, plan := range s.Plans {
		if k < len(plan) {
			return proc, k, true
		}
		k -= len(plan)
	}
	return 0, 0, false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
