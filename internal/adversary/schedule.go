// Package adversary searches the space of admissible executions of the
// paper's model for linearizability violations. The paper's guarantees
// quantify over *every* execution with message delays in [d-u, d] and
// clock skew at most ε; the hand-picked runs in the unit tests visit only
// a few corners of that space. This package generates admissible
// adversaries — explicit per-message delay assignments, per-process clock
// offsets, and operation-invocation timings — and drives Algorithm 1, the
// folklore baselines, and deliberately broken mutants through them,
// checking every resulting trace with the linearizability checker.
//
// Three generation strategies are provided (boundary/corner schedules,
// biased-random schedules, and a coverage-greedy mode that maximizes
// distinct event-ordering signatures), plus a delta-debugging shrinker
// that reduces any violating schedule to a minimal counterexample and
// renders it as a space-time diagram. The whole pipeline follows the
// repository's determinism convention: every random stream is derived
// from (master seed, stream id) via harness.DeriveSeed, batches fan out
// through harness.RunIndexed, and results are folded in index order, so
// output is byte-identical at every parallelism level.
package adversary

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"lintime/internal/core"
	"lintime/internal/folklore"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/quorum"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// PlannedOp is one operation of a process's invocation plan. For the
// first op of a plan Gap is the absolute invocation time; for every later
// op it is the wait between the previous response and the next
// invocation, so plans always respect the model's one-pending-op-per-
// process constraint.
type PlannedOp struct {
	Op  string
	Arg spec.Value
	Gap simtime.Duration
}

// Schedule is one fully explicit admissible adversary: clock offsets per
// process (within the skew bound), a delay for each message by global
// send order (within [d-u, d]; sends past the end of the vector get the
// maximum delay d), and an invocation plan per process. Against
// crash-tolerant targets two fault axes extend the format: per-process
// crash times (at most a minority finite, preserving quorum liveness)
// and per-message loss by send ordinal.
type Schedule struct {
	Offsets []simtime.Duration
	Delays  []simtime.Duration
	Plans   [][]PlannedOp

	// Crashes holds one crash time per process (simtime.Infinity =
	// never). Empty means no crashes. Only crash-tolerant targets accept
	// a non-empty axis.
	Crashes []simtime.Time
	// Drops lists send ordinals lost in transit.
	Drops []int64
}

// Clone returns a deep copy (argument values are shared).
func (s Schedule) Clone() Schedule {
	out := Schedule{
		Offsets: append([]simtime.Duration(nil), s.Offsets...),
		Delays:  append([]simtime.Duration(nil), s.Delays...),
		Plans:   make([][]PlannedOp, len(s.Plans)),
		Crashes: append([]simtime.Time(nil), s.Crashes...),
		Drops:   append([]int64(nil), s.Drops...),
	}
	for i, plan := range s.Plans {
		out.Plans[i] = append([]PlannedOp(nil), plan...)
	}
	return out
}

// HasFaults reports whether the schedule uses either fault axis.
func (s Schedule) HasFaults() bool {
	return len(s.Drops) > 0 || s.NumCrashed() > 0
}

// NumCrashed returns the number of processes with a finite crash time.
func (s Schedule) NumCrashed() int {
	n := 0
	for _, c := range s.Crashes {
		if c != simtime.Infinity {
			n++
		}
	}
	return n
}

// NumOps returns the total number of planned invocations.
func (s Schedule) NumOps() int {
	n := 0
	for _, plan := range s.Plans {
		n += len(plan)
	}
	return n
}

// Validate checks the schedule against the model parameters and the data
// type: offsets within the skew bound, delays within [d-u, d],
// nonnegative gaps, and every planned op declared by dt.
func (s Schedule) Validate(p simtime.Params, dt spec.DataType) error {
	return s.validate(p, dt.Name(), func(op string) bool {
		_, ok := spec.FindOp(dt, op)
		return ok
	})
}

// validate is the body of Validate with the op lookup abstracted: the
// Runner substitutes a cached name set, because dt.Ops() allocates its
// OpInfo slice on every call and Validate runs once per schedule.
func (s Schedule) validate(p simtime.Params, dtName string, hasOp func(string) bool) error {
	if len(s.Offsets) != p.N {
		return fmt.Errorf("adversary: %d offsets for n=%d", len(s.Offsets), p.N)
	}
	if err := sim.ValidateOffsets(s.Offsets, p.Epsilon); err != nil {
		return err
	}
	if err := (sim.SequenceNetwork{Delays: s.Delays, Default: p.D}).Validate(p); err != nil {
		return err
	}
	if len(s.Plans) != p.N {
		return fmt.Errorf("adversary: %d plans for n=%d", len(s.Plans), p.N)
	}
	for proc, plan := range s.Plans {
		for i, op := range plan {
			if op.Gap < 0 {
				return fmt.Errorf("adversary: p%d op %d has negative gap %v", proc, i, op.Gap)
			}
			if !hasOp(op.Op) {
				return fmt.Errorf("adversary: type %s has no operation %q", dtName, op.Op)
			}
		}
	}
	if len(s.Crashes) != 0 && len(s.Crashes) != p.N {
		return fmt.Errorf("adversary: %d crash times for n=%d", len(s.Crashes), p.N)
	}
	for proc, c := range s.Crashes {
		if c != simtime.Infinity && c < 0 {
			return fmt.Errorf("adversary: p%d crash time %v is negative", proc, c)
		}
	}
	// The fault model allows only a minority of crashes: a crashed
	// majority stalls every quorum, so incompleteness would stop
	// witnessing bugs.
	if crashed := s.NumCrashed(); crashed > (p.N-1)/2 {
		return fmt.Errorf("adversary: %d crashes exceed the minority bound for n=%d", crashed, p.N)
	}
	for _, ix := range s.Drops {
		if ix < 0 {
			return fmt.Errorf("adversary: drop ordinal %d is negative", ix)
		}
	}
	return nil
}

// String renders the schedule compactly; '@' marks the absolute start of
// a plan's first op, '@+' the gap after the previous response.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offsets %v\n", s.Offsets)
	fmt.Fprintf(&b, "delays  %v (then d)\n", s.Delays)
	if s.NumCrashed() > 0 {
		fmt.Fprintf(&b, "crashes")
		for proc, c := range s.Crashes {
			if c != simtime.Infinity {
				fmt.Fprintf(&b, " p%d@%v", proc, c)
			}
		}
		b.WriteByte('\n')
	}
	if len(s.Drops) > 0 {
		fmt.Fprintf(&b, "drops   %v\n", s.Drops)
	}
	for proc, plan := range s.Plans {
		if len(plan) == 0 {
			continue
		}
		fmt.Fprintf(&b, "p%d:", proc)
		for i, op := range plan {
			sep := " "
			at := fmt.Sprintf("@+%v", op.Gap)
			if i == 0 {
				at = fmt.Sprintf("@%v", op.Gap)
			} else {
				sep = " | "
			}
			fmt.Fprintf(&b, "%s%s(%s)%s", sep, op.Op, spec.FormatValue(op.Arg), at)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Violation kinds.
const (
	KindNonLinearizable = "non-linearizable"
	KindDiverged        = "diverged"
	KindIncomplete      = "incomplete"
)

// Outcome is the checked result of driving one schedule through a target.
type Outcome struct {
	Trace        *sim.Trace
	Check        lincheck.Result
	Fingerprints []string // per-replica object state (core targets only)
	Incomplete   bool     // some invocation never responded

	sig    uint64 // event-ordering signature, cached by the Runner
	hasSig bool
}

// Converged reports whether all replicas ended in the same state (always
// true for targets that do not expose per-replica state).
func (o *Outcome) Converged() bool {
	for i := 1; i < len(o.Fingerprints); i++ {
		if o.Fingerprints[i] != o.Fingerprints[0] {
			return false
		}
	}
	return true
}

// Violation returns the most severe property violated by the outcome, or
// "" if the run satisfied every checked property. Non-linearizability is
// reported first: it is the black-box condition the paper promises.
// Divergence (replicas committing different states) is caught even when
// no accessor happened to observe it yet.
func (o *Outcome) Violation() string {
	switch {
	case !o.Check.Linearizable:
		return KindNonLinearizable
	case o.Incomplete:
		return KindIncomplete
	case !o.Converged():
		return KindDiverged
	default:
		return ""
	}
}

// Signature is a hash of the run's event ordering: the sequence of
// (event kind, process) pairs in processing order plus each message's
// endpoints in delivery order. Two runs with the same signature exercised
// the same interleaving; the coverage-greedy strategy hunts for schedules
// whose signatures have not been seen before.
// fnvPrime is the FNV-1a 64-bit prime, used to continue the engine's
// incremental step hash over message records.
const fnvPrime = 1099511628211

// Runner-produced outcomes carry the signature precomputed from the
// engine's incremental step hash, so it is available even when step
// recording is off (sim.TraceOps); hand-built outcomes fall back to
// hashing the recorded trace.
func (o *Outcome) Signature() uint64 {
	if o.hasSig {
		return o.sig
	}
	return signatureFromTrace(o.Trace)
}

// signatureFromTrace is the original full-trace signature computation,
// retained as the fallback for outcomes not produced by a Runner and as
// the oracle the cached value is tested against.
func signatureFromTrace(tr *sim.Trace) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 2)
	for _, st := range tr.Steps {
		buf[0] = byte(st.Kind)
		buf[1] = byte(st.Proc)
		h.Write(buf)
	}
	for _, m := range tr.Msgs {
		buf[0] = byte(m.From)
		buf[1] = byte(m.To)
		h.Write(buf)
	}
	return h.Sum64()
}

// Target selects the implementation under test: one of the harness
// algorithm names, plus an optional seeded mutant — from the core
// Mutants registry for the core algorithm, from internal/quorum's
// registry for the quorum backend.
type Target struct {
	Algorithm string // harness.AlgCore (default ""), AlgCentral, AlgSequencer, AlgQuorum
	Mutant    string // core and quorum only; "" = the correct protocol
}

// SupportsFaults reports whether the target tolerates the crash/drop
// schedule axes. Algorithm 1 and the folklore baselines assume reliable
// processes and channels; only the quorum backend accepts faults.
func (t Target) SupportsFaults() bool { return t.Algorithm == harness.AlgQuorum }

// String renders the target for reports.
func (t Target) String() string {
	alg := t.Algorithm
	if alg == "" {
		alg = harness.AlgCore
	}
	if t.Mutant == "" {
		return alg
	}
	return alg + "+" + t.Mutant
}

// buildNodes constructs the replicas for the target.
func (t Target) buildNodes(p simtime.Params, dt spec.DataType) ([]sim.Node, []*core.Replica, error) {
	switch t.Algorithm {
	case harness.AlgCore, "":
		m, err := LookupMutant(t.Mutant)
		if err != nil {
			return nil, nil, err
		}
		classes := harness.ClassesFor(dt)
		timers := m.Timers(p)
		replicas := make([]*core.Replica, p.N)
		nodes := make([]sim.Node, p.N)
		for i := range nodes {
			replicas[i] = core.NewReplica(dt, classes, timers)
			replicas[i].LiteralAOPDrain = m.LiteralDrain
			nodes[i] = replicas[i]
		}
		return nodes, replicas, nil
	case harness.AlgCentral:
		if t.Mutant != "" {
			return nil, nil, fmt.Errorf("adversary: mutants apply only to the core algorithm")
		}
		return folklore.NewCentralNodes(p.N, dt), nil, nil
	case harness.AlgSequencer:
		if t.Mutant != "" {
			return nil, nil, fmt.Errorf("adversary: mutants apply only to the core algorithm")
		}
		return folklore.NewSequencerNodes(p.N, dt), nil, nil
	case harness.AlgQuorum:
		cfg, err := quorum.ConfigFor(quorum.DefaultConfig(p), t.Mutant)
		if err != nil {
			return nil, nil, err
		}
		// No fingerprints: quorum replicas legitimately diverge when an
		// update reached only a partial quorum, so convergence is not a
		// checkable property of this backend.
		nodes, err := harness.QuorumNodes(p, dt, cfg)
		return nodes, nil, err
	default:
		return nil, nil, fmt.Errorf("adversary: unknown algorithm %q", t.Algorithm)
	}
}

// Runner executes schedules against one target and checks the traces.
// A Runner must not be copied after first use (it embeds an engine pool)
// and is safe for concurrent use by the fuzz campaign's workers.
type Runner struct {
	Params simtime.Params
	DT     spec.DataType
	Target Target
	// CheckWorkers is passed to lincheck.CheckTraceParallel (default 2).
	CheckWorkers int
	// Trace selects the engine's recording level (default sim.TraceFull).
	// Throughput campaigns run at sim.TraceOps: signatures come from the
	// engine's incremental step hash, so Steps is never read. Replays that
	// feed the diagram renderer need sim.TraceFull.
	Trace sim.TraceLevel

	// engines recycles one engine per worker across schedules: the event
	// queue's backing array, bookkeeping maps, and trace-capacity hints
	// survive, so a steady-state schedule run allocates only its outcome.
	engines sync.Pool

	// opNames caches the data type's operation names for validation.
	opsOnce sync.Once
	opNames map[string]struct{}
}

// hasOp reports whether the target data type declares the operation,
// against a name set built once per Runner.
func (r *Runner) hasOp(op string) bool {
	r.opsOnce.Do(func() {
		r.opNames = make(map[string]struct{})
		for _, info := range r.DT.Ops() {
			r.opNames[info.Name] = struct{}{}
		}
	})
	_, ok := r.opNames[op]
	return ok
}

// Run drives the schedule's explicit delay assignment through the target
// and checks the trace. The schedule must be valid.
func (r *Runner) Run(s Schedule) (*Outcome, error) {
	return r.runWith(s, sim.SequenceNetwork{Delays: s.Delays, Default: r.Params.D})
}

// RunRule drives a rule-based candidate (offsets + plans + an arbitrary
// admissible network) and concretizes it: the returned schedule carries
// the explicit per-message delays the rule produced, so replaying it with
// Run reproduces the identical execution — the form the shrinker and the
// coverage mutator operate on.
func (r *Runner) RunRule(offsets []simtime.Duration, plans [][]PlannedOp, net sim.Network) (Schedule, *Outcome, error) {
	s := Schedule{Offsets: offsets, Plans: plans}
	out, err := r.runWith(s, net)
	if err != nil {
		return Schedule{}, nil, err
	}
	s.Delays = make([]simtime.Duration, len(out.Trace.Msgs))
	for i, m := range out.Trace.Msgs {
		if !m.Received() {
			// A transit-dropped message has no delay; its vector slot is
			// never consulted on replay, so pin the placeholder d.
			s.Delays[i] = r.Params.D
			continue
		}
		s.Delays[i] = m.Delay()
	}
	return s, out, nil
}

func (r *Runner) runWith(s Schedule, net sim.Network) (*Outcome, error) {
	if err := s.validate(r.Params, r.DT.Name(), r.hasOp); err != nil {
		return nil, err
	}
	if s.HasFaults() && !r.Target.SupportsFaults() {
		return nil, fmt.Errorf("adversary: target %s assumes reliable processes and channels; crash/drop axes require the quorum backend", r.Target)
	}
	nodes, replicas, err := r.Target.buildNodes(r.Params, r.DT)
	if err != nil {
		return nil, err
	}
	var eng *sim.Engine
	if pooled, ok := r.engines.Get().(*sim.Engine); ok {
		eng = pooled
		if err := eng.Reset(r.Params, s.Offsets, net, nodes); err != nil {
			return nil, err
		}
	} else {
		eng, err = sim.NewEngine(r.Params, s.Offsets, net, nodes)
		if err != nil {
			return nil, err
		}
	}
	defer r.engines.Put(eng)
	eng.SetTraceLevel(r.Trace)
	if s.HasFaults() {
		if err := eng.SetFaults(sim.FaultPlan{Crashes: s.Crashes, Drops: s.Drops}); err != nil {
			return nil, err
		}
	}
	cursor := make([]int, r.Params.N)
	eng.OnRespond = func(rec sim.OpRecord) {
		plan := s.Plans[rec.Proc]
		cursor[rec.Proc]++
		if i := cursor[rec.Proc]; i < len(plan) {
			eng.InvokeAt(rec.Proc, rec.RespondTime.Add(plan[i].Gap), plan[i].Op, plan[i].Arg)
		}
	}
	for proc, plan := range s.Plans {
		if len(plan) > 0 {
			eng.InvokeAt(sim.ProcID(proc), simtime.Time(plan[0].Gap), plan[0].Op, plan[0].Arg)
		}
	}
	tr := eng.Run()
	if err := tr.CheckAdmissible(); err != nil {
		return nil, fmt.Errorf("adversary: generated inadmissible run: %w", err)
	}
	workers := r.CheckWorkers
	if workers == 0 {
		workers = 2
	}
	// Continue the engine's incremental step hash over the message records,
	// reproducing signatureFromTrace byte for byte without needing Steps.
	sig := eng.StepSignature()
	for _, m := range tr.Msgs {
		sig = (sig ^ uint64(byte(m.From))) * fnvPrime
		sig = (sig ^ uint64(byte(m.To))) * fnvPrime
	}
	out := &Outcome{
		Trace: tr,
		Check: lincheck.CheckTraceParallel(r.DT, tr, workers),
		// Crash-aware completeness: an op pending at a crashed invoker is
		// legitimate; at a live process it is a liveness violation. On
		// fault-free runs this is exactly CheckComplete.
		Incomplete: tr.CheckCompleteExceptCrashed() != nil,
		sig:        sig,
		hasSig:     true,
	}
	for _, rep := range replicas {
		out.Fingerprints = append(out.Fingerprints, rep.StateFingerprint())
	}
	return out, nil
}
