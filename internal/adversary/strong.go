package adversary

import (
	"fmt"
	"io"

	"lintime/internal/diagram"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/obs"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
	"lintime/internal/strongcheck"
)

// Strong-hunt throughput counters on the process-wide registry.
var (
	strongForksTotal      = obs.Default.Counter("adversary_strong_forks_total")
	strongPairsTotal      = obs.Default.Counter("adversary_strong_pairs_total")
	strongViolationsTotal = obs.Default.Counter("adversary_strong_violations_total")
)

// StrongOptions configures a strong-linearizability hunt.
type StrongOptions struct {
	Params simtime.Params
	DT     spec.DataType
	Target Target
	Seed   int64
	// Budget is the number of base schedules to examine (each base spawns
	// up to 2·|delays| fork runs). Rounded up to a batch.
	Budget int
	// Parallel is the worker count for batch evaluation.
	Parallel int
	// StopEarly stops at the end of the first batch containing a fork
	// violation.
	StopEarly bool
	// Shrink reduces each violating pair to a minimal base schedule that
	// still admits a violating fork.
	Shrink bool
	// CheckWorkers is passed through to the linearizability checker.
	CheckWorkers int
}

// ForkViolation is a pair of admissible executions proving the target is
// not strongly linearizable: the fork differs from the base in a single
// message delay, both runs are clean (linearizable, complete, converged),
// their observable histories diverge, and the prefix tree of the two
// histories admits no prefix-preserving linearization.
type ForkViolation struct {
	Index    int    // base schedule index within the hunt
	Strategy string // generating strategy of the base
	Base     Schedule
	// ForkIndex / ForkDelay identify the flipped delay: the fork schedule
	// is Base with Delays[ForkIndex] = ForkDelay.
	ForkIndex int
	ForkDelay simtime.Duration
	// Shrunk, ShrunkForkIndex and ShrunkForkDelay describe the minimal
	// pair (when StrongOptions.Shrink).
	Shrunk          *Schedule
	ShrunkForkIndex int
	ShrunkForkDelay simtime.Duration
	Runs            int // shrinker executions spent
	TreeExplored    int // search states visited refuting the pair
}

// ForkOf materializes the fork schedule of a (base, index, delay) triple.
func ForkOf(base Schedule, idx int, delay simtime.Duration) Schedule {
	f := base.Clone()
	f.Delays[idx] = delay
	return f
}

// StrongReport summarizes a strong-linearizability hunt.
type StrongReport struct {
	Target     Target
	Bases      int // base schedules evaluated
	Forks      int // fork schedules evaluated
	Pairs      int // pairs with both runs clean and observably diverging
	Violations []ForkViolation
}

// strongCorners are handcrafted base schedules shaped for fork pairs, run
// before the general boundary sweep. The shape: a single mutator at time
// zero and a single accessor on a fast clock invoked inside the window
// (X-ε, X), with every delay at the maximum. The accessor's timestamp
// then dominates the mutator's, and whether its drain sees the mutator's
// announcement depends on that one message drawing d (miss) or d-u (hit)
// — exactly a single-delay fork with both futures legal, since the
// mutator is still pending at the accessor's invocation. No probes: both
// futures must stay individually clean, and the committed state is the
// same in both.
func strongCorners(p simtime.Params, ops opset) []candidate {
	if p.N < 2 {
		return nil
	}
	var out []candidate
	start := simtime.Max(0, p.X-p.Epsilon) + simtime.Min(p.X, p.Epsilon)/2
	offsets := make([]simtime.Duration, p.N)
	offsets[0] = p.Epsilon // accessor's clock runs ahead
	for _, accessor := range []spec.OpInfo{ops.accessors[0], ops.mixed[0]} {
		plans := emptyPlans(p.N)
		plans[0] = append(plans[0], planned(accessor, 0, start))
		plans[1] = append(plans[1], planned(ops.mutators[0], 1, 0))
		out = append(out, candidate{
			offsets: append([]simtime.Duration(nil), offsets...),
			plans:   plans,
			net:     sim.UniformNetwork{D: p.D},
		})
	}
	return out
}

// StrongHunt searches for executions that are linearizable but not
// strongly linearizable. The adversary's move that plain linearizability
// cannot see is a *fork*: two futures of one partially revealed execution.
// The hunt generates admissible base schedules (reusing the boundary and
// random strategies), replays each with every single message delay flipped
// to the opposite admissible extreme, and keeps pairs whose runs are both
// individually clean yet observably diverge; strongcheck's prefix-tree
// check then decides whether some linearization choice survives both
// futures. Deterministic like Fuzz: batches fan out through
// harness.RunIndexed and fold in index order.
func StrongHunt(opts StrongOptions) (*StrongReport, error) {
	p := opts.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Budget <= 0 {
		opts.Budget = batchSize
	}
	ops := opsFor(opts.DT)
	boundary := newBoundarySource(p, ops)
	corners := strongCorners(p, ops)
	// Fork replays feed the prefix tree with invocation/response records
	// only, so step recording stays off; diagrams replay at TraceFull.
	runner := &Runner{Params: p, DT: opts.DT, Target: opts.Target, CheckWorkers: opts.CheckWorkers,
		Trace: sim.TraceOps}
	strategies := []string{StratBoundary, StratRandom}

	rep := &StrongReport{Target: opts.Target}

	type slot struct {
		strategy  string
		base      Schedule
		forks     int
		pairs     int
		forkIdx   int
		forkDelay simtime.Duration
		explored  int
		violated  bool
	}

	for batchBase := 0; batchBase < opts.Budget; batchBase += batchSize {
		count := batchSize
		if batchBase+count > opts.Budget {
			count = opts.Budget - batchBase
		}
		slots := make([]slot, count)
		err := harness.RunIndexed(count, opts.Parallel, func(k int) error {
			i := batchBase + k
			strat := strategies[i%len(strategies)]
			ordinal := i / len(strategies)
			var (
				base Schedule
				out  *Outcome
				err  error
			)
			switch strat {
			case StratBoundary:
				cand := candidate{}
				if ordinal < len(corners) {
					cand = corners[ordinal]
				} else {
					cand = boundary.candidateAt(p, ops, opts.Seed, ordinal-len(corners))
				}
				base, out, err = runner.RunRule(cand.offsets, cand.plans, cand.net)
			case StratRandom:
				cand := randomCandidate(p, ops, opts.Seed, "strong-random", ordinal, false)
				base = cand.sched
				out, err = runner.Run(base)
			}
			if err != nil {
				return err
			}
			sl := slot{strategy: strat, base: base}
			if out.Violation() == "" {
				idx, delay, forks, pairs, explored, found, err := findFork(runner, base, out)
				if err != nil {
					return err
				}
				sl.forks, sl.pairs, sl.explored = forks, pairs, explored
				if found {
					sl.violated, sl.forkIdx, sl.forkDelay = true, idx, delay
				}
			}
			slots[k] = sl
			return nil
		})
		if err != nil {
			return nil, err
		}
		batchViolated := false
		for k := 0; k < count; k++ {
			sl := slots[k]
			rep.Bases++
			rep.Forks += sl.forks
			rep.Pairs += sl.pairs
			schedulesTotal.Inc()
			strongForksTotal.Add(int64(sl.forks))
			strongPairsTotal.Add(int64(sl.pairs))
			if !sl.violated {
				continue
			}
			batchViolated = true
			strongViolationsTotal.Inc()
			v := ForkViolation{
				Index:        batchBase + k,
				Strategy:     sl.strategy,
				Base:         sl.base,
				ForkIndex:    sl.forkIdx,
				ForkDelay:    sl.forkDelay,
				TreeExplored: sl.explored,
			}
			if opts.Shrink {
				shrunk, idx, delay, runs, err := ShrinkStrong(runner, sl.base, ShrinkOptions{})
				if err != nil {
					return nil, err
				}
				v.Shrunk = &shrunk
				v.ShrunkForkIndex = idx
				v.ShrunkForkDelay = delay
				v.Runs = runs
			}
			rep.Violations = append(rep.Violations, v)
		}
		if opts.StopEarly && batchViolated {
			break
		}
	}
	return rep, nil
}

// findFork scans the base schedule's message delays for a fork that
// refutes strong linearizability: each delay in turn is flipped to the
// admissible extremes it does not already sit at, the fork is replayed,
// and clean observably-diverging pairs go through the prefix-tree check.
// The scan runs from the last message backward — later forks share longer
// prefixes, where a completed operation is most likely to pin the
// conflicting commit — and returns the first violating fork, so the
// result is deterministic.
func findFork(r *Runner, base Schedule, baseOut *Outcome) (idx int, delay simtime.Duration, forks, pairs, explored int, found bool, err error) {
	p := r.Params
	for i := len(base.Delays) - 1; i >= 0; i-- {
		for _, v := range []simtime.Duration{p.D, p.MinDelay()} {
			if base.Delays[i] == v {
				continue
			}
			fork := ForkOf(base, i, v)
			out, err := r.Run(fork)
			if err != nil {
				return 0, 0, forks, pairs, explored, false, err
			}
			forks++
			if out.Violation() != "" || historiesEqual(baseOut.Trace, out.Trace) {
				continue
			}
			pairs++
			tree := strongcheck.NewTree()
			tree.Add(lincheck.FromTrace(baseOut.Trace))
			tree.Add(lincheck.FromTrace(out.Trace))
			res := tree.Check(r.DT)
			explored += res.Explored
			if !res.Strong {
				return i, v, forks, pairs, explored, true, nil
			}
		}
	}
	return 0, 0, forks, pairs, explored, false, nil
}

// historiesEqual reports whether two traces recorded identical observable
// histories (same invocations, responses, and times in order): such a
// fork changed only internals and yields a linear tree.
func historiesEqual(a, b *sim.Trace) bool {
	if len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		x, y := a.Ops[i], b.Ops[i]
		if x.Proc != y.Proc || x.Op != y.Op || x.InvokeTime != y.InvokeTime ||
			x.RespondTime != y.RespondTime ||
			!spec.ValuesEqual(x.Arg, y.Arg) || !spec.ValuesEqual(x.Ret, y.Ret) {
			return false
		}
	}
	return true
}

// ShrinkStrong reduces a strong-violation base schedule by delta
// debugging, like Shrink, under the predicate "some single-delay fork of
// the candidate still refutes strong linearizability". The surviving fork
// is re-located after every accepted edit (edits renumber messages, so a
// fixed fork index would not survive); the scan order inside findFork
// keeps the result deterministic. Returns the minimal base, its fork, and
// the engine runs spent (base and fork replays both count).
func ShrinkStrong(r *Runner, s Schedule, opts ShrinkOptions) (Schedule, int, simtime.Duration, int, error) {
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 4000
	}
	runs := 0
	// violates replays a candidate base and rescans its forks; ok reports
	// whether the pair predicate still holds.
	violates := func(c Schedule) (int, simtime.Duration, bool, error) {
		out, err := r.Run(c)
		runs++
		if err != nil {
			return 0, 0, false, err
		}
		if out.Violation() != "" {
			return 0, 0, false, nil // a plain violation is Fuzz's prey, not ours
		}
		idx, delay, forks, _, _, found, err := findFork(r, c, out)
		runs += forks
		return idx, delay, found, err
	}

	cur := s.Clone()
	idx, delay, ok, err := violates(cur)
	if err != nil {
		return Schedule{}, 0, 0, runs, err
	}
	if !ok {
		return cur, 0, 0, runs, fmt.Errorf("adversary: ShrinkStrong called on a non-violating schedule")
	}

	p := r.Params
	improved := true
	for improved && runs < maxRuns {
		improved = false

		// Pass 1: drop operations, later ops first.
		for proc := len(cur.Plans) - 1; proc >= 0 && runs < maxRuns; proc-- {
			for i := len(cur.Plans[proc]) - 1; i >= 0 && runs < maxRuns; i-- {
				if cur.NumOps() <= 2 {
					break // a fork needs at least a mutator and an observer
				}
				cand := cur.Clone()
				cand.Plans[proc] = append(cand.Plans[proc][:i:i], cand.Plans[proc][i+1:]...)
				if fi, fd, ok, err := violates(cand); err != nil {
					return Schedule{}, 0, 0, runs, err
				} else if ok {
					cur, idx, delay, improved = cand, fi, fd, true
				}
			}
		}

		// Pass 2: normalize every delay to d, then to d-u.
		for i := 0; i < len(cur.Delays) && runs < maxRuns; i++ {
			for _, v := range []simtime.Duration{p.D, p.MinDelay()} {
				if cur.Delays[i] == v {
					break
				}
				cand := cur.Clone()
				cand.Delays[i] = v
				if fi, fd, ok, err := violates(cand); err != nil {
					return Schedule{}, 0, 0, runs, err
				} else if ok {
					cur, idx, delay, improved = cand, fi, fd, true
					break
				}
			}
		}

		// Pass 3: zero clock offsets.
		for i := 0; i < len(cur.Offsets) && runs < maxRuns; i++ {
			if cur.Offsets[i] == 0 {
				continue
			}
			cand := cur.Clone()
			cand.Offsets[i] = 0
			if fi, fd, ok, err := violates(cand); err != nil {
				return Schedule{}, 0, 0, runs, err
			} else if ok {
				cur, idx, delay, improved = cand, fi, fd, true
			}
		}

		// Pass 4: zero invocation gaps.
		for proc := 0; proc < len(cur.Plans) && runs < maxRuns; proc++ {
			for i := 0; i < len(cur.Plans[proc]) && runs < maxRuns; i++ {
				if cur.Plans[proc][i].Gap == 0 {
					continue
				}
				cand := cur.Clone()
				cand.Plans[proc][i].Gap = 0
				if fi, fd, ok, err := violates(cand); err != nil {
					return Schedule{}, 0, 0, runs, err
				} else if ok {
					cur, idx, delay, improved = cand, fi, fd, true
				}
			}
		}
	}

	// Final tidy: truncate the delay vector to the messages actually sent.
	if out, err := r.Run(cur); err == nil {
		runs++
		if n := len(out.Trace.Msgs); n < len(cur.Delays) {
			cand := cur.Clone()
			cand.Delays = cand.Delays[:n]
			if fi, fd, ok, err2 := violates(cand); err2 == nil && ok {
				cur, idx, delay = cand, fi, fd
			}
		}
	}

	return cur, idx, delay, runs, nil
}

// WriteStrongReport renders a strong hunt's report as deterministic plain
// text, with both futures of each violating pair rendered as space-time
// diagrams and the diverging responses called out.
func WriteStrongReport(w io.Writer, r *Runner, rep *StrongReport) error {
	fmt.Fprintf(w, "target      %s on %s (strong linearizability)\n", rep.Target, r.DT.Name())
	fmt.Fprintf(w, "params      n=%d d=%v u=%v eps=%v X=%v\n",
		r.Params.N, r.Params.D, r.Params.U, r.Params.Epsilon, r.Params.X)
	fmt.Fprintf(w, "bases       %d (%d forks, %d clean diverging pairs)\n", rep.Bases, rep.Forks, rep.Pairs)
	fmt.Fprintf(w, "violations  %d\n", len(rep.Violations))
	for vi := range rep.Violations {
		v := &rep.Violations[vi]
		fmt.Fprintf(w, "\n--- strong violation %d (base schedule %d, strategy %s) ---\n",
			vi+1, v.Index, v.Strategy)
		base, fi, fd := v.Base, v.ForkIndex, v.ForkDelay
		if v.Shrunk != nil {
			fmt.Fprintf(w, "shrunk from %d ops / %d delays to %d ops / %d delays in %d runs\n",
				v.Base.NumOps(), len(v.Base.Delays),
				v.Shrunk.NumOps(), len(v.Shrunk.Delays), v.Runs)
			base, fi, fd = *v.Shrunk, v.ShrunkForkIndex, v.ShrunkForkDelay
		}
		fmt.Fprintf(w, "both futures linearizable; no prefix-preserving linearization covers both\n")
		fmt.Fprint(w, base.String())
		fmt.Fprintf(w, "fork: delay[%d] %v -> %v\n", fi, base.Delays[fi], fd)
		if err := writeStrongPair(w, r, base, fi, fd); err != nil {
			return err
		}
	}
	return nil
}

// writeStrongPair replays both futures at full trace level, reports the
// first diverging response, and renders the two diagrams.
func writeStrongPair(w io.Writer, r *Runner, base Schedule, forkIdx int, forkDelay simtime.Duration) error {
	rr := &Runner{Params: r.Params, DT: r.DT, Target: r.Target, CheckWorkers: r.CheckWorkers}
	baseOut, err := rr.Run(base)
	if err != nil {
		return err
	}
	forkOut, err := rr.Run(ForkOf(base, forkIdx, forkDelay))
	if err != nil {
		return err
	}
	for i := range baseOut.Trace.Ops {
		if i >= len(forkOut.Trace.Ops) {
			break
		}
		a, b := baseOut.Trace.Ops[i], forkOut.Trace.Ops[i]
		if a.Proc == b.Proc && a.Op == b.Op && !spec.ValuesEqual(a.Ret, b.Ret) {
			fmt.Fprintf(w, "diverging response: p%d %s(%s) returns %s / %s\n",
				a.Proc, a.Op, spec.FormatValue(a.Arg), spec.FormatValue(a.Ret), spec.FormatValue(b.Ret))
			break
		}
	}
	fmt.Fprintf(w, "future A (delay[%d]=%v):\n", forkIdx, base.Delays[forkIdx])
	fmt.Fprint(w, diagram.Render(baseOut.Trace, diagram.Options{SuppressMessages: true, MaxRows: 40}))
	fmt.Fprintf(w, "future B (delay[%d]=%v):\n", forkIdx, forkDelay)
	fmt.Fprint(w, diagram.Render(forkOut.Trace, diagram.Options{SuppressMessages: true, MaxRows: 40}))
	return nil
}
