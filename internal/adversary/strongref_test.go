package adversary

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/lincheck"
	"lintime/internal/simtime"
	"lintime/internal/spec"
	"lintime/internal/strongcheck"
)

// This file holds a brute-force reference for the two-future strong
// check, used to independently confirm the hunt's counterexamples: a
// fork pair admits a prefix-preserving linearization iff the two futures
// have completions whose commit decisions inside the shared event prefix
// coincide. The reference enumerates, per future, every legal commit
// schedule (no memoization, no tree) and intersects the serialized
// shared-prefix decisions — a different algorithm from strongcheck's
// simultaneous tree DFS, so agreement is meaningful.

type refEvent struct {
	time    simtime.Time
	respond bool
	op      int
	ret     spec.Value
}

func refEvents(h []lincheck.Op) []refEvent {
	var evs []refEvent
	for i, op := range h {
		evs = append(evs, refEvent{time: op.Invoke, op: i})
		if !op.Pending() {
			evs = append(evs, refEvent{time: op.Respond, respond: true, op: i, ret: op.Ret})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].time != evs[b].time {
			return evs[a].time < evs[b].time
		}
		if evs[a].respond != evs[b].respond {
			return !evs[a].respond
		}
		return evs[a].op < evs[b].op
	})
	return evs
}

// refEventKey is the cross-future identity of an event.
func refEventKey(h []lincheck.Op, ev refEvent) string {
	op := h[ev.op]
	k := fmt.Sprintf("%d·%d·%s·%s·%d", ev.time, op.Proc, op.Name, spec.FormatValue(op.Arg), op.Invoke)
	if ev.respond {
		k += "·r·" + spec.FormatValue(ev.ret)
	}
	return k
}

// refSharedLen returns the length of the common event-identity prefix.
func refSharedLen(hA, hB []lincheck.Op) int {
	eA, eB := refEvents(hA), refEvents(hB)
	k := 0
	for k < len(eA) && k < len(eB) && refEventKey(hA, eA[k]) == refEventKey(hB, eB[k]) {
		k++
	}
	return k
}

// refCompletions enumerates every successful commit schedule of one
// future and returns the set of serialized shared-prefix decisions
// (commit order, operation identities by shared event index, returns, and
// slot positions for commits made before the first diverging event).
func refCompletions(dt spec.DataType, h []lincheck.Op, shared int) map[string]bool {
	evs := refEvents(h)
	invokeIdx := make([]int, len(h))
	for i, ev := range evs {
		if !ev.respond {
			invokeIdx[ev.op] = i
		}
	}
	taken := make([]bool, len(h))
	retOf := make([]spec.Value, len(h))
	out := map[string]bool{}
	var trail []string
	var rec func(idx int, st spec.State)
	rec = func(idx int, st spec.State) {
		if idx == len(evs) {
			out[strings.Join(trail, ";")] = true
			return
		}
		ev := evs[idx]
		if !ev.respond {
			rec(idx+1, st)
		} else if taken[ev.op] && spec.ValuesEqual(retOf[ev.op], ev.ret) {
			rec(idx+1, st)
		}
		for i := range h {
			if taken[i] || invokeIdx[i] >= idx {
				continue
			}
			ret, next := st.Apply(h[i].Name, h[i].Arg)
			taken[i] = true
			retOf[i] = ret
			mark := idx <= shared
			if mark {
				trail = append(trail, fmt.Sprintf("%d@%d=%s", invokeIdx[i], idx, spec.FormatValue(ret)))
			}
			rec(idx, next)
			if mark {
				trail = trail[:len(trail)-1]
			}
			taken[i] = false
			retOf[i] = nil
		}
	}
	rec(0, dt.Initial())
	return out
}

// refStrongPair reports whether the fork pair admits a prefix-preserving
// linearization.
func refStrongPair(dt spec.DataType, hA, hB []lincheck.Op) bool {
	shared := refSharedLen(hA, hB)
	compA := refCompletions(dt, hA, shared)
	compB := refCompletions(dt, hB, shared)
	for k := range compA {
		if compB[k] {
			return true
		}
	}
	return false
}

// TestStrongForkBruteForce re-derives the hunt's headline counterexamples
// with the brute-force pair reference: for both the paper's literal
// accessor bound and the corrected Algorithm 1, the shrunk fork pair must
// be refuted by the reference exactly as by strongcheck's tree search —
// and the degenerate pair (H, H) must of course be satisfiable.
func TestStrongForkBruteForce(t *testing.T) {
	p := simtime.DefaultParams(3)
	for _, mutant := range []string{"aop-no-eps", ""} {
		name := mutant
		if name == "" {
			name = "corrected"
		}
		t.Run(name, func(t *testing.T) {
			rep, err := StrongHunt(StrongOptions{
				Params: p, DT: adt.NewQueue(), Target: Target{Mutant: mutant},
				Seed: 7, Budget: 16, StopEarly: true, Shrink: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) == 0 {
				t.Fatalf("no violation to verify")
			}
			v := rep.Violations[0]
			r := &Runner{Params: p, DT: adt.NewQueue(), Target: Target{Mutant: mutant}}
			baseOut, err := r.Run(*v.Shrunk)
			if err != nil {
				t.Fatal(err)
			}
			forkOut, err := r.Run(ForkOf(*v.Shrunk, v.ShrunkForkIndex, v.ShrunkForkDelay))
			if err != nil {
				t.Fatal(err)
			}
			hA, hB := lincheck.FromTrace(baseOut.Trace), lincheck.FromTrace(forkOut.Trace)
			if len(hA) > 6 || len(hB) > 6 {
				t.Fatalf("shrunk pair too large for the brute force: %d/%d ops", len(hA), len(hB))
			}
			if !baseOut.Check.Linearizable || !forkOut.Check.Linearizable {
				t.Fatalf("futures must be individually linearizable")
			}
			if refStrongPair(adt.NewQueue(), hA, hB) {
				t.Errorf("brute force says the pair IS strongly linearizable — tree check disagrees")
			}
			tree := strongcheck.NewTree()
			tree.Add(hA)
			tree.Add(hB)
			if tree.Check(adt.NewQueue()).Strong {
				t.Errorf("tree check flipped to strong on replay")
			}
			// Degenerate control: a pair of identical futures is satisfiable.
			if !refStrongPair(adt.NewQueue(), hA, hA) {
				t.Errorf("brute force rejects the identical pair")
			}
		})
	}
}
