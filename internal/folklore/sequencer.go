package folklore

import (
	"fmt"
	"sort"

	"lintime/internal/sim"
	"lintime/internal/spec"
)

// Ordered is the sequencer's broadcast: an operation with its global
// sequence number.
type Ordered struct {
	Op    string
	Arg   spec.Value
	Seq   int64
	Orig  sim.ProcID
	SeqID int64
}

// Sequencer is the total-order-broadcast folklore algorithm. Process 0 is
// the sequencer: it stamps every operation with a global sequence number
// and broadcasts it; every replica applies operations in sequence order
// and the invoker responds when it applies its own operation. Remote
// operations take up to 2d (one hop to the sequencer, one broadcast hop);
// the sequencer's own operations apply immediately.
type Sequencer struct {
	dt    spec.DataType
	state spec.State
	seqr  sim.ProcID

	nextSeq    int64      // sequencer only: next sequence number to assign
	nextApply  int64      // next sequence number to apply locally
	outOfOrder []*Ordered // buffered messages with larger sequence numbers
}

// NewSequencer builds one node of the sequencer algorithm; process 0 acts
// as the sequencer.
func NewSequencer(dt spec.DataType) *Sequencer {
	return &Sequencer{dt: dt, state: dt.Initial(), seqr: 0}
}

// NewSequencerNodes builds n sequencer-algorithm nodes.
func NewSequencerNodes(n int, dt spec.DataType) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewSequencer(dt)
	}
	return nodes
}

// StateFingerprint exposes the replica state for convergence checks.
func (s *Sequencer) StateFingerprint() string { return s.state.Fingerprint() }

// Init implements sim.Node.
func (s *Sequencer) Init(sim.Context) {}

// OnInvoke implements sim.Node.
func (s *Sequencer) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	if ctx.ID() == s.seqr {
		s.sequence(ctx, Request{Op: inv.Op, Arg: inv.Arg, SeqID: inv.SeqID}, ctx.ID())
		return
	}
	ctx.Send(s.seqr, Request{Op: inv.Op, Arg: inv.Arg, SeqID: inv.SeqID})
}

// sequence (sequencer only) assigns the next number and broadcasts.
func (s *Sequencer) sequence(ctx sim.Context, req Request, orig sim.ProcID) {
	ord := Ordered{Op: req.Op, Arg: req.Arg, Seq: s.nextSeq, Orig: orig, SeqID: req.SeqID}
	s.nextSeq++
	ctx.Broadcast(ord)
	s.apply(ctx, &ord)
}

// OnMessage implements sim.Node.
func (s *Sequencer) OnMessage(ctx sim.Context, from sim.ProcID, payload any) {
	switch m := payload.(type) {
	case Request:
		if ctx.ID() != s.seqr {
			panic("folklore: request sent to non-sequencer")
		}
		s.sequence(ctx, m, from)
	case Ordered:
		s.apply(ctx, &m)
	default:
		panic(fmt.Sprintf("folklore: unexpected message %T", payload))
	}
}

// apply executes deliverable operations in sequence order, buffering any
// received out of order (possible since channels are not FIFO).
func (s *Sequencer) apply(ctx sim.Context, ord *Ordered) {
	s.outOfOrder = append(s.outOfOrder, ord)
	sort.Slice(s.outOfOrder, func(i, j int) bool { return s.outOfOrder[i].Seq < s.outOfOrder[j].Seq })
	for len(s.outOfOrder) > 0 && s.outOfOrder[0].Seq == s.nextApply {
		next := s.outOfOrder[0]
		s.outOfOrder = s.outOfOrder[1:]
		s.nextApply++
		var ret spec.Value
		ret, s.state = s.state.Apply(next.Op, next.Arg)
		if next.Orig == ctx.ID() {
			ctx.Respond(next.SeqID, ret)
		}
	}
}

// OnTimer implements sim.Node.
func (s *Sequencer) OnTimer(sim.Context, any) {}
