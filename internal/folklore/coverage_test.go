package folklore

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

// stubCtx is a minimal sim.Context for exercising node methods outside
// the engine — only ID() matters for the branches under test.
type stubCtx struct {
	id sim.ProcID
}

func (c stubCtx) ID() sim.ProcID                                    { return c.id }
func (c stubCtx) N() int                                            { return 2 }
func (c stubCtx) Now() simtime.Time                                 { return 0 }
func (c stubCtx) LocalTime() simtime.Time                           { return 0 }
func (c stubCtx) SetTimer(simtime.Duration, any) sim.TimerID        { return 0 }
func (c stubCtx) SetTimerAtLocal(simtime.Time, any) sim.TimerID     { return 0 }
func (c stubCtx) CancelTimer(sim.TimerID)                           {}
func (c stubCtx) Send(sim.ProcID, any)                              {}
func (c stubCtx) Broadcast(any)                                     {}
func (c stubCtx) Respond(int64, any)                                {}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestNodeInterfaceStubs pins the inert sim.Node methods (Init and
// OnTimer are deliberate no-ops in both folklore algorithms — neither
// uses timers) and the defensive panics on protocol-violating messages.
func TestNodeInterfaceStubs(t *testing.T) {
	dt := adt.NewRegister(0)
	c := NewCentral(dt)
	c.Init(stubCtx{})
	c.OnTimer(stubCtx{}, "tag")
	mustPanic(t, "central unexpected payload", func() {
		c.OnMessage(stubCtx{}, 1, struct{}{})
	})

	s := NewSequencer(dt)
	s.Init(stubCtx{})
	s.OnTimer(stubCtx{}, "tag")
	mustPanic(t, "sequencer unexpected payload", func() {
		s.OnMessage(stubCtx{}, 1, struct{}{})
	})
	mustPanic(t, "request at non-sequencer", func() {
		s.OnMessage(stubCtx{id: 1}, 0, Request{Op: "read"})
	})
}
