package folklore

import (
	"math/rand"
	"testing"

	"lintime/internal/adt"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

func testParams(n int) simtime.Params {
	return simtime.Params{N: n, D: 100, U: 40, Epsilon: 30}
}

type builder func(n int, dt spec.DataType) []sim.Node

var algorithms = map[string]builder{
	"central":   NewCentralNodes,
	"sequencer": NewSequencerNodes,
}

func runWorkload(t *testing.T, build builder, typeName string, net sim.Network, seed int64) *sim.Trace {
	t.Helper()
	p := testParams(4)
	dt, err := adt.Lookup(typeName)
	if err != nil {
		t.Fatal(err)
	}
	nodes := build(p.N, dt)
	eng, err := sim.NewEngine(p, sim.SpreadOffsets(p.N, p.Epsilon), net, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ops := dt.Ops()
	counts := make([]int, p.N)
	invoke := func(proc sim.ProcID, at simtime.Time) {
		op := ops[rng.Intn(len(ops))]
		eng.InvokeAt(proc, at, op.Name, op.Args[rng.Intn(len(op.Args))])
	}
	eng.OnRespond = func(rec sim.OpRecord) {
		counts[rec.Proc]++
		if counts[rec.Proc] < 6 {
			invoke(rec.Proc, rec.RespondTime.Add(simtime.Duration(rng.Intn(15))))
		}
	}
	for i := 0; i < p.N; i++ {
		invoke(sim.ProcID(i), simtime.Time(i*5))
	}
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckAdmissible(); err != nil {
		t.Fatal(err)
	}
	res := lincheck.CheckTrace(dt, tr)
	if !res.Linearizable {
		t.Fatalf("%s run on %s not linearizable", typeName, typeName)
	}
	return tr
}

func TestFolkloreLinearizable(t *testing.T) {
	for algName, build := range algorithms {
		for _, typeName := range []string{"queue", "stack", "register", "rmwregister", "counter"} {
			t.Run(algName+"/"+typeName, func(t *testing.T) {
				p := testParams(4)
				runWorkload(t, build, typeName, sim.NewRandomNetwork(p.D, p.U, 31), 7)
			})
		}
	}
}

func TestFolkloreLatencyAtMost2D(t *testing.T) {
	for algName, build := range algorithms {
		t.Run(algName, func(t *testing.T) {
			p := testParams(4)
			tr := runWorkload(t, build, "queue", sim.UniformNetwork{D: p.D}, 11)
			for _, op := range tr.Ops {
				if op.Latency() > 2*p.D {
					t.Errorf("%s latency %v exceeds 2d = %v", op.Op, op.Latency(), 2*p.D)
				}
			}
		})
	}
}

func TestCentralRemoteLatencyExactly2D(t *testing.T) {
	p := testParams(2)
	dt, _ := adt.Lookup("register")
	eng, err := sim.NewEngine(p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, NewCentralNodes(p.N, dt))
	if err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(1, 0, adt.OpRead, nil)
	tr := eng.Run()
	if got := tr.Ops[0].Latency(); got != 2*p.D {
		t.Errorf("remote op latency = %v, want exactly 2d = %v", got, 2*p.D)
	}
}

func TestCentralServerLatencyZero(t *testing.T) {
	p := testParams(2)
	dt, _ := adt.Lookup("register")
	eng, _ := sim.NewEngine(p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, NewCentralNodes(p.N, dt))
	eng.InvokeAt(0, 0, adt.OpWrite, 3)
	tr := eng.Run()
	if got := tr.Ops[0].Latency(); got != 0 {
		t.Errorf("server-local op latency = %v, want 0", got)
	}
}

func TestSequencerRemoteLatencyExactly2D(t *testing.T) {
	p := testParams(3)
	dt, _ := adt.Lookup("queue")
	eng, _ := sim.NewEngine(p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, NewSequencerNodes(p.N, dt))
	eng.InvokeAt(2, 0, adt.OpEnqueue, 1)
	tr := eng.Run()
	if got := tr.Ops[0].Latency(); got != 2*p.D {
		t.Errorf("remote op latency = %v, want exactly 2d = %v", got, 2*p.D)
	}
}

func TestSequencerReplicasConverge(t *testing.T) {
	p := testParams(4)
	dt, _ := adt.Lookup("log")
	nodes := NewSequencerNodes(p.N, dt)
	eng, _ := sim.NewEngine(p, sim.ZeroOffsets(p.N), sim.NewRandomNetwork(p.D, p.U, 3), nodes)
	for i := 0; i < p.N; i++ {
		eng.InvokeAt(sim.ProcID(i), simtime.Time(i), adt.OpAppend, i)
	}
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	fp := nodes[0].(*Sequencer).StateFingerprint()
	for i, n := range nodes {
		if got := n.(*Sequencer).StateFingerprint(); got != fp {
			t.Errorf("replica %d state %q != %q", i, got, fp)
		}
	}
}

func TestSequencerHandlesOutOfOrderDelivery(t *testing.T) {
	// Non-FIFO network: later-sequenced broadcasts can arrive first; the
	// buffer must reorder them.
	p := testParams(3)
	dt, _ := adt.Lookup("log")
	nodes := NewSequencerNodes(p.N, dt)
	// Alternate extreme delays per message to force reordering.
	net := &flipNet{d: p.D, u: p.U}
	eng, _ := sim.NewEngine(p, sim.ZeroOffsets(p.N), net, nodes)
	for i := 0; i < 6; i++ {
		eng.InvokeAt(0, simtime.Time(i*5), adt.OpAppend, i)
		// Process 0 is the sequencer; its ops respond instantly, so
		// sequential invocation is safe.
	}
	tr := eng.Run()
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	if !lincheck.CheckTrace(dt, tr).Linearizable {
		t.Error("out-of-order delivery broke the sequencer")
	}
	fp := nodes[1].(*Sequencer).StateFingerprint()
	if got := nodes[2].(*Sequencer).StateFingerprint(); got != fp {
		t.Errorf("replicas diverged: %q vs %q", got, fp)
	}
}

// flipNet alternates between max and min delay per message.
type flipNet struct {
	d, u simtime.Duration
}

func (f *flipNet) Delay(_, _ sim.ProcID, _ simtime.Time, idx int64) simtime.Duration {
	if idx%2 == 0 {
		return f.d
	}
	return f.d - f.u
}

func TestCentralStateMatchesSequentialReplay(t *testing.T) {
	p := testParams(3)
	dt, _ := adt.Lookup("counter")
	nodes := NewCentralNodes(p.N, dt)
	eng, _ := sim.NewEngine(p, sim.ZeroOffsets(p.N), sim.UniformNetwork{D: p.D}, nodes)
	for i := 0; i < 5; i++ {
		eng.InvokeAt(1, simtime.Time(i*300), adt.OpInc, nil)
	}
	eng.Run()
	server := nodes[0].(*Central)
	want := spec.Replay(dt.Initial(), []spec.Instance{
		{Op: adt.OpInc}, {Op: adt.OpInc}, {Op: adt.OpInc}, {Op: adt.OpInc}, {Op: adt.OpInc},
	})
	if server.StateFingerprint() != want.Fingerprint() {
		t.Errorf("server state %q, want %q", server.StateFingerprint(), want.Fingerprint())
	}
}
