// Package folklore implements the two "folklore" linearizable object
// algorithms sketched in the paper's introduction, used as baselines:
//
//   - Central: every invocation is forwarded to a distinguished process
//     that applies operations in arrival order and replies — up to 2d per
//     operation.
//   - Sequencer: a total-order-broadcast scheme built on a sequencer
//     process; every replica applies operations in sequence order and the
//     invoker responds when it applies its own — also up to 2d per
//     operation.
//
// Both treat every operation identically (no classification), which is
// exactly what Algorithm 1 improves upon.
package folklore

import (
	"fmt"

	"lintime/internal/sim"
	"lintime/internal/spec"
)

// Request asks the distinguished process to execute an operation.
type Request struct {
	Op    string
	Arg   spec.Value
	SeqID int64
}

// Reply carries the result back to the invoker.
type Reply struct {
	SeqID int64
	Ret   spec.Value
}

// Central is the centralized folklore algorithm. Process 0 is the
// distinguished server holding the only authoritative copy; it applies
// operations in the order requests arrive (its receipt steps are the
// linearization points). Server-local invocations apply immediately.
type Central struct {
	dt     spec.DataType
	state  spec.State // authoritative copy (server only)
	server sim.ProcID
}

// NewCentral builds one node of the centralized algorithm; process 0 acts
// as the server.
func NewCentral(dt spec.DataType) *Central {
	return &Central{dt: dt, state: dt.Initial(), server: 0}
}

// NewCentralNodes builds n centralized nodes.
func NewCentralNodes(n int, dt spec.DataType) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewCentral(dt)
	}
	return nodes
}

// StateFingerprint exposes the server state (meaningful at process 0).
func (c *Central) StateFingerprint() string { return c.state.Fingerprint() }

// Init implements sim.Node.
func (c *Central) Init(sim.Context) {}

// OnInvoke implements sim.Node.
func (c *Central) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	if ctx.ID() == c.server {
		var ret spec.Value
		ret, c.state = c.state.Apply(inv.Op, inv.Arg)
		ctx.Respond(inv.SeqID, ret)
		return
	}
	ctx.Send(c.server, Request{Op: inv.Op, Arg: inv.Arg, SeqID: inv.SeqID})
}

// OnMessage implements sim.Node.
func (c *Central) OnMessage(ctx sim.Context, from sim.ProcID, payload any) {
	switch m := payload.(type) {
	case Request:
		var ret spec.Value
		ret, c.state = c.state.Apply(m.Op, m.Arg)
		ctx.Send(from, Reply{SeqID: m.SeqID, Ret: ret})
	case Reply:
		ctx.Respond(m.SeqID, m.Ret)
	default:
		panic(fmt.Sprintf("folklore: unexpected message %T", payload))
	}
}

// OnTimer implements sim.Node.
func (c *Central) OnTimer(sim.Context, any) {}
