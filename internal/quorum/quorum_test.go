package quorum

import (
	"testing"

	"lintime/internal/adt"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
)

const tick = simtime.Quantum

func params(n int) simtime.Params {
	return simtime.Params{N: n, D: 8 * tick, U: 4 * tick, Epsilon: 0, X: 0}
}

func newEngine(t *testing.T, p simtime.Params, net sim.Network, cfg Config) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(p, sim.ZeroOffsets(p.N), net, NewReplicas(p.N, 0, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func checkLin(t *testing.T, tr *sim.Trace) {
	t.Helper()
	if err := tr.CheckAdmissible(); err != nil {
		t.Fatalf("inadmissible: %v", err)
	}
	res := lincheck.CheckTrace(adt.NewRegister(0), tr)
	if !res.Linearizable {
		t.Fatalf("not linearizable:\n%+v", tr.Ops)
	}
}

// TestWriteThenRead pins the basic protocol: a write then a later read
// sees the written value, each operation takes two round trips (4d at
// uniform maximum delay), and the message counts are the deterministic
// 2(n-1) requests + 2(n-1) acks per operation.
func TestWriteThenRead(t *testing.T) {
	p := params(3)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	wr := eng.InvokeAt(0, 0, OpWrite, 7)
	rd := eng.InvokeAt(1, simtime.Time(5*p.D), OpRead, nil)
	tr := eng.Run()
	checkLin(t, tr)
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	for _, op := range tr.Ops {
		if got := op.Latency(); got != 4*p.D {
			t.Errorf("op %d latency %v, want 4d=%v", op.SeqID, got, 4*p.D)
		}
		switch op.SeqID {
		case wr:
			if op.Ret != nil {
				t.Errorf("write returned %v, want nil", op.Ret)
			}
		case rd:
			if op.Ret != 7 {
				t.Errorf("read returned %v, want 7", op.Ret)
			}
		}
	}
	if want := 2 * (2*(p.N-1) + 2*(p.N-1)); len(tr.Msgs) != want {
		t.Errorf("%d messages, want %d", len(tr.Msgs), want)
	}
}

// TestReadSurvivesMinorityCrash pins availability: with ⌈n/2⌉-1
// processes crashed at time 0, operations at live processes still
// terminate and linearizability holds.
func TestReadSurvivesMinorityCrash(t *testing.T) {
	p := params(3)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	if err := eng.SetFaults(sim.FaultPlan{
		Crashes: []simtime.Time{simtime.Infinity, simtime.Infinity, 0},
	}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, OpWrite, 3)
	eng.InvokeAt(1, simtime.Time(5*p.D), OpRead, nil)
	tr := eng.Run()
	checkLin(t, tr)
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	if tr.Ops[1].Ret != 3 {
		t.Errorf("read returned %v after minority crash, want 3", tr.Ops[1].Ret)
	}
	// Requests to the crashed process are sent but never processed: the
	// trace marks them dropped.
	dropped := 0
	for _, m := range tr.Msgs {
		if m.Dropped {
			dropped++
			if m.To != 2 {
				t.Errorf("message %d dropped at p%d, only p2 crashed", m.ID, m.To)
			}
		}
	}
	if dropped != 4 { // 2 phases x 1 request per op, 2 ops
		t.Errorf("%d dropped messages, want 4", dropped)
	}
}

// TestCrashedInitiatorLeavesNoPendingOp pins that an invocation
// scheduled at a crashed process is suppressed entirely: a crashed
// process cannot start an operation, so no phantom pending op may reach
// the checker.
func TestCrashedInitiatorLeavesNoPendingOp(t *testing.T) {
	p := params(3)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	if err := eng.SetFaults(sim.FaultPlan{
		Crashes: []simtime.Time{simtime.Infinity, simtime.Infinity, 0},
	}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, OpWrite, 3)
	eng.InvokeAt(2, simtime.Time(p.D), OpWrite, 9) // suppressed: p2 crashed at 0
	tr := eng.Run()
	if len(tr.Ops) != 1 {
		t.Fatalf("%d op records, want 1 (crashed invocation must leave none)", len(tr.Ops))
	}
	if err := tr.CheckCompleteExceptCrashed(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidPhaseLeavesOpPending pins the crash-completeness rule: a
// process crashing between its own phases leaves its operation pending,
// which CheckComplete rejects and CheckCompleteExceptCrashed accepts.
func TestCrashMidPhaseLeavesOpPending(t *testing.T) {
	p := params(3)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	if err := eng.SetFaults(sim.FaultPlan{
		Crashes: []simtime.Time{simtime.Time(p.D), simtime.Infinity, simtime.Infinity},
	}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, OpWrite, 3)
	eng.InvokeAt(1, simtime.Time(6*p.D), OpRead, nil)
	tr := eng.Run()
	checkLin(t, tr)
	if err := tr.CheckComplete(); err == nil {
		t.Fatal("CheckComplete passed with the initiator crashed mid-operation")
	}
	if err := tr.CheckCompleteExceptCrashed(); err != nil {
		t.Fatal(err)
	}
	if !tr.Ops[0].Pending() {
		t.Error("crashed initiator's write completed")
	}
}

// TestRetransmitRecoversFromLoss pins the retransmission path: dropping
// a phase-1 request still terminates (the 3d timer rebroadcasts) and the
// run stays linearizable, at a latency above the loss-free 4d.
func TestRetransmitRecoversFromLoss(t *testing.T) {
	p := params(2)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	// Message ordinal 0 is p0's first QueryReq to p1; at n=2 the quorum
	// is 2, so the phase stalls until the retransmission at 3d.
	if err := eng.SetFaults(sim.FaultPlan{Drops: []int64{0}}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, OpWrite, 5)
	tr := eng.Run()
	checkLin(t, tr)
	if err := tr.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	got := tr.Ops[0].Latency()
	if got <= 4*p.D {
		t.Errorf("latency %v with a dropped request, want > 4d", got)
	}
	if !tr.Msgs[0].Dropped || tr.Msgs[0].Received() {
		t.Errorf("message 0 not recorded as lost in transit: %+v", tr.Msgs[0])
	}
}

// TestLossFreeRunsNeverRetransmit pins the determinism contract the bmc
// message-count model relies on: without faults every phase completes
// before its 3d timer.
func TestLossFreeRunsNeverRetransmit(t *testing.T) {
	p := params(5)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	for i := 0; i < p.N; i++ {
		eng.InvokeAt(sim.ProcID(i), simtime.Time(i)*simtime.Time(tick), OpWrite, i)
	}
	tr := eng.Run()
	checkLin(t, tr)
	want := p.N * (2*(p.N-1) + 2*(p.N-1))
	if len(tr.Msgs) != want {
		t.Errorf("%d messages for %d concurrent writes, want %d (no retransmissions)", len(tr.Msgs), p.N, want)
	}
}

// TestConcurrentWritesTotallyOrdered pins the tag tie-break: concurrent
// writes that draw equal timestamps are ordered by process id, so a
// subsequent read sees the higher process's value at every replica.
func TestConcurrentWritesTotallyOrdered(t *testing.T) {
	p := params(2)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	eng.InvokeAt(0, 0, OpWrite, 10)
	eng.InvokeAt(1, 0, OpWrite, 20)
	eng.InvokeAt(0, simtime.Time(6*p.D), OpRead, nil)
	eng.InvokeAt(1, simtime.Time(6*p.D), OpRead, nil)
	tr := eng.Run()
	checkLin(t, tr)
	var reads []any
	for _, op := range tr.Ops {
		if op.Op == OpRead {
			reads = append(reads, op.Ret)
		}
	}
	if len(reads) != 2 || reads[0] != reads[1] {
		t.Fatalf("probe reads disagree after concurrent equal-TS writes: %v", reads)
	}
	if reads[0] != 20 {
		t.Errorf("reads returned %v, want 20 (tag tie-break by process id)", reads[0])
	}
}

// TestStaleTieBreakDiverges demonstrates the mutant the tie-break
// prevents: under TS-only comparison the same schedule leaves the
// replicas disagreeing, which the probe reads expose as a
// non-linearizable history.
func TestStaleTieBreakDiverges(t *testing.T) {
	p := params(2)
	cfg := DefaultConfig(p)
	cfg.TSOnlyTieBreak = true
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, cfg)
	eng.InvokeAt(0, 0, OpWrite, 10)
	eng.InvokeAt(1, 0, OpWrite, 20)
	eng.InvokeAt(0, simtime.Time(6*p.D), OpRead, nil)
	eng.InvokeAt(1, simtime.Time(6*p.D), OpRead, nil)
	tr := eng.Run()
	res := lincheck.CheckTrace(adt.NewRegister(0), tr)
	if res.Linearizable {
		t.Fatal("stale-tiebreak mutant produced a linearizable history on the divergence schedule")
	}
}

// TestMutantRegistry pins the registry's shape: four mutants, stable
// order, lookup round-trips, and the correct config untouched.
func TestMutantRegistry(t *testing.T) {
	ms := Mutants()
	want := []string{"crash-threshold", "skip-writeback", "stale-tiebreak", "sub-majority-read"}
	if len(ms) != len(want) {
		t.Fatalf("%d mutants, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Errorf("mutant[%d] = %q, want %q", i, m.Name, want[i])
		}
		if _, err := LookupMutant(m.Name); err != nil {
			t.Errorf("LookupMutant(%q): %v", m.Name, err)
		}
	}
	p := params(2)
	base := DefaultConfig(p)
	if cfg, err := ConfigFor(base, Correct); err != nil || cfg != base {
		t.Errorf("ConfigFor(correct) = %+v, %v; want base config", cfg, err)
	}
	if cfg, err := ConfigFor(base, "crash-threshold"); err != nil || cfg.ReadQuorum != 1 || cfg.WriteQuorum != 1 {
		t.Errorf("ConfigFor(crash-threshold) = %+v, %v", cfg, err)
	}
	if _, err := LookupMutant("bogus"); err == nil {
		t.Error("LookupMutant(bogus) succeeded")
	}
}

// TestQuorumOverThresholdStalls pins the flip side of availability: with
// a majority crashed the correct protocol cannot terminate (it keeps
// retransmitting); the crash-threshold mutant terminates and is exactly
// what quorum intersection forbids.
func TestQuorumOverThresholdStalls(t *testing.T) {
	p := params(3)
	eng := newEngine(t, p, sim.UniformNetwork{D: p.D}, DefaultConfig(p))
	if err := eng.SetFaults(sim.FaultPlan{
		Crashes: []simtime.Time{simtime.Infinity, 0, 0},
	}); err != nil {
		t.Fatal(err)
	}
	eng.InvokeAt(0, 0, OpWrite, 1)
	tr := eng.RunUntil(simtime.Time(20 * p.D))
	if err := tr.CheckCompleteExceptCrashed(); err == nil {
		t.Fatal("write at the live minority terminated without a quorum")
	}
}
