// Package quorum implements an ABD-style crash-tolerant majority-quorum
// read/write register (Attiya–Bar-Noy–Dolev; the time-efficient variant
// follows Mostéfaoui & Raynal, "Time-Efficient Read/Write Register in
// Crash-prone Asynchronous Message-Passing Systems").
//
// The register is the third backend beside Algorithm 1 (internal/core)
// and the folklore baselines (internal/folklore). Unlike both, it reads
// no clocks and tolerates crash-stop failures of any minority of
// processes: every operation runs one or two majority-quorum phases, so
// it terminates as long as ⌊n/2⌋+1 processes are live, at a latency of
// two round trips (~4d) instead of the paper's clock-assisted d-X+ε /
// X+ε bounds. DESIGN.md §13 records where the paper's bounds stop
// applying in this model.
//
// A write queries a majority for the largest tag, then propagates
// (maxTS+1, self) with the new value to a majority. A read queries a
// majority, then writes the largest (tag, value) back to a majority
// before returning — the write-back is what makes reads linearizable
// (skipping it admits new-old read inversions; see the "skip-writeback"
// mutant). Replicas store the largest tag seen, adopt strictly greater
// tags, and acknowledge every request — including stale updates — so
// phase message counts are deterministic across delay schedules.
//
// Determinism notes, load-bearing for the exhaustive sweeps in
// internal/bmc: requests are always broadcast to all peers even when the
// initiator alone already satisfies a (mutant-weakened) quorum, the
// write-back phase always runs even when the read's majority already
// agrees (the usual skip-if-agreed optimization is deliberately
// omitted), and each phase retransmits only if a quorum is still missing
// after the retransmit period (3d by default — beyond the 2d worst-case
// round trip, so loss-free runs never retransmit).
package quorum

import (
	"fmt"

	"lintime/internal/obs"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

var (
	phaseTotal      = obs.Default.Counter("quorum_phase_total")
	retransmitTotal = obs.Default.Counter("quorum_retransmits_total")
)

// Operation names (the quorum backend serves the register data type).
const (
	OpRead  = "read"
	OpWrite = "write"
)

// Tag is an ABD timestamp: a logical clock value with the writer's
// process id as tie-break, ordered lexicographically.
type Tag struct {
	TS   int64
	Proc int
}

// Less is the total tag order: (TS, Proc) lexicographic.
func (t Tag) Less(o Tag) bool {
	if t.TS != o.TS {
		return t.TS < o.TS
	}
	return t.Proc < o.Proc
}

// Wire messages. Seq is the initiator's phase sequence number, echoed in
// acknowledgements so stale and duplicate acks are discarded.
type (
	// QueryReq asks a replica for its current (tag, value).
	QueryReq struct{ Seq int64 }
	// QueryAck answers a QueryReq.
	QueryAck struct {
		Seq int64
		Tag Tag
		Val spec.Value
	}
	// UpdateReq asks a replica to adopt (tag, value) if it exceeds its
	// current tag.
	UpdateReq struct {
		Seq int64
		Tag Tag
		Val spec.Value
	}
	// UpdateAck acknowledges an UpdateReq (sent even when the update was
	// stale — acknowledgement means durability, not adoption).
	UpdateAck struct{ Seq int64 }
)

// Config carries the replica's protocol knobs. The zero value plus a
// positive Retransmit is the correct protocol; the mutant registry
// weakens one knob at a time.
type Config struct {
	// ReadQuorum overrides the quorum of a read's query phase
	// (0 = majority). Sub-majority values break read-write quorum
	// intersection as soon as n ≥ 3.
	ReadQuorum int
	// WriteQuorum overrides the quorum of every other phase: a write's
	// query and update phases and a read's write-back (0 = majority).
	WriteQuorum int
	// SkipWriteBack makes reads respond straight after the query phase,
	// admitting new-old read inversions between non-overlapping reads.
	SkipWriteBack bool
	// TSOnlyTieBreak compares tags by TS alone, keeping the incumbent on
	// ties — concurrent writes that draw equal timestamps then diverge
	// across replicas.
	TSOnlyTieBreak bool
	// Retransmit is the per-phase retransmission period. Must be
	// positive; DefaultRetransmit gives 3d.
	Retransmit simtime.Duration
}

// DefaultRetransmit returns the default retransmission period, 3d: past
// the 2d worst-case request/ack round trip, so runs without message loss
// or over-threshold crashes never retransmit.
func DefaultRetransmit(p simtime.Params) simtime.Duration { return 3 * p.D }

// DefaultConfig returns the correct protocol configuration for the given
// model parameters.
func DefaultConfig(p simtime.Params) Config {
	return Config{Retransmit: DefaultRetransmit(p)}
}

// less applies the configured tag order: strict (TS, Proc) by default,
// TS-only under the stale-tie-break mutation.
func (c Config) less(a, b Tag) bool {
	if c.TSOnlyTieBreak {
		return a.TS < b.TS
	}
	return a.Less(b)
}

// retransmitTag re-arms a phase's request broadcast.
type retransmitTag struct{ seq int64 }

// traceSource is the optional Context extension both substrates
// implement: it exposes the installed tracer so the replica can record
// its quorum phases as child spans of the operation. Asserting here —
// instead of widening sim.Context — keeps the Node/Context contract
// substrate-neutral and other backends tracer-oblivious.
type traceSource interface{ Tracer() obs.Tracer }

// tracerFor returns the causal tracer reachable through ctx, or nil when
// tracing is off or the tracer records flat spans only.
func tracerFor(ctx sim.Context) obs.CausalTracer {
	ts, ok := ctx.(traceSource)
	if !ok {
		return nil
	}
	t := ts.Tracer()
	if obs.IsNop(t) {
		return nil
	}
	ct, _ := t.(obs.CausalTracer)
	return ct
}

// phaseSpan derives the deterministic child-span id of one phase of one
// operation: bitwise NOT of (seqID·2 + phase−1). Operation SeqIDs are
// non-negative on both substrates, so phase spans are unique negative
// values that can never collide with a root span.
func phaseSpan(seqID int64, phase int) int64 {
	return ^(seqID*2 + int64(phase-1))
}

// phaseName names a phase in trace output: both operations query first
// (phase 1); phase 2 is a write's propagate or a read's write-back.
func phaseName(phase int) string {
	if phase == 1 {
		return "query"
	}
	return "write_back"
}

// opState tracks the replica's own operation in flight.
type opState struct {
	seqID int64 // invocation to respond to
	op    string
	arg   spec.Value
	phase int   // 1 = query, 2 = update/write-back
	seq   int64 // phase sequence number stamped in requests
	acked uint64
	// query-phase fold
	maxTag Tag
	maxVal spec.Value
	// update-phase payload
	upTag Tag
	upVal spec.Value
	timer sim.TimerID
}

// Replica is one process's ABD register state machine. It implements
// sim.Node and runs unchanged on the virtual-time engine and the
// real-time rtnet transport.
type Replica struct {
	cfg     Config
	initial spec.Value

	tag Tag
	val spec.Value
	cur *opState
	seq int64
}

// NewReplica builds one quorum-register replica with the given initial
// register value. Every process must get its own instance with identical
// arguments.
func NewReplica(initial int, cfg Config) *Replica {
	if cfg.Retransmit <= 0 {
		panic("quorum: Config.Retransmit must be positive")
	}
	return &Replica{cfg: cfg, initial: initial, tag: Tag{TS: 0, Proc: -1}, val: initial}
}

// NewReplicas builds n identically configured replicas as sim.Nodes.
func NewReplicas(n int, initial int, cfg Config) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewReplica(initial, cfg)
	}
	return nodes
}

// Init implements sim.Node.
func (r *Replica) Init(sim.Context) {}

// quorumFor returns the distinct-replica count a phase must hear from
// (including the initiator itself).
func (r *Replica) quorumFor(ctx sim.Context, op string, phase int) int {
	if op == OpRead && phase == 1 {
		if r.cfg.ReadQuorum > 0 {
			return r.cfg.ReadQuorum
		}
	} else if r.cfg.WriteQuorum > 0 {
		return r.cfg.WriteQuorum
	}
	return ctx.N()/2 + 1
}

// OnInvoke implements sim.Node: both operations start with a query
// phase.
func (r *Replica) OnInvoke(ctx sim.Context, inv sim.Invocation) {
	if r.cur != nil {
		panic(fmt.Sprintf("quorum: p%d invoked %s while an operation is in flight", ctx.ID(), inv.Op))
	}
	switch inv.Op {
	case OpRead, OpWrite:
	default:
		panic(fmt.Sprintf("quorum: unsupported operation %q (the quorum backend serves the register type)", inv.Op))
	}
	r.cur = &opState{seqID: inv.SeqID, op: inv.Op, arg: inv.Arg}
	r.startPhase(ctx, 1)
}

// startPhase arms phase p of the current operation: broadcast its
// requests to every peer (always — even a self-satisfied mutant quorum
// broadcasts, keeping message counts schedule-independent), set the
// retransmission timer, count the initiator's own contribution, and
// complete immediately if that already suffices.
func (r *Replica) startPhase(ctx sim.Context, phase int) {
	cur := r.cur
	r.seq++
	cur.phase = phase
	cur.seq = r.seq
	cur.acked = 1 << uint(ctx.ID())
	phaseTotal.Inc()
	if ct := tracerFor(ctx); ct != nil {
		ct.Child(int32(ctx.ID()), phaseSpan(cur.seqID, phase), cur.seqID,
			phaseName(phase), int64(ctx.Now()))
	}
	if phase == 1 {
		cur.maxTag, cur.maxVal = r.tag, r.val
	} else {
		// The initiator is a replica too: adopt its own update locally.
		r.adopt(cur.upTag, cur.upVal)
	}
	ctx.Broadcast(r.request(cur))
	cur.timer = ctx.SetTimer(r.cfg.Retransmit, retransmitTag{seq: cur.seq})
	r.maybeComplete(ctx)
}

// request builds the current phase's request message.
func (r *Replica) request(cur *opState) any {
	if cur.phase == 1 {
		return QueryReq{Seq: cur.seq}
	}
	return UpdateReq{Seq: cur.seq, Tag: cur.upTag, Val: cur.upVal}
}

// adopt installs (tag, val) if it exceeds the stored tag under the
// configured order.
func (r *Replica) adopt(tag Tag, val spec.Value) {
	if r.cfg.less(r.tag, tag) {
		r.tag, r.val = tag, val
	}
}

// OnMessage implements sim.Node.
func (r *Replica) OnMessage(ctx sim.Context, from sim.ProcID, payload any) {
	switch m := payload.(type) {
	case QueryReq:
		ctx.Send(from, QueryAck{Seq: m.Seq, Tag: r.tag, Val: r.val})
	case UpdateReq:
		r.adopt(m.Tag, m.Val)
		ctx.Send(from, UpdateAck{Seq: m.Seq})
	case QueryAck:
		cur := r.cur
		if cur == nil || cur.phase != 1 || m.Seq != cur.seq {
			return // stale or duplicate
		}
		if cur.acked&(1<<uint(from)) != 0 {
			return // duplicate (retransmitted request)
		}
		cur.acked |= 1 << uint(from)
		if r.cfg.less(cur.maxTag, m.Tag) {
			cur.maxTag, cur.maxVal = m.Tag, m.Val
		}
		r.maybeComplete(ctx)
	case UpdateAck:
		cur := r.cur
		if cur == nil || cur.phase != 2 || m.Seq != cur.seq {
			return
		}
		if cur.acked&(1<<uint(from)) != 0 {
			return
		}
		cur.acked |= 1 << uint(from)
		r.maybeComplete(ctx)
	default:
		panic(fmt.Sprintf("quorum: unexpected message %T", payload))
	}
}

// OnTimer implements sim.Node: the only timers are per-phase
// retransmissions.
func (r *Replica) OnTimer(ctx sim.Context, tag any) {
	rt, ok := tag.(retransmitTag)
	if !ok {
		panic(fmt.Sprintf("quorum: unexpected timer tag %T", tag))
	}
	cur := r.cur
	if cur == nil || cur.seq != rt.seq {
		return // phase already completed
	}
	retransmitTotal.Inc()
	ctx.Broadcast(r.request(cur))
	cur.timer = ctx.SetTimer(r.cfg.Retransmit, retransmitTag{seq: cur.seq})
}

// maybeComplete advances the current operation once its phase quorum is
// reached.
func (r *Replica) maybeComplete(ctx sim.Context) {
	cur := r.cur
	if popcount(cur.acked) < r.quorumFor(ctx, cur.op, cur.phase) {
		return
	}
	ctx.CancelTimer(cur.timer)
	if ct := tracerFor(ctx); ct != nil {
		ct.ChildEnd(int32(ctx.ID()), phaseSpan(cur.seqID, cur.phase), int64(ctx.Now()))
	}
	if cur.phase == 1 {
		if cur.op == OpWrite {
			// Propagate (maxTS+1, self) with the written value.
			cur.upTag = Tag{TS: cur.maxTag.TS + 1, Proc: int(ctx.ID())}
			cur.upVal = cur.arg
			r.startPhase(ctx, 2)
			return
		}
		// Read: write the largest (tag, value) back before responding.
		if r.cfg.SkipWriteBack {
			r.cur = nil
			ctx.Respond(cur.seqID, cur.maxVal)
			return
		}
		cur.upTag, cur.upVal = cur.maxTag, cur.maxVal
		r.startPhase(ctx, 2)
		return
	}
	// Phase 2 complete: the operation's (tag, value) is durable at a
	// quorum.
	r.cur = nil
	if cur.op == OpWrite {
		ctx.Respond(cur.seqID, nil)
	} else {
		ctx.Respond(cur.seqID, cur.maxVal)
	}
}

// StoredTag returns the replica's stored tag (for tests).
func (r *Replica) StoredTag() Tag { return r.tag }

// StoredValue returns the replica's stored value (for tests).
func (r *Replica) StoredValue() spec.Value { return r.val }

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
