package quorum

import (
	"fmt"
	"sort"
)

// Mutant names one deliberately weakened protocol configuration. The
// registry mirrors internal/adversary's Algorithm 1 mutants: each entry
// removes one safeguard whose necessity the fuzzer and the exhaustive
// bmc sweep must demonstrate by killing the mutant.
type Mutant struct {
	// Name identifies the mutant on the command line ("" = correct).
	Name string
	// Desc is a one-line description for reports.
	Desc string
	// Apply weakens a correct configuration in place.
	Apply func(cfg *Config)
}

// Correct is the mutant name of the unmodified protocol.
const Correct = ""

var mutants = []Mutant{
	{
		Name: "sub-majority-read",
		Desc: "read query phase waits for 1 ack instead of a majority",
		Apply: func(cfg *Config) {
			cfg.ReadQuorum = 1
		},
	},
	{
		Name: "skip-writeback",
		Desc: "reads respond after the query phase without writing back",
		Apply: func(cfg *Config) {
			cfg.SkipWriteBack = true
		},
	},
	{
		Name: "stale-tiebreak",
		Desc: "tags compared by timestamp only; ties keep the incumbent",
		Apply: func(cfg *Config) {
			cfg.TSOnlyTieBreak = true
		},
	},
	{
		Name: "crash-threshold",
		Desc: "every phase waits for 1 ack: tolerates crash counts over the minority threshold, at the cost of quorum intersection",
		Apply: func(cfg *Config) {
			cfg.ReadQuorum = 1
			cfg.WriteQuorum = 1
		},
	},
}

// Mutants returns the seeded mutants in deterministic (name) order.
func Mutants() []Mutant {
	out := append([]Mutant(nil), mutants...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupMutant resolves a mutant by name; "" and "none" mean the correct
// protocol.
func LookupMutant(name string) (Mutant, error) {
	if name == Correct || name == "none" {
		return Mutant{Name: Correct, Desc: "correct ABD quorum register"}, nil
	}
	for _, m := range mutants {
		if m.Name == name {
			return m, nil
		}
	}
	names := make([]string, 0, len(mutants))
	for _, m := range Mutants() {
		names = append(names, m.Name)
	}
	return Mutant{}, fmt.Errorf("quorum: unknown mutant %q (have %v)", name, names)
}

// ConfigFor returns the protocol configuration of the named mutant,
// starting from base.
func ConfigFor(base Config, name string) (Config, error) {
	m, err := LookupMutant(name)
	if err != nil {
		return Config{}, err
	}
	cfg := base
	if m.Apply != nil {
		m.Apply(&cfg)
	}
	return cfg, nil
}
