package serve

import (
	"errors"
	"testing"
	"time"

	"lintime/internal/classify"
	"lintime/internal/harness"
	"lintime/internal/quorum"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// quorumConfig is testConfig on the ABD quorum backend: TypeName is left
// empty to exercise the register default.
func quorumConfig(n int) Config {
	cfg := testConfig(n)
	cfg.Backend = harness.AlgQuorum
	cfg.TypeName = ""
	return cfg
}

func startQuorumServer(t *testing.T, n int) *Server {
	t.Helper()
	s, err := New(quorumConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Drain(30 * time.Second) })
	return s
}

// TestServerQuorumBackend pins the backend seam: the quorum server
// defaults to the register type, serves reads and writes, and judges
// every class against the flat 4d bound instead of Algorithm 1's
// per-class formulas.
func TestServerQuorumBackend(t *testing.T) {
	s := startQuorumServer(t, 3)
	if got := s.Type().Name(); got != "register" {
		t.Fatalf("quorum backend serves type %q, want register", got)
	}
	if r, err := s.Call(quorum.OpWrite, 5); err != nil || r.Ret != nil {
		t.Errorf("write = (%v, %v)", r.Ret, err)
	}
	if r, err := s.Call(quorum.OpRead, nil); err != nil || !spec.ValuesEqual(r.Ret, 5) {
		t.Errorf("read = (%v, %v), want 5", r.Ret, err)
	}
	want := 4 * s.Config().Params.D
	for _, class := range []classify.Class{classify.PureAccessor, classify.PureMutator, classify.Mixed} {
		if got := s.Formula(class); got != want {
			t.Errorf("Formula(%v) = %v, want %v (class-independent 4d)", class, got, want)
		}
	}
	// Rejecting a non-register type is the config error, not a panic.
	cfg := quorumConfig(2)
	cfg.TypeName = "queue"
	if _, err := New(cfg); err == nil {
		t.Error("quorum backend with a queue type should error")
	}
	cfg = quorumConfig(2)
	cfg.Backend = "bogus"
	if _, err := New(cfg); err == nil {
		t.Error("unknown backend should error")
	}
}

// TestServerQuorumCrashMinority is the serving-layer crash story: crash
// a minority mid-run and the router drops the dead replica from rotation
// while the survivors keep completing operations against the remaining
// majority — including reads of data written before the crash.
func TestServerQuorumCrashMinority(t *testing.T) {
	s := startQuorumServer(t, 3)
	if _, err := s.Call(quorum.OpWrite, 5); err != nil {
		t.Fatal(err)
	}
	s.Crash(1)
	if !s.Crashed(1) {
		t.Fatal("Crashed(1) = false after Crash")
	}
	s.Crash(1) // idempotent
	// Every post-crash call routes around the dead replica: with one
	// round-robin slot dead, eight calls land on both survivors.
	for i := 0; i < 4; i++ {
		if r, err := s.Call(quorum.OpRead, nil); err != nil || !spec.ValuesEqual(r.Ret, 5) {
			t.Fatalf("post-crash read %d = (%v, %v), want 5", i, r.Ret, err)
		}
	}
	if _, err := s.Call(quorum.OpWrite, 9); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Call(quorum.OpRead, nil); err != nil || !spec.ValuesEqual(r.Ret, 9) {
		t.Errorf("read after post-crash write = (%v, %v), want 9", r.Ret, err)
	}
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain after crash: %v", err)
	}
}

// TestServerAllCrashed pins the no-quorum endpoint: once every replica
// is crashed the router has nowhere to send work and Call fails fast
// with ErrAllCrashed instead of queueing onto a dead cluster.
func TestServerAllCrashed(t *testing.T) {
	s := startQuorumServer(t, 2)
	s.Crash(0)
	s.Crash(1)
	if _, err := s.Call(quorum.OpRead, nil); !errors.Is(err, ErrAllCrashed) {
		t.Errorf("Call with all replicas crashed = %v, want ErrAllCrashed", err)
	}
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRunLoadQuorumCrashMidRun is the acceptance scenario in miniature:
// a closed-loop load run on the quorum backend survives a minority crash
// injected mid-run — calls that raced the crash are retried and counted
// as Unavailable, everything else completes within the 4d SLO. (The full
// version is `lintime load -backend quorum -n 3 -duration 10s -crash 2@5s`.)
func TestRunLoadQuorumCrashMidRun(t *testing.T) {
	s := startQuorumServer(t, 3)
	timer := time.AfterFunc(300*time.Millisecond, func() { s.Crash(2) })
	defer timer.Stop()
	p := s.Config().Params
	sum, err := RunLoad(s, s.Type(), p, s.Config().Tick, LoadConfig{
		Clients:  4,
		Duration: time.Second,
		Seed:     11,
		Mix: []harness.OpPick{
			{Op: quorum.OpWrite, Weight: 1},
			{Op: quorum.OpRead, Weight: 1},
		},
		Formula: func(classify.Class) simtime.Duration { return QuorumFormulaTicks(p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Crashed(2) {
		t.Fatal("crash timer did not fire within the run")
	}
	if sum.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	for name, rep := range sum.PerClass {
		if rep.FormulaTicks != int64(4*p.D) {
			t.Errorf("class %s judged against %d ticks, want 4d = %d", name, rep.FormulaTicks, 4*p.D)
		}
		if !rep.WithinBudget {
			t.Errorf("class %s p99 %d exceeds 4d + budget %d", name, rep.Latency.P99, rep.BudgetTicks)
		}
	}
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
