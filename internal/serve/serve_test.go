package serve

import (
	"net"
	"sync"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/classify"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/rtnet"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// testConfig keeps virtual magnitudes small so wall-clock runs stay
// short: d = 40 ticks at 1ms/tick → ~40ms operation latencies.
func testConfig(n int) Config {
	u := simtime.Duration(20)
	return Config{
		Params: simtime.Params{
			N: n, D: 40, U: u,
			Epsilon: simtime.OptimalEpsilon(n, u), X: 10,
		},
		TypeName: "queue",
		Tick:     time.Millisecond,
		Offsets:  harness.OffSpread,
		Seed:     7,
	}
}

func startServer(t *testing.T, n int) *Server {
	t.Helper()
	s, err := New(testConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Drain(30 * time.Second) })
	return s
}

func TestServerCallBasics(t *testing.T) {
	s := startServer(t, 3)
	if r, err := s.Call(adt.OpEnqueue, 7); err != nil || r.Ret != nil {
		t.Errorf("enqueue = (%v, %v)", r.Ret, err)
	} else if r.Class != classify.PureMutator {
		t.Errorf("enqueue class = %v, want MOP", r.Class)
	}
	// Let replication settle, then observe the element.
	time.Sleep(5 * 40 * time.Millisecond)
	if r, err := s.Call(adt.OpPeek, nil); err != nil || !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("peek = (%v, %v), want 7", r.Ret, err)
	}
	if r, err := s.Call(adt.OpDequeue, nil); err != nil || !spec.ValuesEqual(r.Ret, 7) {
		t.Errorf("dequeue = (%v, %v), want 7", r.Ret, err)
	} else if r.Class != classify.Mixed {
		t.Errorf("dequeue class = %v, want OOP", r.Class)
	}
	st := s.Stats()
	if st.Ops != 3 {
		t.Errorf("stats ops = %d, want 3", st.Ops)
	}
	for _, class := range []string{"AOP", "MOP", "OOP"} {
		if q, ok := st.PerClass[class]; !ok || q.Count != 1 {
			t.Errorf("per-class stats missing %s: %+v", class, st.PerClass)
		}
	}
}

func TestServerRejectsUnknownOp(t *testing.T) {
	s := startServer(t, 2)
	if _, err := s.Call("pop", nil); err == nil {
		t.Error("unknown op should error")
	}
}

func TestServerNotStarted(t *testing.T) {
	s, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(adt.OpEnqueue, 1); err == nil {
		t.Error("call before Start should error")
	}
	if err := s.Drain(time.Second); err != nil {
		t.Errorf("drain of never-started server: %v", err)
	}
}

func TestServerDrainRefusesNewCalls(t *testing.T) {
	s := startServer(t, 2)
	if _, err := s.Call(adt.OpEnqueue, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Call(adt.OpEnqueue, 2); err != ErrDraining {
		t.Errorf("call after drain = %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Drain(time.Second); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestServerConcurrentCallsLinearizable(t *testing.T) {
	s := startServer(t, 3)
	const clients, opsEach = 6, 5
	var mu sync.Mutex
	var history []lincheck.Op
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < opsEach; n++ {
				var r rtnet.Response
				var err error
				switch n % 3 {
				case 0:
					r, err = s.Call(adt.OpEnqueue, c*100+n)
				case 1:
					r, err = s.Call(adt.OpPeek, nil)
				default:
					r, err = s.Call(adt.OpDequeue, nil)
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				mu.Lock()
				history = append(history, lincheck.Op{
					ID: int(r.Seq), Name: r.Op, Arg: r.Arg, Ret: r.Ret,
					Invoke: r.Invoke, Respond: r.Respond,
				})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	dt, _ := adt.Lookup("queue")
	if !lincheck.Check(dt, history).Linearizable {
		t.Errorf("served history not linearizable (%d ops)", len(history))
	}
	if got := len(s.Trace().Ops); got != clients*opsEach {
		t.Errorf("trace has %d ops, want %d", got, clients*opsEach)
	}
}

func TestServerTCPRoundtrip(t *testing.T) {
	s := startServer(t, 3)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if r, err := c.Call(adt.OpEnqueue, 42); err != nil || r.Ret != nil {
		t.Fatalf("remote enqueue = (%v, %v)", r.Ret, err)
	} else {
		if r.Class != classify.PureMutator {
			t.Errorf("remote class = %v, want MOP", r.Class)
		}
		if r.Latency() <= 0 {
			t.Errorf("remote latency = %v, want > 0", r.Latency())
		}
	}
	time.Sleep(5 * 40 * time.Millisecond)
	if r, err := c.Call(adt.OpDequeue, nil); err != nil || !spec.ValuesEqual(r.Ret, 42) {
		t.Errorf("remote dequeue = (%v, %v), want 42", r.Ret, err)
	}
	if _, err := c.Call("pop", nil); err == nil {
		t.Error("remote unknown op should error")
	}

	// Pipelined concurrent calls over one connection.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(adt.OpEnqueue, i); err != nil {
				t.Errorf("pipelined call %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not return after drain")
	}
}

func TestRunLoadInProcess(t *testing.T) {
	s := startServer(t, 3)
	sum, err := RunLoad(s, s.Type(), s.Config().Params, s.Config().Tick, LoadConfig{
		Clients:      4,
		OpsPerClient: 6,
		Seed:         11,
		Mix: []harness.OpPick{
			{Op: adt.OpEnqueue, Weight: 2},
			{Op: adt.OpDequeue, Weight: 1},
			{Op: adt.OpPeek, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalOps != 4*6 {
		t.Errorf("total ops = %d, want 24", sum.TotalOps)
	}
	total := 0
	for _, n := range sum.OpCounts {
		total += n
	}
	if total != sum.TotalOps {
		t.Errorf("op counts sum to %d, want %d", total, sum.TotalOps)
	}
	p := s.Config().Params
	for name, rep := range sum.PerClass {
		if rep.Latency.Count == 0 {
			t.Errorf("class %s has no samples", name)
		}
		if rep.Latency.Min < int64(p.X) {
			t.Errorf("class %s min latency %d below any formula", name, rep.Latency.Min)
		}
		if !rep.WithinBudget {
			t.Errorf("class %s p99 %d exceeds formula %d + budget %d",
				name, rep.Latency.P99, rep.FormulaTicks, rep.BudgetTicks)
		}
	}
	if !sum.SLOMet() {
		t.Error("SLO not met")
	}
}

func TestRunLoadValidation(t *testing.T) {
	s := startServer(t, 2)
	p := s.Config().Params
	if _, err := RunLoad(s, s.Type(), p, time.Millisecond, LoadConfig{Clients: 0, OpsPerClient: 1}); err == nil {
		t.Error("zero clients should error")
	}
	if _, err := RunLoad(s, s.Type(), p, time.Millisecond, LoadConfig{Clients: 1}); err == nil {
		t.Error("no duration and no op count should error")
	}
	if _, err := RunLoad(s, s.Type(), p, time.Millisecond, LoadConfig{
		Clients: 1, OpsPerClient: 1, Mix: []harness.OpPick{{Op: "bogus", Weight: 1}},
	}); err == nil {
		t.Error("unknown mix op should error")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(2)
	cfg.TypeName = "bogus"
	if _, err := New(cfg); err == nil {
		t.Error("unknown type should error")
	}
	cfg = testConfig(2)
	cfg.Params.U = cfg.Params.D + 1
	if _, err := New(cfg); err == nil {
		t.Error("invalid params should error")
	}
	cfg = testConfig(2)
	cfg.Offsets = "bogus"
	if _, err := New(cfg); err == nil {
		t.Error("unknown offsets should error")
	}
}
