package serve

import (
	"fmt"
	"net/http"

	"lintime/internal/classify"
	"lintime/internal/obs"
	"lintime/internal/rtnet"
	"lintime/internal/sim"
)

// serveMetrics is the serving layer's instrument set. Every server owns
// a private registry (servers in one process — e.g. concurrent tests —
// must not share instruments); the HTTP handler merges it with
// obs.Default, where the harness and fuzzer publish.
type serveMetrics struct {
	calls    *obs.Counter
	errors   *obs.Counter
	inflight *obs.Gauge
	// drainState tracks shutdown progress: 0 serving, 1 draining,
	// 2 drained.
	drainState *obs.Gauge
	perClass   map[classify.Class]*obs.Hist
	// terms[class][term] receives the per-term latency attribution of
	// every completed operation when a causal tracer is installed
	// (trace_term_ticks{class=...,term=...}); nil maps when tracing is off
	// keep /metrics output unchanged.
	terms map[classify.Class][]*obs.Hist
}

// latency-histogram classes instrumented up front: one series per class
// keeps /metrics stable from the first scrape instead of materializing
// series as traffic arrives.
var metricClasses = []classify.Class{
	classify.PureAccessor, classify.PureMutator, classify.Mixed,
}

// wireMetrics builds the server's registry: per-class latency summaries
// with their Algorithm 1 formula bounds alongside, call/in-flight/drain
// accounting, the rtnet substrate instruments, and live per-process
// inbox gauges. Called from New, before Start.
func (s *Server) wireMetrics() {
	reg := obs.NewRegistry()
	s.reg = reg

	// On a sharded deployment every shard's registry is merged into one
	// endpoint; the shard label keeps the namespaces disjoint. Empty label
	// (single-object mode) preserves the historical metric names exactly.
	name := func(n string) string { return n }
	if s.cfg.ShardLabel != "" {
		name = func(n string) string { return obs.WithLabel(n, "shard", s.cfg.ShardLabel) }
	}

	p := s.cfg.Params
	limit := 4 * int(p.D+p.Epsilon)
	if limit < 16 {
		limit = 16
	}
	m := &serveMetrics{
		calls:      reg.Counter(name("serve_calls_total")),
		errors:     reg.Counter(name("serve_call_errors_total")),
		inflight:   reg.Gauge(name("serve_inflight_ops")),
		drainState: reg.Gauge(name("serve_drain_state")),
		perClass:   map[classify.Class]*obs.Hist{},
	}
	budget := JitterBudget(s.cfg.Tick)
	for _, class := range metricClasses {
		label := fmt.Sprintf("{class=%q}", class.String())
		m.perClass[class] = reg.Hist(name("serve_latency_ticks"+label), limit)
		// The paper's worst-case bound and the SLO line (bound + jitter
		// budget) emit as gauges so a scraper — `lintime stat` — can
		// verdict p99 against them without knowing the model parameters.
		reg.Gauge(name("serve_latency_formula_ticks" + label)).Set(int64(s.formula(class)))
		reg.Gauge(name("serve_latency_slo_ticks" + label)).Set(int64(s.formula(class) + budget))
	}
	s.obsm = m

	// Per-codec connection accounting: every TCP connection is negotiated
	// onto exactly one codec at accept time.
	s.fe.connsJSON = reg.Counter(name(`serve_connections_total{codec="json"}`))
	s.fe.connsBinary = reg.Counter(name(`serve_connections_total{codec="binary"}`))

	var rtLabels []string
	if s.cfg.ShardLabel != "" {
		rtLabels = []string{"shard", s.cfg.ShardLabel}
	}
	s.cluster.SetMetrics(rtnet.NewMetrics(reg, p, rtLabels...))
	reg.GaugeFunc(name("rtnet_inbox_overflow_last_proc"), func() int64 {
		return int64(s.cluster.LastOverflowProc())
	})
	for i := 0; i < p.N; i++ {
		proc := sim.ProcID(i)
		reg.GaugeFunc(name(fmt.Sprintf("rtnet_inbox_depth{proc=\"%d\"}", i)), func() int64 {
			return int64(s.cluster.InboxLen(proc))
		})
	}
}

// observe streams one completed operation into the obs histograms
// (alongside the exact histio recorder, which remains the source of
// truth for Stats and summaries).
func (m *serveMetrics) observe(class classify.Class, latencyTicks int64) {
	h := m.perClass[class]
	if h == nil {
		// Classes outside the instrumented set fold into Mixed.
		h = m.perClass[classify.Mixed]
	}
	h.Add(latencyTicks)
}

// observeTerms streams one operation's latency attribution into the
// per-class term histograms.
func (m *serveMetrics) observeTerms(class classify.Class, a obs.Attribution) {
	hs := m.terms[class]
	if hs == nil {
		hs = m.terms[classify.Mixed]
	}
	if hs == nil {
		return
	}
	for term, v := range a {
		// skew_adjust is signed; histograms are non-negative. Clamp for
		// the metric view only — the exact decomposition lives in the
		// collector's trees.
		if v < 0 {
			v = 0
		}
		hs[term].Add(v)
	}
}

// Registry returns the server's private metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ObsHandler returns the observability HTTP handler for this server:
// its registry merged with obs.Default (harness/fuzzer instruments),
// serving /metrics, /metrics.json, /debug/vars and /debug/pprof/.
func (s *Server) ObsHandler() http.Handler {
	return obs.Handler(s.reg, obs.Default)
}

// SetTracer installs a span tracer on the underlying cluster. Must be
// called before Start. Installing an *obs.Collector additionally turns
// on latency attribution: every completed operation's per-term
// decomposition streams into trace_term_ticks{class=...,term=...}
// histograms on the server's registry, and TraceCollector exposes the
// retained causal trees (the flight recorder).
func (s *Server) SetTracer(t obs.Tracer) {
	s.cluster.SetTracer(t)
	coll, ok := t.(*obs.Collector)
	if !ok {
		s.traceColl = nil
		return
	}
	s.traceColl = coll
	p := s.cfg.Params
	s.attrP = obs.AttrParams{D: int64(p.D), U: int64(p.U), Epsilon: int64(p.Epsilon), X: int64(p.X)}
	name := func(n string) string { return n }
	if s.cfg.ShardLabel != "" {
		name = func(n string) string { return obs.WithLabel(n, "shard", s.cfg.ShardLabel) }
	}
	limit := 4 * int(p.D+p.Epsilon)
	if limit < 16 {
		limit = 16
	}
	s.obsm.terms = map[classify.Class][]*obs.Hist{}
	for _, class := range metricClasses {
		hs := make([]*obs.Hist, obs.NumTerms)
		for term := obs.Term(0); term < obs.NumTerms; term++ {
			n := obs.WithLabel("trace_term_ticks", "class", class.String())
			n = obs.WithLabel(n, "term", term.String())
			hs[term] = s.reg.Hist(name(n), limit)
		}
		s.obsm.terms[class] = hs
	}
}

// TraceCollector returns the installed causal collector, or nil when
// tracing is off or the tracer is not an *obs.Collector.
func (s *Server) TraceCollector() *obs.Collector { return s.traceColl }
