package serve

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/lincheck"
	"lintime/internal/sim"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

// soakFlag overrides the soak duration: `go test ./internal/serve/ -soak 30s`
// is the full race-hardened soak (make soak); CI's short-soak job runs 5s
// (make soak-smoke). The default keeps plain `go test ./...` fast.
var soakFlag = flag.Duration("soak", 0, "soak test duration (0 = 3s default, 1s under -short)")

func soakDuration() time.Duration {
	if *soakFlag > 0 {
		return *soakFlag
	}
	if testing.Short() {
		return time.Second
	}
	return 3 * time.Second
}

// TestSoakClosedLoop runs a sustained closed-loop mixed workload against
// an in-process 5-replica cluster and asserts the serving layer's core
// guarantees end to end:
//
//   - the recorded wall-clock history is linearizable (zero lincheck
//     violations over the whole soak),
//   - graceful shutdown completes every accepted operation (submitted
//     count == recorded count, drain returns nil),
//   - nothing leaks: goroutine count returns to its pre-soak level.
//
// Run it under -race (make soak-smoke / make soak): the closed-loop
// clients, the per-replica routing workers, the recorder and the drain
// path all interleave here, which is exactly where a shared-state race
// would surface.
//
// The soak is split into phases so the linearizability check scales: a
// full-day history is not checkable in one piece, because the relative
// order of two concurrent enqueues stays ambiguous until their values are
// dequeued, which may be thousands of operations later — worst-case
// exponential backtracking for the checker. At each phase boundary the
// load pauses, the cluster quiesces (all responses in, plus a d+ε settle
// so every mutator has executed), and a single client sequentially
// dequeues until the queue answers nil. That last nil dequeue is the
// real-time-latest operation of the phase, so in every linearization the
// phase ends with an empty queue — each phase is therefore independently
// checkable from the initial state, and the concatenation of per-phase
// witnesses is a linearization of the whole soak. A vanished element
// (enqueued, never dequeued, queue claims empty) still fails the check,
// exactly as it should.
func TestSoakClosedLoop(t *testing.T) {
	before := runtime.NumGoroutine()
	const clients = 10
	u := simtime.Duration(20)
	cfg := Config{
		Params: simtime.Params{
			N: 5, D: 40, U: u,
			Epsilon: simtime.OptimalEpsilon(5, u), X: 10,
		},
		TypeName: "queue",
		Tick:     time.Millisecond,
		Offsets:  harness.OffSpread,
		Seed:     42,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	settle := time.Duration(cfg.Params.D+cfg.Params.Epsilon)*cfg.Tick + 50*time.Millisecond

	var submitted atomic.Int64
	runPhase := func(phase int, dur time.Duration) {
		// Closed-loop clients with a mixed op-class workload: enqueue
		// (MOP), peek (AOP), dequeue (OOP). Values are distinct per
		// client so the linearizability check has unambiguous matches.
		// The mix is dequeue-heavy on purpose: the checker's cost is
		// driven by how long concurrent enqueues stay order-ambiguous,
		// and a dequeue resolves the order of the value it returns.
		// Keeping the queue hugging empty means wrong search guesses
		// fail within a few operations instead of compounding.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(
					harness.DeriveSeed(cfg.Seed, fmt.Sprintf("soak/phase/%d/client/%d", phase, c))))
				next := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					var err error
					switch rng.Intn(6) {
					case 0, 1:
						next++
						_, err = s.Call(adt.OpEnqueue, (phase*clients+c)*1_000_000+next)
					case 2, 3, 4:
						_, err = s.Call(adt.OpDequeue, nil)
					default:
						_, err = s.Call(adt.OpPeek, nil)
					}
					if err != nil {
						t.Errorf("soak phase %d client %d: %v", phase, c, err)
						return
					}
					submitted.Add(1)
				}
			}()
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		// Quiesce, then drain the queue to empty so the phase boundary is
		// a known (initial) state: sequential dequeues are the real-time-
		// latest operations, so an "empty" response pins the final state.
		time.Sleep(settle)
		for {
			r, err := s.Call(adt.OpDequeue, nil)
			if err != nil {
				t.Fatalf("soak phase %d drain dequeue: %v", phase, err)
			}
			submitted.Add(1)
			if spec.ValuesEqual(r.Ret, adt.EmptyMarker) {
				break
			}
		}
	}

	total := soakDuration()
	const phaseLen = time.Second
	var cuts []int // recorded-op count at each phase boundary
	start := time.Now()
	for phase := 0; ; phase++ {
		remaining := total - time.Since(start)
		if remaining <= 0 && phase > 0 {
			break
		}
		dur := phaseLen
		if remaining < dur {
			dur = remaining
		}
		if dur < 200*time.Millisecond {
			dur = 200 * time.Millisecond
		}
		runPhase(phase, dur)
		cuts = append(cuts, len(s.Trace().Ops))
		if t.Failed() {
			break
		}
	}

	if err := s.Drain(60 * time.Second); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}

	tr := s.Trace()
	if got, want := int64(len(tr.Ops)), submitted.Load(); got != want {
		t.Errorf("recorded %d ops, submitted %d: drain lost operations", got, want)
	}
	if len(tr.Ops) == 0 {
		t.Fatal("soak recorded no operations")
	}
	for i, op := range tr.Ops {
		if op.Pending() {
			t.Fatalf("op %d (%s) still pending after drain", i, op.Op)
		}
	}

	dt, _ := adt.Lookup(cfg.TypeName)
	prev := 0
	for k, cut := range cuts {
		segment := tr.Ops[prev:cut]
		prev = cut
		if len(segment) == 0 {
			continue
		}
		seg := &sim.Trace{Params: tr.Params, Offsets: tr.Offsets, Ops: segment}
		res := lincheck.CheckTraceParallel(dt, seg, runtime.NumCPU())
		if !res.Linearizable {
			t.Errorf("soak phase %d history of %d ops is NOT linearizable", k, len(segment))
		}
	}
	t.Logf("soak: %d ops in %d phases over %v, per-class stats: %+v",
		len(tr.Ops), len(cuts), total, s.Stats().PerClass)

	// Goroutine-leak check: node loops, routing workers and timer
	// callbacks must all be gone. Allow the runtime a moment to reap.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before soak, %d after drain", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}
