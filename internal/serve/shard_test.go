package serve

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lintime/internal/adt"
	"lintime/internal/harness"
	"lintime/internal/obs"
	"lintime/internal/simtime"
	"lintime/internal/spec"
)

func testShardConfig(n, shards int) ShardSetConfig {
	return ShardSetConfig{Config: testConfig(n), Shards: shards}
}

func startShardSet(t *testing.T, n, shards int) *ShardSet {
	t.Helper()
	ss, err := NewShardSet(testShardConfig(n, shards))
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	t.Cleanup(func() { ss.Drain(30 * time.Second) })
	return ss
}

// TestShardForPinned pins the key→shard mapping. The routing function is
// part of the deployment contract — objects live on their hash-assigned
// cluster, and changing the mapping silently orphans every stored
// object — so any change here must be a deliberate rebalancing decision,
// not a refactoring accident.
func TestShardForPinned(t *testing.T) {
	cases := []struct {
		key    string
		shards int
		want   int
	}{
		{"a", 4, 0},
		{"b", 4, 1},
		{"c", 4, 2},
		{"d", 4, 3},
		{"user:42", 4, 2},
		{"user:43", 4, 1},
		{"hot", 4, 0},
		{"obj-0", 4, 3},
		{"obj-1", 4, 0},
		{"obj-2", 4, 1},
		{"a", 2, 0},
		{"b", 2, 1},
		{"hot", 2, 0},
		{"", 4, 1},
		{"anything", 1, 0},
		{"anything", 0, 0},
	}
	for _, c := range cases {
		if got := ShardFor(c.key, c.shards); got != c.want {
			t.Errorf("ShardFor(%q, %d) = %d, want %d", c.key, c.shards, got, c.want)
		}
	}
}

func TestShardSetObjectIsolation(t *testing.T) {
	ss := startShardSet(t, 3, 4)
	// Two objects whose keys land on different shards.
	ka, kb := "a", "b"
	if ss.ShardFor(ka) == ss.ShardFor(kb) {
		t.Fatalf("test keys %q and %q share shard %d", ka, kb, ss.ShardFor(ka))
	}
	if _, err := ss.CallKey(ka, adt.OpEnqueue, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.CallKey(kb, adt.OpEnqueue, 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * 40 * time.Millisecond)
	if r, err := ss.CallKey(ka, adt.OpDequeue, nil); err != nil || !spec.ValuesEqual(r.Ret, 1) {
		t.Errorf("dequeue(%q) = (%v, %v), want 1", ka, r.Ret, err)
	}
	if r, err := ss.CallKey(kb, adt.OpDequeue, nil); err != nil || !spec.ValuesEqual(r.Ret, 2) {
		t.Errorf("dequeue(%q) = (%v, %v), want 2", kb, r.Ret, err)
	}
	if _, err := ss.CallKey("", adt.OpPeek, nil); err == nil {
		t.Error("empty key should error")
	}
	st := ss.Stats()
	if st.Ops != 4 {
		t.Errorf("aggregate stats ops = %d, want 4", st.Ops)
	}
	rep := ss.CheckPerObject(0)
	if !rep.OK() {
		t.Errorf("per-object check failed: %+v", rep)
	}
	if rep.Keys != 2 || rep.Ops != 4 {
		t.Errorf("check saw %d keys / %d ops, want 2 / 4", rep.Keys, rep.Ops)
	}
}

func TestShardSetPerShardX(t *testing.T) {
	cfg := testShardConfig(2, 3)
	cfg.ShardX = []simtime.Duration{5, 10, 15}
	ss, err := NewShardSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Drain(time.Second)
	for i, p := range ss.ShardParams() {
		if p.X != cfg.ShardX[i] {
			t.Errorf("shard %d X = %d, want %d", i, p.X, cfg.ShardX[i])
		}
	}
	if _, err := NewShardSet(ShardSetConfig{
		Config: testConfig(2), Shards: 2, ShardX: []simtime.Duration{1},
	}); err == nil {
		t.Error("mismatched ShardX length should error")
	}
}

func TestShardSetMetricNamespacesDisjoint(t *testing.T) {
	ss := startShardSet(t, 2, 2)
	if _, err := ss.CallKey("a", adt.OpEnqueue, 1); err != nil {
		t.Fatal(err)
	}
	snap := obs.TakeSnapshot(ss.Registries()...)
	for i := 0; i < 2; i++ {
		name := obs.WithLabel("serve_calls_total", "shard", fmt.Sprint(i))
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("merged snapshot missing %s", name)
		}
	}
	if _, ok := snap.Counters["serve_calls_total"]; ok {
		t.Error("sharded registries leaked an unlabeled serve_calls_total")
	}
	routed := int64(0)
	for i := 0; i < 2; i++ {
		routed += snap.Counters[obs.WithLabel("router_requests_total", "shard", fmt.Sprint(i))]
	}
	if routed != 1 {
		t.Errorf("router counters sum to %d, want 1", routed)
	}
}

func TestShardRouterTCP(t *testing.T) {
	ss := startShardSet(t, 3, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- ss.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if r, err := c.CallKey("a", adt.OpEnqueue, 42); err != nil {
		t.Fatalf("remote keyed enqueue: %v", err)
	} else if key, inner, ok := adt.SplitKeyArg(r.Arg); !ok || key != "a" || !spec.ValuesEqual(inner, 42) {
		t.Errorf("response arg = %#v, want keyed (a, 42)", r.Arg)
	}
	time.Sleep(5 * 40 * time.Millisecond)
	if r, err := c.CallKey("a", adt.OpDequeue, nil); err != nil || !spec.ValuesEqual(r.Ret, 42) {
		t.Errorf("remote keyed dequeue = (%v, %v), want 42", r.Ret, err)
	}
	// The router refuses unkeyed requests rather than guessing a shard.
	if _, err := c.Call(adt.OpPeek, nil); err == nil ||
		!strings.Contains(err.Error(), "needs an object key") {
		t.Errorf("unkeyed request to router = %v, want key-required error", err)
	}
	if _, err := c.CallKey("", adt.OpPeek, nil); err == nil {
		t.Error("empty key should fail client-side")
	}

	if err := ss.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not return after drain")
	}
}

// TestSingleObjectRejectsKeyedRequest pins the topology guard on the
// other side: a keyed request to a single-object server is an error, so
// a client misconfigured with the wrong address fails loudly instead of
// silently operating on the wrong object.
func TestSingleObjectRejectsKeyedRequest(t *testing.T) {
	s := startServer(t, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CallKey("a", adt.OpEnqueue, 1); err == nil ||
		!strings.Contains(err.Error(), "single-object server") {
		t.Errorf("keyed request to single-object server = %v, want topology error", err)
	}
	if _, err := c.Call(adt.OpEnqueue, 1); err != nil {
		t.Errorf("unkeyed request should still work: %v", err)
	}
}

// TestShardDrainUnderLoad drains the deployment while clients hammer it
// over TCP, and asserts the graceful-drain contract: every call either
// succeeds exactly once or fails cleanly (draining/connection teardown),
// no response is dropped for an operation that was accepted, and the
// union of successful responses matches the server-side traces. Run
// under -race this also exercises the per-connection WaitGroup protocol.
func TestShardDrainUnderLoad(t *testing.T) {
	ss := startShardSet(t, 2, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve(ln)

	const clients = 4
	keys := []string{"a", "b", "c", "d"}
	var mu sync.Mutex
	var succCount int
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.CallKey(keys[(i+n)%len(keys)], adt.OpEnqueue, n); err != nil {
					// Acceptable only as a drain effect: the server refused
					// the op or the connection died during teardown.
					return
				}
				mu.Lock()
				succCount++
				mu.Unlock()
			}
		}()
	}
	// Let traffic build, then drain mid-flight.
	time.Sleep(200 * time.Millisecond)
	if err := ss.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	got := succCount
	mu.Unlock()
	if got == 0 {
		t.Fatal("no operation succeeded before the drain")
	}
	// The no-drop/no-dup ledger: every successful client response has
	// exactly one server-side record and vice versa. A dropped response
	// (connection closed before its frame flushed) would leave recorded >
	// got; a duplicated one would leave recorded < got.
	recorded := 0
	for i := 0; i < ss.Shards(); i++ {
		recorded += len(ss.ShardTrace(i).Ops)
	}
	if recorded != got {
		t.Errorf("server recorded %d ops, clients saw %d successful responses", recorded, got)
	}
	if rep := ss.CheckPerObject(0); !rep.OK() {
		t.Errorf("per-object check after drain: %+v", rep)
	}
}

// TestMisroutedWriteCaught proves the composition checker detects the
// invariant whose violation breaks per-object linearizability: a write
// landing on a shard that is not its key's home. The mutant routes one
// hot key's operations to the wrong cluster; the checker must flag every
// one of them as routing violations.
func TestMisroutedWriteCaught(t *testing.T) {
	ss, err := NewShardSet(testShardConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Drain(30 * time.Second)
	const hot = "hot" // home shard 0 under the pinned mapping
	home := ss.ShardFor(hot)
	ss.SetMisroute(func(key string, shard int) int {
		if key == hot {
			return 1 - shard // deliberate fault: send hot's ops to the other cluster
		}
		return shard
	})
	ss.Start()
	for n := 0; n < 3; n++ {
		if _, err := ss.CallKey(hot, adt.OpEnqueue, n); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.CallKey("b", adt.OpEnqueue, n); err != nil { // home shard 1, routed honestly
			t.Fatal(err)
		}
	}
	rep := ss.CheckPerObject(0)
	if rep.OK() {
		t.Fatal("checker missed the misrouted writes")
	}
	if len(rep.RoutingViolations) != 3 {
		t.Fatalf("flagged %d violations, want 3: %+v", len(rep.RoutingViolations), rep.RoutingViolations)
	}
	for _, v := range rep.RoutingViolations {
		if v.Key != hot || v.HomeShard != home || v.Shard == home {
			t.Errorf("violation %+v, want key %q home %d served elsewhere", v, hot, home)
		}
	}
}

func TestRunLoadShardedZipf(t *testing.T) {
	ss := startShardSet(t, 3, 4)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj-%d", i)
	}
	sum, err := RunLoad(ss, ss.Type(), ss.Config().Params, ss.Config().Tick, LoadConfig{
		Clients:      4,
		OpsPerClient: 8,
		Seed:         11,
		Keys:         keys,
		Zipf:         1.5,
		ShardParams:  ss.ShardParams(),
		Mix: []harness.OpPick{
			{Op: adt.OpEnqueue, Weight: 2},
			{Op: adt.OpDequeue, Weight: 1},
			{Op: adt.OpPeek, Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalOps != 4*8 {
		t.Errorf("total ops = %d, want 32", sum.TotalOps)
	}
	if sum.Config.Shards != 4 || sum.Config.KeyCount != 16 || sum.Config.Zipf != 1.5 {
		t.Errorf("config echo = %+v", sum.Config)
	}
	if len(sum.PerShard) != 4 {
		t.Fatalf("per-shard reports = %d, want 4", len(sum.PerShard))
	}
	shardOps := 0
	for _, sh := range sum.PerShard {
		shardOps += sh.Ops
	}
	if shardOps != sum.TotalOps {
		t.Errorf("shard ops sum to %d, want %d", shardOps, sum.TotalOps)
	}
	// Zipf with s=1.5 concentrates on rank 0 (≈43% of draws land on
	// keys[0]): the hot key's home shard must carry more than an even
	// split. Deterministic given the fixed seed.
	hot := ShardFor(keys[0], 4)
	if sum.PerShard[hot].Ops*4 <= sum.TotalOps {
		t.Errorf("hot shard %d carried %d of %d ops, want more than an even split",
			hot, sum.PerShard[hot].Ops, sum.TotalOps)
	}
	if !sum.SLOMet() {
		t.Error("sharded SLO not met")
	}
	if sum.ElapsedMS < 0 {
		t.Errorf("elapsed = %d ms", sum.ElapsedMS)
	}
	if rep := ss.CheckPerObject(0); !rep.OK() {
		t.Errorf("per-object check after load: %+v", rep)
	}
}

func TestRunLoadKeyedNeedsKeyedTarget(t *testing.T) {
	s := startServer(t, 2)
	if _, err := RunLoad(s, s.Type(), s.Config().Params, s.Config().Tick, LoadConfig{
		Clients: 1, OpsPerClient: 1, Keys: []string{"a"},
	}); err == nil || !strings.Contains(err.Error(), "keyed load") {
		t.Errorf("keyed load against single-object server = %v, want keyed-target error", err)
	}
	ss := startShardSet(t, 2, 2)
	if _, err := RunLoad(ss, ss.Type(), ss.Config().Params, ss.Config().Tick, LoadConfig{
		Clients: 1, OpsPerClient: 1, Keys: []string{""},
	}); err == nil {
		t.Error("empty key in key set should error")
	}
}

// TestRunLoadMeasuredWindow pins the deadline-drift fix: the measurement
// window opens after setup, so a duration-based run issues operations
// for at least the configured duration and reports the window it
// actually measured.
func TestRunLoadMeasuredWindow(t *testing.T) {
	s := startServer(t, 2)
	const want = 300 * time.Millisecond
	startT := time.Now()
	sum, err := RunLoad(s, s.Type(), s.Config().Params, s.Config().Tick, LoadConfig{
		Clients: 2, Duration: want, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(startT); wall < want {
		t.Errorf("run returned after %v, configured duration %v", wall, want)
	}
	if sum.ElapsedMS < want.Milliseconds() {
		t.Errorf("elapsed = %d ms, want ≥ %d", sum.ElapsedMS, want.Milliseconds())
	}
	if sum.TotalOps > 0 && sum.OpsPerSec <= 0 {
		t.Errorf("ops/sec = %v with %d ops", sum.OpsPerSec, sum.TotalOps)
	}
}
