package serve

import (
	"testing"
	"unicode/utf8"

	"lintime/internal/adt"
	"lintime/internal/histio"
	"lintime/internal/spec"
)

// fuzzOpNames is the negotiated op table the fuzzer parses requests
// against (a realistic queue-shaped table).
var fuzzOpNames = []string{"enqueue", "dequeue", "peek", "size"}

// jsonFaithful reports whether the JSON reference encoding represents
// the value exactly. Two binary-codec capabilities exceed JSON's: JSON
// numbers travel through float64 (integers beyond 2^53 round), and JSON
// strings must be UTF-8 (invalid bytes become U+FFFD). Outside that
// faithful domain the codecs legitimately differ and the cross-check is
// skipped; the binary self round-trip still must hold.
func jsonFaithful(v spec.Value) bool {
	const exact = 1 << 53
	okInt := func(n int) bool { return n > -exact && n < exact }
	switch x := v.(type) {
	case int:
		return okInt(x)
	case string:
		return utf8.ValidString(x)
	case adt.Edge:
		return okInt(x.P) && okInt(x.C)
	case adt.KV:
		return okInt(x.V) && utf8.ValidString(x.K)
	default:
		return true
	}
}

// FuzzFrame holds the binary frame codec to two oracles at once. First,
// self-consistency: any frame body a parser accepts must re-encode and
// re-parse to the same decoded form, and no input — accepted or not —
// may panic a parser. Second, the JSON reference: every value the binary
// codec decodes must be accepted by histio's JSON interchange encoding
// and round-trip through it to the same value (modulo JSON's float64
// integer window, which the binary codec exceeds by design).
func FuzzFrame(f *testing.F) {
	for _, v := range wireValues {
		if b, err := appendWireValue(nil, v); err == nil {
			f.Add(b)
		}
	}
	if b, err := appendRequest(make([]byte, 4), 1, 0, "user:42", 7, 0); err == nil {
		f.Add(b[4:])
	}
	if b, err := appendResponse(make([]byte, 4), response{id: 1, ret: "x", invoke: 812, respond: 844}); err == nil {
		f.Add(b[4:])
	}
	f.Add(appendHello(make([]byte, 4), fuzzOpNames)[4:])
	f.Add(appendErrorFrame(make([]byte, 4), errProtoID, "oops")[4:])

	f.Fuzz(func(t *testing.T, body []byte) {
		// Parsers must never panic, whatever the bytes.
		if req, err := parseRequest(body, fuzzOpNames); err == nil {
			opcode := uint64(0)
			for i, name := range fuzzOpNames {
				if name == req.op {
					opcode = uint64(i)
				}
			}
			b, err := appendRequest(make([]byte, 4), req.id, opcode, req.key, req.arg, req.trace)
			if err != nil {
				t.Fatalf("re-encode accepted request %+v: %v", req, err)
			}
			req2, err := parseRequest(b[4:], fuzzOpNames)
			if err != nil {
				t.Fatalf("re-parse request %+v: %v", req, err)
			}
			if req2.id != req.id || req2.op != req.op || req2.key != req.key ||
				!spec.ValuesEqual(req2.arg, req.arg) {
				t.Fatalf("request round-trip drifted: %+v vs %+v", req, req2)
			}
			checkJSONReference(t, req.arg)
		}
		if resp, err := parseResponse(body); err == nil {
			b, err := appendResponse(make([]byte, 4), resp)
			if err != nil {
				t.Fatalf("re-encode accepted response %+v: %v", resp, err)
			}
			resp2, err := parseResponse(b[4:])
			if err != nil {
				t.Fatalf("re-parse response %+v: %v", resp, err)
			}
			if resp2.id != resp.id || resp2.err != resp.err ||
				resp2.invoke != resp.invoke || resp2.respond != resp.respond ||
				!spec.ValuesEqual(resp2.ret, resp.ret) {
				t.Fatalf("response round-trip drifted: %+v vs %+v", resp, resp2)
			}
			checkJSONReference(t, resp.ret)
		}
		if names, _, err := parseHello(body); err == nil {
			b := appendHello(make([]byte, 4), names)
			names2, _, err := parseHello(b[4:])
			if err != nil || len(names2) != len(names) {
				t.Fatalf("hello round-trip drifted: %v vs %v (%v)", names, names2, err)
			}
		}
		// The raw value decoder, fed directly.
		r := &wireReader{b: body}
		if v := r.value(); r.err == nil {
			b, err := appendWireValue(nil, v)
			if err != nil {
				t.Fatalf("re-encode accepted value %v (%T): %v", v, v, err)
			}
			r2 := &wireReader{b: b}
			v2 := r2.value()
			if r2.err != nil || len(r2.b) != 0 || !spec.ValuesEqual(v, v2) {
				t.Fatalf("value round-trip drifted: %v vs %v (%v)", v, v2, r2.err)
			}
			checkJSONReference(t, v)
		}
	})
}

// checkJSONReference cross-checks one decoded value against the JSON
// interchange encoding it mirrors.
func checkJSONReference(t *testing.T, v spec.Value) {
	t.Helper()
	raw, err := histio.EncodeValue(v)
	if err != nil {
		t.Fatalf("binary codec decoded %v (%T), JSON reference rejects it: %v", v, v, err)
	}
	jv, err := histio.DecodeValue(raw)
	if err != nil {
		if jsonFaithful(v) {
			t.Fatalf("JSON reference cannot decode its own %s (from %v): %v", raw, v, err)
		}
		return
	}
	if jsonFaithful(v) && !spec.ValuesEqual(v, jv) {
		t.Fatalf("codecs disagree: binary %v (%T), JSON %v (%T)", v, v, jv, jv)
	}
}
