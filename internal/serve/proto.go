// Length-prefixed JSON protocol over TCP.
//
// Every frame is a 4-byte big-endian length followed by one JSON object.
// Requests carry a client-chosen id echoed in the response, so a client
// may pipeline any number of requests over one connection; the server
// answers each as its operation completes, not necessarily in order.
//
//	request:  {"id": 7, "op": "enqueue", "arg": 3}
//	keyed:    {"id": 9, "key": "user:42", "op": "enqueue", "arg": 3}
//	response: {"id": 7, "class": "MOP", "invoke": 812, "respond": 844}
//	error:    {"id": 8, "error": "serve: type queue has no operation \"pop\""}
//
// The key field names the served object on a sharded deployment (see
// shard.go): the router hashes it onto a shard cluster. Single-object
// servers reject keyed requests and shard routers require the key, so a
// client can never silently talk to the wrong topology. Sharded
// responses echo the shard index that served them (omitted when zero —
// and always, therefore, on single-object servers).
//
// Arguments and return values use the history interchange encoding of
// internal/histio (integers, strings, booleans, null, {p,c} edges and
// {k,v} pairs).
package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"lintime/internal/classify"
	"lintime/internal/histio"
	"lintime/internal/rtnet"
	"lintime/internal/simtime"
)

// maxFrame bounds a frame body; larger announcements are protocol errors.
const maxFrame = 1 << 20

type wireRequest struct {
	ID  int64           `json:"id"`
	Key string          `json:"key,omitempty"` // served object (sharded mode)
	Op  string          `json:"op"`
	Arg json.RawMessage `json:"arg,omitempty"`
}

type wireResponse struct {
	ID      int64           `json:"id"`
	Ret     json.RawMessage `json:"ret,omitempty"`
	Class   string          `json:"class,omitempty"`
	Shard   int             `json:"shard,omitempty"` // shard that served a keyed request
	Invoke  int64           `json:"invoke"`
	Respond int64           `json:"respond"`
	Err     string          `json:"error,omitempty"`
}

// frameBuf is a pooled response-encoding buffer: the length header and
// JSON body are assembled in one reused []byte, so the steady-state write
// path performs a single conn.Write with no per-frame allocation. Only
// the write path pools: decoded requests hold json.RawMessage views into
// the read buffer, which must therefore stay owned by the request.
type frameBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var frameBufPool = sync.Pool{New: func() any {
	fb := &frameBuf{}
	fb.enc = json.NewEncoder(&fb.buf)
	return fb
}}

func writeFrame(w io.Writer, v any) error {
	fb := frameBufPool.Get().(*frameBuf)
	defer frameBufPool.Put(fb)
	fb.buf.Reset()
	fb.buf.Write([]byte{0, 0, 0, 0}) // length header placeholder
	if err := fb.enc.Encode(v); err != nil {
		return err
	}
	frame := fb.buf.Bytes()
	body := frame[4:]
	if n := len(body); n > 0 && body[n-1] == '\n' {
		// json.Encoder appends a newline json.Marshal would not emit.
		body = body[:n-1]
		frame = frame[:len(frame)-1]
	}
	if len(body) > maxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit", len(body))
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// frontend is the shared TCP front half of a Server (single object) and
// a ShardSet router (many objects): listener bookkeeping, per-connection
// reader goroutines, per-request handler fan-out, and the graceful
// teardown that flushes every accepted request's response before its
// connection closes.
//
// Teardown protocol: each connection handler owns a private request
// WaitGroup, so every Add happens in the reader goroutine before the
// reader exits — never racing a Wait — and the handler only closes its
// connection after all pending responses are written. A drain therefore
// shuts reads down (CloseRead where the transport supports it), lets the
// readers run dry, and waits on connWG; nothing in flight is dropped.
type frontend struct {
	dispatch func(wireRequest) wireResponse
	draining func() bool

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	connWG    sync.WaitGroup
}

func (f *frontend) init(dispatch func(wireRequest) wireResponse, draining func() bool) {
	f.dispatch = dispatch
	f.draining = draining
	f.conns = map[net.Conn]struct{}{}
}

// serve accepts connections on ln until the listener is closed (by a
// drain, or externally). It returns nil on a drain-initiated close.
func (f *frontend) serve(ln net.Listener) error {
	f.mu.Lock()
	f.listeners = append(f.listeners, ln)
	f.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if f.draining() {
				return nil
			}
			return err
		}
		f.mu.Lock()
		f.conns[conn] = struct{}{}
		f.mu.Unlock()
		f.connWG.Add(1)
		go f.handleConn(conn)
	}
}

func (f *frontend) handleConn(conn net.Conn) {
	defer f.connWG.Done()
	var reqs sync.WaitGroup
	var wmu sync.Mutex // serializes response frames from concurrent requests
	for {
		var req wireRequest
		if err := readFrame(conn, &req); err != nil {
			break
		}
		reqs.Add(1)
		go func(req wireRequest) {
			defer reqs.Done()
			resp := f.dispatch(req)
			wmu.Lock()
			defer wmu.Unlock()
			// A write failure means the client went away; the operation
			// itself already completed and is recorded server-side.
			_ = writeFrame(conn, resp)
		}(req)
	}
	// Flush every accepted request's response before the connection dies:
	// requests that raced a drain get ErrDraining responses and finish
	// quickly, so this converges as soon as reads stop.
	reqs.Wait()
	conn.Close()
	f.mu.Lock()
	delete(f.conns, conn)
	f.mu.Unlock()
}

func (f *frontend) closeListeners() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ln := range f.listeners {
		ln.Close()
	}
	f.listeners = nil
}

// shutdownConns ends every open connection gracefully: reads shut down
// first (no new requests), the per-connection handlers flush their
// pending responses and close, and the call returns once all handler
// goroutines are gone.
func (f *frontend) shutdownConns() {
	f.mu.Lock()
	conns := make([]net.Conn, 0, len(f.conns))
	for conn := range f.conns {
		conns = append(conns, conn)
	}
	f.mu.Unlock()
	for _, conn := range conns {
		if cr, ok := conn.(interface{ CloseRead() error }); ok {
			cr.CloseRead()
		} else {
			conn.Close()
		}
	}
	f.connWG.Wait()
}

// Serve accepts connections on ln until the listener is closed (by a
// drain, or externally). It returns nil on a drain-initiated close.
func (s *Server) Serve(ln net.Listener) error {
	return s.fe.serve(ln)
}

func (s *Server) handleRequest(req wireRequest) wireResponse {
	if req.Key != "" {
		return wireResponse{ID: req.ID,
			Err: "serve: single-object server: request has an object key (connect to a shard router, or drop the key)"}
	}
	arg, err := histio.DecodeValue(req.Arg)
	if err != nil {
		return wireResponse{ID: req.ID, Err: err.Error()}
	}
	r, err := s.Call(req.Op, arg)
	if err != nil {
		return wireResponse{ID: req.ID, Err: err.Error()}
	}
	ret, err := histio.EncodeValue(r.Ret)
	if err != nil {
		return wireResponse{ID: req.ID, Err: err.Error()}
	}
	return wireResponse{ID: req.ID, Ret: ret, Class: r.Class.String(),
		Invoke: int64(r.Invoke), Respond: int64(r.Respond)}
}

// Client is a TCP client for the serving protocol. Safe for concurrent
// use: calls are pipelined over the single connection and matched to
// responses by id.
type Client struct {
	conn   net.Conn
	wmu    sync.Mutex
	nextID atomic.Int64

	mu      sync.Mutex
	pending map[int64]chan wireResponse
	readErr error
	closed  chan struct{}
}

// Dial connects to a serving-layer address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: map[int64]chan wireResponse{},
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		var resp wireResponse
		if err := readFrame(c.conn, &resp); err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.closed)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// Call executes one operation remotely and blocks until its response.
// The returned Response carries the server-side invoke/respond instants
// in virtual ticks, so latencies are comparable to the in-process path.
func (c *Client) Call(op string, arg any) (rtnet.Response, error) {
	return c.call("", op, arg)
}

// CallKey executes one operation against the named object of a sharded
// deployment. The response's Arg carries the keyed argument (see
// adt.KeyArg), so client-side logs group per shard and per object
// exactly like server-side traces.
func (c *Client) CallKey(key, op string, arg any) (rtnet.Response, error) {
	if key == "" {
		return rtnet.Response{}, fmt.Errorf("serve: CallKey needs a non-empty key")
	}
	return c.call(key, op, arg)
}

func (c *Client) call(key, op string, arg any) (rtnet.Response, error) {
	raw, err := histio.EncodeValue(arg)
	if err != nil {
		return rtnet.Response{}, err
	}
	id := c.nextID.Add(1)
	ch := make(chan wireResponse, 1)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err = writeFrame(c.conn, wireRequest{ID: id, Key: key, Op: op, Arg: raw})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return rtnet.Response{}, err
	}
	var resp wireResponse
	select {
	case resp = <-ch:
	case <-c.closed:
		// The reader may have dispatched our response just before dying.
		select {
		case resp = <-ch:
		default:
			c.mu.Lock()
			readErr := c.readErr
			delete(c.pending, id)
			c.mu.Unlock()
			return rtnet.Response{}, fmt.Errorf("serve: connection lost: %w", readErr)
		}
	}
	if resp.Err != "" {
		return rtnet.Response{}, fmt.Errorf("serve: remote: %s", resp.Err)
	}
	ret, err := histio.DecodeValue(resp.Ret)
	if err != nil {
		return rtnet.Response{}, err
	}
	recArg := any(arg)
	if key != "" {
		if ka, kerr := keyedArg(key, arg); kerr == nil {
			recArg = ka
		}
	}
	return rtnet.Response{
		Op: op, Arg: recArg, Ret: ret,
		Class:   classFromString(resp.Class),
		Invoke:  simtime.Time(resp.Invoke),
		Respond: simtime.Time(resp.Respond),
	}, nil
}

// Close tears the connection down; in-flight Calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func classFromString(s string) classify.Class {
	switch s {
	case classify.PureAccessor.String():
		return classify.PureAccessor
	case classify.PureMutator.String():
		return classify.PureMutator
	default:
		return classify.Mixed
	}
}
